package ssync

// One testing.B benchmark per table and figure of the paper's evaluation,
// plus the ablation benches DESIGN.md calls out. Each iteration regenerates
// the artifact on a reduced configuration; the custom metrics expose the
// headline quantity of the corresponding figure so `go test -bench=.`
// doubles as a regression harness for the reproduction.
//
// The full-scale regeneration lives in cmd/figures.

import (
	"testing"

	"ssync/internal/arch"
	"ssync/internal/bench"
	"ssync/internal/ccbench"
	"ssync/internal/simlocks"
)

var benchCfg = bench.Config{Deadline: 60_000, LatencyOps: 30, Reps: 2}

func BenchmarkTable2(b *testing.B) {
	p := arch.Opteron()
	var last float64
	for i := 0; i < b.N; i++ {
		r := ccbench.Run(p, ccbench.Case{Op: arch.Load, State: arch.Modified, Class: 3}, 2)
		last = r.Cycles
	}
	b.ReportMetric(last, "cycles/2hop-load")
}

func BenchmarkTable3(b *testing.B) {
	p := arch.Xeon()
	var ram uint64
	for i := 0; i < b.N; i++ {
		rows := ccbench.Table3(p)
		ram = rows[3].Cycles
	}
	b.ReportMetric(float64(ram), "cycles/ram")
}

func BenchmarkFigure3(b *testing.B) {
	var naiveOverBackoff float64
	for i := 0; i < b.N; i++ {
		fig := bench.Figure3(benchCfg)
		naive := bench.FindSeries(fig, string(bench.TicketNaive))
		backoff := bench.FindSeries(fig, string(bench.TicketBackoff))
		naiveOverBackoff = naive.At(48) / backoff.At(48)
	}
	b.ReportMetric(naiveOverBackoff, "naive/backoff@48")
}

func BenchmarkFigure4(b *testing.B) {
	p := arch.Opteron()
	var drop float64
	for i := 0; i < b.N; i++ {
		fig := bench.Figure4(p, benchCfg)
		fai := bench.FindSeries(fig, "FAI")
		drop = fai.At(6) / fai.At(48)
	}
	b.ReportMetric(drop, "insocket/crosssocket")
}

func BenchmarkFigure5(b *testing.B) {
	p := arch.Xeon()
	var best float64
	for i := 0; i < b.N; i++ {
		fig := bench.Figure5(p, benchCfg)
		best = bench.BestSeries(fig).At(40)
	}
	b.ReportMetric(best, "Mops@40")
}

func BenchmarkFigure6(b *testing.B) {
	p := arch.Opteron()
	var worst float64
	for i := 0; i < b.N; i++ {
		for _, r := range bench.Figure6(p, benchCfg) {
			if r.Alg == simlocks.TICKET && r.Class == "two hops" {
				worst = r.Cycles
			}
		}
	}
	b.ReportMetric(worst, "cycles/remote-acquire")
}

func BenchmarkFigure7(b *testing.B) {
	p := arch.Niagara()
	var scal float64
	for i := 0; i < b.N; i++ {
		fig := bench.Figure7(p, benchCfg)
		ticket := bench.FindSeries(fig, "TICKET")
		scal = ticket.At(32) / ticket.At(1)
	}
	b.ReportMetric(scal, "scalability@32")
}

func BenchmarkFigure8(b *testing.B) {
	p := arch.Tilera()
	var bestMops float64
	for i := 0; i < b.N; i++ {
		rows := bench.Figure8(p, 128, benchCfg)
		bestMops = rows[len(rows)-1].Mops
	}
	b.ReportMetric(bestMops, "Mops@36-128locks")
}

func BenchmarkFigure9(b *testing.B) {
	p := arch.Tilera()
	var oneWay float64
	for i := 0; i < b.N; i++ {
		rows := bench.Figure9(p, benchCfg)
		oneWay = rows[0].OneWay
	}
	b.ReportMetric(oneWay, "cycles/hw-oneway")
}

func BenchmarkFigure10(b *testing.B) {
	p := arch.Xeon()
	var rt float64
	for i := 0; i < b.N; i++ {
		fig := bench.Figure10(p, benchCfg)
		s := bench.FindSeries(fig, "round-trip")
		rt = s.Points[len(s.Points)-1].Y
	}
	b.ReportMetric(rt, "Mops@maxclients")
}

func BenchmarkFigure11(b *testing.B) {
	p := arch.Opteron()
	var mpOverLocks float64
	for i := 0; i < b.N; i++ {
		rows := bench.Figure11(p, 12, 12, benchCfg)
		last := rows[len(rows)-1]
		mpOverLocks = last.MPMops / last.BestMops
	}
	b.ReportMetric(mpOverLocks, "mp/locks@36-highcontention")
}

func BenchmarkFigure12(b *testing.B) {
	p := arch.Xeon()
	var speedup float64
	for i := 0; i < b.N; i++ {
		speedup = bench.KVSSpeedup(bench.Figure12(p, false, benchCfg))
	}
	b.ReportMetric(speedup*100, "%speedup-over-mutex")
}

func BenchmarkTM(b *testing.B) {
	p := arch.Opteron()
	var mpOverLocks float64
	for i := 0; i < b.N; i++ {
		rows := bench.TMExperiment(p, 8, benchCfg)
		last := rows[len(rows)-1]
		mpOverLocks = last.MPMops / last.LockMops
	}
	b.ReportMetric(mpOverLocks, "mp/locks@36-highcontention")
}

func BenchmarkAblationNoContention(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		a := bench.AblationNoContention(arch.Opteron(), 24, benchCfg)
		gain = a.Off / a.On
	}
	b.ReportMetric(gain, "x-without-serialisation")
}

func BenchmarkAblationProbeFilter(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		a := bench.AblationProbeFilter(24, benchCfg)
		gain = a.Off / a.On
	}
	b.ReportMetric(gain, "x-with-complete-directory")
}

func BenchmarkAblationMPPrefetchw(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		a := bench.AblationMPPrefetchw(benchCfg)
		gain = a.Off / a.On
	}
	b.ReportMetric(gain, "x-with-prefetchw")
}

func BenchmarkAblationTicketBackoff(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		a := bench.AblationTicketBackoff(24, benchCfg)
		gain = a.Off / a.On
	}
	b.ReportMetric(gain, "x-with-backoff")
}
