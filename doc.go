// Package ssync is a from-scratch Go reproduction of the SOSP'13 paper
// "Everything You Always Wanted to Know about Synchronization but Were
// Afraid to Ask" (David, Guerraoui, Trigonakis — EPFL).
//
// The repository contains the paper's SSYNC suite implemented twice:
// natively (runnable Go libraries: locks, message passing, a concurrent
// hash table, a software transactional memory and a memcached-like
// key-value store) and against a deterministic discrete-event simulator of
// the paper's four many-core platforms, which regenerates every table and
// figure of the evaluation. Start with README.md, DESIGN.md and
// cmd/figures.
package ssync
