// kvbench regenerates Figure 12: the Memcached-style key-value store
// under the set-only memslap workload with different lock algorithms, and
// the §6.4 get-only control where the lock choice is irrelevant.
//
// Usage:
//
//	kvbench [-platform list] [-test set|get] [-native]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ssync/internal/arch"
	"ssync/internal/bench"
	"ssync/internal/kvs"
	"ssync/internal/locks"
)

func main() {
	platforms := flag.String("platform", "Opteron,Xeon,Niagara,Tilera", "comma-separated platform models")
	test := flag.String("test", "set", "workload: set (write-heavy) or get (read-only)")
	native := flag.Bool("native", false, "also drive the native Go store with real goroutines")
	flag.Parse()

	get := *test == "get"
	cfg := bench.DefaultConfig()
	for _, name := range strings.Split(*platforms, ",") {
		p := arch.ByName(strings.TrimSpace(name))
		if p == nil {
			fmt.Fprintf(os.Stderr, "kvbench: unknown platform %q (have %v)\n", name, arch.Names())
			os.Exit(2)
		}
		fmt.Println(bench.FormatFigure12(p, bench.Figure12(p, get, cfg)))
	}
	if *native {
		fmt.Println("native store (real goroutines on this host):")
		for _, alg := range []locks.Algorithm{locks.MUTEX, locks.TAS, locks.TICKET, locks.MCS} {
			s := kvs.New(kvs.Options{Lock: alg, Shards: 64})
			w := kvs.DefaultWorkload(!get)
			w.Clients = 4
			w.OpsPerClient = 20000
			res := kvs.Run(s, w)
			fmt.Printf("  %-8s %s\n", alg, res)
		}
	}
}
