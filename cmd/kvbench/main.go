// kvbench regenerates Figure 12: the Memcached-style key-value store
// under the set-only memslap workload with different lock algorithms, and
// the §6.4 get-only control where the lock choice is irrelevant.
//
// It is a thin wrapper over `ssync kvbench`.
//
// Usage:
//
//	kvbench [-platform list] [-test set|get] [-native]
package main

import "ssync/internal/cli"

func main() { cli.Run(cli.KvbenchMain) }
