// ccbench regenerates the paper's Tables 2 and 3: the latencies of the
// cache-coherence protocol for loads, stores and atomic operations as a
// function of MESI state and distance, on each simulated platform.
//
// Usage:
//
//	ccbench [-platform Opteron,Xeon,Niagara,Tilera] [-reps N] [-local] [-cases]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ssync/internal/arch"
	"ssync/internal/bench"
	"ssync/internal/ccbench"
)

func main() {
	platforms := flag.String("platform", "Opteron,Xeon,Niagara,Tilera", "comma-separated platform models")
	reps := flag.Int("reps", 5, "repetitions per case (fresh line each)")
	local := flag.Bool("local", false, "print only Table 3 (local latencies)")
	cases := flag.Bool("cases", false, "list the supported microbenchmark cases and exit")
	flag.Parse()

	for _, name := range strings.Split(*platforms, ",") {
		p := arch.ByName(strings.TrimSpace(name))
		if p == nil {
			fmt.Fprintf(os.Stderr, "ccbench: unknown platform %q (have %v)\n", name, arch.Names())
			os.Exit(2)
		}
		if *cases {
			fmt.Printf("%s: %d cases\n", p.Name, len(ccbench.Cases(p)))
			for _, c := range ccbench.Cases(p) {
				fmt.Printf("  %s\n", c)
			}
			continue
		}
		fmt.Println(bench.FormatTable3(p))
		if !*local {
			fmt.Println(bench.FormatTable2(p, *reps))
		}
	}
}
