// ccbench regenerates the paper's Tables 2 and 3: the latencies of the
// cache-coherence protocol for loads, stores and atomic operations as a
// function of MESI state and distance, on each simulated platform.
//
// It is a thin wrapper over `ssync ccbench`.
//
// Usage:
//
//	ccbench [-platform Opteron,Xeon,Niagara,Tilera] [-reps N] [-local] [-cases]
package main

import "ssync/internal/cli"

func main() { cli.Run(cli.CcbenchMain) }
