// ssync is the unified CLI of the suite: `ssync run` executes any subset
// of the registered experiments on the sharded harness with JSON, CSV or
// table output, `ssync list` enumerates them, and every retired
// single-purpose binary (lockbench, ccbench, mpbench, sshtbench, tmbench,
// kvbench, figures, topology) remains available as a subcommand.
//
// Usage:
//
//	ssync run locks/single -platform xeon -threads 1,10,36 -parallel 8 -json
//	ssync list
//	ssync figures -id F5
package main

import "ssync/internal/cli"

func main() { cli.Run(cli.Main) }
