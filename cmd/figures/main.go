// figures regenerates every table and figure of the paper in one run — the
// per-experiment index of DESIGN.md — and writes the report to stdout or a
// file. This is the tool that produced EXPERIMENTS.md's measured values.
//
// It is a thin wrapper over `ssync figures`.
//
// Usage:
//
//	figures [-id F5] [-platform Xeon] [-o report.md] [-quick]
package main

import "ssync/internal/cli"

func main() { cli.Run(cli.FiguresMain) }
