// figures regenerates every table and figure of the paper in one run — the
// per-experiment index of DESIGN.md — and writes the report to stdout or a
// file. This is the tool that produced EXPERIMENTS.md's measured values.
//
// Usage:
//
//	figures [-id F5] [-platform Xeon] [-o report.md] [-quick]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ssync/internal/bench"
	"ssync/internal/core"
)

func main() {
	id := flag.String("id", "", "run a single experiment id (default: all)")
	platform := flag.String("platform", "", "restrict to one platform model")
	out := flag.String("o", "", "write the report to a file instead of stdout")
	quick := flag.Bool("quick", false, "shorter simulated runs (noisier, much faster)")
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.Config{Deadline: 80_000, LatencyOps: 40, Reps: 2}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	exps := core.Experiments()
	if *id != "" {
		e, err := core.ByID(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(2)
		}
		exps = []core.Experiment{e}
	}

	fmt.Fprintf(w, "%s — regenerated evaluation\n\n", core.Version)
	for _, e := range exps {
		fmt.Fprintf(w, "== %s: %s ==\n\n", e.ID, e.Title)
		for _, pn := range e.Platforms {
			if *platform != "" && pn != *platform {
				continue
			}
			if err := e.Run(w, pn, cfg); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %s on %s: %v\n", e.ID, pn, err)
				os.Exit(1)
			}
		}
	}
}
