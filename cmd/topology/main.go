// topology prints the platform models the simulator uses: core counts,
// memory nodes, distance-class matrices and the calibrated local
// latencies — a quick way to inspect what "Opteron" or "Tilera" means in
// every figure of this repository.
//
// Usage:
//
//	topology [-platform Opteron]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ssync/internal/arch"
)

func main() {
	platforms := flag.String("platform", strings.Join(arch.Names(), ","), "comma-separated platform models")
	flag.Parse()

	for _, name := range strings.Split(*platforms, ",") {
		p := arch.ByName(strings.TrimSpace(name))
		if p == nil {
			fmt.Fprintf(os.Stderr, "topology: unknown platform %q (have %v)\n", name, arch.Names())
			os.Exit(2)
		}
		fmt.Printf("%s — %d cores, %d memory nodes, %.2f GHz\n", p.Name, p.NumCores, p.NumNodes, p.ClockGHz)
		fmt.Printf("  local latencies: L1 %d, L2 %d, LLC %d, RAM %d cycles\n", p.L1, p.L2, p.LLC, p.RAM)
		fmt.Printf("  distance classes: %s\n", strings.Join(p.DistNames, ", "))
		var quirks []string
		if p.IncompleteDirectory {
			quirks = append(quirks, "incomplete probe filter (MOESI, broadcast on shared stores)")
		}
		if p.InclusiveLLC {
			quirks = append(quirks, "inclusive LLC (intra-socket locality)")
		}
		if p.Uniform {
			quirks = append(quirks, "uniform crossbar LLC")
		}
		if p.HardwareMP {
			quirks = append(quirks, "hardware message passing (iMesh)")
		}
		if len(quirks) > 0 {
			fmt.Printf("  quirks: %s\n", strings.Join(quirks, "; "))
		}
		// Node-distance matrix via one representative core per node.
		var reps []int
		seen := map[int]bool{}
		for c := 0; c < p.NumCores && len(reps) < p.NumNodes; c++ {
			if n := p.NodeOf(c); !seen[n] {
				seen[n] = true
				reps = append(reps, c)
			}
		}
		if p.NumNodes > 1 {
			fmt.Printf("  node distance classes (via representative cores):\n      ")
			for j := range reps {
				fmt.Printf("%4d", j)
			}
			fmt.Println()
			for i, a := range reps {
				fmt.Printf("  %4d", i)
				for _, b := range reps {
					fmt.Printf("%4d", p.DistClass(a, b))
				}
				fmt.Println()
			}
		}
		fmt.Println()
	}
}
