// topology prints the platform models the simulator uses: core counts,
// memory nodes, distance-class matrices and the calibrated local
// latencies — a quick way to inspect what "Opteron" or "Tilera" means in
// every figure of this repository.
//
// It is a thin wrapper over `ssync topology`.
//
// Usage:
//
//	topology [-platform Opteron]
package main

import "ssync/internal/cli"

func main() { cli.Run(cli.TopologyMain) }
