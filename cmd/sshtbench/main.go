// sshtbench regenerates Figure 11: the ssht concurrent hash table under
// every lock algorithm and the message-passing mode, across the four
// buckets × entries configurations.
//
// It is a thin wrapper over `ssync sshtbench`.
//
// Usage:
//
//	sshtbench [-platform list] [-buckets 12,512] [-entries 12,48]
package main

import "ssync/internal/cli"

func main() { cli.Run(cli.SshtbenchMain) }
