// sshtbench regenerates Figure 11: the ssht concurrent hash table under
// every lock algorithm and the message-passing mode, across the four
// buckets × entries configurations.
//
// Usage:
//
//	sshtbench [-platform list] [-buckets 12,512] [-entries 12,48]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ssync/internal/arch"
	"ssync/internal/bench"
)

func intList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	platforms := flag.String("platform", "Opteron,Xeon,Niagara,Tilera", "comma-separated platform models")
	buckets := flag.String("buckets", "12,512", "bucket counts")
	entries := flag.String("entries", "12,48", "entries per bucket")
	flag.Parse()

	bs, err := intList(*buckets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sshtbench: bad -buckets:", err)
		os.Exit(2)
	}
	es, err := intList(*entries)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sshtbench: bad -entries:", err)
		os.Exit(2)
	}
	cfg := bench.DefaultConfig()
	for _, name := range strings.Split(*platforms, ",") {
		p := arch.ByName(strings.TrimSpace(name))
		if p == nil {
			fmt.Fprintf(os.Stderr, "sshtbench: unknown platform %q (have %v)\n", name, arch.Names())
			os.Exit(2)
		}
		for _, b := range bs {
			for _, e := range es {
				fmt.Println(bench.FormatFigure11(p, b, e, bench.Figure11(p, b, e, cfg)))
			}
		}
	}
}
