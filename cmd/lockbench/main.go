// lockbench regenerates the paper's lock experiments: Figure 3 (ticket
// lock implementations), Figure 4 (atomic operations), Figure 5 (single
// lock), Figure 6 (uncontested acquisition by distance), Figure 7 (512
// locks) and Figure 8 (best lock per contention level).
//
// Usage:
//
//	lockbench -fig {3|4|5|6|7|8} [-platform list] [-deadline cycles]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ssync/internal/arch"
	"ssync/internal/bench"
)

func main() {
	fig := flag.Int("fig", 5, "figure to regenerate: 3, 4, 5, 6, 7 or 8")
	platforms := flag.String("platform", "Opteron,Xeon,Niagara,Tilera", "comma-separated platform models")
	deadline := flag.Uint64("deadline", 0, "simulated cycles per configuration (0 = default)")
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *deadline > 0 {
		cfg.Deadline = *deadline
	}

	if *fig == 3 {
		fmt.Println(bench.FormatFigure(bench.Figure3(cfg)))
		return
	}
	for _, name := range strings.Split(*platforms, ",") {
		p := arch.ByName(strings.TrimSpace(name))
		if p == nil {
			fmt.Fprintf(os.Stderr, "lockbench: unknown platform %q (have %v)\n", name, arch.Names())
			os.Exit(2)
		}
		switch *fig {
		case 4:
			fmt.Println(bench.FormatFigure(bench.Figure4(p, cfg)))
		case 5:
			fmt.Println(bench.FormatFigure(bench.Figure5(p, cfg)))
		case 6:
			fmt.Println(bench.FormatFigure6(p, bench.Figure6(p, cfg)))
		case 7:
			fmt.Println(bench.FormatFigure(bench.Figure7(p, cfg)))
		case 8:
			for _, nLocks := range []int{4, 16, 32, 128} {
				fmt.Println(bench.FormatFigure8(p, nLocks, bench.Figure8(p, nLocks, cfg)))
			}
		default:
			fmt.Fprintf(os.Stderr, "lockbench: no figure %d (have 3-8)\n", *fig)
			os.Exit(2)
		}
	}
}
