// lockbench regenerates the paper's lock experiments: Figure 3 (ticket
// lock implementations), Figure 4 (atomic operations), Figure 5 (single
// lock), Figure 6 (uncontested acquisition by distance), Figure 7 (512
// locks) and Figure 8 (best lock per contention level).
//
// It is a thin wrapper over `ssync lockbench`.
//
// Usage:
//
//	lockbench -fig {3|4|5|6|7|8} [-platform list] [-deadline cycles]
package main

import "ssync/internal/cli"

func main() { cli.Run(cli.LockbenchMain) }
