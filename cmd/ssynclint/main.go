// Command ssynclint machine-checks the repo's concurrency and
// allocation invariants: pooled-buffer ownership (poolaudit),
// cache-line layout (padcheck), shard-lock discipline (lockorder) and
// atomic/plain access mixing (atomicmix). CI runs it over ./... as a
// required gate; `ssynclint -list` names the analyzers.
package main

import "ssync/internal/cli"

func main() { cli.Run(cli.LintMain) }
