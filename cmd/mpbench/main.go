// mpbench regenerates the paper's message-passing experiments: Figure 9
// (one-to-one latency by distance), Figure 10 (client-server throughput)
// and the §5.3 prefetchw ablation.
//
// It is a thin wrapper over `ssync mpbench`.
//
// Usage:
//
//	mpbench -fig {9|10} [-platform list] [-prefetchw]
package main

import "ssync/internal/cli"

func main() { cli.Run(cli.MpbenchMain) }
