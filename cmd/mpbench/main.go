// mpbench regenerates the paper's message-passing experiments: Figure 9
// (one-to-one latency by distance), Figure 10 (client-server throughput)
// and the §5.3 prefetchw ablation.
//
// Usage:
//
//	mpbench -fig {9|10} [-platform list] [-prefetchw]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ssync/internal/arch"
	"ssync/internal/bench"
)

func main() {
	fig := flag.Int("fig", 9, "figure to regenerate: 9 or 10")
	platforms := flag.String("platform", "Opteron,Xeon,Niagara,Tilera", "comma-separated platform models")
	prefetchw := flag.Bool("prefetchw", false, "run the §5.3 Opteron prefetchw ablation instead")
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *prefetchw {
		a := bench.AblationMPPrefetchw(cfg)
		fmt.Printf("Opteron message-passing round-trip: %.0f cycles with prefetchw, %.0f without (%.2fx)\n",
			a.On, a.Off, a.Off/a.On)
		return
	}
	for _, name := range strings.Split(*platforms, ",") {
		p := arch.ByName(strings.TrimSpace(name))
		if p == nil {
			fmt.Fprintf(os.Stderr, "mpbench: unknown platform %q (have %v)\n", name, arch.Names())
			os.Exit(2)
		}
		switch *fig {
		case 9:
			fmt.Println(bench.FormatFigure9(p, bench.Figure9(p, cfg)))
		case 10:
			fmt.Println(bench.FormatFigure(bench.Figure10(p, cfg)))
		default:
			fmt.Fprintf(os.Stderr, "mpbench: no figure %d (have 9, 10)\n", *fig)
			os.Exit(2)
		}
	}
}
