// tmbench regenerates the §8 software-transactional-memory result: TM2C's
// message-passing design versus the lock-based variant, under high and
// low contention — the outcome mirrors the hash table of Figure 11.
//
// It is a thin wrapper over `ssync tmbench`.
//
// Usage:
//
//	tmbench [-platform list] [-stripes 8,1024] [-native]
package main

import "ssync/internal/cli"

func main() { cli.Run(cli.TmbenchMain) }
