// tmbench regenerates the §8 software-transactional-memory result: TM2C's
// message-passing design versus the lock-based variant, under high and
// low contention — the outcome mirrors the hash table of Figure 11.
//
// Usage:
//
//	tmbench [-platform list] [-stripes 8,1024] [-native]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"ssync/internal/arch"
	"ssync/internal/bench"
	"ssync/internal/tm"
	"ssync/internal/xrand"
)

func main() {
	platforms := flag.String("platform", "Opteron,Xeon,Niagara,Tilera", "comma-separated platform models")
	stripes := flag.String("stripes", "8,1024", "stripe counts (contention levels)")
	native := flag.Bool("native", false, "also run the native TM bank workload on this host")
	flag.Parse()

	cfg := bench.DefaultConfig()
	for _, name := range strings.Split(*platforms, ",") {
		p := arch.ByName(strings.TrimSpace(name))
		if p == nil {
			fmt.Fprintf(os.Stderr, "tmbench: unknown platform %q (have %v)\n", name, arch.Names())
			os.Exit(2)
		}
		for _, f := range strings.Split(*stripes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintln(os.Stderr, "tmbench: bad -stripes:", err)
				os.Exit(2)
			}
			fmt.Printf("TM on %s, %d stripes:\n", p.Name, n)
			for _, r := range bench.TMExperiment(p, n, cfg) {
				fmt.Printf("  %2d threads: locks %7.3f Mops/s   mp %7.3f Mops/s\n", r.Threads, r.LockMops, r.MPMops)
			}
			fmt.Println()
		}
	}
	if *native {
		fmt.Println("native lock-based TM, bank workload (real goroutines):")
		runner := tm.NewLockBased(64)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := xrand.New(uint64(g) + 1)
				for i := 0; i < 20000; i++ {
					from, to := rng.Intn(64), rng.Intn(64)
					_ = runner.Run(func(tx tm.Tx) error {
						f := tx.Read(from)
						if f == 0 {
							tx.Write(from, 100)
							return nil
						}
						tx.Write(from, f-1)
						tx.Write(to, tx.Read(to)+1)
						return nil
					})
				}
			}()
		}
		wg.Wait()
		commits, aborts := runner.Stats()
		fmt.Printf("  %d commits, %d aborts (%.1f%% abort rate)\n",
			commits, aborts, 100*float64(aborts)/float64(commits+aborts))
	}
}
