module ssync

go 1.21
