package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"

	"ssync/internal/cluster"
	"ssync/internal/locks"
	"ssync/internal/stats"
	"ssync/internal/store"
	"ssync/internal/topo"
	"ssync/internal/workload"
)

// This file implements the pinned performance-trajectory sweep behind
// `ssync bench`: the store/cluster grid (engine × node count × key
// distribution) run with a fixed seed and fixed sizes, summarised as
// Kops/s and allocs/op per cell, emitted as a committed BENCH_<pr>.json
// reference, and recheckable — a fresh run of the same pinned sweep is
// compared against the reference within noise bounds derived from
// internal/stats (median ± MAD), so a hot-path regression fails CI
// instead of landing silently.
//
// The two metrics age differently. allocs/op is a property of the code,
// not the machine: it is identical across hosts (modulo scheduling
// noise from background goroutines), so its tolerance is tight.
// Kops/s is wall-clock and therefore host-dependent; its tolerance is
// relative and deliberately generous — the gate exists to catch an
// accidental O(n) or a lost zero-alloc seam (integer-factor slumps),
// not 10% machine-to-machine drift.

// BenchSchema identifies the reference-file layout; CompareBench
// refuses files written by a different one.
const BenchSchema = "ssync-bench/v1"

// BenchSeed is the pinned workload seed of the sweep.
const BenchSeed = 0xb5eed

// Pinned sweep axes: every engine, single node vs a routed 4-node
// ring, balanced vs skewed keys, unplaced vs compact shard placement
// over the discovered host. On a single-domain host the compact rows
// honestly record parity (placement no-ops); on multi-domain hardware
// they record what locality placement buys — either way the trajectory
// carries the placement column from PR 9 on.
var (
	benchNodes  = []int{1, 4}
	benchDists  = []string{"uniform", "zipfian"}
	benchPlaces = []string{"none", "compact"}
)

// BenchConfig shapes one sweep invocation.
type BenchConfig struct {
	// PR tags the emitted file header (BENCH_<pr>.json).
	PR int
	// Reps is the measured repetitions per cell (default 5, short 3).
	Reps int
	// Short scales the per-repetition operation count down for CI.
	Short bool
	// Log, when non-nil, receives one progress line per cell.
	Log io.Writer
}

// BenchRow is one cell of the sweep: medians and MADs over the
// repetitions, rounded to stable precision (Kops to 1 decimal, allocs
// to 2) so the committed file diffs cleanly.
type BenchRow struct {
	Engine string `json:"engine"`
	Nodes  int    `json:"nodes"`
	Dist   string `json:"dist"`
	// Place is the shard-placement policy the cell ran under; "" (old
	// references) and "none" are the same unplaced cell.
	Place       string  `json:"place,omitempty"`
	Kops        float64 `json:"kops"`
	KopsMAD     float64 `json:"kops_mad"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	AllocsMAD   float64 `json:"allocs_mad"`
}

// key identifies a row within a file for cross-file matching. Unplaced
// rows keep the pre-placement key shape, so a reference emitted before
// the placement axis existed still gates the unplaced half of a fresh
// sweep.
func (r BenchRow) key() string {
	k := fmt.Sprintf("%s/%dn/%s", r.Engine, r.Nodes, r.Dist)
	if r.Place != "" && r.Place != "none" {
		k += "/place=" + r.Place
	}
	return k
}

// BenchFile is the committed reference: a self-describing header (the
// exact run configuration, so a checker can reproduce it from the file
// alone) plus one row per sweep cell.
type BenchFile struct {
	Schema  string     `json:"schema"`
	PR      int        `json:"pr"`
	Seed    uint64     `json:"seed"`
	Reps    int        `json:"reps"`
	Short   bool       `json:"short"`
	Engines []string   `json:"engines"`
	Nodes   []int      `json:"nodes"`
	Dists   []string   `json:"dists"`
	Places  []string   `json:"places,omitempty"`
	Rows    []BenchRow `json:"rows"`
}

// benchOps returns the steady-phase operations per client.
func benchOps(short bool) int {
	if short {
		return 1500
	}
	return 6000
}

// benchClients is the steady-phase client count of every cell.
const benchClients = 4

// RunBench executes the pinned sweep and returns the reference file.
func RunBench(cfg BenchConfig) (*BenchFile, error) {
	if cfg.Reps < 1 {
		if cfg.Short {
			cfg.Reps = 3
		} else {
			cfg.Reps = 5
		}
	}
	f := &BenchFile{
		Schema: BenchSchema,
		PR:     cfg.PR,
		Seed:   BenchSeed,
		Reps:   cfg.Reps,
		Short:  cfg.Short,
		Nodes:  benchNodes,
		Dists:  benchDists,
		Places: benchPlaces,
	}
	for _, eng := range store.Engines {
		f.Engines = append(f.Engines, string(eng))
	}
	ops := benchOps(cfg.Short)
	for _, eng := range store.Engines {
		for _, nodes := range benchNodes {
			for _, dist := range benchDists {
				for _, place := range benchPlaces {
					row, err := runBenchCell(eng, nodes, dist, place, ops, cfg.Reps)
					if err != nil {
						return nil, fmt.Errorf("bench %s/%dn/%s/%s: %w", eng, nodes, dist, place, err)
					}
					if cfg.Log != nil {
						fmt.Fprintf(cfg.Log, "%-42s %8.1f Kops/s (±%.1f)  %6.2f allocs/op (±%.2f)\n",
							row.key(), row.Kops, row.KopsMAD, row.AllocsPerOp, row.AllocsMAD)
					}
					f.Rows = append(f.Rows, row)
				}
			}
		}
	}
	return f, nil
}

// runBenchCell measures one engine × nodes × dist × place cell:
// cfg.Reps repetitions of the pinned scenario against a fresh cluster
// each, Kops/s from the steady phase and allocs/op from the
// heap-allocation delta across the whole run (total mallocs are
// monotonic, so the delta is exact regardless of concurrent GC).
//
// The first repetition is a discarded warmup. A cell's first run pays
// one-time costs the others don't — scheduler ramp for freshly spawned
// goroutine fleets (worst for the actor engine's per-shard owners,
// whose first-run jitter put actor/1/uniform at a 58.5 Kops MAD in
// BENCH_8), lazily grown pools, branch-cold code — and folding it into
// the median inflates the MAD that the gate's tolerances are scaled
// by.
func runBenchCell(eng store.Engine, nodes int, distName, place string, ops, reps int) (BenchRow, error) {
	policy, err := topo.ParsePolicy(place)
	if err != nil {
		return BenchRow{}, err
	}
	kops := make([]float64, 0, reps)
	allocs := make([]float64, 0, reps)
	for rep := 0; rep < reps+1; rep++ {
		warmup := rep == 0
		dist, err := workload.ParseDist(distName, 4096)
		if err != nil {
			return BenchRow{}, err
		}
		c := cluster.New(cluster.Options{
			Nodes: nodes,
			Place: policy,
			Store: store.Options{
				Shards:     8,
				Engine:     eng,
				Lock:       locks.TICKET,
				MaxThreads: benchClients + 2,
			},
		})
		scenario := workload.Scenario{
			Dist:     dist,
			Mix:      workload.Mix{Get: 95, Put: 5},
			Preload:  2048,
			Phases:   workload.RampSteady(benchClients, ops),
			Seed:     BenchSeed,
			Batch:    4,
			Pipeline: 8,
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		results, err := workload.Run(scenario, func(int) (workload.Conn, error) {
			return store.Driver{C: c.Dial(8)}, nil
		})
		runtime.ReadMemStats(&after)
		c.Close()
		if err != nil {
			return BenchRow{}, err
		}
		if warmup {
			continue
		}
		total := uint64(0)
		for _, ph := range results {
			total += ph.Ops
		}
		steady := results[len(results)-1]
		kops = append(kops, steady.Kops())
		if total > 0 {
			allocs = append(allocs, float64(after.Mallocs-before.Mallocs)/float64(total))
		}
	}
	return BenchRow{
		Engine:      string(eng),
		Nodes:       nodes,
		Dist:        distName,
		Place:       place,
		Kops:        stats.Round(stats.Median(kops), 1),
		KopsMAD:     stats.Round(stats.MAD(kops), 1),
		AllocsPerOp: stats.Round(stats.Median(allocs), 2),
		AllocsMAD:   stats.Round(stats.MAD(allocs), 2),
	}, nil
}

// WriteBench writes the file as indented JSON (the committed form).
func WriteBench(w io.Writer, f *BenchFile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadBench parses a reference file and validates its schema.
func ReadBench(r io.Reader) (*BenchFile, error) {
	var f BenchFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("bench reference: %w", err)
	}
	if f.Schema != BenchSchema {
		return nil, fmt.Errorf("bench reference: schema %q, this binary reads %q", f.Schema, BenchSchema)
	}
	return &f, nil
}

// CompareBench checks a fresh rerun of the sweep against the committed
// reference and returns one violation string per regression beyond
// noise bounds (empty means the gate passes). The comparison errors —
// rather than reporting violations — when the two files do not describe
// the same pinned sweep (different seed, sizes or axes), because then a
// row-by-row comparison would be meaningless.
//
// Bounds, per row:
//   - allocs/op is machine-independent; the fresh median must not
//     exceed the reference by more than max(1, 4×(refMAD+freshMAD)) —
//     one allocation of slack for scheduling noise, widened only by
//     measured repetition spread.
//   - Kops/s is machine-dependent; the fresh median must stay above
//     (1−tol)×reference with tol = max(0.40, 4×ΣMAD/median) — generous
//     enough to absorb host differences, tight enough that a lost
//     zero-alloc seam or an accidental O(n) (integer-factor slumps)
//     still trips it.
//
// Improvements never fail the gate; refresh the reference when one is
// intentional (see DESIGN).
func CompareBench(ref, fresh *BenchFile) ([]string, error) {
	if ref.Schema != fresh.Schema {
		return nil, fmt.Errorf("bench compare: schema %q vs %q", ref.Schema, fresh.Schema)
	}
	if ref.Seed != fresh.Seed || ref.Short != fresh.Short || ref.Reps != fresh.Reps {
		return nil, fmt.Errorf("bench compare: run config differs (seed %d/%d, short %v/%v, reps %d/%d) — not the same pinned sweep",
			ref.Seed, fresh.Seed, ref.Short, fresh.Short, ref.Reps, fresh.Reps)
	}
	byKey := map[string]BenchRow{}
	for _, r := range fresh.Rows {
		byKey[r.key()] = r
	}
	var violations []string
	for _, r := range ref.Rows {
		fr, ok := byKey[r.key()]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: missing from fresh run", r.key()))
			continue
		}
		allocTol := 4 * (r.AllocsMAD + fr.AllocsMAD)
		if allocTol < 1 {
			allocTol = 1
		}
		if fr.AllocsPerOp > r.AllocsPerOp+allocTol {
			violations = append(violations, fmt.Sprintf(
				"%s: %.2f allocs/op, reference %.2f (tolerance +%.2f) — hot path gained allocations",
				r.key(), fr.AllocsPerOp, r.AllocsPerOp, allocTol))
		}
		if r.Kops > 0 {
			tol := 4 * (r.KopsMAD + fr.KopsMAD) / r.Kops
			if tol < 0.40 {
				tol = 0.40
			}
			if floor := r.Kops * (1 - tol); fr.Kops < floor {
				violations = append(violations, fmt.Sprintf(
					"%s: %.1f Kops/s, reference %.1f (floor %.1f at %.0f%% tolerance)",
					r.key(), fr.Kops, r.Kops, floor, 100*tol))
			}
		}
	}
	sort.Strings(violations)
	return violations, nil
}
