package harness

import (
	"fmt"

	"ssync/internal/arch"
	"ssync/internal/store"
	"ssync/internal/topo"
	"ssync/internal/workload"
)

// This file registers the placement experiments behind PR 9's
// topology-aware shard placement: place/<engine> measures what each
// placement policy buys on the discovered host, and place/model
// reports the arch-model cost estimate that orders the policies even
// when the host is a single LLC domain and the measured rows honestly
// read as parity.

// placeShards is the shard count of the placement experiments — enough
// shards that a multi-domain assignment has real structure (several
// shards per domain on every paper model).
const placeShards = 16

// placePolicies is the swept policy axis. auto is omitted: it resolves
// to one of the others, so it would only duplicate a row.
var placePolicies = []topo.Policy{topo.PolicyNone, topo.PolicyCompact, topo.PolicyScatter}

// runPlacedScenario measures one engine under one policy × distribution
// over the wire (the wire path is where conn-goroutine pinning lives).
func runPlacedScenario(s Shard, eng store.Engine, pl *topo.Placement, dist workload.Dist) (float64, error) {
	ops := nativeOps(s.Config) / 4
	if ops < 200 {
		ops = 200
	}
	st := store.New(store.Options{
		Shards:     placeShards,
		Engine:     eng,
		MaxThreads: s.Threads + 2,
		Placement:  pl,
	})
	defer st.Close()
	srv := store.NewServer(st, 2)
	scenario := workload.Scenario{
		Dist:    dist,
		Mix:     workload.Mix{Get: 95, Put: 5},
		Preload: 2048,
		Phases:  workload.RampSteady(s.Threads, ops),
		Batch:   4,
	}
	results, err := workload.Run(scenario, func(int) (workload.Conn, error) {
		return store.Driver{C: srv.PipeAsyncClient(4)}, nil
	})
	if err != nil {
		return 0, err
	}
	return results[len(results)-1].Kops(), nil
}

func init() {
	// place/<engine>: the measured half — every policy × balanced and
	// skewed keys on this engine, over the discovered host topology.
	for _, eng := range store.Engines {
		eng := eng
		Register(Def{
			ID: "place/" + string(eng),
			Doc: fmt.Sprintf("host: %s engine under each shard-placement policy "+
				"(none, compact, scatter) × uniform/zipfian keys, wire Kops/s", eng),
			On: []string{Native},
			Runner: func(s Shard) ([]Sample, error) {
				var out []Sample
				for _, pol := range placePolicies {
					var pl *topo.Placement
					if pol.Pins() {
						pl = topo.NewPlacement(pol, nil) // nil: discover the host
					}
					for _, dist := range []workload.Dist{
						workload.NewUniform(4096),
						workload.NewZipfian(4096, 0),
					} {
						kops, err := runPlacedScenario(s, eng, pl, dist)
						if err != nil {
							return nil, err
						}
						out = append(out, Sample{
							Metric: fmt.Sprintf("%s/%s Kops/s", pol, dist.Name()),
							Value:  kops,
						})
					}
				}
				return out, nil
			},
		})
	}

	// place/model: the modeled half — the sweep-cost estimate of each
	// pinning policy on every paper machine model, in that machine's CAS
	// cycles. This is the row set that stays meaningful on single-domain
	// CI hosts: compact must come out at or below scatter on every model.
	Register(Def{
		ID: "place/model",
		Doc: "model: per-sweep coherence cost of compact vs scatter shard placement " +
			"on each paper machine model, CAS cycles",
		On: []string{Native},
		Runner: func(Shard) ([]Sample, error) {
			models := append(arch.All(), arch.Opteron2(), arch.Xeon2())
			var out []Sample
			for _, p := range models {
				t := topo.FromPlatform(p)
				for _, pol := range []topo.Policy{topo.PolicyCompact, topo.PolicyScatter} {
					pl := topo.NewPlacement(pol, t)
					cost := topo.EstimateCost(t, pl.ShardDomains(placeShards), pl.VisitOrder(placeShards))
					out = append(out, Sample{
						Metric: fmt.Sprintf("%s %s cycles/sweep", p.Name, pol),
						Value:  float64(cost),
					})
				}
			}
			return out, nil
		},
	})
}
