package harness

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"ssync/internal/bench"
	"ssync/internal/stats"
)

// Options shapes one runner invocation.
type Options struct {
	// Platforms restricts the grid; nil uses each experiment's own list.
	// Names are matched case-insensitively.
	Platforms []string
	// Threads restricts the grid; nil uses each experiment's default grid.
	Threads []int
	// Parallel is the worker-pool size executing shards; values below 1
	// mean sequential.
	Parallel int
	// Reps is the number of measured repetitions per shard (default 1).
	Reps int
	// Warmup is the number of discarded warm-up repetitions per shard.
	Warmup int
	// Config scales every run; zero fields fall back to bench defaults.
	Config bench.Config
}

// Result is the aggregate of one grid cell and metric over the measured
// repetitions.
type Result struct {
	Experiment string        `json:"experiment"`
	Platform   string        `json:"platform"`
	Threads    int           `json:"threads"`
	Metric     string        `json:"metric"`
	Stats      stats.Summary `json:"stats"`
}

// shard is one unit of work handed to the pool.
type shard struct {
	index int // grid position, for deterministic output ordering
	exp   Experiment
	plat  string
	n     int
}

// Run executes the experiment × platform × thread-count grid described by
// opt over the given experiments and returns one Result per cell and
// metric, in deterministic grid order regardless of scheduling. Shards
// that fail are reported in the joined error; the others still produce
// results.
func Run(exps []Experiment, opt Options) ([]Result, error) {
	shards, err := buildGrid(exps, opt)
	if err != nil {
		return nil, err
	}
	if len(shards) == 0 && len(exps) > 0 {
		var names []string
		for _, e := range exps {
			names = append(names, e.Name())
		}
		return nil, fmt.Errorf("harness: no experiment in %v runs on platforms %v", names, opt.Platforms)
	}
	if opt.Reps < 1 {
		opt.Reps = 1
	}
	workers := opt.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(shards) {
		workers = len(shards)
	}

	perShard := make([][]Result, len(shards))
	errs := make([]error, len(shards))
	jobs := make(chan shard)
	var wg sync.WaitGroup
	// Simulated shards parallelise freely (virtual time is immune to
	// scheduling), but native shards measure wall-clock time with
	// spinning goroutines, so each one gets the machine to itself:
	// native takes the write side of the lock, everything else the read
	// side.
	var wallclock sync.RWMutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				if s.plat == Native {
					wallclock.Lock()
				} else {
					wallclock.RLock()
				}
				perShard[s.index], errs[s.index] = runShard(s, opt)
				if s.plat == Native {
					wallclock.Unlock()
				} else {
					wallclock.RUnlock()
				}
			}
		}()
	}
	for _, s := range shards {
		jobs <- s
	}
	close(jobs)
	wg.Wait()

	var out []Result
	for _, rs := range perShard {
		out = append(out, rs...)
	}
	return out, errors.Join(errs...)
}

// buildGrid expands experiments × platforms × thread counts into shards.
func buildGrid(exps []Experiment, opt Options) ([]shard, error) {
	var restrict []string
	for _, name := range opt.Platforms {
		c := CanonicalPlatform(name)
		if c == "" {
			return nil, fmt.Errorf("harness: unknown platform %q", name)
		}
		restrict = append(restrict, c)
	}
	var shards []shard
	for _, e := range exps {
		plats := e.Platforms()
		if restrict != nil {
			var keep []string
			for _, p := range plats {
				for _, r := range restrict {
					if p == r {
						keep = append(keep, p)
						break
					}
				}
			}
			plats = keep // empty: experiment not on the requested platforms
		}
		for _, p := range plats {
			grid := opt.Threads
			if grid == nil {
				grid = e.Threads(p)
			}
			for _, n := range grid {
				shards = append(shards, shard{index: len(shards), exp: e, plat: p, n: n})
			}
		}
	}
	return shards, nil
}

// runShard executes one shard's warm-up and measured repetitions and
// aggregates per metric.
func runShard(s shard, opt Options) ([]Result, error) {
	base := Shard{Platform: s.plat, Threads: s.n, Config: opt.Config}
	for w := 0; w < opt.Warmup; w++ {
		sh := base
		sh.Rep, sh.Warmup = w, true
		if _, err := s.exp.Run(sh); err != nil {
			return nil, fmt.Errorf("%s on %s ×%d (warmup): %w", s.exp.Name(), s.plat, s.n, err)
		}
	}
	acc := map[string]*stats.Online{}
	var order []string
	for rep := 0; rep < opt.Reps; rep++ {
		sh := base
		sh.Rep = rep
		samples, err := s.exp.Run(sh)
		if err != nil {
			return nil, fmt.Errorf("%s on %s ×%d: %w", s.exp.Name(), s.plat, s.n, err)
		}
		for _, smp := range samples {
			o := acc[smp.Metric]
			if o == nil {
				o = &stats.Online{}
				acc[smp.Metric] = o
				order = append(order, smp.Metric)
			}
			o.Add(smp.Value)
		}
	}
	var out []Result
	for _, metric := range order {
		out = append(out, Result{
			Experiment: s.exp.Name(),
			Platform:   s.plat,
			Threads:    s.n,
			Metric:     metric,
			Stats:      acc[metric].Summary(),
		})
	}
	return out, nil
}

// SortResults orders results by experiment, platform, metric and thread
// count — the order the emitters group by.
func SortResults(rs []Result) {
	sort.SliceStable(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Platform != b.Platform {
			return a.Platform < b.Platform
		}
		if a.Metric != b.Metric {
			return strings.Compare(a.Metric, b.Metric) < 0
		}
		return a.Threads < b.Threads
	})
}
