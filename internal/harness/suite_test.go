package harness

import (
	"math"
	"testing"

	"ssync/internal/bench"
)

// tiny keeps every suite experiment to a few milliseconds.
var tiny = bench.Config{Deadline: 20_000, LatencyOps: 8, Reps: 1}

// TestSuiteRegistered pins the suite surface: the experiments the seven
// retired cmd/*bench binaries measured must all be present.
func TestSuiteRegistered(t *testing.T) {
	want := []string{
		"locks/single", "locks/many", "atomics/stress", "ticket/variants",
		"cc/latency", "mp/pair", "mp/clientserver",
		"ssht/high", "ssht/low", "tm/high", "tm/low", "kvs/set", "kvs/get", "rcl/hot",
		"native/locks", "native/lockfree", "native/ssht", "native/kvs", "native/tm", "native/mp",
		"store/tas", "store/ttas", "store/ticket", "store/array", "store/mutex",
		"store/mcs", "store/clh", "store/hclh", "store/hticket",
		"store-pipe/tas", "store-pipe/ttas", "store-pipe/ticket", "store-pipe/array",
		"store-pipe/mutex", "store-pipe/mcs", "store-pipe/clh", "store-pipe/hclh",
		"store-pipe/hticket",
	}
	for _, name := range want {
		if _, err := Default.ByName(name); err != nil {
			t.Errorf("suite experiment %s not registered: %v", name, err)
		}
	}
}

// TestEverySuiteExperimentRuns executes each registered experiment once on
// its cheapest platform with a tiny configuration and checks the samples
// are well-formed.
func TestEverySuiteExperimentRuns(t *testing.T) {
	for _, e := range Default.Experiments() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			plats := e.Platforms()
			pn := plats[len(plats)-1]
			grid := e.Threads(pn)
			samples, err := e.Run(Shard{Platform: pn, Threads: grid[0], Config: tiny})
			if err != nil {
				t.Fatal(err)
			}
			if len(samples) == 0 {
				t.Fatal("no samples")
			}
			seen := map[string]bool{}
			for _, s := range samples {
				if s.Metric == "" {
					t.Error("empty metric label")
				}
				if seen[s.Metric] {
					t.Errorf("duplicate metric %q", s.Metric)
				}
				seen[s.Metric] = true
				if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) || s.Value < 0 {
					t.Errorf("metric %q has bad value %v", s.Metric, s.Value)
				}
			}
		})
	}
}

// TestMinimumParticipantsDropped: client-server experiments cannot run
// one thread; the shard must produce no samples rather than a row
// mislabelled with the requested thread count.
func TestMinimumParticipantsDropped(t *testing.T) {
	for _, name := range []string{"mp/clientserver", "native/mp"} {
		e, err := Default.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range e.Threads(e.Platforms()[0]) {
			if n < 2 {
				t.Errorf("%s default grid contains %d threads", name, n)
			}
		}
		pn := e.Platforms()[0]
		samples, err := e.Run(Shard{Platform: pn, Threads: 1, Config: tiny})
		if err != nil || len(samples) != 0 {
			t.Errorf("%s at 1 thread = %v, %v; want no samples, no error", name, samples, err)
		}
	}
}

// TestSuiteExperimentRejectsUnknownPlatform: simulated runners must fail
// cleanly instead of panicking.
func TestSuiteExperimentRejectsUnknownPlatform(t *testing.T) {
	e, err := Default.ByName("locks/single")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(Shard{Platform: "PDP-11", Threads: 1, Config: tiny}); err == nil {
		t.Fatal("unknown platform must error")
	}
}
