// Package harness is the unified experiment driver of the suite: every
// member — the simulated reproductions in internal/bench and the native
// Go libraries (locks, mp, ssht, tm, kvs, lockfree) — registers as an
// Experiment, and one sharded runner executes any subset of the
// experiment × platform × thread-count grid in parallel, aggregates the
// repetitions through internal/stats and emits JSON, CSV or fixed-width
// tables. cmd/ssync is the CLI over this package.
package harness

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ssync/internal/arch"
	"ssync/internal/bench"
)

// Native is the pseudo-platform name of experiments that run real
// goroutines on the host instead of the simulator's machine models.
const Native = "native"

// Shard is one cell of the run grid: an experiment on one platform at one
// thread count, executed Config-scaled.
type Shard struct {
	// Platform is a machine-model name (arch.Names) or Native.
	Platform string
	// Threads is the grid thread count.
	Threads int
	// Rep is the repetition index, 0-based over the measured reps.
	Rep int
	// Warmup marks discarded warm-up repetitions.
	Warmup bool
	// Config scales the run (zero fields fall back to bench defaults).
	Config bench.Config
}

// Sample is one named measurement produced by a shard run.
type Sample struct {
	// Metric labels the measurement, e.g. a lock algorithm name.
	Metric string
	// Value is the measured quantity (Mops/s, Kops/s or cycles).
	Value float64
}

// Experiment is one registered suite member.
type Experiment interface {
	// Name is the registry key, e.g. "locks/single".
	Name() string
	// Description is a one-line summary for listings.
	Description() string
	// Platforms lists the platforms the experiment supports.
	Platforms() []string
	// Threads returns the default thread grid on a platform.
	Threads(platform string) []int
	// Run executes one shard and returns its samples.
	Run(s Shard) ([]Sample, error)
}

// Def is a declarative Experiment.
type Def struct {
	// ID is the registry name.
	ID string
	// Doc is the one-line description.
	Doc string
	// On lists the supported platforms; nil means the four paper models.
	On []string
	// Grid returns the default thread counts per platform; nil uses
	// DefaultThreads.
	Grid func(platform string) []int
	// Runner executes one shard.
	Runner func(s Shard) ([]Sample, error)
}

// Name implements Experiment.
func (d Def) Name() string { return d.ID }

// Description implements Experiment.
func (d Def) Description() string { return d.Doc }

// Platforms implements Experiment.
func (d Def) Platforms() []string {
	if d.On == nil {
		return PaperPlatforms()
	}
	return d.On
}

// Threads implements Experiment.
func (d Def) Threads(platform string) []int {
	if d.Grid == nil {
		return DefaultThreads(platform)
	}
	return d.Grid(platform)
}

// Run implements Experiment.
func (d Def) Run(s Shard) ([]Sample, error) { return d.Runner(s) }

// PaperPlatforms returns the four machine models of the paper's
// evaluation (the X2 extras Opteron2/Xeon2 are opt-in per experiment).
func PaperPlatforms() []string {
	return []string{"Opteron", "Xeon", "Niagara", "Tilera"}
}

// DefaultThreads returns the default grid for a platform: the paper's
// cross-platform Figure 8 counts for the models, a small power-of-two
// ladder for native runs.
func DefaultThreads(platform string) []int {
	if p := arch.ByName(platform); p != nil {
		return bench.Figure8Threads(p)
	}
	return []int{1, 2, 4, 8}
}

// CanonicalPlatform resolves a case-insensitive platform name ("xeon",
// "NATIVE") to its canonical spelling, or "" when unknown.
func CanonicalPlatform(name string) string {
	if strings.EqualFold(name, Native) {
		return Native
	}
	for _, n := range arch.Names() {
		if strings.EqualFold(n, name) {
			return n
		}
	}
	return ""
}

// Registry holds named experiments.
type Registry struct {
	mu   sync.RWMutex
	byID map[string]Experiment
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byID: map[string]Experiment{}} }

// Register adds an experiment; duplicate names error.
func (r *Registry) Register(e Experiment) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := e.Name()
	if name == "" {
		return fmt.Errorf("harness: experiment with empty name")
	}
	if _, dup := r.byID[name]; dup {
		return fmt.Errorf("harness: duplicate experiment %q", name)
	}
	r.byID[name] = e
	return nil
}

// Experiments returns every registered experiment sorted by name.
func (r *Registry) Experiments() []Experiment {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Experiment, 0, len(r.byID))
	for _, e := range r.byID {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// ByName returns the experiment with the given name, or an error listing
// the valid names.
func (r *Registry) ByName(name string) (Experiment, error) {
	r.mu.RLock()
	e, ok := r.byID[name]
	r.mu.RUnlock()
	if ok {
		return e, nil
	}
	var names []string
	for _, x := range r.Experiments() {
		names = append(names, x.Name())
	}
	return nil, fmt.Errorf("harness: unknown experiment %q (have %v)", name, names)
}

// Match resolves a set of patterns to experiments, in registry order and
// without duplicates. A pattern is an exact name, a "group/" prefix, or
// "all" (also the meaning of an empty pattern list).
func (r *Registry) Match(patterns []string) ([]Experiment, error) {
	all := r.Experiments()
	if len(patterns) == 0 {
		return all, nil
	}
	seen := map[string]bool{}
	var out []Experiment
	for _, pat := range patterns {
		if pat == "all" || pat == "" {
			for _, e := range all {
				if !seen[e.Name()] {
					seen[e.Name()] = true
					out = append(out, e)
				}
			}
			continue
		}
		matched := false
		for _, e := range all {
			if e.Name() == pat || (strings.HasSuffix(pat, "/") && strings.HasPrefix(e.Name(), pat)) {
				matched = true
				if !seen[e.Name()] {
					seen[e.Name()] = true
					out = append(out, e)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("harness: pattern %q matches no experiment (try `ssync list`)", pat)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

// Default is the registry the suite members register into and cmd/ssync
// serves.
var Default = NewRegistry()

// Register adds an experiment to the default registry, panicking on
// duplicates (registration is init-time wiring).
func Register(e Experiment) {
	if err := Default.Register(e); err != nil {
		panic(err)
	}
}
