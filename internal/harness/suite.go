package harness

import (
	"fmt"

	"ssync/internal/arch"
	"ssync/internal/bench"
	"ssync/internal/ccbench"
	"ssync/internal/simlocks"
)

// This file registers the simulated half of the suite: every experiment
// runs on the paper's machine models through internal/bench's per-cell
// runners, so one `ssync run` covers everything the lockbench, ccbench,
// mpbench, sshtbench, tmbench and kvbench binaries measured.

// atLeast filters a thread grid to counts ≥ min (for experiments that
// need a minimum number of participants).
func atLeast(min int, grid []int) []int {
	var out []int
	for _, n := range grid {
		if n >= min {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{min}
	}
	return out
}

// model resolves a shard's platform to its machine model.
func model(s Shard) (*arch.Platform, error) {
	p := arch.ByName(s.Platform)
	if p == nil {
		return nil, fmt.Errorf("unknown platform %q (have %v)", s.Platform, arch.Names())
	}
	return p, nil
}

// lockExperiment defines a per-algorithm lock-throughput experiment over
// nLocks locks.
func lockExperiment(id, doc string, nLocks int) Def {
	return Def{
		ID: id, Doc: doc,
		Runner: func(s Shard) ([]Sample, error) {
			p, err := model(s)
			if err != nil {
				return nil, err
			}
			var out []Sample
			for _, alg := range simlocks.Algorithms(p) {
				out = append(out, Sample{
					Metric: string(alg),
					Value:  bench.LockThroughput(p, alg, s.Threads, nLocks, s.Config),
				})
			}
			return out, nil
		},
	}
}

func init() {
	Register(lockExperiment("locks/single",
		"Figure 5: lock throughput, one lock (extreme contention), Mops/s per algorithm", 1))
	Register(lockExperiment("locks/many",
		"Figure 7: lock throughput, 512 locks (very low contention), Mops/s per algorithm", 512))

	Register(Def{
		ID:  "atomics/stress",
		Doc: "Figure 4: throughput of atomic operations on one location, Mops/s per primitive",
		Runner: func(s Shard) ([]Sample, error) {
			p, err := model(s)
			if err != nil {
				return nil, err
			}
			var out []Sample
			for _, op := range []string{"CAS", "TAS", "CAS based FAI", "SWAP", "FAI"} {
				out = append(out, Sample{Metric: op, Value: bench.AtomicThroughput(p, op, s.Threads, s.Config)})
			}
			return out, nil
		},
	})

	Register(Def{
		ID:  "ticket/variants",
		Doc: "Figure 3: ticket-lock implementations on the Opteron, acquire+release cycles",
		On:  []string{"Opteron"},
		Runner: func(s Shard) ([]Sample, error) {
			p, err := model(s)
			if err != nil {
				return nil, err
			}
			variants := []struct {
				name string
				opt  simlocks.Options
			}{
				{string(bench.TicketNaive), simlocks.Options{}},
				{string(bench.TicketBackoff), simlocks.Options{TicketBackoff: true}},
				{string(bench.TicketPrefetchw), simlocks.Options{TicketBackoff: true, TicketPrefetchw: true}},
			}
			var out []Sample
			for _, v := range variants {
				out = append(out, Sample{Metric: v.name, Value: bench.TicketLatency(p, v.opt, s.Threads, s.Config)})
			}
			return out, nil
		},
	})

	Register(Def{
		ID:   "cc/latency",
		Doc:  "Tables 2–3: cache-coherence and local-access latencies, cycles",
		Grid: func(string) []int { return []int{2} },
		Runner: func(s Shard) ([]Sample, error) {
			p, err := model(s)
			if err != nil {
				return nil, err
			}
			var out []Sample
			for _, r := range ccbench.Table3(p) {
				out = append(out, Sample{Metric: "local " + r.Level, Value: float64(r.Cycles)})
			}
			reps := s.Config.Reps
			if reps <= 0 {
				reps = bench.DefaultConfig().Reps
			}
			for _, class := range ccbench.ReportClasses(p) {
				for _, op := range []arch.Op{arch.Load, arch.Store, arch.CAS} {
					r := ccbench.Run(p, ccbench.Case{Op: op, State: arch.Modified, Class: class}, reps)
					out = append(out, Sample{
						Metric: fmt.Sprintf("%v M %s", op, p.DistNames[class]),
						Value:  r.Cycles,
					})
				}
			}
			return out, nil
		},
	})

	Register(Def{
		ID:   "mp/pair",
		Doc:  "Figure 9: one-to-one message passing by distance, cycles",
		Grid: func(string) []int { return []int{2} },
		Runner: func(s Shard) ([]Sample, error) {
			p, err := model(s)
			if err != nil {
				return nil, err
			}
			var out []Sample
			for _, r := range bench.Figure9(p, s.Config) {
				out = append(out,
					Sample{Metric: "one-way " + r.Class, Value: r.OneWay},
					Sample{Metric: "round-trip " + r.Class, Value: r.RoundTrip})
			}
			return out, nil
		},
	})

	Register(Def{
		ID:   "mp/clientserver",
		Doc:  "Figure 10: client-server message passing (threads = clients + 1 server), Mops/s",
		Grid: func(pn string) []int { return atLeast(2, DefaultThreads(pn)) },
		Runner: func(s Shard) ([]Sample, error) {
			p, err := model(s)
			if err != nil {
				return nil, err
			}
			if s.Threads < 2 {
				return nil, nil // needs one server and at least one client
			}
			ow, rt := bench.MPClientServer(p, s.Threads-1, s.Config)
			return []Sample{{Metric: "one-way", Value: ow}, {Metric: "round-trip", Value: rt}}, nil
		},
	})

	sshtExperiment := func(id, doc string, buckets, entries int) Def {
		return Def{
			ID: id, Doc: doc,
			Runner: func(s Shard) ([]Sample, error) {
				p, err := model(s)
				if err != nil {
					return nil, err
				}
				var out []Sample
				for _, alg := range simlocks.Algorithms(p) {
					out = append(out, Sample{
						Metric: string(alg),
						Value:  bench.SSHTLockThroughput(p, alg, s.Threads, buckets, entries, s.Config),
					})
				}
				out = append(out, Sample{
					Metric: "MP",
					Value:  bench.SSHTMPThroughput(p, s.Threads, buckets, entries, s.Config),
				})
				return out, nil
			},
		}
	}
	Register(sshtExperiment("ssht/high",
		"Figure 11: ssht hash table, 12 buckets × 12 entries (high contention), Mops/s", 12, 12))
	Register(sshtExperiment("ssht/low",
		"Figure 11: ssht hash table, 512 buckets × 12 entries (low contention), Mops/s", 512, 12))

	tmExperiment := func(id, doc string, stripes int) Def {
		return Def{
			ID: id, Doc: doc,
			Runner: func(s Shard) ([]Sample, error) {
				p, err := model(s)
				if err != nil {
					return nil, err
				}
				return []Sample{
					{Metric: "locks", Value: bench.TMLockThroughput(p, s.Threads, stripes, s.Config)},
					{Metric: "mp", Value: bench.TMMPThroughput(p, s.Threads, stripes, s.Config)},
				}, nil
			},
		}
	}
	Register(tmExperiment("tm/high", "§8 TM2C: 8 stripes (high contention), Mops/s", 8))
	Register(tmExperiment("tm/low", "§8 TM2C: 1024 stripes (low contention), Mops/s", 1024))

	kvsExperiment := func(id, doc string, get bool) Def {
		return Def{
			ID: id, Doc: doc,
			Grid: func(pn string) []int {
				if p := arch.ByName(pn); p != nil {
					return bench.Figure12Threads(p)
				}
				return DefaultThreads(pn)
			},
			Runner: func(s Shard) ([]Sample, error) {
				p, err := model(s)
				if err != nil {
					return nil, err
				}
				var out []Sample
				for _, alg := range bench.Figure12Algs {
					out = append(out, Sample{
						Metric: string(alg),
						Value:  bench.KVSThroughput(p, alg, s.Threads, get, s.Config),
					})
				}
				return out, nil
			},
		}
	}
	Register(kvsExperiment("kvs/set", "Figure 12: memcached-style set test, Kops/s per lock algorithm", false))
	Register(kvsExperiment("kvs/get", "§6.4 get test (lock-insensitive control), Kops/s per lock algorithm", true))

	Register(Def{
		ID:  "rcl/hot",
		Doc: "§7 Remote Core Locking: one hot critical section, best spin lock vs RCL, Mops/s",
		Runner: func(s Shard) ([]Sample, error) {
			p, err := model(s)
			if err != nil {
				return nil, err
			}
			best := 0.0
			for _, alg := range []simlocks.Alg{simlocks.TICKET, simlocks.CLH, simlocks.MCS} {
				if v := bench.LockThroughput(p, alg, s.Threads, 1, s.Config); v > best {
					best = v
				}
			}
			return []Sample{
				{Metric: "best-lock", Value: best},
				{Metric: "rcl", Value: bench.RCLThroughput(p, s.Threads, s.Config)},
			}, nil
		},
	})
}
