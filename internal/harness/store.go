package harness

import (
	"strings"

	"ssync/internal/locks"
	"ssync/internal/store"
	"ssync/internal/workload"
)

// This file registers the sharded key-value store (internal/store) as a
// family of experiments, one per lock algorithm: store/tas, store/ticket,
// store/mcs, ... Each runs the scenario engine (internal/workload) with
// a zipfian 95:5 get/put mix against the same store twice — once through
// in-process connections ("direct") and once through the length-prefixed
// wire protocol over net.Pipe ("wire") — so the grid shows both what the
// shard-lock choice costs and how much of it survives a real request
// path.

// storeShards is the shard count of the registered experiments; small
// enough that zipfian traffic meaningfully contends the hot shards.
const storeShards = 16

func init() {
	for _, alg := range locks.All {
		alg := alg
		Register(Def{
			ID: "store/" + strings.ToLower(string(alg)),
			Doc: "host: sharded KVS with " + string(alg) +
				" shard locks, zipfian 95:5 scenario, direct and wire Kops/s",
			On: []string{Native},
			Runner: func(s Shard) ([]Sample, error) {
				ops := nativeOps(s.Config) / 4
				if ops < 200 {
					ops = 200
				}
				var out []Sample
				for _, mode := range []string{"direct", "wire"} {
					st := store.New(store.Options{
						Shards:     storeShards,
						Lock:       alg,
						MaxThreads: s.Threads + 2,
					})
					srv := store.NewServer(st, 2)
					dial := func(c int) (workload.Conn, error) {
						if mode == "direct" {
							return store.Driver{C: st.NewLocalConn(c % 2)}, nil
						}
						return store.Driver{C: srv.PipeClient()}, nil
					}
					scenario := workload.Scenario{
						Dist:    workload.NewZipfian(4096, 0),
						Mix:     workload.Mix{Get: 95, Put: 5},
						Preload: 2048,
						Phases:  workload.RampSteady(s.Threads, ops),
					}
					results, err := workload.Run(scenario, dial)
					if err != nil {
						return nil, err
					}
					steady := results[len(results)-1]
					out = append(out, Sample{Metric: mode + " Kops/s", Value: steady.Kops()})
				}
				return out, nil
			},
		})
	}
}
