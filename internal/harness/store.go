package harness

import (
	"fmt"
	"strings"

	"ssync/internal/locks"
	"ssync/internal/store"
	"ssync/internal/workload"
)

// This file registers the sharded key-value store (internal/store) as a
// family of experiments, one per lock algorithm: store/tas, store/ticket,
// store/mcs, ... Each runs the scenario engine (internal/workload) with
// a zipfian 95:5 get/put mix against the same store twice — once through
// in-process connections ("direct") and once through the length-prefixed
// wire protocol over net.Pipe ("wire") — so the grid shows both what the
// shard-lock choice costs and how much of it survives a real request
// path.

// storeShards is the shard count of the registered experiments; small
// enough that zipfian traffic meaningfully contends the hot shards.
const storeShards = 16

// storePipeGrid is the depth×batch sweep of the store-pipe experiments:
// the lock-step scalar baseline, pipelining alone, batching alone, and
// both together — the four corners that show which lever pays where.
var storePipeGrid = []struct{ depth, batch int }{
	{1, 1}, {16, 1}, {1, 8}, {16, 8},
}

// runEngineScenario runs the shared zipfian 95:5 scenario against a
// fresh store built from opt, once direct and once over the wire — the
// measurement body every store-engine experiment shares.
func runEngineScenario(s Shard, opt store.Options) ([]Sample, error) {
	ops := nativeOps(s.Config) / 4
	if ops < 200 {
		ops = 200
	}
	var out []Sample
	for _, mode := range []string{"direct", "wire"} {
		st := store.New(opt)
		srv := store.NewServer(st, 2)
		dial := func(c int) (workload.Conn, error) {
			if mode == "direct" {
				return store.Driver{C: st.NewLocalConn(c % 2)}, nil
			}
			return store.Driver{C: srv.PipeClient()}, nil
		}
		scenario := workload.Scenario{
			Dist:    workload.NewZipfian(4096, 0),
			Mix:     workload.Mix{Get: 95, Put: 5},
			Preload: 2048,
			Phases:  workload.RampSteady(s.Threads, ops),
		}
		results, err := workload.Run(scenario, dial)
		st.Close()
		if err != nil {
			return nil, err
		}
		steady := results[len(results)-1]
		out = append(out, Sample{Metric: mode + " Kops/s", Value: steady.Kops()})
	}
	return out, nil
}

func init() {
	for _, alg := range locks.All {
		alg := alg
		Register(Def{
			ID: "store/" + strings.ToLower(string(alg)),
			Doc: "host: sharded KVS with " + string(alg) +
				" shard locks, zipfian 95:5 scenario, direct and wire Kops/s",
			On: []string{Native},
			Runner: func(s Shard) ([]Sample, error) {
				return runEngineScenario(s, store.Options{
					Shards:     storeShards,
					Lock:       alg,
					MaxThreads: s.Threads + 2,
				})
			},
		})
	}

	// store-engine/<engine>[/<alg>]: the paper's paradigm comparison run
	// end-to-end — the same store, scenario and wire protocol executed by
	// each shard engine. locked and optimistic sweep the lock algorithm
	// (the optimistic engine's writers still serialize through it); the
	// actor engine has no locks, so it registers once. Together with the
	// harness's thread sweep this is the engine × lock × threads grid.
	for _, eng := range []store.Engine{store.EngineLocked, store.EngineOptimistic} {
		eng := eng
		for _, alg := range locks.All {
			alg := alg
			Register(Def{
				ID: fmt.Sprintf("store-engine/%s/%s", eng, strings.ToLower(string(alg))),
				Doc: fmt.Sprintf("host: sharded KVS on the %s shard engine with %s locks, "+
					"zipfian 95:5 scenario, direct and wire Kops/s", eng, alg),
				On: []string{Native},
				Runner: func(s Shard) ([]Sample, error) {
					return runEngineScenario(s, store.Options{
						Shards:     storeShards,
						Engine:     eng,
						Lock:       alg,
						MaxThreads: s.Threads + 2,
					})
				},
			})
		}
	}
	Register(Def{
		ID: "store-engine/actor",
		Doc: "host: sharded KVS on the actor shard engine (goroutine-per-shard mailboxes, " +
			"no locks), zipfian 95:5 scenario, direct and wire Kops/s",
		On: []string{Native},
		Runner: func(s Shard) ([]Sample, error) {
			return runEngineScenario(s, store.Options{
				Shards: storeShards,
				Engine: store.EngineActor,
			})
		},
	})

	// store-pipe/<alg>: the same store behind the multiplexed async
	// client, sweeping pipeline depth × batch size. The d1×b1 corner is
	// the lock-step wire baseline in async clothing; the far corner shows
	// what amortizing messages (batch frames) and overlapping round trips
	// (the in-flight window) buy on top of the shard-lock choice.
	for _, alg := range locks.All {
		alg := alg
		Register(Def{
			ID: "store-pipe/" + strings.ToLower(string(alg)),
			Doc: "host: sharded KVS with " + string(alg) +
				" shard locks behind the pipelined wire client, depth×batch sweep Kops/s",
			On: []string{Native},
			Runner: func(s Shard) ([]Sample, error) {
				ops := nativeOps(s.Config) / 4
				if ops < 200 {
					ops = 200
				}
				var out []Sample
				for _, cell := range storePipeGrid {
					st := store.New(store.Options{
						Shards:     storeShards,
						Lock:       alg,
						MaxThreads: s.Threads + 2,
					})
					srv := store.NewServer(st, 2)
					dial := func(c int) (workload.Conn, error) {
						return store.Driver{C: srv.PipeAsyncClient(cell.depth)}, nil
					}
					scenario := workload.Scenario{
						Dist:     workload.NewZipfian(4096, 0),
						Mix:      workload.Mix{Get: 95, Put: 5},
						Preload:  2048,
						Phases:   workload.RampSteady(s.Threads, ops),
						Batch:    cell.batch,
						Pipeline: cell.depth,
					}
					results, err := workload.Run(scenario, dial)
					if err != nil {
						return nil, err
					}
					steady := results[len(results)-1]
					out = append(out, Sample{
						Metric: fmt.Sprintf("d%02d×b%02d Kops/s", cell.depth, cell.batch),
						Value:  steady.Kops(),
					})
				}
				return out, nil
			},
		})
	}
}
