package harness

import (
	"fmt"

	"ssync/internal/cluster"
	"ssync/internal/locks"
	"ssync/internal/store"
	"ssync/internal/workload"
)

// This file registers the multi-node cluster (internal/cluster) as a
// family of experiments: cluster/<n>x<engine> runs the scenario engine
// against an n-node cluster of stores on the given shard engine, routed
// by the consistent-hash ring through per-node async windows, and sweeps
// the key-distribution skew — uniform vs zipfian — because skew is what
// separates a balanced cluster from one node carrying the hot head.
// The n=1 rows are the single-node baseline the multi-node rows are
// read against.

// clusterNodeCounts is the node-count sweep of the registered cluster
// experiments.
var clusterNodeCounts = []int{1, 2, 4}

// clusterSkews is the skew sweep: one sample per distribution.
var clusterSkews = []string{"uniform", "zipfian"}

// runClusterScenario measures one node-count × engine cell across the
// skew sweep: a fresh cluster per distribution, batched pipelined
// routed clients, steady-phase Kops/s per skew.
func runClusterScenario(s Shard, nodes int, eng store.Engine) ([]Sample, error) {
	ops := nativeOps(s.Config) / 4
	if ops < 200 {
		ops = 200
	}
	var out []Sample
	for _, skew := range clusterSkews {
		dist, err := workload.ParseDist(skew, 4096)
		if err != nil {
			return nil, err
		}
		c := cluster.New(cluster.Options{
			Nodes: nodes,
			Store: store.Options{
				Shards:     8,
				Engine:     eng,
				Lock:       locks.TICKET,
				MaxThreads: s.Threads + 2,
			},
		})
		scenario := workload.Scenario{
			Dist:     dist,
			Mix:      workload.Mix{Get: 95, Put: 5},
			Preload:  2048,
			Phases:   workload.RampSteady(s.Threads, ops),
			Batch:    4,
			Pipeline: 8,
		}
		results, err := workload.Run(scenario, func(int) (workload.Conn, error) {
			return store.Driver{C: c.Dial(8)}, nil
		})
		c.Close()
		if err != nil {
			return nil, err
		}
		steady := results[len(results)-1]
		out = append(out, Sample{Metric: skew + " Kops/s", Value: steady.Kops()})
	}
	return out, nil
}

func init() {
	for _, nodes := range clusterNodeCounts {
		for _, eng := range store.Engines {
			nodes, eng := nodes, eng
			Register(Def{
				ID: fmt.Sprintf("cluster/%dx%s", nodes, eng),
				Doc: fmt.Sprintf("host: %d-node store cluster on the %s engine, "+
					"consistent-hash routed pipelined clients, uniform vs zipfian Kops/s", nodes, eng),
				On: []string{Native},
				Runner: func(s Shard) ([]Sample, error) {
					return runClusterScenario(s, nodes, eng)
				},
			})
		}
	}
}
