package harness

import (
	"sync"
	"time"

	"ssync/internal/bench"
	"ssync/internal/kvs"
	"ssync/internal/lockfree"
	"ssync/internal/locks"
	"ssync/internal/mp"
	"ssync/internal/ssht"
	"ssync/internal/tm"
	"ssync/internal/xrand"
)

// This file registers the native half of the suite: the same workloads
// driven with real goroutines on the host libraries (internal/locks, mp,
// ssht, tm, kvs, lockfree). Values are wall-clock Mops/s and therefore
// host-dependent; the Config deadline scales the operation counts so
// tests stay fast.

// nativeAlgs is the lock subset the native experiments sweep — one simple
// spin lock, the ticket lock, one queue lock and the pthread-style mutex.
var nativeAlgs = []locks.Algorithm{locks.TAS, locks.TICKET, locks.MCS, locks.MUTEX}

// nativeOps derives a per-goroutine operation count from the shard
// config's simulated-cycles deadline.
func nativeOps(cfg bench.Config) int {
	deadline := cfg.Deadline
	if deadline == 0 {
		deadline = bench.DefaultConfig().Deadline
	}
	ops := int(deadline / 20)
	if ops < 500 {
		ops = 500
	}
	if ops > 200_000 {
		ops = 200_000
	}
	return ops
}

// mopsSince converts an op count and start time to Mops/s.
func mopsSince(ops int, start time.Time) float64 {
	el := time.Since(start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(ops) / el / 1e6
}

func init() {
	Register(Def{
		ID:  "native/locks",
		Doc: "host: goroutines incrementing one counter under each lock algorithm, Mops/s",
		On:  []string{Native},
		Runner: func(s Shard) ([]Sample, error) {
			ops := nativeOps(s.Config)
			var out []Sample
			for _, alg := range nativeAlgs {
				l := locks.New(alg, locks.Options{MaxThreads: s.Threads + 1})
				var counter uint64
				start := time.Now()
				var wg sync.WaitGroup
				for g := 0; g < s.Threads; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						tok := l.NewToken(0)
						for i := 0; i < ops; i++ {
							l.Acquire(tok)
							counter++
							l.Release(tok)
						}
					}()
				}
				wg.Wait()
				out = append(out, Sample{Metric: string(alg), Value: mopsSince(ops*s.Threads, start)})
				_ = counter
			}
			return out, nil
		},
	})

	Register(Def{
		ID:  "native/lockfree",
		Doc: "host: Michael–Scott queue and Treiber stack vs a lock-based queue, Mops/s",
		On:  []string{Native},
		Runner: func(s Shard) ([]Sample, error) {
			ops := nativeOps(s.Config)
			run := func(enq func(uint64), deq func() bool) float64 {
				start := time.Now()
				var wg sync.WaitGroup
				for g := 0; g < s.Threads; g++ {
					g := g
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < ops; i++ {
							enq(uint64(g)<<32 | uint64(i))
							deq()
						}
					}()
				}
				wg.Wait()
				return mopsSince(2*ops*s.Threads, start)
			}
			q := lockfree.NewQueue[uint64]()
			st := lockfree.NewStack[uint64]()
			lq := lockfree.NewLockedQueue[uint64](locks.Locker{L: locks.New(locks.TICKET, locks.Options{})})
			return []Sample{
				{Metric: "ms-queue", Value: run(q.Enqueue, func() bool { _, ok := q.Dequeue(); return ok })},
				{Metric: "treiber-stack", Value: run(st.Push, func() bool { _, ok := st.Pop(); return ok })},
				{Metric: "locked-queue", Value: run(lq.Enqueue, func() bool { _, ok := lq.Dequeue(); return ok })},
			}, nil
		},
	})

	Register(Def{
		ID:  "native/ssht",
		Doc: "host: ssht hash table, 80/10/10 get/put/remove mix per lock algorithm plus the served (message-passing) mode, Mops/s",
		On:  []string{Native},
		Runner: func(s Shard) ([]Sample, error) {
			ops := nativeOps(s.Config)
			const keys = 4096
			var out []Sample
			for _, alg := range nativeAlgs {
				tbl := ssht.New(ssht.Options{Buckets: 64, Lock: alg, MaxThreads: s.Threads + 1})
				start := time.Now()
				var wg sync.WaitGroup
				for g := 0; g < s.Threads; g++ {
					g := g
					wg.Add(1)
					go func() {
						defer wg.Done()
						h := tbl.NewHandle(0)
						rng := xrand.New(uint64(g)*2654435761 + 99)
						for i := 0; i < ops; i++ {
							r := rng.Uint64()
							k := r % keys
							switch {
							case r>>32%10 < 8:
								h.Get(k)
							case r>>32%10 == 8:
								h.Put(k, ssht.Value{r})
							default:
								h.Remove(k)
							}
						}
					}()
				}
				wg.Wait()
				out = append(out, Sample{Metric: string(alg), Value: mopsSince(ops*s.Threads, start)})
			}

			// Served mode: one server per three clients, as in the paper.
			nServers := s.Threads / 4
			if nServers < 1 {
				nServers = 1
			}
			nClients := s.Threads - nServers
			if nClients < 1 {
				nClients = 1
			}
			srv := ssht.NewServed(64, nServers, nClients)
			clients := make([]*ssht.Client, nClients)
			for g := range clients {
				clients[g] = srv.NewClient(g)
			}
			start := time.Now()
			var wg sync.WaitGroup
			for g := 0; g < nClients; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					c := clients[g]
					rng := xrand.New(uint64(g)*48611 + 3)
					for i := 0; i < ops; i++ {
						r := rng.Uint64()
						k := r % keys
						switch {
						case r>>32%10 < 8:
							c.Get(k)
						case r>>32%10 == 8:
							c.Put(k, ssht.Value{r})
						default:
							c.Remove(k)
						}
					}
				}()
			}
			wg.Wait()
			clients[0].Close()
			out = append(out, Sample{Metric: "MP", Value: mopsSince(ops*nClients, start)})
			return out, nil
		},
	})

	Register(Def{
		ID:  "native/kvs",
		Doc: "host: memcached-style store, set-only memslap workload per lock algorithm, Kops/s",
		On:  []string{Native},
		Runner: func(s Shard) ([]Sample, error) {
			ops := nativeOps(s.Config)
			var out []Sample
			for _, alg := range nativeAlgs {
				store := kvs.New(kvs.Options{Lock: alg, Shards: 64})
				w := kvs.DefaultWorkload(true)
				w.Clients = s.Threads
				w.OpsPerClient = ops
				res := kvs.Run(store, w)
				out = append(out, Sample{Metric: string(alg), Value: res.Kops()})
			}
			return out, nil
		},
	})

	Register(Def{
		ID:  "native/tm",
		Doc: "host: lock-based TM, bank-transfer workload — commit throughput (Mops/s) and abort rate (%)",
		On:  []string{Native},
		Runner: func(s Shard) ([]Sample, error) {
			ops := nativeOps(s.Config)
			const accounts = 64
			runner := tm.NewLockBased(accounts)
			start := time.Now()
			var wg sync.WaitGroup
			for g := 0; g < s.Threads; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := xrand.New(uint64(g) + 1)
					for i := 0; i < ops; i++ {
						from, to := rng.Intn(accounts), rng.Intn(accounts)
						_ = runner.Run(func(tx tm.Tx) error {
							f := tx.Read(from)
							if f == 0 {
								tx.Write(from, 100)
								return nil
							}
							tx.Write(from, f-1)
							tx.Write(to, tx.Read(to)+1)
							return nil
						})
					}
				}()
			}
			wg.Wait()
			mops := mopsSince(ops*s.Threads, start)
			commits, aborts := runner.Stats()
			abortPct := 0.0
			if commits+aborts > 0 {
				abortPct = 100 * float64(aborts) / float64(commits+aborts)
			}
			return []Sample{{Metric: "Mops/s", Value: mops}, {Metric: "abort %", Value: abortPct}}, nil
		},
	})

	Register(Def{
		ID:   "native/mp",
		Doc:  "host: libssmp-style cache-line channels, ping-pong pairs, Mops/s (messages)",
		On:   []string{Native},
		Grid: func(pn string) []int { return atLeast(2, DefaultThreads(pn)) },
		Runner: func(s Shard) ([]Sample, error) {
			if s.Threads < 2 {
				return nil, nil // a ping-pong pair needs two goroutines
			}
			ops := nativeOps(s.Config)
			pairs := s.Threads / 2
			nw := mp.NewNetwork(2 * pairs)
			start := time.Now()
			var wg sync.WaitGroup
			for p := 0; p < pairs; p++ {
				client, server := 2*p, 2*p+1
				wg.Add(2)
				go func() {
					defer wg.Done()
					for i := 0; i < ops; i++ {
						nw.Call(client, server, mp.Msg{W: [7]uint64{uint64(i)}})
					}
				}()
				go func() {
					defer wg.Done()
					for i := 0; i < ops; i++ {
						msg := nw.Recv(server, client)
						nw.Send(server, client, msg)
					}
				}()
			}
			wg.Wait()
			return []Sample{{Metric: "round-trip", Value: mopsSince(ops*pairs, start)}}, nil
		},
	})
}
