package harness

import (
	"os"
	"testing"
)

// openBench reads a committed reference from the repository root.
func openBench(t *testing.T, name string) *BenchFile {
	t.Helper()
	r, err := os.Open("../../" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	f, err := ReadBench(r)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestBenchTrajectory gates the committed references against each
// other: the current PR's reference must hold every cell of the
// previous PR's within the same noise bounds CI applies to a fresh
// run. This is the "no silent regression across PRs" half of the
// trajectory — the CI bench-gate leg covers "no regression on this
// machine right now". The previous file predates the placement axis,
// so only its unplaced cells are gated; key() compatibility makes
// that pairing automatic.
func TestBenchTrajectory(t *testing.T) {
	prev := openBench(t, "BENCH_8.json")
	cur := openBench(t, "BENCH_9.json")
	if cur.PR <= prev.PR {
		t.Fatalf("reference PRs out of order: %d then %d", prev.PR, cur.PR)
	}
	v, err := CompareBench(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range v {
		t.Errorf("trajectory regression: %s", s)
	}
}

// TestBenchCommittedSelfConsistent: the current reference itself is
// well-formed — full grid, positive medians, placement axis recorded.
func TestBenchCommittedSelfConsistent(t *testing.T) {
	f := openBench(t, "BENCH_9.json")
	want := len(f.Engines) * len(f.Nodes) * len(f.Dists) * len(f.Places)
	if len(f.Rows) != want || want == 0 {
		t.Fatalf("%d rows, want %d", len(f.Rows), want)
	}
	if len(f.Places) != 2 {
		t.Fatalf("places axis %v, want [none compact]", f.Places)
	}
	seen := map[string]bool{}
	for _, r := range f.Rows {
		if r.Kops <= 0 || r.AllocsPerOp <= 0 {
			t.Errorf("%s: non-positive medians (%v Kops, %v allocs)", r.key(), r.Kops, r.AllocsPerOp)
		}
		if seen[r.key()] {
			t.Errorf("duplicate row key %s", r.key())
		}
		seen[r.key()] = true
	}
}
