package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestBenchSweepAndGate runs the pinned sweep at test scale and drives
// the whole reference lifecycle: emit → read back → self-check passes →
// an injected regression fails with a violation naming the cell.
func TestBenchSweepAndGate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full sweep grid")
	}
	f, err := RunBench(BenchConfig{PR: 8, Reps: 1, Short: true})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(f.Engines) * len(f.Nodes) * len(f.Dists) * len(f.Places)
	if len(f.Rows) != wantRows || wantRows == 0 {
		t.Fatalf("%d rows, want %d", len(f.Rows), wantRows)
	}
	for _, r := range f.Rows {
		if r.Kops <= 0 {
			t.Errorf("%s: Kops %v, want > 0", r.key(), r.Kops)
		}
		if r.AllocsPerOp <= 0 {
			t.Errorf("%s: allocs/op %v, want > 0 (batch parse copies exist by design)", r.key(), r.AllocsPerOp)
		}
	}

	// The committed form round-trips, header intact.
	var buf bytes.Buffer
	if err := WriteBench(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBench(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seed != BenchSeed || back.PR != 8 || !back.Short || len(back.Engines) == 0 {
		t.Fatalf("header did not survive the round trip: %+v", back)
	}

	// A sweep compared against itself is within every bound.
	if v, err := CompareBench(f, back); err != nil || len(v) != 0 {
		t.Fatalf("self-compare: violations %v, err %v", v, err)
	}

	// An alloc regression and a throughput collapse both trip the gate,
	// and the violation names the cell.
	bad := *back
	bad.Rows = append([]BenchRow(nil), back.Rows...)
	bad.Rows[0].AllocsPerOp += 50
	bad.Rows[1].Kops = back.Rows[1].Kops / 100
	v, err := CompareBench(f, &bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 2 {
		t.Fatalf("want 2 violations, got %v", v)
	}
	joined := strings.Join(v, "\n")
	for _, cell := range []string{bad.Rows[0].key(), bad.Rows[1].key()} {
		if !strings.Contains(joined, cell) {
			t.Errorf("violations do not name cell %s:\n%s", cell, joined)
		}
	}

	// Files from different pinned configurations refuse to compare.
	other := *back
	other.Seed++
	if _, err := CompareBench(f, &other); err == nil {
		t.Fatal("comparing different run configs must error")
	}
}

// TestBenchPlaceKeyCompat: references written before the placement axis
// (no place field) must match a fresh sweep's unplaced rows, and placed
// rows must key distinctly — this is what lets one BENCH_<pr>.json gate
// span the axis change.
func TestBenchPlaceKeyCompat(t *testing.T) {
	old := BenchRow{Engine: "actor", Nodes: 1, Dist: "uniform"}
	unplaced := BenchRow{Engine: "actor", Nodes: 1, Dist: "uniform", Place: "none"}
	placed := BenchRow{Engine: "actor", Nodes: 1, Dist: "uniform", Place: "compact"}
	if old.key() != unplaced.key() {
		t.Fatalf("pre-axis key %q != unplaced key %q", old.key(), unplaced.key())
	}
	if placed.key() == unplaced.key() {
		t.Fatalf("placed row does not key distinctly: %q", placed.key())
	}
	ref := &BenchFile{Schema: BenchSchema, Seed: BenchSeed, Reps: 1,
		Rows: []BenchRow{old}}
	fresh := &BenchFile{Schema: BenchSchema, Seed: BenchSeed, Reps: 1,
		Rows: []BenchRow{unplaced, placed}}
	v, err := CompareBench(ref, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("pre-axis reference vs placed sweep: %v", v)
	}
}

// TestBenchCompareMissingRow: a cell that disappeared from the fresh
// run is a violation, not silently skipped coverage.
func TestBenchCompareMissingRow(t *testing.T) {
	ref := &BenchFile{Schema: BenchSchema, Seed: BenchSeed, Reps: 1,
		Rows: []BenchRow{{Engine: "locked", Nodes: 1, Dist: "uniform", Kops: 100, AllocsPerOp: 2}}}
	fresh := &BenchFile{Schema: BenchSchema, Seed: BenchSeed, Reps: 1}
	v, err := CompareBench(ref, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Fatalf("want one missing-row violation, got %v", v)
	}
}
