package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"ssync/internal/bench"
	"ssync/internal/stats"
)

// Emitter renders a result set.
type Emitter interface {
	Emit(w io.Writer, results []Result) error
}

// EmitterFor maps a format name ("json", "csv" or "table") to its
// emitter.
func EmitterFor(format string) (Emitter, error) {
	switch format {
	case "json":
		return JSON{}, nil
	case "csv":
		return CSV{}, nil
	case "table", "":
		return Table{}, nil
	}
	return nil, fmt.Errorf("harness: unknown output format %q (have json, csv, table)", format)
}

// JSON emits the results as an indented JSON array.
type JSON struct{}

// Emit implements Emitter. Float statistics are rounded to three
// decimal places: full float64 precision makes committed result files
// churn on every regeneration, and nothing downstream reads digits a
// run-to-run rerun can't reproduce anyway.
func (JSON) Emit(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if results == nil {
		results = []Result{}
	}
	rounded := make([]Result, len(results))
	for i, r := range results {
		r.Stats.Mean = stats.Round(r.Stats.Mean, 3)
		r.Stats.Stddev = stats.Round(r.Stats.Stddev, 3)
		r.Stats.Min = stats.Round(r.Stats.Min, 3)
		r.Stats.Max = stats.Round(r.Stats.Max, 3)
		rounded[i] = r
	}
	return enc.Encode(rounded)
}

// CSV emits one row per result with a header line.
type CSV struct{}

// Emit implements Emitter.
func (CSV) Emit(w io.Writer, results []Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"experiment", "platform", "threads", "metric", "mean", "stddev", "min", "max", "reps"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
	for _, r := range results {
		rec := []string{
			r.Experiment, r.Platform, strconv.Itoa(r.Threads), r.Metric,
			f(r.Stats.Mean), f(r.Stats.Stddev), f(r.Stats.Min), f(r.Stats.Max),
			strconv.FormatUint(r.Stats.N, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table renders one fixed-width table per experiment × platform, metrics
// as columns and thread counts as rows, through the same figure formatter
// the cmd/ tools print with.
type Table struct{}

// Emit implements Emitter.
func (Table) Emit(w io.Writer, results []Result) error {
	type group struct {
		exp, plat string
	}
	figs := map[group]*bench.Figure{}
	var order []group
	for _, r := range results {
		g := group{r.Experiment, r.Platform}
		fig := figs[g]
		if fig == nil {
			fig = &bench.Figure{Name: r.Experiment, Platform: r.Platform, XLabel: "threads"}
			figs[g] = fig
			order = append(order, g)
		}
		s := bench.FindSeries(*fig, r.Metric)
		if s == nil {
			fig.Series = append(fig.Series, bench.Series{Label: r.Metric})
			s = &fig.Series[len(fig.Series)-1]
		}
		s.Points = append(s.Points, bench.Point{X: r.Threads, Y: r.Stats.Mean})
	}
	for _, g := range order {
		if _, err := fmt.Fprintln(w, bench.FormatFigure(*figs[g])); err != nil {
			return err
		}
	}
	return nil
}
