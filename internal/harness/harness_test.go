package harness

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ssync/internal/bench"
)

// fake builds a deterministic experiment for runner tests.
type fake struct {
	Def
	inflight atomic.Int32
	peak     atomic.Int32
	warmups  atomic.Int32
	runs     atomic.Int32
	block    time.Duration
}

func newFake(name string, platforms []string, values func(s Shard) []Sample) *fake {
	f := &fake{}
	f.Def = Def{
		ID: name, Doc: "fake " + name, On: platforms,
		Runner: func(s Shard) ([]Sample, error) {
			cur := f.inflight.Add(1)
			for {
				p := f.peak.Load()
				if cur <= p || f.peak.CompareAndSwap(p, cur) {
					break
				}
			}
			if f.block > 0 {
				time.Sleep(f.block)
			}
			f.inflight.Add(-1)
			if s.Warmup {
				f.warmups.Add(1)
				return nil, nil
			}
			f.runs.Add(1)
			return values(s), nil
		},
	}
	return f
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	a := newFake("grp/a", []string{Native}, nil)
	b := newFake("grp/b", []string{Native}, nil)
	c := newFake("other", []string{Native}, nil)
	for _, e := range []Experiment{b, a, c} {
		if err := r.Register(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Register(a); err == nil {
		t.Fatal("duplicate registration must error")
	}
	var names []string
	for _, e := range r.Experiments() {
		names = append(names, e.Name())
	}
	if got := strings.Join(names, ","); got != "grp/a,grp/b,other" {
		t.Fatalf("Experiments() order = %s", got)
	}
	if _, err := r.ByName("grp/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ByName("nope"); err == nil {
		t.Fatal("unknown name must error")
	}
	group, err := r.Match([]string{"grp/"})
	if err != nil {
		t.Fatal(err)
	}
	if len(group) != 2 {
		t.Fatalf("prefix match found %d experiments, want 2", len(group))
	}
	all, err := r.Match([]string{"all"})
	if err != nil || len(all) != 3 {
		t.Fatalf("Match(all) = %d experiments, %v", len(all), err)
	}
	if _, err := r.Match([]string{"grp/zzz"}); err == nil {
		t.Fatal("unmatched pattern must error")
	}
}

func TestRunnerGridAndAggregation(t *testing.T) {
	// Value = threads*1000 + rep: mean/min/max across reps are exact.
	f := newFake("agg", []string{"Opteron", "Xeon"}, func(s Shard) []Sample {
		return []Sample{
			{Metric: "m", Value: float64(s.Threads*1000 + s.Rep)},
			{Metric: "fixed", Value: 7},
		}
	})
	res, err := Run([]Experiment{f}, Options{
		Platforms: []string{"xeon"}, // case-insensitive restriction
		Threads:   []int{2, 4},
		Reps:      3,
		Warmup:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.warmups.Load(); got != 4 {
		t.Errorf("warmup runs = %d, want 2 shards × 2", got)
	}
	if got := f.runs.Load(); got != 6 {
		t.Errorf("measured runs = %d, want 2 shards × 3 reps", got)
	}
	if len(res) != 4 {
		t.Fatalf("results = %d, want 2 shards × 2 metrics", len(res))
	}
	r0 := res[0]
	if r0.Experiment != "agg" || r0.Platform != "Xeon" || r0.Threads != 2 || r0.Metric != "m" {
		t.Fatalf("unexpected first result %+v", r0)
	}
	if r0.Stats.N != 3 || r0.Stats.Min != 2000 || r0.Stats.Max != 2002 || r0.Stats.Mean != 2001 {
		t.Fatalf("aggregation wrong: %+v", r0.Stats)
	}
	// Warmup reps must not contaminate the stats (warmup returns nothing,
	// and rep indices restart at 0 for the measured phase).
	if res[3].Stats.Mean != 7 || res[3].Stats.Stddev != 0 {
		t.Fatalf("fixed metric aggregation wrong: %+v", res[3].Stats)
	}
}

func TestRunnerParallelSharding(t *testing.T) {
	f := newFake("par", []string{"Opteron"}, func(s Shard) []Sample {
		return []Sample{{Metric: "x", Value: 1}}
	})
	f.block = 20 * time.Millisecond
	_, err := Run([]Experiment{f}, Options{Threads: []int{1, 2, 3, 4, 5, 6}, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if peak := f.peak.Load(); peak < 2 {
		t.Errorf("peak in-flight shards = %d with Parallel=4, want ≥2", peak)
	}
	// Sequential execution must never overlap shards.
	f2 := newFake("seq", []string{"Opteron"}, func(s Shard) []Sample {
		return []Sample{{Metric: "x", Value: 1}}
	})
	if _, err := Run([]Experiment{f2}, Options{Threads: []int{1, 2, 3}, Parallel: 1}); err != nil {
		t.Fatal(err)
	}
	if peak := f2.peak.Load(); peak != 1 {
		t.Errorf("peak in-flight shards = %d with Parallel=1, want 1", peak)
	}
	// Native shards measure wall-clock time, so the runner must give
	// each one the machine to itself even when the pool is wide.
	f3 := newFake("excl", []string{Native}, func(s Shard) []Sample {
		return []Sample{{Metric: "x", Value: 1}}
	})
	f3.block = 5 * time.Millisecond
	if _, err := Run([]Experiment{f3}, Options{Threads: []int{1, 2, 3, 4}, Parallel: 4}); err != nil {
		t.Fatal(err)
	}
	if peak := f3.peak.Load(); peak != 1 {
		t.Errorf("peak in-flight native shards = %d with Parallel=4, want 1 (exclusive)", peak)
	}
}

func TestRunnerDeterministicOrderUnderParallelism(t *testing.T) {
	// A real simulated experiment must produce byte-identical results
	// regardless of the worker-pool size.
	e, err := Default.ByName("locks/single")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		Platforms: []string{"Opteron"},
		Threads:   []int{1, 2, 6},
		Config:    bench.Config{Deadline: 20_000, LatencyOps: 8, Reps: 1},
	}
	opt.Parallel = 1
	seq, err := Run([]Experiment{e}, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallel = 8
	par, err := Run([]Experiment{e}, opt)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := (JSON{}).Emit(&a, seq); err != nil {
		t.Fatal(err)
	}
	if err := (JSON{}).Emit(&b, par); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("parallel run differs from sequential run on the deterministic simulator")
	}
}

func TestRunnerUnknownPlatform(t *testing.T) {
	f := newFake("p", nil, func(Shard) []Sample { return nil })
	if _, err := Run([]Experiment{f}, Options{Platforms: []string{"PDP-11"}}); err == nil {
		t.Fatal("unknown platform must error")
	}
}

func TestJSONEmitter(t *testing.T) {
	f := newFake("grp/json", []string{Native}, func(s Shard) []Sample {
		return []Sample{{Metric: "Mops/s", Value: float64(10 * s.Threads)}}
	})
	res, err := Run([]Experiment{f}, Options{Threads: []int{1, 8}, Parallel: 2, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := (JSON{}).Emit(&buf, res); err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		Experiment string `json:"experiment"`
		Platform   string `json:"platform"`
		Threads    int    `json:"threads"`
		Metric     string `json:"metric"`
		Stats      struct {
			N    uint64  `json:"n"`
			Mean float64 `json:"mean"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if len(decoded) != 2 {
		t.Fatalf("decoded %d results, want 2", len(decoded))
	}
	if d := decoded[1]; d.Experiment != "grp/json" || d.Platform != Native ||
		d.Threads != 8 || d.Metric != "Mops/s" || d.Stats.Mean != 80 || d.Stats.N != 2 {
		t.Fatalf("decoded result wrong: %+v", d)
	}
}

func TestCSVEmitter(t *testing.T) {
	res := []Result{{Experiment: "e", Platform: "Xeon", Threads: 4, Metric: "m"}}
	res[0].Stats.N, res[0].Stats.Mean = 2, 1.5
	var buf bytes.Buffer
	if err := (CSV{}).Emit(&buf, res); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0] != "experiment" || rows[1][2] != "4" || rows[1][4] != "1.5" {
		t.Fatalf("CSV rows wrong: %v", rows)
	}
}

func TestTableEmitter(t *testing.T) {
	f := newFake("grp/tbl", []string{"Opteron"}, func(s Shard) []Sample {
		return []Sample{{Metric: "TAS", Value: 1}, {Metric: "MCS", Value: 2}}
	})
	res, err := Run([]Experiment{f}, Options{Threads: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := (Table{}).Emit(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"grp/tbl", "Opteron", "threads", "TAS", "MCS"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestEmitterFor(t *testing.T) {
	for _, f := range []string{"json", "csv", "table", ""} {
		if _, err := EmitterFor(f); err != nil {
			t.Errorf("EmitterFor(%q): %v", f, err)
		}
	}
	if _, err := EmitterFor("xml"); err == nil {
		t.Error("unknown format must error")
	}
}

func TestCanonicalPlatform(t *testing.T) {
	for in, want := range map[string]string{
		"xeon": "Xeon", "OPTERON": "Opteron", "native": Native, "Native": Native, "vax": "",
	} {
		if got := CanonicalPlatform(in); got != want {
			t.Errorf("CanonicalPlatform(%q) = %q, want %q", in, got, want)
		}
	}
}
