package harness

import (
	"strings"
	"testing"
)

// TestPlaceEngineExperiments runs each place/<engine> experiment at
// tiny scale: the full policy × distribution grid must produce rows
// with positive throughput under every policy (placement must never
// break an engine, even when pinning no-ops on this host).
func TestPlaceEngineExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the policy grid on every engine")
	}
	for _, name := range []string{"place/locked", "place/actor", "place/optimistic"} {
		name := name
		t.Run(name, func(t *testing.T) {
			e, err := Default.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			samples, err := e.Run(Shard{Platform: Native, Threads: 2, Config: tiny})
			if err != nil {
				t.Fatal(err)
			}
			// 3 policies × 2 distributions.
			if len(samples) != 6 {
				t.Fatalf("%d samples, want 6: %+v", len(samples), samples)
			}
			for _, s := range samples {
				if s.Value <= 0 {
					t.Errorf("%s: %v Kops/s, want > 0", s.Metric, s.Value)
				}
			}
		})
	}
}

// TestPlaceModelExperiment: the modeled sweep costs must order the
// policies on every machine model — compact at or below scatter. This
// is the assertion that carries the locality claim on single-domain
// hosts, where the measured rows read as parity.
func TestPlaceModelExperiment(t *testing.T) {
	e, err := Default.ByName("place/model")
	if err != nil {
		t.Fatal(err)
	}
	samples, err := e.Run(Shard{Platform: Native, Threads: 1, Config: tiny})
	if err != nil {
		t.Fatal(err)
	}
	costs := map[string]float64{}
	for _, s := range samples {
		costs[s.Metric] = s.Value
	}
	if len(costs) != len(samples) || len(samples) == 0 {
		t.Fatalf("duplicate or missing metrics: %+v", samples)
	}
	checked := 0
	for metric, compact := range costs {
		if !strings.Contains(metric, " compact ") {
			continue
		}
		scatterMetric := strings.Replace(metric, " compact ", " scatter ", 1)
		scatter, ok := costs[scatterMetric]
		if !ok {
			t.Fatalf("no scatter row pairing %q", metric)
		}
		if compact > scatter {
			t.Errorf("%s: compact %v > scatter %v — compact must minimize sweep cost",
				metric, compact, scatter)
		}
		checked++
	}
	// Four paper models plus the two 2-domain variants.
	if checked != 6 {
		t.Fatalf("checked %d model pairs, want 6", checked)
	}
}
