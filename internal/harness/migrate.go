package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ssync/internal/cluster"
	"ssync/internal/locks"
	"ssync/internal/store"
	"ssync/internal/workload"
	"ssync/internal/xrand"
)

// This file measures elastic membership: MigrateBench drives a cluster
// with live traffic, resizes it mid-run (grow, then optionally shrink),
// and reports what the resize cost the clients — the steady throughput
// before, the worst sampling interval during the migration window (the
// dip), and how long the cluster took to climb back to 90% of steady.
// The migrate/<n>x<engine> experiments and `ssync cluster -resize`
// share it.

// MigrateBenchConfig configures one live-resize measurement.
type MigrateBenchConfig struct {
	// Nodes is the starting member count. Default 2.
	Nodes int
	// Vnodes is the ring's virtual-point count per node.
	Vnodes int
	// Engine is the shard engine of every node's store.
	Engine store.Engine
	// Lock is the shard-lock algorithm. Default TICKET.
	Lock locks.Algorithm
	// Shards per node. Default 8.
	Shards int
	// Clients is the number of lock-step routed clients hammering the
	// cluster throughout. Default 4.
	Clients int
	// Keys is the key-space size. Default 4096.
	Keys uint64
	// Preload is the number of keys loaded before traffic starts.
	// Default half the key space.
	Preload int
	// ValueSize is the value payload in bytes. Default 64.
	ValueSize int
	// Steady is the pre-resize measurement window. Default 250ms.
	Steady time.Duration
	// Tail is the post-resize window (the recovery has to happen in
	// it). Default Steady.
	Tail time.Duration
	// Remove also removes an original member after the add — the full
	// grow-then-shrink cycle.
	Remove bool
}

func (c MigrateBenchConfig) withDefaults() MigrateBenchConfig {
	if c.Nodes < 1 {
		c.Nodes = 2
	}
	if c.Engine == "" {
		c.Engine = store.EngineLocked
	}
	if c.Lock == "" {
		c.Lock = locks.TICKET
	}
	if c.Shards < 1 {
		c.Shards = 8
	}
	if c.Clients < 1 {
		c.Clients = 4
	}
	if c.Keys == 0 {
		c.Keys = 4096
	}
	if c.Preload == 0 {
		c.Preload = int(c.Keys / 2)
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 64
	}
	if c.Steady <= 0 {
		c.Steady = 250 * time.Millisecond
	}
	if c.Tail <= 0 {
		c.Tail = c.Steady
	}
	return c
}

// MigrateBenchResult is what one live resize cost the clients.
type MigrateBenchResult struct {
	// SteadyKops is the pre-resize throughput.
	SteadyKops float64
	// DipKops is the slowest post-resize-start sampling interval.
	DipKops float64
	// DipPct is the share of steady throughput lost at that interval.
	DipPct float64
	// RecoveryMs is the time from resize start until an interval first
	// reaches 90% of steady again (the full window if it never does).
	RecoveryMs float64
	// AddMs / RemoveMs are the blocking durations of the membership
	// calls themselves (copy + commit, as seen by the operator).
	AddMs, RemoveMs float64
	// Moved is how many keys the grow step relocated onto the new node.
	Moved int
}

// MigrateBench runs one live-resize measurement.
func MigrateBench(cfg MigrateBenchConfig) (MigrateBenchResult, error) {
	cfg = cfg.withDefaults()
	var res MigrateBenchResult
	c := cluster.New(cluster.Options{
		Nodes:  cfg.Nodes,
		Vnodes: cfg.Vnodes,
		Store: store.Options{
			Shards: cfg.Shards,
			Engine: cfg.Engine,
			Lock:   cfg.Lock,
			// Headroom beyond the clients: mesh forwarding conns and the
			// migration driver also touch the shards (matters to ARRAY
			// locks, which MaxThreads sizes).
			MaxThreads: cfg.Clients + 8,
		},
	})
	defer c.Close()

	if cfg.Preload > 0 {
		cl := c.Dial(0)
		err := workload.Preload(store.Driver{C: cl}, cfg.Preload, cfg.ValueSize)
		cl.Close()
		if err != nil {
			return res, fmt.Errorf("preload: %w", err)
		}
	}

	// Traffic: lock-step routed clients, 90:10 get:put — lock-step
	// because a per-op client is the most sensitive probe of the commit
	// pause (an async window would hide it).
	var ops atomic.Uint64
	stop := make(chan struct{})
	errs := make([]error, cfg.Clients)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := c.Dial(1)
			defer cl.Close()
			rng := xrand.New(uint64(i)*0x9E3779B97F4A7C15 + 7)
			value := make([]byte, cfg.ValueSize)
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := workload.Key(rng.Uint64n(cfg.Keys))
				var err error
				if rng.Uint64n(100) < 10 {
					_, err = cl.Put(key, value)
				} else {
					_, _, err = cl.Get(key)
				}
				if err != nil {
					errs[i] = err
					return
				}
				ops.Add(1)
			}
		}()
	}

	// Sampler: cumulative op counts on a fixed cadence, turned into
	// per-interval rates afterwards.
	const sampleEvery = 10 * time.Millisecond
	type tick struct {
		at time.Time
		n  uint64
	}
	var mu sync.Mutex
	var ticks []tick
	samplerStop := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		tk := time.NewTicker(sampleEvery)
		defer tk.Stop()
		for {
			select {
			case <-samplerStop:
				return
			case at := <-tk.C:
				n := ops.Load()
				mu.Lock()
				ticks = append(ticks, tick{at: at, n: n})
				mu.Unlock()
			}
		}
	}()

	finish := func() error {
		close(stop)
		wg.Wait()
		close(samplerStop)
		samplerWG.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	// Steady window.
	time.Sleep(50 * time.Millisecond) // warm-up, unmeasured
	steadyFrom, fromN := time.Now(), ops.Load()
	time.Sleep(cfg.Steady)
	steadySecs := time.Since(steadyFrom).Seconds()
	res.SteadyKops = float64(ops.Load()-fromN) / steadySecs / 1e3

	// The resize, under full load.
	oldRing := c.Ring()
	resizeStart := time.Now()
	_, err := c.AddNode()
	res.AddMs = float64(time.Since(resizeStart).Microseconds()) / 1e3
	if err != nil {
		ferr := finish()
		if ferr != nil {
			return res, fmt.Errorf("add node: %w (traffic: %v)", err, ferr)
		}
		return res, fmt.Errorf("add node: %w", err)
	}
	for i := uint64(0); i < cfg.Keys; i++ {
		if key := workload.Key(i); oldRing.Owner(key) != c.Ring().Owner(key) {
			res.Moved++
		}
	}
	if cfg.Remove {
		at := time.Now()
		if err := c.RemoveNode(0); err != nil {
			ferr := finish()
			if ferr != nil {
				return res, fmt.Errorf("remove node: %w (traffic: %v)", err, ferr)
			}
			return res, fmt.Errorf("remove node: %w", err)
		}
		res.RemoveMs = float64(time.Since(at).Microseconds()) / 1e3
	}

	// Tail window, then tear down.
	time.Sleep(cfg.Tail)
	if err := finish(); err != nil {
		return res, err
	}

	// Dip and recovery from the sampled intervals after resize start.
	res.DipKops = res.SteadyKops
	res.RecoveryMs = float64(time.Since(resizeStart).Milliseconds())
	recovered := false
	for i := 1; i < len(ticks); i++ {
		prev, cur := ticks[i-1], ticks[i]
		if cur.at.Before(resizeStart) {
			continue
		}
		secs := cur.at.Sub(prev.at).Seconds()
		if secs <= 0 {
			continue
		}
		rate := float64(cur.n-prev.n) / secs / 1e3
		if rate < res.DipKops {
			res.DipKops = rate
		}
		if !recovered && rate >= 0.9*res.SteadyKops {
			res.RecoveryMs = float64(cur.at.Sub(resizeStart).Milliseconds())
			recovered = true
		}
	}
	if res.SteadyKops > 0 {
		res.DipPct = 100 * (res.SteadyKops - res.DipKops) / res.SteadyKops
	}
	return res, nil
}

// migrateNodeCounts is the starting-size sweep of the registered
// migrate experiments.
var migrateNodeCounts = []int{2, 4}

func init() {
	for _, nodes := range migrateNodeCounts {
		for _, eng := range store.Engines {
			nodes, eng := nodes, eng
			Register(Def{
				ID: fmt.Sprintf("migrate/%dx%s", nodes, eng),
				Doc: fmt.Sprintf("host: live ring resize of a %d-node %s-engine cluster under load — "+
					"steady vs dip Kops/s, recovery and migration time", nodes, eng),
				On: []string{Native},
				Runner: func(s Shard) ([]Sample, error) {
					res, err := MigrateBench(MigrateBenchConfig{
						Nodes:   nodes,
						Engine:  eng,
						Clients: s.Threads,
						Steady:  200 * time.Millisecond,
						Remove:  true,
					})
					if err != nil {
						return nil, err
					}
					return []Sample{
						{Metric: "steady Kops/s", Value: res.SteadyKops},
						{Metric: "dip %", Value: res.DipPct},
						{Metric: "recovery ms", Value: res.RecoveryMs},
						{Metric: "add ms", Value: res.AddMs},
						{Metric: "remove ms", Value: res.RemoveMs},
					}, nil
				},
			})
		}
	}
}
