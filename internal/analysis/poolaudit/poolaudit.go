// Package poolaudit flow-tracks sync.Pool buffers through the function
// that obtained them. The zero-allocation wire path is sound only
// because of the parse-copies-out invariant: a pooled frame buffer
// (server conn scratch, client encode/read scratch, the cluster
// client's route-index groups) is only valid until its Put, so every
// parse path must copy variable-length data out before the buffer is
// released, and the buffer itself must never escape its owner. The
// analyzer makes the escape half of that invariant a lint error: a
// pooled value stored into a struct field, sent on a channel, captured
// by a spawned goroutine, returned, or used after its Put is reported
// unless the site is blessed.
//
// Tracking is intra-procedural and conservative-by-silence: values
// laundered through helper calls are not followed. Two directives
// extend it across the seams the repo actually uses:
//
//   - //ssync:pooled on a function marks it a pooled-buffer provider —
//     its callers' results are tracked like pool.Get results, and the
//     ownership-establishing stores inside it are trusted;
//   - //ssync:ignore poolaudit <why> blesses a documented hand-off
//     (an owner struct that carries the buffer to a single release
//     point, a goroutine joined before release).
package poolaudit

import (
	"go/ast"
	"go/token"
	"go/types"

	"ssync/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolaudit",
	Doc: "sync.Pool buffers must not outlive their owner: stores into " +
		"fields, channel sends, goroutine captures, returns and " +
		"use-after-Put of pooled values are flagged; bless documented " +
		"hand-offs with //ssync:ignore poolaudit <why>, mark providers //ssync:pooled",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Provider functions of this package: results tracked as pooled.
	providers := map[*types.Func]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if analysis.HasMarker(fd.Doc, "pooled") {
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					providers[fn] = true
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if analysis.HasMarker(fd.Doc, "pooled") {
				// Trusted provider: it exists to move a pooled buffer
				// into its ownership structure.
				continue
			}
			checkFunc(pass, fd, providers)
		}
	}
	return nil
}

// checkFunc analyzes one function body.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, providers map[*types.Func]bool) {
	// root identity: every pooled value descends from one source call;
	// aliases share the root so use-after-Put follows derived views.
	nextRoot := 0
	pooled := map[*types.Var]int{} // var → root id
	putAt := map[int]token.Pos{}   // root id → position of its Put

	// rootOf reports whether e evaluates to pooled memory and which
	// source it descends from.
	var rootOf func(e ast.Expr) (int, bool)
	rootOf = func(e ast.Expr) (int, bool) {
		switch e := analysis.Unparen(e).(type) {
		case *ast.Ident:
			if v, ok := pass.Info.Uses[e].(*types.Var); ok {
				if r, ok := pooled[v]; ok {
					return r, true
				}
			}
		case *ast.CallExpr:
			if isPoolGet(pass, e) || isProviderCall(pass, e, providers) {
				nextRoot++
				return nextRoot, true
			}
		case *ast.TypeAssertExpr:
			return rootOf(e.X)
		case *ast.StarExpr:
			return rootOf(e.X)
		case *ast.IndexExpr:
			return rootOf(e.X)
		case *ast.SliceExpr:
			return rootOf(e.X)
		case *ast.SelectorExpr:
			// A field read of a pooled struct views pooled memory.
			if s, ok := pass.Info.Selections[e]; ok && s.Kind() == types.FieldVal {
				return rootOf(e.X)
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				return rootOf(e.X)
			}
		}
		return 0, false
	}

	// bind records assignments that alias pooled memory to variables.
	bind := func(lhs ast.Expr, root int) {
		if id, ok := analysis.Unparen(lhs).(*ast.Ident); ok {
			if v, ok := pass.Info.Defs[id].(*types.Var); ok {
				pooled[v] = root
				return
			}
			if v, ok := pass.Info.Uses[id].(*types.Var); ok {
				pooled[v] = root
			}
		}
	}

	report := func(pos token.Pos, format string, args ...any) {
		pass.Reportf(pos, format, args...)
	}

	// Single source-order walk: bindings, violations, Puts. FuncLits are
	// entered only to find bindings/uses for the goroutine-capture and
	// use-after-Put checks; deferred release closures are the idiom and
	// stay exempt.
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				walk(n.Call, true)
				return false
			case *ast.GoStmt:
				// A spawned goroutine capturing pooled memory outlives
				// the owner's control flow.
				for _, bad := range capturedPooled(pass, n.Call, pooled) {
					report(bad.Pos(), "pooled buffer %s captured by spawned goroutine; the pool may reuse it concurrently (join before release, and bless the hand-off with //ssync:ignore poolaudit <why>)", bad.Name)
				}
				return true
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, rhs := range n.Rhs {
						root, isP := rootOf(rhs)
						if !isP {
							continue
						}
						lhs := analysis.Unparen(n.Lhs[i])
						if sel, ok := lhs.(*ast.SelectorExpr); ok {
							if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
								// Storing INTO pooled memory is the owner
								// filling its own scratch; storing pooled
								// memory into another object's field leaks it.
								if _, lhsPooled := rootOf(sel.X); !lhsPooled {
									report(n.Pos(), "pooled buffer stored into field %s; the buffer escapes its owning frame (copy out, or bless the ownership hand-off with //ssync:ignore poolaudit <why>)", sel.Sel.Name)
								}
							}
						}
						bind(n.Lhs[i], root)
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i, val := range n.Values {
						if root, ok := rootOf(val); ok {
							if v, ok := pass.Info.Defs[n.Names[i]].(*types.Var); ok {
								pooled[v] = root
							}
						}
					}
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					val := el
					key := ""
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						val = kv.Value
						if id, ok := kv.Key.(*ast.Ident); ok {
							key = id.Name
						}
					}
					if _, ok := rootOf(val); ok {
						report(val.Pos(), "pooled buffer stored into composite literal%s; the buffer escapes its owning frame (copy out, or bless the ownership hand-off with //ssync:ignore poolaudit <why>)", fieldSuffix(key))
					}
				}
			case *ast.SendStmt:
				if _, ok := rootOf(n.Value); ok {
					report(n.Pos(), "pooled buffer sent on a channel; only a blessed blocking hand-off may do this (//ssync:ignore poolaudit <why>)")
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if _, ok := rootOf(res); ok {
						report(res.Pos(), "pooled buffer returned to the caller; mark the provider //ssync:pooled or return a copy")
					}
				}
			case *ast.CallExpr:
				if isPoolPut(pass, n) && len(n.Args) > 0 {
					if root, ok := rootOf(n.Args[0]); ok && !inDefer {
						putAt[root] = n.End()
					}
				}
			case *ast.Ident:
				if v, ok := pass.Info.Uses[n].(*types.Var); ok {
					if root, ok := pooled[v]; ok {
						if end, done := putAt[root]; done && n.Pos() > end {
							report(n.Pos(), "pooled buffer %s used after its Put; the pool may already have handed it to another goroutine", n.Name)
							delete(putAt, root) // one finding per release
						}
					}
				}
			}
			return true
		})
	}
	walk(fd.Body, false)
}

// fieldSuffix renders the composite-literal key when known.
func fieldSuffix(key string) string {
	if key == "" {
		return ""
	}
	return " (field " + key + ")"
}

// isPoolGet matches P.Get() with P a sync.Pool.
func isPoolGet(pass *analysis.Pass, call *ast.CallExpr) bool {
	return isPoolMethod(pass, call, "Get")
}

// isPoolPut matches P.Put(x) with P a sync.Pool.
func isPoolPut(pass *analysis.Pass, call *ast.CallExpr) bool {
	return isPoolMethod(pass, call, "Put")
}

func isPoolMethod(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	fun, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || fun.Sel.Name != name {
		return false
	}
	sel, ok := pass.Info.Selections[fun]
	if !ok || sel.Kind() != types.MethodVal {
		return false
	}
	t := sel.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "Pool"
}

// isProviderCall matches calls to //ssync:pooled functions of this
// package.
func isProviderCall(pass *analysis.Pass, call *ast.CallExpr, providers map[*types.Func]bool) bool {
	switch fun := analysis.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return providers[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return providers[fn]
		}
	}
	return false
}

// capturedPooled lists identifiers inside a go-statement's call (the
// function literal and its arguments) that alias pooled memory.
func capturedPooled(pass *analysis.Pass, call *ast.CallExpr, pooled map[*types.Var]int) []*ast.Ident {
	var bad []*ast.Ident
	seen := map[*types.Var]bool{}
	ast.Inspect(call, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := pass.Info.Uses[id].(*types.Var); ok {
			if _, isP := pooled[v]; isP && !seen[v] {
				seen[v] = true
				bad = append(bad, id)
			}
		}
		return true
	})
	return bad
}
