// Package fixtures seeds poolaudit violations: pooled buffers escaping
// into fields, literals, channels, goroutines and returns, plus
// use-after-Put — and the blessed ownership patterns that stay silent.
package fixtures

import "sync"

var bufPool = sync.Pool{New: func() any { return make([]byte, 512) }}

// session is a long-lived object; pinning per-call scratch into it is
// the seeded escape class.
type session struct {
	scratch []byte
}

// holder mirrors a response struct built from a pooled frame.
type holder struct {
	buf []byte
}

// frame is itself pooled; filling its own fields is ownership, not
// escape.
type frame struct {
	buf []byte
	n   int
}

var framePool = sync.Pool{New: func() any { return new(frame) }}

// attach stores the pooled buffer into a long-lived struct: the PR 8
// escape shape, where the pool hands the same bytes to the next caller
// while the session still reads them.
func (s *session) attach() {
	b := bufPool.Get().([]byte)
	s.scratch = b // want `pooled buffer stored into field scratch`
}

// leakLit captures the buffer in a composite literal that outlives the
// call.
func leakLit() *holder {
	b := bufPool.Get().([]byte)
	return &holder{buf: b} // want `pooled buffer stored into composite literal \(field buf\)`
}

// leakReturn hands the raw pooled bytes to an unmarked caller.
func leakReturn() []byte {
	return bufPool.Get().([]byte) // want `pooled buffer returned to the caller`
}

// leakSend publishes the buffer on a channel with no blessed hand-off.
func leakSend(ch chan []byte) {
	b := bufPool.Get().([]byte)
	ch <- b // want `pooled buffer sent on a channel`
}

// spawn lets a goroutine race the pool for the buffer.
func spawn() {
	b := bufPool.Get().([]byte)
	go func() {
		_ = b[0] // want `pooled buffer b captured by spawned goroutine`
	}()
}

// useAfterPut touches the buffer after releasing it.
func useAfterPut() {
	b := bufPool.Get().([]byte)
	b[0] = 1
	bufPool.Put(b)
	_ = b[0] // want `pooled buffer b used after its Put`
}

// getBuf is a trusted provider: callers' results are tracked exactly
// like pool.Get results.
//
//ssync:pooled
func getBuf() []byte {
	return bufPool.Get().([]byte)
}

// leakProvider shows provider results are not laundered: the escape is
// still caught one call away from the pool.
func leakProvider(s *session) {
	b := getBuf()
	s.scratch = b // want `pooled buffer stored into field scratch`
}

// roundTrip is the blessed fast path: get, fill, copy out, deferred
// release.
func roundTrip(raw []byte) []byte {
	b := getBuf()
	defer bufPool.Put(b)
	n := copy(b, raw)
	out := make([]byte, n)
	copy(out, b[:n])
	return out
}

// fill stores one pooled buffer into another pooled object's field:
// the owner assembling its own scratch, not an escape.
func fill(raw []byte) {
	f := framePool.Get().(*frame)
	b := bufPool.Get().([]byte)
	f.buf = b
	f.n = copy(f.buf, raw)
	bufPool.Put(b)
	framePool.Put(f)
}

// owner carries a pooled buffer across calls to a single release
// point; the constructor blesses the pin for its whole body.
type owner struct {
	buf []byte
}

// newOwner pins a pooled buffer for the owner's lifetime.
//
//ssync:ignore poolaudit owner carries the buffer until close, the single release point
func newOwner() *owner {
	return &owner{buf: bufPool.Get().([]byte)}
}

func (o *owner) close() {
	bufPool.Put(o.buf)
	o.buf = nil
}

// blessedSend is a documented blocking hand-off: the receiver releases.
func blessedSend(ch chan []byte) {
	b := bufPool.Get().([]byte)
	//ssync:ignore poolaudit blocking hand-off; the receiver is the single release point
	ch <- b
}
