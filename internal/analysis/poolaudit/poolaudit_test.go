package poolaudit_test

import (
	"testing"

	"ssync/internal/analysis/analysistest"
	"ssync/internal/analysis/poolaudit"
)

func TestPoolaudit(t *testing.T) {
	analysistest.Run(t, poolaudit.Analyzer, "testdata/src/poolaudit")
}
