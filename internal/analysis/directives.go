package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The //ssync: directive vocabulary. Directives are ordinary line
// comments, so they survive gofmt and need no build-system support:
//
//	//ssync:ignore <analyzer> <justification>
//	    Blesses an intentional exception. On the line of (or the line
//	    immediately above) a finding it suppresses that analyzer there;
//	    in a function's doc comment it suppresses the analyzer for the
//	    whole function. The justification is REQUIRED — an ignore that
//	    does not say why is itself a diagnostic, so every blessed
//	    exception documents its ownership or ordering argument in place.
//
//	//ssync:cacheline
//	    Marks a struct type as cache-line-layout-critical; padcheck
//	    verifies its layout even if it carries no pad.* field.
//
//	//ssync:pooled [note]
//	    Marks a function as a blessed pooled-buffer provider: its
//	    callers' results are tracked as pooled by poolaudit, and the
//	    ownership-establishing stores inside it are trusted.
const (
	directivePrefix = "//ssync:"
	verbIgnore      = "ignore"
	verbCacheline   = "cacheline"
	verbPooled      = "pooled"
)

// HasMarker reports whether the comment group carries the marker
// directive //ssync:<name> (with or without trailing text).
func HasMarker(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		verb, _, ok := splitDirective(c.Text)
		if ok && verb == name {
			return true
		}
	}
	return false
}

// HasIgnore reports whether the comment group carries a well-formed
// //ssync:ignore for the named analyzer. Analyzers use it for
// declaration-site blessing (e.g. atomicmix accepts the directive on a
// field declaration to bless every access to that field).
func HasIgnore(cg *ast.CommentGroup, analyzer string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		verb, rest, ok := splitDirective(c.Text)
		if !ok || verb != verbIgnore {
			continue
		}
		name, just := splitWord(rest)
		if name == analyzer && just != "" {
			return true
		}
	}
	return false
}

// splitDirective parses a raw comment; ok reports whether it is an
// //ssync: directive at all.
func splitDirective(text string) (verb, rest string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	verb, rest = splitWord(text[len(directivePrefix):])
	return verb, rest, true
}

// splitWord splits off the first whitespace-separated word.
func splitWord(s string) (word, rest string) {
	s = strings.TrimSpace(s)
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		return s[:i], strings.TrimSpace(s[i+1:])
	}
	return s, ""
}

// ignoreScope is one blessed exception: analyzer suppressed for a line
// range of a file.
type ignoreScope struct {
	file       string
	start, end int // line range, inclusive
	analyzer   string
}

// ignoreSet is the per-package suppression table plus the diagnostics
// the directive parsing itself produced (malformed or unjustified
// directives are findings — the blessing mechanism may not silently
// rot).
type ignoreSet struct {
	scopes []ignoreScope
}

// parseDirectives walks every comment in the package, building the
// suppression table and validating directive syntax. known maps the
// analyzer names in the running suite.
func parseDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool, report func(Diagnostic)) *ignoreSet {
	set := &ignoreSet{}
	bad := func(pos token.Pos, format string, args ...any) {
		report(Diagnostic{Pos: pos, Analyzer: "directive", Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range files {
		fname := fset.Position(f.Pos()).Filename
		// Function-doc directives get function scope.
		funcDoc := map[*ast.Comment]*ast.FuncDecl{}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				funcDoc[c] = fd
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				verb, rest, ok := splitDirective(c.Text)
				if !ok {
					continue
				}
				switch verb {
				case verbCacheline, verbPooled:
					// Markers; consumed by their analyzers in place.
				case verbIgnore:
					name, just := splitWord(rest)
					if name == "" {
						bad(c.Pos(), "//ssync:ignore needs an analyzer name and a justification")
						continue
					}
					if len(known) > 0 && !known[name] {
						bad(c.Pos(), "//ssync:ignore names unknown analyzer %q", name)
						continue
					}
					if just == "" {
						bad(c.Pos(), "//ssync:ignore %s needs a justification: say why the exception is sound", name)
						continue
					}
					sc := ignoreScope{file: fname, analyzer: name}
					if fd, ok := funcDoc[c]; ok {
						sc.start = fset.Position(fd.Pos()).Line
						sc.end = fset.Position(fd.End()).Line
					} else {
						// The directive's own line and the line below it,
						// so it can trail the finding or sit above it.
						line := fset.Position(c.Pos()).Line
						sc.start, sc.end = line, line+1
					}
					set.scopes = append(set.scopes, sc)
				default:
					bad(c.Pos(), "unknown directive //ssync:%s (have: ignore, cacheline, pooled)", verb)
				}
			}
		}
	}
	return set
}

// suppressed reports whether d falls inside a blessed scope.
func (s *ignoreSet) suppressed(fset *token.FileSet, d Diagnostic) bool {
	p := fset.Position(d.Pos)
	for _, sc := range s.scopes {
		if sc.analyzer == d.Analyzer && sc.file == p.Filename && sc.start <= p.Line && p.Line <= sc.end {
			return true
		}
	}
	return false
}
