package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestLoad exercises the go-list-export loader end to end on two real
// module packages: parsed source, resolved imports, full type info.
func TestLoad(t *testing.T) {
	pkgs, err := Load("../..", "./internal/pad", "./internal/store")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	for _, p := range pkgs {
		if len(p.Files) == 0 || p.Pkg == nil || len(p.Info.Defs) == 0 {
			t.Errorf("%s: incomplete load (files=%d, defs=%d)", p.Path, len(p.Files), len(p.Info.Defs))
		}
		if p.Sizes.Sizeof(p.Pkg.Scope().Lookup(firstType(p)).Type()) <= 0 {
			t.Errorf("%s: sizes not wired", p.Path)
		}
	}
}

func firstType(p *Package) string {
	for _, name := range p.Pkg.Scope().Names() {
		if _, ok := p.Pkg.Scope().Lookup(name).Type().Underlying().(interface{ NumFields() int }); ok {
			return name
		}
	}
	return p.Pkg.Scope().Names()[0]
}

const directiveSrc = `package d

//ssync:ignore padcheck
func unjustified() {}

//ssync:ignore nosuch the analyzer does not exist
func unknownAnalyzer() {}

//ssync:frobnicate
func unknownVerb() {}

//ssync:ignore
func nameless() {}

// docBlessed has a function-scoped blessing.
//
//ssync:ignore padcheck the whole body is exempt because reasons
func docBlessed() {
	_ = 1
	_ = 2
}

func lineBlessed() {
	//ssync:ignore padcheck this one line is fine
	_ = 3
	_ = 4
}
`

func parseDirectiveSrc(t *testing.T) (*token.FileSet, *ignoreSet, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	set := parseDirectives(fset, []*ast.File{f}, map[string]bool{"padcheck": true, "poolaudit": true},
		func(d Diagnostic) { diags = append(diags, d) })
	return fset, set, diags
}

// TestDirectiveValidation: malformed directives are findings — a
// justification is required, names must resolve, verbs must exist.
func TestDirectiveValidation(t *testing.T) {
	_, _, diags := parseDirectiveSrc(t)
	wants := []string{
		"needs a justification",
		`unknown analyzer "nosuch"`,
		"unknown directive //ssync:frobnicate",
		"needs an analyzer name",
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d directive diagnostics, want %d: %v", len(diags), len(wants), diags)
	}
	for i, want := range wants {
		if diags[i].Analyzer != "directive" || !strings.Contains(diags[i].Message, want) {
			t.Errorf("diag %d = %q, want it to mention %q", i, diags[i].Message, want)
		}
	}
}

// TestDirectiveScopes: a doc-comment blessing covers the whole
// function; a line blessing covers its own line and the next; neither
// leaks to other analyzers.
func TestDirectiveScopes(t *testing.T) {
	fset, set, _ := parseDirectiveSrc(t)
	at := func(line int) token.Pos {
		return fset.File(token.Pos(1)).LineStart(line)
	}
	line := func(sub string) int {
		for i, l := range strings.Split(directiveSrc, "\n") {
			if strings.Contains(l, sub) {
				return i + 1
			}
		}
		t.Fatalf("marker %q not in source", sub)
		return 0
	}
	cases := []struct {
		name     string
		analyzer string
		line     int
		want     bool
	}{
		{"doc scope start", "padcheck", line("func docBlessed"), true},
		{"doc scope body", "padcheck", line("_ = 1"), true},
		{"doc scope end", "padcheck", line("_ = 2"), true},
		{"doc scope other analyzer", "poolaudit", line("_ = 1"), false},
		{"line scope directive line", "padcheck", line("this one line is fine"), true},
		{"line scope next line", "padcheck", line("_ = 3"), true},
		{"line scope two below", "padcheck", line("_ = 4"), false},
		{"unjustified grants nothing", "padcheck", line("func unjustified"), false},
	}
	for _, tc := range cases {
		d := Diagnostic{Pos: at(tc.line), Analyzer: tc.analyzer, Message: "x"}
		if got := set.suppressed(fset, d); got != tc.want {
			t.Errorf("%s: suppressed=%v, want %v", tc.name, got, tc.want)
		}
	}
}
