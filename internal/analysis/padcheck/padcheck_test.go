package padcheck_test

import (
	"testing"

	"ssync/internal/analysis/analysistest"
	"ssync/internal/analysis/padcheck"
)

func TestPadcheck(t *testing.T) {
	analysistest.Run(t, padcheck.Analyzer, "testdata/src/padcheck")
}
