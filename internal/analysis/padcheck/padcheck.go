// Package padcheck verifies cache-line layout invariants: the repo's
// padded hot structs (internal/store's shards, internal/pad wrappers)
// promise that certain words own their 64-byte line outright, and the
// promise is pure arithmetic over field offsets — exactly what a
// compiler-sized layout pass can check for every current and future
// struct, where align_test.go could only assert the offsets of the
// structs someone remembered to list.
package padcheck

import (
	"go/ast"
	"go/types"

	"ssync/internal/analysis"
	"ssync/internal/pad"
)

// padPkg is the package whose named struct types are line-owners by
// construction.
const padPkg = "ssync/internal/pad"

var Analyzer = &analysis.Analyzer{
	Name: "padcheck",
	Doc: "padded structs keep their hot words on private cache lines: " +
		"any struct carrying a pad.* field or a //ssync:cacheline marker must " +
		"be a multiple of 64 bytes, and every line-owning field (pad.*, marked " +
		"struct, array of either) must start 64-byte aligned",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// First pass: which named structs of this package are marked
	// //ssync:cacheline? Marked-ness extends line-ownership to structs
	// like optCounters that pad with raw byte arrays instead of pad.*
	// fields.
	marked := map[types.Object]bool{}
	eachStructSpec(pass, func(gd *ast.GenDecl, ts *ast.TypeSpec, st *ast.StructType) {
		if analysis.HasMarker(gd.Doc, "cacheline") ||
			analysis.HasMarker(ts.Doc, "cacheline") ||
			analysis.HasMarker(ts.Comment, "cacheline") {
			marked[pass.Info.Defs[ts.Name]] = true
		}
	})

	lineOwner := func(t types.Type) bool {
		n, ok := t.(*types.Named)
		if !ok {
			return false
		}
		if _, isStruct := n.Underlying().(*types.Struct); !isStruct {
			// pad.Line is a sizing unit ([64]byte, align 1), not a
			// line-owner; only the padded struct wrappers qualify.
			return false
		}
		obj := n.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == padPkg {
			return true
		}
		return marked[obj]
	}

	// Second pass: verify the layout of every struct in scope.
	eachStructSpec(pass, func(gd *ast.GenDecl, ts *ast.TypeSpec, st *ast.StructType) {
		obj := pass.Info.Defs[ts.Name]
		if obj == nil {
			return
		}
		structT, ok := obj.Type().Underlying().(*types.Struct)
		if !ok || structT.NumFields() == 0 {
			return
		}
		inScope := marked[obj]
		for i := 0; !inScope && i < structT.NumFields(); i++ {
			t := structT.Field(i).Type()
			if lineOwner(t) {
				inScope = true
			}
			if at, ok := t.(*types.Array); ok && lineOwner(at.Elem()) {
				inScope = true
			}
		}
		if !inScope {
			return
		}

		size := pass.Sizes.Sizeof(structT)
		if size%pad.CacheLineSize != 0 {
			pass.Reportf(ts.Name.Pos(),
				"struct %s is %d bytes, not a multiple of the %d-byte cache line; adjacent elements in a slice or array share lines",
				ts.Name.Name, size, pad.CacheLineSize)
		}
		fields := make([]*types.Var, structT.NumFields())
		for i := range fields {
			fields[i] = structT.Field(i)
		}
		offsets := pass.Sizes.Offsetsof(fields)
		for i, f := range fields {
			t := f.Type()
			owner := lineOwner(t)
			if at, ok := t.(*types.Array); ok && lineOwner(at.Elem()) {
				owner = true
				if es := pass.Sizes.Sizeof(at.Elem()); es%pad.CacheLineSize != 0 {
					pass.Reportf(f.Pos(),
						"field %s: array element %s is %d bytes, not a line multiple; elements straddle cache lines",
						f.Name(), at.Elem(), es)
				}
			}
			if owner && offsets[i]%pad.CacheLineSize != 0 {
				pass.Reportf(f.Pos(),
					"field %s (%s) at offset %d is not %d-byte aligned; it does not own its cache line",
					f.Name(), t, offsets[i], pad.CacheLineSize)
			}
		}
	})
	return nil
}

// eachStructSpec visits every struct type declaration in the package.
func eachStructSpec(pass *analysis.Pass, fn func(*ast.GenDecl, *ast.TypeSpec, *ast.StructType)) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					fn(gd, ts, st)
				}
			}
		}
	}
}
