// Package fixtures seeds padcheck violations. The bad cases replay the
// PR 9 bug class: counter stripes that start off a line boundary and
// stripe elements that straddle lines.
package fixtures

import (
	"sync/atomic"

	"ssync/internal/pad"
)

// stripe is one padded counter stripe, exactly one line.
//
//ssync:cacheline
type stripe struct {
	gets atomic.Uint64
	puts atomic.Uint64
	_    [48]byte
}

// goodShard mirrors the fixed optShard layout: hot words own lines,
// the bucket header is padded out, stripes start line-aligned.
type goodShard struct {
	version pad.Uint64
	live    pad.Int64
	buckets []int
	_       [40]byte
	stripes [8]stripe
}

var _ goodShard

// badShard replays the stripe-offset bug: the slice header after live
// is not padded out, so stripes begins mid-line — stripe 0 shares a
// line with buckets and every element is shifted.
type badShard struct { // want `struct badShard is 664 bytes, not a multiple of the 64-byte cache line`
	version pad.Uint64
	live    pad.Int64
	buckets []int
	stripes [8]stripe // want `field stripes \(\[8\]padcheck.stripe\) at offset 152 is not 64-byte aligned`
}

var _ badShard

// skinny is marked line-critical but is nowhere near a line.
//
//ssync:cacheline
type skinny struct { // want `struct skinny is 8 bytes, not a multiple of the 64-byte cache line`
	n atomic.Uint64
}

// straddler holds an array of sub-line marked elements: even with an
// aligned start, elements after the first straddle lines.
type straddler struct {
	v     pad.Uint64
	elems [4]skinny // want `field elems: array element padcheck.skinny is 8 bytes, not a line multiple`
	_     [32]byte
}

var _ straddler

// tail has a line-owning pad word pushed off alignment by a preceding
// header word.
type tail struct { // want `struct tail is 72 bytes, not a multiple of the 64-byte cache line`
	n uint64
	v pad.Uint64 // want `field v \(ssync/internal/pad.Uint64\) at offset 8 is not 64-byte aligned`
}

var _ tail

// blessed is the same layout as tail, intentionally exempted: the
// justification requirement keeps the exception documented.
//
//ssync:ignore padcheck cold diagnostic struct, never on a hot path
type blessed struct {
	n uint64
	//ssync:ignore padcheck cold diagnostic struct, never on a hot path
	v pad.Uint64
}

var _ blessed

// oneLine is a marked single-line header, the shardTable shape.
//
//ssync:cacheline
type oneLine struct {
	buckets []int
	gets    uint64
	puts    uint64
	dels    uint64
	scans   uint64
	entries uint64
}

var _ oneLine
