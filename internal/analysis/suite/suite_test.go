package suite_test

import (
	"testing"

	"ssync/internal/analysis"
	"ssync/internal/analysis/suite"
)

// TestLintClean runs the whole analyzer suite over the module, the same
// gate CI's lint leg applies: the tree must carry zero unblessed
// findings. A failure here means either a real invariant violation or
// an exception that needs an //ssync:ignore with its justification.
func TestLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := analysis.ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(pkgs, suite.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		p := d.Position(pkgs[0].Fset)
		t.Errorf("%s:%d:%d: %s: %s", p.Filename, p.Line, p.Column, d.Analyzer, d.Message)
	}
}
