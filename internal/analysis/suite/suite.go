// Package suite registers the repo's analyzer set — the single list
// shared by cmd/ssynclint, the `ssync lint` subcommand, and the
// lint-clean meta-test, so a new analyzer added here gates everywhere
// at once.
package suite

import (
	"ssync/internal/analysis"
	"ssync/internal/analysis/atomicmix"
	"ssync/internal/analysis/lockorder"
	"ssync/internal/analysis/padcheck"
	"ssync/internal/analysis/poolaudit"
)

// Analyzers returns the full suite in stable (alphabetical) order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicmix.Analyzer,
		lockorder.Analyzer,
		padcheck.Analyzer,
		poolaudit.Analyzer,
	}
}
