package lockorder_test

import (
	"testing"

	"ssync/internal/analysis/analysistest"
	"ssync/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "testdata/src/lockorder")
}
