// Package lockorder flags nested shard-lock acquisitions. The store's
// documented discipline is that shard locks are held one at a time: the
// engines' point ops lock exactly one shard, and ExecBatch's group loop
// acquires each touched shard's lock once, sequentially, in the
// store's domain-major visit order — never holding two. A second
// acquire while one is held is how lock-ordering deadlocks enter a
// sharded system, so any intentional multi-hold (the hierarchical
// cohort locks' fixed local-then-global order, a future two-phase
// transaction path) must be blessed with //ssync:ignore lockorder and a
// justification naming its total order.
package lockorder

import (
	"go/ast"
	"go/types"

	"ssync/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "shard locks are held one at a time: a lock/Acquire on a " +
		"locks.Lock or a shard-lock helper while another is still held is " +
		"flagged; bless fixed-order multi-holds with //ssync:ignore lockorder <why>",
	Run: run,
}

// locksPkg is the lock-algorithm package; every Acquire/Release on its
// types is a shard/algorithm lock event.
const locksPkg = "ssync/internal/locks"

// event is one acquire or release in source order.
type event struct {
	acquire  bool
	deferred bool
	key      string // printed receiver (plus index arg for helpers)
	pos      ast.Node
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil
}

// checkBody collects the body's lock events in source order (function
// literals are separate scopes, analyzed on their own) and simulates
// the held set.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var events []event
	var nested []*ast.FuncLit
	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				nested = append(nested, n)
				return false
			case *ast.DeferStmt:
				walk(n.Call, true)
				return false
			case *ast.CallExpr:
				if ev, ok := classify(pass, n); ok {
					ev.deferred = deferred
					events = append(events, ev)
				}
			}
			return true
		})
	}
	walk(body, false)

	var held []event
	for _, ev := range events {
		switch {
		case ev.acquire:
			if len(held) > 0 {
				pass.Reportf(ev.pos.Pos(),
					"lock %s acquired while still holding %s; shard locks are held one at a time (release first, or bless a fixed-order multi-hold with //ssync:ignore lockorder <why>)",
					ev.key, held[len(held)-1].key)
			}
			held = append(held, ev)
		case ev.deferred:
			// A deferred release runs at function exit: the lock stays
			// held for the rest of the body.
		default:
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].key == ev.key {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		}
	}

	for _, fl := range nested {
		checkBody(pass, fl.Body)
	}
}

// classify decides whether a call is a shard-lock acquire or release:
// Acquire/Release (and Lock/Unlock adapters) on ssync/internal/locks
// types, or the engines' lock(i)/unlock(i) helper methods on types of
// the analyzed package.
func classify(pass *analysis.Pass, call *ast.CallExpr) (event, bool) {
	fun, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return event{}, false
	}
	sel, ok := pass.Info.Selections[fun]
	if !ok || sel.Kind() != types.MethodVal {
		return event{}, false
	}
	recvPkg := typePkg(sel.Recv())
	name := fun.Sel.Name
	fromLocks := recvPkg == locksPkg
	samePkg := recvPkg == pass.Pkg.Path()

	acquire := (fromLocks && (name == "Acquire" || name == "Lock")) ||
		(samePkg && name == "lock")
	release := (fromLocks && (name == "Release" || name == "Unlock")) ||
		(samePkg && name == "unlock")
	if !acquire && !release {
		return event{}, false
	}
	key := types.ExprString(fun.X)
	// The engine helpers' first argument is the shard index, part of the
	// lock's identity; Acquire/Release take a token, which is not.
	if (name == "lock" || name == "unlock") && len(call.Args) > 0 {
		key += "[" + types.ExprString(call.Args[0]) + "]"
	}
	return event{acquire: acquire, key: key, pos: fun.Sel}, true
}

// typePkg names the package of a (possibly pointer) named receiver
// type; "" otherwise.
func typePkg(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path()
}
