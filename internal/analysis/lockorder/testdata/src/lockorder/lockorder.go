// Package fixtures seeds lockorder violations: shard locks held two at
// a time, in engine-helper form and in raw locks.Lock form.
package fixtures

import (
	"sync"

	"ssync/internal/locks"
)

// engine mimics the store's locked engine surface.
type engine struct {
	guards []locks.Lock
	tabs   []map[string][]byte
	mu     sync.Mutex
}

func (e *engine) lock(i int)   { e.guards[i].Acquire(nil) }
func (e *engine) unlock(i int) { e.guards[i].Release(nil) }

// get is the blessed single-lock discipline: one shard, lock once.
func (e *engine) get(shard int, key string) ([]byte, bool) {
	e.lock(shard)
	defer e.unlock(shard)
	v, ok := e.tabs[shard][key]
	return v, ok
}

// execGroups is the batch discipline: each group locks once,
// sequentially — the held set is empty between iterations.
func (e *engine) execGroups(order []int) {
	for _, shard := range order {
		e.lock(shard)
		delete(e.tabs[shard], "x")
		e.unlock(shard)
	}
}

// copyRange holds a second shard lock while the first is still held
// (deferred release pins it to function exit) — the seeded deadlock
// shape.
func (e *engine) copyRange(src, dst int) {
	e.lock(src)
	defer e.unlock(src)
	e.lock(dst) // want `lock e\[dst\] acquired while still holding e\[src\]`
	defer e.unlock(dst)
	e.tabs[dst]["x"] = e.tabs[src]["x"]
}

// hierAcquire is the raw-interface form of the same bug: a second
// Acquire with the first lock still held.
func (e *engine) hierAcquire(local, global locks.Lock, tok *locks.Token) {
	local.Acquire(tok)
	global.Acquire(nil) // want `lock global acquired while still holding local`
	global.Release(nil)
	local.Release(tok)
}

// handAcquire releases before re-acquiring: hand-over-hand is fine as
// long as only one lock is ever held.
func (e *engine) handAcquire(a, b locks.Lock) {
	a.Acquire(nil)
	a.Release(nil)
	b.Acquire(nil)
	b.Release(nil)
}

// cohort is a blessed fixed-order multi-hold, the hierarchical-lock
// idiom: the justification names the total order that keeps it
// deadlock-free.
func (e *engine) cohort(local, global locks.Lock) {
	local.Acquire(nil)
	//ssync:ignore lockorder fixed two-level order: node-local before global, everywhere
	global.Acquire(nil)
	global.Release(nil)
	local.Release(nil)
}

// mutexNest nests plain mutexes — outside the shard-lock discipline,
// not this analyzer's business.
func (e *engine) mutexNest(other *engine) {
	e.mu.Lock()
	defer e.mu.Unlock()
	other.mu.Lock()
	defer other.mu.Unlock()
}

// spawned function literals are separate scopes: the goroutine's
// acquire does not nest under the parent's.
func (e *engine) parallel(shards []int) {
	e.lock(0)
	defer e.unlock(0)
	done := make(chan struct{})
	go func() {
		e.lock(1)
		e.unlock(1)
		close(done)
	}()
	<-done
}
