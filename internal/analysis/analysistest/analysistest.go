// Package analysistest runs an analyzer over a testdata package and
// checks its findings against // want annotations, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract: a comment
//
//	// want "regexp" "another"
//
// on a line asserts that the analyzer reports exactly those findings
// there. Lines without a want comment must produce no finding, and
// every want must be matched — golden diagnostics in both directions.
// The testdata package is type-checked against the enclosing module's
// real dependencies, so fixtures exercise the actual ssync/internal/pad
// and sync types the production code uses.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"testing"

	"ssync/internal/analysis"
)

// wantRE extracts the quoted or backquoted patterns of a want comment.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

// commentRE recognizes a want comment at the end of a line comment.
var commentRE = regexp.MustCompile(`//\s*want((?:\s+(?:"(?:[^"\\]|\\.)*"|` + "`[^`]*`" + `))+)\s*$`)

type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run analyzes the package in pkgdir (conventionally
// testdata/src/<name>, relative to the analyzer's test) with a and
// compares findings against the package's want annotations. The
// framework's directive handling is live, so fixtures can also assert
// that //ssync:ignore blessing and its justification requirement work.
func Run(t *testing.T, a *analysis.Analyzer, pkgdir string) {
	t.Helper()
	root, err := analysis.ModuleRoot()
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkg, err := analysis.LoadPackageDir(root, pkgdir)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", pkgdir, err)
	}
	diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}

	// Collect want annotations per file:line.
	wants := map[string][]*expectation{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := commentRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := lineKey(pos)
				for _, q := range wantRE.FindAllStringSubmatch(m[1], -1) {
					pat := q[2] // backquoted: literal
					if q[2] == "" && q[1] != "" {
						var err error
						if pat, err = strconv.Unquote(`"` + q[1] + `"`); err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", key, q[1], err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &expectation{re: re, raw: pat})
				}
			}
		}
	}

	for _, d := range diags {
		pos := d.Position(pkg.Fset)
		key := lineKey(pos)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected finding: %s: %s", key, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no finding matched %q", key, w.raw)
			}
		}
	}
}

func lineKey(p token.Position) string {
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
