package analysis

import (
	"flag"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// RunPackage executes every analyzer on one package and returns the
// surviving findings: directive parsing runs first (malformed
// directives are findings of the pseudo-analyzer "directive"), each
// analyzer reports through its Pass, and //ssync:ignore scopes filter
// the result.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }
	ignores := parseDirectives(pkg.Fset, pkg.Files, known, collect)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			Sizes:    pkg.Sizes,
			report:   collect,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if !ignores.suppressed(pkg.Fset, d) {
			kept = append(kept, d)
		}
	}
	sort.SliceStable(kept, func(i, j int) bool {
		pi, pj := kept[i].Position(pkg.Fset), kept[j].Position(pkg.Fset)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return kept, nil
}

// RunAnalyzers executes the suite over every package, returning all
// surviving findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return all, nil
}

// Main is the multichecker driver shared by cmd/ssynclint and `ssync
// lint`: load the module packages matching the patterns (default ./...)
// from the current directory, run the suite, print findings, and exit
// non-zero if any survive. Exit codes follow the repo's CLI convention:
// 0 clean, 1 findings, 2 usage or load failure.
func Main(analyzers []*Analyzer, argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ssynclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("dir", ".", "module directory to analyze from")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: ssynclint [-list] [-dir dir] [packages]")
		fmt.Fprintln(stderr, "")
		fmt.Fprintln(stderr, "Machine-checks the repo's concurrency and allocation invariants.")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	pkgs, err := Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "ssynclint:", err)
		return 2
	}
	diags, err := RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "ssynclint:", err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	// Every package from one Load shares one file set.
	fset := pkgs[0].Fset
	for _, d := range diags {
		p := d.Position(fset)
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", relPath(*dir, p.Filename), p.Line, p.Column, d.Analyzer, d.Message)
	}
	fmt.Fprintf(stderr, "ssynclint: %d finding(s)\n", len(diags))
	return 1
}

// relPath shortens name relative to dir for display, falling back to
// the absolute path when they do not nest.
func relPath(dir, name string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return name
	}
	if rel, err := filepath.Rel(abs, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}
