// Package analysis is the static-analysis framework behind ssynclint:
// a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis API surface, sized to what the repo's
// invariant checkers need. The repo's hot paths are fast because of
// structural rules the compiler cannot see — pooled wire buffers must
// be copied out of before release, padded structs must keep their
// fields on the cache lines the layout audit assigned them, shard
// locks are held one at a time, seqlock words are only ever touched
// atomically. Each rule is enforced by an Analyzer in a subpackage
// (poolaudit, padcheck, lockorder, atomicmix); this package provides
// the Pass plumbing, the //ssync: directive vocabulary, and a package
// loader that type-checks the module with the standard library alone
// (go/parser + go/types over `go list -export` export data), so the
// suite runs offline with zero module dependencies. The API mirrors
// x/tools so swapping the real framework in later is mechanical.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant checker. It mirrors the x/tools
// analysis.Analyzer shape: a Run function receiving a fully type-checked
// package through a Pass and reporting findings through it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //ssync:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description `ssynclint -list` prints:
	// first line is the invariant, the rest is how it is checked.
	Doc string
	// Run executes the analyzer on one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Sizes is the gc layout model for the build target, so offset
	// computations agree with unsafe.Offsetof at compile time.
	Sizes types.Sizes

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Position resolves a diagnostic against the file set it was produced
// under.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}

// Unparen strips parentheses (ast.Unparen needs go1.22; the module
// floor is 1.21).
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
