package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package of the module, ready for
// analyzers.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Sizes types.Sizes
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// exportSet resolves import paths to compiled export data, the
// dependency-free replacement for a package loader: `go list -export
// -deps` compiles every dependency (standard library included) into the
// build cache and tells us where each package's export file landed, and
// the stock gc importer reads those files back. Source is only ever
// parsed and type-checked for the packages under analysis.
type exportSet struct {
	exports map[string]string // import path → export file
	imp     types.Importer
	fset    *token.FileSet
}

// newExportSet runs `go list -export -deps -json patterns...` in dir and
// wires the gc importer to the produced export files.
func newExportSet(dir string, fset *token.FileSet, patterns ...string) (*exportSet, []listedPkg, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("go list -export: %v\n%s", err, errb.String())
	}
	es := &exportSet{exports: map[string]string{}, fset: fset}
	var listed []listedPkg
	dec := json.NewDecoder(&out)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list -export: decoding: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list -export: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			es.exports[p.ImportPath] = p.Export
		}
		listed = append(listed, p)
	}
	es.imp = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := es.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return es, listed, nil
}

// check parses and type-checks one package from source files.
func (es *exportSet) check(path string, files []string) (*Package, error) {
	pkg := &Package{
		Path:  path,
		Fset:  es.fset,
		Sizes: types.SizesFor("gc", runtime.GOARCH),
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
			Instances:  map[*ast.Ident]types.Instance{},
		},
	}
	for _, fname := range files {
		f, err := parser.ParseFile(es.fset, fname, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	conf := types.Config{
		Importer: es.imp,
		Sizes:    pkg.Sizes,
	}
	tpkg, err := conf.Check(path, es.fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	pkg.Pkg = tpkg
	return pkg, nil
}

// Load type-checks the module packages matching the go-list patterns
// (e.g. "./...") rooted at dir. Only non-test files of the module's own
// packages are analyzed; dependencies are resolved from export data.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset := token.NewFileSet()
	es, listed, err := newExportSet(dir, fset, patterns...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, p := range listed {
		if p.Standard || p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := es.check(p.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// moduleExport caches one exportSet per module root: analyzer tests all
// load the same module's export data, and `go list -export -deps` per
// call would dominate test time.
var moduleExport sync.Map // dir → *moduleExportEntry

type moduleExportEntry struct {
	once sync.Once
	es   *exportSet
	err  error
}

// LoadPackageDir type-checks the .go files of one directory as a single
// package against moduleRoot's dependency export data. It backs the
// analysistest harness: testdata packages are not part of the module
// build, but may import anything the module (or the standard library it
// uses) provides.
func LoadPackageDir(moduleRoot, pkgDir string) (*Package, error) {
	entry, _ := moduleExport.LoadOrStore(moduleRoot, &moduleExportEntry{})
	e := entry.(*moduleExportEntry)
	e.once.Do(func() {
		fset := token.NewFileSet()
		es, _, err := newExportSet(moduleRoot, fset, "./...")
		e.es, e.err = es, err
	})
	if e.err != nil {
		return nil, e.err
	}
	ents, err := os.ReadDir(pkgDir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, ent := range ents {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".go") {
			files = append(files, filepath.Join(pkgDir, ent.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", pkgDir)
	}
	// The directory base names the package, so fixture diagnostics print
	// short qualifiers ("padcheck.stripe", not a filesystem path).
	return e.es.check(filepath.Base(pkgDir), files)
}

// ModuleRoot locates the enclosing module's root directory (the
// directory holding go.mod), so tests can run the suite over the whole
// tree regardless of which package directory `go test` started them in.
func ModuleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a module")
	}
	return filepath.Dir(gomod), nil
}
