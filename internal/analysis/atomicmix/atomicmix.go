// Package atomicmix reports struct fields accessed both through
// sync/atomic (or the pad wrappers' atomic methods) and by plain
// load/store — the bug class the optimistic engine's seqlock dance is
// one typo away from: a single plain write to a word concurrent readers
// load atomically is a data race the race detector only catches if a
// test happens to interleave it. Plain access to an atomically-shared
// field is only sound inside an owning critical section, which the
// analyzer cannot see — so every such access must be blessed where it
// happens (//ssync:ignore atomicmix <why>) or at the field declaration,
// turning "we promise this is locked" into text reviewers can audit.
package atomicmix

import (
	"go/ast"
	"go/types"

	"ssync/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "fields accessed both atomically (sync/atomic, pad.* atomic methods) " +
		"and by plain load/store: plain access outside the owning critical " +
		"section is a data race; bless intentional exclusive-access escapes " +
		"with //ssync:ignore atomicmix <why> at the access or field declaration",
	Run: run,
}

const padPkg = "ssync/internal/pad"

// padAtomic and padPlain classify the pad wrappers' method sets.
var padAtomic = map[string]bool{
	"Load": true, "Store": true, "Add": true,
	"CompareAndSwap": true, "Swap": true,
}
var padPlain = map[string]bool{"Raw": true, "SetRaw": true}

// access is one recorded field access.
type access struct {
	pos  ast.Node
	desc string
}

func run(pass *analysis.Pass) error {
	atomicFields := map[*types.Var]bool{}
	var plain []struct {
		field *types.Var
		acc   access
	}
	consumed := map[*ast.SelectorExpr]bool{}

	// fieldOf resolves e to a struct-field object if it is a field
	// selector.
	fieldOf := func(e ast.Expr) (*types.Var, *ast.SelectorExpr) {
		sel, ok := analysis.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return nil, nil
		}
		s, ok := pass.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return nil, nil
		}
		v, ok := s.Obj().(*types.Var)
		if !ok {
			return nil, nil
		}
		return v, sel
	}

	// Pass 1: find atomic access sites; mark their selectors consumed.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fun, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// sync/atomic package functions: atomic.XxxYyy(&x.f, ...).
			if obj, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok &&
				obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Type().(*types.Signature).Recv() == nil {
				for _, arg := range call.Args {
					un, ok := analysis.Unparen(arg).(*ast.UnaryExpr)
					if !ok {
						continue
					}
					if v, sel := fieldOf(un.X); v != nil {
						atomicFields[v] = true
						consumed[sel] = true
					}
				}
				return true
			}
			// pad wrapper methods on a field receiver: x.f.Load() etc.
			if s, ok := pass.Info.Selections[fun]; ok && s.Kind() == types.MethodVal {
				recv := s.Recv()
				if p, ok := deref(recv).(*types.Named); ok && p.Obj().Pkg() != nil && p.Obj().Pkg().Path() == padPkg {
					if v, sel := fieldOf(fun.X); v != nil {
						name := fun.Sel.Name
						switch {
						case padAtomic[name]:
							atomicFields[v] = true
							consumed[sel] = true
						case padPlain[name]:
							consumed[sel] = true
							plain = append(plain, struct {
								field *types.Var
								acc   access
							}{v, access{pos: fun.Sel, desc: "non-atomic " + name + " call"}})
						}
					}
				}
			}
			return true
		})
	}

	// Pass 2: every other selector touching an atomic field is a plain
	// access. Skip receivers of pad atomic methods (consumed above).
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || consumed[sel] {
				return true
			}
			s, ok := pass.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			v, ok := s.Obj().(*types.Var)
			if !ok || !atomicFields[v] {
				return true
			}
			plain = append(plain, struct {
				field *types.Var
				acc   access
			}{v, access{pos: sel.Sel, desc: "plain access"}})
			return true
		})
	}

	// Field-declaration blessing: an //ssync:ignore atomicmix on the
	// declaring field line exempts every access to that field.
	blessed := fieldBlessings(pass)

	for _, p := range plain {
		if blessed[p.field] {
			continue
		}
		pass.Reportf(p.acc.pos.Pos(),
			"field %s is accessed atomically elsewhere but here by %s; move it inside the owning critical section or bless it with //ssync:ignore atomicmix <why>",
			fieldPath(p.field), p.acc.desc)
	}
	return nil
}

// fieldBlessings maps struct fields declared in this package whose
// declaration carries a well-formed ignore directive.
func fieldBlessings(pass *analysis.Pass) map[*types.Var]bool {
	blessed := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				if !analysis.HasIgnore(fld.Doc, "atomicmix") && !analysis.HasIgnore(fld.Comment, "atomicmix") {
					continue
				}
				for _, name := range fld.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						blessed[v] = true
					}
				}
			}
			return true
		})
	}
	return blessed
}

// fieldPath renders an owner-qualified field name when available.
func fieldPath(v *types.Var) string {
	name := v.Name()
	if owner := ownerStruct(v); owner != "" {
		return owner + "." + name
	}
	return name
}

// ownerStruct best-effort recovers the named struct a field belongs to.
func ownerStruct(v *types.Var) string {
	if v.Pkg() == nil {
		return ""
	}
	scope := v.Pkg().Scope()
	for _, n := range scope.Names() {
		tn, ok := scope.Lookup(n).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return tn.Name()
			}
		}
	}
	return ""
}

// deref unwraps one pointer level.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
