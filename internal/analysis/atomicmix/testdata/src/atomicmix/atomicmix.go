// Package fixtures seeds atomicmix violations: fields shared through
// sync/atomic or the pad wrappers, then touched plainly.
package fixtures

import (
	"sync"
	"sync/atomic"

	"ssync/internal/pad"
)

// conn mixes an atomic flag with a plain store — the seeded bug.
type conn struct {
	flag    uint64
	payload [56]byte
}

func (c *conn) trySend(b byte) bool {
	if atomic.LoadUint64(&c.flag) != 0 {
		return false
	}
	c.payload[0] = b
	c.flag = 1 // want `field conn.flag is accessed atomically elsewhere but here by plain access`
	return true
}

func (c *conn) recvLen() int {
	n := int(c.flag) // want `field conn.flag is accessed atomically elsewhere but here by plain access`
	return n
}

// seq mixes a pad.Uint64 seqlock word's atomic methods with its
// exclusive-access escape hatch, unblessed.
type seq struct {
	version pad.Uint64
	mu      sync.Mutex
}

func (s *seq) publish() {
	s.version.Add(1)
	s.version.Add(1)
}

func (s *seq) resetUnsafe() {
	s.version.SetRaw(0) // want `field seq.version is accessed atomically elsewhere but here by non-atomic SetRaw call`
}

// blessedSeq documents the same escape at the access site.
func (s *seq) resetOwned() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//ssync:ignore atomicmix mu is held: no concurrent publish can run
	s.version.SetRaw(0)
}

// declBlessed blesses at the field declaration instead: every access is
// exempt, and the justification lives with the field.
type declBlessed struct {
	//ssync:ignore atomicmix single-writer init phase only; readers start after construction
	epoch uint64
}

func (d *declBlessed) bump() { atomic.AddUint64(&d.epoch, 1) }
func (d *declBlessed) init() {
	d.epoch = 0
}

// onlyPlain is never atomic: no finding.
type onlyPlain struct{ n uint64 }

func (o *onlyPlain) inc() { o.n++ }

// onlyAtomic is never plain: no finding.
type onlyAtomic struct{ n uint64 }

func (o *onlyAtomic) inc() uint64 { return atomic.AddUint64(&o.n, 1) }
