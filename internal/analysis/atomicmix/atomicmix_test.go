package atomicmix_test

import (
	"testing"

	"ssync/internal/analysis/analysistest"
	"ssync/internal/analysis/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, atomicmix.Analyzer, "testdata/src/atomicmix")
}
