package simmp

import (
	"testing"

	"ssync/internal/arch"
	"ssync/internal/memsim"
)

func TestOneWaySoftware(t *testing.T) {
	p := arch.Opteron()
	m := memsim.New(p)
	net := NewNetwork(m, []int{0, 6}, DefaultOptions(m))
	const rounds = 50
	var got []uint64
	m.Spawn(0, func(th *memsim.Thread) {
		for i := 0; i < rounds; i++ {
			net.Send(th, 6, Msg{W: [7]uint64{uint64(i), uint64(i) * 3}})
		}
	})
	m.Spawn(6, func(th *memsim.Thread) {
		for i := 0; i < rounds; i++ {
			msg := net.Recv(th, 0)
			got = append(got, msg.W[0])
			if msg.W[1] != msg.W[0]*3 {
				t.Errorf("payload corrupted: %v", msg.W)
			}
		}
	})
	m.Run()
	if len(got) != rounds {
		t.Fatalf("received %d messages, want %d", len(got), rounds)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("message %d has value %d (order violated)", i, v)
		}
	}
}

func TestRoundTripCost(t *testing.T) {
	// §6.2: a one-way message costs about two cache-line transfers, a
	// round-trip about four. Verify the one-way latency is in the right
	// regime on the Xeon (same die: 214 one-way, 564 round-trip measured).
	p := arch.Xeon()
	m := memsim.New(p)
	net := NewNetwork(m, []int{0, 1}, DefaultOptions(m))
	const rounds = 100
	m.Spawn(0, func(th *memsim.Thread) {
		for i := 0; i < rounds; i++ {
			net.Call(th, 1, Msg{W: [7]uint64{7}})
		}
	})
	m.Spawn(1, func(th *memsim.Thread) {
		for i := 0; i < rounds; i++ {
			_, msg := net.RecvAny(th)
			net.Send(th, 0, msg)
		}
	})
	cycles := m.Run()
	perRT := cycles / rounds
	oneLine := p.Lat(arch.Load, arch.Modified, arch.XeonSameDie)
	if perRT < 2*oneLine || perRT > 12*oneLine {
		t.Errorf("round-trip = %d cycles; want within [%d, %d] (2–12 line transfers)", perRT, 2*oneLine, 12*oneLine)
	}
}

func TestHardwareMPTilera(t *testing.T) {
	p := arch.Tilera()
	m := memsim.New(p)
	net := NewNetwork(m, []int{0, 35}, DefaultOptions(m))
	if !net.Hardware() {
		t.Fatal("Tilera network must use hardware message passing")
	}
	const rounds = 50
	m.Spawn(0, func(th *memsim.Thread) {
		for i := 0; i < rounds; i++ {
			net.Send(th, 35, Msg{W: [7]uint64{uint64(i)}})
			net.Recv(th, 35)
		}
	})
	m.Spawn(35, func(th *memsim.Thread) {
		for i := 0; i < rounds; i++ {
			from, msg := net.RecvAny(th)
			if from != 0 {
				t.Errorf("wrong sender %d", from)
			}
			net.Send(th, 0, msg)
		}
	})
	cycles := m.Run()
	perRT := float64(cycles) / rounds
	// Figure 9: Tilera max-hops round-trip ≈ 138 cycles.
	if perRT < 100 || perRT > 300 {
		t.Errorf("hardware round-trip = %.0f cycles, want ≈138 (100–300)", perRT)
	}
	// Software-forced must be slower than hardware on the Tilera.
	m2 := memsim.New(p)
	sw := NewNetwork(m2, []int{0, 35}, Options{ForceSoftware: true})
	if sw.Hardware() {
		t.Fatal("ForceSoftware ignored")
	}
	m2.Spawn(0, func(th *memsim.Thread) {
		for i := 0; i < rounds; i++ {
			sw.Send(th, 35, Msg{W: [7]uint64{uint64(i)}})
			sw.Recv(th, 35)
		}
	})
	m2.Spawn(35, func(th *memsim.Thread) {
		for i := 0; i < rounds; i++ {
			_, msg := sw.RecvAny(th)
			sw.Send(th, 0, msg)
		}
	})
	swCycles := m2.Run()
	if swCycles <= cycles {
		t.Errorf("software MP (%d cycles) should be slower than hardware (%d) on the Tilera", swCycles, cycles)
	}
}

func TestClientServer(t *testing.T) {
	// One server, several clients, round-trip calls; checks demux and FIFO
	// per pair.
	p := arch.Niagara()
	m := memsim.New(p)
	cores := []int{0, 8, 16, 24}
	net := NewNetwork(m, cores, DefaultOptions(m))
	const calls = 30
	served := 0
	m.Spawn(0, func(th *memsim.Thread) { // server
		for served < calls*(len(cores)-1) {
			from, msg := net.RecvAny(th)
			msg.W[1] = msg.W[0] + 100
			net.Send(th, from, msg)
			served++
		}
	})
	for _, c := range cores[1:] {
		c := c
		m.Spawn(c, func(th *memsim.Thread) {
			for i := 0; i < calls; i++ {
				resp := net.Call(th, 0, Msg{W: [7]uint64{uint64(i)}})
				if resp.W[1] != uint64(i)+100 {
					t.Errorf("client %d call %d: bad response %v", c, i, resp.W)
				}
			}
		})
	}
	m.Run()
	if served != calls*(len(cores)-1) {
		t.Fatalf("server handled %d calls, want %d", served, calls*(len(cores)-1))
	}
}

func TestPrefetchwSpeedsUpOpteronMP(t *testing.T) {
	// §5.3: message passing on the Opteron is faster with prefetchw.
	run := func(opt Options) uint64 {
		p := arch.Opteron()
		m := memsim.New(p)
		net := NewNetwork(m, []int{0, 24}, opt)
		const rounds = 60
		m.Spawn(0, func(th *memsim.Thread) {
			for i := 0; i < rounds; i++ {
				net.Call(th, 24, Msg{W: [7]uint64{1}})
			}
		})
		m.Spawn(24, func(th *memsim.Thread) {
			for i := 0; i < rounds; i++ {
				_, msg := net.RecvAny(th)
				net.Send(th, 0, msg)
			}
		})
		return m.Run()
	}
	with := run(Options{Prefetchw: true})
	without := run(Options{})
	if with >= without {
		t.Errorf("prefetchw must speed up Opteron MP: with=%d without=%d", with, without)
	}
}

func TestTryRecvEmpty(t *testing.T) {
	p := arch.Opteron()
	m := memsim.New(p)
	net := NewNetwork(m, []int{0, 1}, Options{})
	var ok bool
	m.Spawn(0, func(th *memsim.Thread) {
		_, ok = net.TryRecv(th, 1)
	})
	m.Spawn(1, func(th *memsim.Thread) { th.Pause(1) })
	m.Run()
	if ok {
		t.Fatal("TryRecv on an empty connection must report no message")
	}
}
