// Package simmp implements the paper's libssmp — message passing over
// cache coherence — against the machine simulator, plus the Tilera's
// hardware message passing.
//
// A software connection is one-directional and uses a single cache-line
// buffer: word 0 is the full/empty flag, words 1..7 carry up to 56 bytes
// of payload (the paper's messages are exactly one cache line). A message
// transmission therefore costs the cache-line transfers the paper derives
// in §6.2: the receiver spins on its locally-cached flag; the sender's
// write invalidates it and the receiver re-fetches — one-way ≈ 2 line
// transfers, round-trip ≈ 4.
//
// On the Tilera the same API rides the hardware channels of
// memsim.Channel (the iMesh user-dynamic network), which is both faster
// and insensitive to the coherence protocol, as in the paper.
package simmp

import (
	"fmt"

	"ssync/internal/memsim"
)

// Msg is one message: up to 7 words of payload (56 bytes; the last word of
// the cache line is the flag).
type Msg struct {
	W [7]uint64
}

// Options tunes the software implementation.
type Options struct {
	// Prefetchw makes the sender pin the buffer line in Modified state
	// before writing, the §5.3 optimization that makes message passing on
	// the Opteron up to 2.5× faster.
	Prefetchw bool
	// ForceSoftware uses the cache-coherence implementation even on
	// platforms with hardware message passing (for ablations).
	ForceSoftware bool
}

// DefaultOptions mirrors the paper's per-platform tuning.
func DefaultOptions(m *memsim.Machine) Options {
	return Options{Prefetchw: m.Plat.IncompleteDirectory}
}

// Network is a full mesh of one-directional connections between the
// participant cores.
type Network struct {
	m    *memsim.Machine
	opt  Options
	hw   bool
	part map[int]int // core -> participant index

	// Software buffers: buf[from][to] is the line for from→to messages,
	// allocated on the receiver's memory node.
	buf [][]memsim.Addr

	// Hardware: one receive channel per participant.
	ch []*memsim.Channel

	cores []int
}

// NewNetwork wires the given cores into a full mesh.
func NewNetwork(m *memsim.Machine, cores []int, opt Options) *Network {
	n := &Network{
		m:     m,
		opt:   opt,
		hw:    m.Plat.HardwareMP && !opt.ForceSoftware,
		part:  make(map[int]int, len(cores)),
		cores: append([]int(nil), cores...),
	}
	for i, c := range cores {
		n.part[c] = i
	}
	if n.hw {
		n.ch = make([]*memsim.Channel, len(cores))
		for i, c := range cores {
			n.ch[i] = m.NewChannel(c)
		}
		return n
	}
	n.buf = make([][]memsim.Addr, len(cores))
	for i := range cores {
		n.buf[i] = make([]memsim.Addr, len(cores))
		for j, to := range cores {
			if i == j {
				continue
			}
			// The buffer lives on the receiver's memory node.
			n.buf[i][j] = m.AllocLine(m.Plat.NodeOf(to))
		}
	}
	return n
}

// Hardware reports whether the network uses hardware message passing.
func (n *Network) Hardware() bool { return n.hw }

func (n *Network) idx(core int) int {
	i, ok := n.part[core]
	if !ok {
		panic(fmt.Sprintf("simmp: core %d is not a participant", core))
	}
	return i
}

// flag and payload layout within a buffer line.
func flagAddr(buf memsim.Addr) memsim.Addr        { return buf }
func wordAddr(buf memsim.Addr, i int) memsim.Addr { return buf + memsim.Addr(8+8*i) }

// Send transmits msg from the calling thread's core to the given core,
// blocking (parked) while the previous message is still unconsumed.
func (n *Network) Send(t *memsim.Thread, to int, msg Msg) {
	if n.hw {
		n.sendHW(t, to, msg)
		return
	}
	buf := n.buf[n.idx(t.Core())][n.idx(to)]
	t.WaitUntil(flagAddr(buf), func(v uint64) bool { return v == 0 })
	if n.opt.Prefetchw {
		t.Prefetchw(flagAddr(buf))
	}
	// The whole message body is one store-buffer burst (libssmp copies a
	// full cache-line message); the flag is released last.
	t.StoreMulti(wordAddr(buf, 0), msg.W[:]...)
	t.Store(flagAddr(buf), 1)
}

// Recv blocks until a message from the given core arrives and returns it.
func (n *Network) Recv(t *memsim.Thread, from int) Msg {
	if n.hw {
		for {
			val, f := t.ChanRecv(n.ch[n.idx(t.Core())])
			if f == from {
				return hwToMsg(val)
			}
			// Unexpected sender on a pairwise Recv: requeue is not
			// supported by the hardware; this is a protocol error.
			panic(fmt.Sprintf("simmp: Recv(from=%d) got message from %d", from, f))
		}
	}
	buf := n.buf[n.idx(from)][n.idx(t.Core())]
	return n.consume(t, buf)
}

// consume reads one message out of a software buffer and releases it. On
// the Opteron family the buffer line is pinned in Modified state first
// (§5.3), so the flag-clearing store is local instead of a
// store-on-shared broadcast — the receive-side half of the optimization
// that makes Opteron message passing up to 2.5× faster.
func (n *Network) consume(t *memsim.Thread, buf memsim.Addr) Msg {
	t.WaitUntil(flagAddr(buf), func(v uint64) bool { return v == 1 })
	if n.opt.Prefetchw {
		t.Prefetchw(flagAddr(buf))
	}
	var msg Msg
	copy(msg.W[:], t.LoadMulti(wordAddr(buf, 0), 7)) // local after the flag load
	t.Store(flagAddr(buf), 0)
	return msg
}

// TryRecv polls for a message from the given core without blocking.
func (n *Network) TryRecv(t *memsim.Thread, from int) (Msg, bool) {
	if n.hw {
		val, f, ok := t.ChanTryRecv(n.ch[n.idx(t.Core())])
		if !ok {
			return Msg{}, false
		}
		if f != from {
			panic(fmt.Sprintf("simmp: TryRecv(from=%d) got message from %d", from, f))
		}
		return hwToMsg(val), true
	}
	buf := n.buf[n.idx(from)][n.idx(t.Core())]
	if t.Load(flagAddr(buf)) != 1 {
		return Msg{}, false
	}
	if n.opt.Prefetchw {
		t.Prefetchw(flagAddr(buf))
	}
	var msg Msg
	copy(msg.W[:], t.LoadMulti(wordAddr(buf, 0), 7))
	t.Store(flagAddr(buf), 0)
	return msg, true
}

// RecvAny blocks until a message from any participant arrives; it returns
// the sender core and the message. Software mode scans the incoming
// buffers round-robin — the flag loads hit the local cache until a sender
// invalidates one, so an idle scan is cheap, exactly as in libssmp.
func (n *Network) RecvAny(t *memsim.Thread) (int, Msg) {
	me := n.idx(t.Core())
	if n.hw {
		val, from := t.ChanRecv(n.ch[me])
		return from, hwToMsg(val)
	}
	for {
		for j, from := range n.cores {
			if j == me {
				continue
			}
			buf := n.buf[j][me]
			if t.Load(flagAddr(buf)) == 1 {
				if n.opt.Prefetchw {
					t.Prefetchw(flagAddr(buf))
				}
				var msg Msg
				copy(msg.W[:], t.LoadMulti(wordAddr(buf, 0), 7))
				t.Store(flagAddr(buf), 0)
				return from, msg
			}
		}
		if t.Done() {
			return -1, Msg{}
		}
		t.Pause(20) // polling sweep gap
	}
}

// Call performs a round-trip: send a request to `to` and wait for its
// response (the client-server pattern of §6.2).
func (n *Network) Call(t *memsim.Thread, to int, msg Msg) Msg {
	n.Send(t, to, msg)
	return n.Recv(t, to)
}

func hwToMsg(val [8]uint64) Msg {
	var m Msg
	copy(m.W[:], val[:7])
	return m
}

func msgToHW(m Msg) [8]uint64 {
	var val [8]uint64
	copy(val[:7], m.W[:])
	return val
}

func (n *Network) sendHW(t *memsim.Thread, to int, msg Msg) {
	t.ChanSend(n.ch[n.idx(to)], to, msgToHW(msg))
}
