// Package xrand provides a tiny, fast, deterministic xorshift RNG.
//
// Experiments in this repository must be reproducible run-to-run, so each
// simulated thread carries its own explicitly-seeded generator instead of
// sharing math/rand's global state. The generator is xorshift64*, which is
// more than good enough for workload-mixing decisions (key choice, op mix)
// and costs a handful of instructions.
package xrand

import "math/bits"

// Rand is a deterministic xorshift64* generator.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has a zero fixed point.
func New(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Uint64n returns a pseudo-random uint64 in [0, n), unbiased. It panics
// if n == 0.
//
// The naive Uint64()%n draw over-represents the low residues whenever n
// does not divide 2^64 (the first 2^64 mod n values get one extra
// preimage each), which systematically skews low key ranks for arbitrary
// key-space sizes. This is Lemire's multiply-shift rejection ("Fast
// Random Integer Generation in an Interval"): map the 64-bit draw onto
// [0, n) with a 128-bit multiply and reject only draws landing in the
// short biased fringe, so every value keeps exactly the same number of
// preimages. The common case costs one extra multiply; rejection
// probability is n/2^64, negligible for any realistic key space.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n // (2^64 - n) mod n, the biased-fringe width
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a pseudo-random int in [0, n), unbiased. It panics if
// n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
