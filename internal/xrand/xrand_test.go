package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestZeroSeed(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed must not produce the all-zero stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		n := 1 + i%97
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestIntnRoughlyUniform(t *testing.T) {
	r := New(42)
	const buckets, n = 10, 100000
	var count [buckets]int
	for i := 0; i < n; i++ {
		count[r.Intn(buckets)]++
	}
	for b, c := range count {
		if c < n/buckets*8/10 || c > n/buckets*12/10 {
			t.Errorf("bucket %d has %d hits, expected ≈%d", b, c, n/buckets)
		}
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 97, 1 << 32, (1 << 63) + 12345, ^uint64(0)} {
		for i := 0; i < 1000; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) must panic")
		}
	}()
	New(1).Uint64n(0)
}

// TestUint64nUnbiased pins the rejection sampling where modulo bias is
// visible: for n = 3·2^62 the modulo draw would land HALF the samples
// in the first third of the range (values below 2^64-n get two
// preimages); the Lemire draw keeps it at a third.
func TestUint64nUnbiased(t *testing.T) {
	const n = uint64(3) << 62
	const draws = 60000
	r := New(1234)
	low := 0
	for i := 0; i < draws; i++ {
		if r.Uint64n(n) < n/3 {
			low++
		}
	}
	frac := float64(low) / draws
	if frac < 0.30 || frac > 0.37 {
		t.Fatalf("low third drew %.3f of samples, want ~1/3 (0.5 = modulo bias)", frac)
	}
}

// Property: Perm returns a permutation of [0,n).
func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		p := New(seed).Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
