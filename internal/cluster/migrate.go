package cluster

import (
	"errors"
	"fmt"
	"sort"

	"ssync/internal/store"
)

// Live ring resize. A resize streams exactly the arcs whose owner
// changes (diffArcs) from each old owner to the new one while client
// traffic keeps flowing, in four phases:
//
//	preparing:  a dirty-key tracker is installed on every source node;
//	            from here on, writes landing in a moving arc are
//	            recorded while the bulk copy runs underneath.
//	copying:    each move's arcs stream source → target in bounded
//	            chunks over the migration wire frames. The walk is a
//	            point-in-time sweep; concurrent writes behind its
//	            cursor are exactly what the tracker catches.
//	forwarding/ the sources are quiesced (each filter's write lock
//	commit:     drains its local executors), the dirty deltas are
//	            re-shipped, source and target digests are reconciled,
//	            the ceded ranges are purged, and the ring flips — all
//	            before any source lock releases, so at no instant do
//	            two nodes execute ops for the same key.
//	done:       registered clients are swung onto the new ring; ops
//	            still routed by the old one are forwarded by the
//	            ex-owner's filter.
//
// An abort at any point clears the trackers and purges the partial
// copies at the targets; the ring never flips, so the cluster degrades
// to exactly its pre-resize state.

// migOptions tunes one migration run; the exported entry points use
// defaults, tests inject faults and smaller chunks.
type migOptions struct {
	chunk     int // max entries per export chunk
	slots     int // anti-entropy digest slots
	failAfter int // test hook: abort after this many export chunks (0 = off)
}

func defaultMigOptions() migOptions { return migOptions{chunk: 1024, slots: 512} }

// AddNode grows the cluster by one node, streaming the arcs the new
// node takes over from their current owners while traffic keeps
// flowing. It returns the new node's id. Ids are stable: existing ids
// never change, and removed ids are never reused.
func (c *Cluster) AddNode() (int, error) { return c.addNode(defaultMigOptions()) }

func (c *Cluster) addNode(mo migOptions) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.ring.Load()
	list := c.nodeList()
	id := len(list)
	n := c.newNode(id)
	grown := append(append([]*node(nil), list...), n)
	c.nodes.Store(&grown)
	if err := c.migrate(old, old.Add(id), mo); err != nil {
		// The node never joined the ring and no client ever saw it; shut
		// its store down (after the abort purged the partial copy) and
		// leave the id burned.
		n.retired.Store(true)
		n.filter.closeConns()
		n.store.Close()
		return -1, err
	}
	return id, nil
}

// RemoveNode shrinks the cluster: node id's arcs stream to their new
// owners, then id leaves the ring. The node's server stays alive —
// retired, empty — to forward stragglers from clients that still route
// by the old ring.
func (c *Cluster) RemoveNode(id int) error { return c.removeNode(id, defaultMigOptions()) }

func (c *Cluster) removeNode(id int, mo migOptions) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.ring.Load()
	if id < 0 || id >= len(c.nodeList()) || !old.Has(id) {
		return fmt.Errorf("cluster: node %d is not a member", id)
	}
	if old.Nodes() == 1 {
		return errors.New("cluster: cannot remove the last node")
	}
	if err := c.migrate(old, old.Without(id), mo); err != nil {
		return err
	}
	c.node(id).retired.Store(true)
	return nil
}

// migrate drives one resize from ring old to ring next. Caller holds
// c.mu, so at most one migration is ever in flight.
func (c *Cluster) migrate(old, next *Ring, mo migOptions) error {
	moves := diffArcs(old, next)
	if len(moves) == 0 {
		c.ring.Store(next)
		c.updateClients(next)
		return nil
	}
	for _, m := range moves {
		if len(m.arcs) > store.MaxMigrateArcs {
			return fmt.Errorf("cluster: move %d→%d spans %d arcs (wire max %d)",
				m.from, m.to, len(m.arcs), store.MaxMigrateArcs)
		}
	}

	// Distinct source ids, sorted: the trackers are installed per
	// source, and the commit step locks the filters in this order.
	arcsBySource := map[int][]store.Arc{}
	for _, m := range moves {
		arcsBySource[m.from] = append(arcsBySource[m.from], m.arcs...)
	}
	sources := make([]int, 0, len(arcsBySource))
	for id := range arcsBySource {
		sources = append(sources, id)
	}
	sort.Ints(sources)

	// PREPARING: install the dirty trackers.
	for _, id := range sources {
		f := c.node(id).filter
		f.mu.Lock()
		f.mig = &migTracker{arcs: arcsBySource[id], dirty: map[string]struct{}{}}
		f.mu.Unlock()
	}

	// The driver speaks the migration frames over its own lock-step
	// connections; those frames bypass the routers by design.
	conns := map[int]*store.Client{}
	conn := func(id int) *store.Client {
		if cl := conns[id]; cl != nil {
			return cl
		}
		cl := c.node(id).server.PipeClient()
		conns[id] = cl
		return cl
	}
	defer func() {
		for _, cl := range conns {
			_ = cl.Close()
		}
	}()

	clearTrackers := func() {
		for _, id := range sources {
			f := c.node(id).filter
			f.mu.Lock()
			f.mig = nil
			f.mu.Unlock()
		}
	}
	abort := func(err error) error {
		clearTrackers()
		// Drop the partial copies: the ring is unchanged, so the targets
		// must not keep keys it does not assign them. Direct handles —
		// the wire would route these through nothing useful.
		for _, m := range moves {
			c.node(m.to).store.NewHandle(0).PurgeRange(m.arcs)
		}
		return err
	}

	// COPYING: stream every move while traffic flows.
	chunks := 0
	for _, m := range moves {
		src, dst := conn(m.from), conn(m.to)
		cursor := uint64(0)
		for {
			entries, nextCursor, done, err := src.MigExport(cursor, mo.chunk, m.arcs)
			if err != nil {
				return abort(fmt.Errorf("cluster: export %d→%d: %w", m.from, m.to, err))
			}
			chunks++
			if mo.failAfter > 0 && chunks >= mo.failAfter {
				return abort(fmt.Errorf("cluster: migration killed after %d chunks (fault injection)", chunks))
			}
			if len(entries) > 0 {
				if _, err := dst.MigApply(entries, nil); err != nil {
					return abort(fmt.Errorf("cluster: apply %d→%d: %w", m.from, m.to, err))
				}
			}
			if done {
				break
			}
			cursor = nextCursor
		}
	}

	// COMMIT: quiesce every source, ship the deltas, verify, purge,
	// flip. The write locks drain all in-flight local executions and
	// block new ones, so the delta read below sees the final pre-flip
	// state of every dirty key; client ops meanwhile queue on the locks
	// (or forward, for ops already past their owner check) instead of
	// failing.
	for _, id := range sources {
		c.node(id).filter.mu.Lock()
	}
	unlock := func() {
		for i := len(sources) - 1; i >= 0; i-- {
			c.node(sources[i]).filter.mu.Unlock()
		}
	}
	for _, m := range moves {
		f := c.node(m.from).filter
		srcH := c.node(m.from).store.NewHandle(0)
		var puts []store.Entry
		var dels []string
		for k := range f.mig.dirty { // no tracker lock needed: recorders are drained
			if !store.ArcsContain(m.arcs, store.KeyPos(k)) {
				continue
			}
			if v, ok := srcH.Get(k); ok {
				puts = append(puts, store.Entry{Key: k, Value: v})
			} else {
				dels = append(dels, k)
			}
		}
		dst := conn(m.to)
		if len(puts)+len(dels) > 0 {
			if _, err := dst.MigApply(puts, dels); err != nil {
				unlock()
				return abort(fmt.Errorf("cluster: delta %d→%d: %w", m.from, m.to, err))
			}
		}
		if err := reconcile(srcH, dst, m.arcs, mo.slots); err != nil {
			unlock()
			return abort(fmt.Errorf("cluster: reconcile %d→%d: %w", m.from, m.to, err))
		}
	}
	// Every move verified. Purge the ceded ranges, flip the ring, drop
	// the trackers — still under every source lock, so no op ever
	// executes at a source under the new ring or at a target under the
	// old one.
	for _, m := range moves {
		c.node(m.from).store.NewHandle(0).PurgeRange(m.arcs)
	}
	c.ring.Store(next)
	for _, id := range sources {
		c.node(id).filter.mig = nil
	}
	unlock()
	c.updateClients(next)
	return nil
}

// reconcile is the anti-entropy check of one move: source (read through
// a direct handle — its filter is write-locked) and target (over the
// wire) exchange per-slot XOR digests of the moved arcs. A mismatch
// triggers one bounded repair — both sides re-export the arcs (never
// the whole store), the diff ships to the target, and the digests are
// compared once more.
func reconcile(srcH *store.Handle, dst *store.Client, arcs []store.Arc, slots int) error {
	match := func() (bool, error) {
		want := srcH.DigestRange(arcs, slots)
		got, err := dst.MigDigest(arcs, slots)
		if err != nil {
			return false, err
		}
		for i := range want {
			if want[i] != got[i] {
				return false, nil
			}
		}
		return true, nil
	}
	ok, err := match()
	if err != nil || ok {
		return err
	}
	srcSet := map[string][]byte{}
	for cursor, done := uint64(0), false; !done; {
		var chunk []store.Entry
		chunk, cursor, done = srcH.ExportRange(cursor, store.MaxBatchOps, store.MaxFrame, arcs)
		for _, e := range chunk {
			srcSet[e.Key] = e.Value
		}
	}
	var dels []string
	for cursor, done := uint64(0), false; !done; {
		chunk, next, d, err := dst.MigExport(cursor, store.MaxBatchOps, arcs)
		if err != nil {
			return err
		}
		for _, e := range chunk {
			v, ok := srcSet[e.Key]
			if !ok {
				dels = append(dels, e.Key) // target-only key: drop it
				continue
			}
			if string(v) == string(e.Value) {
				delete(srcSet, e.Key) // already in agreement
			}
		}
		cursor, done = next, d
	}
	var puts []store.Entry
	for k, v := range srcSet {
		puts = append(puts, store.Entry{Key: k, Value: v})
	}
	if _, err := dst.MigApply(puts, dels); err != nil {
		return err
	}
	ok, err = match()
	if err != nil {
		return err
	}
	if !ok {
		return errors.New("cluster: digests still differ after repair")
	}
	return nil
}
