package cluster

import "testing"

// An exhaustive model checker for the handoff protocol, in the style of
// the memsim litmus tests: instead of hoping the race detector catches
// a bad schedule, enumerate every interleaving of a small model and
// assert the invariants on each terminal state.
//
// The model has two nodes (A, the source; B, the target), two keys
// (key 0 lies in the moving arc, key 1 does not), up to three client
// ops, and the migration driver. Each thread is a sequence of atomic
// steps mirroring the implementation's atomicity exactly:
//
//   - driver: install-tracker → copy-read (snapshot A's in-arc state) →
//     copy-apply (land the snapshot on B) → commit (atomically: re-ship
//     the dirty delta, purge A's arc, flip the ring, drop the tracker).
//     copy-read and copy-apply are separate steps because the real copy
//     reads under a shard lock and applies over the wire later — the
//     window the dirty tracker exists for.
//   - client op: the first attempt lands on a nondeterministically
//     chosen node (a client with a stale ring sends to the wrong one);
//     each attempt atomically checks ownership against the current ring
//     and either executes (recording the key as dirty when a tracker
//     covers it) or becomes a forward attempt at the owner — exactly
//     nodeFilter.Route under its RLock. Commit is one atomic step
//     because the implementation runs it under every source filter's
//     write lock, which drains and excludes the route-execute steps.
//
// Invariants checked at every terminal state:
//
//	no-lost-update:        each key's final value equals the replay of
//	                       its ops in execution order over the initial
//	                       state — a write can be neither dropped (lost
//	                       between copy and commit) nor doubled.
//	exactly-once:          every op executed exactly once.
//	single-owner-at-commit: after the flip the source holds nothing in
//	                       the arc, and no op ever executed on the
//	                       source post-flip or on the target pre-flip.
//	bounded forwarding:    no op chain exceeds the wire hop cap.

const (
	hNodeA  = 0
	hNodeB  = 1
	hAbsent = int8(-1)
)

// hOp is one modeled client op.
type hOp struct {
	key int8 // 0 = moving key, 1 = staying key
	val int8 // hAbsent = delete, else the value a put writes
}

const (
	hOpStart = int8(iota) // first attempt, node chosen nondeterministically
	hOpAtA                // pending attempt at A
	hOpAtB                // pending attempt at B
	hOpDone
)

// hState is the whole model state; it is tiny and copied by value at
// every branch of the exploration.
type hState struct {
	a, b    [2]int8 // per-key stored value at each node (hAbsent = missing)
	flipped bool    // ring: false → A owns key 0; B never owns key 1
	tracker bool
	dirty   [2]bool
	snap    int8 // copy-read's snapshot of key 0 at A
	dpc     int8 // driver program counter: 0..4

	opc  [3]int8 // per-op pc
	hops [3]int8

	execOrder [4]int8 // indices of ops in execution order
	execs     int8
	execAt    [3]int8 // node each op executed at
	postFlip  [3]bool // whether the op executed after the commit
}

// hOwner is the model's ring lookup.
func (s *hState) hOwner(key int8) int8 {
	if key == 0 && s.flipped {
		return hNodeB
	}
	return hNodeA
}

func (s *hState) hStore(node int8) *[2]int8 {
	if node == hNodeA {
		return &s.a
	}
	return &s.b
}

// hExec applies op i at node n — the body of the filter's local branch.
func (s *hState) hExec(i int, op hOp, n int8) {
	s.hStore(n)[op.key] = op.val
	if n == hNodeA && s.tracker && op.key == 0 {
		s.dirty[op.key] = true
	}
	s.execOrder[s.execs] = int8(i)
	s.execs++
	s.execAt[i] = n
	s.postFlip[i] = s.flipped
	s.opc[i] = hOpDone
}

// hOpStep advances op i by one atomic route-or-execute step; for
// hOpStart the caller has already resolved the nondeterministic first
// target into at. It reports a hop-cap violation.
func (s *hState) hOpStep(i int, op hOp, at int8) bool {
	var n int8
	if at == hOpAtA {
		n = hNodeA
	} else {
		n = hNodeB
	}
	owner := s.hOwner(op.key)
	if owner == n {
		s.hExec(i, op, n)
		return true
	}
	s.hops[i]++
	if s.hops[i] > 8 { // store.MaxForwardHops
		return false
	}
	if owner == hNodeA {
		s.opc[i] = hOpAtA
	} else {
		s.opc[i] = hOpAtB
	}
	return true
}

// hDriverStep advances the driver by one step.
func (s *hState) hDriverStep() {
	switch s.dpc {
	case 0: // install tracker
		s.tracker = true
		s.dirty = [2]bool{}
	case 1: // copy-read: snapshot A's in-arc state
		s.snap = s.a[0]
	case 2: // copy-apply: land the snapshot on B
		if s.snap != hAbsent {
			s.b[0] = s.snap
		}
	case 3: // commit: delta, purge, flip, drop tracker — atomic
		if s.dirty[0] {
			s.b[0] = s.a[0]
		}
		s.a[0] = hAbsent
		s.flipped = true
		s.tracker = false
	}
	s.dpc++
}

// hStats accumulates coverage over the exploration.
type hStats struct {
	terminals  int
	forwards   int
	deltaRuns  int // commits that actually re-shipped a dirty key
	staleSends int
}

// hCheck asserts the invariants at a terminal state.
func hCheck(t *testing.T, init [2]int8, ops []hOp, s *hState, st *hStats) {
	t.Helper()
	st.terminals++
	// exactly-once.
	if int(s.execs) != len(ops) {
		t.Fatalf("%d ops executed, want %d", s.execs, len(ops))
	}
	// no-lost-update: replay per key in execution order.
	final := init
	for e := int8(0); e < s.execs; e++ {
		op := ops[s.execOrder[e]]
		final[op.key] = op.val
	}
	if s.b[0] != final[0] {
		t.Fatalf("moving key: target holds %d, replay gives %d (order %v, ops %v)",
			s.b[0], final[0], s.execOrder[:s.execs], ops)
	}
	if s.a[1] != final[1] {
		t.Fatalf("staying key: source holds %d, replay gives %d", s.a[1], final[1])
	}
	// single-owner-at-commit.
	if s.a[0] != hAbsent {
		t.Fatalf("source still holds %d for the moved key after commit", s.a[0])
	}
	if s.b[1] != hAbsent {
		t.Fatalf("target holds %d for a key that never moved", s.b[1])
	}
	for i := range ops {
		if ops[i].key != 0 {
			continue
		}
		if s.execAt[i] == hNodeA && s.postFlip[i] {
			t.Fatalf("op %d executed at the ex-owner after the flip", i)
		}
		if s.execAt[i] == hNodeB && !s.postFlip[i] {
			t.Fatalf("op %d executed at the target before the flip", i)
		}
	}
	for _, h := range s.hops {
		st.forwards += int(h)
	}
	if s.dirty[0] {
		st.deltaRuns++
	}
}

// hExplore enumerates every interleaving (and every nondeterministic
// first-attempt target) from state s.
func hExplore(t *testing.T, init [2]int8, ops []hOp, s hState, st *hStats) {
	progressed := false
	// Driver step.
	if s.dpc < 4 {
		progressed = true
		next := s
		next.hDriverStep()
		hExplore(t, init, ops, next, st)
	}
	// Client op steps.
	for i := range ops {
		switch s.opc[i] {
		case hOpDone:
			continue
		case hOpStart:
			progressed = true
			for _, first := range []int8{hOpAtA, hOpAtB} {
				next := s
				if first == hOpAtB && !next.flipped {
					st.staleSends++ // wrong node: a stale or early client
				}
				if !next.hOpStep(i, ops[i], first) {
					t.Fatalf("op %d exceeded the hop cap", i)
				}
				hExplore(t, init, ops, next, st)
			}
		default:
			progressed = true
			next := s
			if !next.hOpStep(i, ops[i], next.opc[i]) {
				t.Fatalf("op %d exceeded the hop cap", i)
			}
			hExplore(t, init, ops, next, st)
		}
	}
	if !progressed {
		hCheck(t, init, ops, &s, st)
	}
}

// TestHandoffInterleavings drives the model over every op set of up to
// three puts/deletes on the moving and staying keys, from both an
// empty and a populated initial state, exploring all interleavings
// against the four driver steps.
func TestHandoffInterleavings(t *testing.T) {
	// The op universe: put (distinct values) or delete, on either key.
	universe := []hOp{
		{key: 0, val: 10},
		{key: 0, val: 11},
		{key: 0, val: hAbsent},
		{key: 1, val: 20},
		{key: 1, val: hAbsent},
	}
	maxOps := 3
	if testing.Short() {
		maxOps = 2
	}
	var st hStats
	for _, initVal := range []int8{hAbsent, 1} {
		init := [2]int8{initVal, initVal}
		var opSets [][]hOp
		var build func(cur []hOp, from int)
		build = func(cur []hOp, from int) {
			if len(cur) > 0 {
				opSets = append(opSets, append([]hOp(nil), cur...))
			}
			if len(cur) == maxOps {
				return
			}
			// Op multisets, not sequences: the interleaving exploration
			// already generates every relative order.
			for i := from; i < len(universe); i++ {
				build(append(cur, universe[i]), i)
			}
		}
		build(nil, 0)
		for _, ops := range opSets {
			s := hState{dpc: 0}
			s.a = init
			s.b = [2]int8{hAbsent, hAbsent}
			s.snap = hAbsent
			for i := range s.execAt {
				s.execAt[i] = hAbsent
			}
			hExplore(t, init, ops, s, &st)
		}
	}
	if st.terminals == 0 || st.forwards == 0 || st.deltaRuns == 0 || st.staleSends == 0 {
		t.Fatalf("coverage hole: %+v", st)
	}
	t.Logf("explored %d terminal states (%d forwards, %d dirty-delta commits, %d stale sends)",
		st.terminals, st.forwards, st.deltaRuns, st.staleSends)
}
