package cluster

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"ssync/internal/locks"
	"ssync/internal/store"
	"ssync/internal/store/linearize"
	"ssync/internal/workload"
	"ssync/internal/xrand"
)

// Per-key linearizability over a 3-node cluster: the single-owner
// routing argument made executable. Every key lives on exactly one node
// (and there in one shard), so the per-key guarantees the Wing–Gong
// checker establishes for one store must survive the cluster layer —
// lock-step routed clients and deep async routed clients alike. Run
// with -race; CI's cluster leg does.

func clusterArgValue(arg uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], arg)
	return b[:]
}

func clusterDecodeArg(t *testing.T, ctx string, b []byte) uint64 {
	t.Helper()
	if len(b) != 8 {
		t.Fatalf("%s: value has %d bytes, want 8 (torn or foreign write)", ctx, len(b))
	}
	return binary.LittleEndian.Uint64(b)
}

func clusterCheckHistories(t *testing.T, ctx string, hists []*linearize.History) {
	t.Helper()
	for k, h := range hists {
		ops := h.Ops()
		res := linearize.CheckDefault(ops)
		if !res.Decided {
			t.Fatalf("%s: key %d: checker undecided after %d nodes over %d ops — shrink the history",
				ctx, k, res.Visited, len(ops))
		}
		if !res.Ok {
			t.Fatalf("%s: key %d: history of %d ops is NOT linearizable (visited %d); blocked op: %v",
				ctx, k, len(ops), res.Visited, res.Failed)
		}
	}
}

func clusterMixedOp(rng *xrand.Rand) (kind linearize.Kind, keyIdx uint64) {
	keyIdx = rng.Uint64()
	switch d := rng.Uint64n(100); {
	case d < 50:
		kind = linearize.Get
	case d < 85:
		kind = linearize.Put
	default:
		kind = linearize.Delete
	}
	return kind, keyIdx
}

func newClusterHistories(nKeys int) []*linearize.History {
	hists := make([]*linearize.History, nKeys)
	for i := range hists {
		hists[i] = linearize.NewHistory()
	}
	return hists
}

// runRoutedLinearClient drives ops operations over the routing client's
// blocking surface (lock-step), recording per-key histories. tick (may
// be nil) runs after every completed op — the hook the
// across-migration test uses to pace resizes against traffic.
func runRoutedLinearClient(t *testing.T, cl *Client, client, nKeys, ops int, hists []*linearize.History, tick func()) {
	rng := xrand.New(uint64(client)*0x9E3779B97F4A7C15 + 23)
	seq := uint64(0)
	for i := 0; i < ops; i++ {
		kind, draw := clusterMixedOp(rng)
		k := int(draw % uint64(nKeys))
		key := workload.Key(uint64(k))
		h := hists[k]
		op := linearize.Op{Client: client, Kind: kind}
		op.Call = h.Now()
		switch kind {
		case linearize.Get:
			v, found, err := cl.Get(key)
			op.Ret = h.Now()
			if err != nil {
				t.Error(err)
				return
			}
			op.Found = found
			if found {
				op.Val = clusterDecodeArg(t, fmt.Sprintf("client %d key %d", client, k), v)
			}
		case linearize.Put:
			seq++
			arg := uint64(client)<<32 | seq
			created, err := cl.Put(key, clusterArgValue(arg))
			op.Ret = h.Now()
			if err != nil {
				t.Error(err)
				return
			}
			op.Arg, op.Found = arg, created
		case linearize.Delete:
			existed, err := cl.Delete(key)
			op.Ret = h.Now()
			if err != nil {
				t.Error(err)
				return
			}
			op.Found = existed
		}
		h.Add(op)
		if tick != nil {
			tick()
		}
	}
}

// runRoutedAsyncLinearClient drives ops operations through the routing
// client's async surface with a real in-flight window: invocation is
// stamped at submission, response at Wait — the interval in which the
// routed op took effect on its owner node.
func runRoutedAsyncLinearClient(t *testing.T, cl *Client, client, nKeys, ops, depth int, hists []*linearize.History, tick func()) {
	type pendingOp struct {
		op  linearize.Op
		k   int
		fut *store.Future
	}
	rng := xrand.New(uint64(client)*0x2545F4914F6CDD1D + 91)
	seq := uint64(0)
	window := make([]pendingOp, 0, depth)
	settle := func(p pendingOp) bool {
		h := hists[p.k]
		resp, err := p.fut.Wait()
		p.op.Ret = h.Now()
		if err != nil {
			t.Error(err)
			return false
		}
		switch p.op.Kind {
		case linearize.Get:
			p.op.Found = resp.Status == store.StatusOK
			if p.op.Found {
				p.op.Val = clusterDecodeArg(t, fmt.Sprintf("async client %d key %d", client, p.k), resp.Value)
			}
		case linearize.Put:
			p.op.Found = resp.Created
		case linearize.Delete:
			p.op.Found = resp.Status == store.StatusOK
		}
		h.Add(p.op)
		if tick != nil {
			tick()
		}
		return true
	}
	for i := 0; i < ops; i++ {
		kind, draw := clusterMixedOp(rng)
		k := int(draw % uint64(nKeys))
		key := workload.Key(uint64(k))
		p := pendingOp{op: linearize.Op{Client: client, Kind: kind}, k: k}
		p.op.Call = hists[k].Now()
		switch kind {
		case linearize.Get:
			p.fut = cl.GetAsync(key)
		case linearize.Put:
			seq++
			p.op.Arg = uint64(client)<<32 | seq
			p.fut = cl.PutAsync(key, clusterArgValue(p.op.Arg))
		case linearize.Delete:
			p.fut = cl.DeleteAsync(key)
		}
		if len(window) == depth {
			oldest := window[0]
			window = append(window[:0], window[1:]...)
			if !settle(oldest) {
				return
			}
		}
		window = append(window, p)
	}
	for _, p := range window {
		if !settle(p) {
			return
		}
	}
}

// TestClusterLinearizable is the 3-node × engine × client-kind matrix:
// every shard engine serves a 3-node cluster, driven by lock-step
// routed clients and by async routed clients at depth 16, and every
// per-key history must linearize.
func TestClusterLinearizable(t *testing.T) {
	// Routed async histories overlap more than single-store ones (a
	// settle can trail ops routed to other nodes), so keep the per-key
	// history a bit shorter than the store matrix or the bounded search
	// runs out of node budget.
	const (
		nClients = 4
		nKeys    = 8
		depth    = 16
	)
	ops := 280
	if testing.Short() {
		ops = 100
	}
	for _, eng := range store.Engines {
		for _, kind := range []string{"lockstep", "async"} {
			eng, kind := eng, kind
			t.Run(string(eng)+"/"+kind, func(t *testing.T) {
				t.Parallel()
				c := New(Options{Nodes: 3, Store: store.Options{
					Shards: 2, Buckets: 4, Engine: eng, Lock: locks.MCS,
					MaxThreads: nClients + 2, Nodes: 2,
				}})
				defer c.Close()
				hists := newClusterHistories(nKeys)
				var wg sync.WaitGroup
				for cli := 0; cli < nClients; cli++ {
					cli := cli
					wg.Add(1)
					go func() {
						defer wg.Done()
						switch kind {
						case "lockstep":
							cl := c.Dial(1)
							defer cl.Close()
							runRoutedLinearClient(t, cl, cli, nKeys, ops, hists, nil)
						case "async":
							cl := c.Dial(depth)
							defer cl.Close()
							runRoutedAsyncLinearClient(t, cl, cli, nKeys, ops, depth, hists, nil)
						}
					}()
				}
				wg.Wait()
				if t.Failed() {
					return
				}
				clusterCheckHistories(t, string(eng)+"/"+kind, hists)
			})
		}
	}
}
