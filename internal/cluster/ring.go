// Package cluster lifts the sharded store (internal/store) from one
// process to many: a Cluster spins up N wire servers, each owning an
// independent store (any shard engine × any lock algorithm), and a
// routing Client maps every key to exactly one node through a
// consistent-hash ring and drives the nodes through the multiplexed
// async wire clients.
//
// The design keeps the single-owner discipline the rest of the
// repository is built on. A key lives on exactly one node (the ring
// owner), and on that node in exactly one shard — so every per-key
// history still runs through one synchronization point, and the per-key
// linearizability the Wing–Gong checker establishes for a single store
// is preserved by construction across the cluster. Contrast optimistic
// replication (CRDTs, eventual convergence), which buys availability by
// giving up exactly this property.
//
// Membership is elastic: Cluster.AddNode and Cluster.RemoveNode resize
// the ring while traffic keeps flowing, streaming exactly the affected
// arcs to their new owners (see migrate.go). The single-owner
// discipline holds through a resize — during the copy window writes in
// a moving arc are dirty-tracked at the old owner, and the commit step
// quiesces the sources before the ring flips, so at every instant each
// key has one executing owner.
package cluster

import (
	"fmt"
	"sort"

	"ssync/internal/hashkit"
	"ssync/internal/store"
)

// DefaultVnodes is the virtual-node count per node used when a Ring is
// built with a non-positive one. More virtual points smooth the arc
// lengths between nodes: with v points per node the expected imbalance
// shrinks like 1/sqrt(v), and 128 keeps every node within roughly ±10%
// of fair share while lookups stay a short binary search.
const DefaultVnodes = 128

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node int
}

// Ring is a consistent-hash ring over a set of member node ids with
// virtual points. A key's owner is the member of the first point
// clockwise of the key's ring position; the mapping depends only on
// (members, vnodes), so two rings built with the same parameters route
// identically — a client and a test harness never disagree about
// ownership. A member's points depend only on its id, so adding a node
// moves only the keys that land on the new node's points and removing
// one moves only the keys it held (the consistent-hashing property the
// routing-stability tests pin down). Rings are immutable; Add and
// Without derive resized ones.
type Ring struct {
	members []int // sorted ascending, distinct
	vnodes  int
	points  []point
}

// NewRing builds a ring over members 0..nodes-1 with vnodes virtual
// points per node (non-positive means DefaultVnodes).
func NewRing(nodes, vnodes int) *Ring {
	if nodes < 1 {
		nodes = 1
	}
	members := make([]int, nodes)
	for i := range members {
		members[i] = i
	}
	return NewRingOf(members, vnodes)
}

// NewRingOf builds a ring over an explicit member-id set — the shape a
// resized cluster has once removed ids leave holes. Members are
// deduplicated; an empty set means the single member 0.
func NewRingOf(members []int, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = DefaultVnodes
	}
	ms := append([]int(nil), members...)
	sort.Ints(ms)
	w := 0
	for i, m := range ms {
		if i > 0 && m == ms[w-1] {
			continue
		}
		ms[w] = m
		w++
	}
	ms = ms[:w]
	if len(ms) == 0 {
		ms = []int{0}
	}
	r := &Ring{members: ms, vnodes: vnodes, points: make([]point, 0, len(ms)*vnodes)}
	for _, n := range ms {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: pointHash(n, v), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.node < b.node // deterministic tie-break, node order
	})
	return r
}

// pointHash places virtual point v of node n on the ring. The FNV hash
// of the short label is pushed through the avalanche remix — without it
// the points cluster and the arcs (hence the nodes' key shares) are
// wildly uneven.
func pointHash(node, vnode int) uint64 {
	return hashkit.Mix64(hashkit.FNV1a(fmt.Sprintf("node-%d#vnode-%d", node, vnode)))
}

// Nodes returns the member count.
func (r *Ring) Nodes() int { return len(r.members) }

// Members returns the member ids, sorted ascending.
func (r *Ring) Members() []int { return append([]int(nil), r.members...) }

// Has reports whether id is a member.
func (r *Ring) Has(id int) bool {
	i := sort.SearchInts(r.members, id)
	return i < len(r.members) && r.members[i] == id
}

// MaxID returns the largest member id.
func (r *Ring) MaxID() int { return r.members[len(r.members)-1] }

// Vnodes returns the virtual-point count per node.
func (r *Ring) Vnodes() int { return r.vnodes }

// Add derives the ring with id added to the member set.
func (r *Ring) Add(id int) *Ring {
	if r.Has(id) {
		return r
	}
	return NewRingOf(append(r.Members(), id), r.vnodes)
}

// Without derives the ring with id removed from the member set. Because
// a member's points depend only on its id, removing and re-adding a
// node restores the exact prior ownership.
func (r *Ring) Without(id int) *Ring {
	ms := make([]int, 0, len(r.members))
	for _, m := range r.members {
		if m != id {
			ms = append(ms, m)
		}
	}
	return NewRingOf(ms, r.vnodes)
}

// Owner returns the node owning key.
func (r *Ring) Owner(key string) int {
	return r.OwnerHash(hashkit.FNV1a(key))
}

// OwnerHash returns the node owning a key with the given FNV-1a hash.
// The hash is avalanche-remixed before the ring lookup, so the ring
// position is independent of the bits the node's store spends on shard
// selection (hash % shards) — the same bit-budget discipline
// hashkit.Bucket applies inside a shard.
func (r *Ring) OwnerHash(h uint64) int {
	return r.ownerAt(hashkit.Mix64(h))
}

// ownerAt returns the member owning ring position pos (already
// remixed) — the primitive Owner and the arc-diff below share.
func (r *Ring) ownerAt(pos uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= pos })
	if i == len(r.points) {
		i = 0 // wrap: positions past the last point belong to the first
	}
	return r.points[i].node
}

// move is one migration stream of a resize: the arcs node from cedes to
// node to.
type move struct {
	from, to int
	arcs     []store.Arc
}

// diffArcs computes the exact set of ring arcs whose owner differs
// between old and next, grouped into per-(from,to) moves. It walks the
// sorted union of both rings' point hashes: ownership is constant on
// the interval between two adjacent boundaries (no point of either ring
// lies strictly inside), so comparing the two owners once per interval
// and coalescing adjacent differing intervals yields the minimal arc
// set — the ranges a resize must stream, and nothing else.
func diffArcs(old, next *Ring) []move {
	bounds := make([]uint64, 0, len(old.points)+len(next.points))
	for _, p := range old.points {
		bounds = append(bounds, p.hash)
	}
	for _, p := range next.points {
		bounds = append(bounds, p.hash)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	w := 0
	for i, b := range bounds {
		if i > 0 && b == bounds[w-1] {
			continue
		}
		bounds[w] = b
		w++
	}
	bounds = bounds[:w]
	if len(bounds) < 2 {
		return nil
	}
	type pair struct{ from, to int }
	byPair := map[pair]int{} // pair -> index into moves
	var moves []move
	for i, hi := range bounds {
		lo := bounds[(i+len(bounds)-1)%len(bounds)] // i==0 wraps to the last boundary
		a, b := old.ownerAt(hi), next.ownerAt(hi)
		if a == b {
			continue
		}
		k := pair{from: a, to: b}
		mi, ok := byPair[k]
		if !ok {
			mi = len(moves)
			byPair[k] = mi
			moves = append(moves, move{from: a, to: b})
		}
		arcs := moves[mi].arcs
		if n := len(arcs); n > 0 && arcs[n-1].Hi == lo {
			arcs[n-1].Hi = hi // coalesce with the adjacent interval
		} else {
			arcs = append(arcs, store.Arc{Lo: lo, Hi: hi})
		}
		moves[mi].arcs = arcs
	}
	return moves
}
