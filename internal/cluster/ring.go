// Package cluster lifts the sharded store (internal/store) from one
// process to many: a Cluster spins up N wire servers, each owning an
// independent store (any shard engine × any lock algorithm), and a
// routing Client maps every key to exactly one node through a
// consistent-hash ring and drives the nodes through the multiplexed
// async wire clients.
//
// The design keeps the single-owner discipline the rest of the
// repository is built on. A key lives on exactly one node (the ring
// owner), and on that node in exactly one shard — so every per-key
// history still runs through one synchronization point, and the per-key
// linearizability the Wing–Gong checker establishes for a single store
// is preserved by construction across the cluster. Contrast optimistic
// replication (CRDTs, eventual convergence), which buys availability by
// giving up exactly this property.
package cluster

import (
	"fmt"
	"sort"

	"ssync/internal/hashkit"
)

// DefaultVnodes is the virtual-node count per node used when a Ring is
// built with a non-positive one. More virtual points smooth the arc
// lengths between nodes: with v points per node the expected imbalance
// shrinks like 1/sqrt(v), and 128 keeps every node within roughly ±10%
// of fair share while lookups stay a short binary search.
const DefaultVnodes = 128

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node int
}

// Ring is a consistent-hash ring over n nodes with virtual points. A
// key's owner is the node of the first point clockwise of the key's
// ring position; the mapping depends only on (nodes, vnodes), so two
// rings built with the same parameters route identically — a client and
// a test harness never disagree about ownership. Adding a node moves
// only the keys that land on the new node's points; every other key
// keeps its owner (the consistent-hashing property the routing-stability
// test pins down).
type Ring struct {
	nodes  int
	vnodes int
	points []point
}

// NewRing builds a ring over nodes nodes with vnodes virtual points per
// node (non-positive means DefaultVnodes).
func NewRing(nodes, vnodes int) *Ring {
	if nodes < 1 {
		nodes = 1
	}
	if vnodes < 1 {
		vnodes = DefaultVnodes
	}
	r := &Ring{nodes: nodes, vnodes: vnodes, points: make([]point, 0, nodes*vnodes)}
	for n := 0; n < nodes; n++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: pointHash(n, v), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.node < b.node // deterministic tie-break, node order
	})
	return r
}

// pointHash places virtual point v of node n on the ring. The FNV hash
// of the short label is pushed through the avalanche remix — without it
// the points cluster and the arcs (hence the nodes' key shares) are
// wildly uneven.
func pointHash(node, vnode int) uint64 {
	return hashkit.Mix64(hashkit.FNV1a(fmt.Sprintf("node-%d#vnode-%d", node, vnode)))
}

// Nodes returns the node count.
func (r *Ring) Nodes() int { return r.nodes }

// Vnodes returns the virtual-point count per node.
func (r *Ring) Vnodes() int { return r.vnodes }

// Owner returns the node owning key.
func (r *Ring) Owner(key string) int {
	return r.OwnerHash(hashkit.FNV1a(key))
}

// OwnerHash returns the node owning a key with the given FNV-1a hash.
// The hash is avalanche-remixed before the ring lookup, so the ring
// position is independent of the bits the node's store spends on shard
// selection (hash % shards) — the same bit-budget discipline
// hashkit.Bucket applies inside a shard.
func (r *Ring) OwnerHash(h uint64) int {
	pos := hashkit.Mix64(h)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= pos })
	if i == len(r.points) {
		i = 0 // wrap: positions past the last point belong to the first
	}
	return r.points[i].node
}
