package cluster

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ssync/internal/locks"
	"ssync/internal/store"
)

func resizeTestCluster(t *testing.T, nodes int, eng store.Engine) *Cluster {
	t.Helper()
	c := New(Options{Nodes: nodes, Vnodes: 32, Store: store.Options{
		Shards: 2, Buckets: 8, Engine: eng, Lock: locks.MCS, MaxThreads: 16, Nodes: 2,
	}})
	t.Cleanup(c.Close)
	return c
}

// checkPartition asserts the single-owner invariant at rest: every key
// is present on exactly the node the current ring owns it to, with the
// expected value, and retired nodes hold nothing.
func checkPartition(t *testing.T, c *Cluster, want map[string]string) {
	t.Helper()
	ring := c.Ring()
	members := ring.Members()
	handles := map[int]*store.Handle{}
	total := 0
	for _, m := range members {
		h := c.Store(m).NewHandle(0)
		handles[m] = h
		total += h.Len()
	}
	if total != len(want) {
		t.Fatalf("members hold %d entries total, want %d", total, len(want))
	}
	for k, v := range want {
		owner := ring.Owner(k)
		got, ok := handles[owner].Get(k)
		if !ok || string(got) != v {
			t.Fatalf("key %q: owner %d has (%q, %v), want (%q, true)", k, owner, got, ok, v)
		}
	}
}

// TestClusterResizeDataIntegrity: grow then shrink a loaded cluster;
// after each resize every key lives exactly on its new owner with its
// value intact, and the routing client (retargeted automatically)
// serves all of them.
func TestClusterResizeDataIntegrity(t *testing.T) {
	for _, eng := range store.Engines {
		eng := eng
		t.Run(string(eng), func(t *testing.T) {
			t.Parallel()
			c := resizeTestCluster(t, 3, eng)
			cl := c.Dial(0)
			defer cl.Close()

			want := map[string]string{}
			var entries []store.Entry
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("resize-%05d", i)
				want[k] = k
				entries = append(entries, store.Entry{Key: k, Value: []byte(k)})
			}
			if _, err := cl.MPut(entries); err != nil {
				t.Fatal(err)
			}

			id, err := c.AddNode()
			if err != nil {
				t.Fatalf("AddNode: %v", err)
			}
			if id != 3 || c.Nodes() != 4 || !c.Ring().Has(3) {
				t.Fatalf("after grow: id=%d members=%v", id, c.Members())
			}
			checkPartition(t, c, want)
			if h := c.Store(3).NewHandle(0); h.Len() == 0 {
				t.Fatal("new node took over no keys")
			}

			if err := c.RemoveNode(1); err != nil {
				t.Fatalf("RemoveNode: %v", err)
			}
			if got := fmt.Sprint(c.Members()); got != "[0 2 3]" {
				t.Fatalf("after shrink: members %s", got)
			}
			checkPartition(t, c, want)
			if h := c.Store(1).NewHandle(0); h.Len() != 0 {
				t.Fatalf("retired node still holds %d entries", h.Len())
			}

			// The registered client followed both resizes.
			for i := 0; i < 2000; i += 97 {
				k := fmt.Sprintf("resize-%05d", i)
				v, ok, err := cl.Get(k)
				if err != nil || !ok || string(v) != k {
					t.Fatalf("client Get(%q) after resizes: (%q, %v, %v)", k, v, ok, err)
				}
			}
			// And a full scan still returns exactly the key set.
			es, err := cl.Scan("resize-", 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(es) != len(want) {
				t.Fatalf("scan returned %d entries, want %d", len(es), len(want))
			}
		})
	}
}

// TestClusterResizeStaleClient: a client that never learns about a
// resize keeps working — the ex-owners' filters forward its ops to the
// new owners — and its writes are visible to an up-to-date client.
func TestClusterResizeStaleClient(t *testing.T) {
	c := resizeTestCluster(t, 3, store.EngineLocked)
	oldRing := c.Ring()
	conns := make([]*store.AsyncClient, 3)
	for i := range conns {
		conns[i] = c.Server(i).PipeAsyncClient(4)
	}
	stale, err := NewClient(oldRing, conns) // hand-built: not registered, never retargeted
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()
	fresh := c.Dial(0)
	defer fresh.Close()

	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("stale-%04d", i)
		if _, err := stale.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.AddNode(); err != nil {
		t.Fatal(err)
	}

	moved, forwardedWrites := 0, 0
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("stale-%04d", i)
		if oldRing.Owner(k) != c.Ring().Owner(k) {
			moved++
		}
		// Reads through the stale view: the op lands on the old owner,
		// which forwards it when the key moved.
		v, ok, err := stale.Get(k)
		if err != nil || !ok || string(v) != k {
			t.Fatalf("stale Get(%q): (%q, %v, %v)", k, v, ok, err)
		}
		// Writes through the stale view must land on the new owner.
		nv := k + "+updated"
		if _, err := stale.Put(k, []byte(nv)); err != nil {
			t.Fatal(err)
		}
		if oldRing.Owner(k) != c.Ring().Owner(k) {
			forwardedWrites++
		}
		v, ok, err = fresh.Get(k)
		if err != nil || !ok || string(v) != nv {
			t.Fatalf("fresh Get(%q) after stale write: (%q, %v, %v)", k, v, ok, err)
		}
	}
	if moved == 0 || forwardedWrites == 0 {
		t.Fatalf("resize moved %d keys (%d forwarded writes); the forwarding path was not exercised", moved, forwardedWrites)
	}
	// The forwarded values live only on the new owners.
	wantAll := map[string]string{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("stale-%04d", i)
		wantAll[k] = k + "+updated"
	}
	checkPartition(t, c, wantAll)
}

// TestClusterMigrationKilledMidCopy: fault injection — the migration
// dies after its first export chunk. The cluster must degrade to
// exactly its pre-resize state: ring unchanged, partial copy purged,
// no forwarding window stuck (ops and later resizes proceed normally),
// and closing clients resolves every pending future.
func TestClusterMigrationKilledMidCopy(t *testing.T) {
	c := resizeTestCluster(t, 3, store.EngineActor)
	cl := c.Dial(8)
	defer cl.Close()
	want := map[string]string{}
	var entries []store.Entry
	for i := 0; i < 1500; i++ {
		k := fmt.Sprintf("kill-%05d", i)
		want[k] = k
		entries = append(entries, store.Entry{Key: k, Value: []byte(k)})
	}
	if _, err := cl.MPut(entries); err != nil {
		t.Fatal(err)
	}

	// Keep traffic in flight across the abort.
	var futs []*store.Future
	for i := 0; i < 64; i++ {
		futs = append(futs, cl.GetAsync(fmt.Sprintf("kill-%05d", i)))
	}

	id, err := c.addNode(migOptions{chunk: 64, slots: 64, failAfter: 3})
	if err == nil {
		t.Fatal("fault-injected AddNode reported success")
	}
	if !strings.Contains(err.Error(), "fault injection") {
		t.Fatalf("unexpected abort error: %v", err)
	}
	if id != -1 || c.Nodes() != 3 || c.Ring().Has(3) {
		t.Fatalf("after abort: id=%d members=%v", id, c.Members())
	}
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatalf("pending future failed across abort: %v", err)
		}
	}
	// No data moved, none lost, no tracker left behind.
	checkPartition(t, c, want)
	for i := 0; i < 1500; i += 131 {
		k := fmt.Sprintf("kill-%05d", i)
		if v, ok, err := cl.Get(k); err != nil || !ok || string(v) != k {
			t.Fatalf("Get(%q) after abort: (%q, %v, %v)", k, v, ok, err)
		}
	}
	for _, m := range c.Members() {
		if f := c.node(m).filter; func() bool { f.mu.Lock(); defer f.mu.Unlock(); return f.mig != nil }() {
			t.Fatalf("node %d still has a migration tracker after abort", m)
		}
	}
	// A subsequent resize succeeds (the aborted id stays burned).
	id, err = c.AddNode()
	if err != nil {
		t.Fatalf("AddNode after abort: %v", err)
	}
	if id != 4 {
		t.Fatalf("post-abort AddNode reused id %d, want 4", id)
	}
	checkPartition(t, c, want)
}

// TestRemoveNodeErrors: membership guard rails.
func TestRemoveNodeErrors(t *testing.T) {
	c := resizeTestCluster(t, 2, store.EngineLocked)
	if err := c.RemoveNode(7); err == nil {
		t.Fatal("removing an unknown id succeeded")
	}
	if err := c.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveNode(1); err == nil {
		t.Fatal("removing a retired id succeeded")
	}
	if err := c.RemoveNode(0); err == nil {
		t.Fatal("removing the last member succeeded")
	}
}

// TestClusterLinearizableAcrossMigration is the headline: per-key
// histories recorded while the cluster grows AND shrinks under load
// must linearize, for every shard engine, for lock-step and deep-async
// routed clients alike. The resizes are paced by a shared op counter so
// both migrations overlap live traffic. Run with -race; CI's migration
// leg does.
func TestClusterLinearizableAcrossMigration(t *testing.T) {
	const (
		nClients = 4
		nKeys    = 8
		depth    = 16
	)
	ops := 280
	if testing.Short() {
		ops = 120
	}
	for _, eng := range store.Engines {
		for _, kind := range []string{"lockstep", "async"} {
			eng, kind := eng, kind
			t.Run(string(eng)+"/"+kind, func(t *testing.T) {
				t.Parallel()
				c := New(Options{Nodes: 3, Vnodes: 32, Store: store.Options{
					Shards: 2, Buckets: 4, Engine: eng, Lock: locks.MCS,
					MaxThreads: nClients + 2, Nodes: 2,
				}})
				defer c.Close()
				hists := newClusterHistories(nKeys)
				var done atomic.Uint64
				tick := func() { done.Add(1) }
				total := uint64(nClients * ops)

				// The resizer: grow after a quarter of the ops, shrink an
				// original member after half — both while clients hammer.
				var resizeWG sync.WaitGroup
				resizeWG.Add(1)
				go func() {
					defer resizeWG.Done()
					waitUntil := func(n uint64) {
						for done.Load() < n {
							runtime.Gosched()
						}
					}
					waitUntil(total / 4)
					if _, err := c.AddNode(); err != nil {
						t.Errorf("AddNode under load: %v", err)
						return
					}
					waitUntil(total / 2)
					if err := c.RemoveNode(1); err != nil {
						t.Errorf("RemoveNode under load: %v", err)
					}
				}()

				var wg sync.WaitGroup
				for cli := 0; cli < nClients; cli++ {
					cli := cli
					wg.Add(1)
					go func() {
						defer wg.Done()
						switch kind {
						case "lockstep":
							cl := c.Dial(1)
							defer cl.Close()
							runRoutedLinearClient(t, cl, cli, nKeys, ops, hists, tick)
						case "async":
							cl := c.Dial(depth)
							defer cl.Close()
							runRoutedAsyncLinearClient(t, cl, cli, nKeys, ops, depth, hists, tick)
						}
					}()
				}
				wg.Wait()
				resizeWG.Wait()
				if t.Failed() {
					return
				}
				if got := fmt.Sprint(c.Members()); got != "[0 2 3]" {
					t.Fatalf("members %s after grow+shrink, want [0 2 3]", got)
				}
				clusterCheckHistories(t, string(eng)+"/"+kind+"/migrating", hists)
			})
		}
	}
}
