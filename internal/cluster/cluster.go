package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ssync/internal/store"
	"ssync/internal/topo"
)

// Options configures a Cluster.
type Options struct {
	// Nodes is the initial cluster size. Default 3.
	Nodes int
	// Vnodes is the ring's virtual-point count per node. Default
	// DefaultVnodes.
	Vnodes int
	// NumaNodes is forwarded to each node's wire server (connection
	// striping for hierarchical locks). Default 2.
	NumaNodes int
	// Store configures every node's store (engine, lock algorithm,
	// shards); each node gets an independent store built from it.
	Store store.Options
	// Place is the shard-placement policy applied inside every member's
	// store. With a multi-node Topo, members stripe across the machine's
	// memory nodes: node i's store places its shards only over memory
	// node i mod Topo.Nodes — so co-located cluster members partition
	// the machine instead of piling onto its first domain. Default none.
	Place topo.Policy
	// Topo is the machine to place over; nil with a pinning Place means
	// discover the host at startup.
	Topo *topo.Topology
}

func (o Options) withDefaults() Options {
	if o.Nodes < 1 {
		o.Nodes = 3
	}
	if o.Vnodes < 1 {
		o.Vnodes = DefaultVnodes
	}
	if o.NumaNodes < 1 {
		o.NumaNodes = 2
	}
	return o
}

// node is one cluster member: its store, the wire server over it, and
// the routing filter the server consults on every point op. Node ids
// are stable for the cluster's lifetime and never reused; a node that
// leaves the ring is marked retired but keeps serving, forwarding
// stragglers from clients that still route by the old ring.
type node struct {
	id      int
	store   *store.Store
	server  *store.Server
	filter  *nodeFilter
	retired atomic.Bool
}

// Cluster is N independent store nodes behind one consistent-hash ring —
// the test and CLI helper that turns "a store" into "a cluster" in one
// call. Each node is a full store.Server over its own store (any shard
// engine × any lock algorithm), served over in-process pipes exactly
// like the single-node experiments, so a cluster run measures routing
// and fan-out cost, not a different transport.
//
// Membership is elastic: AddNode and RemoveNode (migrate.go) resize the
// ring while clients keep operating. The ring pointer is the cluster's
// single source of routing truth — every node filter and every
// registered client reads it — and it only ever swings inside a
// migration's commit step, under every source filter's write lock.
type Cluster struct {
	opt   Options
	ring  atomic.Pointer[Ring]
	nodes atomic.Pointer[[]*node]

	mu      sync.Mutex // serializes membership changes; guards clients
	clients map[*Client]struct{}

	// place is the cluster-wide base placement (nil when Options.Place
	// is none); every member's store gets its ForNode slice of it.
	place *topo.Placement
}

// New builds and starts a cluster.
func New(opt Options) *Cluster {
	opt = opt.withDefaults()
	c := &Cluster{opt: opt, clients: map[*Client]struct{}{}}
	if opt.Place.Pins() {
		c.place = topo.NewPlacement(opt.Place, opt.Topo)
	}
	list := make([]*node, opt.Nodes)
	for i := range list {
		list[i] = c.newNode(i)
	}
	c.nodes.Store(&list)
	c.ring.Store(NewRing(opt.Nodes, opt.Vnodes))
	return c
}

// newNode builds one member: store, server, and routing filter. Under
// a cluster placement the member's store places over its memory-node
// stripe — new members from AddNode stripe by the same rule, so an
// elastic resize keeps partitioning the machine.
func (c *Cluster) newNode(id int) *node {
	sopt := c.opt.Store
	if c.place != nil {
		sopt.Placement = c.place.ForNode(id)
	}
	st := store.New(sopt)
	n := &node{id: id, store: st, server: store.NewServer(st, c.opt.NumaNodes)}
	n.filter = newNodeFilter(c, n)
	n.server.SetRouter(n.filter)
	return n
}

func (c *Cluster) nodeList() []*node { return *c.nodes.Load() }
func (c *Cluster) node(id int) *node { return c.nodeList()[id] }

// Nodes returns the current member count.
func (c *Cluster) Nodes() int { return c.ring.Load().Nodes() }

// Members returns the current member ids, sorted ascending. After a
// RemoveNode the ids need not be contiguous.
func (c *Cluster) Members() []int { return c.ring.Load().Members() }

// Ring returns the current routing ring. It is immutable; a resize
// installs a new one.
func (c *Cluster) Ring() *Ring { return c.ring.Load() }

// Store returns node i's store (counter snapshots, direct handles).
// Retired nodes keep their (purged) stores.
func (c *Cluster) Store(i int) *store.Store { return c.node(i).store }

// Server returns node i's wire server.
func (c *Cluster) Server(i int) *store.Server { return c.node(i).server }

// Dial opens a routing client: one multiplexed pipe connection per
// member, each with the given in-flight window (non-positive means
// store.DefaultWindow). window 1 is the lock-step routed client. The
// client is registered with the cluster: a resize retargets it onto the
// new ring (dialing any new member) once the migration commits.
func (c *Cluster) Dial(window int) *Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl := &Client{cluster: c, window: window}
	cl.topo.Store(c.topologyFor(c.ring.Load(), nil, window))
	c.clients[cl] = struct{}{}
	return cl
}

// topologyFor builds a client topology for ring, carrying over prev's
// connections and dialing members that have none yet. The conns slice
// is indexed by node id and only ever grows; connections to retired
// nodes are kept so in-flight ops routed by an older ring still land.
// Runs under c.mu.
func (c *Cluster) topologyFor(ring *Ring, prev *topology, window int) *topology {
	size := ring.MaxID() + 1
	if prev != nil && len(prev.conns) > size {
		size = len(prev.conns)
	}
	conns := make([]*store.AsyncClient, size)
	if prev != nil {
		copy(conns, prev.conns)
	}
	for _, id := range ring.Members() {
		if conns[id] == nil {
			conns[id] = c.node(id).server.PipeAsyncClient(window)
		}
	}
	return &topology{ring: ring, conns: conns}
}

// updateClients swings every registered client onto ring. Runs under
// c.mu, after the ring pointer itself has been stored.
func (c *Cluster) updateClients(ring *Ring) {
	for cl := range c.clients {
		cl.topo.Store(c.topologyFor(ring, cl.topo.Load(), cl.window))
	}
}

// forget drops a closing client from the resize-update registry.
func (c *Cluster) forget(cl *Client) {
	c.mu.Lock()
	delete(c.clients, cl)
	c.mu.Unlock()
}

// Close shuts down every node: forwarding-mesh connections first, then
// the stores. Call it after every client has been closed; it is
// idempotent.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodeList() {
		n.filter.closeConns()
	}
	for _, n := range c.nodeList() {
		n.store.Close()
	}
}

// String describes the cluster configuration.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster(%d nodes × %s, %d vnodes)", c.Nodes(), c.node(0).store, c.opt.Vnodes)
}
