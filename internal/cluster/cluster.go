package cluster

import (
	"fmt"

	"ssync/internal/store"
)

// Options configures a Cluster.
type Options struct {
	// Nodes is the cluster size. Default 3.
	Nodes int
	// Vnodes is the ring's virtual-point count per node. Default
	// DefaultVnodes.
	Vnodes int
	// NumaNodes is forwarded to each node's wire server (connection
	// striping for hierarchical locks). Default 2.
	NumaNodes int
	// Store configures every node's store (engine, lock algorithm,
	// shards); each node gets an independent store built from it.
	Store store.Options
}

func (o Options) withDefaults() Options {
	if o.Nodes < 1 {
		o.Nodes = 3
	}
	if o.Vnodes < 1 {
		o.Vnodes = DefaultVnodes
	}
	if o.NumaNodes < 1 {
		o.NumaNodes = 2
	}
	return o
}

// Cluster is N independent store nodes behind one consistent-hash ring —
// the test and CLI helper that turns "a store" into "a cluster" in one
// call. Each node is a full store.Server over its own store (any shard
// engine × any lock algorithm), served over in-process pipes exactly
// like the single-node experiments, so a cluster run measures routing
// and fan-out cost, not a different transport.
type Cluster struct {
	opt     Options
	ring    *Ring
	stores  []*store.Store
	servers []*store.Server
}

// New builds and starts a cluster.
func New(opt Options) *Cluster {
	opt = opt.withDefaults()
	c := &Cluster{opt: opt, ring: NewRing(opt.Nodes, opt.Vnodes)}
	for i := 0; i < opt.Nodes; i++ {
		st := store.New(opt.Store)
		c.stores = append(c.stores, st)
		c.servers = append(c.servers, store.NewServer(st, opt.NumaNodes))
	}
	return c
}

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return c.opt.Nodes }

// Ring returns the routing ring shared by every client of this cluster.
func (c *Cluster) Ring() *Ring { return c.ring }

// Store returns node i's store (counter snapshots, direct handles).
func (c *Cluster) Store(i int) *store.Store { return c.stores[i] }

// Server returns node i's wire server.
func (c *Cluster) Server(i int) *store.Server { return c.servers[i] }

// Dial opens a routing client: one multiplexed pipe connection per node,
// each with the given in-flight window (non-positive means
// store.DefaultWindow). window 1 is the lock-step routed client.
func (c *Cluster) Dial(window int) *Client {
	conns := make([]*store.AsyncClient, len(c.servers))
	for i, sv := range c.servers {
		conns[i] = sv.PipeAsyncClient(window)
	}
	cl, err := NewClient(c.ring, conns)
	if err != nil {
		panic(fmt.Sprintf("cluster: dial: %v", err)) // ring and servers are built together
	}
	return cl
}

// Close shuts down every node's store. Call it after every client has
// been closed; it is idempotent.
func (c *Cluster) Close() {
	for _, st := range c.stores {
		st.Close()
	}
}

// String describes the cluster configuration.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster(%d nodes × %s, %d vnodes)", c.opt.Nodes, c.stores[0], c.opt.Vnodes)
}
