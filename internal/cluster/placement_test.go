package cluster

import (
	"fmt"
	"testing"

	"ssync/internal/arch"
	"ssync/internal/store"
	"ssync/internal/topo"
)

// TestClusterStripesMemoryNodes: co-located members must partition the
// machine — on an 8-node Opteron model, members 0..3 place their shards
// over memory nodes 0..3 respectively, with no overlap in domains.
func TestClusterStripesMemoryNodes(t *testing.T) {
	machine := topo.FromPlatform(arch.Opteron())
	c := New(Options{Nodes: 4, Place: topo.PolicyCompact, Topo: machine,
		Store: store.Options{Shards: 8, Buckets: 4}})
	defer c.Close()
	used := map[int]int{} // domain → member using it
	for i := 0; i < 4; i++ {
		pl := c.Store(i).Placement()
		if pl == nil {
			t.Fatalf("member %d: no placement", i)
		}
		for sh := 0; sh < 8; sh++ {
			d := c.Store(i).ShardDomain(sh)
			if machine.Domains[d].Node != i {
				t.Fatalf("member %d shard %d in domain %d (memory node %d)",
					i, sh, d, machine.Domains[d].Node)
			}
			if owner, ok := used[d]; ok && owner != i {
				t.Fatalf("domain %d shared by members %d and %d", d, owner, i)
			}
			used[d] = i
		}
	}
}

// TestClusterPlacementElastic: a member added after startup stripes by
// the same rule, and the placed cluster still serves correctly through
// a routed client across the resize.
func TestClusterPlacementElastic(t *testing.T) {
	machine := topo.FromPlatform(arch.Opteron2()) // 2 memory nodes
	c := New(Options{Nodes: 2, Place: topo.PolicyCompact, Topo: machine,
		Store: store.Options{Shards: 4, Buckets: 8}})
	defer c.Close()
	cl := c.Dial(4)
	defer cl.Close()
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("pk-%03d", i)
		if _, err := cl.Put(key, []byte(key)); err != nil {
			t.Fatal(err)
		}
	}
	id, err := c.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	pl := c.Store(id).Placement()
	if pl == nil {
		t.Fatalf("added member %d: no placement", id)
	}
	// Node 2 on a 2-memory-node machine wraps onto memory node 0.
	if d := c.Store(id).ShardDomain(0); machine.Domains[d].Node != id%machine.Nodes {
		t.Fatalf("added member %d placed on memory node %d", id, machine.Domains[d].Node)
	}
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("pk-%03d", i)
		v, ok, err := cl.Get(key)
		if err != nil || !ok || string(v) != key {
			t.Fatalf("after resize: get %s = %q %v %v", key, v, ok, err)
		}
	}
}

// TestClusterNoPlacementByDefault: Place unset must leave member stores
// without a placement, whatever Topo says.
func TestClusterNoPlacementByDefault(t *testing.T) {
	c := New(Options{Nodes: 2, Topo: topo.FromPlatform(arch.Xeon2()),
		Store: store.Options{Shards: 4}})
	defer c.Close()
	if pl := c.Store(0).Placement(); pl != nil {
		t.Fatalf("unexpected placement %v", pl)
	}
}
