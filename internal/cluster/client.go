package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ssync/internal/store"
	"ssync/internal/workload"
)

// topology is one immutable routing view: a ring and the connections to
// its members, indexed by node id (nil where the id is not a member).
// A resize installs a new topology; every operation loads the pointer
// exactly once, so a single op never mixes two views.
type topology struct {
	ring  *Ring
	conns []*store.AsyncClient
}

// Client is the routing client of a cluster: one multiplexed
// store.AsyncClient per member, with every key routed to its ring
// owner. Point ops go to exactly one node; scans and the batch surfaces
// split per node, dispatch the per-node sub-batches concurrently
// through each connection's in-flight window, and reassemble the
// responses in the caller's order. Like every other connection kind in
// the repository, a Client is driven by one goroutine at a time (the
// per-node windows below it do the overlapping).
//
// A Client obtained from Cluster.Dial follows resizes: when a migration
// commits, the cluster swings the client onto the new ring. Ops in
// flight under the old view still land — the ex-owner's filter forwards
// them — so a resize costs stale ops one extra hop, never an error.
//
// Client implements store.BatchConn, so it drops into every call site a
// store connection fits — including workload scenarios via store.Driver,
// where its Issue implementation (store.Issuer) keeps routed op groups
// truly pipelined instead of blocking at issue time.
type Client struct {
	cluster *Cluster // nil for a hand-built NewClient
	window  int
	topo    atomic.Pointer[topology]
}

// NewClient wraps async connections over a fixed ring: conns is indexed
// by node id and must cover every member. Clients built this way do not
// follow resizes; Cluster.Dial is the elastic path.
func NewClient(ring *Ring, conns []*store.AsyncClient) (*Client, error) {
	if len(conns) < ring.MaxID()+1 {
		return nil, fmt.Errorf("cluster: %d connections for a ring with max node id %d", len(conns), ring.MaxID())
	}
	for _, id := range ring.Members() {
		if conns[id] == nil {
			return nil, fmt.Errorf("cluster: no connection for member %d", id)
		}
	}
	c := &Client{}
	c.topo.Store(&topology{ring: ring, conns: conns})
	return c, nil
}

// Ring returns the client's current routing ring.
func (c *Client) Ring() *Ring { return c.topo.Load().ring }

// Nodes returns the current member count.
func (c *Client) Nodes() int { return c.topo.Load().ring.Nodes() }

// Node returns the async connection to node i (nil for a non-member the
// client never dialed).
func (c *Client) Node(i int) *store.AsyncClient { return c.topo.Load().conns[i] }

// Owner returns the node that owns key in the client's current view.
func (c *Client) Owner(key string) int { return c.topo.Load().ring.Owner(key) }

// Close closes every node connection; every error is reported joined.
func (c *Client) Close() error {
	if c.cluster != nil {
		// Deregister first: after forget returns no resize will install
		// fresh connections on this client.
		c.cluster.forget(c)
	}
	var errs []error
	for _, conn := range c.topo.Load().conns {
		if conn == nil {
			continue
		}
		if err := conn.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// GetAsync submits a routed get to the key's owner.
func (c *Client) GetAsync(key string) *store.Future {
	t := c.topo.Load()
	return t.conns[t.ring.Owner(key)].GetAsync(key)
}

// PutAsync submits a routed put to the key's owner.
func (c *Client) PutAsync(key string, value []byte) *store.Future {
	t := c.topo.Load()
	return t.conns[t.ring.Owner(key)].PutAsync(key, value)
}

// DeleteAsync submits a routed delete to the key's owner.
func (c *Client) DeleteAsync(key string) *store.Future {
	t := c.topo.Load()
	return t.conns[t.ring.Owner(key)].DeleteAsync(key)
}

// Get fetches the value under key from its owner.
func (c *Client) Get(key string) ([]byte, bool, error) {
	t := c.topo.Load()
	return t.conns[t.ring.Owner(key)].Get(key)
}

// Put stores value under key on its owner; it reports whether the key
// was newly inserted.
func (c *Client) Put(key string, value []byte) (bool, error) {
	t := c.topo.Load()
	return t.conns[t.ring.Owner(key)].Put(key, value)
}

// Delete removes key from its owner; it reports whether the key was
// present.
func (c *Client) Delete(key string) (bool, error) {
	t := c.topo.Load()
	return t.conns[t.ring.Owner(key)].Delete(key)
}

// Scan fans the prefix scan out to every member concurrently, merges
// the per-node results (each already sorted) and trims to limit — the
// same union-of-snapshots contract a single store's cross-shard scan
// has, one level up. It is the one-request case of ExecBatch's scan
// path.
func (c *Client) Scan(prefix string, limit int) ([]store.Entry, error) {
	if limit < 0 {
		limit = 0
	}
	resps, err := c.ExecBatch([]store.Request{{Op: store.OpScan, Key: prefix, Limit: uint32(limit)}})
	if err != nil {
		return nil, err
	}
	return resps[0].Entries, nil
}

// routeScratch is one pooled owner-bucketing table. Routed batches run
// at pipeline depth on the hot path, so the per-call [][]int (and the
// regrown index slices inside it) are worth recycling. Ownership rule:
// the table (and every idxs slice handed out of it) is valid until
// release, which a caller may only invoke after its last use of any
// group — in practice a defer covering the whole routed call, since
// response scatter reads the groups last.
type routeScratch struct{ groups [][]int }

var routePool = sync.Pool{New: func() any { return new(routeScratch) }}

// getGroups returns a cleared owner-bucketing table with n node slots.
//
//ssync:pooled
func getGroups(n int) *routeScratch {
	s := routePool.Get().(*routeScratch)
	if cap(s.groups) < n {
		s.groups = make([][]int, n)
	}
	s.groups = s.groups[:n]
	for i := range s.groups {
		s.groups[i] = s.groups[i][:0]
	}
	return s
}

func (s *routeScratch) release() { routePool.Put(s) }

// routeGroups buckets request indices by owner node into groups
// (len(t.conns) slots); scans (which have no single owner) are returned
// separately.
func (t *topology) routeGroups(reqs []store.Request, resps []store.Response, groups [][]int) (scans []int) {
	for i, r := range reqs {
		switch r.Op {
		case store.OpGet, store.OpPut, store.OpDelete:
			n := t.ring.Owner(r.Key)
			groups[n] = append(groups[n], i)
		case store.OpScan:
			scans = append(scans, i)
		default:
			if resps != nil {
				resps[i] = store.Response{Status: store.StatusError, Msg: store.ErrBadOp.Error()}
			}
		}
	}
	return scans
}

// subRequests gathers the requests at idxs, in order.
func subRequests(reqs []store.Request, idxs []int) []store.Request {
	sub := make([]store.Request, len(idxs))
	for j, i := range idxs {
		sub[j] = reqs[i]
	}
	return sub
}

// splitByOwner buckets item indices 0..n-1 into groups by the ring
// owner of key(i) — the one routing loop MGet and MPut share.
func (t *topology) splitByOwner(groups [][]int, n int, key func(i int) string) {
	for i := 0; i < n; i++ {
		owner := t.ring.Owner(key(i))
		groups[owner] = append(groups[owner], i)
	}
}

// mergeScan merges per-node scan results into one sorted, limit-trimmed
// slice, deduplicating keys: during a resize's copy window a key can
// transiently exist on both the old and the new owner, and the copy on
// the node this topology's ring calls the owner wins.
func (t *topology) mergeScan(nodes []int, perNode [][]store.Entry, limit int) []store.Entry {
	var entries []store.Entry
	seen := map[string]int{} // key -> index in entries
	for j, part := range perNode {
		for _, e := range part {
			if at, dup := seen[e.Key]; dup {
				if t.ring.Owner(e.Key) == nodes[j] {
					entries[at] = e
				}
				continue
			}
			seen[e.Key] = len(entries)
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].Key < entries[b].Key })
	if limit > 0 && len(entries) > limit {
		entries = entries[:limit]
	}
	return entries
}

// ExecBatch splits the batch per owner node, ships each node's sub-batch
// as one frame, dispatches all of them before waiting on any (they
// overlap through the per-node windows), and scatters the sub-responses
// back so resps[i] answers reqs[i]. Scans inside a batch fan out to
// every member like Scan. Per-node sub-batches inherit the single-frame
// contract of Client.ExecBatch.
func (c *Client) ExecBatch(reqs []store.Request) ([]store.Response, error) {
	t := c.topo.Load()
	resps := make([]store.Response, len(reqs))
	rs := getGroups(len(t.conns))
	// parts.idxs alias the pooled groups; the deferred release runs only
	// after the response scatter below has read them all.
	defer rs.release()
	scans := t.routeGroups(reqs, resps, rs.groups)
	type part struct {
		idxs []int
		fut  *store.Future
	}
	var parts []part
	for n, idxs := range rs.groups {
		if len(idxs) == 0 {
			continue
		}
		parts = append(parts, part{idxs: idxs, fut: t.conns[n].BatchAsync(subRequests(reqs, idxs))})
	}
	members := t.ring.Members()
	type scanPart struct {
		idx  int
		futs []*store.Future
	}
	scanParts := make([]scanPart, 0, len(scans))
	for _, i := range scans {
		sp := scanPart{idx: i, futs: make([]*store.Future, len(members))}
		for j, n := range members {
			sp.futs[j] = t.conns[n].ScanAsync(reqs[i].Key, int(reqs[i].Limit))
		}
		scanParts = append(scanParts, sp)
	}
	var firstErr error
	for _, p := range parts {
		sub, err := p.fut.WaitBatch()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		for j, i := range p.idxs {
			resps[i] = sub[j]
		}
	}
	for _, sp := range scanParts {
		perNode := make([][]store.Entry, len(members))
		scanErr := error(nil)
		for j, f := range sp.futs {
			resp, err := f.Wait()
			if err != nil {
				scanErr = err
				break
			}
			perNode[j] = resp.Entries
		}
		if scanErr != nil {
			if firstErr == nil {
				firstErr = scanErr
			}
			continue
		}
		entries := t.mergeScan(members, perNode, int(reqs[sp.idx].Limit))
		resps[sp.idx] = store.Response{Status: store.StatusOK, Entries: entries}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return resps, nil
}

// MGet splits the keys per owner node and fetches the per-node groups
// concurrently (each node's blocking MGet pipelines its own chunks);
// values[i] is nil when keys[i] is absent.
func (c *Client) MGet(keys []string) ([][]byte, error) {
	t := c.topo.Load()
	vals := make([][]byte, len(keys))
	rs := getGroups(len(t.conns))
	defer rs.release() // the goroutines' idxs are dead after wg.Wait
	t.splitByOwner(rs.groups, len(keys), func(i int) string { return keys[i] })
	errs := make([]error, len(t.conns))
	var wg sync.WaitGroup
	for n, idxs := range rs.groups {
		if len(idxs) == 0 {
			continue
		}
		n, idxs := n, idxs
		sub := make([]string, len(idxs))
		for j, i := range idxs {
			sub[j] = keys[i]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			vs, err := t.conns[n].MGet(sub)
			if err != nil {
				errs[n] = err
				return
			}
			for j, i := range idxs {
				vals[i] = vs[j]
			}
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return vals, nil
}

// MPut splits the entries per owner node and stores the per-node groups
// concurrently; it reports how many keys were newly inserted.
func (c *Client) MPut(entries []store.Entry) (int, error) {
	t := c.topo.Load()
	rs := getGroups(len(t.conns))
	defer rs.release() // the goroutines' idxs are dead after wg.Wait
	t.splitByOwner(rs.groups, len(entries), func(i int) string { return entries[i].Key })
	created := make([]int, len(t.conns))
	errs := make([]error, len(t.conns))
	var wg sync.WaitGroup
	for n, idxs := range rs.groups {
		if len(idxs) == 0 {
			continue
		}
		n, idxs := n, idxs
		sub := make([]store.Entry, len(idxs))
		for j, i := range idxs {
			sub[j] = entries[i]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			created[n], errs[n] = t.conns[n].MPut(sub)
		}()
	}
	wg.Wait()
	total := 0
	for _, n := range created {
		total += n
	}
	return total, errors.Join(errs...)
}

var (
	_ store.BatchConn = (*Client)(nil)
	_ store.Issuer    = (*Client)(nil)
)

// Issue starts one op group without waiting for its results: the group
// is split per owner node, every per-node sub-batch (and per-scan
// fan-out) is submitted through the async windows immediately, and the
// returned Pending reassembles the outcome at Wait. A scenario driving
// a cluster conn with pipeline depth d therefore keeps up to d routed
// groups in flight — the same overlap the single-node async client
// gives, across nodes.
func (c *Client) Issue(ops []workload.Op) workload.Pending {
	t := c.topo.Load()
	if len(ops) == 1 && ops[0].Kind != workload.KindScan {
		return &routedScalarPending{op: ops[0], fut: submitRouted(t, ops[0])}
	}
	reqs := store.ToRequests(ops)
	rs := getGroups(len(t.conns))
	// Safe to release at return: subRequests copies each group's requests
	// out, and routedPending retains no index slice.
	defer rs.release()
	scans := t.routeGroups(reqs, nil, rs.groups)
	p := &routedPending{t: t}
	for n, idxs := range rs.groups {
		if len(idxs) == 0 {
			continue
		}
		sub := subRequests(reqs, idxs)
		p.parts = append(p.parts, routedPart{node: n, reqs: sub, fut: t.conns[n].BatchAsync(sub)})
	}
	members := t.ring.Members()
	for _, i := range scans {
		sp := routedScan{limit: int(reqs[i].Limit), futs: make([]*store.Future, len(members))}
		for j, n := range members {
			sp.futs[j] = t.conns[n].ScanAsync(reqs[i].Key, sp.limit)
		}
		p.scans = append(p.scans, sp)
	}
	return p
}

// submitRouted routes one point op to its owner's async surface within
// a single topology view.
func submitRouted(t *topology, op workload.Op) *store.Future {
	conn := t.conns[t.ring.Owner(op.Key)]
	switch op.Kind {
	case workload.KindGet:
		return conn.GetAsync(op.Key)
	case workload.KindPut:
		return conn.PutAsync(op.Key, op.Value)
	default:
		return conn.DeleteAsync(op.Key)
	}
}

// routedScalarPending resolves a pipelined routed point op.
type routedScalarPending struct {
	op  workload.Op
	fut *store.Future
}

func (p *routedScalarPending) Wait() (workload.Outcome, error) {
	resp, err := p.fut.Wait()
	if err != nil {
		return workload.Outcome{}, err
	}
	out := workload.Outcome{Ops: 1}
	switch p.op.Kind {
	case workload.KindGet:
		if resp.Status == store.StatusOK {
			out.Hits++
		} else {
			out.Misses++
		}
	case workload.KindPut:
		if resp.Created {
			out.Created++
		}
	}
	return out, nil
}

// routedPart is one node's share of an issued op group.
type routedPart struct {
	node int
	reqs []store.Request
	fut  *store.Future
}

// routedScan is one scan op's all-member fan-out.
type routedScan struct {
	limit int
	futs  []*store.Future
}

// routedPending reassembles an issued group: per-node batch outcomes
// plus merged scan counts. It pins the topology the group was issued
// under, so outcomes resolve against the connections the ops actually
// went to even if a resize lands mid-flight.
type routedPending struct {
	t     *topology
	parts []routedPart
	scans []routedScan
}

func (p *routedPending) Wait() (workload.Outcome, error) {
	var total workload.Outcome
	var firstErr error
	for _, part := range p.parts {
		resps, err := part.fut.WaitBatch()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		out, err := store.BatchOutcome(p.t.conns[part.node], part.reqs, resps)
		total.Add(out)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, sp := range p.scans {
		count := 0
		scanErr := error(nil)
		for _, f := range sp.futs {
			resp, err := f.Wait()
			if err != nil {
				scanErr = err
				break
			}
			count += len(resp.Entries)
		}
		if scanErr != nil {
			if firstErr == nil {
				firstErr = scanErr
			}
			continue
		}
		// The merged-and-trimmed entry count, without materializing the
		// merge: min(sum, limit) is what Scan would return (a resize's
		// copy window can transiently double-count a moving key here —
		// a stats path, not a correctness one).
		if sp.limit > 0 && count > sp.limit {
			count = sp.limit
		}
		total.Ops++
		total.Scanned += uint64(count)
	}
	return total, firstErr
}
