package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ssync/internal/store"
	"ssync/internal/workload"
)

// Client is the routing client of a cluster: one multiplexed
// store.AsyncClient per node, with every key routed to its ring owner.
// Point ops go to exactly one node; scans and the batch surfaces split
// per node, dispatch the per-node sub-batches concurrently through each
// connection's in-flight window, and reassemble the responses in the
// caller's order. Like every other connection kind in the repository, a
// Client is driven by one goroutine at a time (the per-node windows
// below it do the overlapping).
//
// Client implements store.BatchConn, so it drops into every call site a
// store connection fits — including workload scenarios via store.Driver,
// where its Issue implementation (store.Issuer) keeps routed op groups
// truly pipelined instead of blocking at issue time.
type Client struct {
	ring  *Ring
	conns []*store.AsyncClient
}

// NewClient wraps one async connection per ring node. It errors when
// the connection count does not match the ring.
func NewClient(ring *Ring, conns []*store.AsyncClient) (*Client, error) {
	if len(conns) != ring.Nodes() {
		return nil, fmt.Errorf("cluster: %d connections for a %d-node ring", len(conns), ring.Nodes())
	}
	return &Client{ring: ring, conns: conns}, nil
}

// Ring returns the routing ring.
func (c *Client) Ring() *Ring { return c.ring }

// Nodes returns the node count.
func (c *Client) Nodes() int { return len(c.conns) }

// Node returns the async connection to node i.
func (c *Client) Node(i int) *store.AsyncClient { return c.conns[i] }

// Owner returns the node that owns key.
func (c *Client) Owner(key string) int { return c.ring.Owner(key) }

// Close closes every node connection; every error is reported joined.
func (c *Client) Close() error {
	var errs []error
	for _, conn := range c.conns {
		if err := conn.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// GetAsync submits a routed get to the key's owner.
func (c *Client) GetAsync(key string) *store.Future {
	return c.conns[c.ring.Owner(key)].GetAsync(key)
}

// PutAsync submits a routed put to the key's owner.
func (c *Client) PutAsync(key string, value []byte) *store.Future {
	return c.conns[c.ring.Owner(key)].PutAsync(key, value)
}

// DeleteAsync submits a routed delete to the key's owner.
func (c *Client) DeleteAsync(key string) *store.Future {
	return c.conns[c.ring.Owner(key)].DeleteAsync(key)
}

// Get fetches the value under key from its owner.
func (c *Client) Get(key string) ([]byte, bool, error) {
	return c.conns[c.ring.Owner(key)].Get(key)
}

// Put stores value under key on its owner; it reports whether the key
// was newly inserted.
func (c *Client) Put(key string, value []byte) (bool, error) {
	return c.conns[c.ring.Owner(key)].Put(key, value)
}

// Delete removes key from its owner; it reports whether the key was
// present.
func (c *Client) Delete(key string) (bool, error) {
	return c.conns[c.ring.Owner(key)].Delete(key)
}

// Scan fans the prefix scan out to every node concurrently, merges the
// per-node results (each already sorted) and trims to limit — the same
// union-of-snapshots contract a single store's cross-shard scan has,
// one level up. It is the one-request case of ExecBatch's scan path.
func (c *Client) Scan(prefix string, limit int) ([]store.Entry, error) {
	if limit < 0 {
		limit = 0
	}
	resps, err := c.ExecBatch([]store.Request{{Op: store.OpScan, Key: prefix, Limit: uint32(limit)}})
	if err != nil {
		return nil, err
	}
	return resps[0].Entries, nil
}

// routeGroups buckets request indices by owner node; scans (which have
// no single owner) are returned separately.
func (c *Client) routeGroups(reqs []store.Request, resps []store.Response) (groups [][]int, scans []int) {
	groups = make([][]int, len(c.conns))
	for i, r := range reqs {
		switch r.Op {
		case store.OpGet, store.OpPut, store.OpDelete:
			n := c.ring.Owner(r.Key)
			groups[n] = append(groups[n], i)
		case store.OpScan:
			scans = append(scans, i)
		default:
			if resps != nil {
				resps[i] = store.Response{Status: store.StatusError, Msg: store.ErrBadOp.Error()}
			}
		}
	}
	return groups, scans
}

// subRequests gathers the requests at idxs, in order.
func subRequests(reqs []store.Request, idxs []int) []store.Request {
	sub := make([]store.Request, len(idxs))
	for j, i := range idxs {
		sub[j] = reqs[i]
	}
	return sub
}

// splitByOwner buckets item indices 0..n-1 by the ring owner of
// key(i) — the one routing loop MGet and MPut share.
func (c *Client) splitByOwner(n int, key func(i int) string) [][]int {
	groups := make([][]int, len(c.conns))
	for i := 0; i < n; i++ {
		owner := c.ring.Owner(key(i))
		groups[owner] = append(groups[owner], i)
	}
	return groups
}

// ExecBatch splits the batch per owner node, ships each node's sub-batch
// as one frame, dispatches all of them before waiting on any (they
// overlap through the per-node windows), and scatters the sub-responses
// back so resps[i] answers reqs[i]. Scans inside a batch fan out to
// every node like Scan. Per-node sub-batches inherit the single-frame
// contract of Client.ExecBatch.
func (c *Client) ExecBatch(reqs []store.Request) ([]store.Response, error) {
	resps := make([]store.Response, len(reqs))
	groups, scans := c.routeGroups(reqs, resps)
	type part struct {
		idxs []int
		fut  *store.Future
	}
	var parts []part
	for n, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		parts = append(parts, part{idxs: idxs, fut: c.conns[n].BatchAsync(subRequests(reqs, idxs))})
	}
	type scanPart struct {
		idx  int
		futs []*store.Future
	}
	scanParts := make([]scanPart, 0, len(scans))
	for _, i := range scans {
		sp := scanPart{idx: i, futs: make([]*store.Future, len(c.conns))}
		for n, conn := range c.conns {
			sp.futs[n] = conn.ScanAsync(reqs[i].Key, int(reqs[i].Limit))
		}
		scanParts = append(scanParts, sp)
	}
	var firstErr error
	for _, p := range parts {
		sub, err := p.fut.WaitBatch()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		for j, i := range p.idxs {
			resps[i] = sub[j]
		}
	}
	for _, sp := range scanParts {
		var entries []store.Entry
		scanErr := error(nil)
		for _, f := range sp.futs {
			resp, err := f.Wait()
			if err != nil {
				scanErr = err
				break
			}
			entries = append(entries, resp.Entries...)
		}
		if scanErr != nil {
			if firstErr == nil {
				firstErr = scanErr
			}
			continue
		}
		sort.Slice(entries, func(a, b int) bool { return entries[a].Key < entries[b].Key })
		if limit := int(reqs[sp.idx].Limit); limit > 0 && len(entries) > limit {
			entries = entries[:limit]
		}
		resps[sp.idx] = store.Response{Status: store.StatusOK, Entries: entries}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return resps, nil
}

// MGet splits the keys per owner node and fetches the per-node groups
// concurrently (each node's blocking MGet pipelines its own chunks);
// values[i] is nil when keys[i] is absent.
func (c *Client) MGet(keys []string) ([][]byte, error) {
	vals := make([][]byte, len(keys))
	groups := c.splitByOwner(len(keys), func(i int) string { return keys[i] })
	errs := make([]error, len(c.conns))
	var wg sync.WaitGroup
	for n, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		n, idxs := n, idxs
		sub := make([]string, len(idxs))
		for j, i := range idxs {
			sub[j] = keys[i]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			vs, err := c.conns[n].MGet(sub)
			if err != nil {
				errs[n] = err
				return
			}
			for j, i := range idxs {
				vals[i] = vs[j]
			}
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return vals, nil
}

// MPut splits the entries per owner node and stores the per-node groups
// concurrently; it reports how many keys were newly inserted.
func (c *Client) MPut(entries []store.Entry) (int, error) {
	groups := c.splitByOwner(len(entries), func(i int) string { return entries[i].Key })
	created := make([]int, len(c.conns))
	errs := make([]error, len(c.conns))
	var wg sync.WaitGroup
	for n, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		n, idxs := n, idxs
		sub := make([]store.Entry, len(idxs))
		for j, i := range idxs {
			sub[j] = entries[i]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			created[n], errs[n] = c.conns[n].MPut(sub)
		}()
	}
	wg.Wait()
	total := 0
	for _, n := range created {
		total += n
	}
	return total, errors.Join(errs...)
}

var (
	_ store.BatchConn = (*Client)(nil)
	_ store.Issuer    = (*Client)(nil)
)

// Issue starts one op group without waiting for its results: the group
// is split per owner node, every per-node sub-batch (and per-scan
// fan-out) is submitted through the async windows immediately, and the
// returned Pending reassembles the outcome at Wait. A scenario driving
// a cluster conn with pipeline depth d therefore keeps up to d routed
// groups in flight — the same overlap the single-node async client
// gives, across nodes.
func (c *Client) Issue(ops []workload.Op) workload.Pending {
	if len(ops) == 1 && ops[0].Kind != workload.KindScan {
		return &routedScalarPending{op: ops[0], fut: c.submitScalar(ops[0])}
	}
	reqs := store.ToRequests(ops)
	groups, scans := c.routeGroups(reqs, nil)
	p := &routedPending{c: c}
	for n, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		sub := subRequests(reqs, idxs)
		p.parts = append(p.parts, routedPart{node: n, reqs: sub, fut: c.conns[n].BatchAsync(sub)})
	}
	for _, i := range scans {
		sp := routedScan{limit: int(reqs[i].Limit), futs: make([]*store.Future, len(c.conns))}
		for n, conn := range c.conns {
			sp.futs[n] = conn.ScanAsync(reqs[i].Key, sp.limit)
		}
		p.scans = append(p.scans, sp)
	}
	return p
}

// submitScalar routes one point op to its owner's async surface.
func (c *Client) submitScalar(op workload.Op) *store.Future {
	switch op.Kind {
	case workload.KindGet:
		return c.GetAsync(op.Key)
	case workload.KindPut:
		return c.PutAsync(op.Key, op.Value)
	default:
		return c.DeleteAsync(op.Key)
	}
}

// routedScalarPending resolves a pipelined routed point op.
type routedScalarPending struct {
	op  workload.Op
	fut *store.Future
}

func (p *routedScalarPending) Wait() (workload.Outcome, error) {
	resp, err := p.fut.Wait()
	if err != nil {
		return workload.Outcome{}, err
	}
	out := workload.Outcome{Ops: 1}
	switch p.op.Kind {
	case workload.KindGet:
		if resp.Status == store.StatusOK {
			out.Hits++
		} else {
			out.Misses++
		}
	case workload.KindPut:
		if resp.Created {
			out.Created++
		}
	}
	return out, nil
}

// routedPart is one node's share of an issued op group.
type routedPart struct {
	node int
	reqs []store.Request
	fut  *store.Future
}

// routedScan is one scan op's all-node fan-out.
type routedScan struct {
	limit int
	futs  []*store.Future
}

// routedPending reassembles an issued group: per-node batch outcomes
// plus merged scan counts.
type routedPending struct {
	c     *Client
	parts []routedPart
	scans []routedScan
}

func (p *routedPending) Wait() (workload.Outcome, error) {
	var total workload.Outcome
	var firstErr error
	for _, part := range p.parts {
		resps, err := part.fut.WaitBatch()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		out, err := store.BatchOutcome(p.c.conns[part.node], part.reqs, resps)
		total.Add(out)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, sp := range p.scans {
		count := 0
		scanErr := error(nil)
		for _, f := range sp.futs {
			resp, err := f.Wait()
			if err != nil {
				scanErr = err
				break
			}
			count += len(resp.Entries)
		}
		if scanErr != nil {
			if firstErr == nil {
				firstErr = scanErr
			}
			continue
		}
		// The merged-and-trimmed entry count, without materializing the
		// merge: min(sum, limit) is exactly what Scan would return.
		if sp.limit > 0 && count > sp.limit {
			count = sp.limit
		}
		total.Ops++
		total.Scanned += uint64(count)
	}
	return total, firstErr
}
