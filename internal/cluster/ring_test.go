package cluster

import (
	"fmt"
	"testing"

	"ssync/internal/store"
	"ssync/internal/workload"
)

// TestRingDeterministic: two rings built with the same parameters route
// every key identically — a key's owner is a pure function of the ring
// shape, so clients, tests and the CLI never disagree about ownership.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(5, 64)
	b := NewRing(5, 64)
	for i := uint64(0); i < 10000; i++ {
		key := workload.Key(i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner %d vs %d on identically-built rings", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingStability is the consistent-hashing property the routing
// layer exists for: growing the ring from n to n+1 nodes may move a key
// only to the new node — every key that does not land on the new node's
// points keeps its owner. A key's owner changes only when the ring does.
func TestRingStability(t *testing.T) {
	const keys = 20000
	for n := 1; n <= 6; n++ {
		old := NewRing(n, 64)
		grown := NewRing(n+1, 64)
		moved := 0
		for i := uint64(0); i < keys; i++ {
			key := workload.Key(i)
			was, now := old.Owner(key), grown.Owner(key)
			if was == now {
				continue
			}
			if now != n {
				t.Fatalf("%d→%d nodes: key %q moved %d→%d, not to the new node %d",
					n, n+1, key, was, now, n)
			}
			moved++
		}
		// Roughly 1/(n+1) of the keys should move — far from all of them
		// (the modulo-routing failure mode) and far from none.
		expected := keys / (n + 1)
		if moved < expected/2 || moved > 2*expected {
			t.Fatalf("%d→%d nodes: %d of %d keys moved, expected ~%d", n, n+1, moved, keys, expected)
		}
	}
}

// TestRingBalance: virtual nodes keep the per-node key share near fair.
func TestRingBalance(t *testing.T) {
	const nodes, keys = 4, 40000
	r := NewRing(nodes, 0) // DefaultVnodes
	counts := make([]int, nodes)
	for i := uint64(0); i < keys; i++ {
		n := r.Owner(workload.Key(i))
		if n < 0 || n >= nodes {
			t.Fatalf("owner %d out of range", n)
		}
		counts[n]++
	}
	fair := keys / nodes
	for n, c := range counts {
		if c < fair/2 || c > 2*fair {
			t.Fatalf("node %d owns %d of %d keys (fair %d): ring badly unbalanced %v",
				n, c, keys, fair, counts)
		}
	}
}

// TestRingDegenerate: non-positive parameters collapse to a working
// single-node ring instead of an empty points slice.
func TestRingDegenerate(t *testing.T) {
	r := NewRing(0, -1)
	if r.Nodes() != 1 || r.Vnodes() != DefaultVnodes {
		t.Fatalf("got %d nodes × %d vnodes", r.Nodes(), r.Vnodes())
	}
	if n := r.Owner("anything"); n != 0 {
		t.Fatalf("single-node ring routed to %d", n)
	}
}

// TestRingResizeStability: because a member's points depend only on its
// id, add-then-remove restores the exact prior ownership for every key;
// and a resized ring's balance stays within what the vnode count
// promises, measured with a chi-square statistic over the member
// shares.
func TestRingResizeStability(t *testing.T) {
	const keys = 40000
	base := NewRing(4, 0) // DefaultVnodes
	grown := base.Add(4)
	restored := grown.Without(4)
	if got, want := fmt.Sprint(restored.Members()), fmt.Sprint(base.Members()); got != want {
		t.Fatalf("add-then-remove members %s, want %s", got, want)
	}
	for i := uint64(0); i < keys; i++ {
		key := workload.Key(i)
		if restored.Owner(key) != base.Owner(key) {
			t.Fatalf("key %q: owner %d after add+remove, was %d — resize is not an involution",
				key, restored.Owner(key), base.Owner(key))
		}
	}
	// Balance after resizes, including one that leaves an id hole. The
	// per-member share of a v-vnode ring is a sum of v roughly
	// exponential arc lengths, so its relative deviation is ~1/sqrt(v)
	// and the chi-square statistic over m members concentrates around
	// keys/v — arc-length variance, not multinomial sampling, dominates.
	// The 4× bound flags a resize that concentrates load (a broken diff
	// or a member with missing points) while passing every healthy ring.
	for name, r := range map[string]*Ring{
		"grown":  grown,
		"hole":   grown.Without(2),
		"double": base.Add(4).Add(5).Without(1),
	} {
		members := r.Members()
		idx := map[int]int{}
		for i, m := range members {
			idx[m] = i
		}
		counts := make([]int, len(members))
		for i := uint64(0); i < keys; i++ {
			counts[idx[r.Owner(workload.Key(i))]]++
		}
		expected := float64(keys) / float64(len(members))
		chi2 := 0.0
		for _, c := range counts {
			diff := float64(c) - expected
			chi2 += diff * diff / expected
		}
		if bound := 4.0 * keys / float64(r.Vnodes()); chi2 > bound {
			t.Fatalf("%s ring (members %v): chi-square %.1f exceeds %.1f — resize unbalanced the ring (counts %v)",
				name, members, chi2, bound, counts)
		}
	}
}

// TestDiffArcs: the boundary-walk diff agrees exactly with per-key
// brute force — a key's position falls in some move's arcs iff its
// owner changes, and then in exactly the (old owner → new owner) move.
func TestDiffArcs(t *testing.T) {
	const keys = 20000
	cases := []struct {
		name      string
		old, next *Ring
	}{
		{"grow", NewRing(3, 64), NewRing(3, 64).Add(3)},
		{"shrink", NewRing(4, 64), NewRing(4, 64).Without(1)},
		{"regrow-hole", NewRing(4, 64).Without(2), NewRing(4, 64).Without(2).Add(5)},
		{"same", NewRing(3, 64), NewRing(3, 64)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			moves := diffArcs(tc.old, tc.next)
			if tc.name == "same" {
				if len(moves) != 0 {
					t.Fatalf("identical rings produced %d moves", len(moves))
				}
				return
			}
			for i := uint64(0); i < keys; i++ {
				key := workload.Key(i)
				was, now := tc.old.Owner(key), tc.next.Owner(key)
				pos := store.KeyPos(key)
				hits := 0
				for _, m := range moves {
					if !store.ArcsContain(m.arcs, pos) {
						continue
					}
					hits++
					if was == now {
						t.Fatalf("key %q did not move but lies in move %d→%d", key, m.from, m.to)
					}
					if m.from != was || m.to != now {
						t.Fatalf("key %q moved %d→%d but lies in move %d→%d", key, was, now, m.from, m.to)
					}
				}
				if was != now && hits != 1 {
					t.Fatalf("key %q moved %d→%d but is covered by %d moves, want exactly 1", key, was, now, hits)
				}
				if was == now && hits != 0 {
					t.Fatalf("key %q is stable but covered by %d moves", key, hits)
				}
			}
		})
	}
}
