package cluster

import (
	"testing"

	"ssync/internal/workload"
)

// TestRingDeterministic: two rings built with the same parameters route
// every key identically — a key's owner is a pure function of the ring
// shape, so clients, tests and the CLI never disagree about ownership.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(5, 64)
	b := NewRing(5, 64)
	for i := uint64(0); i < 10000; i++ {
		key := workload.Key(i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner %d vs %d on identically-built rings", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingStability is the consistent-hashing property the routing
// layer exists for: growing the ring from n to n+1 nodes may move a key
// only to the new node — every key that does not land on the new node's
// points keeps its owner. A key's owner changes only when the ring does.
func TestRingStability(t *testing.T) {
	const keys = 20000
	for n := 1; n <= 6; n++ {
		old := NewRing(n, 64)
		grown := NewRing(n+1, 64)
		moved := 0
		for i := uint64(0); i < keys; i++ {
			key := workload.Key(i)
			was, now := old.Owner(key), grown.Owner(key)
			if was == now {
				continue
			}
			if now != n {
				t.Fatalf("%d→%d nodes: key %q moved %d→%d, not to the new node %d",
					n, n+1, key, was, now, n)
			}
			moved++
		}
		// Roughly 1/(n+1) of the keys should move — far from all of them
		// (the modulo-routing failure mode) and far from none.
		expected := keys / (n + 1)
		if moved < expected/2 || moved > 2*expected {
			t.Fatalf("%d→%d nodes: %d of %d keys moved, expected ~%d", n, n+1, moved, keys, expected)
		}
	}
}

// TestRingBalance: virtual nodes keep the per-node key share near fair.
func TestRingBalance(t *testing.T) {
	const nodes, keys = 4, 40000
	r := NewRing(nodes, 0) // DefaultVnodes
	counts := make([]int, nodes)
	for i := uint64(0); i < keys; i++ {
		n := r.Owner(workload.Key(i))
		if n < 0 || n >= nodes {
			t.Fatalf("owner %d out of range", n)
		}
		counts[n]++
	}
	fair := keys / nodes
	for n, c := range counts {
		if c < fair/2 || c > 2*fair {
			t.Fatalf("node %d owns %d of %d keys (fair %d): ring badly unbalanced %v",
				n, c, keys, fair, counts)
		}
	}
}

// TestRingDegenerate: non-positive parameters collapse to a working
// single-node ring instead of an empty points slice.
func TestRingDegenerate(t *testing.T) {
	r := NewRing(0, -1)
	if r.Nodes() != 1 || r.Vnodes() != DefaultVnodes {
		t.Fatalf("got %d nodes × %d vnodes", r.Nodes(), r.Vnodes())
	}
	if n := r.Owner("anything"); n != 0 {
		t.Fatalf("single-node ring routed to %d", n)
	}
}
