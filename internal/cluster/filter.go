package cluster

import (
	"sync"

	"ssync/internal/store"
)

// forwardWindow is the in-flight window of each node-to-node
// forwarding connection.
const forwardWindow = 16

// nodeFilter is one node's store.Router: the per-op decision point that
// keeps the single-owner discipline across a resize. Every point op the
// node's server receives passes through here; the filter checks the
// shared ring and either executes locally (recording writes that land
// in a migrating arc) or forwards the op to the node that owns the key
// now. Forwarding is what lets clients keep operating on a stale ring:
// an op routed to an ex-owner takes one extra hop instead of failing.
type nodeFilter struct {
	c *Cluster
	n *node

	// mu is the migration filter lock. Every locally executing op holds
	// it shared; a migration's commit step holds it exclusively. Taking
	// the write lock therefore drains every in-flight local execution,
	// and because the ring is loaded under this lock, no op can execute
	// here under the old ring after the commit flips it — the property
	// the linearizability-across-migration test leans on.
	mu  sync.RWMutex
	mig *migTracker // non-nil while this node is a migration source

	connMu sync.Mutex
	conns  map[int]*store.AsyncClient // forwarding mesh, dialed lazily
}

func newNodeFilter(c *Cluster, n *node) *nodeFilter {
	return &nodeFilter{c: c, n: n, conns: map[int]*store.AsyncClient{}}
}

// migTracker records keys written in a migrating range while the bulk
// copy streams underneath — the dirty set whose re-ship at commit turns
// the copy's point-in-time snapshot into an exact one. Writes outside
// the moving arcs are not tracked; they are not moving.
type migTracker struct {
	arcs  []store.Arc
	mu    sync.Mutex // recorders run concurrently under the filter's RLock
	dirty map[string]struct{}
}

func (t *migTracker) record(op byte, key string) {
	if op != store.OpPut && op != store.OpDelete {
		return
	}
	if !store.ArcsContain(t.arcs, store.KeyPos(key)) {
		return
	}
	t.mu.Lock()
	t.dirty[key] = struct{}{}
	t.mu.Unlock()
}

// Route implements store.Router for one point op.
func (f *nodeFilter) Route(h *store.Handle, req store.Request, hops int) store.Response {
	f.mu.RLock()
	// The ring must be loaded under the lock: the commit step flips it
	// while holding mu exclusively, so an op that sees the old ring has
	// executed (and been dirty-tracked) before the flip, and an op that
	// sees the new one executes after the delta shipped.
	owner := f.c.ring.Load().Owner(req.Key)
	if owner == f.n.id {
		resp := h.Exec(req)
		if f.mig != nil {
			f.mig.record(req.Op, req.Key)
		}
		f.mu.RUnlock()
		return resp
	}
	f.mu.RUnlock()
	// Never forward while holding mu: a commit locking several source
	// filters would deadlock against ops forwarding between them. The
	// owner was decided under the lock; if the ring flips before the
	// forward lands, the receiving filter re-checks and takes one more
	// hop — bounded by the cap below, since there is at most one
	// migration in flight.
	if hops >= store.MaxForwardHops {
		return store.Response{Status: store.StatusError, Msg: store.ErrHopLimit.Error()}
	}
	return f.forward(owner, req, hops+1)
}

// RouteBatch implements store.Router for a batch's sub-ops: the local
// subset executes as one engine visit under the filter lock, the rest
// forward individually (submitted together, awaited together) after it
// is released.
func (f *nodeFilter) RouteBatch(h *store.Handle, reqs []store.Request) []store.Response {
	resps := make([]store.Response, len(reqs))
	owners := make([]int, len(reqs))
	var local, remote []int
	f.mu.RLock()
	ring := f.c.ring.Load()
	for i, r := range reqs {
		switch r.Op {
		case store.OpGet, store.OpPut, store.OpDelete:
			owners[i] = ring.Owner(r.Key)
			if owners[i] == f.n.id {
				local = append(local, i)
			} else {
				remote = append(remote, i)
			}
		case store.OpScan:
			local = append(local, i) // scans always read the local store
		default:
			resps[i] = store.Response{Status: store.StatusError, Msg: store.ErrBadOp.Error()}
		}
	}
	if len(local) > 0 {
		sub := reqs
		if len(local) != len(reqs) {
			sub = subRequests(reqs, local)
		}
		for j, resp := range h.ExecBatch(sub) {
			resps[local[j]] = resp
		}
		if f.mig != nil {
			for _, i := range local {
				f.mig.record(reqs[i].Op, reqs[i].Key)
			}
		}
	}
	f.mu.RUnlock()
	if len(remote) > 0 {
		futs := make([]*store.Future, len(remote))
		for j, i := range remote {
			futs[j] = f.meshConn(owners[i]).ForwardAsync(reqs[i], 1)
		}
		for j, i := range remote {
			resp, err := futs[j].Wait()
			if err != nil {
				resp = store.Response{Status: store.StatusError, Msg: err.Error()}
			}
			resps[i] = resp
		}
	}
	return resps
}

// forward ships req to node to and blocks for the response.
func (f *nodeFilter) forward(to int, req store.Request, hops int) store.Response {
	resp, err := f.meshConn(to).ForwardAsync(req, hops).Wait()
	if err != nil {
		return store.Response{Status: store.StatusError, Msg: err.Error()}
	}
	return resp
}

// meshConn returns (dialing on first use) the forwarding connection to
// node to. The mesh is lazy because most pairs never forward: only a
// resize window and post-resize stale clients create traffic here.
func (f *nodeFilter) meshConn(to int) *store.AsyncClient {
	f.connMu.Lock()
	defer f.connMu.Unlock()
	if conn := f.conns[to]; conn != nil {
		return conn
	}
	conn := f.c.node(to).server.PipeAsyncClient(forwardWindow)
	f.conns[to] = conn
	return conn
}

// closeConns closes the forwarding mesh (cluster shutdown).
func (f *nodeFilter) closeConns() {
	f.connMu.Lock()
	defer f.connMu.Unlock()
	for to, conn := range f.conns {
		_ = conn.Close()
		delete(f.conns, to)
	}
}

var _ store.Router = (*nodeFilter)(nil)
