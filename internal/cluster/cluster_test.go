package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"ssync/internal/locks"
	"ssync/internal/store"
	"ssync/internal/workload"
)

func newTestCluster(t *testing.T, nodes int, opt store.Options) *Cluster {
	t.Helper()
	c := New(Options{Nodes: nodes, Store: opt})
	t.Cleanup(c.Close)
	return c
}

// TestRoutedClientNoBufferAliasing extends store's buffer-aliasing
// audit to the routing client: its batch path hands out index groups
// from a sync.Pool and fans sub-batches through per-node async
// connections whose frame buffers are themselves pooled. Values decoded
// from routed responses (scalar, batch and scan) must stay intact while
// later routed calls churn every one of those pools.
func TestRoutedClientNoBufferAliasing(t *testing.T) {
	c := newTestCluster(t, 3, store.Options{Shards: 4, Lock: locks.TICKET})
	cl := c.Dial(0)
	defer cl.Close()

	big := make([]byte, 96<<10)
	for i := range big {
		big[i] = byte(i * 11)
	}
	bigKeys := make([]string, 6) // spread over the ring: several nodes hold one
	for i := range bigKeys {
		bigKeys[i] = fmt.Sprintf("alias-big-%02d", i)
		if _, err := cl.Put(bigKeys[i], big); err != nil {
			t.Fatal(err)
		}
	}

	var retained [][]byte
	for round := 0; round < 6; round++ {
		// Routed batch: pooled route groups + per-node batch frames.
		reqs := make([]store.Request, 0, len(bigKeys)+1)
		for _, k := range bigKeys {
			reqs = append(reqs, store.Request{Op: store.OpGet, Key: k})
		}
		small := fmt.Sprintf("alias-small-%02d", round)
		reqs = append(reqs, store.Request{Op: store.OpPut, Key: small, Value: bytes.Repeat([]byte{byte(round + 1)}, 256)})
		resps, err := cl.ExecBatch(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range bigKeys {
			if resps[i].Status != store.StatusOK {
				t.Fatalf("round %d: routed get %d status %d", round, i, resps[i].Status)
			}
			retained = append(retained, resps[i].Value)
		}
		// Routed scalar get and MGet churn the pools between rounds.
		if v, found, err := cl.Get(small); err != nil || !found || v[0] != byte(round+1) {
			t.Fatalf("round %d: routed Get(%s) = %v, %v", round, small, found, err)
		}
		if _, err := cl.MGet(bigKeys); err != nil {
			t.Fatal(err)
		}
		// A scan response's entries share backing blobs (the bulk-copy
		// parse); mutating nothing, they must match the stored values.
		entries, err := cl.Scan("alias-big-", 0)
		if err != nil || len(entries) != len(bigKeys) {
			t.Fatalf("round %d: scan = %d entries, %v", round, len(entries), err)
		}
		for _, e := range entries {
			if !bytes.Equal(e.Value, big) {
				t.Fatalf("round %d: scan entry %q corrupted", round, e.Key)
			}
		}
	}
	for i, v := range retained {
		if !bytes.Equal(v, big) {
			t.Fatalf("retained routed value %d corrupted by pooled-buffer reuse", i)
		}
	}
}

// TestClusterPointOps: routed puts land on exactly the ring owner's
// store, and gets/deletes find them through any client.
func TestClusterPointOps(t *testing.T) {
	c := newTestCluster(t, 3, store.Options{Shards: 4, Lock: locks.TICKET})
	cl := c.Dial(0)
	defer cl.Close()

	const keys = 200
	for i := uint64(0); i < keys; i++ {
		key := workload.Key(i)
		created, err := cl.Put(key, []byte(key))
		if err != nil || !created {
			t.Fatalf("put %q: created=%v err=%v", key, created, err)
		}
	}
	// Every key readable through the routing client, and present on the
	// owner node ONLY — single-owner partitioning, checked directly
	// against the per-node stores.
	for i := uint64(0); i < keys; i++ {
		key := workload.Key(i)
		v, found, err := cl.Get(key)
		if err != nil || !found || !bytes.Equal(v, []byte(key)) {
			t.Fatalf("get %q = %q, found=%v, err=%v", key, v, found, err)
		}
		owner := c.Ring().Owner(key)
		for n := 0; n < c.Nodes(); n++ {
			h := c.Store(n).NewHandle(0)
			_, ok := h.Get(key)
			if ok != (n == owner) {
				t.Fatalf("key %q: present=%v on node %d, owner is %d", key, ok, n, owner)
			}
		}
	}
	// Deletes route too.
	for i := uint64(0); i < keys; i += 2 {
		existed, err := cl.Delete(workload.Key(i))
		if err != nil || !existed {
			t.Fatalf("delete %d: existed=%v err=%v", i, existed, err)
		}
	}
	for i := uint64(0); i < keys; i++ {
		_, found, err := cl.Get(workload.Key(i))
		if err != nil {
			t.Fatal(err)
		}
		if want := i%2 == 1; found != want {
			t.Fatalf("key %d: found=%v after deletes, want %v", i, found, want)
		}
	}
}

// TestClusterBatchOrder: ExecBatch reassembles responses in request
// order, and same-key sub-ops apply in batch order (same owner → same
// sub-batch → server-side batch order), so a put-then-get pair inside
// one routed batch observes itself.
func TestClusterBatchOrder(t *testing.T) {
	c := newTestCluster(t, 3, store.Options{Shards: 4})
	cl := c.Dial(0)
	defer cl.Close()

	var reqs []store.Request
	const n = 60
	for i := 0; i < n; i++ {
		key := workload.Key(uint64(i))
		reqs = append(reqs,
			store.Request{Op: store.OpPut, Key: key, Value: []byte(fmt.Sprintf("v%d", i))},
			store.Request{Op: store.OpGet, Key: key})
	}
	resps, err := cl.ExecBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != len(reqs) {
		t.Fatalf("%d responses for %d requests", len(resps), len(reqs))
	}
	for i := 0; i < n; i++ {
		put, get := resps[2*i], resps[2*i+1]
		if put.Status != store.StatusOK || !put.Created {
			t.Fatalf("put %d: %+v", i, put)
		}
		if get.Status != store.StatusOK || !bytes.Equal(get.Value, []byte(fmt.Sprintf("v%d", i))) {
			t.Fatalf("get %d after put in same batch: %+v", i, get)
		}
	}
}

// TestClusterScanMerge: a routed scan equals the same scan against one
// store holding all the data — globally sorted, limit respected.
func TestClusterScanMerge(t *testing.T) {
	c := newTestCluster(t, 4, store.Options{Shards: 4})
	cl := c.Dial(0)
	defer cl.Close()

	single := store.New(store.Options{Shards: 4})
	defer single.Close()
	ref := single.NewHandle(0)

	for i := uint64(0); i < 300; i++ {
		key := workload.Key(i)
		if _, err := cl.Put(key, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		ref.Put(key, []byte{byte(i)})
	}
	for _, limit := range []int{0, 7, 50} {
		got, err := cl.Scan("key-000001", limit) // keys 100..199
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Scan("key-000001", limit)
		if len(got) != len(want) {
			t.Fatalf("limit %d: %d entries, single-store scan has %d", limit, len(got), len(want))
		}
		for i := range got {
			if got[i].Key != want[i].Key {
				t.Fatalf("limit %d: entry %d is %q, want %q (merge order broken)",
					limit, i, got[i].Key, want[i].Key)
			}
		}
	}
}

// TestClusterMGetMPut: the multi-ops split per node and reassemble in
// caller order.
func TestClusterMGetMPut(t *testing.T) {
	c := newTestCluster(t, 3, store.Options{Shards: 2})
	cl := c.Dial(0)
	defer cl.Close()

	var entries []store.Entry
	for i := uint64(0); i < 150; i++ {
		entries = append(entries, store.Entry{Key: workload.Key(i), Value: []byte(workload.Key(i))})
	}
	created, err := cl.MPut(entries)
	if err != nil || created != len(entries) {
		t.Fatalf("mput created %d of %d, err=%v", created, len(entries), err)
	}
	keys := make([]string, 0, 160)
	for i := uint64(0); i < 160; i++ { // the last 10 are absent
		keys = append(keys, workload.Key(i))
	}
	vals, err := cl.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if i < 150 {
			if !bytes.Equal(vals[i], []byte(k)) {
				t.Fatalf("mget[%d] = %q, want %q", i, vals[i], k)
			}
		} else if vals[i] != nil {
			t.Fatalf("mget[%d] = %q for absent key", i, vals[i])
		}
	}
}

// TestClusterWorkloadDriver: the scenario engine drives a routed cluster
// conn through store.Driver — batched, pipelined, every engine — and the
// counted ops survive the split/reassembly.
func TestClusterWorkloadDriver(t *testing.T) {
	for _, eng := range store.Engines {
		eng := eng
		t.Run(string(eng), func(t *testing.T) {
			t.Parallel()
			c := newTestCluster(t, 3, store.Options{Shards: 4, Engine: eng, Lock: locks.TICKET})
			scenario := workload.Scenario{
				Keys:      512,
				Mix:       workload.Mix{Get: 80, Put: 15, Scan: 5},
				Preload:   256,
				Phases:    []workload.Phase{{Name: "steady", Clients: 4, Ops: 600}},
				Batch:     8,
				Pipeline:  4,
				ScanLimit: 8,
			}
			results, err := workload.Run(scenario, func(i int) (workload.Conn, error) {
				return store.Driver{C: c.Dial(4)}, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			steady := results[len(results)-1]
			if want := uint64(4 * 600); steady.Ops != want {
				t.Fatalf("counted %d ops, want %d", steady.Ops, want)
			}
			if steady.Hits == 0 || steady.Created == 0 {
				t.Fatalf("no hits (%d) or creates (%d) in a preloaded mixed run", steady.Hits, steady.Created)
			}
		})
	}
}

// TestClusterOwnerAgreesWithClient: the client's routing is exactly the
// ring's (no second hashing path to drift).
func TestClusterOwnerAgreesWithClient(t *testing.T) {
	c := newTestCluster(t, 5, store.Options{})
	cl := c.Dial(1)
	defer cl.Close()
	for i := uint64(0); i < 2000; i++ {
		key := workload.Key(i)
		if cl.Owner(key) != c.Ring().Owner(key) {
			t.Fatalf("client and ring disagree on %q", key)
		}
	}
}
