package bits

import (
	"testing"
	"testing/quick"
)

func TestBasic(t *testing.T) {
	var s Set
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("new set must be empty")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(127)
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	for _, i := range []int{0, 63, 64, 127} {
		if !s.Has(i) {
			t.Errorf("Has(%d) = false", i)
		}
	}
	if s.Has(1) || s.Has(65) {
		t.Error("unexpected members")
	}
	s.Remove(63)
	if s.Has(63) || s.Len() != 3 {
		t.Error("Remove(63) failed")
	}
	if got := s.Any(); got != 0 {
		t.Errorf("Any = %d, want 0", got)
	}
	s.Clear()
	if !s.Empty() {
		t.Error("Clear failed")
	}
}

func TestForEachOrder(t *testing.T) {
	var s Set
	want := []int{3, 17, 64, 90, 127}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v (ascending)", got, want)
		}
	}
}

func TestOnly(t *testing.T) {
	var s Set
	s.Add(42)
	if !s.Only(42) {
		t.Error("Only(42) = false for singleton {42}")
	}
	if s.Only(41) {
		t.Error("Only(41) = true for singleton {42}")
	}
	s.Add(7)
	if s.Only(42) {
		t.Error("Only(42) = true for two-element set")
	}
}

func TestAnyEmpty(t *testing.T) {
	var s Set
	if s.Any() != -1 {
		t.Errorf("Any on empty = %d, want -1", s.Any())
	}
}

// Property: Add/Remove sequences agree with a reference map implementation.
func TestQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16) bool {
		var s Set
		ref := map[int]bool{}
		for _, op := range ops {
			i := int(op) % Cap
			if op&0x8000 != 0 {
				s.Remove(i)
				delete(ref, i)
			} else {
				s.Add(i)
				ref[i] = true
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		for i := 0; i < Cap; i++ {
			if s.Has(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
