// Package bits implements a small dense bitset used to track cache-line
// sharer sets in the machine simulator.
//
// Sharer sets are bounded by the core count of the simulated platform
// (at most 80 for the Xeon model), so a fixed two-word representation is
// enough and keeps line metadata allocation-free.
package bits

import mathbits "math/bits"

// Set is a bitset holding up to Cap members (0..Cap-1).
type Set struct {
	w [2]uint64
}

// Cap is the maximum number of members a Set can hold.
const Cap = 128

// Add inserts i into the set.
func (s *Set) Add(i int) { s.w[i>>6] |= 1 << uint(i&63) }

// Remove deletes i from the set.
func (s *Set) Remove(i int) { s.w[i>>6] &^= 1 << uint(i&63) }

// Has reports whether i is a member.
func (s *Set) Has(i int) bool { return s.w[i>>6]&(1<<uint(i&63)) != 0 }

// Clear empties the set.
func (s *Set) Clear() { s.w[0], s.w[1] = 0, 0 }

// Len returns the number of members.
func (s *Set) Len() int {
	return mathbits.OnesCount64(s.w[0]) + mathbits.OnesCount64(s.w[1])
}

// Empty reports whether the set has no members.
func (s *Set) Empty() bool { return s.w[0] == 0 && s.w[1] == 0 }

// ForEach calls f for every member in ascending order.
func (s *Set) ForEach(f func(i int)) {
	for wi, w := range s.w {
		for w != 0 {
			b := mathbits.TrailingZeros64(w)
			f(wi*64 + b)
			w &^= 1 << uint(b)
		}
	}
}

// Any returns an arbitrary member (the smallest), or -1 if empty.
func (s *Set) Any() int {
	if s.w[0] != 0 {
		return mathbits.TrailingZeros64(s.w[0])
	}
	if s.w[1] != 0 {
		return 64 + mathbits.TrailingZeros64(s.w[1])
	}
	return -1
}

// Only reports whether i is the sole member of the set.
func (s *Set) Only(i int) bool {
	return s.Len() == 1 && s.Has(i)
}
