package store

import "fmt"

// Engine names a shard-engine paradigm — the paper's synchronization
// taxonomy lifted to the store's execution layer. All three engines
// serve the exact same store API and wire protocol; only how a shard's
// mutual exclusion is enforced differs:
//
//   - EngineLocked guards each shard's bucket table with a lock (any of
//     the nine libslock algorithms) — the locking paradigm.
//   - EngineActor gives each shard to one goroutine that owns the table
//     outright and executes batched request/reply messages from a
//     channel mailbox — the message-passing paradigm, internal/mp's
//     client-server discipline with Go channels as the transport.
//   - EngineOptimistic publishes immutable copy-on-write buckets so
//     point reads complete without acquiring the shard lock (one atomic
//     load), with a seqlock-style shard version giving scans consistent
//     snapshots; writers still lock — the optimistic paradigm.
type Engine string

// The shard-engine paradigms.
const (
	EngineLocked     Engine = "locked"
	EngineActor      Engine = "actor"
	EngineOptimistic Engine = "optimistic"
)

// Engines lists every paradigm, in comparison-table order.
var Engines = []Engine{EngineLocked, EngineActor, EngineOptimistic}

// ParseEngine resolves an engine name.
func ParseEngine(name string) (Engine, error) {
	for _, e := range Engines {
		if string(e) == name {
			return e, nil
		}
	}
	return "", fmt.Errorf("unknown shard engine %q (have %v)", name, Engines)
}

// shardEngine is the concurrency-control core of a Store: it owns the
// shard data and decides how concurrent access is serialized. The store
// layer above it (Handle, ExecBatch, Scan, the wire server) is engine
// agnostic — adding a backend (replication, caching, NUMA-aware
// placement) means writing a new engine, not forking the store.
type shardEngine interface {
	// access returns a per-goroutine accessor; node is the NUMA hint for
	// hierarchical locks (unused by the actor engine).
	access(node int) shardAccess
	// close releases engine resources (goroutines); idempotent, and only
	// legal once every accessor has quiesced.
	close()
}

// shardAccess is the per-goroutine execution surface of an engine: point
// ops, per-shard group execution (the batch path's unit of
// amortization), shard scans, and race-free counter snapshots. A
// shardAccess must not be shared between goroutines.
//
// Point ops take a lookupKey — the zero-copy seam. The key may alias a
// transient buffer (a wire frame); an engine must not retain its bytes
// past the call, and the single copy an insert needs is taken with
// lookupKey.str (copy-on-insert). get appends the value to the
// caller-owned dst and returns the extended slice, so a steady-state
// read allocates nothing anywhere in the engine.
type shardAccess interface {
	get(shard int, hash uint64, key lookupKey, dst []byte) ([]byte, bool)
	put(shard int, hash uint64, key lookupKey, value []byte) bool
	del(shard int, hash uint64, key lookupKey) bool
	// execGroup executes the point ops reqs[i] for i in idxs — all
	// mapping to shard — in one engine visit, writing resps[i].
	execGroup(shard int, reqs []Request, hashes []uint64, idxs []int, resps []Response)
	// scanShard appends copies of the shard's entries matching prefix.
	scanShard(shard int, prefix string, out []Entry) []Entry
	// exportShard walks the shard's buckets from index from, appending
	// copies of the entries whose hash satisfies pred, and stops early at
	// a bucket boundary once maxEntries entries or maxBytes encoded bytes
	// have been appended. It returns the next bucket index to resume from
	// (the shard's bucket count when exhausted). Whole-bucket granularity
	// is what makes a resumed walk sound under concurrent writes: a
	// bucket is either fully shipped or not started, so a mutation can
	// only affect buckets the cursor has not passed — and mutations
	// behind the cursor are the migration tracker's job.
	exportShard(shard, from int, pred func(hash uint64) bool, maxEntries, maxBytes int, out []Entry) (int, []Entry)
	// entries returns the shard's live entry count.
	entries(shard int) int
	// stats snapshots the shard's operation counters.
	stats(shard int) Counters
}
