package store

import (
	"testing"
	"unsafe"

	"ssync/internal/pad"
)

// These tests pin the cache-line layout of the per-shard hot structs.
// They are compile-time facts checked at test time: if a field is added
// or reordered and an invariant breaks, the failure names the struct
// instead of showing up as an unexplained throughput slump under
// cross-domain placement.

// TestOptShardLayout: the optimistic engine's shard puts each hot
// write-side word on its own line and starts the counter stripes
// line-aligned. The precise offsets matter — before this layout,
// stripes started at offset 96, so every stripe element straddled two
// lines and stripe 0 shared one with the live counter.
func TestOptShardLayout(t *testing.T) {
	if s := unsafe.Sizeof(optCounters{}); s != pad.CacheLineSize {
		t.Errorf("optCounters is %d bytes, want %d", s, pad.CacheLineSize)
	}
	var sh optShard
	if o := unsafe.Offsetof(sh.version); o != 0 {
		t.Errorf("version at offset %d, want 0", o)
	}
	if o := unsafe.Offsetof(sh.live); o != pad.CacheLineSize {
		t.Errorf("live at offset %d, want %d", o, pad.CacheLineSize)
	}
	if o := unsafe.Offsetof(sh.buckets); o != 2*pad.CacheLineSize {
		t.Errorf("buckets at offset %d, want %d", o, 2*pad.CacheLineSize)
	}
	if o := unsafe.Offsetof(sh.stripes); o%pad.CacheLineSize != 0 {
		t.Errorf("stripes at offset %d, not line-aligned", o)
	}
	if s := unsafe.Sizeof(sh); s%pad.CacheLineSize != 0 {
		t.Errorf("optShard is %d bytes, not a line multiple", s)
	}
}

// TestOptShardSliceStride: in the engine's shards slice, the hot words
// of adjacent shards land on distinct lines (size is a line multiple,
// so a line-aligned base keeps every offset invariant per element).
func TestOptShardSliceStride(t *testing.T) {
	shards := make([]optShard, 4)
	for i := 1; i < len(shards); i++ {
		a := uintptr(unsafe.Pointer(&shards[i-1].version))
		b := uintptr(unsafe.Pointer(&shards[i].version))
		if b-a < pad.CacheLineSize {
			t.Fatalf("shard %d and %d version words %d bytes apart", i-1, i, b-a)
		}
	}
}

// TestShardTableIsOneLine: the mutable table header (buckets slice,
// op counters, entry count) is exactly one cache line, so the locked
// engine's contiguous shards slice gives each shard's header — written
// on every operation under that shard's own lock — a line no other
// shard's lock holder touches. (The actor engine allocates each table
// separately; only the locked engine relies on the stride.)
func TestShardTableIsOneLine(t *testing.T) {
	if s := unsafe.Sizeof(shardTable{}); s != pad.CacheLineSize {
		t.Errorf("shardTable is %d bytes, want exactly %d — adjacent shards would share lines",
			s, pad.CacheLineSize)
	}
}
