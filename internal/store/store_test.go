package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"ssync/internal/locks"
	"ssync/internal/xrand"
)

// forEachEngine runs fn as a subtest per shard-engine paradigm, so the
// basic semantic suite holds for locked, actor and optimistic stores
// alike.
func forEachEngine(t *testing.T, fn func(t *testing.T, opt Options)) {
	for _, eng := range Engines {
		eng := eng
		t.Run(string(eng), func(t *testing.T) {
			fn(t, Options{Engine: eng})
		})
	}
}

func TestBasicOps(t *testing.T) {
	forEachEngine(t, testBasicOps)
}

func testBasicOps(t *testing.T, opt Options) {
	opt.Shards, opt.Buckets = 4, 8
	s := New(opt)
	defer s.Close()
	h := s.NewHandle(0)

	if _, ok := h.Get("missing"); ok {
		t.Fatal("Get on empty store found a value")
	}
	if !h.Put("a", []byte("1")) {
		t.Fatal("first Put must report created")
	}
	if h.Put("a", []byte("2")) {
		t.Fatal("second Put of the same key must report replaced")
	}
	v, ok := h.Get("a")
	if !ok || string(v) != "2" {
		t.Fatalf("Get(a) = %q, %v; want 2, true", v, ok)
	}
	if !h.Delete("a") {
		t.Fatal("Delete of a present key must report true")
	}
	if h.Delete("a") {
		t.Fatal("Delete of an absent key must report false")
	}
	if n := h.Len(); n != 0 {
		t.Fatalf("Len = %d after delete, want 0", n)
	}
}

func TestValueCopied(t *testing.T) {
	forEachEngine(t, testValueCopied)
}

func testValueCopied(t *testing.T, opt Options) {
	s := New(opt)
	defer s.Close()
	h := s.NewHandle(0)
	val := []byte("hello")
	h.Put("k", val)
	val[0] = 'X' // mutating the caller's slice must not reach the store
	got, _ := h.Get("k")
	if string(got) != "hello" {
		t.Fatalf("stored value aliased caller memory: %q", got)
	}
	got[0] = 'Y' // mutating the returned slice must not reach the store
	again, _ := h.Get("k")
	if string(again) != "hello" {
		t.Fatalf("returned value aliased store memory: %q", again)
	}
}

func TestBucketOverflowChains(t *testing.T) {
	forEachEngine(t, testBucketOverflowChains)
}

func testBucketOverflowChains(t *testing.T, opt Options) {
	// One shard, one bucket: every key collides, forcing segment chains
	// (or, for the optimistic engine, one large copy-on-write bucket).
	opt.Shards, opt.Buckets = 1, 1
	s := New(opt)
	defer s.Close()
	h := s.NewHandle(0)
	const n = 100
	for i := 0; i < n; i++ {
		h.Put(fmt.Sprintf("k%03d", i), []byte{byte(i)})
	}
	if got := h.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		v, ok := h.Get(fmt.Sprintf("k%03d", i))
		if !ok || v[0] != byte(i) {
			t.Fatalf("key k%03d: got %v, %v", i, v, ok)
		}
	}
	// Delete odd keys, reinsert into freed slots, verify again.
	for i := 1; i < n; i += 2 {
		if !h.Delete(fmt.Sprintf("k%03d", i)) {
			t.Fatalf("delete k%03d failed", i)
		}
	}
	for i := 1; i < n; i += 2 {
		h.Put(fmt.Sprintf("r%03d", i), []byte{byte(i)})
	}
	if got := h.Len(); got != n {
		t.Fatalf("Len after churn = %d, want %d", got, n)
	}
}

func TestScan(t *testing.T) {
	forEachEngine(t, testScan)
}

func testScan(t *testing.T, opt Options) {
	opt.Shards, opt.Buckets = 8, 4
	s := New(opt)
	defer s.Close()
	h := s.NewHandle(0)
	for i := 0; i < 30; i++ {
		h.Put(fmt.Sprintf("user-%04d", i), []byte{byte(i)})
	}
	h.Put("other-key", []byte("x"))

	all := h.Scan("user-", 0)
	if len(all) != 30 {
		t.Fatalf("Scan(user-) returned %d entries, want 30", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Key >= all[i].Key {
			t.Fatalf("scan not sorted: %q before %q", all[i-1].Key, all[i].Key)
		}
	}
	if all[0].Key != "user-0000" || all[0].Value[0] != 0 {
		t.Fatalf("first entry = %q/%v", all[0].Key, all[0].Value)
	}

	limited := h.Scan("user-", 7)
	if len(limited) != 7 {
		t.Fatalf("Scan limit 7 returned %d", len(limited))
	}
	if limited[0].Key != "user-0000" || limited[6].Key != "user-0006" {
		t.Fatalf("limited scan picked the wrong window: %q..%q", limited[0].Key, limited[6].Key)
	}

	if got := h.Scan("absent-", 0); len(got) != 0 {
		t.Fatalf("Scan of an absent prefix returned %d entries", len(got))
	}
	if got := h.Scan("", 0); len(got) != 31 {
		t.Fatalf("empty-prefix scan returned %d entries, want 31", len(got))
	}
}

func TestShardStats(t *testing.T) {
	forEachEngine(t, testShardStats)
}

func testShardStats(t *testing.T, opt Options) {
	opt.Shards = 4
	s := New(opt)
	defer s.Close()
	h := s.NewHandle(0)
	const puts, gets = 40, 25
	for i := 0; i < puts; i++ {
		h.Put(fmt.Sprintf("k%d", i), nil)
	}
	for i := 0; i < gets; i++ {
		h.Get(fmt.Sprintf("k%d", i))
	}
	h.Scan("k", 0)
	stats := h.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("ShardStats returned %d shards, want 4", len(stats))
	}
	var sum Counters
	for _, c := range stats {
		sum.Gets += c.Gets
		sum.Puts += c.Puts
		sum.Deletes += c.Deletes
		sum.Scans += c.Scans
	}
	if sum.Puts != puts || sum.Gets != gets || sum.Scans != 4 {
		t.Fatalf("counters = %+v, want %d puts, %d gets, 4 scans", sum, puts, gets)
	}
	if d := sum.Sub(Counters{Gets: 5}); d.Gets != gets-5 {
		t.Fatalf("Sub: got %d gets, want %d", d.Gets, gets-5)
	}
}

// TestEveryAlgorithm smoke-tests concurrent mixed traffic under each
// shard-lock algorithm, verifying the final population against a
// sequential replay.
func TestEveryAlgorithm(t *testing.T) {
	const nG, ops, keys = 4, 400, 64
	for _, alg := range locks.All {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			s := New(Options{Shards: 4, Buckets: 8, Lock: alg, MaxThreads: nG + 2, Nodes: 2})
			var wg sync.WaitGroup
			for g := 0; g < nG; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					h := s.NewHandle(g % 2)
					rng := xrand.New(uint64(g)*7 + 1)
					for i := 0; i < ops; i++ {
						k := fmt.Sprintf("key-%d", rng.Uint64()%keys)
						switch rng.Uint64() % 3 {
						case 0:
							h.Put(k, []byte(k))
						case 1:
							if v, ok := h.Get(k); ok && !bytes.Equal(v, []byte(k)) {
								t.Errorf("%s: Get(%s) = %q", alg, k, v)
							}
						default:
							h.Delete(k)
						}
					}
				}()
			}
			wg.Wait()
			if n := s.NewHandle(0).Len(); n < 0 || n > keys {
				t.Fatalf("%s: Len = %d outside [0, %d]", alg, n, keys)
			}
		})
	}
}

func TestOptionsDefaults(t *testing.T) {
	s := New(Options{})
	if s.Shards() != 16 {
		t.Fatalf("default Shards = %d, want 16", s.Shards())
	}
	if s.Lock() != locks.TICKET {
		t.Fatalf("default Lock = %s, want TICKET", s.Lock())
	}
	if s.Engine() != EngineLocked {
		t.Fatalf("default Engine = %s, want %s", s.Engine(), EngineLocked)
	}
	if got := s.String(); got != "store(16 shards × 64 buckets, TICKET locks, locked engine)" {
		t.Fatalf("String = %q", got)
	}
	actor := New(Options{Engine: EngineActor})
	defer actor.Close()
	if got := actor.String(); got != "store(16 shards × 64 buckets, actor engine)" {
		t.Fatalf("actor String = %q", got)
	}
	if _, err := ParseEngine("bogus"); err == nil {
		t.Fatal("ParseEngine(bogus) must fail")
	}
	if e, err := ParseEngine("optimistic"); err != nil || e != EngineOptimistic {
		t.Fatalf("ParseEngine(optimistic) = %v, %v", e, err)
	}
}
