package store

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// Client drives a Server over a byte stream (net.Conn, net.Pipe). It
// keeps one request in flight and is not safe for concurrent use — give
// each goroutine its own connection, exactly like real client traffic.
// For a multiplexed connection that keeps a window of requests in
// flight, see AsyncClient (async.go).
type Client struct {
	conn io.ReadWriteCloser
	br   *bufio.Reader
	bw   *bufio.Writer
	// Encode and frame-read scratch are deliberately distinct buffers:
	// sharing one backing array would let a response body alias the next
	// request's encode buffer (and vice versa), which is only safe while
	// every parse path copies out of the frame — an invariant too easy to
	// break at a distance. TestClientNoBufferAliasing pins this down.
	//
	// Both come from clientScratch and go back at Close. Returning them
	// is safe because every decode copies out of rbuf before the call
	// returns (the same invariant), so no caller-visible value aliases a
	// pooled buffer.
	ebuf []byte // request encode scratch
	rbuf []byte // response frame-read scratch
	// Pool handles for ebuf/rbuf; nil once Close returned them, which
	// makes a double Close (or a misbehaving post-Close call) unable to
	// hand the same backing array out twice.
	ebufp, rbufp *[]byte
}

// clientScratch pools lock-step clients' encode and read buffers, so a
// dial-per-worker benchmark or a chain of short-lived connections does
// not pay two fresh frame buffers per client.
var clientScratch = sync.Pool{New: func() any { return new([]byte) }}

// NewClient wraps an established connection.
//
//ssync:ignore poolaudit the Client owns ebuf/rbuf until Close, the single release point; every decode copies out first
func NewClient(conn io.ReadWriteCloser) *Client {
	ep := clientScratch.Get().(*[]byte)
	rp := clientScratch.Get().(*[]byte)
	return &Client{
		conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn),
		ebuf: *ep, rbuf: *rp, ebufp: ep, rbufp: rp,
	}
}

// Close closes the underlying connection and releases the scratch
// buffers; only the first Close releases them.
func (c *Client) Close() error {
	if c.ebufp != nil {
		*c.ebufp = c.ebuf[:0]
		clientScratch.Put(c.ebufp)
		*c.rbufp = c.rbuf[:0]
		clientScratch.Put(c.rbufp)
		c.ebufp, c.rbufp = nil, nil
		c.ebuf, c.rbuf = nil, nil
	}
	return c.conn.Close()
}

// roundTrip sends req and decodes the response.
func (c *Client) roundTrip(req Request) (Response, error) {
	body, err := AppendRequest(c.ebuf[:0], req)
	if err != nil {
		return Response{}, err
	}
	c.ebuf = body[:0]
	rbody, err := c.exchange(body)
	if err != nil {
		return Response{}, err
	}
	resp, err := ParseResponse(req.Op, rbody)
	if err != nil {
		return Response{}, err
	}
	if resp.Status == StatusError {
		return Response{}, fmt.Errorf("store: server error: %s", resp.Msg)
	}
	return resp, nil
}

// exchange writes one request frame and reads one response frame.
func (c *Client) exchange(body []byte) ([]byte, error) {
	if err := WriteFrame(c.bw, body); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	rbody, err := ReadFrame(c.br, c.rbuf)
	if err != nil {
		return nil, err
	}
	c.rbuf = rbody[:0]
	return rbody, nil
}

// batchRoundTrip sends one batch frame and decodes its sub-responses.
func (c *Client) batchRoundTrip(b Batch) ([]Response, error) {
	body, err := AppendBatchRequest(c.ebuf[:0], b)
	if err != nil {
		return nil, err
	}
	c.ebuf = body[:0]
	rbody, err := c.exchange(body)
	if err != nil {
		return nil, err
	}
	return ParseBatchResponse(b.SubOps(), rbody)
}

// ExecBatch sends one batch frame and decodes its sub-responses: N ops,
// one round trip, and server-side one shard-lock acquisition per touched
// shard. Sub-ops that fail individually come back as StatusError
// responses rather than an error. The single frame is the contract: an
// encoded batch larger than MaxFrame fails with ErrFrameTooLarge (the
// MGet/MPut wrappers chunk instead).
func (c *Client) ExecBatch(reqs []Request) ([]Response, error) {
	return c.batchRoundTrip(Batch{Op: OpBatch, Reqs: reqs})
}

// MGet fetches many keys, chunked under the frame and count bounds like
// MPut; values[i] is nil when keys[i] is absent.
func (c *Client) MGet(keys []string) ([][]byte, error) {
	vals := make([][]byte, 0, len(keys))
	for _, chunk := range mgetChunks(keys) {
		resps, err := c.batchRoundTrip(MGetBatch(chunk))
		if err != nil {
			return nil, err
		}
		vs, err := mgetValues(resps, chunk, c.Get)
		if err != nil {
			return nil, err
		}
		vals = append(vals, vs...)
	}
	return vals, nil
}

// MPut stores many entries, chunked so every request frame stays under
// MaxFrame; it reports how many were newly inserted.
func (c *Client) MPut(entries []Entry) (created int, err error) {
	for _, chunk := range mputChunks(entries) {
		resps, err := c.batchRoundTrip(MPutBatch(chunk))
		if err != nil {
			return created, err
		}
		n, err := mputCreated(resps)
		created += n
		if err != nil {
			return created, err
		}
	}
	return created, nil
}

// mgetValues converts multi-get sub-responses into a value-per-key
// slice, surfacing any sub-error. A sub-response the server degraded to
// keep the batch under the frame bound (MsgBatchOverflow) is re-fetched
// through get — a single value always fits a frame on its own, so a
// multi-get whose values sum past MaxFrame still succeeds, just with
// extra round trips for the oversized tail.
func mgetValues(resps []Response, keys []string, get func(string) ([]byte, bool, error)) ([][]byte, error) {
	vals := make([][]byte, len(resps))
	for i, r := range resps {
		switch {
		case r.Status == StatusOK:
			vals[i] = r.Value
		case r.Status == StatusNotFound:
		case r.Status == StatusError && r.Msg == MsgBatchOverflow:
			v, found, err := get(keys[i])
			if err != nil {
				return nil, fmt.Errorf("store: mget[%d]: overflow refetch: %w", i, err)
			}
			if found {
				vals[i] = v
			}
		default:
			return nil, fmt.Errorf("store: mget[%d]: server error: %s", i, r.Msg)
		}
	}
	return vals, nil
}

// mputChunks splits entries so each chunk's encoded multi-put request
// stays under the frame bound with headroom (and under MaxBatchOps) —
// every entry is individually legal on the wire, so a multi-put of any
// total size succeeds, it just costs more frames past ~4MB.
func mputChunks(entries []Entry) [][]Entry {
	return chunkBy(entries, func(e Entry) int { return 2 + len(e.Key) + 4 + len(e.Value) })
}

// mgetChunks does the same for multi-get keys (here the count cap is
// the bound that usually binds; key bytes rarely approach a frame).
func mgetChunks(keys []string) [][]string {
	return chunkBy(keys, func(k string) int { return 2 + len(k) })
}

// chunkBy splits items greedily so each chunk holds at most MaxBatchOps
// items whose encoded sizes sum under the frame budget. An empty input
// still yields one empty chunk (one frame goes out either way).
func chunkBy[T any](items []T, size func(T) int) [][]T {
	const budget = MaxFrame - 1024
	var chunks [][]T
	start, sum := 0, 0
	for i, it := range items {
		sz := size(it)
		if i > start && (sum+sz > budget || i-start == MaxBatchOps) {
			chunks = append(chunks, items[start:i])
			start, sum = i, 0
		}
		sum += sz
	}
	if start < len(items) || len(items) == 0 {
		chunks = append(chunks, items[start:])
	}
	return chunks
}

// mputCreated counts newly inserted keys, surfacing any sub-error.
func mputCreated(resps []Response) (int, error) {
	created := 0
	for i, r := range resps {
		if r.Status != StatusOK {
			return 0, fmt.Errorf("store: mput[%d]: server error: %s", i, r.Msg)
		}
		if r.Created {
			created++
		}
	}
	return created, nil
}

// Get fetches the value under key.
func (c *Client) Get(key string) ([]byte, bool, error) {
	resp, err := c.roundTrip(Request{Op: OpGet, Key: key})
	if err != nil {
		return nil, false, err
	}
	return resp.Value, resp.Status == StatusOK, nil
}

// Put stores value under key; it reports whether the key was newly
// inserted.
func (c *Client) Put(key string, value []byte) (bool, error) {
	resp, err := c.roundTrip(Request{Op: OpPut, Key: key, Value: value})
	if err != nil {
		return false, err
	}
	return resp.Created, nil
}

// Delete removes key; it reports whether the key was present.
func (c *Client) Delete(key string) (bool, error) {
	resp, err := c.roundTrip(Request{Op: OpDelete, Key: key})
	if err != nil {
		return false, err
	}
	return resp.Status == StatusOK, nil
}

// Scan returns up to limit entries with the given key prefix, sorted by
// key (limit 0 = unlimited, subject to the frame bound).
func (c *Client) Scan(prefix string, limit int) ([]Entry, error) {
	if limit < 0 {
		limit = 0
	}
	resp, err := c.roundTrip(Request{Op: OpScan, Key: prefix, Limit: uint32(limit)})
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// migRoundTrip sends one migration frame and decodes its response.
func (c *Client) migRoundTrip(req MigrateRequest) (MigrateResponse, error) {
	body, err := AppendMigrateRequest(c.ebuf[:0], req)
	if err != nil {
		return MigrateResponse{}, err
	}
	c.ebuf = body[:0]
	rbody, err := c.exchange(body)
	if err != nil {
		return MigrateResponse{}, err
	}
	resp, err := ParseMigrateResponse(req.Op, rbody)
	if err != nil {
		return MigrateResponse{}, err
	}
	if resp.Status == StatusError {
		return MigrateResponse{}, fmt.Errorf("store: server error: %s", resp.Msg)
	}
	return resp, nil
}

// MigExport requests one chunk of the server's entries whose ring
// positions fall in arcs, resuming from cursor (0 starts the walk; pass
// the returned cursor until done).
func (c *Client) MigExport(cursor uint64, max int, arcs []Arc) (entries []Entry, next uint64, done bool, err error) {
	if max <= 0 || max > MaxBatchOps {
		max = MaxBatchOps
	}
	resp, err := c.migRoundTrip(MigrateRequest{Op: OpMigExport, Cursor: cursor, Max: uint16(max), Arcs: arcs})
	if err != nil {
		return nil, 0, false, err
	}
	return resp.Entries, resp.Next, resp.Done, nil
}

// MigDigest fetches the server's order-independent checksums for arcs.
func (c *Client) MigDigest(arcs []Arc, slots int) ([]uint64, error) {
	if slots <= 0 || slots > MaxDigestSlots {
		return nil, ErrBadSlots
	}
	resp, err := c.migRoundTrip(MigrateRequest{Op: OpMigDigest, Slots: uint16(slots), Arcs: arcs})
	if err != nil {
		return nil, err
	}
	if len(resp.Digests) != slots {
		return nil, fmt.Errorf("store: digest count %d, want %d", len(resp.Digests), slots)
	}
	return resp.Digests, nil
}

// MigApply lands migrated entries and deletes on the server's local
// store (bypassing any Router), chunked under the frame and count
// bounds; it returns the number of ops applied.
func (c *Client) MigApply(puts []Entry, dels []string) (int, error) {
	applied := 0
	for _, chunk := range mputChunks(puts) {
		if len(chunk) == 0 {
			continue
		}
		resp, err := c.migRoundTrip(MigrateRequest{Op: OpMigApply, Puts: chunk})
		if err != nil {
			return applied, err
		}
		applied += int(resp.Applied)
	}
	for _, chunk := range mgetChunks(dels) {
		if len(chunk) == 0 {
			continue
		}
		resp, err := c.migRoundTrip(MigrateRequest{Op: OpMigApply, Dels: chunk})
		if err != nil {
			return applied, err
		}
		applied += int(resp.Applied)
	}
	return applied, nil
}

// LocalConn adapts a Handle to the Client method set, so the workload
// engine can drive a store in-process (no wire) through the same
// interface as a remote client. Like Handle, it is single-goroutine.
type LocalConn struct {
	h *Handle
}

// NewLocalConn creates an in-process connection; node is the NUMA hint.
func (s *Store) NewLocalConn(node int) *LocalConn {
	return &LocalConn{h: s.NewHandle(node)}
}

// Get fetches the value under key.
func (c *LocalConn) Get(key string) ([]byte, bool, error) {
	v, ok := c.h.Get(key)
	return v, ok, nil
}

// Put stores value under key.
func (c *LocalConn) Put(key string, value []byte) (bool, error) {
	return c.h.Put(key, value), nil
}

// Delete removes key.
func (c *LocalConn) Delete(key string) (bool, error) {
	return c.h.Delete(key), nil
}

// Scan returns up to limit entries with the given key prefix.
func (c *LocalConn) Scan(prefix string, limit int) ([]Entry, error) {
	return c.h.Scan(prefix, limit), nil
}

// ExecBatch executes a batch in-process through Handle.ExecBatch, so
// direct connections amortize shard locking exactly like the wire path.
func (c *LocalConn) ExecBatch(reqs []Request) ([]Response, error) {
	return c.h.ExecBatch(reqs), nil
}

// MGet fetches many keys in one batched call.
func (c *LocalConn) MGet(keys []string) ([][]byte, error) {
	return mgetValues(c.h.ExecBatch(MGetBatch(keys).Reqs), keys, c.Get)
}

// MPut stores many entries in one batched call.
func (c *LocalConn) MPut(entries []Entry) (int, error) {
	return mputCreated(c.h.ExecBatch(MPutBatch(entries).Reqs))
}

// Close is a no-op.
func (c *LocalConn) Close() error { return nil }

// Conn is the method set shared by Client, LocalConn and AsyncClient.
type Conn interface {
	Get(key string) ([]byte, bool, error)
	Put(key string, value []byte) (bool, error)
	Delete(key string) (bool, error)
	Scan(prefix string, limit int) ([]Entry, error)
	Close() error
}

// BatchConn is a Conn that can execute many scalar ops in one call —
// one round trip on the wire, one lock acquisition per touched shard on
// the server.
type BatchConn interface {
	Conn
	ExecBatch(reqs []Request) ([]Response, error)
	MGet(keys []string) ([][]byte, error)
	MPut(entries []Entry) (int, error)
}

var (
	_ BatchConn = (*Client)(nil)
	_ BatchConn = (*LocalConn)(nil)
)
