package store

import (
	"bufio"
	"fmt"
	"io"
)

// Client drives a Server over a byte stream (net.Conn, net.Pipe). It
// keeps one request in flight and is not safe for concurrent use — give
// each goroutine its own connection, exactly like real client traffic.
type Client struct {
	conn io.ReadWriteCloser
	br   *bufio.Reader
	bw   *bufio.Writer
	buf  []byte // encode / frame-read scratch
}

// NewClient wraps an established connection.
func NewClient(conn io.ReadWriteCloser) *Client {
	return &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends req and decodes the response.
func (c *Client) roundTrip(req Request) (Response, error) {
	body, err := AppendRequest(c.buf[:0], req)
	if err != nil {
		return Response{}, err
	}
	c.buf = body[:0]
	if err := WriteFrame(c.bw, body); err != nil {
		return Response{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return Response{}, err
	}
	rbody, err := ReadFrame(c.br, c.buf)
	if err != nil {
		return Response{}, err
	}
	c.buf = rbody[:0]
	resp, err := ParseResponse(req.Op, rbody)
	if err != nil {
		return Response{}, err
	}
	if resp.Status == StatusError {
		return Response{}, fmt.Errorf("store: server error: %s", resp.Msg)
	}
	return resp, nil
}

// Get fetches the value under key.
func (c *Client) Get(key string) ([]byte, bool, error) {
	resp, err := c.roundTrip(Request{Op: OpGet, Key: key})
	if err != nil {
		return nil, false, err
	}
	return resp.Value, resp.Status == StatusOK, nil
}

// Put stores value under key; it reports whether the key was newly
// inserted.
func (c *Client) Put(key string, value []byte) (bool, error) {
	resp, err := c.roundTrip(Request{Op: OpPut, Key: key, Value: value})
	if err != nil {
		return false, err
	}
	return resp.Created, nil
}

// Delete removes key; it reports whether the key was present.
func (c *Client) Delete(key string) (bool, error) {
	resp, err := c.roundTrip(Request{Op: OpDelete, Key: key})
	if err != nil {
		return false, err
	}
	return resp.Status == StatusOK, nil
}

// Scan returns up to limit entries with the given key prefix, sorted by
// key (limit 0 = unlimited, subject to the frame bound).
func (c *Client) Scan(prefix string, limit int) ([]Entry, error) {
	if limit < 0 {
		limit = 0
	}
	resp, err := c.roundTrip(Request{Op: OpScan, Key: prefix, Limit: uint32(limit)})
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// LocalConn adapts a Handle to the Client method set, so the workload
// engine can drive a store in-process (no wire) through the same
// interface as a remote client. Like Handle, it is single-goroutine.
type LocalConn struct {
	h *Handle
}

// NewLocalConn creates an in-process connection; node is the NUMA hint.
func (s *Store) NewLocalConn(node int) *LocalConn {
	return &LocalConn{h: s.NewHandle(node)}
}

// Get fetches the value under key.
func (c *LocalConn) Get(key string) ([]byte, bool, error) {
	v, ok := c.h.Get(key)
	return v, ok, nil
}

// Put stores value under key.
func (c *LocalConn) Put(key string, value []byte) (bool, error) {
	return c.h.Put(key, value), nil
}

// Delete removes key.
func (c *LocalConn) Delete(key string) (bool, error) {
	return c.h.Delete(key), nil
}

// Scan returns up to limit entries with the given key prefix.
func (c *LocalConn) Scan(prefix string, limit int) ([]Entry, error) {
	return c.h.Scan(prefix, limit), nil
}

// Close is a no-op.
func (c *LocalConn) Close() error { return nil }

// Conn is the method set shared by Client and LocalConn.
type Conn interface {
	Get(key string) ([]byte, bool, error)
	Put(key string, value []byte) (bool, error)
	Delete(key string) (bool, error)
	Scan(prefix string, limit int) ([]Entry, error)
	Close() error
}

var (
	_ Conn = (*Client)(nil)
	_ Conn = (*LocalConn)(nil)
)

// Driver wraps a Conn into the shape the workload engine consumes
// (workload.Conn): the same methods, except Scan reports only the entry
// count.
type Driver struct {
	C Conn
}

// Get forwards to the wrapped connection.
func (d Driver) Get(key string) ([]byte, bool, error) { return d.C.Get(key) }

// Put forwards to the wrapped connection.
func (d Driver) Put(key string, value []byte) (bool, error) { return d.C.Put(key, value) }

// Delete forwards to the wrapped connection.
func (d Driver) Delete(key string) (bool, error) { return d.C.Delete(key) }

// Scan forwards to the wrapped connection and reports the entry count.
func (d Driver) Scan(prefix string, limit int) (int, error) {
	entries, err := d.C.Scan(prefix, limit)
	return len(entries), err
}

// Close forwards to the wrapped connection.
func (d Driver) Close() error { return d.C.Close() }
