package store

import (
	"fmt"

	"ssync/internal/workload"
)

// Driver wraps a Conn into the shape the workload engine consumes
// (workload.Conn): the same methods, except Scan reports only the entry
// count. It also implements workload.PipeConn, so scenarios with batch
// or pipeline knobs set work over any store connection:
//
//   - an AsyncClient executes op groups as tagged batch frames and
//     overlaps up to its window of them in flight (true pipelining);
//   - a Client or LocalConn executes each group as one batch at Issue
//     time (lock amortization without overlap);
//   - any other Conn degrades to scalar ops at Issue time.
type Driver struct {
	C Conn
}

// Get forwards to the wrapped connection.
func (d Driver) Get(key string) ([]byte, bool, error) { return d.C.Get(key) }

// Put forwards to the wrapped connection.
func (d Driver) Put(key string, value []byte) (bool, error) { return d.C.Put(key, value) }

// Delete forwards to the wrapped connection.
func (d Driver) Delete(key string) (bool, error) { return d.C.Delete(key) }

// Scan forwards to the wrapped connection and reports the entry count.
func (d Driver) Scan(prefix string, limit int) (int, error) {
	entries, err := d.C.Scan(prefix, limit)
	return len(entries), err
}

// Close forwards to the wrapped connection.
func (d Driver) Close() error { return d.C.Close() }

var _ workload.PipeConn = Driver{}

// Issuer is a Conn that routes and pipelines op groups itself — the
// cluster routing client (internal/cluster), which must split a group
// across nodes before any batch frame exists. Driver defers to it
// wholesale.
type Issuer interface {
	Issue(ops []workload.Op) workload.Pending
}

// Issue starts one op group. A single scalar op skips batch framing
// entirely; groups go out as one batch frame.
func (d Driver) Issue(ops []workload.Op) workload.Pending {
	switch c := d.C.(type) {
	case Issuer:
		return c.Issue(ops)
	case *AsyncClient:
		if len(ops) == 1 {
			return scalarPending{op: ops[0], f: submitScalar(c, ops[0])}
		}
		reqs := ToRequests(ops)
		return batchPending{conn: d.C, reqs: reqs, f: c.BatchAsync(reqs)}
	case BatchConn:
		if len(ops) == 1 {
			return donePending(execScalar(d.C, ops[0]))
		}
		reqs := ToRequests(ops)
		resps, err := c.ExecBatch(reqs)
		if err != nil {
			return donePending(workload.Outcome{}, err)
		}
		out, err := BatchOutcome(d.C, reqs, resps)
		return donePending(out, err)
	default:
		var out workload.Outcome
		for _, op := range ops {
			o, err := execScalar(d.C, op)
			out.Add(o)
			if err != nil {
				return donePending(out, err)
			}
		}
		return donePending(out, nil)
	}
}

// submitScalar maps one workload op onto the async scalar surface.
func submitScalar(c *AsyncClient, op workload.Op) *Future {
	switch op.Kind {
	case workload.KindGet:
		return c.GetAsync(op.Key)
	case workload.KindPut:
		return c.PutAsync(op.Key, op.Value)
	case workload.KindDelete:
		return c.DeleteAsync(op.Key)
	default:
		return c.ScanAsync(op.Key, op.Limit)
	}
}

// execScalar runs one workload op synchronously on a Conn.
func execScalar(c Conn, op workload.Op) (workload.Outcome, error) {
	out := workload.Outcome{Ops: 1}
	switch op.Kind {
	case workload.KindGet:
		_, found, err := c.Get(op.Key)
		if err != nil {
			return out, err
		}
		if found {
			out.Hits++
		} else {
			out.Misses++
		}
	case workload.KindPut:
		created, err := c.Put(op.Key, op.Value)
		if err != nil {
			return out, err
		}
		if created {
			out.Created++
		}
	case workload.KindDelete:
		if _, err := c.Delete(op.Key); err != nil {
			return out, err
		}
	default:
		entries, err := c.Scan(op.Key, op.Limit)
		if err != nil {
			return out, err
		}
		out.Scanned += uint64(len(entries))
	}
	return out, nil
}

// ToRequests maps an op group onto wire requests.
func ToRequests(ops []workload.Op) []Request {
	reqs := make([]Request, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case workload.KindGet:
			reqs[i] = Request{Op: OpGet, Key: op.Key}
		case workload.KindPut:
			reqs[i] = Request{Op: OpPut, Key: op.Key, Value: op.Value}
		case workload.KindDelete:
			reqs[i] = Request{Op: OpDelete, Key: op.Key}
		default:
			limit := op.Limit
			if limit < 0 {
				limit = 0
			}
			reqs[i] = Request{Op: OpScan, Key: op.Key, Limit: uint32(limit)}
		}
	}
	return reqs
}

// BatchOutcome tallies a batch's sub-responses, surfacing any sub-error.
// A sub-response the server degraded to fit the frame (MsgBatchOverflow)
// is re-executed scalar over conn — the per-key contract the blocking
// MGet wrapper keeps, so an over-full batch degrades a run's throughput
// instead of aborting it.
func BatchOutcome(conn Conn, reqs []Request, resps []Response) (workload.Outcome, error) {
	var out workload.Outcome
	for i, r := range resps {
		if r.Status == StatusError {
			if r.Msg != MsgBatchOverflow {
				return out, fmt.Errorf("store: batch[%d]: server error: %s", i, r.Msg)
			}
			o, err := execScalar(conn, fromRequest(reqs[i]))
			out.Add(o)
			if err != nil {
				return out, fmt.Errorf("store: batch[%d]: overflow refetch: %w", i, err)
			}
			continue
		}
		out.Ops++
		switch reqs[i].Op {
		case OpGet:
			if r.Status == StatusOK {
				out.Hits++
			} else {
				out.Misses++
			}
		case OpPut:
			if r.Created {
				out.Created++
			}
		case OpScan:
			out.Scanned += uint64(len(r.Entries))
		}
	}
	return out, nil
}

// fromRequest maps a wire request back onto a workload op (the overflow
// refetch path).
func fromRequest(r Request) workload.Op {
	switch r.Op {
	case OpGet:
		return workload.Op{Kind: workload.KindGet, Key: r.Key}
	case OpPut:
		return workload.Op{Kind: workload.KindPut, Key: r.Key, Value: r.Value}
	case OpDelete:
		return workload.Op{Kind: workload.KindDelete, Key: r.Key}
	default:
		return workload.Op{Kind: workload.KindScan, Key: r.Key, Limit: int(r.Limit)}
	}
}

// donePending is an already-resolved Pending (synchronous backends).
type donePendingT struct {
	out workload.Outcome
	err error
}

func donePending(out workload.Outcome, err error) workload.Pending {
	return donePendingT{out: out, err: err}
}

func (p donePendingT) Wait() (workload.Outcome, error) { return p.out, p.err }

// scalarPending resolves a pipelined scalar op.
type scalarPending struct {
	op workload.Op
	f  *Future
}

func (p scalarPending) Wait() (workload.Outcome, error) {
	resp, err := p.f.Wait()
	out := workload.Outcome{Ops: 1}
	if err != nil {
		return workload.Outcome{}, err
	}
	switch p.op.Kind {
	case workload.KindGet:
		if resp.Status == StatusOK {
			out.Hits++
		} else {
			out.Misses++
		}
	case workload.KindPut:
		if resp.Created {
			out.Created++
		}
	case workload.KindScan:
		out.Scanned += uint64(len(resp.Entries))
	}
	return out, nil
}

// batchPending resolves a pipelined batch frame.
type batchPending struct {
	conn Conn
	reqs []Request
	f    *Future
}

func (p batchPending) Wait() (workload.Outcome, error) {
	resps, err := p.f.WaitBatch()
	if err != nil {
		return workload.Outcome{}, err
	}
	return BatchOutcome(p.conn, p.reqs, resps)
}
