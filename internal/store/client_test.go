package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"testing"

	"ssync/internal/locks"
)

// TestClientNoBufferAliasing is the regression test for the encode/read
// scratch split in Client: with one shared buffer, a large Get response
// landed in the same backing array the next Put request was encoded
// into, so correctness silently depended on every parse path copying
// out of the frame. The test interleaves large Get responses with Put
// encodes and holds onto every returned value across later round trips
// — any aliasing shows up as retained slices changing underneath us.
func TestClientNoBufferAliasing(t *testing.T) {
	s := New(Options{Shards: 2, Buckets: 8, Lock: locks.TICKET})
	c := NewServer(s, 1).PipeClient()
	defer c.Close()

	big := make([]byte, 128<<10)
	for i := range big {
		big[i] = byte(i * 7)
	}
	if _, err := c.Put("big", big); err != nil {
		t.Fatal(err)
	}

	var retained [][]byte
	for i := 0; i < 8; i++ {
		// A large response fills the read scratch...
		v, found, err := c.Get("big")
		if err != nil || !found {
			t.Fatalf("Get(big) #%d: %v, %v", i, found, err)
		}
		retained = append(retained, v)
		// ...then a Put encode reuses whatever scratch the client holds.
		small := fmt.Sprintf("small-%02d", i)
		if _, err := c.Put(small, bytes.Repeat([]byte{byte(i + 1)}, 512)); err != nil {
			t.Fatal(err)
		}
		// And a small response follows a big one, shrinking the frame.
		sv, found, err := c.Get(small)
		if err != nil || !found || len(sv) != 512 || sv[0] != byte(i+1) {
			t.Fatalf("Get(%s) = %d bytes, %v, %v", small, len(sv), found, err)
		}
		retained = append(retained, sv)
	}
	// Every value returned along the way must still be intact.
	for i, v := range retained {
		if i%2 == 0 {
			if !bytes.Equal(v, big) {
				t.Fatalf("retained big value %d corrupted by later round trips", i)
			}
		} else if len(v) != 512 || v[0] != byte(i/2+1) {
			t.Fatalf("retained small value %d corrupted: % x...", i, v[:8])
		}
	}
}

// TestAsyncClientNoBufferAliasing extends the aliasing audit to the
// multiplexed client, whose buffers churn through sync.Pools: request
// bodies return to framePool the moment the writer copies them out, and
// the read loop's frame scratch is recycled across clients. A future's
// decoded value must survive all of that — including the client being
// closed (scratch returned to the pool) while values are still
// retained, and a second client immediately reusing the pooled buffers.
func TestAsyncClientNoBufferAliasing(t *testing.T) {
	s := New(Options{Shards: 2, Buckets: 8, Lock: locks.TICKET})
	srv := NewServer(s, 1)
	c := srv.PipeAsyncClient(8)

	big := make([]byte, 128<<10)
	for i := range big {
		big[i] = byte(i * 7)
	}
	if _, err := c.Put("big", big); err != nil {
		t.Fatal(err)
	}

	var retained [][]byte
	for i := 0; i < 8; i++ {
		// A window of big gets and small puts in flight together: the
		// read scratch refills while earlier futures' values are held.
		gets := []*Future{c.GetAsync("big"), c.GetAsync("big")}
		small := fmt.Sprintf("async-small-%02d", i)
		if _, err := c.Put(small, bytes.Repeat([]byte{byte(i + 1)}, 512)); err != nil {
			t.Fatal(err)
		}
		sf := c.GetAsync(small)
		for _, f := range gets {
			resp, err := f.Wait()
			if err != nil || resp.Status != StatusOK {
				t.Fatalf("async Get(big) #%d: %+v, %v", i, resp, err)
			}
			retained = append(retained, resp.Value)
		}
		resp, err := sf.Wait()
		if err != nil || len(resp.Value) != 512 || resp.Value[0] != byte(i+1) {
			t.Fatalf("async Get(%s) = %d bytes, %v", small, len(resp.Value), err)
		}
	}
	// Close returns the client's pooled scratch; a second client then
	// stomps over whatever buffers the pool hands back out.
	c.Close()
	c2 := srv.PipeAsyncClient(8)
	defer c2.Close()
	for i := 0; i < 4; i++ {
		if _, _, err := c2.Get("big"); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range retained {
		if !bytes.Equal(v, big) {
			t.Fatalf("retained async value %d corrupted by pooled-buffer reuse", i)
		}
	}
}

// TestBatchEndToEnd drives the batch surface of all three connection
// kinds — lock-step Client, LocalConn and AsyncClient — against one
// store and expects identical semantics.
func TestBatchEndToEnd(t *testing.T) {
	s := New(Options{Shards: 4, Buckets: 8, Lock: locks.MCS})
	srv := NewServer(s, 2)
	conns := map[string]BatchConn{
		"client": srv.PipeClient(),
		"local":  s.NewLocalConn(0),
		"async":  srv.PipeAsyncClient(8),
	}
	for name, c := range conns {
		c := c
		t.Run(name, func(t *testing.T) {
			prefix := name + "-"
			entries := []Entry{
				{Key: prefix + "a", Value: []byte("1")},
				{Key: prefix + "b", Value: []byte("2")},
				{Key: prefix + "c", Value: []byte("3")},
			}
			created, err := c.MPut(entries)
			if err != nil || created != 3 {
				t.Fatalf("MPut = %d, %v", created, err)
			}
			// Re-putting is not a create.
			created, err = c.MPut(entries[:2])
			if err != nil || created != 0 {
				t.Fatalf("re-MPut = %d, %v", created, err)
			}
			vals, err := c.MGet([]string{prefix + "b", prefix + "missing", prefix + "a"})
			if err != nil {
				t.Fatal(err)
			}
			if string(vals[0]) != "2" || vals[1] != nil || string(vals[2]) != "1" {
				t.Fatalf("MGet = %q", vals)
			}
			// A mixed batch: get, put, delete, scan — one frame, per-slot
			// responses in request order.
			resps, err := c.ExecBatch([]Request{
				{Op: OpGet, Key: prefix + "c"},
				{Op: OpPut, Key: prefix + "d", Value: []byte("4")},
				{Op: OpDelete, Key: prefix + "a"},
				{Op: OpScan, Key: prefix, Limit: 10},
				{Op: OpGet, Key: prefix + "a"}, // deleted by slot 2: batch order within a shard...
			})
			if err != nil {
				t.Fatal(err)
			}
			if resps[0].Status != StatusOK || string(resps[0].Value) != "3" {
				t.Fatalf("batch get = %+v", resps[0])
			}
			if resps[1].Status != StatusOK || !resps[1].Created {
				t.Fatalf("batch put = %+v", resps[1])
			}
			if resps[2].Status != StatusOK {
				t.Fatalf("batch delete = %+v", resps[2])
			}
			if resps[3].Status != StatusOK || len(resps[3].Entries) == 0 {
				t.Fatalf("batch scan = %+v", resps[3])
			}
			// Slots 2 and 4 hit the same key: if they land on the same
			// shard group they apply in batch order, so the get sees the
			// delete.
			if resps[4].Status != StatusNotFound {
				t.Fatalf("batch get-after-delete = %+v", resps[4])
			}
		})
	}
	for _, c := range conns {
		c.Close()
	}
}

// TestBatchLockAmortization exercises ExecBatch's grouped execution on
// a single-shard store: every sub-op still executes (the shard op
// counters advance once per op) and per-slot results land in request
// order, with puts visible to the gets batched behind them.
func TestBatchLockAmortization(t *testing.T) {
	s := New(Options{Shards: 1, Buckets: 4, Lock: locks.TICKET})
	h := s.NewHandle(0)
	var reqs []Request
	for i := 0; i < 16; i++ {
		reqs = append(reqs, Request{Op: OpPut, Key: fmt.Sprintf("k%02d", i), Value: []byte{byte(i)}})
	}
	for i := 0; i < 16; i++ {
		reqs = append(reqs, Request{Op: OpGet, Key: fmt.Sprintf("k%02d", i)})
	}
	resps := h.ExecBatch(reqs)
	for i := 0; i < 16; i++ {
		if resps[i].Status != StatusOK || !resps[i].Created {
			t.Fatalf("put %d = %+v", i, resps[i])
		}
		if resps[16+i].Status != StatusOK || resps[16+i].Value[0] != byte(i) {
			t.Fatalf("get %d = %+v", i, resps[16+i])
		}
	}
	// The shard counters saw all 32 ops even though the lock was taken
	// once per class grouping.
	stats := h.ShardStats()
	if stats[0].Gets != 16 || stats[0].Puts != 16 {
		t.Fatalf("shard counters = %+v", stats[0])
	}
}

// TestBatchResponseFrameBound: a multi-get whose values cannot fit one
// response frame degrades the tail sub-responses to StatusError instead
// of killing the connection, and the connection stays usable.
func TestBatchResponseFrameBound(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates several MB of values")
	}
	s := New(Options{Shards: 2, Buckets: 4, Lock: locks.TICKET})
	c := NewServer(s, 1).PipeClient()
	defer c.Close()
	big := bytes.Repeat([]byte{0xCD}, MaxValueLen)
	var keys []string
	var entries []Entry
	for i := 0; i < 6; i++ { // 6 MB of values vs a 4 MB frame bound
		k := fmt.Sprintf("huge-%d", i)
		keys = append(keys, k)
		entries = append(entries, Entry{Key: k, Value: big})
	}
	// MPut chunks the over-frame request client-side: all 6 MB land.
	created, err := c.MPut(entries)
	if err != nil || created != 6 {
		t.Fatalf("chunked MPut = %d, %v", created, err)
	}
	reqs := make([]Request, len(keys))
	for i, k := range keys {
		reqs[i] = Request{Op: OpGet, Key: k}
	}
	resps, err := c.ExecBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	okCount, errCount := 0, 0
	for _, r := range resps {
		switch r.Status {
		case StatusOK:
			okCount++
			if !bytes.Equal(r.Value, big) {
				t.Fatal("oversized batch corrupted a delivered value")
			}
		case StatusError:
			errCount++
		default:
			t.Fatalf("unexpected status %d", r.Status)
		}
	}
	if okCount == 0 || errCount == 0 {
		t.Fatalf("want a mix of delivered and degraded sub-responses, got %d ok / %d err", okCount, errCount)
	}
	// The connection survived the over-full batch.
	if _, found, err := c.Get(keys[0]); err != nil || !found {
		t.Fatalf("connection unusable after bounded batch: %v, %v", found, err)
	}
	// MGet transparently re-fetches the degraded tail key by key, so the
	// convenience surface succeeds even when one frame cannot carry it.
	vals, err := c.MGet(keys)
	if err != nil {
		t.Fatalf("MGet over frame bound: %v", err)
	}
	for i, v := range vals {
		if !bytes.Equal(v, big) {
			t.Fatalf("MGet[%d] lost the degraded value: %d bytes", i, len(v))
		}
	}
}

// TestServerRejectsTaggedMalformed: a malformed tagged request gets a
// tagged error response — the echoed tag first, then the scalar error
// body — so a multiplexed client can attribute the failure instead of
// reporting stream corruption.
func TestServerRejectsTaggedMalformed(t *testing.T) {
	s := New(Options{})
	srv := NewServer(s, 1)
	clientEnd, serverEnd := net.Pipe()
	done := make(chan error, 1)
	go func() {
		defer serverEnd.Close()
		done <- srv.ServeConn(serverEnd)
	}()
	// A tagged batch frame whose batch body is truncated garbage.
	body := AppendTaggedRequest(nil, 0xABCD1234)
	body = append(body, OpBatch, 0xFF, 0xFF)
	if err := WriteFrame(clientEnd, body); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadFrame(clientEnd, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) < 4 || binary.BigEndian.Uint32(resp[:4]) != 0xABCD1234 {
		t.Fatalf("reject response does not echo the tag: % x", resp)
	}
	r, err := ParseResponse(0, resp[4:])
	if err != nil || r.Status != StatusError || r.Msg == "" {
		t.Fatalf("reject body = %+v, %v", r, err)
	}
	if err := <-done; err == nil {
		t.Fatal("server must close the connection after a bad tagged request")
	}
	clientEnd.Close()
}

// TestPipelineRejectSurfacesServerError: when a tagged batch is
// rejected, the async client's future fails with the server's message,
// not a tag-mismatch diagnostic. The malformed frame is injected by a
// corrupting transport, since the client's own encoders never produce
// one.
func TestPipelineRejectSurfacesServerError(t *testing.T) {
	s := New(Options{})
	srv := NewServer(s, 1)
	clientEnd, serverEnd := net.Pipe()
	go func() {
		defer serverEnd.Close()
		_ = srv.ServeConn(serverEnd)
	}()
	cl := NewAsyncClient(&corruptBatches{Conn: clientEnd}, 4)
	defer cl.Close()
	_, err := cl.MGet([]string{"a", "b"})
	if err == nil {
		t.Fatal("corrupted batch must fail")
	}
	if !strings.Contains(err.Error(), "server error:") {
		t.Fatalf("err = %v, want the server's reject message", err)
	}
}

// corruptBatches truncates the body of every outgoing batch frame so
// the server's parser rejects it.
type corruptBatches struct {
	net.Conn
	scan []byte
}

func (c *corruptBatches) Write(p []byte) (int, error) {
	// Frames arrive whole from bufio.Flush; find tagged batch bodies and
	// clobber their count fields (offset: 4 hdr + 1 OpTagged + 4 tag).
	c.scan = append(c.scan[:0], p...)
	if len(c.scan) >= 12 && c.scan[4] == OpTagged && c.scan[9] == OpMGet {
		c.scan[10], c.scan[11] = 0xFF, 0xFF
	}
	n, err := c.Conn.Write(c.scan)
	if n > len(p) {
		n = len(p)
	}
	return n, err
}
