package store

import (
	"sync"

	"ssync/internal/topo"
)

// actorEngine is the message-passing paradigm: one goroutine per shard
// owns that shard's bucket table outright — no locks exist anywhere;
// partitioned ownership enforces mutual exclusion, the single-writer
// discipline of internal/mp and the paper's §6.3 served hash table.
// Clients ship operations to the owner through a channel mailbox and
// block on a private reply channel; the batch path ships a whole
// per-shard op group as ONE message, so message count (the paradigm's
// unit of cost) is amortized exactly like lock acquisitions are in the
// locked engine.
//
// Counters are mailbox-owned: only the shard goroutine touches them, and
// a stats snapshot is itself a message, so ShardStats is race-free by
// construction.
type actorEngine struct {
	mboxes []chan actorMsg
	stop   chan struct{} // closed by close(): owners drain and exit
	// stopped is closed once every owner has exited (and therefore
	// finished its final mailbox drain). Senders wait on stopped, not
	// stop, so a reply that the drain still produces is never missed.
	stopped chan struct{}
	once    sync.Once
	wg      sync.WaitGroup
}

// actorMailbox is the mailbox depth per shard. Every client blocks for
// its reply before sending again, so depth only needs to cover the
// number of clients simultaneously aiming at one shard; beyond that it
// buys nothing.
const actorMailbox = 128

// actorKind discriminates mailbox messages.
type actorKind uint8

const (
	actGet actorKind = iota
	actPut
	actDel
	actGroup
	actScan
	actExport
	actEntries
	actStats
)

// actorMsg is one mailbox message. For actGroup the slices are shared
// with the sender, which is safe: the channel send/receive pair orders
// the owner's writes to resps before the sender's read of them. The
// same happens-before pair is what makes the zero-copy fields sound:
// key and value may alias the sender's frame buffer (the sender blocks
// until the reply, so the buffer cannot be reused mid-handle), and the
// owner appends a get's value into the sender-owned dst.
type actorMsg struct {
	kind   actorKind
	hash   uint64
	key    lookupKey
	value  []byte
	dst    []byte // actGet: value destination, owned by the sender
	reqs   []Request
	hashes []uint64
	idxs   []int
	resps  []Response
	out    []Entry
	// actExport parameters; pred runs on the owner goroutine, which is
	// safe because it only reads hashes it is handed.
	pred     func(uint64) bool
	from     int
	maxn     int
	maxBytes int
	reply    chan actorReply
}

// actorReply is the owner's response.
type actorReply struct {
	val   []byte
	ok    bool
	n     int
	out   []Entry
	stats Counters
}

func newActorEngine(opt Options) *actorEngine {
	e := &actorEngine{
		mboxes:  make([]chan actorMsg, opt.Shards),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	// Shard owners are the one place in the store where "shard X lives
	// in domain Y" can be made literally true: each owner goroutine pins
	// itself to its shard's LLC domain, so the shard's bucket table is
	// only ever touched from CPUs that share that LLC. Without a
	// placement (or on a single-domain machine) pin is a no-op and the
	// owners float as before.
	var domains []int
	if opt.Placement != nil {
		domains = opt.Placement.ShardDomains(opt.Shards)
	}
	for i := range e.mboxes {
		e.mboxes[i] = make(chan actorMsg, actorMailbox)
		tbl := newShardTable(opt.Buckets)
		domain := -1
		if domains != nil {
			domain = domains[i]
		}
		e.wg.Add(1)
		go e.own(&tbl, e.mboxes[i], opt.Placement, domain)
	}
	return e
}

// own is the shard-owner loop: execute one message at a time against the
// table only this goroutine can reach. On stop it drains the mailbox
// before exiting, so a message enqueued before the drain's last empty
// poll still gets its reply; a message that loses that race is handled
// by the sender side of the protocol (call waits on stopped and then
// gives up), so no goroutine is ever stranded either way.
func (e *actorEngine) own(tbl *shardTable, mbox chan actorMsg, pl *topo.Placement, domain int) {
	defer e.wg.Done()
	undo := pl.Pin(domain)
	defer undo()
	for {
		select {
		case <-e.stop:
			for {
				select {
				case m := <-mbox:
					e.handle(tbl, m)
				default:
					return
				}
			}
		case m := <-mbox:
			e.handle(tbl, m)
		}
	}
}

// handle executes one mailbox message and sends the reply.
func (e *actorEngine) handle(tbl *shardTable, m actorMsg) {
	var r actorReply
	switch m.kind {
	case actGet:
		r.val, r.ok = tbl.get(m.hash, m.key, m.dst)
	case actPut:
		r.ok = tbl.put(m.hash, m.key, m.value)
	case actDel:
		r.ok = tbl.del(m.hash, m.key)
	case actGroup:
		get, put, del := tableOps(tbl)
		execPointOps(m.reqs, m.hashes, m.idxs, m.resps, get, put, del)
	case actScan:
		r.out = tbl.scan(m.key.s, m.out)
	case actExport:
		r.n, r.out = tbl.export(m.from, m.pred, m.maxn, m.maxBytes, m.out)
	case actEntries:
		r.n = tbl.entries
	case actStats:
		r.stats = tbl.ops
	}
	m.reply <- r
}

// close stops the shard owners and waits for their final drains. Ops
// racing Close do not strand their goroutines, but an op the owners no
// longer see reports a zero result — callers who care about every
// last op must quiesce before closing.
func (e *actorEngine) close() {
	e.once.Do(func() {
		close(e.stop)
		e.wg.Wait()
		close(e.stopped)
	})
	<-e.stopped
}

func (e *actorEngine) access(int) shardAccess {
	return &actorAccess{e: e, reply: make(chan actorReply, 1)}
}

// actorAccess is a client of the shard owners. The reply channel is
// per-goroutine and reused: a client has at most one request in flight.
type actorAccess struct {
	e     *actorEngine
	reply chan actorReply
}

// call ships one message and waits for the reply. Both waits also
// watch stopped, so an op racing Close degrades to a zero reply
// instead of blocking forever: if the engine stopped after our message
// was enqueued, the owner's drain may still have produced the reply —
// it sits in the buffered reply channel, so the final poll both
// returns it and keeps the channel clean for any later (misbehaving)
// call.
func (a *actorAccess) call(shard int, m actorMsg) actorReply {
	m.reply = a.reply
	select {
	case a.e.mboxes[shard] <- m:
	case <-a.e.stopped:
		return actorReply{}
	}
	select {
	case r := <-a.reply:
		return r
	case <-a.e.stopped:
		select {
		case r := <-a.reply:
			return r
		default:
			return actorReply{}
		}
	}
}

// get ships the caller's dst through the mailbox; the owner appends the
// value into it. A zero reply (engine closed mid-call) must still hand
// dst back unchanged, not lose it to a nil r.val.
func (a *actorAccess) get(shard int, hash uint64, key lookupKey, dst []byte) ([]byte, bool) {
	r := a.call(shard, actorMsg{kind: actGet, hash: hash, key: key, dst: dst})
	if !r.ok && r.val == nil {
		return dst, false
	}
	return r.val, r.ok
}

func (a *actorAccess) put(shard int, hash uint64, key lookupKey, value []byte) bool {
	return a.call(shard, actorMsg{kind: actPut, hash: hash, key: key, value: value}).ok
}

func (a *actorAccess) del(shard int, hash uint64, key lookupKey) bool {
	return a.call(shard, actorMsg{kind: actDel, hash: hash, key: key}).ok
}

// execGroup ships the whole group as one message — one mailbox round
// trip per touched shard per batch, the message-passing analogue of the
// locked engine's one-acquisition-per-shard batch rule.
func (a *actorAccess) execGroup(shard int, reqs []Request, hashes []uint64, idxs []int, resps []Response) {
	a.call(shard, actorMsg{kind: actGroup, reqs: reqs, hashes: hashes, idxs: idxs, resps: resps})
}

func (a *actorAccess) scanShard(shard int, prefix string, out []Entry) []Entry {
	return a.call(shard, actorMsg{kind: actScan, key: keyOf(prefix), out: out}).out
}

// exportShard ships the walk as one message like everything else. A
// zero reply (engine closed mid-call) returns next == 0 with no
// entries — no forward progress — which the store layer treats as
// "walk over" rather than looping on a dead mailbox.
func (a *actorAccess) exportShard(shard, from int, pred func(uint64) bool, maxEntries, maxBytes int, out []Entry) (int, []Entry) {
	r := a.call(shard, actorMsg{kind: actExport, from: from, pred: pred, maxn: maxEntries, maxBytes: maxBytes, out: out})
	return r.n, r.out
}

func (a *actorAccess) entries(shard int) int {
	return a.call(shard, actorMsg{kind: actEntries}).n
}

func (a *actorAccess) stats(shard int) Counters {
	return a.call(shard, actorMsg{kind: actStats}).stats
}
