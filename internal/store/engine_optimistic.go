package store

import (
	"runtime"
	"sync/atomic"

	"ssync/internal/hashkit"
	"ssync/internal/locks"
	"ssync/internal/pad"
)

// optimisticEngine is the optimistic-read paradigm: Get and the all-read
// batch groups (MGet) complete without acquiring the shard lock. Each
// bucket is an immutable snapshot published through an atomic pointer;
// writers — which still serialize through the shard's write lock, any
// libslock algorithm — rebuild the touched bucket copy-on-write and
// publish it with a seqlock-style version dance (odd while publishing,
// even when stable). A point read is a single atomic load of the
// published bucket (immutability makes the load its own linearization
// point, so unlike a classical seqlock it never validates or retries);
// the version discipline is what gives per-shard *scans* — reads whose
// footprint spans every bucket — a consistent snapshot that never
// blocks writers.
//
// Because published buckets are never mutated in place, reads race with
// nothing — the engine is exactly as race-detector-clean as the other
// two. Counters are per-field atomics, striped per accessor so the
// lock-free read path does not serialize on one hot counter line; a
// stats snapshot sums the stripes, stays race-free, and each field is
// monotone across snapshots (the fields of one snapshot may straddle
// in-flight ops; ShardStats documents this as the cross-engine
// contract).
type optimisticEngine struct {
	opt       Options
	shards    []optShard
	guards    []locks.Lock
	accessCtr atomic.Uint64 // round-robin counter-stripe assignment
}

// oBucket is an immutable bucket snapshot. The flat-vector layout
// replaces the segment chains of the mutable table: copy-on-write
// rewrites the whole bucket anyway, so chaining would only add pointer
// hops to the read path. Inner value slices are immutable once published
// and may be shared between successive snapshots.
type oBucket struct {
	hashes []uint64
	keys   []string
	vals   [][]byte
}

// optStripes is the number of counter stripes per shard. Counting a get
// must not re-serialize the readers the paradigm just unserialized, so
// accessors are spread round-robin over padded stripes: the common case
// is an uncontended atomic add on a line no other accessor touches.
const optStripes = 8

// optCounters is one counter stripe, alone on its cache line.
//
//ssync:cacheline
type optCounters struct {
	gets    atomic.Uint64
	puts    atomic.Uint64
	deletes atomic.Uint64
	scans   atomic.Uint64
	_       [pad.CacheLineSize - 32]byte
}

// optShard is one shard: the seqlock version, the live-entry count,
// the published buckets and the counter stripes. Field order is layout:
// the two hot write-side words (version, bumped twice per publish;
// live, bumped per create/delete) each own a full line so neither
// invalidates the other's readers, the read-mostly buckets header is
// padded out to the next line, and the stripes array then starts
// line-aligned — without that, stripe elements straddle two lines and
// stripe 0 shares one with the live counter, which is exactly the
// false sharing the stripes exist to avoid. align_test.go pins these
// offsets.
//
//ssync:cacheline
type optShard struct {
	version pad.Uint64
	live    pad.Int64
	buckets []atomic.Pointer[oBucket]
	_       [pad.CacheLineSize - 24]byte
	stripes [optStripes]optCounters
}

func newOptimisticEngine(opt Options) *optimisticEngine {
	e := &optimisticEngine{
		opt:    opt,
		shards: make([]optShard, opt.Shards),
		guards: make([]locks.Lock, opt.Shards),
	}
	lopt := locks.Options{MaxThreads: opt.MaxThreads, Nodes: opt.Nodes}
	for i := range e.shards {
		e.shards[i].buckets = make([]atomic.Pointer[oBucket], opt.Buckets)
		e.guards[i] = locks.New(opt.Lock, lopt)
	}
	return e
}

func (e *optimisticEngine) access(node int) shardAccess {
	return &optAccess{
		e:      e,
		toks:   make([]*locks.Token, e.opt.Shards),
		node:   node,
		stripe: int(e.accessCtr.Add(1) % optStripes),
	}
}

func (e *optimisticEngine) close() {}

// bucketOf returns the published-bucket slot for a hash.
func (e *optimisticEngine) bucketOf(sh *optShard, hash uint64) *atomic.Pointer[oBucket] {
	return &sh.buckets[hashkit.Bucket(hash, uint64(e.opt.Buckets))]
}

// find scans one immutable bucket snapshot.
func (b *oBucket) find(hash uint64, key lookupKey) int {
	if b == nil {
		return -1
	}
	for i, h := range b.hashes {
		if h == hash && key.eq(b.keys[i]) {
			return i
		}
	}
	return -1
}

// optAccess carries the per-goroutine write-lock tokens and the
// accessor's counter-stripe index; the read path itself needs no
// per-goroutine state.
type optAccess struct {
	e      *optimisticEngine
	toks   []*locks.Token
	node   int
	stripe int
}

// count returns this accessor's counter stripe in a shard.
func (a *optAccess) count(sh *optShard) *optCounters { return &sh.stripes[a.stripe] }

func (a *optAccess) lock(i int) {
	if a.toks[i] == nil {
		a.toks[i] = a.e.guards[i].NewToken(a.node)
	}
	a.e.guards[i].Acquire(a.toks[i])
}

func (a *optAccess) unlock(i int) { a.e.guards[i].Release(a.toks[i]) }

// get is the paradigm's point: one atomic load of the published
// immutable bucket — no lock, no validation, no retry, no waiting on
// writers at all. Immutability makes the load itself the linearization
// point: the snapshot a reader observes is exactly the state some
// prefix of the shard's writes published. The shard version exists for
// scanShard's multi-bucket snapshot, where a single load cannot cover
// the footprint; validating point reads against it would only make
// every Get in a shard retry on publishes to unrelated buckets.
func (a *optAccess) get(shard int, hash uint64, key lookupKey, dst []byte) ([]byte, bool) {
	sh := &a.e.shards[shard]
	a.count(sh).gets.Add(1)
	b := a.e.bucketOf(sh, hash).Load()
	if i := b.find(hash, key); i >= 0 {
		// The loaded bucket is immutable, so appending from vals[i] into
		// the caller's buffer is safe without any validation.
		return append(dst, b.vals[i]...), true
	}
	return dst, false
}

func (a *optAccess) put(shard int, hash uint64, key lookupKey, value []byte) bool {
	a.lock(shard)
	defer a.unlock(shard)
	return a.putLocked(&a.e.shards[shard], hash, key, value)
}

func (a *optAccess) del(shard int, hash uint64, key lookupKey) bool {
	a.lock(shard)
	defer a.unlock(shard)
	return a.delLocked(&a.e.shards[shard], hash, key)
}

// putLocked rebuilds the bucket copy-on-write and publishes it under the
// version dance. The shard write lock must be held. Copy-on-write is
// the one write path that allocates by design — the rebuilt bucket IS
// the synchronization mechanism — so the optimistic engine's put can
// never be allocation-free the way the mutate-in-place engines are;
// the alloc regression tests bound it instead of zeroing it.
func (a *optAccess) putLocked(sh *optShard, hash uint64, key lookupKey, value []byte) bool {
	e := a.e
	a.count(sh).puts.Add(1)
	slot := e.bucketOf(sh, hash)
	old := slot.Load()
	i := old.find(hash, key)
	nb := &oBucket{}
	if old != nil {
		nb.hashes = append([]uint64(nil), old.hashes...)
		nb.keys = append([]string(nil), old.keys...)
		nb.vals = append([][]byte(nil), old.vals...)
	}
	stored := append([]byte(nil), value...)
	created := i < 0
	if created {
		nb.hashes = append(nb.hashes, hash)
		nb.keys = append(nb.keys, key.str())
		nb.vals = append(nb.vals, stored)
	} else {
		nb.vals[i] = stored
	}
	e.publish(sh, slot, nb)
	if created {
		sh.live.Add(1)
	}
	return created
}

// delLocked rebuilds the bucket without key, if present. The shard write
// lock must be held.
func (a *optAccess) delLocked(sh *optShard, hash uint64, key lookupKey) bool {
	e := a.e
	a.count(sh).deletes.Add(1)
	slot := e.bucketOf(sh, hash)
	old := slot.Load()
	i := old.find(hash, key)
	if i < 0 {
		return false
	}
	nb := &oBucket{
		hashes: make([]uint64, 0, len(old.hashes)-1),
		keys:   make([]string, 0, len(old.keys)-1),
		vals:   make([][]byte, 0, len(old.vals)-1),
	}
	nb.hashes = append(append(nb.hashes, old.hashes[:i]...), old.hashes[i+1:]...)
	nb.keys = append(append(nb.keys, old.keys[:i]...), old.keys[i+1:]...)
	nb.vals = append(append(nb.vals, old.vals[:i]...), old.vals[i+1:]...)
	e.publish(sh, slot, nb)
	sh.live.Add(-1)
	return true
}

// publish swaps in a new bucket snapshot inside the seqlock write
// window: odd version tells optimistic readers a publish is in flight.
func (e *optimisticEngine) publish(sh *optShard, slot *atomic.Pointer[oBucket], nb *oBucket) {
	sh.version.Add(1)
	slot.Store(nb)
	sh.version.Add(1)
}

// getOwned reads while the caller holds the shard write lock (no
// concurrent publish possible, so no validation loop).
func (a *optAccess) getOwned(sh *optShard, hash uint64, key lookupKey) ([]byte, bool) {
	a.count(sh).gets.Add(1)
	b := a.e.bucketOf(sh, hash).Load()
	if i := b.find(hash, key); i >= 0 {
		return append([]byte(nil), b.vals[i]...), true
	}
	return nil, false
}

// execGroup keeps the paradigm's promise at the batch layer: a group
// with no writes (an MGet) runs entirely lock-free on versioned reads;
// a group with writes takes the shard write lock once and executes the
// whole group under it.
func (a *optAccess) execGroup(shard int, reqs []Request, hashes []uint64, idxs []int, resps []Response) {
	hasWrite := false
	for _, i := range idxs {
		if reqs[i].Op != OpGet {
			hasWrite = true
			break
		}
	}
	sh := &a.e.shards[shard]
	if !hasWrite {
		execPointOps(reqs, hashes, idxs, resps,
			func(hash uint64, key string) ([]byte, bool) { return a.get(shard, hash, keyOf(key), nil) },
			nil, nil)
		return
	}
	a.lock(shard)
	defer a.unlock(shard)
	execPointOps(reqs, hashes, idxs, resps,
		func(hash uint64, key string) ([]byte, bool) { return a.getOwned(sh, hash, keyOf(key)) },
		func(hash uint64, key string, value []byte) bool { return a.putLocked(sh, hash, keyOf(key), value) },
		func(hash uint64, key string) bool { return a.delLocked(sh, hash, keyOf(key)) })
}

// scanShard takes a seqlock snapshot of the whole shard: read every
// published bucket, then validate the version. Writers are never
// blocked; the scan retries instead.
func (a *optAccess) scanShard(shard int, prefix string, out []Entry) []Entry {
	sh := &a.e.shards[shard]
	a.count(sh).scans.Add(1)
	base := len(out)
	for spins := 0; ; spins++ {
		v1 := sh.version.Load()
		if v1&1 == 0 {
			out = out[:base]
			for bi := range sh.buckets {
				b := sh.buckets[bi].Load()
				if b == nil {
					continue
				}
				for i, k := range b.keys {
					if hasPrefix(k, prefix) {
						out = append(out, Entry{Key: k, Value: append([]byte(nil), b.vals[i]...)})
					}
				}
			}
			if sh.version.Load() == v1 {
				return out
			}
		}
		if spins%16 == 15 {
			runtime.Gosched()
		}
	}
}

// exportShard is a seqlock snapshot walk over buckets [from, len),
// exactly like scanShard but bounded: it stops at a bucket boundary
// once the entry or byte budget is reached, and the whole chunk
// revalidates against the shard version so a resumed walk never
// observes a half-published bucket. Bucket indices are stable under
// copy-on-write publishes (only bucket contents are rebuilt), so the
// resume cursor survives concurrent writers.
func (a *optAccess) exportShard(shard, from int, pred func(uint64) bool, maxEntries, maxBytes int, out []Entry) (int, []Entry) {
	sh := &a.e.shards[shard]
	a.count(sh).scans.Add(1)
	base := len(out)
	for spins := 0; ; spins++ {
		v1 := sh.version.Load()
		if v1&1 == 0 {
			out = out[:base]
			next, bytes := len(sh.buckets), 0
			for bi := from; bi < len(sh.buckets); bi++ {
				if len(out)-base >= maxEntries || bytes >= maxBytes {
					next = bi
					break
				}
				b := sh.buckets[bi].Load()
				if b == nil {
					continue
				}
				for i, h := range b.hashes {
					if pred(h) {
						out = append(out, Entry{Key: b.keys[i], Value: append([]byte(nil), b.vals[i]...)})
						bytes += entryWireSize(b.keys[i], b.vals[i])
					}
				}
			}
			if sh.version.Load() == v1 {
				return next, out
			}
		}
		if spins%16 == 15 {
			runtime.Gosched()
		}
	}
}

func (a *optAccess) entries(shard int) int {
	return int(a.e.shards[shard].live.Load())
}

func (a *optAccess) stats(shard int) Counters {
	sh := &a.e.shards[shard]
	var c Counters
	for i := range sh.stripes {
		st := &sh.stripes[i]
		c.Gets += st.gets.Load()
		c.Puts += st.puts.Load()
		c.Deletes += st.deletes.Load()
		c.Scans += st.scans.Load()
	}
	return c
}
