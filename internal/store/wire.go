package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The wire protocol is length-prefixed binary frames over any byte
// stream (net.Conn, net.Pipe). A frame is a big-endian uint32 body
// length followed by the body; requests and responses use the same
// framing, so the parser below is shared by server, client and the fuzz
// target.
//
// Request body:
//
//	op      uint8            (OpGet, OpPut, OpDelete, OpScan)
//	keyLen  uint16           key / scan-prefix length
//	key     keyLen bytes
//	PUT:    valLen uint32, val valLen bytes
//	SCAN:   limit  uint32    (0 = unlimited)
//
// Response body:
//
//	status  uint8            (StatusOK, StatusNotFound, StatusError)
//	GET ok:    valLen uint32, val valLen bytes
//	PUT ok:    created uint8 (1 = newly inserted)
//	SCAN ok:   count uint32, then count × (keyLen uint16, key,
//	           valLen uint32, val)
//	error:     msgLen uint16, msg msgLen bytes
//
// Every length is bounded (MaxKeyLen, MaxValueLen, MaxFrame) and the
// parsers reject truncated or over-long input, so a malicious peer can
// make a connection fail but not allocate unboundedly.

// Request opcodes.
const (
	OpGet byte = iota + 1
	OpPut
	OpDelete
	OpScan
)

// Response status codes.
const (
	StatusOK byte = iota
	StatusNotFound
	StatusError
)

// Protocol bounds.
const (
	// MaxKeyLen bounds keys and scan prefixes.
	MaxKeyLen = 1<<16 - 1
	// MaxValueLen bounds a single value.
	MaxValueLen = 1 << 20
	// MaxFrame bounds a whole frame body (scan responses chunk under it).
	MaxFrame = 4 << 20
)

// Wire-format errors.
var (
	ErrFrameTooLarge = errors.New("store: frame exceeds MaxFrame")
	ErrTruncated     = errors.New("store: truncated message")
	ErrTrailingBytes = errors.New("store: trailing bytes after message")
	ErrBadOp         = errors.New("store: unknown opcode")
	ErrKeyTooLong    = errors.New("store: key exceeds MaxKeyLen")
	ErrValueTooLong  = errors.New("store: value exceeds MaxValueLen")
)

// Request is one decoded client request.
type Request struct {
	Op    byte
	Key   string // the scan prefix for OpScan
	Value []byte // OpPut only
	Limit uint32 // OpScan only; 0 = unlimited
}

// Response is one decoded server response.
type Response struct {
	Status  byte
	Created bool    // OpPut
	Value   []byte  // OpGet
	Entries []Entry // OpScan
	Msg     string  // StatusError detail
}

// WriteFrame writes one length-prefixed frame. A *bufio.Writer takes
// the specialized path: byte-at-a-time header writes into the
// already-buffered stream, because a stack hdr array passed through the
// io.Writer interface escapes — one heap allocation per frame on
// exactly the path the pooling work flattened.
func WriteFrame(w io.Writer, body []byte) error {
	if len(body) > MaxFrame {
		return ErrFrameTooLarge
	}
	if bw, ok := w.(*bufio.Writer); ok {
		return writeFrameBuf(bw, body)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// writeFrameBuf is WriteFrame's allocation-free form for buffered
// writers (length already validated).
func writeFrameBuf(bw *bufio.Writer, body []byte) error {
	n := uint32(len(body))
	bw.WriteByte(byte(n >> 24))
	bw.WriteByte(byte(n >> 16))
	bw.WriteByte(byte(n >> 8))
	if err := bw.WriteByte(byte(n)); err != nil {
		return err
	}
	_, err := bw.Write(body)
	return err
}

// ReadFrame reads one frame body, reusing buf when it is large enough.
// Like WriteFrame, a *bufio.Reader reads the header without the escape
// allocation of a stack array passed through io.Reader.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var n uint32
	if br, ok := r.(*bufio.Reader); ok {
		for i := 0; i < 4; i++ {
			b, err := br.ReadByte()
			if err != nil {
				if i > 0 && err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return nil, err
			}
			n = n<<8 | uint32(b)
		}
	} else {
		var hdr [4]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, err
		}
		n = binary.BigEndian.Uint32(hdr[:])
	}
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// AppendRequest encodes req onto dst and returns the extended slice.
func AppendRequest(dst []byte, req Request) ([]byte, error) {
	if len(req.Key) > MaxKeyLen {
		return dst, ErrKeyTooLong
	}
	dst = append(dst, req.Op)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(req.Key)))
	dst = append(dst, req.Key...)
	switch req.Op {
	case OpGet, OpDelete:
	case OpPut:
		if len(req.Value) > MaxValueLen {
			return dst, ErrValueTooLong
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(req.Value)))
		dst = append(dst, req.Value...)
	case OpScan:
		dst = binary.BigEndian.AppendUint32(dst, req.Limit)
	default:
		return dst, ErrBadOp
	}
	return dst, nil
}

// RequestView is a zero-copy decoded scalar request: Key and Value
// alias the frame body they were parsed from, so a view is only valid
// until that buffer is reused or returned to a pool. It is the server
// hot path's decode shape — the owning Request (string key, copied
// value) exists for everything that must outlive the frame: batch
// sub-requests, router forwarding, migration payloads.
type RequestView struct {
	Op    byte
	Key   []byte // aliases the frame; the scan prefix for OpScan
	Value []byte // aliases the frame; OpPut only
	Limit uint32 // OpScan only; 0 = unlimited
}

// ParseRequestView decodes one request body without copying key or
// value, with exactly ParseRequest's validation.
func ParseRequestView(body []byte) (RequestView, error) {
	p := parser{buf: body}
	v := p.requestView()
	if err := p.finish(); err != nil {
		return RequestView{}, err
	}
	return v, nil
}

// ParseRequest decodes one request body into an owning Request. It
// rejects unknown opcodes, truncated bodies, oversized fields and
// trailing garbage.
func ParseRequest(body []byte) (Request, error) {
	p := parser{buf: body}
	req := p.request()
	if err := p.finish(); err != nil {
		return Request{}, err
	}
	return req, nil
}

// requestView decodes one scalar request at the cursor (the encoding is
// self-delimiting, so batch bodies concatenate these) with key and
// value aliasing the parsed buffer.
func (p *parser) requestView() RequestView {
	var v RequestView
	v.Op = p.u8()
	v.Key = p.bytes16()
	switch v.Op {
	case OpGet, OpDelete:
	case OpPut:
		v.Value = p.bytes32(MaxValueLen)
	case OpScan:
		v.Limit = p.u32()
	default:
		if p.err == nil {
			p.err = ErrBadOp
		}
	}
	return v
}

// request is requestView plus the copies that make the result owning.
func (p *parser) request() Request {
	v := p.requestView()
	req := Request{Op: v.Op, Key: string(v.Key), Limit: v.Limit}
	if v.Op == OpPut {
		req.Value = append([]byte(nil), v.Value...)
	}
	return req
}

// AppendResponse encodes resp for a request with opcode op.
func AppendResponse(dst []byte, op byte, resp Response) ([]byte, error) {
	dst = append(dst, resp.Status)
	if resp.Status == StatusError {
		msg := resp.Msg
		if len(msg) > MaxKeyLen {
			msg = msg[:MaxKeyLen]
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(msg)))
		return append(dst, msg...), nil
	}
	if resp.Status != StatusOK {
		return dst, nil
	}
	switch op {
	case OpGet:
		if len(resp.Value) > MaxValueLen {
			return dst, ErrValueTooLong
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(resp.Value)))
		dst = append(dst, resp.Value...)
	case OpPut:
		if resp.Created {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case OpDelete:
	case OpScan:
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(resp.Entries)))
		for _, e := range resp.Entries {
			if len(e.Key) > MaxKeyLen {
				return dst, ErrKeyTooLong
			}
			if len(e.Value) > MaxValueLen {
				return dst, ErrValueTooLong
			}
			dst = binary.BigEndian.AppendUint16(dst, uint16(len(e.Key)))
			dst = append(dst, e.Key...)
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(e.Value)))
			dst = append(dst, e.Value...)
		}
	default:
		return dst, ErrBadOp
	}
	return dst, nil
}

// ParseResponse decodes one response body for a request with opcode op.
func ParseResponse(op byte, body []byte) (Response, error) {
	p := parser{buf: body}
	resp := p.response(op)
	if err := p.finish(); err != nil {
		return Response{}, err
	}
	return resp, nil
}

// response decodes one scalar response at the cursor for a request with
// opcode op (self-delimiting, shared with the batch response parser).
func (p *parser) response(op byte) Response {
	var resp Response
	resp.Status = p.u8()
	switch {
	case resp.Status == StatusError:
		resp.Msg = string(p.bytes16())
	case resp.Status == StatusNotFound:
	case resp.Status == StatusOK:
		switch op {
		case OpGet:
			resp.Value = append([]byte(nil), p.bytes32(MaxValueLen)...)
		case OpPut:
			switch flag := p.u8(); flag {
			case 0:
			case 1:
				resp.Created = true
			default:
				if p.err == nil {
					p.err = fmt.Errorf("store: invalid created flag %d", flag)
				}
			}
		case OpDelete:
		case OpScan:
			resp.Entries = p.scanEntries()
		default:
			if p.err == nil {
				p.err = ErrBadOp
			}
		}
	default:
		if p.err == nil {
			p.err = fmt.Errorf("store: unknown status %d", resp.Status)
		}
	}
	return resp
}

// scanEntries decodes a scan response's entry list. Instead of one
// string and one slice allocation per entry, the remaining body is
// copied out twice up front — once as the backing string for every key,
// once as the backing array for every value — and the entries point
// into those two blobs. Result slices therefore share backing storage:
// retaining any single entry pins roughly the whole response, which is
// the right trade for scan results that are consumed and dropped.
func (p *parser) scanEntries() []Entry {
	n := p.u32()
	if p.err != nil || n == 0 {
		return nil
	}
	rest := p.buf[p.off:]
	base := p.off
	keyBlob := string(rest)
	valBlob := append([]byte(nil), rest...)
	// Each entry occupies at least its 6 header bytes; cap the
	// preallocation by that so a lying count cannot allocate unboundedly.
	hint := int(n)
	if max := len(rest)/6 + 1; hint > max {
		hint = max
	}
	entries := make([]Entry, 0, hint)
	for i := uint32(0); i < n && p.err == nil; i++ {
		k := p.bytes16()
		v := p.bytes32(MaxValueLen)
		if p.err != nil {
			break
		}
		kStart := p.off - len(v) - 4 - len(k) - base
		e := Entry{Key: keyBlob[kStart : kStart+len(k)]}
		if len(v) > 0 {
			vStart := p.off - len(v) - base
			e.Value = valBlob[vStart : vStart+len(v) : vStart+len(v)]
		}
		entries = append(entries, e)
	}
	return entries
}

// parser is a cursor over a message body; the first failure sticks and
// every later read returns zero values.
type parser struct {
	buf []byte
	off int
	err error
}

func (p *parser) take(n int) []byte {
	if p.err != nil {
		return nil
	}
	if n < 0 || len(p.buf)-p.off < n {
		p.err = ErrTruncated
		return nil
	}
	b := p.buf[p.off : p.off+n]
	p.off += n
	return b
}

func (p *parser) u8() byte {
	b := p.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (p *parser) u16() uint16 {
	b := p.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (p *parser) u32() uint32 {
	b := p.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// bytes16 reads a uint16-prefixed byte string.
func (p *parser) bytes16() []byte { return p.take(int(p.u16())) }

// bytes32 reads a uint32-prefixed byte string bounded by max.
func (p *parser) bytes32(max int) []byte {
	n := p.u32()
	if p.err == nil && n > uint32(max) {
		p.err = ErrValueTooLong
		return nil
	}
	return p.take(int(n))
}

// finish reports the sticky error, or trailing garbage.
func (p *parser) finish() error {
	if p.err != nil {
		return p.err
	}
	if p.off != len(p.buf) {
		return ErrTrailingBytes
	}
	return nil
}
