package store

import (
	"encoding/binary"
	"errors"
)

// Migration extensions of the wire protocol: the frames that move a key
// range between nodes while traffic keeps flowing. Three frames drive
// the handoff itself and one carries ops across the ownership flip:
//
//	OpMigExport  op uint8, cursor uint64, max uint16,
//	             narcs uint16, narcs × (lo uint64, hi uint64)
//	response:    done uint8, next uint64, count uint16,
//	             count × (keyLen uint16, key, valLen uint32, val)
//
//	OpMigDigest  op uint8, slots uint16,
//	             narcs uint16, narcs × (lo uint64, hi uint64)
//	response:    count uint16, count × digest uint64
//
//	OpMigApply   op uint8, nputs uint16, nputs × (keyLen uint16, key,
//	             valLen uint32, val), ndels uint16, ndels × (keyLen
//	             uint16, key)
//	response:    applied uint32
//
//	OpForward    op uint8, hops uint8, inner scalar request body
//	response:    the inner op's plain scalar response
//
// An arc is a half-open interval (lo, hi] of ring positions (mixed key
// hashes) with modular wraparound, so one arc spans the 2^64 wrap; an
// empty arc (lo == hi) is rejected. EXPORT walks the ex-owner's table
// in whole-bucket steps — cursor is an opaque resume token, done=1 means
// the range is exhausted (and next must be 0). DIGEST folds every entry
// in the arcs into slots order-independent checksums so owner and
// ex-owner compare a range without shipping it. APPLY lands entries
// directly on the serving node's local store, bypassing any installed
// Router — the one frame allowed to write to a node that does not own
// the keys yet. FORWARD wraps a point op that arrived at a node which
// no longer (or does not yet) own the key; hops bounds re-forwarding so
// routing disagreements cannot loop. Like the batch frames, parsers are
// strict and canonical: anything that parses re-encodes byte-identically.

// Migration opcodes (batch ones are 5..8 in wire_batch.go).
const (
	// OpMigExport streams one chunk of a key range off its ex-owner.
	OpMigExport byte = iota + OpTagged + 1
	// OpMigDigest returns order-independent range checksums.
	OpMigDigest
	// OpMigApply lands migrated entries/deletes on the local store.
	OpMigApply
	// OpForward wraps a point op routed on behalf of another node.
	OpForward
)

// Migration protocol bounds.
const (
	// MaxMigrateArcs bounds the arcs of one export/digest frame.
	MaxMigrateArcs = 4096
	// MaxDigestSlots bounds the checksum slots of one digest frame.
	MaxDigestSlots = 4096
	// MaxForwardHops bounds re-forwarding of one op. Forwarding re-reads
	// the shared ring at every hop, so two hops settle any single resize;
	// the cap only exists to turn a routing bug into an error instead of
	// a loop.
	MaxForwardHops = 8
)

// Migration wire-format errors.
var (
	ErrBadArc      = errors.New("store: empty migration arc")
	ErrTooManyArcs = errors.New("store: too many migration arcs")
	ErrBadSlots    = errors.New("store: digest slot count out of range")
	ErrForwardOp   = errors.New("store: forwarded op must be a point op")
	ErrHopLimit    = errors.New("store: forward hop limit exceeded")
	ErrBadCursor   = errors.New("store: final export chunk carries a cursor")
)

// Arc is a half-open interval (Lo, Hi] of ring positions with modular
// wraparound: Lo=6,Hi=2 covers (6..max] and [0..2]. Lo == Hi is the
// empty arc and is rejected on the wire.
type Arc struct {
	Lo, Hi uint64
}

// Contains reports whether ring position pos lies in (a.Lo, a.Hi],
// wrapping modulo 2^64.
func (a Arc) Contains(pos uint64) bool {
	d := pos - a.Lo
	return d != 0 && d <= a.Hi-a.Lo
}

// MigrateRequest is one decoded migration request. Fields beyond Op are
// per-opcode: Cursor/Max/Arcs for EXPORT, Slots/Arcs for DIGEST,
// Puts/Dels for APPLY, Hops/Inner for FORWARD.
type MigrateRequest struct {
	Op     byte
	Cursor uint64   // OpMigExport: resume token (0 starts the walk)
	Max    uint16   // OpMigExport: max entries in the response chunk
	Slots  uint16   // OpMigDigest: checksum slot count
	Arcs   []Arc    // OpMigExport, OpMigDigest
	Puts   []Entry  // OpMigApply
	Dels   []string // OpMigApply
	Hops   byte     // OpForward: hops taken so far
	Inner  Request  // OpForward: the forwarded point op
}

// MigrateResponse is one decoded migration response. Forwarded ops
// answer with the inner op's plain scalar Response, not this type.
type MigrateResponse struct {
	Status  byte
	Msg     string   // StatusError detail
	Done    bool     // OpMigExport: range exhausted
	Next    uint64   // OpMigExport: resume token (0 when done)
	Entries []Entry  // OpMigExport
	Digests []uint64 // OpMigDigest
	Applied uint32   // OpMigApply
}

func appendArcs(dst []byte, arcs []Arc) ([]byte, error) {
	if len(arcs) == 0 || len(arcs) > MaxMigrateArcs {
		return dst, ErrTooManyArcs
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(arcs)))
	for _, a := range arcs {
		if a.Lo == a.Hi {
			return dst, ErrBadArc
		}
		dst = binary.BigEndian.AppendUint64(dst, a.Lo)
		dst = binary.BigEndian.AppendUint64(dst, a.Hi)
	}
	return dst, nil
}

func (p *parser) arcs() []Arc {
	n := int(p.u16())
	if p.err == nil && (n == 0 || n > MaxMigrateArcs) {
		p.err = ErrTooManyArcs
	}
	var arcs []Arc
	for i := 0; i < n && p.err == nil; i++ {
		a := Arc{Lo: p.u64(), Hi: p.u64()}
		if p.err == nil && a.Lo == a.Hi {
			p.err = ErrBadArc
		}
		arcs = append(arcs, a)
	}
	return arcs
}

func appendEntries16(dst []byte, entries []Entry) ([]byte, error) {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(entries)))
	for _, e := range entries {
		var err error
		if dst, err = appendKey(dst, e.Key); err != nil {
			return dst, err
		}
		if len(e.Value) > MaxValueLen {
			return dst, ErrValueTooLong
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(e.Value)))
		dst = append(dst, e.Value...)
	}
	return dst, nil
}

func (p *parser) entries16(max int) []Entry {
	n := int(p.u16())
	if p.err == nil && n > max {
		p.err = ErrBatchTooLarge
	}
	var entries []Entry
	for i := 0; i < n && p.err == nil; i++ {
		k := string(p.bytes16())
		v := append([]byte(nil), p.bytes32(MaxValueLen)...)
		entries = append(entries, Entry{Key: k, Value: v})
	}
	return entries
}

// AppendMigrateRequest encodes req onto dst.
func AppendMigrateRequest(dst []byte, req MigrateRequest) ([]byte, error) {
	dst = append(dst, req.Op)
	switch req.Op {
	case OpMigExport:
		if req.Max == 0 {
			return dst, ErrBatchTooLarge
		}
		dst = binary.BigEndian.AppendUint64(dst, req.Cursor)
		dst = binary.BigEndian.AppendUint16(dst, req.Max)
		return appendArcs(dst, req.Arcs)
	case OpMigDigest:
		if req.Slots == 0 || req.Slots > MaxDigestSlots {
			return dst, ErrBadSlots
		}
		dst = binary.BigEndian.AppendUint16(dst, req.Slots)
		return appendArcs(dst, req.Arcs)
	case OpMigApply:
		if len(req.Puts)+len(req.Dels) > MaxBatchOps {
			return dst, ErrBatchTooLarge
		}
		var err error
		if dst, err = appendEntries16(dst, req.Puts); err != nil {
			return dst, err
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(req.Dels)))
		for _, k := range req.Dels {
			if dst, err = appendKey(dst, k); err != nil {
				return dst, err
			}
		}
		return dst, nil
	case OpForward:
		if req.Hops > MaxForwardHops {
			return dst, ErrHopLimit
		}
		switch req.Inner.Op {
		case OpGet, OpPut, OpDelete:
		default:
			return dst, ErrForwardOp
		}
		dst = append(dst, req.Hops)
		return AppendRequest(dst, req.Inner)
	default:
		return dst, ErrBadOp
	}
}

// ParseMigrateRequest decodes one migration request body, rejecting
// unknown opcodes, empty arcs, truncation and trailing garbage.
func ParseMigrateRequest(body []byte) (MigrateRequest, error) {
	p := parser{buf: body}
	var req MigrateRequest
	req.Op = p.u8()
	switch req.Op {
	case OpMigExport:
		req.Cursor = p.u64()
		req.Max = p.u16()
		if p.err == nil && req.Max == 0 {
			p.err = ErrBatchTooLarge
		}
		req.Arcs = p.arcs()
	case OpMigDigest:
		req.Slots = p.u16()
		if p.err == nil && (req.Slots == 0 || req.Slots > MaxDigestSlots) {
			p.err = ErrBadSlots
		}
		req.Arcs = p.arcs()
	case OpMigApply:
		req.Puts = p.entries16(MaxBatchOps)
		n := int(p.u16())
		if p.err == nil && len(req.Puts)+n > MaxBatchOps {
			p.err = ErrBatchTooLarge
		}
		for i := 0; i < n && p.err == nil; i++ {
			req.Dels = append(req.Dels, string(p.bytes16()))
		}
	case OpForward:
		req.Hops = p.u8()
		if p.err == nil && req.Hops > MaxForwardHops {
			p.err = ErrHopLimit
		}
		req.Inner = p.request()
		switch req.Inner.Op {
		case OpGet, OpPut, OpDelete:
		default:
			if p.err == nil {
				p.err = ErrForwardOp
			}
		}
	default:
		if p.err == nil {
			p.err = ErrBadOp
		}
	}
	if err := p.finish(); err != nil {
		return MigrateRequest{}, err
	}
	return req, nil
}

// AppendMigrateResponse encodes resp for a migration request with
// opcode op (OpMigExport, OpMigDigest or OpMigApply; forwarded ops use
// AppendResponse with the inner opcode).
func AppendMigrateResponse(dst []byte, op byte, resp MigrateResponse) ([]byte, error) {
	dst = append(dst, resp.Status)
	if resp.Status == StatusError {
		msg := resp.Msg
		if len(msg) > MaxKeyLen {
			msg = msg[:MaxKeyLen]
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(msg)))
		return append(dst, msg...), nil
	}
	if resp.Status != StatusOK {
		return dst, ErrBadOp
	}
	switch op {
	case OpMigExport:
		if resp.Done {
			if resp.Next != 0 {
				return dst, ErrBadCursor
			}
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = binary.BigEndian.AppendUint64(dst, resp.Next)
		if len(resp.Entries) > MaxBatchOps {
			return dst, ErrBatchTooLarge
		}
		return appendEntries16(dst, resp.Entries)
	case OpMigDigest:
		if len(resp.Digests) == 0 || len(resp.Digests) > MaxDigestSlots {
			return dst, ErrBadSlots
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(resp.Digests)))
		for _, d := range resp.Digests {
			dst = binary.BigEndian.AppendUint64(dst, d)
		}
		return dst, nil
	case OpMigApply:
		return binary.BigEndian.AppendUint32(dst, resp.Applied), nil
	default:
		return dst, ErrBadOp
	}
}

// ParseMigrateResponse decodes one migration response body for a
// request with opcode op.
func ParseMigrateResponse(op byte, body []byte) (MigrateResponse, error) {
	p := parser{buf: body}
	var resp MigrateResponse
	resp.Status = p.u8()
	switch {
	case resp.Status == StatusError:
		resp.Msg = string(p.bytes16())
	case resp.Status == StatusOK:
		switch op {
		case OpMigExport:
			switch flag := p.u8(); flag {
			case 0:
			case 1:
				resp.Done = true
			default:
				if p.err == nil {
					p.err = ErrBadOp
				}
			}
			resp.Next = p.u64()
			if p.err == nil && resp.Done && resp.Next != 0 {
				p.err = ErrBadCursor
			}
			resp.Entries = p.entries16(MaxBatchOps)
		case OpMigDigest:
			n := int(p.u16())
			if p.err == nil && (n == 0 || n > MaxDigestSlots) {
				p.err = ErrBadSlots
			}
			for i := 0; i < n && p.err == nil; i++ {
				resp.Digests = append(resp.Digests, p.u64())
			}
		case OpMigApply:
			resp.Applied = p.u32()
		default:
			if p.err == nil {
				p.err = ErrBadOp
			}
		}
	default:
		if p.err == nil {
			p.err = ErrBadOp
		}
	}
	if err := p.finish(); err != nil {
		return MigrateResponse{}, err
	}
	return resp, nil
}

func (p *parser) u64() uint64 {
	b := p.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}
