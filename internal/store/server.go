package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// connScratch pools the per-connection frame buffers (read body and
// response encode). A buffer's ownership rule is strict: it belongs to
// exactly one connection between Get and Put, and nothing a request
// handler produces may alias it past the response write — engines copy
// on insert, parse paths copy out, and the owning Request exists for
// anything (routing, migration) that must outlive the frame.
var connScratch = sync.Pool{New: func() any { return new([]byte) }}

// Server serves the wire protocol over byte streams. One goroutine per
// connection owns a Handle, so every lock token stays goroutine-local;
// connections are striped over NUMA nodes round-robin for the
// hierarchical lock algorithms.
type Server struct {
	store  *Store
	nodes  int
	next   atomic.Uint64 // round-robin NUMA-node assignment
	router Router
}

// Router intercepts point ops so a layer above the store (the cluster's
// per-node migration filter) can decide where each executes: locally
// through the handle, or forwarded to the node that owns the key now.
// Scans and the migration frames bypass it — scans are fanned out by
// clients and always read the local store, and migration streaming must
// reach the local store even (especially) when the ring says the keys
// belong elsewhere.
type Router interface {
	// Route executes one point op that has taken hops forwarding hops so
	// far (0 for a freshly arrived op).
	Route(h *Handle, req Request, hops int) Response
	// RouteBatch executes a batch's sub-ops, routing each.
	RouteBatch(h *Handle, reqs []Request) []Response
}

// SetRouter installs r on the server. It must be called before any
// connection is served.
func (sv *Server) SetRouter(r Router) { sv.router = r }

// NewServer wraps a store. nodes is the NUMA-node count to stripe
// connections over (values below 1 mean 1).
func NewServer(s *Store, nodes int) *Server {
	if nodes < 1 {
		nodes = 1
	}
	return &Server{store: s, nodes: nodes}
}

// Store returns the served store.
func (sv *Server) Store() *Store { return sv.store }

// Serve accepts connections until ln fails, handling each on its own
// goroutine. It returns the accept error (net.ErrClosed after Close).
func (sv *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			_ = sv.ServeConn(conn)
		}()
	}
}

// ServeConn handles one connection until EOF or failure. A malformed
// request gets a StatusError response and closes the stream (framing
// cannot be trusted after a parse error); store operations themselves
// cannot fail. Requests are answered strictly in arrival order —
// together with the tag echo this is the ordering guarantee the
// pipelined client's FIFO matching relies on. Responses are flushed
// lazily: while more complete frames are already buffered, the reply
// stays in the write buffer, so a pipelined burst is answered with a
// coalesced burst.
func (sv *Server) ServeConn(conn io.ReadWriter) error {
	seq := int(sv.next.Add(1) - 1)
	node := seq % sv.nodes
	if pl := sv.store.Placement(); pl != nil {
		// Under a placement, connections stripe over the LLC domains
		// instead of abstract node indices: the goroutine pins itself to
		// its domain for the connection's lifetime, and the hierarchical
		// locks get that domain's actual memory node as their NUMA hint —
		// so a connection's lock spinning, frame buffers and shard visits
		// all agree on where "local" is.
		if domain, memNode := pl.ConnDomain(seq); domain >= 0 {
			undo := pl.Pin(domain)
			defer undo()
			node = memNode % sv.nodes
		}
	}
	h := sv.store.NewHandle(node)
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	inp := connScratch.Get().(*[]byte)
	outp := connScratch.Get().(*[]byte)
	in, out := *inp, *outp
	defer func() {
		*inp = in[:0]
		connScratch.Put(inp)
		*outp = out[:0]
		connScratch.Put(outp)
	}()
	for {
		body, err := ReadFrame(br, in)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		in = body[:0]
		out = out[:0]

		// Peel an optional tag; the response echoes it first.
		inner := body
		if len(body) > 0 && body[0] == OpTagged {
			tag, rest, terr := ParseTag(body)
			if terr != nil {
				return sv.reject(bw, out, terr)
			}
			inner = rest
			out = binary.BigEndian.AppendUint32(out, tag)
		}

		if len(inner) > 0 && (inner[0] == OpBatch || inner[0] == OpMGet || inner[0] == OpMPut) {
			b, err := ParseBatchRequest(inner)
			if err != nil {
				return sv.reject(bw, out, err) // out keeps the echoed tag
			}
			resps := h.ExecBatch
			if sv.router != nil {
				resps = func(reqs []Request) []Response { return sv.router.RouteBatch(h, reqs) }
			}
			out = appendBatchBounded(out, b.Reqs, resps(b.Reqs))
		} else if len(inner) > 0 && inner[0] >= OpMigExport && inner[0] <= OpForward {
			mreq, err := ParseMigrateRequest(inner)
			if err != nil {
				return sv.reject(bw, out, err) // out keeps the echoed tag
			}
			out, err = sv.executeMigrate(h, mreq, out)
			if err != nil {
				return err
			}
		} else {
			view, err := ParseRequestView(inner)
			if err != nil {
				return sv.reject(bw, out, err) // out keeps the echoed tag
			}
			if sv.router != nil && view.Op >= OpGet && view.Op <= OpDelete {
				// Routing may carry the op beyond this frame's lifetime
				// (forwarding to another node), so it gets an owning
				// Request — the same copies ParseRequest would have made.
				req := Request{Op: view.Op, Key: string(view.Key)}
				if view.Op == OpPut {
					req.Value = append([]byte(nil), view.Value...)
				}
				resp := sv.router.Route(h, req, 0)
				out, err = AppendResponse(out, req.Op, resp)
			} else {
				out, err = sv.executeView(h, view, out)
			}
			if err != nil {
				return err
			}
		}
		if err := WriteFrame(bw, out); err != nil {
			return err
		}
		if br.Buffered() >= 4 {
			continue // more requests already in hand: batch the flush
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

// reject sends the terminal StatusError response for an unparseable
// request and reports why the connection is closing.
func (sv *Server) reject(bw *bufio.Writer, out []byte, err error) error {
	out, _ = AppendResponse(out, 0, Response{Status: StatusError, Msg: err.Error()})
	if werr := WriteFrame(bw, out); werr != nil {
		return werr
	}
	if werr := bw.Flush(); werr != nil {
		return werr
	}
	return fmt.Errorf("store: closing connection after bad request: %w", err)
}

// appendBatchBounded encodes a batch response, keeping the frame under
// MaxFrame: 64 bytes are reserved for every not-yet-encoded sub-response,
// and a sub-response that would overflow the remaining budget is replaced
// by a (small) StatusError — so one over-full multi-get degrades its tail
// instead of killing the connection.
func appendBatchBounded(dst []byte, reqs []Request, resps []Response) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(resps)))
	n := len(resps)
	for i := range resps {
		allowed := MaxFrame - 64*(n-1-i)
		mark := len(dst)
		enc, err := AppendResponse(dst, reqs[i].Op, trimResp(reqs[i].Op, resps[i]))
		if err != nil || len(enc) > allowed {
			enc, _ = AppendResponse(dst[:mark], reqs[i].Op,
				Response{Status: StatusError, Msg: MsgBatchOverflow})
		}
		dst = enc
	}
	return dst
}

// trimResp applies the scan frame-trim policy to a sub-response (the
// batch path's per-sub budget check degrades anything that still does
// not fit, so no extra overhead is threaded here).
func trimResp(op byte, r Response) Response {
	if op == OpScan && r.Status == StatusOK {
		r.Entries = trimToFrame(r.Entries, 0)
	}
	return r
}

// PipeClient connects a new in-process client to the server over
// net.Pipe, with the server side on its own goroutine — the transport
// `ssync store`, the harness experiments and the e2e tests share.
func (sv *Server) PipeClient() *Client {
	return NewClient(sv.pipeConn())
}

// PipeAsyncClient is PipeClient's multiplexed sibling: a new async
// client with the given in-flight window over net.Pipe.
func (sv *Server) PipeAsyncClient(window int) *AsyncClient {
	return NewAsyncClient(sv.pipeConn(), window)
}

func (sv *Server) pipeConn() net.Conn {
	clientEnd, serverEnd := net.Pipe()
	go func() {
		defer serverEnd.Close()
		_ = sv.ServeConn(serverEnd)
	}()
	return clientEnd
}

// executeView runs one zero-copy scalar request against the handle,
// encoding the response directly onto out (which already carries the
// echoed tag; its length is the overhead a trimmed scan must respect).
// For get/put/delete nothing on this path allocates in steady state:
// the key stays a frame-aliasing byte slice all the way into the
// engine, and a get's value is appended by the engine straight into
// the response buffer behind a status byte and length placeholder.
func (sv *Server) executeView(h *Handle, req RequestView, out []byte) ([]byte, error) {
	switch req.Op {
	case OpGet:
		mark := len(out)
		out = append(out, StatusOK, 0, 0, 0, 0)
		ext, ok := h.GetBytes(req.Key, out)
		if !ok {
			return append(ext[:mark], StatusNotFound), nil
		}
		n := len(ext) - mark - 5
		if n > MaxValueLen {
			// Matches AppendResponse's bound for values stored through a
			// direct handle, which the wire's parse limit never saw.
			return out, ErrValueTooLong
		}
		binary.BigEndian.PutUint32(ext[mark+1:mark+5], uint32(n))
		return ext, nil
	case OpPut:
		created := byte(0)
		if h.PutBytes(req.Key, req.Value) {
			created = 1
		}
		return append(out, StatusOK, created), nil
	case OpDelete:
		if h.DeleteBytes(req.Key) {
			return append(out, StatusOK), nil
		}
		return append(out, StatusNotFound), nil
	case OpScan:
		entries := h.Scan(string(req.Key), scanLimit(req.Limit))
		return AppendResponse(out, OpScan, Response{Status: StatusOK, Entries: trimToFrame(entries, len(out))})
	}
	return AppendResponse(out, req.Op, Response{Status: StatusError, Msg: ErrBadOp.Error()})
}

// executeMigrate serves the migration frames. EXPORT, DIGEST and APPLY
// hit the local store directly — never the Router — because the
// migration driver deliberately reads and writes nodes the ring does
// not route to. FORWARD goes through the Router when one is installed
// (the whole point of the frame); without one the op just executes
// locally, which keeps a store-only deployment honest.
func (sv *Server) executeMigrate(h *Handle, mreq MigrateRequest, out []byte) ([]byte, error) {
	switch mreq.Op {
	case OpMigExport:
		// Budget the chunk so the response frame cannot overflow: entries
		// stop at a bucket boundary under the byte cap, with headroom for
		// the tag, status, cursor and one bucket of overshoot.
		entries, next, done := h.ExportRange(mreq.Cursor, int(mreq.Max), MaxFrame/2, mreq.Arcs)
		resp := MigrateResponse{Status: StatusOK, Done: done, Next: next, Entries: entries}
		enc, err := AppendMigrateResponse(out, mreq.Op, resp)
		if err != nil {
			enc, err = AppendMigrateResponse(out, mreq.Op, MigrateResponse{Status: StatusError, Msg: err.Error()})
		}
		return enc, err
	case OpMigDigest:
		digests := h.DigestRange(mreq.Arcs, int(mreq.Slots))
		return AppendMigrateResponse(out, mreq.Op, MigrateResponse{Status: StatusOK, Digests: digests})
	case OpMigApply:
		applied := h.ApplyMigration(mreq.Puts, mreq.Dels)
		return AppendMigrateResponse(out, mreq.Op, MigrateResponse{Status: StatusOK, Applied: uint32(applied)})
	case OpForward:
		var resp Response
		if sv.router != nil {
			resp = sv.router.Route(h, mreq.Inner, int(mreq.Hops))
		} else {
			resp = h.Exec(mreq.Inner)
		}
		return AppendResponse(out, mreq.Inner.Op, resp)
	}
	return out, ErrBadOp
}

// trimToFrame drops trailing scan entries until the encoded response
// (overhead + status + count + per-entry headers and payloads) fits one
// frame.
func trimToFrame(entries []Entry, overhead int) []Entry {
	size := overhead + 1 + 4
	for i, e := range entries {
		size += 2 + len(e.Key) + 4 + len(e.Value)
		if size > MaxFrame {
			return entries[:i]
		}
	}
	return entries
}
