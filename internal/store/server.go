package store

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
)

// Server serves the wire protocol over byte streams. One goroutine per
// connection owns a Handle, so every lock token stays goroutine-local;
// connections are striped over NUMA nodes round-robin for the
// hierarchical lock algorithms.
type Server struct {
	store *Store
	nodes int
	next  atomic.Uint64 // round-robin NUMA-node assignment
}

// NewServer wraps a store. nodes is the NUMA-node count to stripe
// connections over (values below 1 mean 1).
func NewServer(s *Store, nodes int) *Server {
	if nodes < 1 {
		nodes = 1
	}
	return &Server{store: s, nodes: nodes}
}

// Store returns the served store.
func (sv *Server) Store() *Store { return sv.store }

// Serve accepts connections until ln fails, handling each on its own
// goroutine. It returns the accept error (net.ErrClosed after Close).
func (sv *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			_ = sv.ServeConn(conn)
		}()
	}
}

// ServeConn handles one connection until EOF or failure. A malformed
// request gets a StatusError response and closes the stream (framing
// cannot be trusted after a parse error); store operations themselves
// cannot fail.
func (sv *Server) ServeConn(conn io.ReadWriter) error {
	node := int(sv.next.Add(1)-1) % sv.nodes
	h := sv.store.NewHandle(node)
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var in, out []byte
	for {
		body, err := ReadFrame(br, in)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		in = body[:0]
		req, err := ParseRequest(body)
		if err != nil {
			out = out[:0]
			out, _ = AppendResponse(out, 0, Response{Status: StatusError, Msg: err.Error()})
			if werr := WriteFrame(bw, out); werr != nil {
				return werr
			}
			if werr := bw.Flush(); werr != nil {
				return werr
			}
			return fmt.Errorf("store: closing connection after bad request: %w", err)
		}
		resp := sv.execute(h, req)
		out = out[:0]
		out, err = AppendResponse(out, req.Op, resp)
		if err != nil {
			return err
		}
		if err := WriteFrame(bw, out); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

// PipeClient connects a new in-process client to the server over
// net.Pipe, with the server side on its own goroutine — the transport
// `ssync store`, the harness experiments and the e2e tests share.
func (sv *Server) PipeClient() *Client {
	clientEnd, serverEnd := net.Pipe()
	go func() {
		defer serverEnd.Close()
		_ = sv.ServeConn(serverEnd)
	}()
	return NewClient(clientEnd)
}

// execute runs one parsed request against the handle.
func (sv *Server) execute(h *Handle, req Request) Response {
	switch req.Op {
	case OpGet:
		v, ok := h.Get(req.Key)
		if !ok {
			return Response{Status: StatusNotFound}
		}
		return Response{Status: StatusOK, Value: v}
	case OpPut:
		created := h.Put(req.Key, req.Value)
		return Response{Status: StatusOK, Created: created}
	case OpDelete:
		if !h.Delete(req.Key) {
			return Response{Status: StatusNotFound}
		}
		return Response{Status: StatusOK}
	case OpScan:
		limit := int(req.Limit)
		entries := h.Scan(req.Key, limit)
		return Response{Status: StatusOK, Entries: trimToFrame(entries)}
	}
	return Response{Status: StatusError, Msg: ErrBadOp.Error()}
}

// trimToFrame drops trailing scan entries until the encoded response fits
// one frame (status + count + per-entry headers and payloads).
func trimToFrame(entries []Entry) []Entry {
	size := 1 + 4
	for i, e := range entries {
		size += 2 + len(e.Key) + 4 + len(e.Value)
		if size > MaxFrame {
			return entries[:i]
		}
	}
	return entries
}
