package store

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestArcContains(t *testing.T) {
	plain := Arc{Lo: 100, Hi: 200}
	for pos, want := range map[uint64]bool{100: false, 101: true, 200: true, 201: false, 50: false} {
		if plain.Contains(pos) != want {
			t.Errorf("(100,200].Contains(%d) = %v, want %v", pos, !want, want)
		}
	}
	// A wrapping arc covers the 2^64 seam.
	wrap := Arc{Lo: ^uint64(0) - 10, Hi: 10}
	for pos, want := range map[uint64]bool{^uint64(0) - 10: false, ^uint64(0): true, 0: true, 10: true, 11: false, 500: false} {
		if wrap.Contains(pos) != want {
			t.Errorf("wrap.Contains(%d) = %v, want %v", pos, !want, want)
		}
	}
	// The empty arc contains nothing.
	for _, pos := range []uint64{0, 7, ^uint64(0)} {
		if (Arc{Lo: 7, Hi: 7}).Contains(pos) {
			t.Errorf("empty arc contains %d", pos)
		}
	}
}

func TestMigrateRequestRoundTrip(t *testing.T) {
	reqs := []MigrateRequest{
		{Op: OpMigExport, Cursor: 0, Max: 128, Arcs: []Arc{{Lo: 1, Hi: 9}}},
		{Op: OpMigExport, Cursor: 42, Max: 1, Arcs: []Arc{{Lo: 9, Hi: 1}, {Lo: 100, Hi: 200}}},
		{Op: OpMigDigest, Slots: 64, Arcs: []Arc{{Lo: 5, Hi: 4}}},
		{Op: OpMigApply, Puts: []Entry{{Key: "k", Value: []byte("v")}, {Key: "", Value: nil}}, Dels: []string{"gone"}},
		{Op: OpMigApply},
		{Op: OpForward, Hops: 2, Inner: Request{Op: OpPut, Key: "k", Value: []byte("v")}},
		{Op: OpForward, Inner: Request{Op: OpGet, Key: "k"}},
	}
	for _, req := range reqs {
		body, err := AppendMigrateRequest(nil, req)
		if err != nil {
			t.Fatalf("encode %+v: %v", req, err)
		}
		got, err := ParseMigrateRequest(body)
		if err != nil {
			t.Fatalf("parse %+v: %v", req, err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Fatalf("round trip mangled %+v into %+v", req, got)
		}
	}
}

func TestMigrateResponseRoundTrip(t *testing.T) {
	cases := []struct {
		op   byte
		resp MigrateResponse
	}{
		{OpMigExport, MigrateResponse{Status: StatusOK, Next: 7, Entries: []Entry{{Key: "k", Value: []byte("v")}}}},
		{OpMigExport, MigrateResponse{Status: StatusOK, Done: true}},
		{OpMigDigest, MigrateResponse{Status: StatusOK, Digests: []uint64{1, 0, 0xDEAD}}},
		{OpMigApply, MigrateResponse{Status: StatusOK, Applied: 99}},
		{OpMigApply, MigrateResponse{Status: StatusError, Msg: "boom"}},
	}
	for _, c := range cases {
		body, err := AppendMigrateResponse(nil, c.op, c.resp)
		if err != nil {
			t.Fatalf("encode %+v: %v", c.resp, err)
		}
		got, err := ParseMigrateResponse(c.op, body)
		if err != nil {
			t.Fatalf("parse %+v: %v", c.resp, err)
		}
		if !reflect.DeepEqual(got, c.resp) {
			t.Fatalf("round trip mangled %+v into %+v", c.resp, got)
		}
	}
}

func TestMigrateRejects(t *testing.T) {
	// Empty arcs, zero arcs, zero chunk size, bad digest slots.
	if _, err := AppendMigrateRequest(nil, MigrateRequest{Op: OpMigExport, Max: 8, Arcs: []Arc{{Lo: 3, Hi: 3}}}); !errors.Is(err, ErrBadArc) {
		t.Errorf("empty arc: err = %v, want ErrBadArc", err)
	}
	if _, err := AppendMigrateRequest(nil, MigrateRequest{Op: OpMigExport, Max: 8}); !errors.Is(err, ErrTooManyArcs) {
		t.Errorf("no arcs: err = %v, want ErrTooManyArcs", err)
	}
	if _, err := AppendMigrateRequest(nil, MigrateRequest{Op: OpMigExport, Arcs: []Arc{{Lo: 1, Hi: 2}}}); !errors.Is(err, ErrBatchTooLarge) {
		t.Errorf("max=0: err = %v, want ErrBatchTooLarge", err)
	}
	if _, err := AppendMigrateRequest(nil, MigrateRequest{Op: OpMigDigest, Slots: MaxDigestSlots + 1, Arcs: []Arc{{Lo: 1, Hi: 2}}}); !errors.Is(err, ErrBadSlots) {
		t.Errorf("oversized slots: err = %v, want ErrBadSlots", err)
	}
	// Forwarded scans and over-hopped forwards are refused.
	if _, err := AppendMigrateRequest(nil, MigrateRequest{Op: OpForward, Inner: Request{Op: OpScan, Key: "p"}}); !errors.Is(err, ErrForwardOp) {
		t.Errorf("forwarded scan: err = %v, want ErrForwardOp", err)
	}
	if _, err := AppendMigrateRequest(nil, MigrateRequest{Op: OpForward, Hops: MaxForwardHops + 1, Inner: Request{Op: OpGet, Key: "k"}}); !errors.Is(err, ErrHopLimit) {
		t.Errorf("hop overflow: err = %v, want ErrHopLimit", err)
	}
	// Scalar and batch bodies are not migration frames.
	for _, body := range [][]byte{{OpGet, 0, 1, 'k'}, {OpBatch, 0, 0}, {}} {
		if _, err := ParseMigrateRequest(body); err == nil {
			t.Errorf("body % x parsed as a migration request", body)
		}
	}
	// Truncation and trailing garbage die like the batch frames.
	good, err := AppendMigrateRequest(nil, MigrateRequest{Op: OpMigExport, Max: 8, Arcs: []Arc{{Lo: 1, Hi: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseMigrateRequest(good[:len(good)-1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated export: err = %v, want ErrTruncated", err)
	}
	if _, err := ParseMigrateRequest(append(append([]byte(nil), good...), 'X')); !errors.Is(err, ErrTrailingBytes) {
		t.Errorf("trailing bytes: err = %v, want ErrTrailingBytes", err)
	}
	// A final export chunk cannot carry a resume cursor.
	if _, err := AppendMigrateResponse(nil, OpMigExport, MigrateResponse{Status: StatusOK, Done: true, Next: 9}); !errors.Is(err, ErrBadCursor) {
		t.Errorf("done with cursor: err = %v, want ErrBadCursor", err)
	}
	body := []byte{StatusOK, 1, 0, 0, 0, 0, 0, 0, 0, 9, 0, 0}
	if _, err := ParseMigrateResponse(OpMigExport, body); !errors.Is(err, ErrBadCursor) {
		t.Errorf("parsed done-with-cursor: err = %v, want ErrBadCursor", err)
	}
	// Migration responses have no NOTFOUND shape.
	if _, err := ParseMigrateResponse(OpMigApply, []byte{StatusNotFound}); err == nil {
		t.Error("NotFound migration response must be rejected")
	}
}

// FuzzParseMigrateRequest mirrors FuzzParseBatchRequest (CI runs it):
// arbitrary bytes must never panic, and anything that parses must
// re-encode byte-identically and re-parse to the same request.
func FuzzParseMigrateRequest(f *testing.F) {
	seeds := []MigrateRequest{
		{Op: OpMigExport, Cursor: 3, Max: 16, Arcs: []Arc{{Lo: 9, Hi: 1}}},
		{Op: OpMigDigest, Slots: 8, Arcs: []Arc{{Lo: 1, Hi: 2}, {Lo: 4, Hi: 5}}},
		{Op: OpMigApply, Puts: []Entry{{Key: "k", Value: []byte("v")}}, Dels: []string{"d"}},
		{Op: OpForward, Hops: 1, Inner: Request{Op: OpDelete, Key: "k"}},
	}
	for _, s := range seeds {
		body, err := AppendMigrateRequest(nil, s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	f.Add([]byte{OpMigExport, 0xFF})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := ParseMigrateRequest(body)
		if err != nil {
			return
		}
		enc, err := AppendMigrateRequest(nil, req)
		if err != nil {
			t.Fatalf("parsed migrate request fails to encode: %+v: %v", req, err)
		}
		if !bytes.Equal(enc, body) {
			t.Fatalf("non-canonical encoding:\nparsed %+v\nfrom % x\nre-enc % x", req, body, enc)
		}
		again, err := ParseMigrateRequest(enc)
		if err != nil {
			t.Fatalf("re-encoded migrate request fails to parse: %v", err)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("round trip drifted: %+v vs %+v", req, again)
		}
	})
}

// FuzzParseMigrateResponse holds the response parser to the same
// standard; the opcode context comes from the fuzzer too.
func FuzzParseMigrateResponse(f *testing.F) {
	f.Add(OpMigExport, []byte{StatusOK, 0, 0, 0, 0, 0, 0, 0, 0, 7, 0, 1, 0, 1, 'k', 0, 0, 0, 1, 'v'})
	f.Add(OpMigExport, []byte{StatusOK, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(OpMigDigest, []byte{StatusOK, 0, 1, 0, 0, 0, 0, 0, 0, 0, 5})
	f.Add(OpMigApply, []byte{StatusOK, 0, 0, 0, 3})
	f.Add(OpMigApply, []byte{StatusError, 0, 2, 'n', 'o'})
	f.Fuzz(func(t *testing.T, op byte, body []byte) {
		resp, err := ParseMigrateResponse(op, body)
		if err != nil {
			return
		}
		enc, err := AppendMigrateResponse(nil, op, resp)
		if err != nil {
			t.Fatalf("parsed migrate response fails to encode: %+v: %v", resp, err)
		}
		if !bytes.Equal(enc, body) {
			t.Fatalf("non-canonical response:\nparsed %+v\nfrom % x\nre-enc % x", resp, body, enc)
		}
	})
}
