package store

import "ssync/internal/hashkit"

// The store side of live key migration: range export (the streaming
// source), range digests (the anti-entropy comparison), and bulk apply
// (the streaming sink). All three work in terms of ring positions —
// Mix64 of the key's FNV-1a hash, the same position the cluster ring
// assigns owners by — so "the keys node B is about to own" is a set of
// arcs, and no layer above ever enumerates keys to describe a range.

// KeyPos returns key's ring position: Mix64 of its FNV-1a hash. This is
// the position consistent-hash ownership is decided on, and the
// position migration arcs select.
func KeyPos(key string) uint64 { return hashkit.Mix64(hashKey(key)) }

// ArcsContain reports whether any arc contains ring position pos.
func ArcsContain(arcs []Arc, pos uint64) bool {
	for _, a := range arcs {
		if a.Contains(pos) {
			return true
		}
	}
	return false
}

// entryWireSize is the encoded size of one entry in an export/apply
// frame — the byte budget exportShard walks against.
func entryWireSize(key string, value []byte) int {
	return 2 + len(key) + 4 + len(value)
}

// ExportRange walks the store for entries whose ring position falls in
// arcs, resuming from cursor (0 starts; treat the token as opaque). It
// returns one chunk bounded by maxEntries and maxBytes (whole-bucket
// granularity, so a chunk can overshoot by one bucket), the resume
// cursor, and whether the walk completed. Concurrent writes behind the
// cursor are not re-observed — the migration tracker's dirty set, not
// the walk, accounts for them.
func (h *Handle) ExportRange(cursor uint64, maxEntries, maxBytes int, arcs []Arc) (entries []Entry, next uint64, done bool) {
	shards, buckets := h.s.opt.Shards, h.s.opt.Buckets
	total := uint64(shards) * uint64(buckets)
	if maxEntries <= 0 || maxEntries > MaxBatchOps {
		maxEntries = MaxBatchOps
	}
	if maxBytes <= 0 {
		maxBytes = MaxFrame
	}
	pred := func(hash uint64) bool { return ArcsContain(arcs, hashkit.Mix64(hash)) }
	bytes := 0
	for cursor < total {
		shard := int(cursor / uint64(buckets))
		from := int(cursor % uint64(buckets))
		base := len(entries)
		nb, res := h.acc.exportShard(shard, from, pred, maxEntries-len(entries), maxBytes-bytes, entries)
		entries = res
		for _, e := range entries[base:] {
			bytes += entryWireSize(e.Key, e.Value)
		}
		if nb <= from {
			// No forward progress: the engine is shutting down. Report the
			// walk over rather than spinning on a dead shard.
			return entries, 0, true
		}
		cursor = uint64(shard)*uint64(buckets) + uint64(nb)
		if len(entries) >= maxEntries || bytes >= maxBytes {
			break
		}
	}
	if cursor >= total {
		return entries, 0, true
	}
	return entries, cursor, false
}

// DigestRange folds every entry whose ring position falls in arcs into
// slots order-independent checksums: an entry lands in the slot its key
// position picks and XORs in a digest of key and value. Two stores
// holding the same entries for the arcs produce identical digests
// regardless of insertion order or layout, so owner and ex-owner
// compare a migrated range by exchanging slots×8 bytes instead of the
// range itself; a mismatched slot narrows repair to the keys mapping to
// it.
func (h *Handle) DigestRange(arcs []Arc, slots int) []uint64 {
	if slots <= 0 {
		slots = 1
	}
	if slots > MaxDigestSlots {
		slots = MaxDigestSlots
	}
	digests := make([]uint64, slots)
	cursor, done := uint64(0), false
	for !done {
		var chunk []Entry
		chunk, cursor, done = h.ExportRange(cursor, MaxBatchOps, MaxFrame, arcs)
		for _, e := range chunk {
			digests[DigestSlot(e.Key, slots)] ^= EntryDigest(e.Key, e.Value)
		}
	}
	return digests
}

// DigestSlot maps a key to its checksum slot (a pure function of the
// key, so a value change flips exactly one slot on both sides).
func DigestSlot(key string, slots int) int {
	return int(hashkit.Bucket(KeyPos(key), uint64(slots)))
}

// EntryDigest is the per-entry checksum folded into a digest slot. Key
// and value both feed it, remixed so that XOR-accumulation over a range
// is order-independent but still sensitive to any single entry's key,
// presence or value.
func EntryDigest(key string, value []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	hv := uint64(offset64)
	for _, b := range value {
		hv = (hv ^ uint64(b)) * prime64
	}
	hk := hashKey(key)
	return hashkit.Mix64(hk) ^ hashkit.Mix64(hv^hk)
}

// ApplyMigration lands a migrated delta on the local store — puts then
// deletes — through the batch path (one engine visit per touched
// shard). It returns the number of ops applied. This is the sink of
// OpMigApply: it writes directly, never consulting any Router, because
// migration is precisely the window where a node legitimately holds
// keys the ring does not (yet) assign it.
func (h *Handle) ApplyMigration(puts []Entry, dels []string) int {
	reqs := make([]Request, 0, len(puts)+len(dels))
	for _, e := range puts {
		reqs = append(reqs, Request{Op: OpPut, Key: e.Key, Value: e.Value})
	}
	for _, k := range dels {
		reqs = append(reqs, Request{Op: OpDelete, Key: k})
	}
	h.ExecBatch(reqs)
	return len(reqs)
}

// PurgeRange deletes every entry whose ring position falls in arcs,
// returning the count removed. The ex-owner runs this after the
// ownership flip; an aborted migration runs it on the partial copy.
func (h *Handle) PurgeRange(arcs []Arc) int {
	n := 0
	cursor, done := uint64(0), false
	for !done {
		var chunk []Entry
		chunk, cursor, done = h.ExportRange(cursor, MaxBatchOps, MaxFrame, arcs)
		for _, e := range chunk {
			if h.Delete(e.Key) {
				n++
			}
		}
	}
	return n
}

// Exec executes one point request and shapes its response — the single
// per-op unit shared by the wire server and a cluster Router. Scans are
// not point ops; they take the server's chunked path.
func (h *Handle) Exec(req Request) Response {
	switch req.Op {
	case OpGet:
		if v, ok := h.Get(req.Key); ok {
			return Response{Status: StatusOK, Value: v}
		}
		return Response{Status: StatusNotFound}
	case OpPut:
		return Response{Status: StatusOK, Created: h.Put(req.Key, req.Value)}
	case OpDelete:
		if h.Delete(req.Key) {
			return Response{Status: StatusOK}
		}
		return Response{Status: StatusNotFound}
	default:
		return Response{Status: StatusError, Msg: ErrBadOp.Error()}
	}
}
