package store

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"

	"ssync/internal/locks"
	"ssync/internal/workload"
)

func TestClientServerEndToEnd(t *testing.T) {
	s := New(Options{Shards: 4, Buckets: 8, Lock: locks.TICKET})
	srv := NewServer(s, 2)
	c := srv.PipeClient()
	defer c.Close()

	if _, found, err := c.Get("nope"); err != nil || found {
		t.Fatalf("Get(nope) = found %v, err %v", found, err)
	}
	created, err := c.Put("alpha", []byte("one"))
	if err != nil || !created {
		t.Fatalf("Put(alpha) = created %v, err %v", created, err)
	}
	created, err = c.Put("alpha", []byte("two"))
	if err != nil || created {
		t.Fatalf("re-Put(alpha) = created %v, err %v", created, err)
	}
	v, found, err := c.Get("alpha")
	if err != nil || !found || string(v) != "two" {
		t.Fatalf("Get(alpha) = %q, %v, %v", v, found, err)
	}

	for i := 0; i < 10; i++ {
		if _, err := c.Put(fmt.Sprintf("scan-%02d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := c.Scan("scan-", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 || entries[0].Key != "scan-00" || entries[3].Key != "scan-03" {
		t.Fatalf("Scan = %v", entries)
	}

	existed, err := c.Delete("alpha")
	if err != nil || !existed {
		t.Fatalf("Delete(alpha) = %v, %v", existed, err)
	}
	existed, err = c.Delete("alpha")
	if err != nil || existed {
		t.Fatalf("second Delete(alpha) = %v, %v", existed, err)
	}

	// Empty key and empty value are legal on the wire.
	if _, err := c.Put("", nil); err != nil {
		t.Fatalf("Put(empty) err: %v", err)
	}
	v, found, err = c.Get("")
	if err != nil || !found || len(v) != 0 {
		t.Fatalf("Get(empty) = %q, %v, %v", v, found, err)
	}

	// A large value survives the round trip intact.
	big := bytes.Repeat([]byte{0xAB}, 256<<10)
	if _, err := c.Put("big", big); err != nil {
		t.Fatal(err)
	}
	v, _, err = c.Get("big")
	if err != nil || !bytes.Equal(v, big) {
		t.Fatalf("big value corrupted: %d bytes, err %v", len(v), err)
	}
}

func TestClientRejectsOversizedRequests(t *testing.T) {
	s := New(Options{})
	c := NewServer(s, 1).PipeClient()
	defer c.Close()
	if _, err := c.Put("k", make([]byte, MaxValueLen+1)); err == nil {
		t.Fatal("oversized value must fail client-side")
	}
	if _, err := c.Put(strings.Repeat("k", MaxKeyLen+1), nil); err == nil {
		t.Fatal("oversized key must fail client-side")
	}
	// The connection is still usable — nothing was written.
	if _, err := c.Put("ok", []byte("v")); err != nil {
		t.Fatalf("connection unusable after rejected request: %v", err)
	}
}

func TestServerRejectsMalformedFrame(t *testing.T) {
	s := New(Options{})
	srv := NewServer(s, 1)
	clientEnd, serverEnd := net.Pipe()
	done := make(chan error, 1)
	go func() {
		defer serverEnd.Close()
		done <- srv.ServeConn(serverEnd)
	}()
	// A frame whose body is one unknown opcode byte.
	if err := WriteFrame(clientEnd, []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	body, err := ReadFrame(clientEnd, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ParseResponse(0, body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusError || resp.Msg == "" {
		t.Fatalf("want StatusError with a message, got %+v", resp)
	}
	if err := <-done; err == nil {
		t.Fatal("server must close the connection after a bad request")
	}
	clientEnd.Close()
}

// TestWorkloadOverWire drives the full stack exactly as `ssync store`
// does: the scenario engine's ramp/steady phases, zipfian keys and a
// get/put/scan mix, through wire-protocol clients on net.Pipe, then
// checks the books: every op accounted, per-shard counters consistent,
// and the preloaded population still readable.
func TestWorkloadOverWire(t *testing.T) {
	const clients, opsPerClient = 4, 800
	s := New(Options{Shards: 8, Buckets: 16, Lock: locks.MCS, MaxThreads: clients + 2})
	srv := NewServer(s, 2)
	dial := func(int) (workload.Conn, error) {
		return Driver{C: srv.PipeClient()}, nil
	}
	scenario := workload.Scenario{
		Dist:      workload.NewZipfian(512, 0),
		Mix:       workload.Mix{Get: 80, Put: 15, Scan: 5},
		ValueSize: 32,
		ScanLimit: 8,
		Preload:   256,
		Phases:    workload.RampSteady(clients, opsPerClient),
	}
	mon := s.NewHandle(0)
	before := mon.ShardStats()
	phases, err := workload.Run(scenario, dial)
	if err != nil {
		t.Fatal(err)
	}
	after := mon.ShardStats()

	if len(phases) != 2 || phases[0].Name != "ramp" || phases[1].Name != "steady" {
		t.Fatalf("phases = %+v", phases)
	}
	steady := phases[1]
	if steady.Ops != clients*opsPerClient {
		t.Fatalf("steady ops = %d, want %d", steady.Ops, clients*opsPerClient)
	}
	if steady.Hits == 0 {
		t.Fatal("zipfian traffic over a preloaded store produced no hits")
	}

	// Per-shard counter deltas must cover every client op (scans touch
	// all shards, so the totals exceed the op count).
	var issued uint64
	for _, ph := range phases {
		issued += ph.Ops
	}
	var counted uint64
	for i := range after {
		counted += after[i].Sub(before[i]).Total()
	}
	if counted < issued {
		t.Fatalf("shard counters saw %d ops, clients issued %d", counted, issued)
	}

	// The hottest zipfian keys were preloaded and only ever overwritten,
	// never left absent for long: key 0 must be present.
	v, ok := mon.Get(workload.Key(0))
	if ok && len(v) == 0 {
		t.Fatal("key-0 present but empty")
	}
}

// TestServedTCP exercises the accept loop over real TCP when the
// environment allows loopback listening.
func TestServedTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer ln.Close()
	s := New(Options{})
	srv := NewServer(s, 1)
	go func() { _ = srv.Serve(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	defer c.Close()
	if _, err := c.Put("tcp-key", []byte("tcp-val")); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.Get("tcp-key")
	if err != nil || !found || string(v) != "tcp-val" {
		t.Fatalf("Get over TCP = %q, %v, %v", v, found, err)
	}
}
