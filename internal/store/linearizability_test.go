package store

import (
	"encoding/binary"
	"sync"
	"testing"

	"ssync/internal/locks"
	"ssync/internal/workload"
	"ssync/internal/xrand"
)

// Linearizability stress for the sharded store, in the style of
// internal/ssht's: every key has exactly one writer whose versions only
// grow, every reader reads every key, and linearizability then implies
// each reader observes a non-decreasing version per key. The value
// carries the version twice (raw and bit-flipped), so a torn read is
// detectable without an interleaving oracle. Run with -race; CI does.

func versionValue(v uint64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b[:8], v)
	binary.LittleEndian.PutUint64(b[8:], ^v)
	return b
}

func checkVersionValue(t *testing.T, ctx string, b []byte) uint64 {
	t.Helper()
	if len(b) != 16 {
		t.Fatalf("%s: value has %d bytes, want 16", ctx, len(b))
	}
	v := binary.LittleEndian.Uint64(b[:8])
	if binary.LittleEndian.Uint64(b[8:]) != ^v {
		t.Fatalf("%s: torn value % x", ctx, b)
	}
	return v
}

func TestLinearizableStore(t *testing.T) {
	const (
		nWriters = 4
		nReaders = 4
		nKeys    = 32 // few keys over few shards: heavy lock sharing
	)
	ops := 3000
	if testing.Short() {
		ops = 800
	}
	// The sweep includes both hierarchical locks — the shard layer is the
	// system-level test the paper's cohort locks never got in PR 1.
	for _, alg := range []locks.Algorithm{locks.TAS, locks.TICKET, locks.MCS, locks.CLH, locks.HCLH, locks.HTICKET, locks.MUTEX} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			s := New(Options{Shards: 2, Buckets: 4, Lock: alg,
				MaxThreads: nWriters + nReaders + 2, Nodes: 2})
			var wg sync.WaitGroup
			// Writers: key k is owned by writer k%nWriters; versions only
			// grow, and a key is sometimes deleted then reinserted at a
			// higher version.
			for w := 0; w < nWriters; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					h := s.NewHandle(w % 2)
					rng := xrand.New(uint64(w)*7919 + 1)
					version := uint64(1)
					for i := 0; i < ops; i++ {
						k := workload.Key(uint64(w) + nWriters*(rng.Uint64()%(nKeys/nWriters)))
						if rng.Intn(8) == 0 {
							h.Delete(k)
						} else {
							h.Put(k, versionValue(version))
							version++
						}
					}
				}()
			}
			for r := 0; r < nReaders; r++ {
				r := r
				wg.Add(1)
				go func() {
					defer wg.Done()
					h := s.NewHandle(r % 2)
					rng := xrand.New(uint64(r)*104729 + 5)
					var lastSeen [nKeys]uint64
					for i := 0; i < ops; i++ {
						k := rng.Uint64() % nKeys
						v, ok := h.Get(workload.Key(k))
						if !ok {
							continue
						}
						ver := checkVersionValue(t, string(alg), v)
						if ver < lastSeen[k] {
							t.Errorf("%s: key %d went backwards: version %d after %d",
								alg, k, ver, lastSeen[k])
							return
						}
						lastSeen[k] = ver
					}
				}()
			}
			wg.Wait()
		})
	}
}

// TestLinearizableOverWire runs the same monotonic-versions check through
// the wire protocol: writers and readers are real clients of a served
// store, so the framing, parsing and per-connection handles are all on
// the checked path.
func TestLinearizableOverWire(t *testing.T) {
	const (
		nWriters = 3
		nReaders = 3
		nKeys    = 24
	)
	ops := 1200
	if testing.Short() {
		ops = 400
	}
	s := New(Options{Shards: 2, Buckets: 4, Lock: locks.MCS})
	srv := NewServer(s, 2)
	var wg sync.WaitGroup
	for w := 0; w < nWriters; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := srv.PipeClient()
			defer c.Close()
			rng := xrand.New(uint64(w)*6151 + 9)
			version := uint64(1)
			for i := 0; i < ops; i++ {
				k := workload.Key(uint64(w) + nWriters*(rng.Uint64()%(nKeys/nWriters)))
				if rng.Intn(8) == 0 {
					if _, err := c.Delete(k); err != nil {
						t.Error(err)
						return
					}
				} else {
					if _, err := c.Put(k, versionValue(version)); err != nil {
						t.Error(err)
						return
					}
					version++
				}
			}
		}()
	}
	for r := 0; r < nReaders; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := srv.PipeClient()
			defer c.Close()
			rng := xrand.New(uint64(r)*31337 + 2)
			var lastSeen [nKeys]uint64
			for i := 0; i < ops; i++ {
				k := rng.Uint64() % nKeys
				v, ok, err := c.Get(workload.Key(k))
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					continue
				}
				ver := checkVersionValue(t, "wire", v)
				if ver < lastSeen[k] {
					t.Errorf("wire: key %d went backwards: version %d after %d", k, ver, lastSeen[k])
					return
				}
				lastSeen[k] = ver
			}
		}()
	}
	wg.Wait()
}
