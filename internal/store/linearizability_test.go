package store

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"ssync/internal/arch"
	"ssync/internal/locks"
	"ssync/internal/store/linearize"
	"ssync/internal/topo"
	"ssync/internal/workload"
	"ssync/internal/xrand"
)

// Linearizability stress for the sharded store: concurrent clients run
// an unconstrained put/get/delete mix over a few hot keys, recording
// every operation's invocation/response interval, and the Wing–Gong
// checker (internal/store/linearize) then decides per key whether some
// linearization explains every observed value, created flag and
// presence bit. This replaces the earlier ad-hoc monotonic-version
// assertions: no workload shaping, real histories, a real checker. Run
// with -race; CI does.

// argValue encodes a put argument as the stored value.
func argValue(arg uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], arg)
	return b[:]
}

// decodeArg recovers a put argument from a read value.
func decodeArg(t *testing.T, ctx string, b []byte) uint64 {
	t.Helper()
	if len(b) != 8 {
		t.Fatalf("%s: value has %d bytes, want 8 (torn or foreign write)", ctx, len(b))
	}
	return binary.LittleEndian.Uint64(b)
}

// checkHistories runs the checker over every key's history.
func checkHistories(t *testing.T, ctx string, hists []*linearize.History) {
	t.Helper()
	for k, h := range hists {
		ops := h.Ops()
		res := linearize.CheckDefault(ops)
		if !res.Decided {
			t.Fatalf("%s: key %d: checker undecided after %d nodes over %d ops — shrink the history",
				ctx, k, res.Visited, len(ops))
		}
		if !res.Ok {
			t.Fatalf("%s: key %d: history of %d ops is NOT linearizable (visited %d); blocked op: %v",
				ctx, k, len(ops), res.Visited, res.Failed)
		}
	}
}

// mixedOp draws the next op: half gets, a third puts, the rest deletes.
func mixedOp(rng *xrand.Rand) (kind linearize.Kind, keyIdx uint64) {
	keyIdx = rng.Uint64()
	switch d := rng.Uint64() % 100; {
	case d < 50:
		kind = linearize.Get
	case d < 85:
		kind = linearize.Put
	default:
		kind = linearize.Delete
	}
	return kind, keyIdx
}

// runLinearClient drives ops operations over conn, recording into hists
// (one history per key). Put args are globally unique per (client, seq).
func runLinearClient(t *testing.T, conn Conn, client, nKeys, ops int, hists []*linearize.History) {
	rng := xrand.New(uint64(client)*0x9E3779B97F4A7C15 + 11)
	seq := uint64(0)
	for i := 0; i < ops; i++ {
		kind, draw := mixedOp(rng)
		k := int(draw % uint64(nKeys))
		key := workload.Key(uint64(k))
		h := hists[k]
		op := linearize.Op{Client: client, Kind: kind}
		op.Call = h.Now()
		switch kind {
		case linearize.Get:
			v, found, err := conn.Get(key)
			op.Ret = h.Now()
			if err != nil {
				t.Error(err)
				return
			}
			op.Found = found
			if found {
				op.Val = decodeArg(t, fmt.Sprintf("client %d key %d", client, k), v)
			}
		case linearize.Put:
			seq++
			arg := uint64(client)<<32 | seq
			created, err := conn.Put(key, argValue(arg))
			op.Ret = h.Now()
			if err != nil {
				t.Error(err)
				return
			}
			op.Arg, op.Found = arg, created
		case linearize.Delete:
			existed, err := conn.Delete(key)
			op.Ret = h.Now()
			if err != nil {
				t.Error(err)
				return
			}
			op.Found = existed
		}
		h.Add(op)
	}
}

func newHistories(nKeys int) []*linearize.History {
	hists := make([]*linearize.History, nKeys)
	for i := range hists {
		hists[i] = linearize.NewHistory()
	}
	return hists
}

// TestLinearizableStore checks the shard layer directly through
// per-goroutine handles, sweeping the lock algorithms — including both
// hierarchical cohort locks, the system-level test the paper's NUMA
// locks never got in PR 1.
func TestLinearizableStore(t *testing.T) {
	const (
		nClients = 5
		nKeys    = 8 // few keys over few shards: heavy lock sharing
	)
	ops := 500
	if testing.Short() {
		ops = 150
	}
	for _, alg := range []locks.Algorithm{locks.TAS, locks.TICKET, locks.MCS, locks.CLH, locks.HCLH, locks.HTICKET, locks.MUTEX} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			s := New(Options{Shards: 2, Buckets: 4, Lock: alg,
				MaxThreads: nClients + 2, Nodes: 2})
			hists := newHistories(nKeys)
			var wg sync.WaitGroup
			for c := 0; c < nClients; c++ {
				c := c
				wg.Add(1)
				go func() {
					defer wg.Done()
					runLinearClient(t, s.NewLocalConn(c%2), c, nKeys, ops, hists)
				}()
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			checkHistories(t, string(alg), hists)
		})
	}
}

// runAsyncLinearClient drives ops operations through a multiplexed
// async client with a real in-flight window, stamping invocation at
// submission and response at Wait — exactly the interval in which the
// op took effect.
func runAsyncLinearClient(t *testing.T, cl *AsyncClient, client, nKeys, ops, depth int, hists []*linearize.History) {
	type pendingOp struct {
		op  linearize.Op
		k   int
		fut *Future
	}
	rng := xrand.New(uint64(client)*0x2545F4914F6CDD1D + 77)
	seq := uint64(0)
	window := make([]pendingOp, 0, depth)
	settle := func(p pendingOp) bool {
		h := hists[p.k]
		resp, err := p.fut.Wait()
		p.op.Ret = h.Now()
		if err != nil {
			t.Error(err)
			return false
		}
		switch p.op.Kind {
		case linearize.Get:
			p.op.Found = resp.Status == StatusOK
			if p.op.Found {
				p.op.Val = decodeArg(t, fmt.Sprintf("async client %d key %d", client, p.k), resp.Value)
			}
		case linearize.Put:
			p.op.Found = resp.Created
		case linearize.Delete:
			p.op.Found = resp.Status == StatusOK
		}
		h.Add(p.op)
		return true
	}
	for i := 0; i < ops; i++ {
		kind, draw := mixedOp(rng)
		k := int(draw % uint64(nKeys))
		key := workload.Key(uint64(k))
		p := pendingOp{op: linearize.Op{Client: client, Kind: kind}, k: k}
		p.op.Call = hists[k].Now()
		switch kind {
		case linearize.Get:
			p.fut = cl.GetAsync(key)
		case linearize.Put:
			seq++
			p.op.Arg = uint64(client)<<32 | seq
			p.fut = cl.PutAsync(key, argValue(p.op.Arg))
		case linearize.Delete:
			p.fut = cl.DeleteAsync(key)
		}
		if len(window) == depth {
			oldest := window[0]
			window = append(window[:0], window[1:]...)
			if !settle(oldest) {
				return
			}
		}
		window = append(window, p)
	}
	for _, p := range window {
		if !settle(p) {
			return
		}
	}
}

// TestLinearizableEngineMatrix is the full engine × connection-kind
// cross-product: every shard engine (locked, actor, optimistic) drives
// the same mixed history through direct in-process handles, lock-step
// wire clients, and the multiplexed async client at depth 16 — and
// every cell must be linearizable per key. This is the paper's paradigm
// comparison held to a correctness standard, not just a throughput one.
// Run with -race; CI's engine-matrix leg does.
func TestLinearizableEngineMatrix(t *testing.T) {
	const (
		nClients = 4
		nKeys    = 6
		depth    = 16
	)
	// The placement axis doubles the parallel cell count, and the Wing–
	// Gong checker's node budget is exponential in op overlap — sized so
	// every cell decides even with all 18 running at once under -race on
	// a small host.
	ops := 200
	if testing.Short() {
		ops = 80
	}
	kinds := []string{"direct", "lockstep", "async"}
	// Placement axis: every cell must stay linearizable when shards are
	// compact-placed over a multi-domain machine model — the reordered
	// batch visits, pinned actor owners and pinned server connections
	// must be invisible to the history checker. The Opteron2 model has 2
	// domains, so the domain-major machinery genuinely engages, and its
	// low simulated core ids intersect any real host's allowance, so the
	// sched_setaffinity path runs for real under -race.
	places := map[string]*topo.Placement{
		"place=none":    nil,
		"place=compact": topo.NewPlacement(topo.PolicyCompact, topo.FromPlatform(arch.Opteron2())),
	}
	for placeName, place := range places {
		for _, eng := range Engines {
			for _, kind := range kinds {
				eng, kind, placeName, place := eng, kind, placeName, place
				t.Run(string(eng)+"/"+kind+"/"+placeName, func(t *testing.T) {
					t.Parallel()
					s := New(Options{Shards: 2, Buckets: 4, Engine: eng, Lock: locks.MCS,
						MaxThreads: nClients + 2, Nodes: 2, Placement: place})
					defer s.Close()
					srv := NewServer(s, 2)
					hists := newHistories(nKeys)
					var wg sync.WaitGroup
					for c := 0; c < nClients; c++ {
						c := c
						wg.Add(1)
						go func() {
							defer wg.Done()
							switch kind {
							case "direct":
								runLinearClient(t, s.NewLocalConn(c%2), c, nKeys, ops, hists)
							case "lockstep":
								cl := srv.PipeClient()
								defer cl.Close()
								runLinearClient(t, cl, c, nKeys, ops, hists)
							case "async":
								cl := srv.PipeAsyncClient(depth)
								defer cl.Close()
								runAsyncLinearClient(t, cl, c, nKeys, ops, depth, hists)
							}
						}()
					}
					wg.Wait()
					if t.Failed() {
						return
					}
					checkHistories(t, string(eng)+"/"+kind+"/"+placeName, hists)
				})
			}
		}
	}
}

// TestPipelineLinearizable keeps the historical name on the pipelined
// cell of the matrix (the pipeline stress CI leg selects on it): the
// locked engine behind the async client at the matrix depth.
func TestPipelineLinearizable(t *testing.T) {
	const (
		nClients = 4
		nKeys    = 6
		depth    = 8
	)
	ops := 400
	if testing.Short() {
		ops = 120
	}
	s := New(Options{Shards: 2, Buckets: 4, Lock: locks.TICKET})
	defer s.Close()
	srv := NewServer(s, 2)
	hists := newHistories(nKeys)
	var wg sync.WaitGroup
	for c := 0; c < nClients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := srv.PipeAsyncClient(depth)
			defer cl.Close()
			runAsyncLinearClient(t, cl, c, nKeys, ops, depth, hists)
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	checkHistories(t, "pipeline", hists)
}
