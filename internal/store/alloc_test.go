package store

import (
	"fmt"
	"testing"

	"ssync/internal/race"
	"ssync/internal/workload"
)

// The allocation regression gate for the point-op hot path. The
// tentpole claim is: client encode → server decode → engine → response
// encode → client decode allocates nothing per op in steady state,
// except where an allocation is the mechanism itself —
//
//   - a direct Get that must return an owning copy (use GetAppend for
//     the allocation-free form),
//   - the optimistic engine's Put, whose copy-on-write bucket rebuild
//     IS its synchronization (bounded, not zeroed, below),
//   - the wire client's decoded value copy (the parse paths' copy-out
//     invariant is what makes all the buffer pooling sound).
//
// Bounds are per-op averages over many runs; they hold on any machine
// because allocation counts, unlike nanoseconds, are deterministic.

// allocKeys preloads n keys and returns them (workload.Key formatting,
// like the engine benchmarks).
func allocKeys(h *Handle, n, valLen int) []string {
	keys := make([]string, n)
	val := make([]byte, valLen)
	for i := range keys {
		keys[i] = workload.Key(uint64(i))
		h.Put(keys[i], val)
	}
	return keys
}

// optPutAllocBound is the allowance for one optimistic-engine put: the
// rebuilt oBucket header plus its three parallel slices, the stored
// value copy, and slack for the occasional bucket growth. The other
// engines mutate in place and get no allowance at all.
const optPutAllocBound = 8

func TestPointOpAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	const runs = 200
	val := make([]byte, 64)
	for _, eng := range Engines {
		t.Run(string(eng), func(t *testing.T) {
			s := New(Options{Engine: eng})
			defer s.Close()
			h := s.NewHandle(0)
			keys := allocKeys(h, 256, len(val))
			var dst []byte
			var i int

			get := testing.AllocsPerRun(runs, func() {
				dst, _ = h.GetAppend(keys[i%len(keys)], dst[:0])
				i++
			})
			if get != 0 {
				t.Errorf("GetAppend: %.2f allocs/op, want 0", get)
			}

			// Byte-keyed path: build the key in a reused buffer (the wire
			// path's shape) so only the store's own allocations count.
			kbuf := make([]byte, 0, 32)
			getBytes := testing.AllocsPerRun(runs, func() {
				kb := append(kbuf[:0], keys[i%len(keys)]...)
				dst, _ = h.GetBytes(kb, dst[:0])
				i++
			})
			if getBytes != 0 {
				t.Errorf("GetBytes: %.2f allocs/op, want 0", getBytes)
			}

			put := testing.AllocsPerRun(runs, func() {
				h.Put(keys[i%len(keys)], val)
				i++
			})
			switch {
			case eng == EngineOptimistic && put > optPutAllocBound:
				t.Errorf("Put: %.2f allocs/op, want <= %d (copy-on-write)", put, optPutAllocBound)
			case eng != EngineOptimistic && put != 0:
				t.Errorf("Put: %.2f allocs/op, want 0", put)
			}

			putBytes := testing.AllocsPerRun(runs, func() {
				kb := append(kbuf[:0], keys[i%len(keys)]...)
				h.PutBytes(kb, val)
				i++
			})
			switch {
			case eng == EngineOptimistic && putBytes > optPutAllocBound:
				t.Errorf("PutBytes: %.2f allocs/op, want <= %d (copy-on-write)", putBytes, optPutAllocBound)
			case eng != EngineOptimistic && putBytes != 0:
				t.Errorf("PutBytes: %.2f allocs/op, want 0", putBytes)
			}
		})
	}
}

// TestWireAllocs pins the full wire round trip (net.Pipe transport,
// lock-step client) to a small constant per op: the decoded value copy
// on a get, and nothing but transport noise on a put.
func TestWireAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	const runs = 200
	val := make([]byte, 64)
	for _, eng := range Engines {
		t.Run(string(eng), func(t *testing.T) {
			s := New(Options{Engine: eng})
			defer s.Close()
			c := NewServer(s, 1).PipeClient()
			defer c.Close()
			keys := allocKeys(s.NewHandle(0), 256, len(val))
			var i int
			warm := func(f func()) float64 {
				f() // one warm-up op so steady-state buffers exist
				return testing.AllocsPerRun(runs, f)
			}

			get := warm(func() {
				if _, _, err := c.Get(keys[i%len(keys)]); err != nil {
					t.Fatal(err)
				}
				i++
			})
			// 1 for the decoded value copy + 1 of slack for the transport.
			if get > 2 {
				t.Errorf("wire Get: %.2f allocs/op, want <= 2", get)
			}

			putBound := 1.0 // transport slack only
			if eng == EngineOptimistic {
				putBound += optPutAllocBound
			}
			put := warm(func() {
				if _, err := c.Put(keys[i%len(keys)], val); err != nil {
					t.Fatal(err)
				}
				i++
			})
			if put > putBound {
				t.Errorf("wire Put: %.2f allocs/op, want <= %.0f", put, putBound)
			}
		})
	}
}

// TestBatchAllocs bounds the per-key allocation of the batched read
// path (MGet) on every engine, direct and over the wire. Batches copy
// their sub-requests at parse time by design, so the bound is a small
// per-key constant, not zero — the gate is against accidental
// per-key regressions (an extra copy, a dropped scratch reuse).
func TestBatchAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	const runs, batch = 50, 64
	val := make([]byte, 64)
	for _, eng := range Engines {
		for _, mode := range []string{"direct", "wire"} {
			t.Run(string(eng)+"/"+mode, func(t *testing.T) {
				s := New(Options{Engine: eng})
				defer s.Close()
				keys := allocKeys(s.NewHandle(0), batch, len(val))
				var conn BatchConn
				if mode == "direct" {
					conn = s.NewLocalConn(0)
				} else {
					c := NewServer(s, 1).PipeClient()
					defer c.Close()
					conn = c
				}
				if _, err := conn.MGet(keys); err != nil {
					t.Fatal(err)
				}
				perOp := testing.AllocsPerRun(runs, func() {
					if _, err := conn.MGet(keys); err != nil {
						t.Fatal(err)
					}
				}) / batch
				// Direct: response slice + value copy per key. Wire adds the
				// parsed sub-request (key string + value copy) server-side
				// and the decoded response value client-side.
				bound := 3.0
				if mode == "wire" {
					bound = 6.0
				}
				if perOp > bound {
					t.Errorf("MGet: %.2f allocs/key, want <= %.1f", perOp, bound)
				}
			})
		}
	}
}

// TestScanLimitClamp is the regression test for the 32-bit Limit
// conversion bug: a wire limit >= 2^31 used to wrap negative through
// int(), which Scan reads as "unlimited" — scanLimit must clamp it to
// a positive bound on every platform.
func TestScanLimitClamp(t *testing.T) {
	if got := scanLimit(0); got != 0 {
		t.Errorf("scanLimit(0) = %d, want 0 (unlimited)", got)
	}
	if got := scanLimit(7); got != 7 {
		t.Errorf("scanLimit(7) = %d, want 7", got)
	}
	for _, limit := range []uint32{1 << 31, 1<<32 - 1} {
		if got := scanLimit(limit); got <= 0 {
			t.Errorf("scanLimit(%d) = %d, want > 0", limit, got)
		}
	}
	// End-to-end: a huge limit must behave as a bound, not as unlimited
	// disguised as negative — and must still return everything when the
	// store is smaller than the limit.
	s := New(Options{})
	defer s.Close()
	h := s.NewHandle(0)
	for i := 0; i < 10; i++ {
		h.Put(fmt.Sprintf("scl-%02d", i), []byte("v"))
	}
	resps := h.ExecBatch([]Request{{Op: OpScan, Key: "scl-", Limit: 1<<32 - 1}})
	if len(resps[0].Entries) != 10 {
		t.Errorf("scan with max limit returned %d entries, want 10", len(resps[0].Entries))
	}
	resps = h.ExecBatch([]Request{{Op: OpScan, Key: "scl-", Limit: 3}})
	if len(resps[0].Entries) != 3 {
		t.Errorf("scan with limit 3 returned %d entries, want 3", len(resps[0].Entries))
	}
}

// BenchmarkWirePointOps is the tentpole's measurement: the point-op
// path per engine, direct (handle) and over net.Pipe (wire), with
// allocs/op reported. Direct get and put are allocation-free on the
// mutate-in-place engines; the optimistic engine's put pays its
// copy-on-write rebuild and nothing else.
func BenchmarkWirePointOps(b *testing.B) {
	val := make([]byte, 64)
	for _, eng := range Engines {
		s := New(Options{Engine: eng})
		h := s.NewHandle(0)
		keys := allocKeys(h, 4096, len(val))

		b.Run(string(eng)+"/direct/get", func(b *testing.B) {
			b.ReportAllocs()
			var dst []byte
			for i := 0; i < b.N; i++ {
				dst, _ = h.GetAppend(keys[i%len(keys)], dst[:0])
			}
		})
		b.Run(string(eng)+"/direct/put", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h.Put(keys[i%len(keys)], val)
			}
		})

		c := NewServer(s, 1).PipeClient()
		b.Run(string(eng)+"/wire/get", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := c.Get(keys[i%len(keys)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(string(eng)+"/wire/put", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.Put(keys[i%len(keys)], val); err != nil {
					b.Fatal(err)
				}
			}
		})
		c.Close()
		s.Close()
	}
}
