package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// AsyncClient is the multiplexed replacement for the lock-step Client:
// instead of one request in flight per connection, it keeps a window of
// tagged requests outstanding and overlaps their round trips. A writer
// goroutine drains a submission channel and coalesces queued frames
// into single flushes; a reader goroutine matches responses to futures
// FIFO (the server answers in arrival order) and verifies every echoed
// tag. Submission is safe from any number of goroutines; each submitted
// op returns a *Future resolved when its response arrives.
//
// The in-flight window is the client-side pacing knob: submissions past
// the window block until responses drain, so a slow server applies
// backpressure instead of growing an unbounded queue. The blocking
// Conn surface (Get/Put/Delete/Scan) is preserved as thin wrappers that
// submit and immediately wait.
type AsyncClient struct {
	conn io.ReadWriteCloser
	bw   *bufio.Writer // owned by writeLoop
	br   *bufio.Reader // owned by readLoop

	reqCh chan *Future  // unbuffered hand-off to the writer
	pend  chan *Future  // written-or-being-written, FIFO; cap = window
	tags  atomic.Uint32 // tag allocator

	done    chan struct{} // closed on shutdown
	drained chan struct{} // closed once every pending future is resolved
	once    sync.Once
	wg      sync.WaitGroup

	mu  sync.Mutex
	err error // first fatal error
}

// ErrClientClosed is the failure every future resolves with when the
// client is shut down before its response arrived.
var ErrClientClosed = errors.New("store: async client closed")

// DefaultWindow is the in-flight window used when NewAsyncClient gets a
// non-positive one.
const DefaultWindow = 32

// NewAsyncClient wraps an established connection with a multiplexed
// client keeping up to window requests in flight.
func NewAsyncClient(conn io.ReadWriteCloser, window int) *AsyncClient {
	if window < 1 {
		window = DefaultWindow
	}
	c := &AsyncClient{
		conn:    conn,
		bw:      bufio.NewWriter(conn),
		br:      bufio.NewReader(conn),
		reqCh:   make(chan *Future),
		pend:    make(chan *Future, window),
		done:    make(chan struct{}),
		drained: make(chan struct{}),
	}
	c.wg.Add(2)
	go c.writeLoop()
	go c.readLoop()
	go func() {
		c.wg.Wait()
		c.drainPending()
		close(c.drained)
	}()
	return c
}

// Window returns the configured in-flight window.
func (c *AsyncClient) Window() int { return cap(c.pend) }

// Err returns the error that shut the client down, or nil while it is
// healthy.
func (c *AsyncClient) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// fatal records the first failure and initiates shutdown.
func (c *AsyncClient) fatal(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
	c.once.Do(func() {
		close(c.done)
		c.conn.Close()
	})
}

// Close shuts the client down: the connection closes, both loops exit,
// and every future still in flight resolves with ErrClientClosed (or the
// earlier fatal error). It returns once all of that has happened, so
// after Close no future is left unresolved.
func (c *AsyncClient) Close() error {
	c.fatal(ErrClientClosed)
	<-c.drained
	return nil
}

// drainPending fails every future still queued in the window after both
// loops have exited.
func (c *AsyncClient) drainPending() {
	err := c.Err()
	for {
		select {
		case f := <-c.pend:
			f.fail(err)
		default:
			return
		}
	}
}

// Future is one in-flight operation. Wait blocks until the response
// frame arrives (or the client dies) — the thin blocking wrappers are
// just submit-then-Wait.
type Future struct {
	op    byte   // scalar opcode, or the batch top-level opcode
	subs  []byte // sub-opcodes when the request is a batch, else nil
	tag   uint32
	body  []byte  // encoded tagged frame body
	bufp  *[]byte // pooled backing buffer for body
	ready chan struct{}
	once  sync.Once

	resp  Response   // scalar result
	batch []Response // batch result
	err   error
}

// framePool recycles request frame buffers: a body is dead the moment
// WriteFrame copies it into the connection's write buffer, so pooling
// removes one per-op allocation from exactly the hot path the
// multiplexed client exists to speed up.
var framePool = sync.Pool{New: func() any { return new([]byte) }}

// releaseBody returns f's frame buffer to the pool. Ownership is
// unambiguous: the goroutine that failed to hand f over releases it, or
// the writer does after the write attempt.
func (f *Future) releaseBody() {
	if f.bufp == nil {
		return
	}
	*f.bufp = f.body[:0]
	framePool.Put(f.bufp)
	f.bufp, f.body = nil, nil
}

func (f *Future) fail(err error) {
	f.once.Do(func() {
		f.err = err
		close(f.ready)
	})
}

func (f *Future) complete(resp Response, batch []Response) {
	f.once.Do(func() {
		f.resp, f.batch = resp, batch
		close(f.ready)
	})
}

// Wait blocks until the scalar response arrives. Like the lock-step
// client, a StatusError response surfaces as an error.
func (f *Future) Wait() (Response, error) {
	<-f.ready
	if f.err != nil {
		return Response{}, f.err
	}
	if f.resp.Status == StatusError {
		return Response{}, fmt.Errorf("store: server error: %s", f.resp.Msg)
	}
	return f.resp, nil
}

// WaitBatch blocks until the batch's sub-responses arrive. Sub-ops that
// fail individually come back as StatusError responses, not an error.
func (f *Future) WaitBatch() ([]Response, error) {
	<-f.ready
	if f.err != nil {
		return nil, f.err
	}
	return f.batch, nil
}

// submit encodes a tagged frame for the request and hands it to the
// writer. Encoding happens on the caller's goroutine, so concurrent
// submitters don't serialize on the writer for it.
func (c *AsyncClient) submit(op byte, subs []byte, enc func(dst []byte) ([]byte, error)) *Future {
	f := &Future{op: op, subs: subs, ready: make(chan struct{})}
	f.tag = c.tags.Add(1)
	bufp := framePool.Get().(*[]byte)
	body, err := enc(AppendTaggedRequest((*bufp)[:0], f.tag))
	//ssync:ignore poolaudit the Future owns the frame; releaseBody is the single release point on every path
	f.body, f.bufp = body, bufp
	if err != nil {
		f.releaseBody()
		f.fail(err)
		return f
	}
	if len(body) > MaxFrame {
		// Catch the oversized frame here, where it fails only this
		// future; from the write loop it would be connection-fatal and
		// take every unrelated in-flight future down with it.
		f.releaseBody()
		f.fail(ErrFrameTooLarge)
		return f
	}
	select {
	case c.reqCh <- f:
	case <-c.done:
		f.releaseBody()
		f.fail(c.closedErr())
	}
	return f
}

func (c *AsyncClient) closedErr() error {
	if err := c.Err(); err != nil {
		return err
	}
	return ErrClientClosed
}

// GetAsync submits a get; the future's response is StatusOK with the
// value, or StatusNotFound.
func (c *AsyncClient) GetAsync(key string) *Future {
	return c.submit(OpGet, nil, func(dst []byte) ([]byte, error) {
		return AppendRequest(dst, Request{Op: OpGet, Key: key})
	})
}

// PutAsync submits a put.
func (c *AsyncClient) PutAsync(key string, value []byte) *Future {
	return c.submit(OpPut, nil, func(dst []byte) ([]byte, error) {
		return AppendRequest(dst, Request{Op: OpPut, Key: key, Value: value})
	})
}

// DeleteAsync submits a delete.
func (c *AsyncClient) DeleteAsync(key string) *Future {
	return c.submit(OpDelete, nil, func(dst []byte) ([]byte, error) {
		return AppendRequest(dst, Request{Op: OpDelete, Key: key})
	})
}

// ScanAsync submits a prefix scan.
func (c *AsyncClient) ScanAsync(prefix string, limit int) *Future {
	if limit < 0 {
		limit = 0
	}
	return c.submit(OpScan, nil, func(dst []byte) ([]byte, error) {
		return AppendRequest(dst, Request{Op: OpScan, Key: prefix, Limit: uint32(limit)})
	})
}

// ForwardAsync submits a point op wrapped in an OpForward frame: the
// receiving node's Router executes it as an op that has already taken
// hops forwarding hops. The future resolves with the inner op's plain
// scalar response — this is the transport a cluster node uses to pass
// an op it no longer owns to the node that does.
func (c *AsyncClient) ForwardAsync(req Request, hops int) *Future {
	return c.submit(req.Op, nil, func(dst []byte) ([]byte, error) {
		return AppendMigrateRequest(dst, MigrateRequest{Op: OpForward, Hops: byte(hops), Inner: req})
	})
}

// BatchAsync submits a mixed batch of scalar sub-requests as one frame;
// resolve it with WaitBatch.
func (c *AsyncClient) BatchAsync(reqs []Request) *Future {
	return c.submitBatch(Batch{Op: OpBatch, Reqs: reqs})
}

// MGetAsync submits a compact multi-get; resolve it with WaitBatch.
func (c *AsyncClient) MGetAsync(keys []string) *Future {
	return c.submitBatch(MGetBatch(keys))
}

// MPutAsync submits a compact multi-put; resolve it with WaitBatch.
func (c *AsyncClient) MPutAsync(entries []Entry) *Future {
	return c.submitBatch(MPutBatch(entries))
}

func (c *AsyncClient) submitBatch(b Batch) *Future {
	return c.submit(b.Op, b.SubOps(), func(dst []byte) ([]byte, error) {
		return AppendBatchRequest(dst, b)
	})
}

// Blocking Conn surface: the lock-step client API preserved as thin
// wrappers over submit-then-Wait, so an AsyncClient drops into every
// call site a Client fits (workload drivers, tests, the CLI).

// Get fetches the value under key.
func (c *AsyncClient) Get(key string) ([]byte, bool, error) {
	resp, err := c.GetAsync(key).Wait()
	if err != nil {
		return nil, false, err
	}
	return resp.Value, resp.Status == StatusOK, nil
}

// Put stores value under key; it reports whether the key was newly
// inserted.
func (c *AsyncClient) Put(key string, value []byte) (bool, error) {
	resp, err := c.PutAsync(key, value).Wait()
	if err != nil {
		return false, err
	}
	return resp.Created, nil
}

// Delete removes key; it reports whether the key was present.
func (c *AsyncClient) Delete(key string) (bool, error) {
	resp, err := c.DeleteAsync(key).Wait()
	if err != nil {
		return false, err
	}
	return resp.Status == StatusOK, nil
}

// Scan returns up to limit entries with the given key prefix.
func (c *AsyncClient) Scan(prefix string, limit int) ([]Entry, error) {
	resp, err := c.ScanAsync(prefix, limit).Wait()
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// ExecBatch executes a mixed batch in one frame, blocking for the
// sub-responses.
func (c *AsyncClient) ExecBatch(reqs []Request) ([]Response, error) {
	return c.BatchAsync(reqs).WaitBatch()
}

// MGet fetches many keys, chunked under the frame and count bounds like
// Client.MGet — the chunks go out pipelined.
func (c *AsyncClient) MGet(keys []string) ([][]byte, error) {
	chunks := mgetChunks(keys)
	futs := make([]*Future, len(chunks))
	for i, chunk := range chunks {
		futs[i] = c.MGetAsync(chunk)
	}
	vals := make([][]byte, 0, len(keys))
	for i, f := range futs {
		resps, err := f.WaitBatch()
		if err != nil {
			return nil, err
		}
		vs, err := mgetValues(resps, chunks[i], c.Get)
		if err != nil {
			return nil, err
		}
		vals = append(vals, vs...)
	}
	return vals, nil
}

// MPut stores many entries, chunked under the frame bound like
// Client.MPut — the chunks go out pipelined, so the extra frames still
// overlap.
func (c *AsyncClient) MPut(entries []Entry) (int, error) {
	chunks := mputChunks(entries)
	futs := make([]*Future, len(chunks))
	for i, chunk := range chunks {
		futs[i] = c.MPutAsync(chunk)
	}
	created := 0
	for _, f := range futs {
		resps, err := f.WaitBatch()
		if err != nil {
			return created, err
		}
		n, err := mputCreated(resps)
		created += n
		if err != nil {
			return created, err
		}
	}
	return created, nil
}

var _ BatchConn = (*AsyncClient)(nil)

// writeLoop drains submissions, acquires window slots, and writes
// frames, flushing once per burst: after a blocking receive it keeps
// writing as long as more submissions are immediately available, and
// only then flushes — the message-coalescing the paper's
// communication-cost analysis argues for.
func (c *AsyncClient) writeLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case f := <-c.reqCh:
			if !c.writeOne(f) {
				return
			}
			for more := true; more; {
				select {
				case f2 := <-c.reqCh:
					if !c.writeOne(f2) {
						return
					}
				default:
					more = false
				}
			}
			if err := c.bw.Flush(); err != nil {
				c.fatal(err)
				return
			}
		}
	}
}

// writeOne acquires a window slot for f (flushing first if the window is
// full, so the server can drain it) and writes f's frame. The slot is
// acquired before the write, and the reader pops slots FIFO, so pend
// order always equals write order.
func (c *AsyncClient) writeOne(f *Future) bool {
	select {
	case c.pend <- f:
	default:
		// Window full: everything buffered must reach the server before
		// blocking, or responses could never arrive to free a slot.
		if err := c.bw.Flush(); err != nil {
			c.fatal(err)
			f.releaseBody()
			f.fail(c.Err()) // first recorded error wins (Close vs transport)
			return false
		}
		select {
		case c.pend <- f:
		case <-c.done:
			f.releaseBody()
			f.fail(c.closedErr())
			return false
		}
	}
	err := WriteFrame(c.bw, f.body)
	f.releaseBody() // the body is copied (or dead) after the write attempt
	if err != nil {
		c.fatal(err)
		return false // f is in pend; drainPending resolves it
	}
	return true
}

// readLoop reads response frames, matches them FIFO against the window,
// and verifies the echoed tag of every response.
func (c *AsyncClient) readLoop() {
	defer c.wg.Done()
	// The frame-read scratch is pooled across clients; releasing it when
	// the loop exits is safe because every parse path below copies all
	// variable-length data out of the frame before the future resolves.
	scratchp := framePool.Get().(*[]byte)
	scratch := *scratchp
	defer func() {
		*scratchp = scratch[:0]
		framePool.Put(scratchp)
	}()
	for {
		body, err := ReadFrame(c.br, scratch)
		if err != nil {
			c.fatal(err)
			return
		}
		scratch = body[:0] // parse paths copy all variable-length data
		var f *Future
		select {
		case f = <-c.pend:
		default:
			c.fatal(errors.New("store: response with no request in flight"))
			return
		}
		if len(body) < 4 {
			c.fatal(ErrTruncated)
			f.fail(c.Err())
			return
		}
		tag := binary.BigEndian.Uint32(body[:4])
		if tag != f.tag {
			c.fatal(fmt.Errorf("store: response tag %d for request tag %d", tag, f.tag))
			f.fail(c.Err())
			return
		}
		if f.subs != nil {
			resps, err := ParseBatchResponse(f.subs, body[4:])
			if err != nil {
				// A reject of a tagged batch carries a scalar error body,
				// not a batch body: recover the server's message rather
				// than reporting it as stream corruption.
				if r, perr := ParseResponse(0, body[4:]); perr == nil && r.Status == StatusError {
					err = fmt.Errorf("store: server error: %s", r.Msg)
				}
				c.fatal(err)
				f.fail(c.Err())
				return
			}
			f.complete(Response{}, resps)
		} else {
			resp, err := ParseResponse(f.op, body[4:])
			if err != nil {
				c.fatal(err)
				f.fail(c.Err())
				return
			}
			f.complete(resp, nil)
		}
	}
}
