//go:build !race

package store

// raceEnabled reports whether the race detector instruments this build;
// the alloc-regression tests skip under it (instrumentation perturbs
// allocation counts without saying anything about the real hot path).
const raceEnabled = false
