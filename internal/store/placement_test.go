package store

import (
	"reflect"
	"sort"
	"testing"

	"ssync/internal/arch"
	"ssync/internal/topo"
)

// placementOver builds a store placed over a machine model.
func placementOver(p *arch.Platform, pol topo.Policy) *topo.Placement {
	return topo.NewPlacement(pol, topo.FromPlatform(p))
}

// TestStoreVisitOrderDomainMajor: under a scatter placement the visit
// order must regroup shards domain-major; under compact (already
// contiguous) and no placement it must be the identity.
func TestStoreVisitOrderDomainMajor(t *testing.T) {
	const shards = 8
	none := New(Options{Shards: shards, Buckets: 4})
	defer none.Close()
	if got := none.VisitOrder(); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4, 5, 6, 7}) {
		t.Fatalf("no-placement visit order = %v", got)
	}
	if none.ShardDomain(0) != -1 {
		t.Fatalf("no-placement ShardDomain = %d", none.ShardDomain(0))
	}

	compact := New(Options{Shards: shards, Buckets: 4,
		Placement: placementOver(arch.Xeon2(), topo.PolicyCompact)})
	defer compact.Close()
	if got := compact.VisitOrder(); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4, 5, 6, 7}) {
		t.Fatalf("compact visit order = %v", got)
	}

	scatter := New(Options{Shards: shards, Buckets: 4,
		Placement: placementOver(arch.Xeon2(), topo.PolicyScatter)})
	defer scatter.Close()
	// Round-robin over 2 domains: evens then odds.
	if got := scatter.VisitOrder(); !reflect.DeepEqual(got, []int{0, 2, 4, 6, 1, 3, 5, 7}) {
		t.Fatalf("scatter visit order = %v", got)
	}
	for sh := 0; sh < shards; sh++ {
		if got := scatter.ShardDomain(sh); got != sh%2 {
			t.Fatalf("scatter ShardDomain(%d) = %d", sh, got)
		}
	}
}

// TestPlacedStoreSemantics runs the same operation sequence against an
// unplaced store and one placed with every policy on every engine —
// results must be identical: placement moves work, never answers.
func TestPlacedStoreSemantics(t *testing.T) {
	type probe struct {
		key, val string
	}
	probes := make([]probe, 64)
	for i := range probes {
		probes[i] = probe{key: "k" + string(rune('a'+i%26)) + string(rune('0'+i/26)), val: "v" + string(rune('a'+i))}
	}
	run := func(s *Store) ([]Entry, []bool) {
		h := s.NewHandle(0)
		created := make([]bool, len(probes))
		for i, p := range probes {
			created[i] = h.Put(p.key, []byte(p.val))
		}
		for i := 0; i < len(probes); i += 3 {
			h.Delete(probes[i].key)
		}
		return h.Scan("k", 0), created
	}
	for _, eng := range Engines {
		base := New(Options{Shards: 8, Buckets: 4, Engine: eng})
		wantEntries, wantCreated := run(base)
		base.Close()
		for _, pol := range topo.Policies {
			s := New(Options{Shards: 8, Buckets: 4, Engine: eng,
				Placement: placementOver(arch.Opteron(), pol)})
			gotEntries, gotCreated := run(s)
			s.Close()
			if !reflect.DeepEqual(gotCreated, wantCreated) {
				t.Fatalf("%s/%s: created flags diverge", eng, pol)
			}
			if !reflect.DeepEqual(gotEntries, wantEntries) {
				t.Fatalf("%s/%s: scan diverges: %d vs %d entries", eng, pol, len(gotEntries), len(wantEntries))
			}
		}
	}
}

// TestPlacedBatchResponsesByRequestIndex: the domain-major group loop
// reorders shard visits, so this pins down that responses still land at
// their request's index, engine by engine.
func TestPlacedBatchResponsesByRequestIndex(t *testing.T) {
	for _, eng := range Engines {
		s := New(Options{Shards: 8, Buckets: 4, Engine: eng,
			Placement: placementOver(arch.Opteron(), topo.PolicyScatter)})
		h := s.NewHandle(0)
		var reqs []Request
		for i := 0; i < 40; i++ {
			key := "bk" + string(rune('a'+i%26)) + string(rune('a'+i/26))
			reqs = append(reqs, Request{Op: OpPut, Key: key, Value: []byte{byte(i)}})
		}
		for i := 0; i < 40; i++ {
			reqs = append(reqs, Request{Op: OpGet, Key: reqs[i].Key})
		}
		resps := h.ExecBatch(reqs)
		for i := 0; i < 40; i++ {
			if resps[i].Status != StatusOK || !resps[i].Created {
				t.Fatalf("%s: put %d: %+v", eng, i, resps[i])
			}
			got := resps[40+i]
			if got.Status != StatusOK || len(got.Value) != 1 || got.Value[0] != byte(i) {
				t.Fatalf("%s: get %d answered %+v, want value [%d]", eng, i, got, i)
			}
		}
		s.Close()
	}
}

// TestPlacedServerSmoke drives the wire path with a placed store: conn
// goroutines pin (or no-op) per their ConnDomain and everything still
// round-trips.
func TestPlacedServerSmoke(t *testing.T) {
	s := New(Options{Shards: 4, Buckets: 8, Nodes: 2,
		Placement: placementOver(arch.Opteron2(), topo.PolicyAuto)})
	defer s.Close()
	srv := NewServer(s, 2)
	for c := 0; c < 3; c++ {
		cl := srv.PipeClient()
		if _, err := cl.Put("pk", []byte("pv")); err != nil {
			t.Fatal(err)
		}
		v, ok, err := cl.Get("pk")
		if err != nil || !ok || string(v) != "pv" {
			t.Fatalf("conn %d: get = %q %v %v", c, v, ok, err)
		}
		cl.Close()
	}
}

// TestVisitOrderCoversAllShards guards the sweep contract Len and
// ShardStats rely on via Scan: every shard visited exactly once for
// every policy at a shard count that doesn't divide the domain count.
func TestVisitOrderCoversAllShards(t *testing.T) {
	for _, pol := range topo.Policies {
		s := New(Options{Shards: 13, Buckets: 4,
			Placement: placementOver(arch.Opteron(), pol)})
		order := s.VisitOrder()
		sorted := append([]int(nil), order...)
		sort.Ints(sorted)
		for i, v := range sorted {
			if v != i {
				t.Fatalf("%s: visit order %v is not a permutation of 0..12", pol, order)
			}
		}
		s.Close()
	}
}
