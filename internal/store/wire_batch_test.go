package store

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
)

func TestBatchRequestRoundTrip(t *testing.T) {
	batches := []Batch{
		{Op: OpBatch, Reqs: []Request{
			{Op: OpGet, Key: "a"},
			{Op: OpPut, Key: "b", Value: []byte("v")},
			{Op: OpDelete, Key: "c"},
			{Op: OpScan, Key: "pre", Limit: 9},
		}},
		{Op: OpBatch},
		MGetBatch([]string{"x", "", "y"}),
		MGetBatch(nil),
		MPutBatch([]Entry{{Key: "k1", Value: []byte("v1")}, {Key: "", Value: nil}}),
	}
	for _, b := range batches {
		body, err := AppendBatchRequest(nil, b)
		if err != nil {
			t.Fatalf("encode %+v: %v", b, err)
		}
		got, err := ParseBatchRequest(body)
		if err != nil {
			t.Fatalf("parse %+v: %v", b, err)
		}
		if got.Op != b.Op || len(got.Reqs) != len(b.Reqs) {
			t.Fatalf("round trip mangled %+v into %+v", b, got)
		}
		for i := range got.Reqs {
			if got.Reqs[i].Op != b.Reqs[i].Op || got.Reqs[i].Key != b.Reqs[i].Key ||
				got.Reqs[i].Limit != b.Reqs[i].Limit ||
				!bytes.Equal(got.Reqs[i].Value, b.Reqs[i].Value) {
				t.Fatalf("sub %d mangled: %+v vs %+v", i, got.Reqs[i], b.Reqs[i])
			}
		}
	}
}

func TestBatchResponseRoundTrip(t *testing.T) {
	ops := []byte{OpGet, OpGet, OpPut, OpDelete, OpScan}
	resps := []Response{
		{Status: StatusOK, Value: []byte("v")},
		{Status: StatusNotFound},
		{Status: StatusOK, Created: true},
		{Status: StatusOK},
		{Status: StatusOK, Entries: []Entry{{Key: "k", Value: []byte("e")}}},
	}
	body, err := AppendBatchResponse(nil, ops, resps)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseBatchResponse(ops, body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(resps) {
		t.Fatalf("got %d sub-responses, want %d", len(got), len(resps))
	}
	for i := range got {
		if got[i].Status != resps[i].Status || got[i].Created != resps[i].Created ||
			!bytes.Equal(got[i].Value, resps[i].Value) || len(got[i].Entries) != len(resps[i].Entries) {
			t.Fatalf("sub %d mangled: %+v vs %+v", i, got[i], resps[i])
		}
	}
}

func TestBatchRejects(t *testing.T) {
	// Nested batches and tags cannot hide inside OpBatch.
	for _, inner := range []byte{OpBatch, OpMGet, OpMPut, OpTagged, 0xEE} {
		body := []byte{OpBatch, 0, 1, inner, 0, 0}
		if _, err := ParseBatchRequest(body); err == nil {
			t.Errorf("batch with inner op %d must be rejected", inner)
		}
	}
	if _, err := ParseBatchRequest([]byte{OpGet, 0, 0}); !errors.Is(err, ErrBadOp) {
		t.Errorf("scalar body as batch: err = %v, want ErrBadOp", err)
	}
	if _, err := ParseBatchRequest([]byte{OpMGet, 0, 2, 0, 1, 'k'}); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated mget: err = %v, want ErrTruncated", err)
	}
	// Trailing garbage after the last sub-request.
	if _, err := ParseBatchRequest([]byte{OpMGet, 0, 1, 0, 1, 'k', 'X'}); !errors.Is(err, ErrTrailingBytes) {
		t.Errorf("trailing bytes: err = %v, want ErrTrailingBytes", err)
	}
	// Encoder rejects sub-ops that don't fit the top opcode.
	if _, err := AppendBatchRequest(nil, Batch{Op: OpMGet, Reqs: []Request{{Op: OpPut, Key: "k"}}}); !errors.Is(err, ErrBatchOp) {
		t.Errorf("mget with put sub: err = %v, want ErrBatchOp", err)
	}
	if _, err := AppendBatchRequest(nil, Batch{Op: OpBatch, Reqs: []Request{{Op: OpBatch}}}); !errors.Is(err, ErrBatchOp) {
		t.Errorf("nested batch: err = %v, want ErrBatchOp", err)
	}
	if _, err := AppendBatchRequest(nil, Batch{Op: OpBatch, Reqs: make([]Request, MaxBatchOps+1)}); !errors.Is(err, ErrBatchTooLarge) {
		t.Errorf("oversized batch: err = %v, want ErrBatchTooLarge", err)
	}
	// Response count must match the request's sub-ops.
	body, err := AppendBatchResponse(nil, []byte{OpGet}, []Response{{Status: StatusNotFound}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseBatchResponse([]byte{OpGet, OpGet}, body); !errors.Is(err, ErrBatchCount) {
		t.Errorf("count mismatch: err = %v, want ErrBatchCount", err)
	}
}

func TestTagRoundTrip(t *testing.T) {
	body := AppendTaggedRequest(nil, 0xDEADBEEF)
	inner, err := AppendRequest(body, Request{Op: OpGet, Key: "k"})
	if err != nil {
		t.Fatal(err)
	}
	tag, rest, err := ParseTag(inner)
	if err != nil || tag != 0xDEADBEEF {
		t.Fatalf("ParseTag = %x, %v", tag, err)
	}
	req, err := ParseRequest(rest)
	if err != nil || req.Key != "k" {
		t.Fatalf("inner request mangled: %+v, %v", req, err)
	}
	if _, _, err := ParseTag([]byte{OpGet, 0, 0}); !errors.Is(err, ErrNotTagged) {
		t.Errorf("untagged body: err = %v, want ErrNotTagged", err)
	}
	if _, _, err := ParseTag([]byte{OpTagged, 1, 2}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short tag: err = %v, want ErrTruncated", err)
	}
}

// FuzzParseBatchRequest mirrors the scalar wire fuzzers (CI runs it):
// arbitrary bytes must never panic, and anything that parses must
// re-encode byte-identically and re-parse to the same batch.
func FuzzParseBatchRequest(f *testing.F) {
	seed := [][]byte{
		{OpBatch, 0, 2, OpGet, 0, 1, 'k', OpPut, 0, 1, 'p', 0, 0, 0, 1, 'v'},
		{OpMGet, 0, 2, 0, 1, 'a', 0, 1, 'b'},
		{OpMPut, 0, 1, 0, 1, 'k', 0, 0, 0, 2, 'v', 'w'},
		{OpBatch, 0, 0},
		{OpMGet, 0xFF, 0xFF},
		{OpTagged, 0, 0, 0, 1, OpGet, 0, 1, 'k'},
		{},
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		b, err := ParseBatchRequest(body)
		if err != nil {
			return
		}
		enc, err := AppendBatchRequest(nil, b)
		if err != nil {
			t.Fatalf("parsed batch fails to encode: %+v: %v", b, err)
		}
		if !bytes.Equal(enc, body) {
			t.Fatalf("non-canonical batch encoding:\nparsed %+v\nfrom % x\nre-enc % x", b, body, enc)
		}
		again, err := ParseBatchRequest(enc)
		if err != nil {
			t.Fatalf("re-encoded batch fails to parse: %v", err)
		}
		if !reflect.DeepEqual(b, again) {
			t.Fatalf("round trip drifted: %+v vs %+v", b, again)
		}
	})
}

// FuzzParseBatchResponse holds the batch response parser to the same
// standard: the sub-opcode context comes from the fuzzer too.
func FuzzParseBatchResponse(f *testing.F) {
	f.Add([]byte{OpGet, OpPut}, []byte{0, 2, StatusOK, 0, 0, 0, 1, 'v', StatusOK, 1})
	f.Add([]byte{OpDelete}, []byte{0, 1, StatusNotFound})
	f.Add([]byte{OpScan}, []byte{0, 1, StatusOK, 0, 0, 0, 0})
	f.Add([]byte{}, []byte{0, 0})
	f.Add([]byte{OpGet}, []byte{0, 1, StatusError, 0, 2, 'n', 'o'})
	f.Fuzz(func(t *testing.T, ops []byte, body []byte) {
		resps, err := ParseBatchResponse(ops, body)
		if err != nil {
			return
		}
		enc, err := AppendBatchResponse(nil, ops, resps)
		if err != nil {
			t.Fatalf("parsed batch response fails to encode: %+v: %v", resps, err)
		}
		if !bytes.Equal(enc, body) {
			t.Fatalf("non-canonical batch response:\nparsed %+v\nfrom % x\nre-enc % x", resps, body, enc)
		}
	})
}

func TestMPutChunks(t *testing.T) {
	val := func(n int) []byte { return make([]byte, n) }
	// Small entries stay in one chunk.
	small := []Entry{{Key: "a", Value: val(8)}, {Key: "b", Value: val(8)}}
	if got := mputChunks(small); len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("small chunks = %v", got)
	}
	// An empty multi-put still issues exactly one (empty) frame.
	if got := mputChunks(nil); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("empty chunks = %v", got)
	}
	// 6 × 1MB values split so every chunk's encoding fits a frame.
	var big []Entry
	for i := 0; i < 6; i++ {
		big = append(big, Entry{Key: fmt.Sprintf("k%d", i), Value: val(MaxValueLen)})
	}
	chunks := mputChunks(big)
	if len(chunks) < 2 {
		t.Fatalf("6MB of entries in %d chunk(s)", len(chunks))
	}
	total := 0
	for _, ch := range chunks {
		total += len(ch)
		size := 0
		for _, e := range ch {
			size += 2 + len(e.Key) + 4 + len(e.Value)
		}
		if size > MaxFrame-1024 {
			t.Fatalf("chunk encodes to %d bytes, over budget", size)
		}
	}
	if total != len(big) {
		t.Fatalf("chunks cover %d entries, want %d", total, len(big))
	}
	// The count cap binds too.
	many := make([]Entry, MaxBatchOps+10)
	chunks = mputChunks(many)
	if len(chunks) != 2 || len(chunks[0]) != MaxBatchOps || len(chunks[1]) != 10 {
		t.Fatalf("count-capped chunks = %d/%v", len(chunks), len(chunks[0]))
	}
}
