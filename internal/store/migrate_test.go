package store

import (
	"fmt"
	"testing"
)

// migTestArcs splits the whole position space at the midpoint: one arc
// per half, so every key falls in exactly one.
var (
	migLowArc  = Arc{Lo: 1 << 63, Hi: 0} // wraps: (2^63, 0]
	migHighArc = Arc{Lo: 0, Hi: 1 << 63}
)

// TestExportRange: every engine's export walk visits each in-range
// entry exactly once across resumed chunks, never an out-of-range one.
func TestExportRange(t *testing.T) {
	for _, eng := range Engines {
		t.Run(string(eng), func(t *testing.T) {
			s := New(Options{Shards: 4, Buckets: 8, Engine: eng})
			defer s.Close()
			h := s.NewHandle(0)
			want := map[string]string{}
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key-%04d", i)
				h.Put(k, []byte(k))
				if migLowArc.Contains(KeyPos(k)) {
					want[k] = k
				}
			}
			got := map[string]string{}
			cursor, done := uint64(0), false
			chunks := 0
			for !done {
				var chunk []Entry
				chunk, cursor, done = h.ExportRange(cursor, 32, MaxFrame, []Arc{migLowArc})
				chunks++
				for _, e := range chunk {
					if _, dup := got[e.Key]; dup {
						t.Fatalf("entry %q exported twice", e.Key)
					}
					got[e.Key] = string(e.Value)
				}
				if chunks > 10000 {
					t.Fatal("export walk does not terminate")
				}
			}
			if len(got) != len(want) {
				t.Fatalf("exported %d entries, want %d", len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("key %q exported as %q, want %q", k, got[k], v)
				}
			}
			if chunks < 2 {
				t.Fatalf("walk finished in %d chunk(s); the resume path was not exercised", chunks)
			}
		})
	}
}

// TestDigestRange: digests are layout-independent (a differently
// sharded store holding the same data agrees), value-sensitive, and
// presence-sensitive — the properties the anti-entropy pass rests on.
func TestDigestRange(t *testing.T) {
	const slots = 16
	arcs := []Arc{migLowArc}
	a := New(Options{Shards: 2, Buckets: 4, Engine: EngineLocked})
	b := New(Options{Shards: 8, Buckets: 16, Engine: EngineOptimistic})
	defer a.Close()
	defer b.Close()
	ha, hb := a.NewHandle(0), b.NewHandle(0)
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key-%04d", i)
		ha.Put(k, []byte(k))
		hb.Put(k, []byte(k))
	}
	da, db := ha.DigestRange(arcs, slots), hb.DigestRange(arcs, slots)
	if len(da) != slots || len(db) != slots {
		t.Fatalf("digest lengths %d/%d, want %d", len(da), len(db), slots)
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("slot %d differs across layouts: %x vs %x", i, da[i], db[i])
		}
	}
	// Change one in-range value: exactly that key's slot flips.
	var victim string
	for i := 0; ; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if migLowArc.Contains(KeyPos(k)) {
			victim = k
			break
		}
	}
	hb.Put(victim, []byte("changed"))
	db = hb.DigestRange(arcs, slots)
	for i := range da {
		want := da[i]
		if i == DigestSlot(victim, slots) {
			if db[i] == want {
				t.Fatalf("slot %d unchanged after value change", i)
			}
			continue
		}
		if db[i] != want {
			t.Fatalf("slot %d flipped for an untouched key", i)
		}
	}
	// Out-of-range writes never move the digest.
	hb.Put(victim, []byte(victim)) // restore
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if migHighArc.Contains(KeyPos(k)) {
			hb.Put(k, []byte("noise"))
		}
	}
	db = hb.DigestRange(arcs, slots)
	for i := range da {
		if db[i] != da[i] {
			t.Fatalf("slot %d moved on out-of-range writes", i)
		}
	}
}

// TestPurgeAndApply: purge removes exactly the in-range entries, and
// ApplyMigration lands them back.
func TestPurgeAndApply(t *testing.T) {
	for _, eng := range Engines {
		t.Run(string(eng), func(t *testing.T) {
			s := New(Options{Shards: 4, Buckets: 8, Engine: eng})
			defer s.Close()
			h := s.NewHandle(0)
			inRange := 0
			for i := 0; i < 400; i++ {
				k := fmt.Sprintf("key-%04d", i)
				h.Put(k, []byte(k))
				if migLowArc.Contains(KeyPos(k)) {
					inRange++
				}
			}
			moved, _, done := h.ExportRange(0, MaxBatchOps, MaxFrame, []Arc{migLowArc})
			if !done {
				t.Fatal("one max-size chunk should cover the range")
			}
			if n := h.PurgeRange([]Arc{migLowArc}); n != inRange {
				t.Fatalf("purged %d entries, want %d", n, inRange)
			}
			if got := h.Len(); got != 400-inRange {
				t.Fatalf("%d entries after purge, want %d", got, 400-inRange)
			}
			for i := 0; i < 400; i++ {
				k := fmt.Sprintf("key-%04d", i)
				_, ok := h.Get(k)
				if want := migHighArc.Contains(KeyPos(k)); ok != want {
					t.Fatalf("key %q present=%v after purge, want %v", k, ok, want)
				}
			}
			if n := h.ApplyMigration(moved, nil); n != inRange {
				t.Fatalf("applied %d, want %d", n, inRange)
			}
			if got := h.Len(); got != 400 {
				t.Fatalf("%d entries after re-apply, want 400", got)
			}
		})
	}
}
