// Package store is the system-level payoff of the paper's synchronization
// study: a sharded concurrent key-value store whose N independent shards
// are executed by a pluggable ShardEngine — lock-guarded bucket tables
// (any libslock algorithm), message-passing shard actors, or
// optimistic-read shards with seqlock-style versioned gets. Where
// internal/ssht reproduces the paper's hash-table *microbenchmark* and
// internal/kvs mimics Memcached's locking anatomy, this package is the
// store a service would actually build on: string keys, byte-slice
// values, Get/Put/Delete plus an ordered prefix Scan, per-shard operation
// counters for throughput attribution, and a length-prefixed wire
// protocol (wire.go, server.go, client.go) so load generators can drive
// it like real traffic.
//
// The engine layer (engine.go and the engine_*.go files) turns the
// paper's paradigm comparison — locks vs message passing vs optimistic
// concurrency — into an end-to-end experiment: construct the same store
// with each engine and measure how the choice propagates through a full
// request path instead of a tight acquire/release loop.
package store

import (
	"fmt"
	"math"
	"sort"

	"ssync/internal/hashkit"
	"ssync/internal/locks"
	"ssync/internal/topo"
)

// lookupKey is the engines' dual-representation key: exactly one of s
// and b is set. The direct API hands engines string keys; the wire
// server hands them byte slices that alias the request frame — the
// zero-copy seam that keeps the point-op path allocation-free. Both
// representations compare against stored string keys without
// converting (the compiler lowers string(b) == s to a length check
// plus memequal), and str() makes the single copy an insert is allowed
// to take: copy-on-insert is the only place a frame-aliasing key may
// outlive its frame.
type lookupKey struct {
	s string
	b []byte
}

// keyOf wraps a string key.
func keyOf(s string) lookupKey { return lookupKey{s: s} }

// keyBytes wraps a byte-slice key that may alias a transient buffer.
// The engines promise not to retain k.b past the call.
func keyBytes(b []byte) lookupKey { return lookupKey{b: b} }

// eq compares against a stored key without allocating.
func (k lookupKey) eq(s string) bool {
	if k.b != nil {
		return string(k.b) == s
	}
	return k.s == s
}

// str returns an owning string — the copy-on-insert point for
// frame-aliasing keys, free for string keys.
func (k lookupKey) str() string {
	if k.b != nil {
		return string(k.b)
	}
	return k.s
}

// hash is FNV-1a over the key bytes, identical for both representations.
func (k lookupKey) hash() uint64 {
	if k.b != nil {
		return hashkit.FNV1aBytes(k.b)
	}
	return hashkit.FNV1a(k.s)
}

// scanLimit converts a wire scan Limit (uint32, 0 = unlimited) to the
// int Scan takes. On 32-bit platforms int(limit) wraps negative for
// limits >= 2^31, which Scan would read as "unlimited" — the opposite
// of what the client asked for. Clamp to MaxInt32 instead.
func scanLimit(limit uint32) int {
	if n := int(limit); n >= 0 {
		return n
	}
	return math.MaxInt32
}

// segCap is the number of entries per bucket segment; segments chain when
// a bucket overflows. Hashes are packed together, separate from keys and
// values, so a bucket miss scans only hash words (the ssht layout; see
// internal/hashkit for why the two layouts intentionally diverge).
const segCap = 7

// segment is one chunk of a bucket.
type segment struct {
	hashes [segCap]uint64
	used   [segCap]bool
	keys   [segCap]string
	vals   [segCap][]byte
	next   *segment
}

// Counters tallies the operations a shard has executed. How a snapshot
// stays race-free is the engine's business: the locked engine counts
// under the shard lock, the actor engine's counters are owned by the
// shard goroutine and snapshotted through its mailbox, and the
// optimistic engine counts with per-field atomics.
type Counters struct {
	Gets    uint64 `json:"gets"`
	Puts    uint64 `json:"puts"`
	Deletes uint64 `json:"deletes"`
	Scans   uint64 `json:"scans"`
}

// Total sums all operation classes.
func (c Counters) Total() uint64 { return c.Gets + c.Puts + c.Deletes + c.Scans }

// Sub returns the element-wise difference c - prev (counter deltas over a
// measurement window).
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Gets:    c.Gets - prev.Gets,
		Puts:    c.Puts - prev.Puts,
		Deletes: c.Deletes - prev.Deletes,
		Scans:   c.Scans - prev.Scans,
	}
}

// shardTable is one shard's data: a segmented bucket table plus its
// counters. It is a plain single-owner data structure — mutual exclusion
// is the engine's job (a lock around it, or a goroutine owning it).
type shardTable struct {
	buckets []segment
	ops     Counters
	entries int
}

func newShardTable(buckets int) shardTable {
	return shardTable{buckets: make([]segment, buckets)}
}

func (sh *shardTable) bucketOf(hash uint64) *segment {
	return &sh.buckets[hashkit.Bucket(hash, uint64(len(sh.buckets)))]
}

// get appends a copy of the value stored under key to dst and returns
// the extended slice (pass nil for a fresh copy). Appending into a
// caller-owned buffer is what lets the wire path encode a response
// without an intermediate value allocation.
func (sh *shardTable) get(hash uint64, key lookupKey, dst []byte) ([]byte, bool) {
	sh.ops.Gets++
	for seg := sh.bucketOf(hash); seg != nil; seg = seg.next {
		for j := 0; j < segCap; j++ {
			if seg.used[j] && seg.hashes[j] == hash && key.eq(seg.keys[j]) {
				return append(dst, seg.vals[j]...), true
			}
		}
	}
	return dst, false
}

// put inserts or replaces; it reports whether the key was newly inserted.
// The value is copied; a replace reuses the stored value's backing array
// when it is large enough, so steady-state overwrites allocate nothing.
func (sh *shardTable) put(hash uint64, key lookupKey, value []byte) bool {
	sh.ops.Puts++
	var freeSeg *segment
	freeIdx := -1
	last := (*segment)(nil)
	for seg := sh.bucketOf(hash); seg != nil; seg = seg.next {
		for j := 0; j < segCap; j++ {
			if seg.used[j] {
				if seg.hashes[j] == hash && key.eq(seg.keys[j]) {
					seg.vals[j] = append(seg.vals[j][:0], value...)
					return false
				}
			} else if freeIdx < 0 {
				freeSeg, freeIdx = seg, j
			}
		}
		last = seg
	}
	if freeIdx < 0 {
		seg := &segment{}
		last.next = seg
		freeSeg, freeIdx = seg, 0
	}
	freeSeg.hashes[freeIdx] = hash
	freeSeg.keys[freeIdx] = key.str()
	freeSeg.vals[freeIdx] = append([]byte(nil), value...)
	freeSeg.used[freeIdx] = true
	sh.entries++
	return true
}

// del removes key; it reports whether the key was present.
func (sh *shardTable) del(hash uint64, key lookupKey) bool {
	sh.ops.Deletes++
	for seg := sh.bucketOf(hash); seg != nil; seg = seg.next {
		for j := 0; j < segCap; j++ {
			if seg.used[j] && seg.hashes[j] == hash && key.eq(seg.keys[j]) {
				seg.used[j] = false
				seg.keys[j] = ""
				seg.vals[j] = nil
				sh.entries--
				return true
			}
		}
	}
	return false
}

// scan appends copies of the entries whose keys start with prefix.
func (sh *shardTable) scan(prefix string, out []Entry) []Entry {
	sh.ops.Scans++
	for b := range sh.buckets {
		for s := &sh.buckets[b]; s != nil; s = s.next {
			for j := 0; j < segCap; j++ {
				if s.used[j] && hasPrefix(s.keys[j], prefix) {
					out = append(out, Entry{Key: s.keys[j], Value: append([]byte(nil), s.vals[j]...)})
				}
			}
		}
	}
	return out
}

// export walks buckets [from, len) appending entries whose hash
// satisfies pred; it stops at a bucket boundary once maxEntries entries
// or maxBytes of wire payload are appended, returning the next bucket
// index (len(buckets) when the walk is complete). Counted as a scan.
func (sh *shardTable) export(from int, pred func(uint64) bool, maxEntries, maxBytes int, out []Entry) (int, []Entry) {
	sh.ops.Scans++
	base, bytes := len(out), 0
	for b := from; b < len(sh.buckets); b++ {
		if len(out)-base >= maxEntries || bytes >= maxBytes {
			return b, out
		}
		for s := &sh.buckets[b]; s != nil; s = s.next {
			for j := 0; j < segCap; j++ {
				if s.used[j] && pred(s.hashes[j]) {
					out = append(out, Entry{Key: s.keys[j], Value: append([]byte(nil), s.vals[j]...)})
					bytes += entryWireSize(s.keys[j], s.vals[j])
				}
			}
		}
	}
	return len(sh.buckets), out
}

// Options configures a Store.
type Options struct {
	// Shards is the number of independently synchronized shards. Default 16.
	Shards int
	// Buckets is the bucket count per shard. Default 64.
	Buckets int
	// Engine selects the shard-engine paradigm. Default EngineLocked.
	Engine Engine
	// Lock selects the shard lock algorithm (locked engine) or the shard
	// write-lock algorithm (optimistic engine); the actor engine has no
	// locks. Default TICKET.
	Lock locks.Algorithm
	// MaxThreads is forwarded to ARRAY locks.
	MaxThreads int
	// Nodes is the NUMA-node count forwarded to hierarchical locks.
	Nodes int
	// Placement binds shards to LLC domains (internal/topo). nil means no
	// placement: identity visit order, no pinning. With a placement, the
	// shard→domain assignment drives three things: the actor engine pins
	// each shard-owner goroutine to its shard's domain, the server pins
	// connection goroutines round-robin over the domains (and takes the
	// domain's memory node as the NUMA hint), and every engine's full
	// shard sweeps (ExecBatch's group loop, Scan) walk shards
	// domain-major so adjacent visits share an LLC.
	Placement *topo.Placement
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 16
	}
	if o.Buckets <= 0 {
		o.Buckets = 64
	}
	if o.Engine == "" {
		o.Engine = EngineLocked
	}
	if o.Lock == "" {
		o.Lock = locks.TICKET
	}
	return o
}

// Store is the sharded key-value store. Access goes through per-goroutine
// Handles (lock tokens and mailbox reply state are per-goroutine).
type Store struct {
	opt Options
	eng shardEngine
	// visit is the shard visit order for full sweeps: domain-major under
	// a placement (all of one LLC domain's shards, then the next's),
	// identity without one. domains is the shard→domain assignment the
	// order was derived from (nil without a placement).
	visit   []int
	domains []int
}

// New creates a store. A store built with EngineActor owns goroutines;
// call Close when done with it (Close is a no-op for the other engines).
func New(opt Options) *Store {
	opt = opt.withDefaults()
	s := &Store{opt: opt}
	if opt.Placement != nil {
		s.visit = opt.Placement.VisitOrder(opt.Shards)
		s.domains = opt.Placement.ShardDomains(opt.Shards)
	} else {
		s.visit = make([]int, opt.Shards)
		for i := range s.visit {
			s.visit[i] = i
		}
	}
	switch opt.Engine {
	case EngineActor:
		s.eng = newActorEngine(opt)
	case EngineOptimistic:
		s.eng = newOptimisticEngine(opt)
	default:
		s.eng = newLockedEngine(opt)
	}
	return s
}

// Close releases engine resources (the actor engine's shard goroutines).
// It must only be called after every Handle has quiesced; it is
// idempotent.
func (s *Store) Close() { s.eng.close() }

// Shards returns the shard count.
func (s *Store) Shards() int { return s.opt.Shards }

// Lock returns the configured shard-lock algorithm (meaningless for the
// actor engine, which has no locks).
func (s *Store) Lock() locks.Algorithm { return s.opt.Lock }

// Engine returns the shard-engine paradigm the store runs on.
func (s *Store) Engine() Engine { return s.opt.Engine }

// Placement returns the store's placement (nil when none is configured).
func (s *Store) Placement() *topo.Placement { return s.opt.Placement }

// ShardDomain returns the LLC domain assigned to shard sh, or -1 when
// the store has no placement.
func (s *Store) ShardDomain(sh int) int {
	if s.domains == nil {
		return -1
	}
	return s.domains[sh]
}

// VisitOrder returns the shard order full sweeps use (a copy).
func (s *Store) VisitOrder() []int {
	return append([]int(nil), s.visit...)
}

// String describes the store configuration.
func (s *Store) String() string {
	if s.opt.Engine == EngineActor {
		return fmt.Sprintf("store(%d shards × %d buckets, actor engine)",
			s.opt.Shards, s.opt.Buckets)
	}
	return fmt.Sprintf("store(%d shards × %d buckets, %s locks, %s engine)",
		s.opt.Shards, s.opt.Buckets, s.opt.Lock, s.opt.Engine)
}

// hashKey is FNV-1a over the key bytes.
func hashKey(key string) uint64 { return hashkit.FNV1a(key) }

// Entry is one key-value pair returned by Scan.
type Entry struct {
	Key   string
	Value []byte
}

// Handle is a per-goroutine accessor carrying the engine's per-goroutine
// state (lock tokens, mailbox reply channel). Handles must not be shared
// between goroutines.
type Handle struct {
	s   *Store
	acc shardAccess
	// ExecBatch grouping scratch, reused across batches: a handle serves
	// one connection, and batch bookkeeping should not out-allocate the
	// work being measured.
	groups [][]int
	hashes []uint64
}

// NewHandle creates an accessor; node is the NUMA hint for hierarchical
// locks.
func (s *Store) NewHandle(node int) *Handle {
	return &Handle{s: s, acc: s.eng.access(node)}
}

// shardOf maps a hash to its shard; the bucket index inside the shard is
// remixed (Fibonacci hashing) so it stays independent of the shard index.
func (s *Store) shardOf(hash uint64) int { return int(hash % uint64(s.opt.Shards)) }

// Get returns a copy of the value stored under key.
func (h *Handle) Get(key string) ([]byte, bool) {
	v, ok := h.getKey(keyOf(key), nil)
	if !ok {
		return nil, false
	}
	return v, true
}

// GetAppend appends the value stored under key to dst, returning the
// extended slice and whether the key was present (dst is returned
// unchanged when it is not). This is the allocation-free read: with a
// reused dst of sufficient capacity, a hit copies the value exactly
// once, into memory the caller owns.
func (h *Handle) GetAppend(key string, dst []byte) ([]byte, bool) {
	return h.getKey(keyOf(key), dst)
}

// GetBytes is GetAppend for a byte-slice key that may alias a transient
// buffer (a wire frame); the engines do not retain it.
func (h *Handle) GetBytes(key, dst []byte) ([]byte, bool) {
	return h.getKey(keyBytes(key), dst)
}

// PutBytes is Put for a frame-aliasing key: the key is copied only if
// the insert actually needs to store it, the value is always copied.
func (h *Handle) PutBytes(key, value []byte) bool {
	k := keyBytes(key)
	hash := k.hash()
	return h.acc.put(h.s.shardOf(hash), hash, k, value)
}

// DeleteBytes is Delete for a frame-aliasing key.
func (h *Handle) DeleteBytes(key []byte) bool {
	k := keyBytes(key)
	hash := k.hash()
	return h.acc.del(h.s.shardOf(hash), hash, k)
}

func (h *Handle) getKey(k lookupKey, dst []byte) ([]byte, bool) {
	hash := k.hash()
	return h.acc.get(h.s.shardOf(hash), hash, k, dst)
}

// Put inserts or replaces the value under key; it reports whether the key
// was newly inserted. The value is copied.
func (h *Handle) Put(key string, value []byte) bool {
	hash := hashKey(key)
	return h.acc.put(h.s.shardOf(hash), hash, keyOf(key), value)
}

// Delete removes key; it reports whether the key was present.
func (h *Handle) Delete(key string) bool {
	hash := hashKey(key)
	return h.acc.del(h.s.shardOf(hash), hash, keyOf(key))
}

// ExecBatch executes a batch of scalar requests, amortizing
// synchronization the way the paper prescribes: the point ops
// (get/put/delete) are grouped by shard and each touched shard executes
// its whole group in one engine visit — one lock acquisition (locked),
// one mailbox round trip (actor), one write-lock hold for the group's
// writes (optimistic). Scans still walk all shards one at a time,
// outside the grouped execution. resps[i] is the response to reqs[i]; a
// batch is a performance unit, not a transaction — sub-ops linearize
// individually, and ops for one shard apply in batch order.
func (h *Handle) ExecBatch(reqs []Request) []Response {
	resps := make([]Response, len(reqs))
	if h.groups == nil {
		h.groups = make([][]int, h.s.opt.Shards)
	}
	groups := h.groups
	for i := range groups {
		groups[i] = groups[i][:0]
	}
	if cap(h.hashes) < len(reqs) {
		h.hashes = make([]uint64, len(reqs))
	}
	hashes := h.hashes[:len(reqs)]
	scans := false
	for i, r := range reqs {
		switch r.Op {
		case OpGet, OpPut, OpDelete:
			hashes[i] = hashKey(r.Key)
			sh := h.s.shardOf(hashes[i])
			groups[sh] = append(groups[sh], i)
		case OpScan:
			scans = true
		default:
			resps[i] = Response{Status: StatusError, Msg: ErrBadOp.Error()}
		}
	}
	// Touched shards execute in the store's visit order — domain-major
	// under a placement, so consecutive engine visits stay inside one
	// LLC domain instead of ping-ponging the handling thread's cache
	// lines across domains. Responses land by request index, so the
	// visit order never changes results, only locality.
	for _, sh := range h.s.visit {
		idxs := groups[sh]
		if len(idxs) == 0 {
			continue
		}
		h.acc.execGroup(sh, reqs, hashes, idxs, resps)
	}
	if scans {
		for i, r := range reqs {
			if r.Op == OpScan {
				resps[i] = Response{Status: StatusOK, Entries: h.Scan(r.Key, scanLimit(r.Limit))}
			}
		}
	}
	return resps
}

// tableOps adapts a shardTable to execPointOps' string-keyed accessors
// (batch sub-requests are owning Requests, so their keys are already
// strings; the zero-copy seam is the scalar path's concern).
func tableOps(sh *shardTable) (
	get func(hash uint64, key string) ([]byte, bool),
	put func(hash uint64, key string, value []byte) bool,
	del func(hash uint64, key string) bool) {
	get = func(hash uint64, key string) ([]byte, bool) {
		v, ok := sh.get(hash, keyOf(key), nil)
		if !ok {
			return nil, false
		}
		return v, true
	}
	put = func(hash uint64, key string, value []byte) bool { return sh.put(hash, keyOf(key), value) }
	del = func(hash uint64, key string) bool { return sh.del(hash, keyOf(key)) }
	return get, put, del
}

// execPointOps runs a point-op group through the given accessors and
// fills in the responses — the response-shaping shared by every engine.
func execPointOps(reqs []Request, hashes []uint64, idxs []int, resps []Response,
	get func(hash uint64, key string) ([]byte, bool),
	put func(hash uint64, key string, value []byte) bool,
	del func(hash uint64, key string) bool) {
	for _, i := range idxs {
		r := reqs[i]
		switch r.Op {
		case OpGet:
			if v, ok := get(hashes[i], r.Key); ok {
				resps[i] = Response{Status: StatusOK, Value: v}
			} else {
				resps[i] = Response{Status: StatusNotFound}
			}
		case OpPut:
			resps[i] = Response{Status: StatusOK, Created: put(hashes[i], r.Key, r.Value)}
		case OpDelete:
			if del(hashes[i], r.Key) {
				resps[i] = Response{Status: StatusOK}
			} else {
				resps[i] = Response{Status: StatusNotFound}
			}
		}
	}
}

// Scan returns up to limit entries whose keys start with prefix, sorted
// by key. It visits the shards one at a time (one engine visit each), so
// the result is a union of per-shard snapshots, not a global atomic
// snapshot — the usual contract of a sharded range read. limit <= 0 means
// unlimited.
func (h *Handle) Scan(prefix string, limit int) []Entry {
	var out []Entry
	// Domain-major shard walk (identity without a placement); the sort
	// below makes the result independent of visit order.
	for _, i := range h.s.visit {
		out = h.acc.scanShard(i, prefix, out)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// Len counts live entries (one engine visit per shard).
func (h *Handle) Len() int {
	n := 0
	for i := 0; i < h.s.opt.Shards; i++ {
		n += h.acc.entries(i)
	}
	return n
}

// ShardStats snapshots every shard's operation counters (one engine
// visit per shard). Index k is shard k. Snapshots are race-free under
// every engine and each counter is monotone across snapshots.
func (h *Handle) ShardStats() []Counters {
	out := make([]Counters, h.s.opt.Shards)
	for i := range out {
		out[i] = h.acc.stats(i)
	}
	return out
}
