// Package store is the system-level payoff of the paper's lock study: a
// sharded concurrent key-value store whose N independent shards are each
// an ssht-style bucket table guarded by any libslock algorithm
// (internal/locks). Where internal/ssht reproduces the paper's hash-table
// *microbenchmark* and internal/kvs mimics Memcached's locking anatomy,
// this package is the store a service would actually build on: string
// keys, byte-slice values, Get/Put/Delete plus an ordered prefix Scan,
// per-shard operation counters for throughput attribution, and a
// length-prefixed wire protocol (wire.go, server.go, client.go) so load
// generators can drive it like real traffic.
//
// The shard layer turns the paper's lock comparison into an end-to-end
// experiment: construct the same store with TAS, TICKET, MCS, CLH or the
// hierarchical cohort locks and measure how the choice propagates through
// a full request path instead of a tight acquire/release loop.
package store

import (
	"fmt"
	"sort"

	"ssync/internal/locks"
)

// segCap is the number of entries per bucket segment; segments chain when
// a bucket overflows. Hashes are packed together, separate from keys and
// values, so a bucket miss scans only hash words (the ssht layout).
const segCap = 7

// segment is one chunk of a bucket.
type segment struct {
	hashes [segCap]uint64
	used   [segCap]bool
	keys   [segCap]string
	vals   [segCap][]byte
	next   *segment
}

// Counters tallies the operations a shard has executed. It is maintained
// under the shard lock and snapshotted by ShardStats.
type Counters struct {
	Gets    uint64 `json:"gets"`
	Puts    uint64 `json:"puts"`
	Deletes uint64 `json:"deletes"`
	Scans   uint64 `json:"scans"`
}

// Total sums all operation classes.
func (c Counters) Total() uint64 { return c.Gets + c.Puts + c.Deletes + c.Scans }

// Sub returns the element-wise difference c - prev (counter deltas over a
// measurement window).
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Gets:    c.Gets - prev.Gets,
		Puts:    c.Puts - prev.Puts,
		Deletes: c.Deletes - prev.Deletes,
		Scans:   c.Scans - prev.Scans,
	}
}

// shardTable is one lock domain: a bucket table plus its counters.
type shardTable struct {
	buckets []segment
	ops     Counters
	entries int
}

// Options configures a Store.
type Options struct {
	// Shards is the number of independently locked shards. Default 16.
	Shards int
	// Buckets is the bucket count per shard. Default 64.
	Buckets int
	// Lock selects the per-shard lock algorithm. Default TICKET.
	Lock locks.Algorithm
	// MaxThreads is forwarded to ARRAY locks.
	MaxThreads int
	// Nodes is the NUMA-node count forwarded to hierarchical locks.
	Nodes int
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 16
	}
	if o.Buckets <= 0 {
		o.Buckets = 64
	}
	if o.Lock == "" {
		o.Lock = locks.TICKET
	}
	return o
}

// Store is the sharded key-value store. Access goes through per-goroutine
// Handles (the locks' queue state is per-goroutine).
type Store struct {
	opt    Options
	shards []shardTable
	guards []locks.Lock
}

// New creates a store.
func New(opt Options) *Store {
	opt = opt.withDefaults()
	s := &Store{
		opt:    opt,
		shards: make([]shardTable, opt.Shards),
		guards: make([]locks.Lock, opt.Shards),
	}
	lopt := locks.Options{MaxThreads: opt.MaxThreads, Nodes: opt.Nodes}
	for i := range s.shards {
		s.shards[i].buckets = make([]segment, opt.Buckets)
		s.guards[i] = locks.New(opt.Lock, lopt)
	}
	return s
}

// Shards returns the shard count.
func (s *Store) Shards() int { return s.opt.Shards }

// Lock returns the configured shard-lock algorithm.
func (s *Store) Lock() locks.Algorithm { return s.opt.Lock }

// String describes the store configuration.
func (s *Store) String() string {
	return fmt.Sprintf("store(%d shards × %d buckets, %s locks)",
		s.opt.Shards, s.opt.Buckets, s.opt.Lock)
}

// hashKey is FNV-1a over the key bytes.
func hashKey(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// Entry is one key-value pair returned by Scan.
type Entry struct {
	Key   string
	Value []byte
}

// Handle is a per-goroutine accessor carrying the per-shard lock tokens.
// Handles must not be shared between goroutines.
type Handle struct {
	s    *Store
	toks []*locks.Token
	node int
	// ExecBatch grouping scratch, reused across batches: a handle serves
	// one connection, and batch bookkeeping should not out-allocate the
	// work being measured.
	groups [][]int
	hashes []uint64
}

// NewHandle creates an accessor; node is the NUMA hint for hierarchical
// locks.
func (s *Store) NewHandle(node int) *Handle {
	return &Handle{s: s, toks: make([]*locks.Token, s.opt.Shards), node: node}
}

func (h *Handle) lock(i int) {
	if h.toks[i] == nil {
		h.toks[i] = h.s.guards[i].NewToken(h.node)
	}
	h.s.guards[i].Acquire(h.toks[i])
}

func (h *Handle) unlock(i int) { h.s.guards[i].Release(h.toks[i]) }

// shardOf maps a hash to its shard; bucketOf remixes the hash (Fibonacci
// hashing) so the bucket index is independent of the shard index.
func (s *Store) shardOf(hash uint64) int { return int(hash % uint64(s.opt.Shards)) }
func (s *Store) bucketOf(hash uint64) int {
	return int((hash * 0x9e3779b97f4a7c15 >> 17) % uint64(s.opt.Buckets))
}

// Get returns a copy of the value stored under key.
func (h *Handle) Get(key string) ([]byte, bool) {
	hash := hashKey(key)
	i := h.s.shardOf(hash)
	h.lock(i)
	defer h.unlock(i)
	return h.s.getLocked(i, hash, key)
}

// Put inserts or replaces the value under key; it reports whether the key
// was newly inserted. The value is copied.
func (h *Handle) Put(key string, value []byte) bool {
	hash := hashKey(key)
	i := h.s.shardOf(hash)
	h.lock(i)
	defer h.unlock(i)
	return h.s.putLocked(i, hash, key, value)
}

// Delete removes key; it reports whether the key was present.
func (h *Handle) Delete(key string) bool {
	hash := hashKey(key)
	i := h.s.shardOf(hash)
	h.lock(i)
	defer h.unlock(i)
	return h.s.deleteLocked(i, hash, key)
}

// getLocked is Get's body; shard i's lock must be held.
func (s *Store) getLocked(i int, hash uint64, key string) ([]byte, bool) {
	sh := &s.shards[i]
	sh.ops.Gets++
	for seg := &sh.buckets[s.bucketOf(hash)]; seg != nil; seg = seg.next {
		for j := 0; j < segCap; j++ {
			if seg.used[j] && seg.hashes[j] == hash && seg.keys[j] == key {
				return append([]byte(nil), seg.vals[j]...), true
			}
		}
	}
	return nil, false
}

// putLocked is Put's body; shard i's lock must be held.
func (s *Store) putLocked(i int, hash uint64, key string, value []byte) bool {
	sh := &s.shards[i]
	sh.ops.Puts++
	var freeSeg *segment
	freeIdx := -1
	last := (*segment)(nil)
	for seg := &sh.buckets[s.bucketOf(hash)]; seg != nil; seg = seg.next {
		for j := 0; j < segCap; j++ {
			if seg.used[j] {
				if seg.hashes[j] == hash && seg.keys[j] == key {
					seg.vals[j] = append(seg.vals[j][:0], value...)
					return false
				}
			} else if freeIdx < 0 {
				freeSeg, freeIdx = seg, j
			}
		}
		last = seg
	}
	if freeIdx < 0 {
		seg := &segment{}
		last.next = seg
		freeSeg, freeIdx = seg, 0
	}
	freeSeg.hashes[freeIdx] = hash
	freeSeg.keys[freeIdx] = key
	freeSeg.vals[freeIdx] = append([]byte(nil), value...)
	freeSeg.used[freeIdx] = true
	sh.entries++
	return true
}

// deleteLocked is Delete's body; shard i's lock must be held.
func (s *Store) deleteLocked(i int, hash uint64, key string) bool {
	sh := &s.shards[i]
	sh.ops.Deletes++
	for seg := &sh.buckets[s.bucketOf(hash)]; seg != nil; seg = seg.next {
		for j := 0; j < segCap; j++ {
			if seg.used[j] && seg.hashes[j] == hash && seg.keys[j] == key {
				seg.used[j] = false
				seg.keys[j] = ""
				seg.vals[j] = nil
				sh.entries--
				return true
			}
		}
	}
	return false
}

// ExecBatch executes a batch of scalar requests, amortizing locking the
// way the paper prescribes: the point ops (get/put/delete) are grouped
// by shard and each touched shard's lock is acquired exactly once for
// its whole group, instead of once per key. Scans still walk all shards
// one lock at a time, outside the grouped acquisitions. resps[i] is the
// response to reqs[i]; a batch is a performance unit, not a transaction
// — sub-ops linearize individually, and ops for one shard apply in
// batch order.
func (h *Handle) ExecBatch(reqs []Request) []Response {
	resps := make([]Response, len(reqs))
	if h.groups == nil {
		h.groups = make([][]int, h.s.opt.Shards)
	}
	groups := h.groups
	for i := range groups {
		groups[i] = groups[i][:0]
	}
	if cap(h.hashes) < len(reqs) {
		h.hashes = make([]uint64, len(reqs))
	}
	hashes := h.hashes[:len(reqs)]
	scans := false
	for i, r := range reqs {
		switch r.Op {
		case OpGet, OpPut, OpDelete:
			hashes[i] = hashKey(r.Key)
			sh := h.s.shardOf(hashes[i])
			groups[sh] = append(groups[sh], i)
		case OpScan:
			scans = true
		default:
			resps[i] = Response{Status: StatusError, Msg: ErrBadOp.Error()}
		}
	}
	for sh, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		h.lock(sh)
		for _, i := range idxs {
			r := reqs[i]
			switch r.Op {
			case OpGet:
				v, ok := h.s.getLocked(sh, hashes[i], r.Key)
				if ok {
					resps[i] = Response{Status: StatusOK, Value: v}
				} else {
					resps[i] = Response{Status: StatusNotFound}
				}
			case OpPut:
				created := h.s.putLocked(sh, hashes[i], r.Key, r.Value)
				resps[i] = Response{Status: StatusOK, Created: created}
			case OpDelete:
				if h.s.deleteLocked(sh, hashes[i], r.Key) {
					resps[i] = Response{Status: StatusOK}
				} else {
					resps[i] = Response{Status: StatusNotFound}
				}
			}
		}
		h.unlock(sh)
	}
	if scans {
		for i, r := range reqs {
			if r.Op == OpScan {
				resps[i] = Response{Status: StatusOK, Entries: h.Scan(r.Key, int(r.Limit))}
			}
		}
	}
	return resps
}

// Scan returns up to limit entries whose keys start with prefix, sorted
// by key. It visits the shards one at a time (one lock held at once), so
// the result is a union of per-shard snapshots, not a global atomic
// snapshot — the usual contract of a sharded range read. limit <= 0 means
// unlimited.
func (h *Handle) Scan(prefix string, limit int) []Entry {
	var out []Entry
	for i := range h.s.shards {
		h.lock(i)
		sh := &h.s.shards[i]
		sh.ops.Scans++
		for b := range sh.buckets {
			for s := &sh.buckets[b]; s != nil; s = s.next {
				for j := 0; j < segCap; j++ {
					if s.used[j] && hasPrefix(s.keys[j], prefix) {
						out = append(out, Entry{Key: s.keys[j], Value: append([]byte(nil), s.vals[j]...)})
					}
				}
			}
		}
		h.unlock(i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// Len counts live entries (takes every shard lock in turn).
func (h *Handle) Len() int {
	n := 0
	for i := range h.s.shards {
		h.lock(i)
		n += h.s.shards[i].entries
		h.unlock(i)
	}
	return n
}

// ShardStats snapshots every shard's operation counters (takes each shard
// lock in turn). Index k is shard k.
func (h *Handle) ShardStats() []Counters {
	out := make([]Counters, len(h.s.shards))
	for i := range h.s.shards {
		h.lock(i)
		out[i] = h.s.shards[i].ops
		h.unlock(i)
	}
	return out
}
