//go:build race

package store

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
