package store

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ssync/internal/xrand"
)

// Cross-engine behavioral tests: the three shard engines (locked, actor,
// optimistic) must be indistinguishable through the store API. Run with
// -race; CI's engine-matrix leg does.

// TestEngineConcurrentMixed smoke-tests concurrent mixed traffic under
// every engine, verifying invariant bounds on the final population.
func TestEngineConcurrentMixed(t *testing.T) {
	const nG, keys = 4, 64
	ops := 600
	if testing.Short() {
		ops = 200
	}
	for _, eng := range Engines {
		eng := eng
		t.Run(string(eng), func(t *testing.T) {
			t.Parallel()
			s := New(Options{Shards: 4, Buckets: 8, Engine: eng, MaxThreads: nG + 2, Nodes: 2})
			defer s.Close()
			var wg sync.WaitGroup
			for g := 0; g < nG; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					h := s.NewHandle(g % 2)
					rng := xrand.New(uint64(g)*7 + 1)
					for i := 0; i < ops; i++ {
						k := fmt.Sprintf("key-%d", rng.Uint64()%keys)
						switch rng.Uint64() % 3 {
						case 0:
							h.Put(k, []byte(k))
						case 1:
							if v, ok := h.Get(k); ok && !bytes.Equal(v, []byte(k)) {
								t.Errorf("%s: Get(%s) = %q", eng, k, v)
							}
						default:
							h.Delete(k)
						}
					}
				}()
			}
			wg.Wait()
			if n := s.NewHandle(0).Len(); n < 0 || n > keys {
				t.Fatalf("%s: Len = %d outside [0, %d]", eng, n, keys)
			}
		})
	}
}

// TestEngineBatchEquivalence drives the same deterministic batch
// sequence through every engine and requires byte-identical responses —
// the pluggable layer must not change what the batch path computes.
func TestEngineBatchEquivalence(t *testing.T) {
	build := func(eng Engine) [][]Response {
		s := New(Options{Shards: 4, Buckets: 8, Engine: eng})
		defer s.Close()
		h := s.NewHandle(0)
		rng := xrand.New(99)
		var all [][]Response
		for b := 0; b < 30; b++ {
			var reqs []Request
			for i := 0; i < 16; i++ {
				k := fmt.Sprintf("k%d", rng.Uint64()%40)
				switch rng.Uint64() % 4 {
				case 0, 1:
					reqs = append(reqs, Request{Op: OpGet, Key: k})
				case 2:
					reqs = append(reqs, Request{Op: OpPut, Key: k, Value: []byte(k)})
				default:
					reqs = append(reqs, Request{Op: OpDelete, Key: k})
				}
			}
			reqs = append(reqs, Request{Op: OpScan, Key: "k1", Limit: 8})
			all = append(all, h.ExecBatch(reqs))
		}
		return all
	}
	want := build(EngineLocked)
	for _, eng := range []Engine{EngineActor, EngineOptimistic} {
		got := build(eng)
		for b := range want {
			for i := range want[b] {
				w, g := want[b][i], got[b][i]
				if w.Status != g.Status || w.Created != g.Created ||
					!bytes.Equal(w.Value, g.Value) || len(w.Entries) != len(g.Entries) {
					t.Fatalf("%s: batch %d resp %d = %+v, locked engine got %+v", eng, b, i, g, w)
				}
				for e := range w.Entries {
					if w.Entries[e].Key != g.Entries[e].Key ||
						!bytes.Equal(w.Entries[e].Value, g.Entries[e].Value) {
						t.Fatalf("%s: batch %d resp %d entry %d = %q/%q, locked engine got %q/%q",
							eng, b, i, e, g.Entries[e].Key, g.Entries[e].Value,
							w.Entries[e].Key, w.Entries[e].Value)
					}
				}
			}
		}
	}
}

// TestShardStatsDuringTraffic is the counters regression test: a
// monitor hammers ShardStats while clients run mixed traffic, under
// every engine. With -race this pins the satellite requirement that
// snapshots are race-free (lock-held, mailbox-owned, or atomic); the
// test itself asserts the cross-engine contract that per-shard totals
// are monotone across snapshots and account for every completed op.
func TestShardStatsDuringTraffic(t *testing.T) {
	const nG = 4
	ops := 800
	if testing.Short() {
		ops = 250
	}
	for _, eng := range Engines {
		eng := eng
		t.Run(string(eng), func(t *testing.T) {
			t.Parallel()
			s := New(Options{Shards: 4, Buckets: 8, Engine: eng, MaxThreads: nG + 2})
			defer s.Close()
			var opsDone [nG]atomic.Uint64
			var stop atomic.Bool
			var traffic sync.WaitGroup
			for g := 0; g < nG; g++ {
				g := g
				traffic.Add(1)
				go func() {
					defer traffic.Done()
					h := s.NewHandle(0)
					rng := xrand.New(uint64(g)*13 + 5)
					for i := 0; i < ops; i++ {
						k := fmt.Sprintf("key-%d", rng.Uint64()%64)
						switch rng.Uint64() % 4 {
						case 0:
							h.Put(k, []byte(k))
						case 1, 2:
							h.Get(k)
						default:
							h.Delete(k)
						}
						opsDone[g].Add(1)
					}
				}()
			}
			// The monitor races the traffic on purpose.
			monDone := make(chan struct{})
			go func() {
				defer close(monDone)
				mon := s.NewHandle(0)
				prev := make([]uint64, s.Shards())
				for !stop.Load() {
					var before uint64
					for g := range opsDone {
						before += opsDone[g].Load()
					}
					stats := mon.ShardStats()
					var total uint64
					for i, c := range stats {
						cur := c.Total()
						if cur < prev[i] {
							t.Errorf("%s: shard %d counter went backwards: %d -> %d", eng, i, prev[i], cur)
							return
						}
						prev[i] = cur
						total += cur
					}
					// Every op completed before the snapshot began must
					// already be counted (ops count themselves before
					// returning to the client).
					if total < before {
						t.Errorf("%s: snapshot total %d < %d ops already completed", eng, total, before)
						return
					}
				}
			}()
			traffic.Wait()
			stop.Store(true)
			<-monDone

			// Quiesced: the final snapshot must account for exactly the
			// ops issued.
			stats := s.NewHandle(0).ShardStats()
			var total uint64
			for _, c := range stats {
				total += c.Total()
			}
			if total != uint64(nG*ops) {
				t.Fatalf("%s: final counter total = %d, want %d", eng, total, nG*ops)
			}
		})
	}
}
