package store

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, Key: "k"},
		{Op: OpGet, Key: ""},
		{Op: OpDelete, Key: "gone"},
		{Op: OpPut, Key: "k", Value: []byte("v")},
		{Op: OpPut, Key: "k", Value: []byte{}},
		{Op: OpPut, Key: strings.Repeat("K", MaxKeyLen), Value: bytes.Repeat([]byte{7}, 1024)},
		{Op: OpScan, Key: "prefix-", Limit: 42},
		{Op: OpScan, Key: "", Limit: 0},
	}
	for _, req := range reqs {
		body, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("encode %+v: %v", req.Op, err)
		}
		got, err := ParseRequest(body)
		if err != nil {
			t.Fatalf("parse %+v: %v", req.Op, err)
		}
		// Encoding does not distinguish nil from empty value.
		if got.Op != req.Op || got.Key != req.Key || got.Limit != req.Limit ||
			!bytes.Equal(got.Value, req.Value) {
			t.Fatalf("round trip mangled %+v into %+v", req, got)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []struct {
		op   byte
		resp Response
	}{
		{OpGet, Response{Status: StatusOK, Value: []byte("v")}},
		{OpGet, Response{Status: StatusNotFound}},
		{OpPut, Response{Status: StatusOK, Created: true}},
		{OpPut, Response{Status: StatusOK, Created: false}},
		{OpDelete, Response{Status: StatusOK}},
		{OpDelete, Response{Status: StatusNotFound}},
		{OpScan, Response{Status: StatusOK, Entries: []Entry{
			{Key: "a", Value: []byte("1")},
			{Key: "b", Value: []byte{}},
		}}},
		{OpScan, Response{Status: StatusOK}},
		{OpGet, Response{Status: StatusError, Msg: "boom"}},
	}
	for _, c := range cases {
		body, err := AppendResponse(nil, c.op, c.resp)
		if err != nil {
			t.Fatalf("encode op %d: %v", c.op, err)
		}
		got, err := ParseResponse(c.op, body)
		if err != nil {
			t.Fatalf("parse op %d: %v", c.op, err)
		}
		if got.Status != c.resp.Status || got.Created != c.resp.Created ||
			got.Msg != c.resp.Msg || !bytes.Equal(got.Value, c.resp.Value) ||
			len(got.Entries) != len(c.resp.Entries) {
			t.Fatalf("round trip mangled %+v into %+v", c.resp, got)
		}
		for i := range got.Entries {
			if got.Entries[i].Key != c.resp.Entries[i].Key ||
				!bytes.Equal(got.Entries[i].Value, c.resp.Entries[i].Value) {
				t.Fatalf("entry %d mangled: %+v vs %+v", i, got.Entries[i], c.resp.Entries[i])
			}
		}
	}
}

func TestParseRequestRejects(t *testing.T) {
	cases := []struct {
		name string
		body []byte
		err  error
	}{
		{"empty", []byte{}, ErrTruncated},
		{"bad op", []byte{0xFF, 0, 0}, ErrBadOp},
		{"zero op", []byte{0, 0, 0}, ErrBadOp},
		{"truncated key len", []byte{OpGet, 0}, ErrTruncated},
		{"truncated key", []byte{OpGet, 0, 5, 'a'}, ErrTruncated},
		{"trailing bytes", []byte{OpGet, 0, 1, 'a', 'X'}, ErrTrailingBytes},
		{"put missing value", []byte{OpPut, 0, 1, 'a'}, ErrTruncated},
		{"put oversized value", append([]byte{OpPut, 0, 1, 'a'},
			0xFF, 0xFF, 0xFF, 0xFF), ErrValueTooLong},
		{"scan missing limit", []byte{OpScan, 0, 0, 0, 0}, ErrTruncated},
	}
	for _, c := range cases {
		if _, err := ParseRequest(c.body); !errors.Is(err, c.err) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.err)
		}
	}
}

func TestFrameIO(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{{}, []byte("one"), bytes.Repeat([]byte{9}, 5000)}
	for _, b := range bodies {
		if err := WriteFrame(&buf, b); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for _, want := range bodies {
		got, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame mangled: %d bytes vs %d", len(got), len(want))
		}
		scratch = got[:0]
	}
	// An over-long frame header is rejected without allocating the body.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf, nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: err = %v", err)
	}
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write: err = %v", err)
	}
}

// FuzzParseRequest is the wire-protocol parser fuzz target (CI runs it):
// arbitrary bytes must never panic, and anything that parses must
// re-encode and re-parse to the identical request (the parser and
// encoder agree on the format).
func FuzzParseRequest(f *testing.F) {
	seed := [][]byte{
		{OpGet, 0, 1, 'k'},
		{OpDelete, 0, 0},
		{OpPut, 0, 1, 'k', 0, 0, 0, 2, 'v', 'w'},
		{OpScan, 0, 3, 'p', 'r', 'e', 0, 0, 0, 16},
		{0xFF},
		{},
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := ParseRequest(body)
		if err != nil {
			return
		}
		// Valid parse: the round trip must be exact and canonical.
		enc, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("parsed request fails to encode: %+v: %v", req, err)
		}
		if !bytes.Equal(enc, body) {
			t.Fatalf("non-canonical encoding:\nparsed %+v\nfrom % x\nre-enc % x", req, body, enc)
		}
		again, err := ParseRequest(enc)
		if err != nil {
			t.Fatalf("re-encoded request fails to parse: %v", err)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("round trip drifted: %+v vs %+v", req, again)
		}
	})
}

// FuzzParseResponse holds the response parser to the same standard, per
// opcode.
func FuzzParseResponse(f *testing.F) {
	f.Add(OpGet, []byte{StatusOK, 0, 0, 0, 1, 'v'})
	f.Add(OpPut, []byte{StatusOK, 1})
	f.Add(OpDelete, []byte{StatusNotFound})
	f.Add(OpScan, []byte{StatusOK, 0, 0, 0, 0})
	f.Add(OpGet, []byte{StatusError, 0, 2, 'n', 'o'})
	f.Fuzz(func(t *testing.T, op byte, body []byte) {
		resp, err := ParseResponse(op, body)
		if err != nil {
			return
		}
		if op != OpGet && op != OpPut && op != OpDelete && op != OpScan {
			return // parse succeeded only for status-only bodies
		}
		enc, err := AppendResponse(nil, op, resp)
		if err != nil {
			t.Fatalf("parsed response fails to encode: %+v: %v", resp, err)
		}
		if !bytes.Equal(enc, body) {
			t.Fatalf("non-canonical response encoding:\nparsed %+v\nfrom % x\nre-enc % x", resp, body, enc)
		}
	})
}
