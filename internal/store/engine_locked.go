package store

import "ssync/internal/locks"

// lockedEngine is the locking paradigm: each shard's bucket table is
// guarded by its own lock, any of the libslock algorithms. This is the
// configuration the paper's lock study predicts: the shard-lock choice
// (TAS vs TICKET vs MCS vs the hierarchical cohort locks) is the whole
// experiment, and everything else — table layout, batching, the wire —
// stays constant across algorithms.
type lockedEngine struct {
	opt    Options
	shards []shardTable
	guards []locks.Lock
}

func newLockedEngine(opt Options) *lockedEngine {
	e := &lockedEngine{
		opt:    opt,
		shards: make([]shardTable, opt.Shards),
		guards: make([]locks.Lock, opt.Shards),
	}
	lopt := locks.Options{MaxThreads: opt.MaxThreads, Nodes: opt.Nodes}
	for i := range e.shards {
		e.shards[i] = newShardTable(opt.Buckets)
		e.guards[i] = locks.New(opt.Lock, lopt)
	}
	return e
}

func (e *lockedEngine) access(node int) shardAccess {
	return &lockedAccess{e: e, toks: make([]*locks.Token, e.opt.Shards), node: node}
}

func (e *lockedEngine) close() {}

// lockedAccess carries the per-goroutine lock tokens (the queue locks'
// qnode state is per-goroutine).
type lockedAccess struct {
	e    *lockedEngine
	toks []*locks.Token
	node int
}

func (a *lockedAccess) lock(i int) {
	if a.toks[i] == nil {
		a.toks[i] = a.e.guards[i].NewToken(a.node)
	}
	a.e.guards[i].Acquire(a.toks[i])
}

func (a *lockedAccess) unlock(i int) { a.e.guards[i].Release(a.toks[i]) }

func (a *lockedAccess) get(shard int, hash uint64, key lookupKey, dst []byte) ([]byte, bool) {
	a.lock(shard)
	defer a.unlock(shard)
	return a.e.shards[shard].get(hash, key, dst)
}

func (a *lockedAccess) put(shard int, hash uint64, key lookupKey, value []byte) bool {
	a.lock(shard)
	defer a.unlock(shard)
	return a.e.shards[shard].put(hash, key, value)
}

func (a *lockedAccess) del(shard int, hash uint64, key lookupKey) bool {
	a.lock(shard)
	defer a.unlock(shard)
	return a.e.shards[shard].del(hash, key)
}

// execGroup acquires the shard lock exactly once for the whole group —
// the batch path's lock amortization.
func (a *lockedAccess) execGroup(shard int, reqs []Request, hashes []uint64, idxs []int, resps []Response) {
	a.lock(shard)
	defer a.unlock(shard)
	get, put, del := tableOps(&a.e.shards[shard])
	execPointOps(reqs, hashes, idxs, resps, get, put, del)
}

func (a *lockedAccess) scanShard(shard int, prefix string, out []Entry) []Entry {
	a.lock(shard)
	defer a.unlock(shard)
	return a.e.shards[shard].scan(prefix, out)
}

func (a *lockedAccess) exportShard(shard, from int, pred func(uint64) bool, maxEntries, maxBytes int, out []Entry) (int, []Entry) {
	a.lock(shard)
	defer a.unlock(shard)
	return a.e.shards[shard].export(from, pred, maxEntries, maxBytes, out)
}

func (a *lockedAccess) entries(shard int) int {
	a.lock(shard)
	defer a.unlock(shard)
	return a.e.shards[shard].entries
}

func (a *lockedAccess) stats(shard int) Counters {
	a.lock(shard)
	defer a.unlock(shard)
	return a.e.shards[shard].ops
}
