package linearize

import (
	"testing"

	"ssync/internal/xrand"
)

// seqOps builds the sequential history put(1), get()=1, delete, get()=absent.
func seqOps() []Op {
	return []Op{
		{Kind: Put, Arg: 1, Found: true, Call: 0, Ret: 1},
		{Kind: Get, Val: 1, Found: true, Call: 2, Ret: 3},
		{Kind: Delete, Found: true, Call: 4, Ret: 5},
		{Kind: Get, Found: false, Call: 6, Ret: 7},
	}
}

func TestSequentialHistory(t *testing.T) {
	res := CheckDefault(seqOps())
	if !res.Decided || !res.Ok {
		t.Fatalf("valid sequential history rejected: %+v", res)
	}
	if res := CheckDefault(nil); !res.Ok || !res.Decided {
		t.Fatalf("empty history rejected: %+v", res)
	}
}

func TestInputOrderIrrelevant(t *testing.T) {
	ops := seqOps()
	ops[0], ops[3] = ops[3], ops[0]
	ops[1], ops[2] = ops[2], ops[1]
	if res := CheckDefault(ops); !res.Ok {
		t.Fatalf("permuted input of a valid history rejected: %+v", res)
	}
}

func TestConcurrentReadSeesEitherSide(t *testing.T) {
	// put(7) overlaps both gets; one sees the old absence, one the new
	// value — both are explained by placing the put between them.
	ops := []Op{
		{Client: 0, Kind: Put, Arg: 7, Found: true, Call: 0, Ret: 100},
		{Client: 1, Kind: Get, Found: false, Call: 10, Ret: 20},
		{Client: 2, Kind: Get, Val: 7, Found: true, Call: 30, Ret: 40},
	}
	if res := CheckDefault(ops); !res.Ok || !res.Decided {
		t.Fatalf("legal concurrent history rejected: %+v", res)
	}
}

func TestStaleReadRejected(t *testing.T) {
	ops := []Op{
		{Kind: Put, Arg: 1, Found: true, Call: 0, Ret: 1},
		{Kind: Put, Arg: 2, Found: false, Call: 2, Ret: 3},
		{Kind: Get, Val: 1, Found: true, Call: 4, Ret: 5}, // strictly after put(2)
	}
	res := CheckDefault(ops)
	if !res.Decided || res.Ok {
		t.Fatalf("stale read accepted: %+v", res)
	}
	if res.Failed == nil {
		t.Fatal("failure report missing the blocked op")
	}
}

func TestLostUpdateRejected(t *testing.T) {
	// A read of a value nobody wrote.
	ops := []Op{
		{Kind: Put, Arg: 1, Found: true, Call: 0, Ret: 1},
		{Kind: Get, Val: 9, Found: true, Call: 2, Ret: 3},
	}
	if res := CheckDefault(ops); res.Ok {
		t.Fatalf("phantom value accepted: %+v", res)
	}
}

func TestWrongCreatedFlagRejected(t *testing.T) {
	ops := []Op{
		{Kind: Put, Arg: 1, Found: true, Call: 0, Ret: 1},
		{Kind: Put, Arg: 2, Found: true, Call: 2, Ret: 3}, // claims created again
	}
	if res := CheckDefault(ops); res.Ok {
		t.Fatalf("double-created accepted: %+v", res)
	}
	ops = []Op{
		{Kind: Put, Arg: 1, Found: true, Call: 0, Ret: 1},
		{Kind: Delete, Found: false, Call: 2, Ret: 3}, // claims key absent
	}
	if res := CheckDefault(ops); res.Ok {
		t.Fatalf("wrong delete-existed accepted: %+v", res)
	}
}

func TestAbsentReadAfterPutRejected(t *testing.T) {
	ops := []Op{
		{Kind: Put, Arg: 1, Found: true, Call: 0, Ret: 1},
		{Kind: Get, Found: false, Call: 2, Ret: 3},
	}
	if res := CheckDefault(ops); res.Ok {
		t.Fatalf("absent read after completed put accepted: %+v", res)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// Many fully-concurrent puts with a contradictory tail force real
	// search; a one-node budget must give up, not decide.
	var ops []Op
	for i := 0; i < 12; i++ {
		ops = append(ops, Op{Client: i, Kind: Put, Arg: uint64(i), Found: i == 0, Call: 0, Ret: 100})
	}
	ops = append(ops, Op{Kind: Get, Val: 999, Found: true, Call: 200, Ret: 201})
	res := Check(ops, 1)
	if res.Decided {
		t.Fatalf("budget 1 still decided: %+v", res)
	}
	// A real budget refutes it.
	res = Check(ops, 1<<22)
	if !res.Decided || res.Ok {
		t.Fatalf("contradictory concurrent history not refuted: %+v", res)
	}
}

func TestOverlongHistoryUndecided(t *testing.T) {
	ops := make([]Op, maxHistory+1)
	for i := range ops {
		ops[i] = Op{Kind: Get, Found: false, Call: int64(2 * i), Ret: int64(2*i + 1)}
	}
	if res := CheckDefault(ops); res.Decided {
		t.Fatalf("overlong history must be undecided, got %+v", res)
	}
}

// TestRandomSequentialHistories cross-checks the search against a
// reference execution: any history actually produced sequentially must
// be accepted, whatever mix of ops it contains.
func TestRandomSequentialHistories(t *testing.T) {
	rng := xrand.New(0xC0FFEE)
	for trial := 0; trial < 50; trial++ {
		var ops []Op
		state := regState{}
		now := int64(0)
		for i := 0; i < 40; i++ {
			op := Op{Client: int(rng.Uint64() % 4), Call: now, Ret: now + 1}
			now += 2
			switch rng.Uint64() % 3 {
			case 0:
				op.Kind = Put
				op.Arg = rng.Uint64() % 8
				op.Found = !state.present
				state = regState{present: true, val: op.Arg}
			case 1:
				op.Kind = Get
				op.Found = state.present
				op.Val = state.val
				if !op.Found {
					op.Val = 0
				}
			case 2:
				op.Kind = Delete
				op.Found = state.present
				state = regState{}
			}
			ops = append(ops, op)
		}
		if res := CheckDefault(ops); !res.Ok || !res.Decided {
			t.Fatalf("trial %d: generated sequential history rejected: %+v", trial, res)
		}
	}
}
