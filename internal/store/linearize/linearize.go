// Package linearize is a history-recording linearizability checker for
// single-key store histories: concurrent clients record every Put, Get
// and Delete with wall-clock invocation/response intervals, and Check
// searches for a legal sequential witness in the style of Wing & Gong
// ("Testing and verifying concurrent objects", JPDC 1993) with the
// state+set memoization of Lowe's extension and a bounded search budget.
//
// It replaces the suite's earlier ad-hoc monotonic-version assertions:
// instead of constraining the workload so that a per-key version number
// may only grow, clients run an arbitrary put/get/delete mix and the
// checker decides after the fact whether some linearization of the
// recorded intervals explains every observed response. Linearizability
// is local (Herlihy & Wing), so multi-key runs check each key's history
// independently.
//
// The model object is a single register-with-presence: Put(v) makes the
// key present with value v and reports whether it was newly inserted,
// Get reports (value, present), Delete reports whether the key was
// present and makes it absent — exactly the observable surface of one
// key of internal/store.
package linearize

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Kind is the operation class of a history event.
type Kind uint8

// The three single-key operations of the store.
const (
	Put Kind = iota
	Get
	Delete
)

func (k Kind) String() string {
	switch k {
	case Put:
		return "put"
	case Get:
		return "get"
	case Delete:
		return "delete"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Op is one completed operation of a single-key history.
type Op struct {
	// Client identifies the issuing client (diagnostics only).
	Client int
	// Kind is the operation class.
	Kind Kind
	// Arg is the value written (Put only).
	Arg uint64
	// Val is the value read (Get with Found=true only).
	Val uint64
	// Found is the presence observation: for Get whether the key was
	// present, for Put whether the key was newly inserted (the store's
	// created flag, inverted presence), for Delete whether the key
	// existed.
	Found bool
	// Call and Ret are the invocation and response times (any monotonic
	// clock; History uses nanoseconds since its creation). An op's
	// effect took place at some instant in [Call, Ret].
	Call, Ret int64
}

func (o Op) String() string {
	switch o.Kind {
	case Put:
		return fmt.Sprintf("c%d put(%d)=created:%v @[%d,%d]", o.Client, o.Arg, o.Found, o.Call, o.Ret)
	case Get:
		if o.Found {
			return fmt.Sprintf("c%d get()=%d @[%d,%d]", o.Client, o.Val, o.Call, o.Ret)
		}
		return fmt.Sprintf("c%d get()=absent @[%d,%d]", o.Client, o.Call, o.Ret)
	default:
		return fmt.Sprintf("c%d delete()=existed:%v @[%d,%d]", o.Client, o.Found, o.Call, o.Ret)
	}
}

// Result is a Check verdict.
type Result struct {
	// Ok reports that a linearization exists. Only meaningful when
	// Decided is true.
	Ok bool
	// Decided is false when the search exhausted its node budget before
	// finding a witness or refuting all orders.
	Decided bool
	// Visited counts explored search configurations.
	Visited int
	// Failed, when !Ok && Decided, is an op no legal linearization can
	// place (the first blocked minimal op found) — diagnostics only.
	Failed *Op
}

// regState is the model: one register with presence.
type regState struct {
	present bool
	val     uint64
}

// step applies op to the state, reporting whether the op's recorded
// outputs are consistent; the returned state is the post-state.
func step(s regState, op *Op) (regState, bool) {
	switch op.Kind {
	case Put:
		// created must equal "was absent".
		if op.Found != !s.present {
			return s, false
		}
		return regState{present: true, val: op.Arg}, true
	case Get:
		if op.Found {
			return s, s.present && s.val == op.Val
		}
		return s, !s.present
	case Delete:
		if op.Found != s.present {
			return s, false
		}
		return regState{}, true
	}
	return s, false
}

// DefaultBudget is the node budget CheckDefault uses — generous for the
// near-sequential histories real stress runs record, small enough that
// a pathological history fails fast with Decided=false instead of
// hanging the test run.
const DefaultBudget = 2_000_000

// CheckDefault runs Check with DefaultBudget.
func CheckDefault(history []Op) Result { return Check(history, DefaultBudget) }

// Check searches for a linearization of history: a total order of all
// ops that respects real time (an op that returned before another was
// invoked stays before it) and in which every op's recorded outputs
// match the sequential register semantics. maxNodes bounds the visited
// search configurations; exceeding it yields Decided=false.
//
// The search is the Wing–Gong recursion: repeatedly linearize one
// minimal op (one no unlinearized op wholly precedes), checking model
// consistency, and backtrack on dead ends. Visited (linearized-set,
// state) configurations are memoized, which makes the common
// near-sequential histories effectively linear-time.
func Check(history []Op, maxNodes int) Result {
	n := len(history)
	if n == 0 {
		return Result{Ok: true, Decided: true}
	}
	if n > maxHistory {
		// The bitmask memo key caps the history length; refuse rather
		// than silently degrade.
		return Result{Decided: false}
	}
	ops := make([]Op, n)
	copy(ops, history)
	// Sorting by invocation keeps the minimal-op scan cheap and the
	// memo keys stable under input permutation.
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Call < ops[j].Call })

	c := checker{ops: ops, budget: maxNodes, memo: make(map[memoKey]struct{})}
	c.mask = make([]uint64, (n+63)/64)
	ok := c.dfs(regState{}, 0)
	if c.exhausted {
		return Result{Decided: false, Visited: c.visited}
	}
	return Result{Ok: ok, Decided: true, Visited: c.visited, Failed: c.failed}
}

// maxHistory bounds the per-key history length Check accepts (the memo
// key packs the linearized-set bitmask into a fixed array).
const maxHistory = 64 * memoWords

const memoWords = 24 // 1536 ops

type memoKey struct {
	mask    [memoWords]uint64
	present bool
	val     uint64
}

type checker struct {
	ops       []Op
	mask      []uint64 // linearized set
	memo      map[memoKey]struct{}
	visited   int
	budget    int
	exhausted bool
	failed    *Op
}

func (c *checker) linearized(i int) bool { return c.mask[i>>6]&(1<<(i&63)) != 0 }
func (c *checker) set(i int)             { c.mask[i>>6] |= 1 << (i & 63) }
func (c *checker) clear(i int)           { c.mask[i>>6] &^= 1 << (i & 63) }

func (c *checker) key(s regState) memoKey {
	k := memoKey{present: s.present, val: s.val}
	copy(k.mask[:], c.mask)
	return k
}

// dfs linearizes the remaining ops from state s; done counts linearized
// ops. It returns true when a full linearization exists.
func (c *checker) dfs(s regState, done int) bool {
	if done == len(c.ops) {
		return true
	}
	c.visited++
	if c.visited > c.budget {
		c.exhausted = true
		return false
	}
	key := c.key(s)
	if _, seen := c.memo[key]; seen {
		return false
	}

	// minRet is the earliest response among unlinearized ops: any op
	// invoked after it cannot be linearized next (its predecessor in
	// real time is still pending), and ops are sorted by Call, so the
	// scan stops at the first such op.
	minRet := int64(1<<63 - 1)
	for i, op := range c.ops {
		if !c.linearized(i) && op.Ret < minRet {
			minRet = op.Ret
		}
	}
	blockedAll := true
	for i := range c.ops {
		if c.linearized(i) {
			continue
		}
		op := &c.ops[i]
		if op.Call > minRet {
			break // sorted by Call: no further candidates
		}
		next, ok := step(s, op)
		if !ok {
			continue
		}
		blockedAll = false
		c.set(i)
		if c.dfs(next, done+1) {
			return true
		}
		c.clear(i)
		if c.exhausted {
			return false
		}
	}
	if blockedAll && c.failed == nil {
		// Every minimal op is inconsistent here; remember one for the
		// failure report.
		for i := range c.ops {
			if !c.linearized(i) {
				c.failed = &c.ops[i]
				break
			}
		}
	}
	c.memo[key] = struct{}{}
	return false
}

// History records one key's operations concurrently: clients stamp
// intervals with Now and append completed ops with Add. The zero value
// is not ready; use NewHistory.
type History struct {
	start time.Time
	mu    sync.Mutex
	ops   []Op
}

// NewHistory starts an empty history; Now is measured from this call.
func NewHistory() *History { return &History{start: time.Now()} }

// Now returns the current monotonic offset for stamping Call/Ret.
func (h *History) Now() int64 { return int64(time.Since(h.start)) }

// Add appends one completed op; safe for concurrent use.
func (h *History) Add(op Op) {
	h.mu.Lock()
	h.ops = append(h.ops, op)
	h.mu.Unlock()
}

// Ops returns the recorded history (call after all clients stopped).
func (h *History) Ops() []Op {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Op(nil), h.ops...)
}

// Len reports the recorded op count; safe for concurrent use.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.ops)
}
