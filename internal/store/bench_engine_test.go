package store

import (
	"sync/atomic"
	"testing"

	"ssync/internal/workload"
	"ssync/internal/xrand"
)

// BenchmarkEngines pits the three shard engines against each other on
// the in-process path (no wire): a zipfian-free 95:5 get/put mix over a
// preloaded key space, one handle per benchmark goroutine. CI runs this
// at -benchtime=1x so the engine layer's hot path can't bit-rot; run it
// for real with `go test -bench Engines -benchtime 2s ./internal/store`.
func BenchmarkEngines(b *testing.B) {
	const nKeys = 4096
	for _, eng := range Engines {
		eng := eng
		b.Run(string(eng), func(b *testing.B) {
			s := New(Options{Shards: 8, Engine: eng, MaxThreads: 64})
			defer s.Close()
			pre := s.NewHandle(0)
			val := make([]byte, 64)
			for k := uint64(0); k < nKeys; k++ {
				pre.Put(workload.Key(k), val)
			}
			var seed atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				h := s.NewHandle(0)
				rng := xrand.New(seed.Add(1) * 0x9e3779b97f4a7c15)
				for pb.Next() {
					k := workload.Key(rng.Uint64() % nKeys)
					if rng.Uint64()%100 < 95 {
						h.Get(k)
					} else {
						h.Put(k, val)
					}
				}
			})
		})
	}
}
