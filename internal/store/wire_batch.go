package store

import (
	"encoding/binary"
	"errors"
)

// Batched and tagged extensions of the wire protocol. The paper's
// lesson — amortize coordination, do more work per lock acquisition and
// per message — shows up here twice: a batch frame carries N sub-ops so
// one round trip (and, server-side, one shard-lock acquisition per
// touched shard) covers N keys, and a tag prefix lets a multiplexed
// client keep a window of frames in flight and match responses back to
// requests.
//
// Batch request body (one frame):
//
//	OpBatch: op uint8, count uint16, count × scalar request bodies
//	OpMGet:  op uint8, count uint16, count × (keyLen uint16, key)
//	OpMPut:  op uint8, count uint16, count × (keyLen uint16, key,
//	         valLen uint32, val)
//
// MGET/MPUT are the compact first-class encodings of the two batch
// shapes real workloads issue constantly; OpBatch frames any mix of the
// four scalar ops. Batches never nest: a sub-request must be a scalar
// op, so the parsers reject OpBatch/OpMGet/OpMPut/OpTagged inside one.
//
// Batch response body:
//
//	count uint16, count × scalar response bodies (sub-response i is
//	decoded with sub-request i's opcode; the count must match)
//
// Tagged framing (the pipelined client always uses it):
//
//	request:  OpTagged uint8, tag uint32, inner request body
//	response: tag uint32, inner response body
//
// The server echoes the tag of each tagged request on its response and
// answers requests of one connection strictly in arrival order, so a
// client that matches responses FIFO can verify every echoed tag; a
// mismatch means the stream is corrupt and the connection must die.

// Extended opcodes (the scalar ones are 1..4 in wire.go).
const (
	// OpBatch frames a mixed batch of scalar sub-requests.
	OpBatch byte = iota + OpScan + 1
	// OpMGet is a compact multi-get (all sub-ops are OpGet).
	OpMGet
	// OpMPut is a compact multi-put (all sub-ops are OpPut).
	OpMPut
	// OpTagged wraps any request with a client-chosen tag.
	OpTagged
)

// MaxBatchOps bounds the sub-operations of one batch frame.
const MaxBatchOps = 4096

// MsgBatchOverflow is the StatusError message a server substitutes for
// a sub-response that would overflow MaxFrame (see appendBatchBounded):
// the op executed, only its payload was too large to ship alongside the
// rest of the batch. Clients treat it as "retry this key alone", not as
// a server fault.
const MsgBatchOverflow = "store: batch response exceeds frame"

// Batch wire-format errors.
var (
	ErrBatchTooLarge = errors.New("store: batch exceeds MaxBatchOps")
	ErrBatchOp       = errors.New("store: batch sub-request must be a scalar op")
	ErrBatchCount    = errors.New("store: batch response count mismatch")
	ErrNotTagged     = errors.New("store: not a tagged request")
)

// Batch is one decoded batch request: the top-level opcode (OpBatch,
// OpMGet or OpMPut) plus its scalar sub-requests. For OpMGet every
// sub-request is an OpGet, for OpMPut an OpPut.
type Batch struct {
	Op   byte
	Reqs []Request
}

// SubOps returns the sub-request opcodes in order — the context a batch
// response is decoded against.
func (b Batch) SubOps() []byte {
	ops := make([]byte, len(b.Reqs))
	for i, r := range b.Reqs {
		ops[i] = r.Op
	}
	return ops
}

// MGetBatch builds the compact multi-get batch for keys.
func MGetBatch(keys []string) Batch {
	reqs := make([]Request, len(keys))
	for i, k := range keys {
		reqs[i] = Request{Op: OpGet, Key: k}
	}
	return Batch{Op: OpMGet, Reqs: reqs}
}

// MPutBatch builds the compact multi-put batch for entries.
func MPutBatch(entries []Entry) Batch {
	reqs := make([]Request, len(entries))
	for i, e := range entries {
		reqs[i] = Request{Op: OpPut, Key: e.Key, Value: e.Value}
	}
	return Batch{Op: OpMPut, Reqs: reqs}
}

// AppendBatchRequest encodes b onto dst and returns the extended slice.
func AppendBatchRequest(dst []byte, b Batch) ([]byte, error) {
	if len(b.Reqs) > MaxBatchOps {
		return dst, ErrBatchTooLarge
	}
	switch b.Op {
	case OpBatch, OpMGet, OpMPut:
	default:
		return dst, ErrBadOp
	}
	dst = append(dst, b.Op)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(b.Reqs)))
	for _, r := range b.Reqs {
		var err error
		switch b.Op {
		case OpBatch:
			switch r.Op {
			case OpGet, OpPut, OpDelete, OpScan:
			default:
				return dst, ErrBatchOp
			}
			dst, err = AppendRequest(dst, r)
		case OpMGet:
			if r.Op != OpGet {
				return dst, ErrBatchOp
			}
			dst, err = appendKey(dst, r.Key)
		case OpMPut:
			if r.Op != OpPut {
				return dst, ErrBatchOp
			}
			if dst, err = appendKey(dst, r.Key); err != nil {
				return dst, err
			}
			if len(r.Value) > MaxValueLen {
				return dst, ErrValueTooLong
			}
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Value)))
			dst = append(dst, r.Value...)
		}
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

func appendKey(dst []byte, key string) ([]byte, error) {
	if len(key) > MaxKeyLen {
		return dst, ErrKeyTooLong
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(key)))
	return append(dst, key...), nil
}

// ParseBatchRequest decodes one batch request body (OpBatch, OpMGet or
// OpMPut), rejecting nested batches, truncation and trailing garbage.
func ParseBatchRequest(body []byte) (Batch, error) {
	p := parser{buf: body}
	var b Batch
	b.Op = p.u8()
	switch b.Op {
	case OpBatch, OpMGet, OpMPut:
	default:
		if p.err == nil {
			p.err = ErrBadOp
		}
	}
	n := int(p.u16())
	if p.err == nil && n > MaxBatchOps {
		p.err = ErrBatchTooLarge
	}
	for i := 0; i < n && p.err == nil; i++ {
		var r Request
		switch b.Op {
		case OpBatch:
			r = p.request()
			switch r.Op {
			case OpGet, OpPut, OpDelete, OpScan:
			default:
				if p.err == nil {
					p.err = ErrBatchOp
				}
			}
		case OpMGet:
			r = Request{Op: OpGet, Key: string(p.bytes16())}
		case OpMPut:
			r = Request{Op: OpPut, Key: string(p.bytes16())}
			r.Value = append([]byte(nil), p.bytes32(MaxValueLen)...)
		}
		b.Reqs = append(b.Reqs, r)
	}
	if err := p.finish(); err != nil {
		return Batch{}, err
	}
	return b, nil
}

// AppendBatchResponse encodes the sub-responses of a batch whose
// sub-request opcodes were ops. len(resps) must equal len(ops).
func AppendBatchResponse(dst []byte, ops []byte, resps []Response) ([]byte, error) {
	if len(ops) != len(resps) {
		return dst, ErrBatchCount
	}
	if len(resps) > MaxBatchOps {
		return dst, ErrBatchTooLarge
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(resps)))
	for i, r := range resps {
		var err error
		if dst, err = AppendResponse(dst, ops[i], r); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// ParseBatchResponse decodes a batch response body against the
// sub-request opcodes the batch was sent with.
func ParseBatchResponse(ops []byte, body []byte) ([]Response, error) {
	p := parser{buf: body}
	n := int(p.u16())
	if p.err == nil && (n != len(ops) || n > MaxBatchOps) {
		p.err = ErrBatchCount
	}
	var resps []Response
	for i := 0; i < n && p.err == nil; i++ {
		resps = append(resps, p.response(ops[i]))
	}
	if err := p.finish(); err != nil {
		return nil, err
	}
	return resps, nil
}

// AppendTaggedRequest starts a tagged request: the OpTagged marker and
// the tag. The caller appends the inner (scalar or batch) request body.
func AppendTaggedRequest(dst []byte, tag uint32) []byte {
	dst = append(dst, OpTagged)
	return binary.BigEndian.AppendUint32(dst, tag)
}

// ParseTag splits a tagged request body into its tag and inner body.
func ParseTag(body []byte) (tag uint32, inner []byte, err error) {
	if len(body) == 0 || body[0] != OpTagged {
		return 0, nil, ErrNotTagged
	}
	if len(body) < 5 {
		return 0, nil, ErrTruncated
	}
	return binary.BigEndian.Uint32(body[1:5]), body[5:], nil
}
