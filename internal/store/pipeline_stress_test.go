package store

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"

	"ssync/internal/locks"
	"ssync/internal/workload"
	"ssync/internal/xrand"
)

// Pipelining stress: many deep-window async clients against one server.
// The reader verifies every echoed tag, so "no response/tag mismatch"
// is enforced on every single frame — any error here fails the run.
// These tests run twice under -race in CI (`-run Pipeline -count=2`).

// stressAsyncClients runs nClients async clients at the given depth
// against freshly dialed connections, each issuing ops mixed scalar and
// batch requests while keeping the window saturated, and verifies
// responses against ground truth where it is stable (per-client private
// keys).
func stressAsyncClients(t *testing.T, dial func() (net.Conn, error), nClients, depth, ops int) {
	t.Helper()
	var wg sync.WaitGroup
	for c := 0; c < nClients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := dial()
			if err != nil {
				t.Error(err)
				return
			}
			cl := NewAsyncClient(conn, depth)
			defer cl.Close()
			rng := xrand.New(uint64(c)*31337 + 13)
			window := make([]*Future, 0, depth)
			expect := make(map[*Future]string) // future -> private value expected (gets only)
			settle := func(f *Future) bool {
				if f.subs != nil {
					if _, err := f.WaitBatch(); err != nil {
						t.Errorf("client %d: batch: %v", c, err)
						return false
					}
					return true
				}
				resp, err := f.Wait()
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return false
				}
				if want, ok := expect[f]; ok {
					delete(expect, f)
					if resp.Status != StatusOK || string(resp.Value) != want {
						t.Errorf("client %d: private get = %q (status %d), want %q",
							c, resp.Value, resp.Status, want)
						return false
					}
				}
				return true
			}
			// Seed the private key so gets on it always hit.
			priv := fmt.Sprintf("priv-%03d", c)
			val := fmt.Sprintf("val-%03d", c)
			if _, err := cl.Put(priv, []byte(val)); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < ops; i++ {
				var f *Future
				switch rng.Uint64() % 5 {
				case 0:
					f = cl.GetAsync(priv)
					// The private key is only ever written once, so the
					// response value is exact ground truth for tag matching:
					// a cross-matched response would carry another client's
					// value or a shared-key payload.
					expect[f] = val
				case 1:
					f = cl.PutAsync(workload.Key(rng.Uint64()%512), []byte{byte(i)})
				case 2:
					f = cl.GetAsync(workload.Key(rng.Uint64() % 512))
				case 3:
					f = cl.DeleteAsync(workload.Key(rng.Uint64() % 512))
				default:
					keys := make([]string, 4)
					for j := range keys {
						keys[j] = workload.Key(rng.Uint64() % 512)
					}
					f = cl.MGetAsync(keys)
				}
				if len(window) == depth {
					oldest := window[0]
					window = append(window[:0], window[1:]...)
					if !settle(oldest) {
						return
					}
				}
				window = append(window, f)
			}
			for _, f := range window {
				if !settle(f) {
					return
				}
			}
			if err := cl.Err(); err != nil {
				t.Errorf("client %d: client died during stress: %v", c, err)
			}
		}()
	}
	wg.Wait()
}

func TestPipelineStressPipe(t *testing.T) {
	s := New(Options{Shards: 4, Buckets: 8, Lock: locks.MCS})
	srv := NewServer(s, 2)
	ops := 2000
	if testing.Short() {
		ops = 400
	}
	stressAsyncClients(t, func() (net.Conn, error) {
		clientEnd, serverEnd := net.Pipe()
		go func() {
			defer serverEnd.Close()
			_ = srv.ServeConn(serverEnd)
		}()
		return clientEnd, nil
	}, 8, 64, ops)
}

func TestPipelineStressTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer ln.Close()
	s := New(Options{Shards: 4, Buckets: 8, Lock: locks.TICKET})
	srv := NewServer(s, 2)
	go func() { _ = srv.Serve(ln) }()
	ops := 2000
	if testing.Short() {
		ops = 400
	}
	stressAsyncClients(t, func() (net.Conn, error) {
		return net.Dial("tcp", ln.Addr().String())
	}, 6, 64, ops)
}

// TestPipelineWindowExhaustion floods a tiny window from many submitter
// goroutines: every op must complete (window backpressure, no deadlock)
// even though submissions outnumber the window 100:1.
func TestPipelineWindowExhaustion(t *testing.T) {
	s := New(Options{Shards: 2, Buckets: 4, Lock: locks.TICKET})
	srv := NewServer(s, 2)
	cl := srv.PipeAsyncClient(2)
	defer cl.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("w%d-%d", g, i)
				if _, err := cl.Put(key, []byte{1}); err != nil {
					t.Errorf("put %s: %v", key, err)
					return
				}
				if _, found, err := cl.Get(key); err != nil || !found {
					t.Errorf("get %s = %v, %v", key, found, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPipelineShutdownMidFlight closes clients with a full window in
// flight: every pending future must resolve — with its response or with
// the shutdown error, never by hanging — and later submissions must
// fail fast with ErrClientClosed.
func TestPipelineShutdownMidFlight(t *testing.T) {
	// Variant 1: a server that never answers. Every future must fail.
	dead, deadPeer := net.Pipe()
	go func() { // swallow writes so the client's writer never blocks forever
		buf := make([]byte, 4096)
		for {
			if _, err := deadPeer.Read(buf); err != nil {
				return
			}
		}
	}()
	cl := NewAsyncClient(dead, 8)
	var futs []*Future
	for i := 0; i < 8; i++ {
		futs = append(futs, cl.GetAsync(fmt.Sprintf("k%d", i)))
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		if _, err := f.Wait(); err == nil {
			t.Fatalf("future %d resolved without error after shutdown", i)
		}
	}
	if _, err := cl.GetAsync("late").Wait(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("post-close submit: err = %v, want ErrClientClosed", err)
	}
	deadPeer.Close()

	// Variant 2: a live server, Close racing real responses. Every
	// future resolves either way; none hangs (the test would time out).
	s := New(Options{Shards: 2, Buckets: 4, Lock: locks.TICKET})
	srv := NewServer(s, 2)
	for round := 0; round < 20; round++ {
		cl := srv.PipeAsyncClient(16)
		var futs []*Future
		for i := 0; i < 64; i++ {
			futs = append(futs, cl.PutAsync(workload.Key(uint64(i)), []byte{byte(round)}))
		}
		if err := cl.Close(); err != nil {
			t.Fatal(err)
		}
		resolved := 0
		for _, f := range futs {
			if _, err := f.Wait(); err == nil {
				resolved++
			} else if !errors.Is(err, ErrClientClosed) {
				t.Fatalf("round %d: unexpected failure kind: %v", round, err)
			}
		}
		_ = resolved // any split between completed and failed is legal
	}

	// Variant 3: the server side dies mid-flight; pending futures get the
	// transport error instead of hanging.
	clientEnd, serverEnd := net.Pipe()
	cl2 := NewAsyncClient(clientEnd, 8)
	f := cl2.GetAsync("k")
	serverEnd.Close()
	if _, err := f.Wait(); err == nil {
		t.Fatal("future resolved cleanly over a dead transport")
	}
	cl2.Close()
}

// TestPipelineOversizedBatchFailsOneFuture: a batch whose encoding
// exceeds MaxFrame fails its own future at submission; the connection
// and every other in-flight future stay healthy.
func TestPipelineOversizedBatchFailsOneFuture(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates several MB of values")
	}
	s := New(Options{Shards: 2, Buckets: 4, Lock: locks.TICKET})
	cl := NewServer(s, 1).PipeAsyncClient(8)
	defer cl.Close()
	ok := cl.PutAsync("fine", []byte("v"))
	var entries []Entry
	for i := 0; i < 6; i++ {
		entries = append(entries, Entry{Key: fmt.Sprintf("h%d", i), Value: make([]byte, MaxValueLen)})
	}
	huge := cl.MPutAsync(entries) // the raw single-frame primitive
	if _, err := huge.WaitBatch(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized batch future: err = %v, want ErrFrameTooLarge", err)
	}
	if _, err := ok.Wait(); err != nil {
		t.Fatalf("unrelated future collateral damage: %v", err)
	}
	if _, found, err := cl.Get("fine"); err != nil || !found {
		t.Fatalf("client dead after oversized batch: %v, %v", found, err)
	}
	// The chunking MPut wrapper handles the same entries fine.
	if created, err := cl.MPut(entries); err != nil || created != 6 {
		t.Fatalf("chunked MPut = %d, %v", created, err)
	}
	vals, err := cl.MGet([]string{"h0", "h5", "missing"})
	if err != nil || len(vals[0]) != MaxValueLen || len(vals[1]) != MaxValueLen || vals[2] != nil {
		t.Fatalf("MGet after chunked MPut: %v (lens %d,%d)", err, len(vals[0]), len(vals[1]))
	}
}

// TestPipelineTaggedScanFrameBound: a scan whose untagged response
// encodes to exactly MaxFrame must still fit once the 4-byte tag is
// prepended — the server trims one more entry for tagged connections
// instead of dying on WriteFrame.
func TestPipelineTaggedScanFrameBound(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates several MB of values")
	}
	s := New(Options{Shards: 2, Buckets: 4, Lock: locks.TICKET})
	srv := NewServer(s, 1)
	// Three max-size values plus one sized so the scan response body is
	// exactly MaxFrame: 1 status + 4 count + 4×(2 + 2-byte key + 4) + values.
	h := s.NewHandle(0)
	pad := MaxFrame - (1 + 4) - 4*(2+2+4) - 3*MaxValueLen
	if pad <= 0 || pad > MaxValueLen {
		t.Fatalf("bad pad %d — protocol bounds changed, resize the test", pad)
	}
	for i, size := range []int{MaxValueLen, MaxValueLen, MaxValueLen, pad} {
		h.Put(fmt.Sprintf("s%d", i), make([]byte, size))
	}

	// Untagged lock-step client: the exact-fit response carries all 4.
	c := srv.PipeClient()
	defer c.Close()
	entries, err := c.Scan("s", 0)
	if err != nil || len(entries) != 4 {
		t.Fatalf("lock-step scan = %d entries, %v", len(entries), err)
	}

	// Tagged async client: one entry is trimmed, the connection lives.
	a := srv.PipeAsyncClient(4)
	defer a.Close()
	entries, err = a.Scan("s", 0)
	if err != nil {
		t.Fatalf("tagged scan at the frame bound: %v", err)
	}
	if len(entries) != 3 {
		t.Fatalf("tagged scan = %d entries, want 3 (one trimmed for the tag)", len(entries))
	}
	if _, found, err := a.Get("s0"); err != nil || !found {
		t.Fatalf("connection dead after bound-fitting scan: %v, %v", found, err)
	}
}
