package simlocks

import "ssync/internal/memsim"

// The hierarchical locks are realised as cohort locks (Dice, Marathe,
// Shavit [14] — the paper cites this work as the origin of its hticket
// design, and the hierarchical CLH lock [27] has the same structure):
// a global lock is held by a *node*, and a per-node local lock hands the
// critical section between threads of that node for up to CohortLimit
// consecutive acquisitions before the global lock is surrendered. This
// keeps lock hand-over traffic inside one socket, which is exactly what
// pays off on the Xeon's strong intra-socket locality.
//
// Because the thread that surrenders the global lock is usually not the
// thread that acquired it, the global lock's queue token (CLH node or
// ticket) is part of the per-node cohort state and travels with the lock.

// nodeState is one memory node's cohort bookkeeping. The simulated words
// (on a line homed at the node, only ever touched while holding the node's
// local lock, so they stay in-socket) are: word 0 = "this node holds the
// global lock", word 1 = consecutive local hand-over count. The global
// lock token is register-like state handed over under the same protection.
type nodeState struct {
	addr memsim.Addr
	// Global-lock token, protected by the node's local lock.
	clhTok    clhToken
	ticketTok uint64
}

func (ns *nodeState) hasGlobal() memsim.Addr { return ns.addr }
func (ns *nodeState) count() memsim.Addr     { return ns.addr + 8 }

// hclhLock is the hierarchical CLH lock: CLH cohort over CLH locals.
type hclhLock struct {
	global *clhLock
	locals []*clhLock
	state  []*nodeState
	limit  uint64
}

func newHCLHLock(m *memsim.Machine, node int, opt Options) *hclhLock {
	limit := opt.CohortLimit
	if limit == 0 {
		limit = 64
	}
	l := &hclhLock{
		global: newCLHLock(m, node),
		locals: make([]*clhLock, m.Plat.NumNodes),
		state:  make([]*nodeState, m.Plat.NumNodes),
		limit:  limit,
	}
	for n := 0; n < m.Plat.NumNodes; n++ {
		l.locals[n] = newCLHLock(m, n)
		l.state[n] = &nodeState{addr: m.AllocLine(n)}
	}
	return l
}

func (l *hclhLock) Name() string { return string(HCLH) }

func (l *hclhLock) Acquire(t *memsim.Thread) {
	n := t.Node()
	l.locals[n].Acquire(t)
	if t.Load(l.state[n].hasGlobal()) == 1 {
		return // the global lock was handed over within the cohort
	}
	l.state[n].clhTok = l.global.acquireToken(t)
	t.Store(l.state[n].hasGlobal(), 1)
}

func (l *hclhLock) Release(t *memsim.Thread) {
	n := t.Node()
	st := l.state[n]
	cnt := t.Load(st.count())
	if cnt < l.limit && l.localWaiter(t, n) {
		// Pass the global lock within the node: the successor inherits the
		// token via st.clhTok.
		t.Store(st.count(), cnt+1)
		l.locals[n].Release(t)
		return
	}
	t.Store(st.count(), 0)
	t.Store(st.hasGlobal(), 0)
	l.global.releaseToken(t, st.clhTok)
	l.locals[n].Release(t)
}

// localWaiter reports whether another thread of node n is queued on the
// local lock (CLH: the tail is not the node we enqueued).
func (l *hclhLock) localWaiter(t *memsim.Thread, n int) bool {
	return t.Load(l.locals[n].tail) != l.locals[n].tok[t.Core()].my
}

// hticketLock is the hierarchical ticket lock [14]: ticket cohort over
// ticket locals (the paper's own hticket).
type hticketLock struct {
	global *ticketLock
	locals []*ticketLock
	state  []*nodeState
	limit  uint64
}

func newHTicketLock(m *memsim.Machine, node int, opt Options) *hticketLock {
	limit := opt.CohortLimit
	if limit == 0 {
		limit = 64
	}
	l := &hticketLock{
		global: newTicketLock(m, node, opt),
		locals: make([]*ticketLock, m.Plat.NumNodes),
		state:  make([]*nodeState, m.Plat.NumNodes),
		limit:  limit,
	}
	for n := 0; n < m.Plat.NumNodes; n++ {
		l.locals[n] = newTicketLock(m, n, opt)
		l.state[n] = &nodeState{addr: m.AllocLine(n)}
	}
	return l
}

func (l *hticketLock) Name() string { return string(HTICKET) }

func (l *hticketLock) Acquire(t *memsim.Thread) {
	n := t.Node()
	l.locals[n].Acquire(t)
	if t.Load(l.state[n].hasGlobal()) == 1 {
		return
	}
	l.state[n].ticketTok = l.global.acquireTicket(t)
	t.Store(l.state[n].hasGlobal(), 1)
}

func (l *hticketLock) Release(t *memsim.Thread) {
	n := t.Node()
	st := l.state[n]
	cnt := t.Load(st.count())
	if cnt < l.limit && l.localWaiter(t, n) {
		t.Store(st.count(), cnt+1)
		l.locals[n].Release(t)
		return
	}
	t.Store(st.count(), 0)
	t.Store(st.hasGlobal(), 0)
	l.global.releaseTicket(t, st.ticketTok)
	l.locals[n].Release(t)
}

// localWaiter reports whether another thread of node n holds a later
// ticket on the local lock.
func (l *hticketLock) localWaiter(t *memsim.Thread, n int) bool {
	loc := l.locals[n]
	return t.Load(loc.next) > loc.held[t.Core()]+1
}
