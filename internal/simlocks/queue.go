package simlocks

import "ssync/internal/memsim"

// mcsLock is the Mellor-Crummey–Scott queue lock [29]: threads enqueue a
// qnode (next pointer + granted flag) and spin on their own flag; the
// releaser hands the lock to its successor with a single store.
type mcsLock struct {
	tail memsim.Addr
	// qnode[i] is core i's queue node: word 0 = next (address of the
	// successor's qnode, 0 = none), word 1 = granted flag.
	qnode []memsim.Addr
}

func newMCSLock(m *memsim.Machine, node int) *mcsLock {
	l := &mcsLock{
		tail:  m.AllocLine(node),
		qnode: make([]memsim.Addr, m.Plat.NumCores),
	}
	for c := range l.qnode {
		// Queue nodes live on their core's own memory node, as libslock
		// allocates them from thread-local storage.
		l.qnode[c] = m.AllocLine(m.Plat.NodeOf(c))
	}
	return l
}

func (l *mcsLock) Name() string { return string(MCS) }

func (l *mcsLock) Acquire(t *memsim.Thread) {
	q := l.qnode[t.Core()]
	t.Store(q, 0)   // next = nil
	t.Store(q+8, 0) // granted = false
	pred := t.Swap(l.tail, uint64(q))
	if pred == 0 {
		return // queue was empty: lock acquired
	}
	t.Store(memsim.Addr(pred), uint64(q)) // pred.next = me
	t.WaitUntil(q+8, func(v uint64) bool { return v == 1 })
}

func (l *mcsLock) Release(t *memsim.Thread) {
	q := l.qnode[t.Core()]
	next := t.Load(q)
	if next == 0 {
		// No known successor; try to swing the tail back to empty.
		if t.CAS(l.tail, uint64(q), 0) {
			return
		}
		// A successor is in the middle of enqueueing; wait for the link.
		next = t.WaitUntil(q, func(v uint64) bool { return v != 0 })
	}
	t.Store(memsim.Addr(next)+8, 1)
}

// clhToken is the transferable state of one CLH acquisition: the node we
// enqueued and the predecessor node we spun on (which the releaser
// recycles). The hierarchical locks pass this token between cohort
// members together with the lock itself.
type clhToken struct {
	my    uint64
	pred  uint64
	owner int // core whose spare node was enqueued (gets the recycled one)
}

// clhLock is the Craig–Landin–Hagersten queue lock [43]: an implicit
// queue where each thread spins on its predecessor's node and recycles
// that node for its own next acquisition.
type clhLock struct {
	tail memsim.Addr
	// mynode[i] is core i's spare node address; tok[i] its in-flight
	// acquisition token (register state).
	mynode []uint64
	tok    []clhToken
}

func newCLHLock(m *memsim.Machine, node int) *clhLock {
	l := &clhLock{
		tail:   m.AllocLine(node),
		mynode: make([]uint64, m.Plat.NumCores),
		tok:    make([]clhToken, m.Plat.NumCores),
	}
	for c := range l.mynode {
		l.mynode[c] = uint64(m.AllocLine(m.Plat.NodeOf(c)))
	}
	dummy := m.AllocLine(node)
	m.Poke(dummy, 0) // released
	m.Poke(l.tail, uint64(dummy))
	return l
}

func (l *clhLock) Name() string { return string(CLH) }

// acquireToken enqueues the calling thread's spare node and spins until
// the predecessor releases; the returned token must be passed to
// releaseToken by whichever thread ends up releasing the lock.
func (l *clhLock) acquireToken(t *memsim.Thread) clhToken {
	c := t.Core()
	my := l.mynode[c]
	t.Store(memsim.Addr(my), 1) // pending
	pred := t.Swap(l.tail, my)
	t.WaitUntil(memsim.Addr(pred), func(v uint64) bool { return v == 0 })
	return clhToken{my: my, pred: pred, owner: c}
}

// releaseToken releases an acquisition. The recycled predecessor node is
// handed back to the core that enqueued the token, keeping the one-spare-
// node-per-core invariant even when a cohort member other than the
// enqueuer performs the release.
func (l *clhLock) releaseToken(t *memsim.Thread, tok clhToken) {
	t.Store(memsim.Addr(tok.my), 0)
	l.mynode[tok.owner] = tok.pred
}

func (l *clhLock) Acquire(t *memsim.Thread) {
	l.tok[t.Core()] = l.acquireToken(t)
}

func (l *clhLock) Release(t *memsim.Thread) {
	l.releaseToken(t, l.tok[t.Core()])
}
