package simlocks

import "ssync/internal/memsim"

// tasLock is the test-and-set spin lock: one word, spun on with the atomic
// itself. Scales poorly by design — every attempt is a write-intent
// transaction on the single line.
type tasLock struct {
	word memsim.Addr
}

func newTASLock(m *memsim.Machine, node int) *tasLock {
	return &tasLock{word: m.AllocLine(node)}
}

func (l *tasLock) Name() string { return string(TAS) }

func (l *tasLock) Acquire(t *memsim.Thread) {
	for t.TAS(l.word) != 0 {
		// Re-attempt as soon as the line is handed back; the failed TAS
		// already cost a full exclusive acquisition of the line.
	}
}

func (l *tasLock) Release(t *memsim.Thread) { t.Store(l.word, 0) }

// ttasLock is the test-and-test-and-set lock with exponential back-off:
// spin reading (locally cached) until the lock looks free, then attempt
// the TAS; back off exponentially on failure.
type ttasLock struct {
	word memsim.Addr
	max  uint64
}

func newTTASLock(m *memsim.Machine, node int, opt Options) *ttasLock {
	max := opt.MaxExpBackoff
	if max == 0 {
		max = 8192
	}
	return &ttasLock{word: m.AllocLine(node), max: max}
}

func (l *ttasLock) Name() string { return string(TTAS) }

func (l *ttasLock) Acquire(t *memsim.Thread) {
	backoff := uint64(128)
	for {
		t.WaitUntil(l.word, func(v uint64) bool { return v == 0 })
		if t.TAS(l.word) == 0 {
			return
		}
		t.Pause(backoff)
		if backoff < l.max {
			backoff *= 2
		}
	}
}

func (l *ttasLock) Release(t *memsim.Thread) { t.Store(l.word, 0) }

// ticketLock is the paper's §5.3 ticket lock: a next counter taken with
// FAI and a current counter spun upon. Variants: naive spinning (every
// release triggers a re-fetch storm), proportional back-off (spin with a
// pause proportional to the queue position, [29]), and prefetchw (pin the
// line in Modified state before reading, avoiding the Opteron's
// store-on-shared broadcast).
type ticketLock struct {
	next     memsim.Addr
	current  memsim.Addr
	backoff  bool
	prefetch bool
	unit     uint64
	// held[i] is core i's ticket while it holds the lock (register state).
	held []uint64
}

func newTicketLock(m *memsim.Machine, node int, opt Options) *ticketLock {
	unit := opt.BackoffUnit
	if unit == 0 {
		unit = 700
	}
	// next and current deliberately live on separate lines so that ticket
	// grabbing does not steal the line spinners poll.
	return &ticketLock{
		next:     m.AllocLine(node),
		current:  m.AllocLine(node),
		backoff:  opt.TicketBackoff,
		prefetch: opt.TicketPrefetchw,
		unit:     unit,
		held:     make([]uint64, m.Plat.NumCores),
	}
}

func (l *ticketLock) Name() string { return string(TICKET) }

// acquireTicket draws a ticket, waits for its turn and returns the ticket,
// which whoever releases the lock must pass to releaseTicket (the
// hierarchical lock hands it over within a cohort).
func (l *ticketLock) acquireTicket(t *memsim.Thread) uint64 {
	ticket := t.FAI(l.next)
	if l.prefetch {
		t.Prefetchw(l.current)
	}
	cur := t.Load(l.current)
	for cur != ticket {
		if !l.backoff {
			// Naive: re-fetch on every release (invalidation storm).
			cur = t.WaitChange(l.current, cur)
			continue
		}
		// Proportional back-off: pause for the expected number of
		// hand-overs before us [29], then poll again. In the §5.3
		// prefetchw variant every load is preceded by the (asynchronous,
		// fire-and-forget) prefetch, so the line is always in Modified
		// state at the most recent poller, the load itself hits the
		// freshly-owned local copy, and no store to the line ever finds it
		// Shared or Owned — the Opteron never pays its broadcast.
		t.Pause((ticket - cur) * l.unit)
		if l.prefetch {
			t.Prefetchw(l.current)
		}
		cur = t.Load(l.current)
	}
	return ticket
}

func (l *ticketLock) releaseTicket(t *memsim.Thread, ticket uint64) {
	// A plain store. In the prefetchw variant the pollers keep the line in
	// Modified state, so this is a directed point-to-point transfer rather
	// than a store-on-shared broadcast.
	t.Store(l.current, ticket+1)
}

func (l *ticketLock) Acquire(t *memsim.Thread) {
	l.held[t.Core()] = l.acquireTicket(t)
}

func (l *ticketLock) Release(t *memsim.Thread) {
	// The holder knows its ticket; the release is a single store.
	l.releaseTicket(t, l.held[t.Core()])
}

// arrayLock is Anderson's array-based queue lock [20]: one padded flag
// slot per core; each thread spins on its own slot.
type arrayLock struct {
	tail  memsim.Addr
	slots []memsim.Addr
	n     uint64
	// myslot[i] is core i's current slot index (per-thread register state).
	myslot []uint64
}

func newArrayLock(m *memsim.Machine, node int) *arrayLock {
	n := m.Plat.NumCores
	l := &arrayLock{
		tail:   m.AllocLine(node),
		slots:  make([]memsim.Addr, n),
		n:      uint64(n),
		myslot: make([]uint64, n),
	}
	for i := range l.slots {
		l.slots[i] = m.AllocLine(node)
	}
	m.Poke(l.slots[0], 1) // slot 0 starts granted
	return l
}

func (l *arrayLock) Name() string { return string(ARRAY) }

func (l *arrayLock) Acquire(t *memsim.Thread) {
	idx := t.FAI(l.tail) % l.n
	l.myslot[t.Core()] = idx
	t.WaitUntil(l.slots[idx], func(v uint64) bool { return v == 1 })
	t.Store(l.slots[idx], 0) // rearm for the next round
}

func (l *arrayLock) Release(t *memsim.Thread) {
	idx := (l.myslot[t.Core()] + 1) % l.n
	t.Store(l.slots[idx], 1)
}

// mutexLock models the pthread mutex: one CAS attempt, a brief adaptive
// spin, then futex-style parking. The park/wake costs come from the
// platform model (syscall plus context switch). Word states: 0 free,
// 1 locked, 2 locked with (possible) waiters.
type mutexLock struct {
	word memsim.Addr
	m    *memsim.Machine
}

func newMutexLock(m *memsim.Machine, node int) *mutexLock {
	return &mutexLock{word: m.AllocLine(node), m: m}
}

func (l *mutexLock) Name() string { return string(MUTEX) }

func (l *mutexLock) Acquire(t *memsim.Thread) {
	if t.CAS(l.word, 0, 1) {
		return
	}
	// Short adaptive spin before sleeping.
	for i := 0; i < 2; i++ {
		t.Pause(120)
		if t.CAS(l.word, 0, 1) {
			return
		}
	}
	for {
		v := t.Swap(l.word, 2) // mark contended
		if v == 0 {
			return // got it (now in contended state; unlock will pay a wake)
		}
		t.Pause(l.m.Plat.MutexParkCost) // futex_wait entry
		t.WaitUntil(l.word, func(v uint64) bool { return v != 2 })
		t.Pause(l.m.Plat.MutexResumeCost) // kernel wake-up path
	}
}

func (l *mutexLock) Release(t *memsim.Thread) {
	if t.Swap(l.word, 0) == 2 {
		t.Pause(l.m.Plat.MutexWakeCost) // futex_wake syscall
	}
}
