package simlocks

import (
	"testing"

	"ssync/internal/arch"
	"ssync/internal/memsim"
)

// acquisitionSpread runs a contended workload and returns the min and max
// per-thread acquisition counts.
func acquisitionSpread(t *testing.T, p *arch.Platform, alg Alg, nThreads int) (uint64, uint64) {
	t.Helper()
	m := memsim.New(p)
	m.Opt.CostJitter = 0.15
	l := New(m, alg, 0, DefaultOptions(p))
	data := m.AllocLine(0)
	m.SetDeadline(120_000)
	counts := make([]uint64, nThreads)
	for ti, c := range p.PlaceThreads(nThreads) {
		ti := ti
		m.Spawn(c, func(th *memsim.Thread) {
			th.Pause(uint64(ti) * 37)
			for !th.Done() {
				l.Acquire(th)
				th.Store(data, th.Load(data)+1)
				l.Release(th)
				counts[ti]++
				th.Pause(100)
			}
		})
	}
	m.Run()
	min, max := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	return min, max
}

func TestTicketIsFair(t *testing.T) {
	// FIFO tickets: under symmetric load every thread gets close to the
	// same number of acquisitions.
	min, max := acquisitionSpread(t, arch.Niagara(), TICKET, 16)
	if min == 0 {
		t.Fatal("a thread starved under the ticket lock")
	}
	if float64(max)/float64(min) > 1.5 {
		t.Errorf("ticket unfair: min %d, max %d", min, max)
	}
}

func TestQueueLocksAreFair(t *testing.T) {
	for _, alg := range []Alg{MCS, CLH} {
		min, max := acquisitionSpread(t, arch.Niagara(), alg, 16)
		if min == 0 {
			t.Fatalf("%s: a thread starved", alg)
		}
		if float64(max)/float64(min) > 1.6 {
			t.Errorf("%s unfair: min %d, max %d", alg, min, max)
		}
	}
}

func TestTASCanBeUnfair(t *testing.T) {
	// Informational rather than normative: TAS has no fairness guarantee.
	// We only require no total starvation within the run (the paper's test
	// harness pauses after release, which gives everyone a chance).
	min, _ := acquisitionSpread(t, arch.Opteron(), TAS, 12)
	if min == 0 {
		t.Skip("TAS starved a thread in this window — allowed, just noting it")
	}
}

func TestHierarchicalCohortBounded(t *testing.T) {
	// The cohort limit must prevent one socket from monopolising the lock:
	// threads on a remote socket still acquire.
	p := arch.Xeon()
	m := memsim.New(p)
	l := New(m, HTICKET, 0, DefaultOptions(p))
	data := m.AllocLine(0)
	m.SetDeadline(400_000)
	counts := make([]uint64, 20)
	for ti, c := range p.PlaceThreads(20) { // two sockets
		ti := ti
		m.Spawn(c, func(th *memsim.Thread) {
			for !th.Done() {
				l.Acquire(th)
				th.Store(data, th.Load(data)+1)
				l.Release(th)
				counts[ti]++
				th.Pause(100)
			}
		})
	}
	m.Run()
	var socket0, socket1 uint64
	for ti, c := range counts {
		if ti < 10 {
			socket0 += c
		} else {
			socket1 += c
		}
		_ = c
	}
	if socket1 == 0 {
		t.Fatal("remote socket starved despite the cohort limit")
	}
	if socket0 == 0 {
		t.Fatal("home socket starved")
	}
}
