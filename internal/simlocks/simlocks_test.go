package simlocks

import (
	"testing"

	"ssync/internal/arch"
	"ssync/internal/memsim"
)

// exerciseLock runs nThreads × rounds critical sections under the lock and
// verifies mutual exclusion two ways: a host-side overlap detector and a
// read-modify-write counter in simulated memory.
func exerciseLock(t *testing.T, p *arch.Platform, alg Alg, nThreads, rounds int) uint64 {
	t.Helper()
	m := memsim.New(p)
	l := New(m, alg, p.NodeOf(0), DefaultOptions(p))
	data := m.AllocLine(0)
	inCS := 0
	cores := p.PlaceThreads(nThreads)
	for _, c := range cores {
		m.Spawn(c, func(th *memsim.Thread) {
			for i := 0; i < rounds; i++ {
				l.Acquire(th)
				inCS++
				if inCS != 1 {
					t.Errorf("%s on %s: %d threads in the critical section", alg, p.Name, inCS)
				}
				v := th.Load(data)
				th.Pause(50)
				th.Store(data, v+1)
				inCS--
				l.Release(th)
				th.Pause(100)
			}
		})
	}
	cycles := m.Run()
	want := uint64(nThreads * rounds)
	if got := m.Peek(data); got != want {
		t.Errorf("%s on %s: counter = %d, want %d (lost updates)", alg, p.Name, got, want)
	}
	return cycles
}

func TestMutualExclusionAllLocksAllPlatforms(t *testing.T) {
	for _, p := range arch.All() {
		for _, alg := range Algorithms(p) {
			p, alg := p, alg
			t.Run(p.Name+"/"+string(alg), func(t *testing.T) {
				n := 8
				if n > p.NumCores {
					n = p.NumCores
				}
				exerciseLock(t, p, alg, n, 30)
			})
		}
	}
}

func TestSingleThreadUncontested(t *testing.T) {
	// Every lock must work (and be cheap) with one thread.
	p := arch.Opteron()
	for _, alg := range All {
		cycles := exerciseLock(t, p, alg, 1, 20)
		if cycles == 0 {
			t.Errorf("%s: zero cycles", alg)
		}
	}
}

func TestHighContentionManyCores(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	for _, p := range []*arch.Platform{arch.Opteron(), arch.Tilera()} {
		for _, alg := range Algorithms(p) {
			exerciseLock(t, p, alg, p.NumCores, 6)
		}
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() uint64 {
		m := memsim.New(arch.Xeon())
		l := New(m, MCS, 0, DefaultOptions(m.Plat))
		data := m.AllocLine(0)
		for i := 0; i < 12; i++ {
			m.Spawn(i, func(th *memsim.Thread) {
				for k := 0; k < 25; k++ {
					l.Acquire(th)
					th.Store(data, th.Load(data)+1)
					l.Release(th)
				}
			})
		}
		return m.Run()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("lock benchmark not deterministic: %d vs %d", a, b)
	}
}

func TestTicketVariantsOrdering(t *testing.T) {
	// §5.3 / Figure 3: naive < back-off < back-off+prefetchw on the
	// Opteron under contention (in throughput terms: naive slowest).
	p := arch.Opteron()
	run := func(opt Options) uint64 {
		m := memsim.New(p)
		l := newTicketLock(m, 0, opt)
		data := m.AllocLine(0)
		for i := 0; i < 24; i++ {
			m.Spawn(i, func(th *memsim.Thread) {
				for k := 0; k < 10; k++ {
					l.Acquire(th)
					th.Store(data, th.Load(data)+1)
					l.Release(th)
					th.Pause(100)
				}
			})
		}
		return m.Run()
	}
	naive := run(Options{})
	backoff := run(Options{TicketBackoff: true, BackoffUnit: 700})
	both := run(Options{TicketBackoff: true, BackoffUnit: 700, TicketPrefetchw: true})
	if !(naive > backoff) {
		t.Errorf("naive (%d) should be slower than back-off (%d)", naive, backoff)
	}
	if !(backoff > both) {
		t.Errorf("back-off (%d) should be slower than back-off+prefetchw (%d)", backoff, both)
	}
}

func TestHierarchicalBeatsPlainSpinOnXeonContention(t *testing.T) {
	// Figure 5: under extreme contention on the Xeon the hierarchical locks
	// win by keeping hand-overs within a socket.
	p := arch.Xeon()
	run := func(alg Alg) uint64 {
		m := memsim.New(p)
		l := New(m, alg, 0, DefaultOptions(p))
		data := m.AllocLine(0)
		for i := 0; i < 40; i++ { // 4 sockets
			m.Spawn(i, func(th *memsim.Thread) {
				for k := 0; k < 8; k++ {
					l.Acquire(th)
					th.Store(data, th.Load(data)+1)
					l.Release(th)
					th.Pause(120)
				}
			})
		}
		return m.Run()
	}
	if tas, ht := run(TAS), run(HTICKET); ht >= tas {
		t.Errorf("HTICKET (%d cycles) should beat TAS (%d) across 4 Xeon sockets", ht, tas)
	}
}

func TestUnknownAlgorithmPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with bogus algorithm must panic")
		}
	}()
	New(memsim.New(arch.Opteron()), Alg("BOGUS"), 0, Options{})
}

func TestAlgorithmsPerPlatform(t *testing.T) {
	if n := len(Algorithms(arch.Opteron())); n != 9 {
		t.Errorf("Opteron must evaluate 9 locks, got %d", n)
	}
	if n := len(Algorithms(arch.Niagara())); n != 7 {
		t.Errorf("Niagara must evaluate 7 locks, got %d", n)
	}
	for _, alg := range Algorithms(arch.Tilera()) {
		if alg == HCLH || alg == HTICKET {
			t.Error("single-sockets must not use hierarchical locks")
		}
	}
}
