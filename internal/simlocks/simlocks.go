// Package simlocks implements the nine lock algorithms of the paper's
// libslock against the machine simulator (internal/memsim): the spin locks
// TAS, TTAS (with exponential back-off) and TICKET (with proportional
// back-off and the §5.3 prefetchw optimization), the ARRAY lock, the queue
// locks MCS and CLH, the hierarchical locks HCLH and HTICKET (realised as
// cohort locks, per Dice et al. [14], which the paper cites as the origin
// of its hticket design), and a pthread-style MUTEX.
//
// Per-thread lock state (queue nodes, tickets) lives in host variables —
// the moral equivalent of registers and thread-local storage, which cost
// nothing on real hardware either. Everything shared goes through the
// simulator and pays coherence costs.
package simlocks

import (
	"fmt"

	"ssync/internal/arch"
	"ssync/internal/memsim"
)

// Alg names a lock algorithm, using the paper's spelling.
type Alg string

// The nine algorithms of libslock.
const (
	TAS     Alg = "TAS"
	TTAS    Alg = "TTAS"
	TICKET  Alg = "TICKET"
	ARRAY   Alg = "ARRAY"
	MUTEX   Alg = "MUTEX"
	MCS     Alg = "MCS"
	CLH     Alg = "CLH"
	HCLH    Alg = "HCLH"
	HTICKET Alg = "HTICKET"
)

// All lists every algorithm in the paper's figure order.
var All = []Alg{TAS, TTAS, TICKET, ARRAY, MUTEX, MCS, CLH, HCLH, HTICKET}

// Algorithms returns the algorithms evaluated on a platform: all nine on
// the multi-sockets, the seven non-hierarchical ones on the single-sockets
// (paper §6.1.2: "given the uniform structure of the platforms, we do not
// use hierarchical locks on the single-socket machines").
func Algorithms(p *arch.Platform) []Alg {
	if p.MultiSocket {
		return All
	}
	return []Alg{TAS, TTAS, TICKET, ARRAY, MUTEX, MCS, CLH}
}

// Lock is a simulated lock. Acquire and Release must be called from a
// simulated thread, in strict pairs per thread.
type Lock interface {
	Name() string
	Acquire(t *memsim.Thread)
	Release(t *memsim.Thread)
}

// Options tunes algorithm variants.
type Options struct {
	// TicketBackoff enables proportional back-off in the ticket lock
	// (paper §5.3; on by default through New).
	TicketBackoff bool
	// TicketPrefetchw enables the §5.3 prefetchw optimization of the
	// ticket lock (profitable on the Opteron-style incomplete directory).
	TicketPrefetchw bool
	// BackoffUnit is the proportional back-off quantum in cycles.
	BackoffUnit uint64
	// MaxExpBackoff caps the TTAS exponential back-off, cycles.
	MaxExpBackoff uint64
	// CohortLimit bounds consecutive intra-node hand-offs in the
	// hierarchical locks.
	CohortLimit uint64
}

// DefaultOptions returns the per-platform defaults the paper's SSYNC uses:
// back-off on, prefetchw wherever the platform benefits from pinning lines
// in Modified state (the Opteron family).
func DefaultOptions(p *arch.Platform) Options {
	return Options{
		TicketBackoff:   true,
		TicketPrefetchw: p.IncompleteDirectory,
		BackoffUnit:     700,
		MaxExpBackoff:   8192,
		CohortLimit:     64,
	}
}

// New creates a lock of the given algorithm on machine m, with its shared
// state allocated on memory node `node` (the paper allocates the globally
// shared data from the first participating node).
func New(m *memsim.Machine, alg Alg, node int, opt Options) Lock {
	switch alg {
	case TAS:
		return newTASLock(m, node)
	case TTAS:
		return newTTASLock(m, node, opt)
	case TICKET:
		return newTicketLock(m, node, opt)
	case ARRAY:
		return newArrayLock(m, node)
	case MUTEX:
		return newMutexLock(m, node)
	case MCS:
		return newMCSLock(m, node)
	case CLH:
		return newCLHLock(m, node)
	case HCLH:
		return newHCLHLock(m, node, opt)
	case HTICKET:
		return newHTicketLock(m, node, opt)
	}
	panic(fmt.Sprintf("simlocks: unknown algorithm %q", alg))
}
