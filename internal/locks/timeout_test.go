package locks

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTryLockSemantics(t *testing.T) {
	l := NewTryLock()
	if !l.TryAcquire() {
		t.Fatal("first TryAcquire must win")
	}
	if l.TryAcquire() {
		t.Fatal("second TryAcquire must lose")
	}
	if l.AcquireFor(time.Millisecond) {
		t.Fatal("AcquireFor on a held lock must time out")
	}
	l.Release()
	if !l.AcquireFor(time.Millisecond) {
		t.Fatal("AcquireFor on a free lock must win")
	}
	l.Release()
}

func TestTryLockMutualExclusion(t *testing.T) {
	l := NewTryLock()
	var counter int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Acquire()
				counter++
				l.Release()
			}
		}()
	}
	wg.Wait()
	if counter != 8*500 {
		t.Fatalf("lost updates: %d", counter)
	}
}

func TestTimeoutMCSBasic(t *testing.T) {
	l := NewTimeoutMCS()
	var tok TMCSToken
	l.Acquire(&tok)
	// A second acquirer with tiny patience must give up.
	done := make(chan bool)
	go func() {
		var tok2 TMCSToken
		done <- l.AcquireFor(&tok2, 3)
	}()
	if got := <-done; got {
		t.Fatal("bounded waiter must time out while the lock is held")
	}
	l.Release(&tok)
	// After the release the lock is acquirable again despite the
	// abandoned node in between.
	var tok3 TMCSToken
	if !l.AcquireFor(&tok3, 1000000) {
		t.Fatal("lock unacquirable after abandoned node")
	}
	l.Release(&tok3)
}

func TestTimeoutMCSMutualExclusion(t *testing.T) {
	l := NewTimeoutMCS()
	var counter int64
	var inCS int32
	var timeouts int64
	var wg sync.WaitGroup
	const nG, rounds = 8, 400
	for g := 0; g < nG; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var tok TMCSToken
			for i := 0; i < rounds; i++ {
				if !l.AcquireFor(&tok, 2000) {
					atomic.AddInt64(&timeouts, 1)
					runtime.Gosched()
					continue
				}
				if n := atomic.AddInt32(&inCS, 1); n != 1 {
					t.Errorf("%d goroutines in CS", n)
				}
				counter++
				atomic.AddInt32(&inCS, -1)
				l.Release(&tok)
			}
		}()
	}
	wg.Wait()
	if counter+timeouts != nG*rounds {
		t.Fatalf("accounting broken: %d acquisitions + %d timeouts != %d",
			counter, timeouts, nG*rounds)
	}
	if counter == 0 {
		t.Fatal("nothing ever acquired the lock")
	}
}

func TestTimeoutMCSSkipsAbandonedChains(t *testing.T) {
	// Build a queue holder -> abandoned -> abandoned -> waiter, then
	// release: the waiter at the end must be granted.
	l := NewTimeoutMCS()
	var holder TMCSToken
	l.Acquire(&holder)
	for i := 0; i < 2; i++ {
		var quitter TMCSToken
		if l.AcquireFor(&quitter, 2) {
			t.Fatal("quitter should time out")
		}
	}
	granted := make(chan struct{})
	go func() {
		var waiter TMCSToken
		l.Acquire(&waiter)
		close(granted)
		l.Release(&waiter)
	}()
	// Let the waiter enqueue behind the abandoned nodes.
	time.Sleep(2 * time.Millisecond)
	l.Release(&holder)
	select {
	case <-granted:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter behind abandoned nodes never granted")
	}
}
