package locks

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// PR 1's stress tests exercised the hierarchical cohort locks only
// lightly (TestHierarchicalNodesIsolation's 8×200 sweep). This file is
// the heavy -race coverage for HCLH and HTICKET: mutual exclusion under
// sustained cross-node contention, progress for every node despite cohort
// hand-off (the fairness the cohortLimit bounds), and token reuse across
// node counts that do not divide the goroutine count evenly.

var hierAlgs = []Algorithm{HCLH, HTICKET}

func TestHierarchicalMutualExclusionStress(t *testing.T) {
	nG, rounds := 16, 400
	if testing.Short() {
		nG, rounds = 8, 150
	}
	for _, alg := range hierAlgs {
		for _, nodes := range []int{1, 2, 3, 4} {
			alg, nodes := alg, nodes
			t.Run(string(alg)+"/nodes="+string(rune('0'+nodes)), func(t *testing.T) {
				t.Parallel()
				l := New(alg, Options{Nodes: nodes})
				var counter int64 // plain int: only safe if the lock works
				var inCS int32
				var wg sync.WaitGroup
				for g := 0; g < nG; g++ {
					node := g % nodes
					wg.Add(1)
					go func() {
						defer wg.Done()
						tok := l.NewToken(node)
						for i := 0; i < rounds; i++ {
							l.Acquire(tok)
							if n := atomic.AddInt32(&inCS, 1); n != 1 {
								t.Errorf("%s: %d goroutines inside the critical section", alg, n)
							}
							counter++
							atomic.AddInt32(&inCS, -1)
							l.Release(tok)
						}
					}()
				}
				wg.Wait()
				if counter != int64(nG*rounds) {
					t.Errorf("%s/%d nodes: counter = %d, want %d (lost updates)",
						alg, nodes, counter, nG*rounds)
				}
			})
		}
	}
}

// TestHierarchicalFairnessAcrossNodes checks that cohort hand-off cannot
// starve a remote node: with one node's goroutines hammering the lock,
// a single waiter from the other node must still get in — the cohortLimit
// bounds how long the global lock stays with one cohort.
func TestHierarchicalFairnessAcrossNodes(t *testing.T) {
	for _, alg := range hierAlgs {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			l := New(alg, Options{Nodes: 2})
			stop := make(chan struct{})
			var wg sync.WaitGroup
			// Node 0: four goroutines keep the cohort saturated.
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					tok := l.NewToken(0)
					for {
						select {
						case <-stop:
							return
						default:
						}
						l.Acquire(tok)
						l.Release(tok)
					}
				}()
			}
			// Node 1: a lone waiter must acquire while the storm runs.
			acquired := make(chan struct{})
			go func() {
				tok := l.NewToken(1)
				l.Acquire(tok)
				close(acquired)
				l.Release(tok)
			}()
			select {
			case <-acquired:
			case <-time.After(10 * time.Second):
				t.Errorf("%s: remote-node waiter starved for 10s by a local cohort", alg)
			}
			close(stop)
			wg.Wait()
		})
	}
}

// TestHierarchicalCohortHandoffCount drives exactly one node and checks
// the lock still behaves as a plain mutual-exclusion lock when the
// hierarchy degenerates (every acquire is a cohort hand-off).
func TestHierarchicalCohortHandoffCount(t *testing.T) {
	for _, alg := range hierAlgs {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			l := New(alg, Options{Nodes: 4})
			const nG, rounds = 6, 500
			var counter int64
			var wg sync.WaitGroup
			for g := 0; g < nG; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					tok := l.NewToken(2) // everyone on node 2
					for i := 0; i < rounds; i++ {
						l.Acquire(tok)
						counter++
						l.Release(tok)
					}
				}()
			}
			wg.Wait()
			if counter != nG*rounds {
				t.Errorf("%s single-node cohort lost updates: %d, want %d", alg, counter, nG*rounds)
			}
		})
	}
}
