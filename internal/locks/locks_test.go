package locks

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// hammer runs nG goroutines × rounds increments of an unsynchronised
// counter under the lock; any mutual-exclusion violation loses updates.
func hammer(t *testing.T, alg Algorithm, nG, rounds int) {
	t.Helper()
	l := New(alg, Options{MaxThreads: nG, Nodes: 2})
	var counter int64 // plain int: only safe if the lock works
	var inCS int32
	var wg sync.WaitGroup
	for g := 0; g < nG; g++ {
		wg.Add(1)
		node := g % 2
		go func() {
			defer wg.Done()
			tok := l.NewToken(node)
			for i := 0; i < rounds; i++ {
				l.Acquire(tok)
				if n := atomic.AddInt32(&inCS, 1); n != 1 {
					t.Errorf("%s: %d goroutines inside the critical section", alg, n)
				}
				counter++
				atomic.AddInt32(&inCS, -1)
				l.Release(tok)
			}
		}()
	}
	wg.Wait()
	if counter != int64(nG*rounds) {
		t.Errorf("%s: counter = %d, want %d (lost updates)", alg, counter, nG*rounds)
	}
}

func TestMutualExclusion(t *testing.T) {
	for _, alg := range All {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			hammer(t, alg, 8, 300)
		})
	}
}

func TestSingleGoroutine(t *testing.T) {
	for _, alg := range All {
		hammer(t, alg, 1, 100)
	}
}

func TestManyGoroutines(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	for _, alg := range All {
		hammer(t, alg, 32, 50)
	}
}

func TestTicketFIFO(t *testing.T) {
	// Tickets grant in draw order: with one holder and a queued waiter set,
	// the completion order must match ticket order.
	l := New(TICKET, Options{}).(*ticketLock)
	const n = 6
	var order []uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			tok := l.NewToken(0)
			l.Acquire(tok)
			mu.Lock()
			order = append(order, tok.ticket)
			mu.Unlock()
			l.Release(tok)
		}()
	}
	close(start)
	wg.Wait()
	for i, tk := range order {
		if tk != uint64(i) {
			t.Fatalf("ticket order violated: %v", order)
		}
	}
}

func TestLockerAdapter(t *testing.T) {
	var mu sync.Locker = Locker{L: New(TTAS, Options{})}
	done := make(chan bool)
	mu.Lock()
	go func() {
		mu.Lock()
		mu.Unlock()
		done <- true
	}()
	runtime.Gosched()
	select {
	case <-done:
		t.Fatal("second Lock succeeded while held")
	default:
	}
	mu.Unlock()
	<-done
}

func TestUnknownAlgorithmPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(bogus) must panic")
		}
	}()
	New(Algorithm("BOGUS"), Options{})
}

func TestArrayLockCapacity(t *testing.T) {
	// More goroutines than MaxThreads is a misuse for ARRAY; within the
	// bound it must be correct even at the exact capacity.
	hammerN := func(nG int) {
		l := New(ARRAY, Options{MaxThreads: nG})
		var wg sync.WaitGroup
		var counter int64
		for g := 0; g < nG; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				tok := l.NewToken(0)
				for i := 0; i < 50; i++ {
					l.Acquire(tok)
					counter++
					l.Release(tok)
				}
			}()
		}
		wg.Wait()
		if counter != int64(nG*50) {
			t.Errorf("ARRAY with %d goroutines lost updates: %d", nG, counter)
		}
	}
	hammerN(4)
	hammerN(16)
}

func TestHierarchicalNodesIsolation(t *testing.T) {
	// Tokens from different NUMA nodes must still exclude each other.
	for _, alg := range []Algorithm{HCLH, HTICKET} {
		l := New(alg, Options{Nodes: 4})
		var counter int64
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			node := g % 4
			go func() {
				defer wg.Done()
				tok := l.NewToken(node)
				for i := 0; i < 200; i++ {
					l.Acquire(tok)
					counter++
					l.Release(tok)
				}
			}()
		}
		wg.Wait()
		if counter != 8*200 {
			t.Errorf("%s across 4 nodes lost updates: %d", alg, counter)
		}
	}
}

func TestTokenReuseAcrossAcquisitions(t *testing.T) {
	// A token must be reusable for many acquire/release cycles (CLH
	// recycles nodes; a bug here corrupts the queue).
	for _, alg := range []Algorithm{MCS, CLH, HCLH} {
		l := New(alg, Options{})
		tok := l.NewToken(0)
		for i := 0; i < 1000; i++ {
			l.Acquire(tok)
			l.Release(tok)
		}
	}
}

func BenchmarkUncontended(b *testing.B) {
	for _, alg := range All {
		alg := alg
		b.Run(string(alg), func(b *testing.B) {
			l := New(alg, Options{})
			tok := l.NewToken(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Acquire(tok)
				l.Release(tok)
			}
		})
	}
}

func BenchmarkContended(b *testing.B) {
	for _, alg := range All {
		alg := alg
		b.Run(string(alg), func(b *testing.B) {
			l := New(alg, Options{})
			var counter int64
			b.RunParallel(func(pb *testing.PB) {
				tok := l.NewToken(0)
				for pb.Next() {
					l.Acquire(tok)
					counter++
					l.Release(tok)
				}
			})
		})
	}
}
