package locks

import (
	"time"

	"ssync/internal/pad"
)

// Timeout-capable locks, after Scott and Scherer's "Scalable queue-based
// spin locks with timeout" [40], which the paper lists among the lock
// families its study builds on. Two shapes are provided:
//
//   - TryLock: a polling try-acquire on the simple word locks (TAS-style),
//     with an optional bounded patience;
//   - TimeoutMCS: an abortable queue lock — a waiter that gives up marks
//     its node abandoned, and releasers skip abandoned nodes, preserving
//     the queue's local-spinning property.

// TryLock is a word lock with try semantics.
type TryLock struct {
	word pad.Uint32
}

// NewTryLock returns an unlocked TryLock.
func NewTryLock() *TryLock { return &TryLock{} }

// TryAcquire attempts the lock once; it reports success.
func (l *TryLock) TryAcquire() bool { return l.word.CompareAndSwap(0, 1) }

// AcquireFor spins for at most d; it reports whether the lock was taken.
func (l *TryLock) AcquireFor(d time.Duration) bool {
	deadline := time.Now().Add(d)
	var s spinner
	for {
		if l.TryAcquire() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		s.once()
	}
}

// Acquire spins without bound.
func (l *TryLock) Acquire() {
	var s spinner
	for !l.TryAcquire() {
		s.once()
	}
}

// Release unlocks.
func (l *TryLock) Release() { l.word.Store(0) }

// Timeout-MCS node states.
const (
	tmcsWaiting uint32 = iota
	tmcsGranted
	tmcsAbandoned
)

// tmcsNode is an abortable MCS queue node.
type tmcsNode struct {
	next  pad.Pointer[tmcsNode]
	state pad.Uint32
}

// TimeoutMCS is an MCS queue lock whose waiters can abandon the queue
// after a bounded wait. Abandoned nodes stay linked; the releaser (or a
// later grant) skips them.
type TimeoutMCS struct {
	tail pad.Pointer[tmcsNode]
}

// NewTimeoutMCS returns an unlocked timeout-MCS lock.
func NewTimeoutMCS() *TimeoutMCS { return &TimeoutMCS{} }

// TMCSToken is the per-goroutine state of one acquisition.
type TMCSToken struct {
	node *tmcsNode
}

// AcquireFor enqueues and waits up to patience spin-quanta for the grant;
// on timeout the node is abandoned and false is returned. patience <= 0
// waits forever.
func (l *TimeoutMCS) AcquireFor(tok *TMCSToken, patience int) bool {
	n := &tmcsNode{}
	tok.node = n
	pred := l.tail.Swap(n)
	if pred == nil {
		n.state.Store(tmcsGranted)
		return true
	}
	pred.next.Store(n)
	var s spinner
	waited := 0
	for {
		switch n.state.Load() {
		case tmcsGranted:
			return true
		case tmcsWaiting:
			s.once()
			waited++
			if patience > 0 && waited >= patience {
				// Attempt to abandon; a concurrent grant wins.
				if n.state.CompareAndSwap(tmcsWaiting, tmcsAbandoned) {
					tok.node = nil
					return false
				}
				return true // granted in the meantime
			}
		}
	}
}

// Acquire waits without bound.
func (l *TimeoutMCS) Acquire(tok *TMCSToken) { l.AcquireFor(tok, 0) }

// Release grants the lock to the first non-abandoned successor, skipping
// (and unlinking) abandoned nodes; if none exists the lock becomes free.
func (l *TimeoutMCS) Release(tok *TMCSToken) {
	n := tok.node
	tok.node = nil
	for {
		next := n.next.Load()
		if next == nil {
			// No known successor: try closing the queue.
			if l.tail.CompareAndSwap(n, nil) {
				return
			}
			// Someone is enqueueing behind us; wait for the link.
			var s spinner
			for next = n.next.Load(); next == nil; next = n.next.Load() {
				s.once()
			}
		}
		// Try to grant; an abandoned successor is skipped.
		if next.state.CompareAndSwap(tmcsWaiting, tmcsGranted) {
			return
		}
		n = next // successor abandoned: continue down the queue
	}
}
