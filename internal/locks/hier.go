package locks

import "ssync/internal/pad"

// The hierarchical locks are cohort locks (Dice, Marathe, Shavit [14];
// the paper's hticket design). A global lock is owned by a NUMA *node*;
// a per-node local lock hands the critical section between threads of
// that node up to CohortLimit consecutive times before the global lock is
// surrendered. The global lock's queue state travels with the cohort —
// the surrendering thread is usually not the thread that acquired it.
//
// The per-node state is only read and written while holding that node's
// local lock; the lock hand-over (an atomic store/load pair) publishes it.

const cohortLimit = 64

// hclhState is one node's cohort state for the HCLH lock.
type hclhState struct {
	hasGlobal bool
	count     int
	gCur      *clhNode // the cohort's global queue node
	gPred     *clhNode
	_         [pad.CacheLineSize - 32]byte
}

// hclhLock is the hierarchical CLH lock [27], realised as CLH-over-CLH
// cohorts.
type hclhLock struct {
	global *clhLock
	locals []*clhLock
	state  []hclhState
	limit  int
}

func newHCLHLock(opt Options) *hclhLock {
	l := &hclhLock{
		global: newCLHLock(),
		locals: make([]*clhLock, opt.Nodes),
		state:  make([]hclhState, opt.Nodes),
		limit:  cohortLimit,
	}
	for i := range l.locals {
		l.locals[i] = newCLHLock()
	}
	return l
}

func (l *hclhLock) Name() string { return string(HCLH) }

func (l *hclhLock) NewToken(node int) *Token {
	return &Token{node: node % len(l.locals), cur: &clhNode{}}
}

func (l *hclhLock) Acquire(tok *Token) {
	n := tok.node
	tok.pred = l.locals[n].acquireNode(tok.cur)
	st := &l.state[n]
	if st.hasGlobal {
		return // global lock handed over within the cohort
	}
	if st.gCur == nil {
		st.gCur = &clhNode{}
	}
	st.gPred = l.global.acquireNode(st.gCur)
	st.hasGlobal = true
}

func (l *hclhLock) Release(tok *Token) {
	n := tok.node
	st := &l.state[n]
	if st.count < l.limit && l.locals[n].tail.Load() != tok.cur {
		// A cohort-mate is queued locally: pass the global lock along.
		st.count++
		l.releaseLocal(tok)
		return
	}
	st.count = 0
	st.hasGlobal = false
	// Surrender the global lock, recycling its queue node for the cohort.
	st.gCur.pending.Store(0)
	st.gCur, st.gPred = st.gPred, nil
	l.releaseLocal(tok)
}

func (l *hclhLock) releaseLocal(tok *Token) {
	tok.cur.pending.Store(0)
	tok.cur, tok.pred = tok.pred, nil
}

// hticketState is one node's cohort state for the HTICKET lock.
type hticketState struct {
	hasGlobal bool
	count     int
	gTicket   uint64
	_         [pad.CacheLineSize - 24]byte
}

// hticketLock is the hierarchical ticket lock [14]: ticket-over-ticket
// cohorts.
type hticketLock struct {
	global *ticketLock
	locals []*ticketLock
	state  []hticketState
	limit  int
}

func newHTicketLock(opt Options) *hticketLock {
	l := &hticketLock{
		global: newTicketLock(opt),
		locals: make([]*ticketLock, opt.Nodes),
		state:  make([]hticketState, opt.Nodes),
		limit:  cohortLimit,
	}
	for i := range l.locals {
		l.locals[i] = newTicketLock(opt)
	}
	return l
}

func (l *hticketLock) Name() string { return string(HTICKET) }

func (l *hticketLock) NewToken(node int) *Token {
	return &Token{node: node % len(l.locals)}
}

func (l *hticketLock) Acquire(tok *Token) {
	n := tok.node
	l.locals[n].Acquire(tok) // records tok.ticket
	st := &l.state[n]
	if st.hasGlobal {
		return
	}
	gtok := Token{}
	//ssync:ignore lockorder fixed two-level order — node-local ticket always before global — keeps the multi-hold deadlock-free
	l.global.Acquire(&gtok)
	st.gTicket = gtok.ticket
	st.hasGlobal = true
}

func (l *hticketLock) Release(tok *Token) {
	n := tok.node
	st := &l.state[n]
	loc := l.locals[n]
	if st.count < l.limit && loc.next.Load() > tok.ticket+1 {
		st.count++
		loc.Release(tok)
		return
	}
	st.count = 0
	st.hasGlobal = false
	l.global.current.Store(st.gTicket + 1)
	loc.Release(tok)
}
