// Package locks is the native Go implementation of the paper's libslock:
// nine lock algorithms behind one interface — the spin locks TAS, TTAS
// (exponential back-off) and TICKET (proportional back-off), the ARRAY
// lock, the queue locks MCS and CLH, the hierarchical (cohort) locks HCLH
// and HTICKET, and MUTEX (sync.Mutex, the pthread-mutex stand-in).
//
// Unlike the simulator twins in internal/simlocks, these are real locks a
// Go program can use today. Queue and hierarchical locks need per-goroutine
// state, passed explicitly as a Token (Go has no cheap goroutine-local
// storage); the simple locks accept a nil Token.
//
// Every spin loop yields to the scheduler after a bounded number of
// iterations, so the locks are safe at any GOMAXPROCS — a pure busy-wait
// would live-lock a single-P runtime.
package locks

import (
	"fmt"
	"runtime"
	"sync"
)

// Algorithm names a lock algorithm, using the paper's spelling.
type Algorithm string

// The nine algorithms of libslock.
const (
	TAS     Algorithm = "TAS"
	TTAS    Algorithm = "TTAS"
	TICKET  Algorithm = "TICKET"
	ARRAY   Algorithm = "ARRAY"
	MUTEX   Algorithm = "MUTEX"
	MCS     Algorithm = "MCS"
	CLH     Algorithm = "CLH"
	HCLH    Algorithm = "HCLH"
	HTICKET Algorithm = "HTICKET"
)

// All lists every algorithm.
var All = []Algorithm{TAS, TTAS, TICKET, ARRAY, MUTEX, MCS, CLH, HCLH, HTICKET}

// Lock is the common interface of all libslock algorithms.
type Lock interface {
	// Name returns the algorithm name.
	Name() string
	// NewToken creates the per-goroutine state for this lock. node is the
	// NUMA-node hint used by the hierarchical algorithms (pass 0 when
	// unknown). Tokens must not be shared between goroutines and must not
	// be reused while a Lock acquired with them is held elsewhere.
	NewToken(node int) *Token
	// Acquire locks; tok may be nil for the simple algorithms (TAS, TTAS,
	// TICKET, MUTEX).
	Acquire(tok *Token)
	// Release unlocks; it must receive the token used to Acquire.
	Release(tok *Token)
}

// Token is the per-goroutine, per-lock state of the queue-based and
// hierarchical algorithms.
type Token struct {
	node   int
	slot   uint64   // ARRAY
	qnode  *mcsNode // MCS
	cur    *clhNode // CLH: node to enqueue next
	pred   *clhNode // CLH: node being spun on / recycled
	ticket uint64   // TICKET (kept per-token for re-entrancy diagnostics)
}

// Options configures lock construction.
type Options struct {
	// MaxThreads bounds the concurrent holders+waiters for the ARRAY lock
	// (rounded up to a power of two). Default 128.
	MaxThreads int
	// Nodes is the NUMA node count for hierarchical locks. Default 2.
	Nodes int
	// BackoffUnit is the spin-iteration quantum for proportional/
	// exponential back-off. Default 64.
	BackoffUnit int
}

func (o Options) withDefaults() Options {
	if o.MaxThreads <= 0 {
		o.MaxThreads = 128
	}
	if o.Nodes <= 0 {
		o.Nodes = 2
	}
	if o.BackoffUnit <= 0 {
		o.BackoffUnit = 64
	}
	return o
}

// New constructs a lock of the given algorithm.
func New(alg Algorithm, opt Options) Lock {
	opt = opt.withDefaults()
	switch alg {
	case TAS:
		return newTASLock()
	case TTAS:
		return newTTASLock(opt)
	case TICKET:
		return newTicketLock(opt)
	case ARRAY:
		return newArrayLock(opt)
	case MUTEX:
		return &mutexLock{}
	case MCS:
		return newMCSLock()
	case CLH:
		return newCLHLock()
	case HCLH:
		return newHCLHLock(opt)
	case HTICKET:
		return newHTicketLock(opt)
	}
	panic(fmt.Sprintf("locks: unknown algorithm %q", alg))
}

// spin burns a few cycles and yields to the runtime every so often, so
// spinning cannot starve a small-GOMAXPROCS scheduler.
type spinner int

func (s *spinner) once() {
	*s++
	if *s%64 == 0 {
		runtime.Gosched()
	}
}

// relax waits roughly n spin quanta.
func relax(n int) {
	for i := 0; i < n; i++ {
		runtime.Gosched()
	}
}

// Locker adapts a simple lock (nil-token algorithms) to sync.Locker.
type Locker struct {
	L Lock
}

// Lock acquires the underlying lock with a nil token.
func (a Locker) Lock() { a.L.Acquire(nil) }

// Unlock releases the underlying lock with a nil token.
func (a Locker) Unlock() { a.L.Release(nil) }

var _ sync.Locker = Locker{}
