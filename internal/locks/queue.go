package locks

import (
	"sync/atomic"

	"ssync/internal/pad"
)

// mcsNode is one MCS queue entry; next and the granted flag are padded so
// two waiters never share a line.
type mcsNode struct {
	next    atomic.Pointer[mcsNode]
	_       [pad.CacheLineSize - 8]byte
	granted pad.Uint32
}

// mcsLock is the Mellor-Crummey–Scott queue lock [29].
type mcsLock struct {
	tail atomic.Pointer[mcsNode]
	_    [pad.CacheLineSize - 8]byte
}

func newMCSLock() *mcsLock { return &mcsLock{} }

func (l *mcsLock) Name() string { return string(MCS) }

func (l *mcsLock) NewToken(node int) *Token {
	return &Token{node: node, qnode: &mcsNode{}}
}

func (l *mcsLock) Acquire(tok *Token) {
	q := tok.qnode
	q.next.Store(nil)
	q.granted.Store(0)
	pred := l.tail.Swap(q)
	if pred == nil {
		return
	}
	pred.next.Store(q)
	var s spinner
	for q.granted.Load() == 0 {
		s.once()
	}
}

func (l *mcsLock) Release(tok *Token) {
	q := tok.qnode
	next := q.next.Load()
	if next == nil {
		if l.tail.CompareAndSwap(q, nil) {
			return
		}
		var s spinner
		for next = q.next.Load(); next == nil; next = q.next.Load() {
			s.once()
		}
	}
	next.granted.Store(1)
}

// clhNode is one CLH queue entry: a single padded "pending" flag the
// successor spins on.
type clhNode struct {
	pending pad.Uint32
}

// clhLock is the Craig–Landin–Hagersten queue lock [43]: an implicit
// queue; releasers recycle their predecessor's node.
type clhLock struct {
	tail atomic.Pointer[clhNode]
	_    [pad.CacheLineSize - 8]byte
}

func newCLHLock() *clhLock {
	l := &clhLock{}
	l.tail.Store(&clhNode{}) // released dummy
	return l
}

func (l *clhLock) Name() string { return string(CLH) }

func (l *clhLock) NewToken(node int) *Token {
	return &Token{node: node, cur: &clhNode{}}
}

func (l *clhLock) Acquire(tok *Token) {
	tok.pred = l.acquireNode(tok.cur)
}

// acquireNode enqueues n and waits for the predecessor; it returns the
// predecessor node, which the release path recycles.
func (l *clhLock) acquireNode(n *clhNode) *clhNode {
	n.pending.Store(1)
	pred := l.tail.Swap(n)
	var s spinner
	for pred.pending.Load() != 0 {
		s.once()
	}
	return pred
}

func (l *clhLock) Release(tok *Token) {
	tok.cur.pending.Store(0)
	tok.cur = tok.pred // recycle
	tok.pred = nil
}
