package locks

import (
	"sync"

	"ssync/internal/pad"
)

// tasLock: spin on the atomic swap itself.
type tasLock struct {
	word pad.Uint32
}

func newTASLock() *tasLock { return &tasLock{} }

func (l *tasLock) Name() string             { return string(TAS) }
func (l *tasLock) NewToken(node int) *Token { return &Token{node: node} }

func (l *tasLock) Acquire(*Token) {
	var s spinner
	for l.word.Swap(1) != 0 {
		s.once()
	}
}

func (l *tasLock) Release(*Token) { l.word.Store(0) }

// ttasLock: spin reading until free, then attempt the swap; exponential
// back-off after a failed attempt [4, 20].
//
//ssync:ignore padcheck one heap allocation per lock, never an array element; the read-only unit trails the padded word
type ttasLock struct {
	word pad.Uint32
	unit int
}

func newTTASLock(opt Options) *ttasLock { return &ttasLock{unit: opt.BackoffUnit} }

func (l *ttasLock) Name() string             { return string(TTAS) }
func (l *ttasLock) NewToken(node int) *Token { return &Token{node: node} }

func (l *ttasLock) Acquire(*Token) {
	backoff := 1
	for {
		var s spinner
		for l.word.Load() != 0 {
			s.once()
		}
		if l.word.Swap(1) == 0 {
			return
		}
		relax(backoff)
		if backoff < 64 {
			backoff *= 2
		}
	}
}

func (l *ttasLock) Release(*Token) { l.word.Store(0) }

// ticketLock: FAI on next, spin on current with back-off proportional to
// the queue position [29]. next and current live on separate cache lines
// so ticket draws do not disturb the spinners.
//
//ssync:ignore padcheck one heap allocation per lock, never an array element; the read-only unit trails the padded words
type ticketLock struct {
	next    pad.Uint64
	current pad.Uint64
	unit    int
}

func newTicketLock(opt Options) *ticketLock { return &ticketLock{unit: opt.BackoffUnit} }

func (l *ticketLock) Name() string             { return string(TICKET) }
func (l *ticketLock) NewToken(node int) *Token { return &Token{node: node} }

func (l *ticketLock) Acquire(tok *Token) {
	ticket := l.next.Add(1) - 1
	for {
		cur := l.current.Load()
		if cur == ticket {
			if tok != nil {
				tok.ticket = ticket
			}
			return
		}
		relax(int(ticket-cur) * l.unit / 64)
	}
}

func (l *ticketLock) Release(*Token) {
	// Only the holder mutates current, so a plain add-by-one via atomic
	// store is safe and avoids a full RMW.
	l.current.Store(l.current.Load() + 1)
}

// arrayLock: Anderson's array lock [20] — a padded flag slot per waiter,
// each spinning on its own line.
//
//ssync:ignore padcheck one heap allocation per lock, never an array element; slots is the padded-per-waiter array
type arrayLock struct {
	tail  pad.Uint64
	slots []pad.Uint32
	mask  uint64
}

func newArrayLock(opt Options) *arrayLock {
	n := 1
	for n < opt.MaxThreads {
		n *= 2
	}
	l := &arrayLock{slots: make([]pad.Uint32, n), mask: uint64(n - 1)}
	l.slots[0].Store(1)
	return l
}

func (l *arrayLock) Name() string             { return string(ARRAY) }
func (l *arrayLock) NewToken(node int) *Token { return &Token{node: node} }

func (l *arrayLock) Acquire(tok *Token) {
	idx := (l.tail.Add(1) - 1) & l.mask
	var s spinner
	for l.slots[idx].Load() == 0 {
		s.once()
	}
	l.slots[idx].Store(0) // rearm for the next lap
	tok.slot = idx
}

func (l *arrayLock) Release(tok *Token) {
	l.slots[(tok.slot+1)&l.mask].Store(1)
}

// mutexLock wraps sync.Mutex — the fairness-and-parking behaviour closest
// to the paper's pthread mutex that the Go runtime offers.
type mutexLock struct {
	mu sync.Mutex
	_  [pad.CacheLineSize - 8]byte
}

func (l *mutexLock) Name() string             { return string(MUTEX) }
func (l *mutexLock) NewToken(node int) *Token { return &Token{node: node} }
func (l *mutexLock) Acquire(*Token)           { l.mu.Lock() }
func (l *mutexLock) Release(*Token)           { l.mu.Unlock() }
