// Package topo discovers the cache-coherence topology of the machine
// the store is actually running on and expresses it in the same
// vocabulary as the paper's simulated platforms (internal/arch): cores,
// LLC domains (dies/sockets — the unit inside which the paper's
// locality result says synchronization is cheap), memory nodes, and a
// distance between domains. The point of the shared vocabulary is that
// placement policy (policy.go) takes either kind of machine as input:
// the host, parsed from Linux sysfs at runtime, or any of the paper's
// four platform models, converted through FromPlatform — so a policy
// can be unit-tested against the Opteron's 8 dies and then applied,
// unchanged, to whatever CI or production hardware looks like.
//
// On non-Linux hosts (and Linux hosts whose sysfs is unreadable)
// discovery degrades to a single flat domain covering every CPU, under
// which every policy is a no-op — placement never breaks a build, it
// just stops helping.
package topo

import (
	"fmt"
	"sort"

	"ssync/internal/arch"
)

// Synthetic distance weights for discovered (sysfs/flat) topologies,
// in arbitrary cost units with the same shape as the paper's Table 2:
// staying inside an LLC domain is an order of magnitude cheaper than
// leaving it, and crossing a memory node costs several times a
// same-node domain hop. Platform-derived topologies use the real
// latency tables instead (FromPlatform).
const (
	distLocal     = 1  // same domain: the line stays in one LLC
	distCrossDom  = 10 // different domain, same memory node
	distCrossNode = 40 // different memory node (socket hop)
)

// Domain is one LLC domain: the set of logical CPUs that share a
// last-level cache, and the memory node the domain belongs to. ID is
// the domain's dense index in Topology.Domains.
type Domain struct {
	ID   int
	Node int
	CPUs []int
}

// Topology is one machine, real or modeled.
type Topology struct {
	// Source records where the topology came from: "sysfs", "flat",
	// or "arch:<Name>".
	Source string
	// Domains lists the LLC domains, CPUs ascending within each.
	Domains []Domain
	// Nodes is the memory-node count.
	Nodes int
	// dist[a][b] is the coherence-transfer cost between domains a and b
	// (dist[a][a] is the in-domain cost). Platform-derived topologies
	// carry real cycle latencies; discovered ones carry the synthetic
	// weights above. Either way the matrix is symmetric and in-domain
	// is the minimum, which is all the policy layer relies on.
	dist [][]uint64
}

// NumDomains returns the LLC-domain count.
func (t *Topology) NumDomains() int { return len(t.Domains) }

// NumCPUs counts the logical CPUs across all domains.
func (t *Topology) NumCPUs() int {
	n := 0
	for _, d := range t.Domains {
		n += len(d.CPUs)
	}
	return n
}

// Dist returns the coherence-transfer cost between two domains.
func (t *Topology) Dist(a, b int) uint64 { return t.dist[a][b] }

// DomainOfCPU returns the domain index owning the logical CPU, or -1.
func (t *Topology) DomainOfCPU(cpu int) int {
	for _, d := range t.Domains {
		for _, c := range d.CPUs {
			if c == cpu {
				return d.ID
			}
		}
	}
	return -1
}

// NodeDomains returns the indices of the domains on memory node node,
// ascending.
func (t *Topology) NodeDomains(node int) []int {
	var out []int
	for _, d := range t.Domains {
		if d.Node == node {
			out = append(out, d.ID)
		}
	}
	return out
}

// String summarises the machine.
func (t *Topology) String() string {
	return fmt.Sprintf("topo(%s: %d cpus, %d llc domains, %d nodes)",
		t.Source, t.NumCPUs(), t.NumDomains(), t.Nodes)
}

// finish sorts domains into a canonical order (by memory node, then
// lowest CPU), assigns dense IDs, and builds the synthetic distance
// matrix. Used by the discovered constructors; FromPlatform builds its
// own matrix from the latency tables.
func (t *Topology) finish() *Topology {
	for i := range t.Domains {
		sort.Ints(t.Domains[i].CPUs)
	}
	sort.Slice(t.Domains, func(a, b int) bool {
		da, db := &t.Domains[a], &t.Domains[b]
		if da.Node != db.Node {
			return da.Node < db.Node
		}
		return da.CPUs[0] < db.CPUs[0]
	})
	maxNode := 0
	for i := range t.Domains {
		t.Domains[i].ID = i
		if t.Domains[i].Node > maxNode {
			maxNode = t.Domains[i].Node
		}
	}
	if t.Nodes < maxNode+1 {
		t.Nodes = maxNode + 1
	}
	n := len(t.Domains)
	t.dist = make([][]uint64, n)
	for a := range t.dist {
		t.dist[a] = make([]uint64, n)
		for b := range t.dist[a] {
			switch {
			case a == b:
				t.dist[a][b] = distLocal
			case t.Domains[a].Node == t.Domains[b].Node:
				t.dist[a][b] = distCrossDom
			default:
				t.dist[a][b] = distCrossNode
			}
		}
	}
	return t
}

// Flat returns the degenerate topology every fallback path lands on:
// one domain, one memory node, ncpu CPUs (at least 1). Every placement
// policy is trivially balanced — and trivially useless — on it.
func Flat(ncpu int) *Topology {
	if ncpu < 1 {
		ncpu = 1
	}
	cpus := make([]int, ncpu)
	for i := range cpus {
		cpus[i] = i
	}
	t := &Topology{Source: "flat", Domains: []Domain{{Node: 0, CPUs: cpus}}, Nodes: 1}
	return t.finish()
}

// FromPlatform converts one of the paper's machine models into a
// Topology: each memory node (die on the Opteron, socket on the Xeon,
// mesh half on the Tilera) becomes an LLC domain holding its cores,
// and the domain distance matrix is the model's own atomic-CAS latency
// between representative cores — so a placement cost estimated on this
// topology is denominated in the paper's measured cycles, not in
// synthetic weights.
//
// The "CPUs" of an arch topology are simulated core ids; pinning to
// them on a real host degrades to a no-op unless the host happens to
// have that many CPUs. Their value is as policy input and cost model.
func FromPlatform(p *arch.Platform) *Topology {
	byNode := make(map[int][]int)
	for c := 0; c < p.NumCores; c++ {
		n := p.NodeOf(c)
		byNode[n] = append(byNode[n], c)
	}
	t := &Topology{Source: "arch:" + p.Name, Nodes: p.NumNodes}
	for n := 0; n < p.NumNodes; n++ {
		cpus := byNode[n]
		if len(cpus) == 0 {
			continue
		}
		sort.Ints(cpus)
		t.Domains = append(t.Domains, Domain{Node: n, CPUs: cpus})
	}
	sort.Slice(t.Domains, func(a, b int) bool { return t.Domains[a].Node < t.Domains[b].Node })
	nd := len(t.Domains)
	t.dist = make([][]uint64, nd)
	for a := 0; a < nd; a++ {
		t.Domains[a].ID = a
		t.dist[a] = make([]uint64, nd)
	}
	for a := 0; a < nd; a++ {
		for b := 0; b < nd; b++ {
			ra, rb := t.Domains[a].CPUs[0], t.Domains[b].CPUs[0]
			t.dist[a][b] = p.Lat(arch.CAS, arch.Modified, p.DistClass(ra, rb))
		}
	}
	return t
}
