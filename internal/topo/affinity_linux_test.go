//go:build linux

package topo

import (
	"runtime"
	"testing"
)

// TestAffinityRoundTrip pins the current thread to CPU 0 (present on
// every Linux host), verifies the kernel reports exactly that mask,
// then restores the original allowance.
func TestAffinityRoundTrip(t *testing.T) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()

	prev, err := getAffinity()
	if err != nil {
		t.Fatalf("getAffinity: %v", err)
	}
	if !prev.has(0) {
		t.Skip("cpu 0 not in this process's allowance")
	}
	if err := setAffinityCPUs([]int{0}); err != nil {
		t.Fatalf("setAffinityCPUs([0]): %v", err)
	}
	defer func() {
		if err := setAffinityMask(prev); err != nil {
			t.Errorf("restore mask: %v", err)
		}
	}()
	got, err := getAffinity()
	if err != nil {
		t.Fatalf("getAffinity after pin: %v", err)
	}
	var want affinityMask
	want.add(0)
	if got != want {
		t.Fatalf("mask after pin = %v, want only cpu 0", got)
	}
}

// TestSetAffinityNeverEscapes: asking for CPUs outside the current
// allowance (plus one inside) must narrow to the allowed subset.
func TestSetAffinityNeverEscapes(t *testing.T) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()

	prev, err := getAffinity()
	if err != nil {
		t.Fatalf("getAffinity: %v", err)
	}
	defer func() { _ = setAffinityMask(prev) }()

	if err := setAffinityCPUs([]int{0, 1 << 12}); err != nil {
		t.Fatalf("setAffinityCPUs with out-of-range cpu: %v", err)
	}
	got, err := getAffinity()
	if err != nil {
		t.Fatal(err)
	}
	if got.has(1 << 12) {
		t.Fatal("mask escaped the allowance")
	}
	// All-disallowed must fail, leaving the mask usable.
	if err := setAffinityCPUs([]int{affinityWords*64 + 5}); err == nil {
		t.Fatal("expected error pinning to nonexistent cpus")
	}
}

// TestPinRealDomain exercises the full Pin path against the discovered
// host topology when it is genuinely multi-domain (a no-op assertion
// otherwise — CI boxes are usually single-domain).
func TestPinRealDomain(t *testing.T) {
	host := Discover()
	pl := NewPlacement(PolicyCompact, host)
	undo := pl.Pin(0)
	undo()
	if host.NumDomains() < 2 {
		t.Skipf("single-domain host %v: Pin is a no-op by design", host)
	}
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	undo = pl.Pin(0)
	got, err := getAffinity()
	undo()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range host.Domains[1].CPUs {
		if got.has(c) {
			t.Fatalf("pinned to domain 0 but mask admits domain 1 cpu %d", c)
		}
	}
}
