//go:build linux

package topo

import "runtime"

// Discover returns the host topology: the live sysfs tree when it
// parses, a flat single-domain machine otherwise. Discovery never
// fails — a host the parser cannot read is simply a host placement
// cannot help.
func Discover() *Topology {
	if t, err := ParseSysfs("/sys"); err == nil {
		return t
	}
	return Flat(runtime.NumCPU())
}
