package topo

import (
	"fmt"
	"runtime"
	"sort"
)

// Policy names a shard→domain placement strategy. The paper's core
// result — synchronization cost is dominated by whether the contended
// line stays inside one LLC domain — turns into exactly one placement
// question: should the shards a batch visits back-to-back live in the
// same domain (compact) or be spread for memory bandwidth (scatter)?
//
//   - none: no placement. Shards get a (balanced) nominal assignment
//     so every caller can reason uniformly, but nothing is pinned and
//     execution order is left to the Go scheduler.
//   - compact: contiguous shard blocks per domain. Consecutive shard
//     indices — which ExecBatch and Scan visit back-to-back — share an
//     LLC, so a batch's cache-line traffic stays on-die. This is what
//     the paper's locality result prescribes for batched point ops.
//   - scatter: round-robin shards across domains. Maximizes the
//     memory-node spread of any shard subset (bandwidth-bound scans,
//     large values), at the price of a domain crossing between every
//     pair of adjacent shards.
//   - auto: resolve from the topology. Today that is compact on any
//     multi-domain machine (the paper's batched-point-op verdict) and
//     none on a single-domain one, where placement cannot help.
type Policy string

// The placement policies.
const (
	PolicyNone    Policy = "none"
	PolicyCompact Policy = "compact"
	PolicyScatter Policy = "scatter"
	PolicyAuto    Policy = "auto"
)

// Policies lists every policy, in comparison order.
var Policies = []Policy{PolicyNone, PolicyCompact, PolicyScatter, PolicyAuto}

// ParsePolicy resolves a policy name ("" means none).
func ParsePolicy(name string) (Policy, error) {
	if name == "" {
		return PolicyNone, nil
	}
	for _, p := range Policies {
		if string(p) == name {
			return p, nil
		}
	}
	return "", fmt.Errorf("unknown placement policy %q (have %v)", name, Policies)
}

// Pins reports whether the policy actually binds execution to domains
// (none keeps its nominal assignment on paper only).
func (p Policy) Pins() bool { return p != PolicyNone && p != "" }

// resolve maps auto to a concrete policy for a domain count.
func (p Policy) resolve(domains int) Policy {
	if p == PolicyAuto {
		if domains > 1 {
			return PolicyCompact
		}
		return PolicyNone
	}
	return p
}

// assign maps n shards onto d domains (indices 0..d-1). The result is
// total (every shard assigned) and balanced (domain loads differ by at
// most one) for every policy — the property test in policy_test.go
// holds this for every policy on every arch platform model.
func (p Policy) assign(n, d int) []int {
	out := make([]int, n)
	if d <= 1 {
		return out
	}
	switch p.resolve(d) {
	case PolicyCompact:
		// Contiguous blocks: shard s → domain s·d/n. Block sizes are
		// ⌊n/d⌋ or ⌈n/d⌉, and adjacent shards change domain only at
		// block boundaries — d−1 crossings across the whole index
		// space, the minimum any balanced assignment can have.
		for s := 0; s < n; s++ {
			out[s] = s * d / n
		}
	default:
		// Round-robin (scatter, and none's nominal assignment).
		for s := 0; s < n; s++ {
			out[s] = s % d
		}
	}
	return out
}

// Placement binds a policy to a machine (and optionally to a subset of
// its domains — the cluster stripes its in-process nodes across memory
// nodes by handing each node's store a restricted Placement). It is
// immutable and safe to share.
type Placement struct {
	Policy  Policy
	Topo    *Topology
	domains []int // domain ids to place over; nil means all
}

// NewPlacement binds policy to t (nil t discovers the host).
func NewPlacement(policy Policy, t *Topology) *Placement {
	if t == nil {
		t = Discover()
	}
	return &Placement{Policy: policy, Topo: t}
}

// String describes the placement.
func (pl *Placement) String() string {
	if pl == nil {
		return "place(none)"
	}
	return fmt.Sprintf("place(%s over %s, %d domains)", pl.Policy, pl.Topo.Source, len(pl.domainIDs()))
}

// domainIDs returns the domain ids this placement spans.
func (pl *Placement) domainIDs() []int {
	if pl.domains != nil {
		return pl.domains
	}
	ids := make([]int, len(pl.Topo.Domains))
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// ForNode restricts the placement to the domains of one memory node —
// cluster node i lands on memory node i mod Nodes, so in-process
// cluster members stripe across the machine's memory nodes instead of
// piling onto the first one. A node whose stripe would be empty keeps
// the full domain set (placement narrows, never strands).
func (pl *Placement) ForNode(i int) *Placement {
	if pl == nil || pl.Topo.Nodes <= 1 {
		return pl
	}
	node := i % pl.Topo.Nodes
	doms := pl.Topo.NodeDomains(node)
	if len(doms) == 0 {
		return pl
	}
	return &Placement{Policy: pl.Policy, Topo: pl.Topo, domains: doms}
}

// ShardDomains assigns n shards to domains and returns the actual
// domain id per shard. The assignment is total and balanced over the
// placement's domain span for every policy, including none (whose
// assignment is nominal — Pin ignores it).
func (pl *Placement) ShardDomains(n int) []int {
	if pl == nil {
		return nil
	}
	doms := pl.domainIDs()
	idx := pl.Policy.assign(n, len(doms))
	out := make([]int, n)
	for s, d := range idx {
		out[s] = doms[d]
	}
	return out
}

// VisitOrder returns a shard visit order that walks the assignment
// domain-major: all of one domain's shards (index-ascending), then the
// next domain's. Iterating shards in this order — ExecBatch's group
// loop, Scan's shard loop — crosses a domain boundary the minimum
// number of times the assignment allows, instead of ping-ponging the
// executing thread's cache lines between domains on every step. For a
// compact assignment the order is the identity.
func (pl *Placement) VisitOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	assign := pl.ShardDomains(n)
	if assign == nil {
		return order
	}
	sort.SliceStable(order, func(a, b int) bool {
		return assign[order[a]] < assign[order[b]]
	})
	return order
}

// ConnDomain assigns the i-th connection (round-robin) a domain and
// that domain's memory node — the server uses it to pin connection
// goroutines alongside the shards they serve and to seed hierarchical
// locks with the right NUMA hint. Returns (-1, -1) for a nil
// placement.
func (pl *Placement) ConnDomain(i int) (domain, node int) {
	if pl == nil {
		return -1, -1
	}
	doms := pl.domainIDs()
	if len(doms) == 0 {
		return -1, -1
	}
	d := doms[i%len(doms)]
	return d, pl.Topo.Domains[d].Node
}

// Pin binds the calling goroutine to the domain's CPUs and returns the
// undo. Pinning only happens when it can mean something: a pinning
// policy, a real multi-domain topology, and a domain whose CPUs exist
// on this host (arch-model topologies fail that test and no-op). The
// undo restores the thread's previous mask; callers must run it on the
// same goroutine. Every failure path is a silent no-op — placement is
// an optimization, never an outage.
func (pl *Placement) Pin(domain int) (undo func()) {
	noop := func() {}
	if pl == nil || !pl.Policy.Pins() || pl.Topo.NumDomains() < 2 {
		return noop
	}
	if domain < 0 || domain >= len(pl.Topo.Domains) {
		return noop
	}
	prev, err := getAffinity()
	if err != nil {
		return noop
	}
	runtime.LockOSThread()
	if err := setAffinityCPUs(pl.Topo.Domains[domain].CPUs); err != nil {
		runtime.UnlockOSThread()
		return noop
	}
	return func() {
		_ = setAffinityMask(prev)
		runtime.UnlockOSThread()
	}
}

// EstimateCost is the arch-model-driven placement cost estimate: the
// coherence cost, in the topology's own distance units (cycles for a
// FromPlatform topology), of one full shard sweep executed in the
// given visit order — the access pattern of ExecBatch's group loop and
// Scan's shard walk, where the executing thread drags its working set
// from each shard's domain to the next one's. Each step between
// consecutively visited shards costs Dist(domain(a), domain(b)); a
// same-domain step costs the in-domain minimum.
//
// On single-domain CI hardware, where measured Kops/s honestly reads
// as parity, this estimate is what still orders the policies: compact
// minimizes domain crossings per sweep, so for every arch platform
// EstimateCost(compact) ≤ EstimateCost(scatter) — asserted by the
// property tests and reported by the place/ harness experiments.
func EstimateCost(t *Topology, assign []int, order []int) uint64 {
	if len(assign) == 0 {
		return 0
	}
	if order == nil {
		order = make([]int, len(assign))
		for i := range order {
			order[i] = i
		}
	}
	var cost uint64
	for i := 1; i < len(order); i++ {
		cost += t.Dist(assign[order[i-1]], assign[order[i]])
	}
	return cost
}
