//go:build !linux

package topo

import "runtime"

// Discover returns a flat single-domain topology: without sysfs there
// is no portable way to see LLC domains, and a flat machine is the
// honest degradation — every policy becomes a no-op rather than a
// wrong guess.
func Discover() *Topology {
	return Flat(runtime.NumCPU())
}
