package topo

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file parses the Linux sysfs topology tree into a Topology. The
// parser is pure file reading — no syscalls — so the committed fixture
// trees under testdata/ exercise it byte-for-byte on every OS, and
// Discover (discover_linux.go) just points it at /sys.
//
// What it reads, per online CPU N (cpu/online gives the online set,
// holes included):
//
//	cpuN/cache/index*/{level,type,shared_cpu_list}  → the LLC share set
//	cpuN/topology/physical_package_id               → fallback domain key
//	../node/node*/cpulist                           → memory node of N
//
// CPUs sharing the deepest data/unified cache form one LLC domain; a
// tree without cache info falls back to one domain per physical
// package. A tree without NUMA nodes puts everything on node 0.

// ParseSysfs builds a Topology from a sysfs root (the directory that
// contains devices/system/cpu — "/sys" on a live system, a fixture
// root in tests).
func ParseSysfs(root string) (*Topology, error) {
	cpuDir := filepath.Join(root, "devices", "system", "cpu")
	online, err := readCPUList(filepath.Join(cpuDir, "online"))
	if err != nil {
		return nil, fmt.Errorf("topo: sysfs online cpus: %w", err)
	}
	if len(online) == 0 {
		return nil, fmt.Errorf("topo: sysfs reports no online cpus")
	}

	nodeOf := parseNodeMap(filepath.Join(root, "devices", "system", "node"))

	// Group online CPUs by LLC share set. The key is the canonical
	// rendering of the shared_cpu_list restricted to online CPUs, so
	// offline holes cannot split one real domain into phantom ones.
	groups := map[string][]int{}
	onlineSet := map[int]bool{}
	for _, c := range online {
		onlineSet[c] = true
	}
	for _, c := range online {
		share, err := llcShare(cpuDir, c)
		if err != nil {
			// No cache info for this CPU: fall back to the physical
			// package as the domain.
			pkg := readIntDefault(filepath.Join(cpuDir, fmt.Sprintf("cpu%d", c), "topology", "physical_package_id"), 0)
			groups[fmt.Sprintf("pkg:%d", pkg)] = append(groups[fmt.Sprintf("pkg:%d", pkg)], c)
			continue
		}
		var live []int
		for _, s := range share {
			if onlineSet[s] {
				live = append(live, s)
			}
		}
		sort.Ints(live)
		key := fmt.Sprint(live)
		groups[key] = append(groups[key], c)
	}

	t := &Topology{Source: "sysfs"}
	for _, cpus := range groups {
		sort.Ints(cpus)
		t.Domains = append(t.Domains, Domain{Node: nodeOf(cpus[0]), CPUs: cpus})
	}
	return t.finish(), nil
}

// llcShare returns the shared_cpu_list of cpu's deepest data/unified
// cache.
func llcShare(cpuDir string, cpu int) ([]int, error) {
	cacheDir := filepath.Join(cpuDir, fmt.Sprintf("cpu%d", cpu), "cache")
	entries, err := os.ReadDir(cacheDir)
	if err != nil {
		return nil, err
	}
	bestLevel := -1
	var best []int
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "index") {
			continue
		}
		idxDir := filepath.Join(cacheDir, e.Name())
		if typ, err := os.ReadFile(filepath.Join(idxDir, "type")); err == nil {
			if strings.EqualFold(strings.TrimSpace(string(typ)), "Instruction") {
				continue
			}
		}
		level := readIntDefault(filepath.Join(idxDir, "level"), -1)
		if level <= bestLevel {
			continue
		}
		share, err := readCPUList(filepath.Join(idxDir, "shared_cpu_list"))
		if err != nil || len(share) == 0 {
			continue
		}
		bestLevel, best = level, share
	}
	if bestLevel < 0 {
		return nil, fmt.Errorf("topo: cpu%d has no usable cache index", cpu)
	}
	return best, nil
}

// parseNodeMap reads devices/system/node/node*/cpulist into a
// cpu→node lookup; a tree without node dirs maps everything to 0.
func parseNodeMap(nodeDir string) func(cpu int) int {
	m := map[int]int{}
	entries, err := os.ReadDir(nodeDir)
	if err == nil {
		for _, e := range entries {
			name := e.Name()
			if !strings.HasPrefix(name, "node") {
				continue
			}
			id, err := strconv.Atoi(name[len("node"):])
			if err != nil {
				continue
			}
			cpus, err := readCPUList(filepath.Join(nodeDir, name, "cpulist"))
			if err != nil {
				continue
			}
			for _, c := range cpus {
				m[c] = id
			}
		}
	}
	return func(cpu int) int { return m[cpu] }
}

// readCPUList parses the kernel's CPU-list format: comma-separated
// ranges, e.g. "0-3,5,7-8". An empty file is an empty list.
func readCPUList(path string) ([]int, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parseCPUList(strings.TrimSpace(string(b)))
}

func parseCPUList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.Atoi(strings.TrimSpace(lo))
			b, err2 := strconv.Atoi(strings.TrimSpace(hi))
			if err1 != nil || err2 != nil || a > b || a < 0 {
				return nil, fmt.Errorf("topo: bad cpu range %q", part)
			}
			for c := a; c <= b; c++ {
				out = append(out, c)
			}
			continue
		}
		c, err := strconv.Atoi(part)
		if err != nil || c < 0 {
			return nil, fmt.Errorf("topo: bad cpu id %q", part)
		}
		out = append(out, c)
	}
	return out, nil
}

// readIntDefault reads a single decimal from a file, or returns def.
func readIntDefault(path string, def int) int {
	b, err := os.ReadFile(path)
	if err != nil {
		return def
	}
	v, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil {
		return def
	}
	return v
}
