//go:build linux

package topo

import (
	"syscall"
	"unsafe"
)

// Thread affinity via the raw sched_{get,set}affinity syscalls on the
// calling thread (pid 0). No cgo, no external module — the mask is a
// plain uint64 bitmap, sized for 1024 CPUs, which covers every machine
// the paper models and then some. Callers must have the goroutine
// locked to its OS thread (runtime.LockOSThread) or the mask lands on
// whatever thread the scheduler had borrowed.

// affinityWords is the mask size in 64-bit words (1024 CPUs).
const affinityWords = 16

type affinityMask [affinityWords]uint64

// set reports whether the mask admits cpu.
func (m *affinityMask) has(cpu int) bool {
	return cpu >= 0 && cpu < affinityWords*64 && m[cpu/64]&(1<<(cpu%64)) != 0
}

func (m *affinityMask) add(cpu int) bool {
	if cpu < 0 || cpu >= affinityWords*64 {
		return false
	}
	m[cpu/64] |= 1 << (cpu % 64)
	return true
}

// getAffinity reads the calling thread's CPU mask.
func getAffinity() (affinityMask, error) {
	var m affinityMask
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_GETAFFINITY,
		0, uintptr(len(m)*8), uintptr(unsafe.Pointer(&m[0])))
	if errno != 0 {
		return m, errno
	}
	return m, nil
}

// setAffinityMask installs a raw mask on the calling thread.
func setAffinityMask(m affinityMask) error {
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(m)*8), uintptr(unsafe.Pointer(&m[0])))
	if errno != 0 {
		return errno
	}
	return nil
}

// setAffinityCPUs pins the calling thread to the intersection of cpus
// with the thread's current allowance (a container or cpuset may
// forbid some of them; pinning must narrow, never escape). It fails if
// the intersection is empty — e.g. an arch-model domain whose
// simulated core ids do not exist on this host.
func setAffinityCPUs(cpus []int) error {
	allowed, err := getAffinity()
	if err != nil {
		return err
	}
	var m affinityMask
	any := false
	for _, c := range cpus {
		if allowed.has(c) && m.add(c) {
			any = true
		}
	}
	if !any {
		return syscall.EINVAL
	}
	return setAffinityMask(m)
}
