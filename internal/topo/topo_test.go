package topo

import (
	"testing"

	"ssync/internal/arch"
)

func TestFlat(t *testing.T) {
	tp := Flat(4)
	if tp.NumDomains() != 1 || tp.Nodes != 1 || tp.NumCPUs() != 4 {
		t.Fatalf("Flat(4) = %v", tp)
	}
	if tp.Dist(0, 0) != distLocal {
		t.Fatalf("flat self-distance %d", tp.Dist(0, 0))
	}
	if got := Flat(0).NumCPUs(); got != 1 {
		t.Fatalf("Flat(0) has %d cpus, want 1", got)
	}
}

// TestFromPlatform checks the arch conversion against the platforms'
// documented shapes, and that the distance matrix is symmetric with
// the in-domain cost minimal — the two properties the policy layer
// relies on.
func TestFromPlatform(t *testing.T) {
	wantDomains := map[string]int{
		"Opteron": 8, "Xeon": 8, "Niagara": 1, "Tilera": 2, "Opteron2": 2, "Xeon2": 2,
	}
	for _, name := range arch.Names() {
		p := arch.ByName(name)
		tp := FromPlatform(p)
		if tp.NumCPUs() != p.NumCores {
			t.Errorf("%s: %d cpus, want %d", name, tp.NumCPUs(), p.NumCores)
		}
		if tp.NumDomains() != wantDomains[name] {
			t.Errorf("%s: %d domains, want %d", name, tp.NumDomains(), wantDomains[name])
		}
		if tp.Nodes != p.NumNodes {
			t.Errorf("%s: %d nodes, want %d", name, tp.Nodes, p.NumNodes)
		}
		for a := 0; a < tp.NumDomains(); a++ {
			for b := 0; b < tp.NumDomains(); b++ {
				if tp.Dist(a, b) != tp.Dist(b, a) {
					t.Errorf("%s: dist(%d,%d)=%d != dist(%d,%d)=%d",
						name, a, b, tp.Dist(a, b), b, a, tp.Dist(b, a))
				}
				if a != b && tp.Dist(a, b) < tp.Dist(a, a) {
					t.Errorf("%s: cross-domain dist(%d,%d)=%d below in-domain %d",
						name, a, b, tp.Dist(a, b), tp.Dist(a, a))
				}
			}
		}
		// Every core lands in exactly one domain.
		seen := make([]bool, p.NumCores)
		for _, d := range tp.Domains {
			for _, c := range d.CPUs {
				if seen[c] {
					t.Fatalf("%s: core %d in two domains", name, c)
				}
				seen[c] = true
			}
		}
	}
}

// TestFromPlatformDistancesAreTableLatencies spot-checks that an arch
// topology's distances are the platform's own CAS latencies, not
// synthetic weights — the property that makes EstimateCost read in
// paper cycles.
func TestFromPlatformDistancesAreTableLatencies(t *testing.T) {
	p := arch.Opteron()
	tp := FromPlatform(p)
	// Domains are dies; die 0 core 0 vs die 1 core 6 are same-MCM.
	want := p.Lat(arch.CAS, arch.Modified, p.DistClass(0, 6))
	if got := tp.Dist(0, 1); got != want {
		t.Fatalf("Opteron dist(0,1) = %d, want table latency %d", got, want)
	}
	if tp.Dist(0, 0) != p.Lat(arch.CAS, arch.Modified, 0) {
		t.Fatalf("Opteron in-domain dist = %d, want %d", tp.Dist(0, 0), p.Lat(arch.CAS, arch.Modified, 0))
	}
}

func TestDiscoverNeverNil(t *testing.T) {
	tp := Discover()
	if tp == nil || tp.NumDomains() < 1 || tp.NumCPUs() < 1 {
		t.Fatalf("Discover() = %v", tp)
	}
	t.Logf("host: %v", tp)
}

func TestDomainOfCPU(t *testing.T) {
	tp := FromPlatform(arch.Xeon2())
	if d := tp.DomainOfCPU(0); d != 0 {
		t.Fatalf("cpu0 in domain %d", d)
	}
	if d := tp.DomainOfCPU(11); d != 1 {
		t.Fatalf("cpu11 in domain %d", d)
	}
	if d := tp.DomainOfCPU(99); d != -1 {
		t.Fatalf("phantom cpu in domain %d", d)
	}
}

func TestParseCPUList(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		err  bool
	}{
		{"0-3", []int{0, 1, 2, 3}, false},
		{"0-2,5-7", []int{0, 1, 2, 5, 6, 7}, false},
		{"4", []int{4}, false},
		{"0, 2 ,4", []int{0, 2, 4}, false},
		{"", nil, false},
		{"3-1", nil, true},
		{"x", nil, true},
		{"-1", nil, true},
	}
	for _, c := range cases {
		got, err := parseCPUList(c.in)
		if (err != nil) != c.err {
			t.Errorf("parseCPUList(%q) err = %v, want err %v", c.in, err, c.err)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseCPUList(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseCPUList(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}
