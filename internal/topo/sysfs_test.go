package topo

import (
	"reflect"
	"testing"
)

// The committed fixture trees under testdata/ are minimal sysfs
// snapshots: a 1-socket desktop, a 2-socket NUMA box, and a machine
// with offline CPUs whose stale kernel share-masks still name them.

func domainCPUs(t *Topology) [][]int {
	out := make([][]int, len(t.Domains))
	for i, d := range t.Domains {
		out[i] = d.CPUs
	}
	return out
}

func TestParseSysfsOneSocket(t *testing.T) {
	tp, err := ParseSysfs("testdata/sysfs-1s")
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumDomains() != 1 || tp.Nodes != 1 {
		t.Fatalf("1-socket: %v", tp)
	}
	want := [][]int{{0, 1, 2, 3}}
	if got := domainCPUs(tp); !reflect.DeepEqual(got, want) {
		t.Fatalf("1-socket domains = %v, want %v", got, want)
	}
	if tp.Source != "sysfs" {
		t.Fatalf("source = %q", tp.Source)
	}
}

func TestParseSysfsTwoSocketNUMA(t *testing.T) {
	tp, err := ParseSysfs("testdata/sysfs-2s")
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumDomains() != 2 || tp.Nodes != 2 {
		t.Fatalf("2-socket: %v", tp)
	}
	want := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	if got := domainCPUs(tp); !reflect.DeepEqual(got, want) {
		t.Fatalf("2-socket domains = %v, want %v", got, want)
	}
	if tp.Domains[0].Node != 0 || tp.Domains[1].Node != 1 {
		t.Fatalf("2-socket node mapping: %+v", tp.Domains)
	}
	if tp.Dist(0, 1) <= tp.Dist(0, 0) {
		t.Fatalf("cross-node dist %d not above in-domain %d", tp.Dist(0, 1), tp.Dist(0, 0))
	}
}

// TestParseSysfsOfflineHoles: cpus 3 and 4 are offline but still have
// directories, and the online CPUs' shared_cpu_list masks still name
// them (kernels leave stale bits). The parser must intersect share
// sets with the online list so the holes neither appear as CPUs nor
// split their domains.
func TestParseSysfsOfflineHoles(t *testing.T) {
	tp, err := ParseSysfs("testdata/sysfs-holey")
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumDomains() != 2 {
		t.Fatalf("holey: %v", tp)
	}
	want := [][]int{{0, 1, 2}, {5, 6, 7}}
	if got := domainCPUs(tp); !reflect.DeepEqual(got, want) {
		t.Fatalf("holey domains = %v, want %v", got, want)
	}
	if tp.NumCPUs() != 6 {
		t.Fatalf("holey cpus = %d, want 6", tp.NumCPUs())
	}
	for _, off := range []int{3, 4} {
		if d := tp.DomainOfCPU(off); d != -1 {
			t.Fatalf("offline cpu %d placed in domain %d", off, d)
		}
	}
}

func TestParseSysfsMissingRoot(t *testing.T) {
	if _, err := ParseSysfs("testdata/does-not-exist"); err == nil {
		t.Fatal("expected error for missing sysfs root")
	}
}
