//go:build !linux

package topo

import "errors"

// Thread affinity is Linux-only; elsewhere every pin degrades to a
// no-op at the Placement layer. These stubs keep policy.go portable.

type affinityMask struct{}

var errNoAffinity = errors.New("topo: thread affinity unsupported on this OS")

func getAffinity() (affinityMask, error) { return affinityMask{}, errNoAffinity }
func setAffinityMask(affinityMask) error { return errNoAffinity }
func setAffinityCPUs([]int) error        { return errNoAffinity }
