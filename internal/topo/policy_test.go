package topo

import (
	"runtime"
	"testing"

	"ssync/internal/arch"
)

func TestParsePolicy(t *testing.T) {
	for _, p := range Policies {
		got, err := ParsePolicy(string(p))
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p, got, err)
		}
	}
	if got, err := ParsePolicy(""); err != nil || got != PolicyNone {
		t.Fatalf("ParsePolicy(\"\") = %v, %v", got, err)
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy(bogus) accepted")
	}
}

// testTopologies covers every paper machine model plus the discovered
// degradation cases.
func testTopologies() map[string]*Topology {
	out := map[string]*Topology{
		"flat-1":  Flat(1),
		"flat-16": Flat(16),
	}
	for _, p := range arch.All() {
		out["arch:"+p.Name] = FromPlatform(p)
	}
	out["arch:Opteron2"] = FromPlatform(arch.Opteron2())
	out["arch:Xeon2"] = FromPlatform(arch.Xeon2())
	return out
}

// TestAssignmentTotalAndBalanced is the placement property test: for
// every policy, on every machine model, at every shard count, the
// shard→domain assignment is total (every shard gets a real domain of
// the placement) and balanced (domain loads differ by at most one).
func TestAssignmentTotalAndBalanced(t *testing.T) {
	shardCounts := []int{1, 2, 3, 7, 8, 16, 64, 257}
	for name, tp := range testTopologies() {
		for _, pol := range Policies {
			pl := NewPlacement(pol, tp)
			for _, n := range shardCounts {
				assign := pl.ShardDomains(n)
				if len(assign) != n {
					t.Fatalf("%s/%s/%d: %d assignments", name, pol, n, len(assign))
				}
				load := make(map[int]int)
				for s, d := range assign {
					if d < 0 || d >= tp.NumDomains() {
						t.Fatalf("%s/%s/%d: shard %d → bogus domain %d", name, pol, n, s, d)
					}
					load[d]++
				}
				lo, hi := n, 0
				for _, c := range load {
					if c < lo {
						lo = c
					}
					if c > hi {
						hi = c
					}
				}
				// Domains beyond the shard count legitimately get zero.
				if n >= tp.NumDomains() && len(load) != tp.NumDomains() {
					t.Fatalf("%s/%s/%d: only %d of %d domains used", name, pol, n, len(load), tp.NumDomains())
				}
				if hi-lo > 1 {
					t.Fatalf("%s/%s/%d: imbalance %d..%d", name, pol, n, lo, hi)
				}
			}
		}
	}
}

// TestCompactMinimizesSweepCost asserts the arch-model cost ordering
// the single-domain CI box can't measure: an index-order sweep over a
// compact assignment crosses domains D−1 times, a scatter one n−1
// times, so compact's estimated cost is never higher — on every paper
// platform, with auto matching compact on multi-domain machines.
func TestCompactMinimizesSweepCost(t *testing.T) {
	for name, tp := range testTopologies() {
		for _, n := range []int{8, 16, 64} {
			compact := EstimateCost(tp, NewPlacement(PolicyCompact, tp).ShardDomains(n), nil)
			scatter := EstimateCost(tp, NewPlacement(PolicyScatter, tp).ShardDomains(n), nil)
			auto := EstimateCost(tp, NewPlacement(PolicyAuto, tp).ShardDomains(n), nil)
			if compact > scatter {
				t.Errorf("%s/n=%d: compact cost %d > scatter cost %d", name, n, compact, scatter)
			}
			if tp.NumDomains() > 1 && auto != compact {
				t.Errorf("%s/n=%d: auto cost %d != compact cost %d", name, n, auto, compact)
			}
		}
	}
}

// TestVisitOrderIsPermutationAndNoWorse: VisitOrder is always a
// permutation of 0..n−1, and walking shards in that order never costs
// more than walking them in index order — for any policy.
func TestVisitOrderIsPermutationAndNoWorse(t *testing.T) {
	for name, tp := range testTopologies() {
		for _, pol := range Policies {
			pl := NewPlacement(pol, tp)
			for _, n := range []int{1, 8, 17, 64} {
				order := pl.VisitOrder(n)
				if len(order) != n {
					t.Fatalf("%s/%s/%d: order length %d", name, pol, n, len(order))
				}
				seen := make([]bool, n)
				for _, s := range order {
					if s < 0 || s >= n || seen[s] {
						t.Fatalf("%s/%s/%d: not a permutation: %v", name, pol, n, order)
					}
					seen[s] = true
				}
				assign := pl.ShardDomains(n)
				if got, idx := EstimateCost(tp, assign, order), EstimateCost(tp, assign, nil); got > idx {
					t.Fatalf("%s/%s/%d: visit-order cost %d above index-order %d", name, pol, n, got, idx)
				}
			}
		}
	}
}

// TestVisitOrderCompactIsIdentity: a compact assignment is already
// domain-major, so reordering must leave it alone (stability).
func TestVisitOrderCompactIsIdentity(t *testing.T) {
	tp := FromPlatform(arch.Opteron())
	order := NewPlacement(PolicyCompact, tp).VisitOrder(32)
	for i, s := range order {
		if s != i {
			t.Fatalf("compact visit order not identity at %d: %v", i, order)
		}
	}
}

func TestAutoResolution(t *testing.T) {
	if got := PolicyAuto.resolve(8); got != PolicyCompact {
		t.Fatalf("auto on 8 domains = %v", got)
	}
	if got := PolicyAuto.resolve(1); got != PolicyNone {
		t.Fatalf("auto on 1 domain = %v", got)
	}
	if PolicyNone.Pins() || Policy("").Pins() {
		t.Fatal("none must not pin")
	}
	if !PolicyCompact.Pins() || !PolicyScatter.Pins() || !PolicyAuto.Pins() {
		t.Fatal("pinning policies must pin")
	}
}

// TestForNode: restricting to one memory node keeps only that node's
// domains; striping two cluster nodes over a 2-node machine gives them
// disjoint domains; on a 1-node machine ForNode is the identity.
func TestForNode(t *testing.T) {
	tp := FromPlatform(arch.Opteron()) // 8 domains, 8 nodes
	base := NewPlacement(PolicyCompact, tp)
	for i := 0; i < 16; i++ {
		pl := base.ForNode(i)
		doms := pl.domainIDs()
		if len(doms) != 1 || tp.Domains[doms[0]].Node != i%tp.Nodes {
			t.Fatalf("ForNode(%d) domains = %v", i, doms)
		}
	}
	a, b := base.ForNode(0).domainIDs(), base.ForNode(1).domainIDs()
	if a[0] == b[0] {
		t.Fatal("adjacent cluster nodes share a domain stripe")
	}
	flat := NewPlacement(PolicyCompact, Flat(4))
	if flat.ForNode(3) != flat {
		t.Fatal("ForNode on single-node topology must be identity")
	}
}

func TestConnDomain(t *testing.T) {
	tp := FromPlatform(arch.Xeon2()) // 2 domains, 2 nodes
	pl := NewPlacement(PolicyCompact, tp)
	d0, n0 := pl.ConnDomain(0)
	d1, n1 := pl.ConnDomain(1)
	d2, n2 := pl.ConnDomain(2)
	if d0 != 0 || n0 != 0 || d1 != 1 || n1 != 1 {
		t.Fatalf("ConnDomain round-robin: (%d,%d) (%d,%d)", d0, n0, d1, n1)
	}
	if d2 != d0 || n2 != n0 {
		t.Fatalf("ConnDomain wrap: (%d,%d)", d2, n2)
	}
	var nilPl *Placement
	if d, n := nilPl.ConnDomain(0); d != -1 || n != -1 {
		t.Fatalf("nil ConnDomain = (%d,%d)", d, n)
	}
}

// TestPinNoops: every path that cannot pin must return a working no-op
// undo, never panic — nil placement, non-pinning policy, single-domain
// topology, out-of-range domain, and arch-model domains whose CPUs
// don't exist on this host.
func TestPinNoops(t *testing.T) {
	var nilPl *Placement
	nilPl.Pin(0)()
	NewPlacement(PolicyNone, Flat(4)).Pin(0)()
	NewPlacement(PolicyCompact, Flat(4)).Pin(0)()
	big := NewPlacement(PolicyCompact, FromPlatform(arch.Xeon()))
	big.Pin(-1)()
	big.Pin(99)()
	if runtime.NumCPU() < 80 {
		// Xeon model domain 7 pins to simulated cores 70..79 — absent
		// here, so Pin must degrade to a no-op, not error or wedge.
		big.Pin(7)()
	}
}

func TestNilPlacementAccessors(t *testing.T) {
	var pl *Placement
	if pl.ShardDomains(4) != nil {
		t.Fatal("nil ShardDomains")
	}
	if pl.String() != "place(none)" {
		t.Fatalf("nil String = %q", pl.String())
	}
	if pl.ForNode(1) != nil {
		t.Fatal("nil ForNode")
	}
}
