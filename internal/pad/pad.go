// Package pad provides cache-line–padded primitive wrappers.
//
// Synchronization data structures are extremely sensitive to false sharing:
// two logically independent words that land on the same cache line turn
// every write into an invalidation of the other word's readers. The paper's
// libslock pads every per-thread slot and every lock field to a cache line;
// this package provides the same building blocks for the native Go
// implementations in this repository.
package pad

import "sync/atomic"

// CacheLineSize is the assumed coherence granularity in bytes. All modern
// x86, SPARC and Tilera parts the paper studies use 64-byte lines.
const CacheLineSize = 64

// Uint64 is a uint64 alone on its own cache line.
//
// The value is placed first so that a pointer to the struct is also a
// pointer to a 64-byte-aligned-enough region in practice (Go allocates
// objects of this size with 64-byte size class), and padded so adjacent
// array elements never share a line.
//
//ssync:cacheline
type Uint64 struct {
	//ssync:ignore atomicmix Raw and SetRaw are the documented escape hatch; their callers hold exclusive access
	v uint64
	_ [CacheLineSize - 8]byte
}

// Load atomically reads the value.
func (p *Uint64) Load() uint64 { return atomic.LoadUint64(&p.v) }

// Store atomically writes the value.
func (p *Uint64) Store(v uint64) { atomic.StoreUint64(&p.v, v) }

// Add atomically adds delta and returns the new value.
func (p *Uint64) Add(delta uint64) uint64 { return atomic.AddUint64(&p.v, delta) }

// CompareAndSwap executes the CAS on the padded word.
func (p *Uint64) CompareAndSwap(old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&p.v, old, new)
}

// Swap atomically replaces the value and returns the previous one.
func (p *Uint64) Swap(v uint64) uint64 { return atomic.SwapUint64(&p.v, v) }

// Raw returns the current value without an atomic load. Only safe when the
// caller has otherwise established exclusive access.
func (p *Uint64) Raw() uint64 { return p.v }

// SetRaw writes the value without an atomic store. Only safe when the
// caller has otherwise established exclusive access.
func (p *Uint64) SetRaw(v uint64) { p.v = v }

// Int64 is an int64 alone on its own cache line.
//
//ssync:cacheline
type Int64 struct {
	v int64
	_ [CacheLineSize - 8]byte
}

// Load atomically reads the value.
func (p *Int64) Load() int64 { return atomic.LoadInt64(&p.v) }

// Store atomically writes the value.
func (p *Int64) Store(v int64) { atomic.StoreInt64(&p.v, v) }

// Add atomically adds delta and returns the new value.
func (p *Int64) Add(delta int64) int64 { return atomic.AddInt64(&p.v, delta) }

// Uint32 is a uint32 alone on its own cache line.
//
//ssync:cacheline
type Uint32 struct {
	v uint32
	_ [CacheLineSize - 4]byte
}

// Load atomically reads the value.
func (p *Uint32) Load() uint32 { return atomic.LoadUint32(&p.v) }

// Store atomically writes the value.
func (p *Uint32) Store(v uint32) { atomic.StoreUint32(&p.v, v) }

// Add atomically adds delta and returns the new value.
func (p *Uint32) Add(delta uint32) uint32 { return atomic.AddUint32(&p.v, delta) }

// CompareAndSwap executes the CAS on the padded word.
func (p *Uint32) CompareAndSwap(old, new uint32) bool {
	return atomic.CompareAndSwapUint32(&p.v, old, new)
}

// Swap atomically replaces the value and returns the previous one.
func (p *Uint32) Swap(v uint32) uint32 { return atomic.SwapUint32(&p.v, v) }

// Bool is a boolean flag alone on its own cache line, stored as a uint32.
//
//ssync:cacheline
type Bool struct {
	v uint32
	_ [CacheLineSize - 4]byte
}

// Load atomically reads the flag.
func (p *Bool) Load() bool { return atomic.LoadUint32(&p.v) != 0 }

// Store atomically writes the flag.
func (p *Bool) Store(b bool) {
	var v uint32
	if b {
		v = 1
	}
	atomic.StoreUint32(&p.v, v)
}

// Pointer is an unsafe.Pointer-free padded pointer cell specialised via
// generics.
type Pointer[T any] struct {
	p atomic.Pointer[T]
	_ [CacheLineSize - 8]byte
}

// Load atomically reads the pointer.
func (p *Pointer[T]) Load() *T { return p.p.Load() }

// Store atomically writes the pointer.
func (p *Pointer[T]) Store(v *T) { p.p.Store(v) }

// Swap atomically replaces the pointer and returns the previous one.
func (p *Pointer[T]) Swap(v *T) *T { return p.p.Swap(v) }

// CompareAndSwap executes the CAS on the padded pointer.
func (p *Pointer[T]) CompareAndSwap(old, new *T) bool { return p.p.CompareAndSwap(old, new) }

// Line is an opaque 64-byte unit, used to size message-passing buffers.
type Line [CacheLineSize]byte
