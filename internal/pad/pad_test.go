package pad

import (
	"sync"
	"testing"
	"unsafe"
)

func TestSizes(t *testing.T) {
	if s := unsafe.Sizeof(Uint64{}); s != CacheLineSize {
		t.Errorf("Uint64 is %d bytes, want %d", s, CacheLineSize)
	}
	if s := unsafe.Sizeof(Int64{}); s != CacheLineSize {
		t.Errorf("Int64 is %d bytes, want %d", s, CacheLineSize)
	}
	if s := unsafe.Sizeof(Uint32{}); s != CacheLineSize {
		t.Errorf("Uint32 is %d bytes, want %d", s, CacheLineSize)
	}
	if s := unsafe.Sizeof(Bool{}); s != CacheLineSize {
		t.Errorf("Bool is %d bytes, want %d", s, CacheLineSize)
	}
	if s := unsafe.Sizeof(Pointer[int]{}); s != CacheLineSize {
		t.Errorf("Pointer is %d bytes, want %d", s, CacheLineSize)
	}
	if s := unsafe.Sizeof(Line{}); s != CacheLineSize {
		t.Errorf("Line is %d bytes, want %d", s, CacheLineSize)
	}
}

func TestArrayElementsDoNotShareLines(t *testing.T) {
	arr := make([]Uint64, 4)
	for i := 1; i < len(arr); i++ {
		a := uintptr(unsafe.Pointer(&arr[i-1]))
		b := uintptr(unsafe.Pointer(&arr[i]))
		if b-a < CacheLineSize {
			t.Fatalf("elements %d and %d are %d bytes apart", i-1, i, b-a)
		}
	}
}

func TestUint64Ops(t *testing.T) {
	var v Uint64
	v.Store(5)
	if v.Load() != 5 {
		t.Fatal("Store/Load")
	}
	if v.Add(3) != 8 {
		t.Fatal("Add")
	}
	if !v.CompareAndSwap(8, 10) || v.CompareAndSwap(8, 11) {
		t.Fatal("CAS")
	}
	if v.Swap(1) != 10 || v.Load() != 1 {
		t.Fatal("Swap")
	}
	v.SetRaw(99)
	if v.Raw() != 99 {
		t.Fatal("Raw")
	}
}

func TestInt64Ops(t *testing.T) {
	var v Int64
	v.Store(-5)
	if v.Load() != -5 {
		t.Fatal("Store/Load")
	}
	if v.Add(8) != 3 || v.Add(-4) != -1 {
		t.Fatal("Add")
	}
}

func TestUint32AndBool(t *testing.T) {
	var u Uint32
	u.Store(7)
	if u.Add(1) != 8 || u.Swap(2) != 8 || !u.CompareAndSwap(2, 3) {
		t.Fatal("Uint32 ops")
	}
	var b Bool
	if b.Load() {
		t.Fatal("zero Bool must be false")
	}
	b.Store(true)
	if !b.Load() {
		t.Fatal("Bool Store(true)")
	}
}

func TestPointer(t *testing.T) {
	var p Pointer[int]
	x, y := new(int), new(int)
	p.Store(x)
	if p.Load() != x {
		t.Fatal("Load")
	}
	if !p.CompareAndSwap(x, y) || p.Swap(x) != y {
		t.Fatal("CAS/Swap")
	}
}

func TestConcurrentAdd(t *testing.T) {
	var v Uint64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v.Add(1)
			}
		}()
	}
	wg.Wait()
	if v.Load() != 8000 {
		t.Fatalf("lost updates: %d", v.Load())
	}
}
