package mp

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestConnFIFO(t *testing.T) {
	var c Conn
	const n = 2000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			c.Send(Msg{W: [7]uint64{uint64(i), uint64(i) * 7}})
		}
	}()
	for i := 0; i < n; i++ {
		m := c.Recv()
		if m.W[0] != uint64(i) || m.W[1] != uint64(i)*7 {
			t.Fatalf("message %d corrupted or reordered: %v", i, m.W)
		}
	}
	wg.Wait()
}

func TestTrySendTryRecv(t *testing.T) {
	var c Conn
	if _, ok := c.TryRecv(); ok {
		t.Fatal("TryRecv on empty conn succeeded")
	}
	if !c.TrySend(Msg{W: [7]uint64{1}}) {
		t.Fatal("TrySend on empty conn failed")
	}
	if c.TrySend(Msg{W: [7]uint64{2}}) {
		t.Fatal("TrySend on full conn succeeded")
	}
	m, ok := c.TryRecv()
	if !ok || m.W[0] != 1 {
		t.Fatalf("TryRecv = %v, %v", m, ok)
	}
	if _, ok := c.TryRecv(); ok {
		t.Fatal("double TryRecv succeeded")
	}
}

func TestNetworkPairwise(t *testing.T) {
	nw := NewNetwork(4)
	var wg sync.WaitGroup
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if a == b {
				continue
			}
			a, b := a, b
			wg.Add(2)
			go func() {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					nw.Send(a, b, Msg{W: [7]uint64{uint64(a), uint64(b), uint64(i)}})
				}
			}()
			go func() {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					m := nw.Recv(b, a)
					if m.W[0] != uint64(a) || m.W[1] != uint64(b) || m.W[2] != uint64(i) {
						t.Errorf("pair (%d,%d): bad message %v", a, b, m.W)
					}
				}
			}()
		}
	}
	wg.Wait()
}

func TestClientServerRoundTrip(t *testing.T) {
	const clients = 3
	const calls = 200
	nw := NewNetwork(clients + 1)
	const server = 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for handled := 0; handled < clients*calls; handled++ {
			from, m := nw.RecvAny(server)
			m.W[1] = m.W[0] * 2
			nw.Send(server, from, m)
		}
	}()
	for c := 1; c <= clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				resp := nw.Call(c, server, Msg{W: [7]uint64{uint64(i)}})
				if resp.W[1] != uint64(i)*2 {
					t.Errorf("client %d: bad response %v", c, resp.W)
				}
			}
		}()
	}
	wg.Wait()
}

func TestNetworkValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("tiny network", func() { NewNetwork(1) })
	nw := NewNetwork(2)
	mustPanic("self conn", func() { nw.Conn(1, 1) })
	mustPanic("out of range", func() { nw.Conn(0, 5) })
}

// Property: any payload survives a send/recv round trip intact.
func TestQuickPayloadIntegrity(t *testing.T) {
	var c Conn
	f := func(w [7]uint64) bool {
		c.Send(Msg{W: w})
		return c.Recv().W == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPingPong(b *testing.B) {
	nw := NewNetwork(2)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			if m, ok := nw.Conn(0, 1).TryRecv(); ok {
				nw.Send(1, 0, m)
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Call(0, 1, Msg{W: [7]uint64{uint64(i)}})
	}
	b.StopTimer()
	close(done)
}
