// Package mp is the native Go implementation of the paper's libssmp:
// message passing built over cache coherence. Each one-directional
// connection is a single cache-line buffer — a full/empty flag plus 56
// bytes of payload — so transmitting a message costs the line transfers
// §6.2 derives: the receiver spins on its locally-cached flag until the
// sender's write invalidates it.
//
// Unlike Go channels, a Conn never allocates after construction, never
// blocks in the runtime (spinning yields cooperatively) and imposes the
// single-writer/single-reader discipline of the paper's design.
package mp

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"ssync/internal/pad"
)

// Msg is one message: up to 7 words (56 bytes) of payload.
type Msg struct {
	W [7]uint64
}

// buffer is the one-cache-line message slot. flag is the first word;
// the payload fills the rest of the line.
type buffer struct {
	flag    uint64
	payload [7]uint64
	_       [0]pad.Line // document intent: exactly one line of hot state
}

// Conn is a one-directional single-producer single-consumer connection.
type Conn struct {
	buf buffer
	_   [pad.CacheLineSize]byte // keep neighbouring Conns off this line
}

// TrySend writes msg if the buffer is free; it reports whether the
// message was accepted. Only one goroutine may send on a Conn.
func (c *Conn) TrySend(msg Msg) bool {
	if atomic.LoadUint64(&c.buf.flag) != 0 {
		return false
	}
	c.buf.payload = msg.W
	atomic.StoreUint64(&c.buf.flag, 1) // release: publishes the payload
	return true
}

// Send blocks (spinning, with cooperative yields) until the previous
// message is consumed, then transmits msg.
func (c *Conn) Send(msg Msg) {
	spins := 0
	for !c.TrySend(msg) {
		spins++
		if spins%32 == 0 {
			runtime.Gosched()
		}
	}
}

// TryRecv consumes a pending message, if any. Only one goroutine may
// receive on a Conn.
func (c *Conn) TryRecv() (Msg, bool) {
	if atomic.LoadUint64(&c.buf.flag) != 1 {
		return Msg{}, false
	}
	var m Msg
	m.W = c.buf.payload
	atomic.StoreUint64(&c.buf.flag, 0)
	return m, true
}

// Recv blocks until a message arrives and returns it.
func (c *Conn) Recv() Msg {
	spins := 0
	for {
		if m, ok := c.TryRecv(); ok {
			return m
		}
		spins++
		if spins%32 == 0 {
			runtime.Gosched()
		}
	}
}

// Network is a full mesh of connections between n participants, the
// client-server substrate of libssmp.
type Network struct {
	n int
	// conns[from*n+to]
	conns []Conn
}

// NewNetwork creates a mesh for n participants (ids 0..n-1).
func NewNetwork(n int) *Network {
	if n < 2 {
		panic("mp: a network needs at least two participants")
	}
	return &Network{n: n, conns: make([]Conn, n*n)}
}

// N returns the participant count.
func (nw *Network) N() int { return nw.n }

// Conn returns the from→to connection.
func (nw *Network) Conn(from, to int) *Conn {
	nw.check(from)
	nw.check(to)
	if from == to {
		panic("mp: no self connection")
	}
	return &nw.conns[from*nw.n+to]
}

func (nw *Network) check(id int) {
	if id < 0 || id >= nw.n {
		panic(fmt.Sprintf("mp: participant %d out of range [0,%d)", id, nw.n))
	}
}

// Send transmits msg from participant `from` to participant `to`.
func (nw *Network) Send(from, to int, msg Msg) { nw.Conn(from, to).Send(msg) }

// Recv blocks until a message from `from` arrives at `to`.
func (nw *Network) Recv(to, from int) Msg { return nw.Conn(from, to).Recv() }

// RecvAny scans participant `to`'s incoming connections round-robin until
// a message arrives; it returns the sender and the message. The scan
// pattern matches libssmp's receive-from-any: idle flags stay cached, so
// an idle sweep is cheap.
func (nw *Network) RecvAny(to int) (int, Msg) {
	nw.check(to)
	spins := 0
	for {
		for from := 0; from < nw.n; from++ {
			if from == to {
				continue
			}
			if m, ok := nw.conns[from*nw.n+to].TryRecv(); ok {
				return from, m
			}
		}
		spins++
		if spins%8 == 0 {
			runtime.Gosched()
		}
	}
}

// Call performs a round-trip: send a request to `to`, wait for the reply.
func (nw *Network) Call(from, to int, msg Msg) Msg {
	nw.Send(from, to, msg)
	return nw.Recv(from, to)
}
