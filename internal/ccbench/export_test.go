package ccbench

import (
	"ssync/internal/arch"
	"ssync/internal/memsim"
)

// Aliases keeping the directory-placement test readable.
type thread = memsim.Thread

func newMachineForTest(p *arch.Platform) *memsim.Machine { return memsim.New(p) }
