package ccbench

import (
	"testing"

	"ssync/internal/arch"
)

func TestTable2Opteron(t *testing.T) {
	// The simulator must reproduce the paper's Table 2 exactly in the
	// best-case placements the table was measured with.
	p := arch.Opteron()
	cases := []struct {
		c    Case
		want float64
	}{
		{Case{arch.Load, arch.Modified, 0}, 81},
		{Case{arch.Load, arch.Modified, 3}, 252},
		{Case{arch.Load, arch.Owned, 1}, 163},
		{Case{arch.Load, arch.Shared, 2}, 176},
		{Case{arch.Load, arch.Invalid, 0}, 136},
		{Case{arch.Store, arch.Shared, 0}, 246},
		{Case{arch.Store, arch.Owned, 0}, 244},
		{Case{arch.Store, arch.Modified, 3}, 273},
		{Case{arch.CAS, arch.Modified, 0}, 110},
		{Case{arch.TAS, arch.Shared, 3}, 332},
	}
	for _, c := range cases {
		r := Run(p, c.c, 3)
		if r.Cycles != c.want {
			t.Errorf("Opteron %s = %.0f cycles, want %.0f", c.c, r.Cycles, c.want)
		}
		if r.RelStddev > 0.03 {
			t.Errorf("Opteron %s: rel stddev %.3f exceeds the paper's 3%% bound", c.c, r.RelStddev)
		}
	}
}

func TestTable2Xeon(t *testing.T) {
	p := arch.Xeon()
	cases := []struct {
		c    Case
		want float64
	}{
		{Case{arch.Load, arch.Modified, 0}, 109},
		{Case{arch.Load, arch.Shared, 0}, 44},
		{Case{arch.Load, arch.Shared, 2}, 334},
		{Case{arch.Load, arch.Exclusive, 1}, 273},
		{Case{arch.Store, arch.Modified, 2}, 431},
		{Case{arch.SWAP, arch.Shared, 1}, 312},
		{Case{arch.Load, arch.Invalid, 0}, 355},
	}
	for _, c := range cases {
		if r := Run(p, c.c, 3); r.Cycles != c.want {
			t.Errorf("Xeon %s = %.0f cycles, want %.0f", c.c, r.Cycles, c.want)
		}
	}
}

func TestTable2Niagara(t *testing.T) {
	p := arch.Niagara()
	cases := []struct {
		c    Case
		want float64
	}{
		{Case{arch.Load, arch.Modified, 0}, 3},
		{Case{arch.Load, arch.Modified, 1}, 24},
		{Case{arch.Store, arch.Shared, 1}, 24},
		{Case{arch.CAS, arch.Modified, 1}, 66},
		{Case{arch.TAS, arch.Modified, 1}, 55},
		{Case{arch.FAI, arch.Shared, 0}, 99},
	}
	for _, c := range cases {
		if r := Run(p, c.c, 3); r.Cycles != c.want {
			t.Errorf("Niagara %s = %.0f cycles, want %.0f", c.c, r.Cycles, c.want)
		}
	}
}

func TestTable2TileraDistance(t *testing.T) {
	p := arch.Tilera()
	// One-hop vs max-hops loads: 45 vs ≈63-65 cycles.
	near := Run(p, Case{arch.Load, arch.Modified, 1}, 3)
	far := Run(p, Case{arch.Load, arch.Modified, 10}, 3)
	if near.Cycles != 45 {
		t.Errorf("Tilera one-hop load = %.0f, want 45", near.Cycles)
	}
	if far.Cycles < 60 || far.Cycles > 66 {
		t.Errorf("Tilera max-hops load = %.0f, want ≈63", far.Cycles)
	}
	// FAI is the cheapest atomic at any distance.
	fai := Run(p, Case{arch.FAI, arch.Modified, 1}, 3)
	cas := Run(p, Case{arch.CAS, arch.Modified, 1}, 3)
	if fai.Cycles >= cas.Cycles {
		t.Errorf("Tilera FAI (%.0f) must undercut CAS (%.0f)", fai.Cycles, cas.Cycles)
	}
}

func TestCasesEnumeration(t *testing.T) {
	// The Opteron has Owned-state rows; the Xeon must not.
	for _, c := range Cases(arch.Xeon()) {
		if c.State == arch.Owned {
			t.Fatal("Xeon case list contains Owned state")
		}
	}
	nOpt := len(Cases(arch.Opteron()))
	nXeon := len(Cases(arch.Xeon()))
	if nOpt <= nXeon {
		t.Errorf("Opteron must have more cases (%d) than the Xeon (%d) — it has the Owned state", nOpt, nXeon)
	}
	// ccbench supports 30 cases; per distance class we must enumerate at
	// least 14 (5 load + 5 store + 4 atomics on two states minus Owned).
	if perClass := nOpt / len(ReportClasses(arch.Opteron())); perClass < 14 {
		t.Errorf("only %d cases per class", perClass)
	}
}

func TestTable3(t *testing.T) {
	for _, p := range arch.All() {
		rows := Table3(p)
		if len(rows) != 4 {
			t.Fatalf("%s: %d rows", p.Name, len(rows))
		}
		if rows[0].Level != "L1" || rows[0].Cycles != p.L1 {
			t.Errorf("%s: L1 = %d, want %d", p.Name, rows[0].Cycles, p.L1)
		}
		if rows[3].Level != "RAM" || rows[3].Cycles != p.RAM {
			t.Errorf("%s: RAM = %d, want %d", p.Name, rows[3].Cycles, p.RAM)
		}
	}
}

func TestDirectoryPlacementWorstCase(t *testing.T) {
	// §5.2: when the directory is remote to both cores, an Opteron 2-hop
	// load costs ≈312 cycles instead of 81. Reproduce it directly.
	p := arch.Opteron()
	// Requester core 0 (die 0), holder core 6 (die 1, same MCM — class 1);
	// line homed on die 7, two hops from the requester.
	m := newMachineForTest(p)
	target := m.AllocLine(7)
	phase := m.AllocLine(0)
	var latency uint64
	m.Spawn(6, func(t *thread) {
		t.Store(target, 1)
		t.Store(phase, 1)
	})
	m.Spawn(0, func(t *thread) {
		t.WaitUntil(phase, func(v uint64) bool { return v == 1 })
		start := t.Now()
		t.Load(target)
		latency = t.Now() - start
	})
	m.Run()
	base := p.Lat(arch.Load, arch.Modified, p.DistClass(0, 6))
	if latency <= uint64(base) {
		t.Fatalf("remote-directory load = %d cycles, must exceed the best-case %d", latency, base)
	}
	if latency < 280 || latency > 420 {
		t.Errorf("remote-directory load = %d cycles, want ≈312", latency)
	}
}
