// Package ccbench reproduces the paper's ccbench microbenchmarks: the cost
// of a load, store or atomic operation on a cache line as a function of
// the line's coherence state and the distance to its current holder
// (Tables 2 and 3, §5.1–§5.2).
//
// Each case brings a fresh line into the desired state — with helper
// threads placed like the paper places them (sharers near the holder, the
// directory on the holder's node for the best-case numbers) — and then
// measures a single access from the requester.
package ccbench

import (
	"fmt"

	"ssync/internal/arch"
	"ssync/internal/memsim"
	"ssync/internal/stats"
)

// Case identifies one microbenchmark configuration.
type Case struct {
	Op    arch.Op
	State arch.State
	Class int // distance class (platform-specific; hop count on the Tilera)
}

// String renders the case the way the paper's tables label it.
func (c Case) String() string {
	return fmt.Sprintf("%v on %v at class %d", c.Op, c.State, c.Class)
}

// Result is the measured latency of a case.
type Result struct {
	Case
	ClassName string
	Cycles    float64 // mean over repetitions
	RelStddev float64
	Reps      int
}

// ReportClasses returns the distance classes the paper reports for a
// platform (for the Tilera: one hop and the mesh diameter).
func ReportClasses(p *arch.Platform) []int {
	if p.Name == "Tilera" {
		return []int{1, 10}
	}
	classes := make([]int, p.NumClasses())
	for i := range classes {
		classes[i] = i
	}
	return classes
}

// Cases enumerates the paper's Table 2 rows for a platform: loads and
// stores on every state, atomics on Modified and Shared. The Owned state
// exists only on the MOESI Opteron family.
func Cases(p *arch.Platform) []Case {
	var out []Case
	states := []arch.State{arch.Modified, arch.Owned, arch.Exclusive, arch.Shared, arch.Invalid}
	for _, class := range ReportClasses(p) {
		for _, st := range states {
			if st == arch.Owned && !p.IncompleteDirectory {
				continue
			}
			out = append(out, Case{arch.Load, st, class})
			out = append(out, Case{arch.Store, st, class})
		}
		for _, op := range arch.AtomicOps {
			out = append(out, Case{op, arch.Modified, class})
			out = append(out, Case{op, arch.Shared, class})
		}
	}
	return out
}

// Run measures one case with the given number of repetitions (each on a
// fresh cache line) and returns the mean latency.
func Run(p *arch.Platform, c Case, reps int) Result {
	if reps <= 0 {
		reps = 5
	}
	var acc stats.Online
	for rep := 0; rep < reps; rep++ {
		acc.Add(float64(measure(p, c, rep)))
	}
	name := "?"
	if c.Class >= 0 && c.Class < len(p.DistNames) {
		name = p.DistNames[c.Class]
	}
	return Result{Case: c, ClassName: name, Cycles: acc.Mean(), RelStddev: acc.RelStddev(), Reps: reps}
}

// pickHolder returns a core at the given distance class from the
// requester, or -1 if the platform has no such pair.
func pickHolder(p *arch.Platform, requester, class int) int {
	for c := 0; c < p.NumCores; c++ {
		if c != requester && p.DistClass(requester, c) == class {
			return c
		}
	}
	return -1
}

// pickNear returns a core close to h (same die / same physical core) to
// act as an extra sharer, excluding the listed cores.
func pickNear(p *arch.Platform, h int, exclude ...int) int {
	for c := 0; c < p.NumCores; c++ {
		skip := c == h
		for _, e := range exclude {
			if c == e {
				skip = true
			}
		}
		if skip {
			continue
		}
		if p.DistClass(h, c) == 0 {
			return c
		}
	}
	// Fall back to any spare core.
	for c := 0; c < p.NumCores; c++ {
		skip := c == h
		for _, e := range exclude {
			if c == e {
				skip = true
			}
		}
		if !skip {
			return c
		}
	}
	return -1
}

// allocTarget picks the line for a repetition. On the Tilera the home tile
// must sit at the requested hop distance from the requester, so lines are
// allocated until one matches; elsewhere the line is homed on the holder's
// node (the paper's best case: the directory is local to one of the
// involved cores) or, for Invalid lines, at the class distance from the
// requester since the access goes to memory.
func allocTarget(m *memsim.Machine, c Case, requester, holder int) memsim.Addr {
	p := m.Plat
	if p.Name == "Tilera" {
		for i := 0; i < 4096; i++ {
			a := m.AllocLine(0)
			if p.Hops(requester, p.HomeTile(a.Line())) == c.Class {
				return a
			}
		}
		panic("ccbench: no line with the requested home-tile distance")
	}
	if c.State == arch.Invalid {
		// Memory access: pick the node at the requested class.
		for n := 0; n < p.NumNodes; n++ {
			if p.DistClassToNode(requester, n) == c.Class {
				return m.AllocLine(n)
			}
		}
		return m.AllocLine(p.NodeOf(requester))
	}
	if c.State == arch.Shared || c.State == arch.Owned {
		// The paper's shared-line rows place the directory with the
		// *storer* (footnote 6: two sharers at the indicated distance from
		// a third core that performs the store), so broadcasts start at a
		// local directory.
		return m.AllocLine(p.NodeOf(requester))
	}
	if holder >= 0 {
		return m.AllocLine(p.NodeOf(holder))
	}
	return m.AllocLine(p.NodeOf(requester))
}

// measure runs one repetition and returns the access latency in cycles.
func measure(p *arch.Platform, c Case, rep int) uint64 {
	m := memsim.New(p)
	requester := 0
	holder := pickHolder(p, requester, c.Class)
	if c.State != arch.Invalid && holder < 0 {
		panic(fmt.Sprintf("ccbench: %s has no core at class %d", p.Name, c.Class))
	}
	// Burn a few allocations so different reps land on different lines
	// (this matters on the Tilera, where the home tile is a hash).
	for i := 0; i < rep; i++ {
		m.AllocLine(0)
	}
	target := allocTarget(m, c, requester, holder)
	phase := m.AllocLine(p.NodeOf(requester))

	var latency uint64
	ready := uint64(0) // phase at which the requester measures

	switch c.State {
	case arch.Invalid:
		ready = 0
	case arch.Modified, arch.Exclusive:
		ready = 1
		m.Spawn(holder, func(t *memsim.Thread) {
			if c.State == arch.Modified {
				t.Store(target, 1)
			} else {
				t.Load(target)
			}
			t.Store(phase, 1)
		})
	case arch.Owned:
		// Holder dirties the line, a nearby core loads it: MOESI moves the
		// line to Owned at the holder.
		ready = 2
		aux := pickNear(p, holder, requester)
		m.Spawn(holder, func(t *memsim.Thread) {
			t.Store(target, 1)
			t.Store(phase, 1)
		})
		m.Spawn(aux, func(t *memsim.Thread) {
			t.WaitUntil(phase, func(v uint64) bool { return v == 1 })
			t.Load(target)
			t.Store(phase, 2)
		})
	case arch.Shared:
		// Two sharers near each other at the class distance from the
		// requester (the paper's store-on-shared methodology, footnote 6).
		ready = 2
		aux := pickNear(p, holder, requester)
		m.Spawn(aux, func(t *memsim.Thread) {
			t.Load(target) // Invalid → Exclusive
			t.Store(phase, 1)
		})
		m.Spawn(holder, func(t *memsim.Thread) {
			t.WaitUntil(phase, func(v uint64) bool { return v == 1 })
			t.Load(target) // Exclusive → Shared
			t.Store(phase, 2)
		})
	}

	m.Spawn(requester, func(t *memsim.Thread) {
		if ready > 0 {
			t.WaitUntil(phase, func(v uint64) bool { return v == ready })
		}
		start := t.Now()
		switch c.Op {
		case arch.Load:
			t.Load(target)
		case arch.Store:
			t.Store(target, 7)
		case arch.CAS:
			t.CAS(target, 1, 2)
		case arch.FAI:
			t.FAI(target)
		case arch.TAS:
			t.TAS(target)
		case arch.SWAP:
			t.Swap(target, 9)
		}
		latency = t.Now() - start
	})
	m.Run()
	return latency
}

// LocalResult is one Table 3 row.
type LocalResult struct {
	Level  string
	Cycles uint64
}

// Table3 reports the local-access latencies. The simulator models a single
// private cache level plus memory, so L1 and RAM are measured and L2/LLC
// are the platform's calibrated constants.
func Table3(p *arch.Platform) []LocalResult {
	// Measure from the core closest to its own memory controller (the
	// paper's local-access setup); on the Tilera mesh this is the tile
	// adjacent to a controller.
	requester := 0
	for c := 1; c < p.NumCores; c++ {
		if p.DistClassToNode(c, p.NodeOf(c)) < p.DistClassToNode(requester, p.NodeOf(requester)) {
			requester = c
		}
	}
	m := memsim.New(p)
	a := m.AllocLine(p.NodeOf(requester))
	var l1, ram uint64
	m.Spawn(requester, func(t *memsim.Thread) {
		start := t.Now()
		t.Load(a) // Invalid: memory access
		ram = t.Now() - start
		start = t.Now()
		t.Load(a) // cached
		l1 = t.Now() - start
	})
	m.Run()
	return []LocalResult{
		{"L1", l1},
		{"L2", p.L2},
		{"LLC", p.LLC},
		{"RAM", ram},
	}
}
