package ssht

import (
	"sync"
	"testing"
	"testing/quick"

	"ssync/internal/locks"
	"ssync/internal/xrand"
)

func val(x uint64) Value { return Value{x, x + 1, x + 2, x + 3, x + 4} }

func TestBasicOps(t *testing.T) {
	h := New(Options{Buckets: 16}).NewHandle(0)
	if _, ok := h.Get(42); ok {
		t.Fatal("Get on empty table")
	}
	if !h.Put(42, val(1)) {
		t.Fatal("first Put must report insertion")
	}
	if h.Put(42, val(2)) {
		t.Fatal("second Put must report replacement")
	}
	if v, ok := h.Get(42); !ok || v != val(2) {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if !h.Remove(42) {
		t.Fatal("Remove of present key failed")
	}
	if h.Remove(42) {
		t.Fatal("Remove of absent key succeeded")
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d, want 0", h.Len())
	}
}

func TestOverflowChaining(t *testing.T) {
	// Force everything into very few buckets to exercise segment chains.
	h := New(Options{Buckets: 2}).NewHandle(0)
	const n = 200
	for i := uint64(0); i < n; i++ {
		h.Put(i, val(i))
	}
	if h.Len() != n {
		t.Fatalf("Len = %d, want %d", h.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := h.Get(i); !ok || v != val(i) {
			t.Fatalf("Get(%d) = %v, %v", i, v, ok)
		}
	}
	// Remove odd keys, re-check.
	for i := uint64(1); i < n; i += 2 {
		if !h.Remove(i) {
			t.Fatalf("Remove(%d) failed", i)
		}
	}
	for i := uint64(0); i < n; i++ {
		_, ok := h.Get(i)
		if want := i%2 == 0; ok != want {
			t.Fatalf("after removal Get(%d) = %v, want %v", i, ok, want)
		}
	}
	// Slots freed by removal are reused before new segments are chained.
	for i := uint64(1); i < n; i += 2 {
		h.Put(i, val(i))
	}
	if h.Len() != n {
		t.Fatalf("Len after reinsert = %d, want %d", h.Len(), n)
	}
}

// Property: a sequential op mix agrees with a map reference.
func TestQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		h := New(Options{Buckets: 8}).NewHandle(0)
		ref := map[uint64]Value{}
		rng := xrand.New(seed)
		for _, op := range ops {
			k := uint64(op % 61)
			switch {
			case op%3 == 0:
				v := val(rng.Uint64())
				h.Put(k, v)
				ref[k] = v
			case op%3 == 1:
				got, ok := h.Get(k)
				want, wok := ref[k]
				if ok != wok || (ok && got != want) {
					return false
				}
			default:
				if h.Remove(k) != (func() bool { _, ok := ref[k]; return ok })() {
					return false
				}
				delete(ref, k)
			}
		}
		return h.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Concurrent smoke test with key-space partitioning: each goroutine owns a
// disjoint key range, so its view must be exactly sequential, while all
// goroutines share buckets and therefore locks.
func TestConcurrentPartitionedKeys(t *testing.T) {
	for _, alg := range []locks.Algorithm{locks.TAS, locks.TICKET, locks.MCS, locks.CLH, locks.MUTEX} {
		tbl := New(Options{Buckets: 12, Lock: alg, MaxThreads: 16})
		var wg sync.WaitGroup
		const nG, perG = 6, 400
		for g := 0; g < nG; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				h := tbl.NewHandle(g % 2)
				base := uint64(g) << 32
				rng := xrand.New(uint64(g) + 1)
				local := map[uint64]Value{}
				for i := 0; i < perG; i++ {
					k := base + rng.Uint64()%97
					switch rng.Intn(10) {
					case 0, 1:
						if h.Remove(k) != (func() bool { _, ok := local[k]; return ok })() {
							t.Errorf("%s: Remove(%d) inconsistent", alg, k)
						}
						delete(local, k)
					case 2, 3, 4:
						v := val(rng.Uint64())
						h.Put(k, v)
						local[k] = v
					default:
						got, ok := h.Get(k)
						want, wok := local[k]
						if ok != wok || (ok && got != want) {
							t.Errorf("%s: Get(%d) = %v,%v want %v,%v", alg, k, got, ok, want, wok)
						}
					}
				}
			}()
		}
		wg.Wait()
	}
}

func TestServedBasic(t *testing.T) {
	s := NewServed(64, 2, 2)
	c0 := s.NewClient(0)
	c1 := s.NewClient(1)
	if !c0.Put(7, val(9)) {
		t.Fatal("Put new key")
	}
	if v, ok := c1.Get(7); !ok || v != val(9) {
		t.Fatalf("cross-client Get = %v, %v", v, ok)
	}
	if !c1.Remove(7) {
		t.Fatal("Remove")
	}
	if _, ok := c0.Get(7); ok {
		t.Fatal("Get after Remove")
	}
	c0.Close()
}

func TestServedConcurrentClients(t *testing.T) {
	const nClients = 4
	s := NewServed(32, 2, nClients)
	var wg sync.WaitGroup
	for cid := 0; cid < nClients; cid++ {
		cid := cid
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := s.NewClient(cid)
			base := uint64(cid) << 40
			for i := uint64(0); i < 200; i++ {
				k := base + i%37
				c.Put(k, val(i))
				if v, ok := c.Get(k); !ok || v != val(i) {
					t.Errorf("client %d: Get(%d) = %v, %v", cid, k, v, ok)
				}
				if i%5 == 0 {
					c.Remove(k)
				}
			}
		}()
	}
	wg.Wait()
	s.NewClient(0).Close()
}
