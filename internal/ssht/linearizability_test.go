package ssht

import (
	"sync"
	"testing"

	"ssync/internal/locks"
	"ssync/internal/xrand"
)

// This file stress-tests linearizability of the shared-key paths under
// real concurrency (run it with -race; CI does). The check exploits a
// single-writer discipline: every key is written by exactly one
// goroutine, with a version number that only grows, while every
// goroutine reads every key. Linearizability then implies each reader
// observes a non-decreasing version per key — a stale, torn or lost
// write shows up as a version step backwards, without needing a full
// interleaving oracle.

// version packs a writer's monotonically increasing counter into the
// first value word; the remaining words are derived so torn reads are
// detectable too.
func versioned(v uint64) Value {
	return Value{v, v ^ 0xa5a5a5a5, v + 17, ^v, v * 31}
}

func checkVersioned(t *testing.T, ctx string, got Value) uint64 {
	t.Helper()
	if got != versioned(got[0]) {
		t.Fatalf("%s: torn value %v", ctx, got)
	}
	return got[0]
}

func TestLinearizableLockTable(t *testing.T) {
	const (
		nWriters = 4
		nReaders = 4
		nKeys    = 16 // few keys over few buckets: heavy lock sharing
		ops      = 3000
	)
	for _, alg := range []locks.Algorithm{locks.TAS, locks.TICKET, locks.MCS, locks.CLH, locks.MUTEX} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			tbl := New(Options{Buckets: 4, Lock: alg, MaxThreads: nWriters + nReaders + 1})
			var wg sync.WaitGroup
			// Writers: key k is owned by writer k%nWriters; versions only
			// grow, and a key is sometimes removed then reinserted at a
			// higher version.
			for w := 0; w < nWriters; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					h := tbl.NewHandle(w % 2)
					rng := xrand.New(uint64(w)*7919 + 1)
					version := uint64(1)
					for i := 0; i < ops; i++ {
						k := uint64(w) + nWriters*(rng.Uint64()%(nKeys/nWriters))
						if rng.Intn(8) == 0 {
							h.Remove(k)
						} else {
							h.Put(k, versioned(version))
							version++
						}
					}
				}()
			}
			for r := 0; r < nReaders; r++ {
				r := r
				wg.Add(1)
				go func() {
					defer wg.Done()
					h := tbl.NewHandle(r % 2)
					rng := xrand.New(uint64(r)*104729 + 5)
					var lastSeen [nKeys]uint64
					for i := 0; i < ops; i++ {
						k := rng.Uint64() % nKeys
						v, ok := h.Get(k)
						if !ok {
							continue
						}
						ver := checkVersioned(t, string(alg), v)
						if ver < lastSeen[k] {
							t.Errorf("%s: key %d went backwards: version %d after %d", alg, k, ver, lastSeen[k])
							return
						}
						lastSeen[k] = ver
					}
				}()
			}
			wg.Wait()
		})
	}
}

// TestLinearizableServedTable runs the same monotonic-reads check against
// the message-passing table, whose mutual exclusion comes from bucket
// ownership instead of locks.
func TestLinearizableServedTable(t *testing.T) {
	const (
		nWriters = 3
		nReaders = 3
		nKeys    = 16
		ops      = 2000
	)
	s := NewServed(8, 2, nWriters+nReaders)
	clients := make([]*Client, nWriters+nReaders)
	for i := range clients {
		clients[i] = s.NewClient(i)
	}
	var wg sync.WaitGroup
	for w := 0; w < nWriters; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := clients[w]
			rng := xrand.New(uint64(w)*6151 + 9)
			version := uint64(1)
			for i := 0; i < ops; i++ {
				k := uint64(w) + nWriters*(rng.Uint64()%(nKeys/nWriters))
				if rng.Intn(8) == 0 {
					c.Remove(k)
				} else {
					c.Put(k, versioned(version))
					version++
				}
			}
		}()
	}
	for r := 0; r < nReaders; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := clients[nWriters+r]
			rng := xrand.New(uint64(r)*31337 + 2)
			var lastSeen [nKeys]uint64
			for i := 0; i < ops; i++ {
				k := rng.Uint64() % nKeys
				v, ok := c.Get(k)
				if !ok {
					continue
				}
				ver := checkVersioned(t, "served", v)
				if ver < lastSeen[k] {
					t.Errorf("served: key %d went backwards: version %d after %d", k, ver, lastSeen[k])
					return
				}
				lastSeen[k] = ver
			}
		}()
	}
	wg.Wait()
	clients[0].Close()
}
