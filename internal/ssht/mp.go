package ssht

import (
	"fmt"

	"ssync/internal/hashkit"
	"ssync/internal/mp"
)

// Served is the message-passing variant of the hash table (paper §6.3):
// server goroutines own disjoint bucket ranges and execute operations on
// behalf of clients, which ship each request as one cache-line message and
// block for the response. No locks exist — partitioning enforces mutual
// exclusion, the single-writer principle of Barrelfish-style designs.
type Served struct {
	nBuckets uint64
	nServers int
	net      *mp.Network
	stop     []chan struct{}
}

// Request opcodes.
const (
	opGet uint64 = iota + 1
	opPut
	opRemove
	opShutdown
)

// NewServed starts nServers server goroutines (participants 0..nServers-1
// of the returned network; clients are nServers..nServers+nClients-1).
// The paper's configuration is one server per three client cores.
func NewServed(nBuckets, nServers, nClients int) *Served {
	if nBuckets <= 0 || nServers <= 0 || nClients <= 0 {
		panic("ssht: NewServed needs positive buckets, servers and clients")
	}
	s := &Served{
		nBuckets: uint64(nBuckets),
		nServers: nServers,
		net:      mp.NewNetwork(nServers + nClients),
		stop:     make([]chan struct{}, nServers),
	}
	for i := 0; i < nServers; i++ {
		s.stop[i] = make(chan struct{})
		go s.serve(i)
	}
	return s
}

// serve owns the buckets b with b % nServers == id.
func (s *Served) serve(id int) {
	table := make(map[uint64]Value) // only this goroutine touches it
	defer close(s.stop[id])
	for {
		from, req := s.net.RecvAny(id)
		switch req.W[0] {
		case opGet:
			v, ok := table[req.W[1]]
			resp := mp.Msg{W: [7]uint64{boolWord(ok), v[0], v[1], v[2], v[3], v[4]}}
			s.net.Send(id, from, resp)
		case opPut:
			_, existed := table[req.W[1]]
			table[req.W[1]] = Value{req.W[2], req.W[3], req.W[4], req.W[5], req.W[6]}
			s.net.Send(id, from, mp.Msg{W: [7]uint64{boolWord(!existed)}})
		case opRemove:
			_, ok := table[req.W[1]]
			delete(table, req.W[1])
			s.net.Send(id, from, mp.Msg{W: [7]uint64{boolWord(ok)}})
		case opShutdown:
			s.net.Send(id, from, mp.Msg{})
			return
		default:
			panic(fmt.Sprintf("ssht: server %d received bad opcode %d", id, req.W[0]))
		}
	}
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Client is a per-goroutine accessor; id is the client index in
// [0, nClients).
type Client struct {
	s  *Served
	me int
}

// NewClient returns the accessor for client index id. Each id must be used
// by exactly one goroutine.
func (s *Served) NewClient(id int) *Client {
	return &Client{s: s, me: s.nServers + id}
}

// serverOf maps a key's bucket to its owning server.
func (s *Served) serverOf(key uint64) int {
	b := hashkit.Bucket(key, s.nBuckets)
	return int(b % uint64(s.nServers))
}

// Get fetches the value under key.
func (c *Client) Get(key uint64) (Value, bool) {
	resp := c.s.net.Call(c.me, c.s.serverOf(key), mp.Msg{W: [7]uint64{opGet, key}})
	return Value{resp.W[1], resp.W[2], resp.W[3], resp.W[4], resp.W[5]}, resp.W[0] == 1
}

// Put stores the value under key; it reports whether the key was new.
func (c *Client) Put(key uint64, v Value) bool {
	req := mp.Msg{W: [7]uint64{opPut, key, v[0], v[1], v[2], v[3], v[4]}}
	return c.s.net.Call(c.me, c.s.serverOf(key), req).W[0] == 1
}

// Remove deletes key; it reports whether the key was present.
func (c *Client) Remove(key uint64) bool {
	return c.s.net.Call(c.me, c.s.serverOf(key), mp.Msg{W: [7]uint64{opRemove, key}}).W[0] == 1
}

// Close shuts the servers down. Exactly one client may call it, once, and
// only after all other clients have stopped issuing operations.
func (c *Client) Close() {
	for id := 0; id < c.s.nServers; id++ {
		c.s.net.Call(c.me, id, mp.Msg{W: [7]uint64{opShutdown}})
		<-c.s.stop[id]
	}
}
