// Package ssht is the native Go implementation of the paper's ssht: a
// cache-conscious concurrent hash table with pluggable synchronization.
// It exports the paper's three operations — put, get and remove — over
// 64-bit keys and fixed-size values, with one lock per bucket (any
// libslock algorithm) or, alternatively, a message-passing mode where
// server goroutines own bucket ranges and clients ship operations to them
// (package sshtmp in this directory's sibling file).
//
// Buckets store keys packed together, separate from the values, so a miss
// scans only key words (the paper's "place the data as efficiently as
// possible in the caches ... allow for efficient prefetching and avoid
// false sharing").
package ssht

import (
	"fmt"

	"ssync/internal/hashkit"
	"ssync/internal/locks"
)

// ValueWords is the payload size in 8-byte words. 40 bytes keeps one
// operation (op, key, value) within a single libssmp cache-line message;
// the paper's evaluation uses 64-byte payloads, which the simulator-side
// reproduction (internal/bench) models exactly.
const ValueWords = 5

// Value is one stored payload.
type Value [ValueWords]uint64

// segCap is the number of entries per bucket segment; segments chain when
// a bucket overflows.
type segment struct {
	keys [segCap]uint64
	used [segCap]bool
	vals [segCap]Value
	next *segment
}

const segCap = 6

// Table is the lock-based hash table.
type Table struct {
	nBuckets uint64
	buckets  []segment
	lockAlg  locks.Algorithm
	locks    []locks.Lock
}

// Options configures a Table.
type Options struct {
	// Buckets is the bucket count (the paper evaluates 12 and 512).
	Buckets int
	// Lock selects the per-bucket lock algorithm. Default TICKET.
	Lock locks.Algorithm
	// MaxThreads is forwarded to ARRAY locks.
	MaxThreads int
}

// New creates a table.
func New(opt Options) *Table {
	if opt.Buckets <= 0 {
		opt.Buckets = 512
	}
	if opt.Lock == "" {
		opt.Lock = locks.TICKET
	}
	t := &Table{
		nBuckets: uint64(opt.Buckets),
		buckets:  make([]segment, opt.Buckets),
		lockAlg:  opt.Lock,
		locks:    make([]locks.Lock, opt.Buckets),
	}
	for i := range t.locks {
		t.locks[i] = locks.New(opt.Lock, locks.Options{MaxThreads: opt.MaxThreads})
	}
	return t
}

// Handle is a per-goroutine accessor carrying the per-bucket lock tokens.
// Handles must not be shared between goroutines.
type Handle struct {
	t    *Table
	toks []*locks.Token
	node int
}

// NewHandle creates an accessor; node is the NUMA hint for hierarchical
// locks.
func (t *Table) NewHandle(node int) *Handle {
	return &Handle{t: t, toks: make([]*locks.Token, t.nBuckets), node: node}
}

func (h *Handle) tok(b uint64) *locks.Token {
	if h.toks[b] == nil {
		h.toks[b] = h.t.locks[b].NewToken(h.node)
	}
	return h.toks[b]
}

// bucketOf hashes a key to its bucket (Fibonacci hashing, like the home
// tiles of the Tilera model).
func (t *Table) bucketOf(key uint64) uint64 {
	return hashkit.Bucket(key, t.nBuckets)
}

// Get returns the value stored under key.
func (h *Handle) Get(key uint64) (Value, bool) {
	b := h.t.bucketOf(key)
	tok := h.tok(b)
	h.t.locks[b].Acquire(tok)
	defer h.t.locks[b].Release(tok)
	for s := &h.t.buckets[b]; s != nil; s = s.next {
		for i := 0; i < segCap; i++ {
			if s.used[i] && s.keys[i] == key {
				return s.vals[i], true
			}
		}
	}
	return Value{}, false
}

// Put inserts or replaces the value under key; it reports whether the key
// was newly inserted.
func (h *Handle) Put(key uint64, v Value) bool {
	b := h.t.bucketOf(key)
	tok := h.tok(b)
	h.t.locks[b].Acquire(tok)
	defer h.t.locks[b].Release(tok)
	var freeSeg *segment
	freeIdx := -1
	last := (*segment)(nil)
	for s := &h.t.buckets[b]; s != nil; s = s.next {
		for i := 0; i < segCap; i++ {
			if s.used[i] {
				if s.keys[i] == key {
					s.vals[i] = v
					return false
				}
			} else if freeIdx < 0 {
				freeSeg, freeIdx = s, i
			}
		}
		last = s
	}
	if freeIdx < 0 {
		seg := &segment{}
		last.next = seg
		freeSeg, freeIdx = seg, 0
	}
	freeSeg.keys[freeIdx] = key
	freeSeg.vals[freeIdx] = v
	freeSeg.used[freeIdx] = true
	return true
}

// Remove deletes key; it reports whether the key was present.
func (h *Handle) Remove(key uint64) bool {
	b := h.t.bucketOf(key)
	tok := h.tok(b)
	h.t.locks[b].Acquire(tok)
	defer h.t.locks[b].Release(tok)
	for s := &h.t.buckets[b]; s != nil; s = s.next {
		for i := 0; i < segCap; i++ {
			if s.used[i] && s.keys[i] == key {
				s.used[i] = false
				return true
			}
		}
	}
	return false
}

// Len counts the stored entries (takes every bucket lock in turn; meant
// for tests and diagnostics).
func (h *Handle) Len() int {
	n := 0
	for b := uint64(0); b < h.t.nBuckets; b++ {
		tok := h.tok(b)
		h.t.locks[b].Acquire(tok)
		for s := &h.t.buckets[b]; s != nil; s = s.next {
			for i := 0; i < segCap; i++ {
				if s.used[i] {
					n++
				}
			}
		}
		h.t.locks[b].Release(tok)
	}
	return n
}

// String describes the table configuration.
func (t *Table) String() string {
	return fmt.Sprintf("ssht(%d buckets, %s locks)", t.nBuckets, t.lockAlg)
}
