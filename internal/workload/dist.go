// Package workload is the scenario-driven load engine of the suite: key
// distributions (uniform, zipfian), read/write/scan operation mixes, and
// multi-phase (ramp/steady) scenarios executed by goroutine clients over
// any connection-like backend — the in-process store handles, the wire
// protocol clients, or the Memcached-style kvs. internal/kvs's memslap
// loadgen and the `ssync store` experiments both draw their keys from
// this package, so every load generator in the repository shares one
// definition of "skewed traffic".
package workload

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ssync/internal/xrand"
)

// Dist draws key indices from [0, Keys()). Implementations are stateless
// with respect to the RNG, so one Dist is safely shared by concurrent
// clients each holding its own *xrand.Rand.
type Dist interface {
	// Next draws the next key index using the caller's generator.
	Next(r *xrand.Rand) uint64
	// Keys returns the key-space size.
	Keys() uint64
	// Name describes the distribution ("uniform", "zipfian(0.99)").
	Name() string
}

// Uniform draws every key with equal probability.
type Uniform struct {
	n uint64
}

// NewUniform creates a uniform distribution over n keys.
func NewUniform(n uint64) Uniform {
	if n == 0 {
		n = 1
	}
	return Uniform{n: n}
}

// Next implements Dist. The draw is unbiased (xrand.Uint64n's Lemire
// rejection): the old Uint64()%n draw over-weighted low key ranks for
// any key space that does not divide 2^64.
func (u Uniform) Next(r *xrand.Rand) uint64 { return r.Uint64n(u.n) }

// Keys implements Dist.
func (u Uniform) Keys() uint64 { return u.n }

// Name implements Dist.
func (u Uniform) Name() string { return "uniform" }

// Zipfian draws keys with the YCSB-style zipfian skew (Gray et al.,
// "Quickly generating billion-record synthetic databases"): rank 0 is the
// hottest key. theta in (0, 1) sets the skew; 0.99 is the YCSB default,
// where the hottest ~10% of keys draw most of the traffic. The constants
// are precomputed at construction and the O(n) zeta sum is memoized by
// (n, theta) — repeated constructions over the same key space are O(1),
// and a larger key space only pays for the extension — so Next is a few
// flops and construction no longer dominates short phases at million-key
// scale.
type Zipfian struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // pow(0.5, theta)
}

// DefaultTheta is the YCSB zipfian constant.
const DefaultTheta = 0.99

// NewZipfian creates a zipfian distribution over n keys with the given
// theta (0 means DefaultTheta). It panics on theta outside (0, 1).
func NewZipfian(n uint64, theta float64) *Zipfian {
	if n == 0 {
		n = 1
	}
	if theta == 0 {
		theta = DefaultTheta
	}
	if theta <= 0 || theta >= 1 {
		panic(fmt.Sprintf("workload: zipfian theta %v outside (0, 1)", theta))
	}
	zetan := zeta(n, theta)
	zeta2 := zeta(2, theta)
	return &Zipfian{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan),
		half:  math.Pow(0.5, theta),
	}
}

// zetaCheckpoint is one memoized partial sum: the generalized harmonic
// number up to n for one theta.
type zetaCheckpoint struct {
	n   uint64
	sum float64
}

// zetaCache memoizes zeta by theta. Each theta keeps its checkpoints
// sorted by n, so a request extends incrementally from the largest
// checkpoint at or below it instead of resumming from 1 — without the
// cache every NewZipfian pays an O(n) sum, which at million-key
// scenarios dominates short phases (and the harness constructs a fresh
// Zipfian per experiment cell).
var zetaCache = struct {
	sync.Mutex
	byTheta map[float64][]zetaCheckpoint
}{byTheta: map[float64][]zetaCheckpoint{}}

// zeta is the generalized harmonic number sum_{i=1..n} 1/i^theta,
// memoized by (n, theta). The O(n) extension runs outside the cache
// lock, so concurrent cold constructions (the harness runs experiment
// cells in parallel) don't serialize on one mutex; whichever racer
// inserts a value for n first wins, and all racers agree bit-for-bit
// because the sum is always accumulated in ascending-k order however
// it is split across checkpoints.
func zeta(n uint64, theta float64) float64 {
	zetaCache.Lock()
	cps := zetaCache.byTheta[theta]
	// Largest checkpoint with cp.n <= n, if any.
	i := sort.Search(len(cps), func(i int) bool { return cps[i].n > n }) - 1
	start, sum := uint64(0), 0.0
	if i >= 0 {
		if cps[i].n == n {
			hit := cps[i].sum
			zetaCache.Unlock()
			return hit
		}
		start, sum = cps[i].n, cps[i].sum
	}
	zetaCache.Unlock()
	for k := start + 1; k <= n; k++ {
		sum += 1 / math.Pow(float64(k), theta)
	}
	zetaCache.Lock()
	defer zetaCache.Unlock()
	cps = zetaCache.byTheta[theta]
	pos := sort.Search(len(cps), func(j int) bool { return cps[j].n >= n })
	if pos < len(cps) && cps[pos].n == n {
		return cps[pos].sum // a racer inserted the same value meanwhile
	}
	cps = append(cps, zetaCheckpoint{})
	copy(cps[pos+1:], cps[pos:])
	cps[pos] = zetaCheckpoint{n: n, sum: sum}
	zetaCache.byTheta[theta] = cps
	return sum
}

// Next implements Dist.
func (z *Zipfian) Next(r *xrand.Rand) uint64 {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1 % z.n
	}
	k := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

// Keys implements Dist.
func (z *Zipfian) Keys() uint64 { return z.n }

// Name implements Dist.
func (z *Zipfian) Name() string { return fmt.Sprintf("zipfian(%.2f)", z.theta) }

// ParseDist resolves a distribution spec over n keys: "uniform",
// "zipfian", or "zipfian:<theta>".
func ParseDist(spec string, n uint64) (Dist, error) {
	name, arg, hasArg := strings.Cut(strings.TrimSpace(spec), ":")
	switch strings.ToLower(name) {
	case "", "uniform":
		if hasArg {
			return nil, fmt.Errorf("workload: uniform takes no parameter (got %q)", spec)
		}
		return NewUniform(n), nil
	case "zipfian", "zipf":
		theta := 0.0
		if hasArg {
			v, err := strconv.ParseFloat(arg, 64)
			if err != nil || v <= 0 || v >= 1 {
				return nil, fmt.Errorf("workload: bad zipfian theta %q (want 0 < theta < 1)", arg)
			}
			theta = v
		}
		return NewZipfian(n, theta), nil
	}
	return nil, fmt.Errorf("workload: unknown distribution %q (have uniform, zipfian[:theta])", spec)
}
