package workload

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// memConn is a trivial thread-safe backend for engine tests.
type memConn struct {
	mu     *sync.Mutex
	m      map[string][]byte
	closed bool
	failAt int // fail the Nth op with errBoom (0 = never)
	ops    int
}

var errBoom = errors.New("boom")

func (c *memConn) tick() error {
	c.ops++
	if c.failAt > 0 && c.ops >= c.failAt {
		return errBoom
	}
	return nil
}

func (c *memConn) Get(key string) ([]byte, bool, error) {
	if err := c.tick(); err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok, nil
}

func (c *memConn) Put(key string, value []byte) (bool, error) {
	if err := c.tick(); err != nil {
		return false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, existed := c.m[key]
	c.m[key] = append([]byte(nil), value...)
	return !existed, nil
}

func (c *memConn) Delete(key string) (bool, error) {
	if err := c.tick(); err != nil {
		return false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, existed := c.m[key]
	delete(c.m, key)
	return existed, nil
}

func (c *memConn) Scan(prefix string, limit int) (int, error) {
	if err := c.tick(); err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k := range c.m {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			n++
			if limit > 0 && n == limit {
				break
			}
		}
	}
	return n, nil
}

func (c *memConn) Close() error { c.closed = true; return nil }

// memBackend tracks every dialed conn.
type memBackend struct {
	mu    sync.Mutex
	conns []*memConn
	m     map[string][]byte
}

func newMemBackend() *memBackend { return &memBackend{m: map[string][]byte{}} }

func (b *memBackend) dial(failAt int) func(int) (Conn, error) {
	return func(int) (Conn, error) {
		b.mu.Lock()
		defer b.mu.Unlock()
		c := &memConn{mu: &b.mu, m: b.m, failAt: failAt}
		b.conns = append(b.conns, c)
		return c, nil
	}
}

func TestRunPhases(t *testing.T) {
	b := newMemBackend()
	s := Scenario{
		Keys:      128,
		Mix:       Mix{Get: 50, Put: 40, Scan: 10},
		ValueSize: 8,
		Preload:   64,
		Phases: []Phase{
			{Name: "ramp", Clients: 2, Ops: 100},
			{Name: "steady", Clients: 4, Ops: 200},
		},
	}
	results, err := Run(s, b.dial(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d phase results", len(results))
	}
	ramp, steady := results[0], results[1]
	if ramp.Name != "ramp" || ramp.Clients != 2 || ramp.Ops != 200 {
		t.Fatalf("ramp = %+v", ramp)
	}
	if steady.Name != "steady" || steady.Clients != 4 || steady.Ops != 800 {
		t.Fatalf("steady = %+v", steady)
	}
	if steady.Hits+steady.Misses == 0 {
		t.Fatal("no gets recorded despite a 50% get mix")
	}
	if steady.Hits == 0 {
		t.Fatal("no hits despite preload")
	}
	if steady.Duration <= 0 {
		t.Fatal("zero duration")
	}
	// Preload dialed one conn; each phase dialed its clients; all closed.
	if len(b.conns) != 1+2+4 {
		t.Fatalf("dialed %d conns, want 7", len(b.conns))
	}
	for i, c := range b.conns {
		if !c.closed {
			t.Fatalf("conn %d left open", i)
		}
	}
}

func TestRunDeterministicOps(t *testing.T) {
	// Same seed ⇒ same tallies (durations aside), run to run. One client:
	// with several, hits depend on how their writes interleave.
	run := func() []PhaseResult {
		b := newMemBackend()
		res, err := Run(Scenario{Keys: 64, Preload: 32, Seed: 99,
			Phases: []Phase{{Name: "p", Clients: 1, Ops: 450}}}, b.dial(0))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a[0].Hits != b[0].Hits || a[0].Misses != b[0].Misses || a[0].Created != b[0].Created {
		t.Fatalf("nondeterministic tallies: %+v vs %+v", a[0], b[0])
	}
}

func TestRunReportsClientErrors(t *testing.T) {
	b := newMemBackend()
	s := Scenario{Keys: 32, Phases: []Phase{{Name: "p", Clients: 2, Ops: 50}}}
	results, err := Run(s, b.dial(10))
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want errBoom", err)
	}
	if len(results) != 1 {
		t.Fatalf("failed run must still report its phases, got %d", len(results))
	}
	if results[0].Ops >= 100 {
		t.Fatalf("clients kept going after failure: %d ops", results[0].Ops)
	}
}

func TestRunDialError(t *testing.T) {
	dial := func(i int) (Conn, error) {
		return nil, fmt.Errorf("refused %d", i)
	}
	if _, err := Run(Scenario{Preload: 1, Phases: []Phase{{Name: "p", Clients: 1, Ops: 1}}}, dial); err == nil {
		t.Fatal("preload dial failure must surface")
	}
}

func TestRampSteadyShape(t *testing.T) {
	ph := RampSteady(8, 1000)
	if len(ph) != 2 || ph[0].Name != "ramp" || ph[1].Name != "steady" {
		t.Fatalf("phases = %+v", ph)
	}
	if ph[0].Clients != 4 || ph[0].Ops != 100 || ph[1].Clients != 8 || ph[1].Ops != 1000 {
		t.Fatalf("phases = %+v", ph)
	}
	tiny := RampSteady(1, 5)
	if tiny[0].Clients != 1 || tiny[0].Ops != 1 {
		t.Fatalf("tiny ramp = %+v", tiny[0])
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("95:5")
	if err != nil || m != (Mix{Get: 95, Put: 5}) {
		t.Fatalf("95:5 = %+v, %v", m, err)
	}
	m, err = ParseMix("90:8:2")
	if err != nil || m != (Mix{Get: 90, Put: 8, Scan: 2}) {
		t.Fatalf("90:8:2 = %+v, %v", m, err)
	}
	if m.String() != "90:8:2" {
		t.Fatalf("String = %q", m.String())
	}
	for _, bad := range []string{"", "100", "50:49", "50:49:2", "a:b", "-5:105", "25:25:25:25"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) must fail", bad)
		}
	}
}

func TestKeyFormat(t *testing.T) {
	if k := Key(7); k != "key-00000007" {
		t.Fatalf("Key(7) = %q", k)
	}
	// Fixed width keeps lexicographic order aligned with numeric order.
	if Key(9) >= Key(10) {
		t.Fatal("key order broken")
	}
}

func TestPhaseValidation(t *testing.T) {
	b := newMemBackend()
	_, err := Run(Scenario{Phases: []Phase{{Name: "bad", Clients: 0, Ops: 10}}}, b.dial(0))
	if err == nil {
		t.Fatal("zero-client phase must fail")
	}
}

// pipeMemConn wraps memConn with a recording PipeConn surface.
type pipeMemConn struct {
	*memConn
	groups      [][]Op // every issued group
	inFlight    int
	maxInFlight int
}

type memPending struct {
	c   *pipeMemConn
	out Outcome
	err error
}

func (p *memPending) Wait() (Outcome, error) {
	p.c.inFlight--
	return p.out, p.err
}

func (c *pipeMemConn) Issue(ops []Op) Pending {
	c.groups = append(c.groups, append([]Op(nil), ops...))
	c.inFlight++
	if c.inFlight > c.maxInFlight {
		c.maxInFlight = c.inFlight
	}
	var out Outcome
	for _, op := range ops {
		out.Ops++
		switch op.Kind {
		case KindGet:
			_, found, err := c.memConn.Get(op.Key)
			if err != nil {
				return &memPending{c: c, err: err}
			}
			if found {
				out.Hits++
			} else {
				out.Misses++
			}
		case KindPut:
			created, err := c.memConn.Put(op.Key, op.Value)
			if err != nil {
				return &memPending{c: c, err: err}
			}
			if created {
				out.Created++
			}
		case KindDelete:
			if _, err := c.memConn.Delete(op.Key); err != nil {
				return &memPending{c: c, err: err}
			}
		case KindScan:
			n, err := c.memConn.Scan(op.Key, op.Limit)
			if err != nil {
				return &memPending{c: c, err: err}
			}
			out.Scanned += uint64(n)
		}
	}
	return &memPending{c: c, out: out}
}

// TestPipelinedEngine drives the batched/pipelined client loop against
// a recording PipeConn: groups are Batch-sized, at most Pipeline are in
// flight, every op is accounted, and the op stream matches the scalar
// engine's for the same seed.
func TestPipelinedEngine(t *testing.T) {
	const clients, ops = 1, 203 // odd op count: final short group
	run := func(batch, pipeline int) (*pipeMemConn, PhaseResult) {
		b := newMemBackend()
		var pc *pipeMemConn
		dial := func(int) (Conn, error) {
			b.mu.Lock()
			defer b.mu.Unlock()
			c := &memConn{mu: &b.mu, m: b.m}
			b.conns = append(b.conns, c)
			pc = &pipeMemConn{memConn: c}
			return pc, nil
		}
		res, err := Run(Scenario{
			Keys: 64, Preload: 32, Seed: 7,
			Mix:      Mix{Get: 60, Put: 30, Scan: 10},
			Phases:   []Phase{{Name: "p", Clients: clients, Ops: ops}},
			Batch:    batch,
			Pipeline: pipeline,
		}, dial)
		if err != nil {
			t.Fatal(err)
		}
		return pc, res[0]
	}

	pc, res := run(8, 4)
	if res.Ops != ops {
		t.Fatalf("pipelined ops = %d, want %d", res.Ops, ops)
	}
	if len(pc.groups) != (ops+7)/8 {
		t.Fatalf("issued %d groups, want %d", len(pc.groups), (ops+7)/8)
	}
	for i, g := range pc.groups[:len(pc.groups)-1] {
		if len(g) != 8 {
			t.Fatalf("group %d has %d ops, want 8", i, len(g))
		}
	}
	if last := pc.groups[len(pc.groups)-1]; len(last) != ops%8 {
		t.Fatalf("last group has %d ops, want %d", len(last), ops%8)
	}
	if pc.maxInFlight > 4 {
		t.Fatalf("window overflowed: %d groups in flight, cap 4", pc.maxInFlight)
	}

	// Same seed through the scalar engine: identical logical op stream.
	scalar, sres := run(1, 1)
	if len(scalar.groups) != 0 {
		t.Fatalf("scalar run must not touch Issue, got %d groups", len(scalar.groups))
	}
	if sres.Hits != res.Hits || sres.Misses != res.Misses || sres.Created != res.Created || sres.Scanned != res.Scanned {
		t.Fatalf("batched tallies diverge from scalar: %+v vs %+v", res, sres)
	}

	// Pipeline-only (batch 1): every group is a single op.
	solo, _ := run(1, 8)
	if len(solo.groups) != ops {
		t.Fatalf("pipeline-only issued %d groups, want %d", len(solo.groups), ops)
	}
}

// TestPipelinedFallback: a plain Conn without the PipeConn surface
// still runs scenarios that ask for batching — scalar, lock-step.
func TestPipelinedFallback(t *testing.T) {
	b := newMemBackend()
	res, err := Run(Scenario{
		Keys: 32, Preload: 16, Seed: 3,
		Phases: []Phase{{Name: "p", Clients: 2, Ops: 100}},
		Batch:  8, Pipeline: 4,
	}, b.dial(0))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Ops != 200 {
		t.Fatalf("fallback ops = %d, want 200", res[0].Ops)
	}
}

// TestPipelinedErrorPropagation: a backend failure inside a group stops
// the client and surfaces through Run.
func TestPipelinedErrorPropagation(t *testing.T) {
	b := newMemBackend()
	dial := func(int) (Conn, error) {
		b.mu.Lock()
		defer b.mu.Unlock()
		c := &memConn{mu: &b.mu, m: b.m, failAt: 30}
		b.conns = append(b.conns, c)
		return &pipeMemConn{memConn: c}, nil
	}
	res, err := Run(Scenario{
		Keys:   32,
		Phases: []Phase{{Name: "p", Clients: 1, Ops: 500}},
		Batch:  4, Pipeline: 2,
	}, dial)
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want errBoom", err)
	}
	if res[0].Ops >= 500 {
		t.Fatalf("client kept going after failure: %d ops", res[0].Ops)
	}
}
