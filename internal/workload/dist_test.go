package workload

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"ssync/internal/xrand"
)

func TestUniformCoverage(t *testing.T) {
	const n, draws = 16, 16000
	d := NewUniform(n)
	rng := xrand.New(1)
	var counts [n]int
	for i := 0; i < draws; i++ {
		k := d.Next(rng)
		if k >= n {
			t.Fatalf("draw %d out of range", k)
		}
		counts[k]++
	}
	// Every key drawn, none wildly over-represented (expected 1000 each).
	for k, c := range counts {
		if c == 0 {
			t.Fatalf("key %d never drawn in %d draws", k, draws)
		}
		if c > 3*draws/n {
			t.Fatalf("key %d drawn %d times, expected ~%d", k, c, draws/n)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	const n, draws = 1024, 50000
	d := NewZipfian(n, 0) // YCSB default theta 0.99
	rng := xrand.New(7)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		k := d.Next(rng)
		if k >= n {
			t.Fatalf("draw %d out of range [0, %d)", k, n)
		}
		counts[k]++
	}
	// Rank 0 is the hottest key, and the head dominates: under theta
	// 0.99 the top 10% of keys draw well over half the traffic.
	hot := counts[0]
	for k := 1; k < n; k++ {
		if counts[k] > hot {
			t.Fatalf("key %d (%d draws) hotter than rank 0 (%d)", k, counts[k], hot)
		}
		hot = max(hot, counts[k])
	}
	head := 0
	for k := 0; k < n/10; k++ {
		head += counts[k]
	}
	if head < draws/2 {
		t.Fatalf("top 10%% of keys drew %d of %d draws; zipfian skew missing", head, draws)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestZipfianDeterministic(t *testing.T) {
	d := NewZipfian(100, 0.8)
	a, b := xrand.New(42), xrand.New(42)
	for i := 0; i < 1000; i++ {
		if x, y := d.Next(a), d.Next(b); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}

func TestZipfianSharedAcrossGoroutinesDrawsFromFullRange(t *testing.T) {
	// One Dist, two RNG streams: both must see the whole (skewed) range —
	// the Dist itself carries no mutable state.
	d := NewZipfian(64, 0)
	r1, r2 := xrand.New(3), xrand.New(999)
	seen := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		seen[d.Next(r1)] = true
		seen[d.Next(r2)] = true
	}
	if len(seen) < 32 {
		t.Fatalf("only %d distinct keys of 64 drawn", len(seen))
	}
}

// TestUniformChiSquare is the statistical guard on the unbiased-draw
// bugfix: a chi-square goodness-of-fit over a key space that does not
// divide 2^64. With df = n-1 = 999 the statistic has mean 999 and
// standard deviation ~44.7; the bound sits five sigmas out, so the test
// is deterministic under the fixed seed yet tight enough to flag a
// broken draw.
func TestUniformChiSquare(t *testing.T) {
	const n, draws = 1000, 200000
	d := NewUniform(n)
	rng := xrand.New(0xC0FFEE)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[d.Next(rng)]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		diff := float64(c) - expected
		chi2 += diff * diff / expected
	}
	if bound := 999.0 + 5*44.7; chi2 > bound {
		t.Fatalf("chi-square %.1f over %d cells exceeds %.1f: uniform draw is biased", chi2, n, bound)
	}
}

// TestUniformUnbiasedHugeKeySpace pins the modulo-bias regression where
// it is actually visible: for n = 3·2^62 the old Uint64()%n draw gave
// every key below 2^64-n two preimages, so the first third of the key
// space absorbed HALF the draws. The unbiased draw keeps it at a third.
func TestUniformUnbiasedHugeKeySpace(t *testing.T) {
	const n = uint64(3) << 62
	const draws = 60000
	d := NewUniform(n)
	rng := xrand.New(99)
	low := 0
	for i := 0; i < draws; i++ {
		if d.Next(rng) < n/3 {
			low++
		}
	}
	frac := float64(low) / draws
	if frac < 0.30 || frac > 0.37 {
		t.Fatalf("first third of the key space drew %.3f of the traffic, want ~1/3 (0.5 = modulo bias)", frac)
	}
}

// TestZipfianHotKeyMass bounds the head of the distribution both ways:
// rank 0 must carry roughly its analytic share 1/zeta(n, theta) — not
// less (skew missing) and not wildly more (skew distorted, e.g. by a
// biased underlying draw).
func TestZipfianHotKeyMass(t *testing.T) {
	const n, draws = 1024, 100000
	d := NewZipfian(n, 0) // theta 0.99
	rng := xrand.New(0xBEEF)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[d.Next(rng)]++
	}
	// 1/zeta(1024, 0.99) ≈ 0.134; allow generous sampling slack.
	rank0 := float64(counts[0]) / draws
	if rank0 < 0.08 || rank0 > 0.20 {
		t.Fatalf("rank-0 mass %.3f outside [0.08, 0.20]", rank0)
	}
	top10 := 0
	for k := 0; k < 10; k++ {
		top10 += counts[k]
	}
	if mass := float64(top10) / draws; mass < 0.25 || mass > 0.55 {
		t.Fatalf("top-10 mass %.3f outside [0.25, 0.55]", mass)
	}
}

// TestZetaMemoized: the cache returns exactly the scratch sum — a cache
// hit, an incremental extension from a smaller checkpoint, and a
// request below an existing checkpoint all agree bit-for-bit with the
// direct computation (the extension adds terms in the same 1..n order).
func TestZetaMemoized(t *testing.T) {
	scratch := func(n uint64, theta float64) float64 {
		sum := 0.0
		for i := uint64(1); i <= n; i++ {
			sum += 1 / math.Pow(float64(i), theta)
		}
		return sum
	}
	const theta = 0.77 // not used by other tests: a cold cache slot
	for _, n := range []uint64{900, 900, 2500, 400, 2500, 1300} {
		if got, want := zeta(n, theta), scratch(n, theta); got != want {
			t.Fatalf("zeta(%d, %v) = %v, want %v", n, theta, got, want)
		}
	}
	// Zipfians built from the cache behave identically to each other.
	a, b := NewZipfian(5000, theta), NewZipfian(5000, theta)
	r1, r2 := xrand.New(5), xrand.New(5)
	for i := 0; i < 2000; i++ {
		if x, y := a.Next(r1), b.Next(r2); x != y {
			t.Fatalf("draw %d diverged after memoized construction: %d vs %d", i, x, y)
		}
	}
}

// TestZetaConcurrent races cold constructions over one theta: the
// extension runs outside the cache lock, and every racer must still
// agree bit-for-bit with the scratch sum. Run with -race; CI does.
func TestZetaConcurrent(t *testing.T) {
	const theta = 0.63 // another cold cache slot
	sizes := []uint64{300, 1200, 700, 2000, 1200, 300, 1700, 900}
	var wg sync.WaitGroup
	errs := make([]error, len(sizes)*4)
	for g := 0; g < len(errs); g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := sizes[g%len(sizes)]
			got := zeta(n, theta)
			want := 0.0
			for i := uint64(1); i <= n; i++ {
				want += 1 / math.Pow(float64(i), theta)
			}
			if got != want {
				errs[g] = fmt.Errorf("zeta(%d) = %v under concurrency, want %v", n, got, want)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestParseDist(t *testing.T) {
	good := map[string]string{
		"uniform":     "uniform",
		"":            "uniform",
		"zipfian":     "zipfian(0.99)",
		"zipf":        "zipfian(0.99)",
		"zipfian:0.5": "zipfian(0.50)",
		" zipfian ":   "zipfian(0.99)",
	}
	for spec, want := range good {
		d, err := ParseDist(spec, 100)
		if err != nil {
			t.Fatalf("ParseDist(%q): %v", spec, err)
		}
		if d.Name() != want {
			t.Fatalf("ParseDist(%q).Name() = %q, want %q", spec, d.Name(), want)
		}
		if d.Keys() != 100 {
			t.Fatalf("ParseDist(%q).Keys() = %d", spec, d.Keys())
		}
	}
	for _, spec := range []string{"pareto", "zipfian:2", "zipfian:0", "zipfian:x", "uniform:3"} {
		if _, err := ParseDist(spec, 100); err == nil {
			t.Fatalf("ParseDist(%q) must fail", spec)
		}
	}
}

func TestZeroKeySpace(t *testing.T) {
	// Degenerate key spaces collapse to one key instead of dividing by
	// zero.
	rng := xrand.New(1)
	if k := NewUniform(0).Next(rng); k != 0 {
		t.Fatalf("uniform over 0 keys drew %d", k)
	}
	if k := NewZipfian(0, 0).Next(rng); k != 0 {
		t.Fatalf("zipfian over 0 keys drew %d", k)
	}
	if k := NewZipfian(1, 0.5).Next(rng); k != 0 {
		t.Fatalf("zipfian over 1 key drew %d", k)
	}
}
