package workload

import (
	"testing"

	"ssync/internal/xrand"
)

func TestUniformCoverage(t *testing.T) {
	const n, draws = 16, 16000
	d := NewUniform(n)
	rng := xrand.New(1)
	var counts [n]int
	for i := 0; i < draws; i++ {
		k := d.Next(rng)
		if k >= n {
			t.Fatalf("draw %d out of range", k)
		}
		counts[k]++
	}
	// Every key drawn, none wildly over-represented (expected 1000 each).
	for k, c := range counts {
		if c == 0 {
			t.Fatalf("key %d never drawn in %d draws", k, draws)
		}
		if c > 3*draws/n {
			t.Fatalf("key %d drawn %d times, expected ~%d", k, c, draws/n)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	const n, draws = 1024, 50000
	d := NewZipfian(n, 0) // YCSB default theta 0.99
	rng := xrand.New(7)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		k := d.Next(rng)
		if k >= n {
			t.Fatalf("draw %d out of range [0, %d)", k, n)
		}
		counts[k]++
	}
	// Rank 0 is the hottest key, and the head dominates: under theta
	// 0.99 the top 10% of keys draw well over half the traffic.
	hot := counts[0]
	for k := 1; k < n; k++ {
		if counts[k] > hot {
			t.Fatalf("key %d (%d draws) hotter than rank 0 (%d)", k, counts[k], hot)
		}
		hot = max(hot, counts[k])
	}
	head := 0
	for k := 0; k < n/10; k++ {
		head += counts[k]
	}
	if head < draws/2 {
		t.Fatalf("top 10%% of keys drew %d of %d draws; zipfian skew missing", head, draws)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestZipfianDeterministic(t *testing.T) {
	d := NewZipfian(100, 0.8)
	a, b := xrand.New(42), xrand.New(42)
	for i := 0; i < 1000; i++ {
		if x, y := d.Next(a), d.Next(b); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}

func TestZipfianSharedAcrossGoroutinesDrawsFromFullRange(t *testing.T) {
	// One Dist, two RNG streams: both must see the whole (skewed) range —
	// the Dist itself carries no mutable state.
	d := NewZipfian(64, 0)
	r1, r2 := xrand.New(3), xrand.New(999)
	seen := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		seen[d.Next(r1)] = true
		seen[d.Next(r2)] = true
	}
	if len(seen) < 32 {
		t.Fatalf("only %d distinct keys of 64 drawn", len(seen))
	}
}

func TestParseDist(t *testing.T) {
	good := map[string]string{
		"uniform":     "uniform",
		"":            "uniform",
		"zipfian":     "zipfian(0.99)",
		"zipf":        "zipfian(0.99)",
		"zipfian:0.5": "zipfian(0.50)",
		" zipfian ":   "zipfian(0.99)",
	}
	for spec, want := range good {
		d, err := ParseDist(spec, 100)
		if err != nil {
			t.Fatalf("ParseDist(%q): %v", spec, err)
		}
		if d.Name() != want {
			t.Fatalf("ParseDist(%q).Name() = %q, want %q", spec, d.Name(), want)
		}
		if d.Keys() != 100 {
			t.Fatalf("ParseDist(%q).Keys() = %d", spec, d.Keys())
		}
	}
	for _, spec := range []string{"pareto", "zipfian:2", "zipfian:0", "zipfian:x", "uniform:3"} {
		if _, err := ParseDist(spec, 100); err == nil {
			t.Fatalf("ParseDist(%q) must fail", spec)
		}
	}
}

func TestZeroKeySpace(t *testing.T) {
	// Degenerate key spaces collapse to one key instead of dividing by
	// zero.
	rng := xrand.New(1)
	if k := NewUniform(0).Next(rng); k != 0 {
		t.Fatalf("uniform over 0 keys drew %d", k)
	}
	if k := NewZipfian(0, 0).Next(rng); k != 0 {
		t.Fatalf("zipfian over 0 keys drew %d", k)
	}
	if k := NewZipfian(1, 0.5).Next(rng); k != 0 {
		t.Fatalf("zipfian over 1 key drew %d", k)
	}
}
