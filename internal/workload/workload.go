package workload

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"ssync/internal/xrand"
)

// Conn is what a workload client drives: the method set shared by
// store.Client (wire protocol), store.LocalConn (in-process) and any
// future backend. Scan reports how many entries it returned. A Conn is
// used by one goroutine at a time.
type Conn interface {
	Get(key string) (value []byte, found bool, err error)
	Put(key string, value []byte) (created bool, err error)
	Delete(key string) (existed bool, err error)
	Scan(prefix string, limit int) (entries int, err error)
	Close() error
}

// OpKind tags one logical operation of an op group.
type OpKind uint8

// The op kinds the engine draws, mirroring the Conn surface.
const (
	KindGet OpKind = iota
	KindPut
	KindDelete
	KindScan
)

// Op is one logical operation drawn by the engine — the unit op groups
// are built from when a scenario batches or pipelines.
type Op struct {
	Kind  OpKind
	Key   string // the scan prefix for KindScan
	Value []byte // KindPut only
	Limit int    // KindScan only
}

// Outcome tallies what a completed op group did, in the same terms as
// PhaseResult.
type Outcome struct {
	Ops     uint64 // logical operations completed
	Hits    uint64 // gets that found the key
	Misses  uint64 // gets that did not
	Created uint64 // puts that inserted a new key
	Scanned uint64 // entries returned by scans
}

// Add accumulates p into o.
func (o *Outcome) Add(p Outcome) {
	o.Ops += p.Ops
	o.Hits += p.Hits
	o.Misses += p.Misses
	o.Created += p.Created
	o.Scanned += p.Scanned
}

// Pending is one in-flight op group; Wait blocks until its responses
// arrive and reports the group's outcome.
type Pending interface {
	Wait() (Outcome, error)
}

// PipeConn is the optional batched/pipelined surface of a Conn: Issue
// starts a whole op group without waiting for its results, so a client
// can keep several groups in flight (the in-flight window) and the
// backend can execute a group as one batch (one message, one lock
// acquisition per touched shard). A backend that can only batch — or
// only run ops one at a time — still satisfies the contract by
// resolving the work before Issue returns; only true pipelining
// overlaps it.
type PipeConn interface {
	Conn
	Issue(ops []Op) Pending
}

// Mix is an operation mix in percent; the fields must sum to 100.
// Deletes ride on the Put share (one in eight writes deletes, which keeps
// the store from growing without bound under write-heavy mixes).
type Mix struct {
	Get  int
	Put  int
	Scan int
}

// ParseMix parses "get:put" or "get:put:scan" percentages, e.g. "95:5"
// or "90:8:2".
func ParseMix(spec string) (Mix, error) {
	parts := strings.Split(strings.TrimSpace(spec), ":")
	if len(parts) != 2 && len(parts) != 3 {
		return Mix{}, fmt.Errorf("workload: mix %q must be get:put or get:put:scan", spec)
	}
	vals := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return Mix{}, fmt.Errorf("workload: bad mix component %q", p)
		}
		vals[i] = v
	}
	m := Mix{Get: vals[0], Put: vals[1]}
	if len(vals) == 3 {
		m.Scan = vals[2]
	}
	if m.Get+m.Put+m.Scan != 100 {
		return Mix{}, fmt.Errorf("workload: mix %q sums to %d, want 100", spec, m.Get+m.Put+m.Scan)
	}
	return m, nil
}

// String renders the mix as "get:put:scan".
func (m Mix) String() string { return fmt.Sprintf("%d:%d:%d", m.Get, m.Put, m.Scan) }

// Phase is one stage of a scenario: Clients goroutines each issuing Ops
// operations.
type Phase struct {
	// Name labels the phase in results ("ramp", "steady").
	Name string
	// Clients is the concurrent client count for this phase.
	Clients int
	// Ops is the operation count per client.
	Ops int
}

// RampSteady is the standard two-phase shape: a ramp at half the clients
// and a tenth of the operations to warm caches and locks, then the
// measured steady phase.
func RampSteady(clients, ops int) []Phase {
	rampClients := clients / 2
	if rampClients < 1 {
		rampClients = 1
	}
	rampOps := ops / 10
	if rampOps < 1 {
		rampOps = 1
	}
	return []Phase{
		{Name: "ramp", Clients: rampClients, Ops: rampOps},
		{Name: "steady", Clients: clients, Ops: ops},
	}
}

// Scenario is a full workload description.
type Scenario struct {
	// Dist draws key indices; nil means uniform over Keys.
	Dist Dist
	// Keys is the key-space size (used when Dist is nil). Default 16384.
	Keys uint64
	// Mix is the operation mix; a zero Mix means 95% gets, 5% puts.
	Mix Mix
	// ValueSize is the put payload size in bytes. Default 64.
	ValueSize int
	// ScanLimit bounds each scan. Default 16.
	ScanLimit int
	// Preload inserts keys 0..Preload-1 before the first phase.
	Preload int
	// Phases run in order; empty means RampSteady(8, 10000).
	Phases []Phase
	// Seed makes client RNG streams reproducible. 0 is a fixed default.
	Seed uint64
	// Batch groups this many consecutive ops into one multi-op request
	// when the connection supports it (PipeConn). Default 1 = scalar ops.
	Batch int
	// Pipeline is how many op groups a client keeps in flight when the
	// connection supports it (PipeConn). Default 1 = lock-step.
	Pipeline int
}

func (s Scenario) withDefaults() Scenario {
	if s.Keys == 0 {
		s.Keys = 16384
	}
	if s.Dist == nil {
		s.Dist = NewUniform(s.Keys)
	}
	if s.Mix == (Mix{}) {
		s.Mix = Mix{Get: 95, Put: 5}
	}
	if s.ValueSize <= 0 {
		s.ValueSize = 64
	}
	if s.ScanLimit <= 0 {
		s.ScanLimit = 16
	}
	if len(s.Phases) == 0 {
		s.Phases = RampSteady(8, 10000)
	}
	if s.Seed == 0 {
		s.Seed = 0x5eed5eed5eed5eed
	}
	if s.Batch < 1 {
		s.Batch = 1
	}
	if s.Pipeline < 1 {
		s.Pipeline = 1
	}
	return s
}

// PhaseResult aggregates one phase across its clients.
type PhaseResult struct {
	Name     string
	Clients  int
	Ops      uint64
	Duration time.Duration
	Hits     uint64 // gets that found the key
	Misses   uint64 // gets that did not
	Created  uint64 // puts that inserted a new key
	Scanned  uint64 // entries returned by scans
}

// Kops returns the phase throughput in thousands of operations per
// second.
func (r PhaseResult) Kops() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds() / 1e3
}

func (r PhaseResult) String() string {
	return fmt.Sprintf("%s: %d clients, %d ops in %v (%.1f Kops/s, %d hits, %d misses)",
		r.Name, r.Clients, r.Ops, r.Duration.Round(time.Millisecond), r.Kops(), r.Hits, r.Misses)
}

// Key formats a key index the way every load generator in the repository
// does: fixed width, so lexicographic prefix scans align with numeric
// ranges.
func Key(i uint64) string { return fmt.Sprintf("key-%08d", i) }

// Run executes the scenario's phases in order. dial(i) opens client i's
// backend connection; each phase dials its clients fresh and closes them,
// like real traffic arriving and leaving. Clients that fail stop early;
// Run reports every failure joined, alongside the completed phases.
func Run(s Scenario, dial func(client int) (Conn, error)) ([]PhaseResult, error) {
	s = s.withDefaults()
	if s.Preload > 0 {
		c, err := dial(0)
		if err != nil {
			return nil, fmt.Errorf("workload: preload dial: %w", err)
		}
		err = Preload(c, s.Preload, s.ValueSize)
		if cerr := c.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("workload: preload: %w", err)
		}
	}
	var results []PhaseResult
	var errs []error
	for pi, ph := range s.Phases {
		res, err := runPhase(s, pi, ph, dial)
		results = append(results, res)
		if err != nil {
			errs = append(errs, fmt.Errorf("phase %q: %w", ph.Name, err))
		}
	}
	return results, errors.Join(errs...)
}

// clientTally is one client's counters, merged after the phase.
type clientTally struct {
	ops, hits, misses, created, scanned uint64
	err                                 error
}

func runPhase(s Scenario, phaseIdx int, ph Phase, dial func(int) (Conn, error)) (PhaseResult, error) {
	if ph.Clients < 1 || ph.Ops < 1 {
		return PhaseResult{Name: ph.Name}, fmt.Errorf("workload: phase needs positive clients and ops")
	}
	tallies := make([]clientTally, ph.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < ph.Clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			tallies[c] = runClient(s, phaseIdx, ph, c, dial)
		}()
	}
	wg.Wait()
	res := PhaseResult{Name: ph.Name, Clients: ph.Clients, Duration: time.Since(start)}
	var errs []error
	for c := range tallies {
		t := &tallies[c]
		res.Ops += t.ops
		res.Hits += t.hits
		res.Misses += t.misses
		res.Created += t.created
		res.Scanned += t.scanned
		if t.err != nil {
			errs = append(errs, fmt.Errorf("client %d: %w", c, t.err))
		}
	}
	return res, errors.Join(errs...)
}

// drawOp draws one logical operation from the scenario's distribution
// and mix. The rng consumption order matches the pre-batching engine
// exactly, so a given seed produces the same op stream whatever the
// batch and pipeline settings.
func drawOp(s Scenario, rng *xrand.Rand, value []byte) Op {
	key := Key(s.Dist.Next(rng))
	switch draw := int(rng.Uint64n(100)); {
	case draw < s.Mix.Get:
		return Op{Kind: KindGet, Key: key}
	case draw < s.Mix.Get+s.Mix.Put:
		// One write in eight deletes, so write-heavy mixes exercise
		// removal and the store's population reaches a fixpoint.
		if rng.Uint64n(8) == 0 {
			return Op{Kind: KindDelete, Key: key}
		}
		return Op{Kind: KindPut, Key: key, Value: value}
	default:
		// Scan a narrow prefix around the drawn key: chop the last two
		// digits so the prefix covers a 100-key band.
		return Op{Kind: KindScan, Key: key[:len(key)-2], Limit: s.ScanLimit}
	}
}

func runClient(s Scenario, phaseIdx int, ph Phase, c int, dial func(int) (Conn, error)) clientTally {
	var t clientTally
	conn, err := dial(c)
	if err != nil {
		t.err = err
		return t
	}
	defer conn.Close()
	rng := xrand.New(s.Seed + uint64(phaseIdx)*0x9e3779b97f4a7c15 + uint64(c)*0x2545f4914f6cdd1d)
	value := payload(s.ValueSize, uint64(c))
	if pc, ok := conn.(PipeConn); ok && (s.Batch > 1 || s.Pipeline > 1) {
		runPipelined(s, ph, pc, rng, value, &t)
		return t
	}
	for i := 0; i < ph.Ops; i++ {
		op := drawOp(s, rng, value)
		switch op.Kind {
		case KindGet:
			_, found, err := conn.Get(op.Key)
			if err != nil {
				t.err = err
				return t
			}
			if found {
				t.hits++
			} else {
				t.misses++
			}
		case KindPut:
			created, err := conn.Put(op.Key, op.Value)
			if err != nil {
				t.err = err
				return t
			}
			if created {
				t.created++
			}
		case KindDelete:
			if _, err := conn.Delete(op.Key); err != nil {
				t.err = err
				return t
			}
		case KindScan:
			n, err := conn.Scan(op.Key, op.Limit)
			if err != nil {
				t.err = err
				return t
			}
			t.scanned += uint64(n)
		}
		t.ops++
	}
	return t
}

// runPipelined is the batched/pipelined client loop: it draws op groups
// of up to Batch ops, keeps up to Pipeline groups in flight through
// PipeConn.Issue, and waits for the oldest group only when the window is
// full — so a deep window over a slow transport overlaps round trips
// instead of paying them one by one.
func runPipelined(s Scenario, ph Phase, pc PipeConn, rng *xrand.Rand, value []byte, t *clientTally) {
	window := make([]Pending, 0, s.Pipeline)
	var total Outcome
	defer func() { // one bridge from Outcome to the engine's tally
		t.ops += total.Ops
		t.hits += total.Hits
		t.misses += total.Misses
		t.created += total.Created
		t.scanned += total.Scanned
	}()
	settle := func(p Pending) bool {
		out, err := p.Wait()
		total.Add(out)
		if err != nil && t.err == nil {
			t.err = err
		}
		return t.err == nil
	}
	drain := func() {
		for _, p := range window {
			settle(p)
		}
		window = window[:0]
	}
	for left := ph.Ops; left > 0; {
		n := s.Batch
		if n > left {
			n = left
		}
		left -= n
		group := make([]Op, n)
		for j := range group {
			group[j] = drawOp(s, rng, value)
		}
		if len(window) == s.Pipeline {
			oldest := window[0]
			window = append(window[:0], window[1:]...)
			if !settle(oldest) {
				drain()
				return
			}
		}
		window = append(window, pc.Issue(group))
	}
	drain()
}

// Preload inserts keys 0..n-1 with valueSize-byte payloads over conn —
// the population step callers run before measuring, so warm-up writes
// never pollute measured counters.
func Preload(c Conn, n, valueSize int) error {
	if valueSize <= 0 {
		valueSize = 64
	}
	value := payload(valueSize, 0)
	for i := 0; i < n; i++ {
		if _, err := c.Put(Key(uint64(i)), value); err != nil {
			return fmt.Errorf("put %d: %w", i, err)
		}
	}
	return nil
}

// payload builds a deterministic value of the given size.
func payload(size int, tag uint64) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(uint64(i) + tag)
	}
	return b
}
