package core

import (
	"bytes"
	"strings"
	"testing"

	"ssync/internal/bench"
)

var tiny = bench.Config{Deadline: 25_000, LatencyOps: 8, Reps: 1}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must be registered.
	want := []string{"T2", "T3", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10", "F11", "F12"}
	have := map[string]bool{}
	for _, e := range Experiments() {
		have[e.ID] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s missing from the registry", id)
		}
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("F5"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("F99"); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment once")
	}
	for _, e := range Experiments() {
		// Use the cheapest covered platform to keep this fast.
		pn := e.Platforms[len(e.Platforms)-1]
		var buf bytes.Buffer
		if err := e.Run(&buf, pn, tiny); err != nil {
			t.Errorf("%s on %s: %v", e.ID, pn, err)
			continue
		}
		if buf.Len() == 0 {
			t.Errorf("%s on %s produced no output", e.ID, pn)
		}
	}
}

func TestBadPlatformErrors(t *testing.T) {
	e, err := ByID("F4")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Run(&buf, "PDP-11", tiny); err == nil || !strings.Contains(err.Error(), "unknown platform") {
		t.Fatalf("expected unknown-platform error, got %v", err)
	}
}
