package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ssync/internal/bench"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenCfg is the pinned configuration of the golden runs. Changing it
// invalidates the files under testdata/ (regenerate with -update).
var goldenCfg = bench.Config{Deadline: 25_000, LatencyOps: 8, Reps: 2}

// goldenCases pins Table 2, Table 3 and one figure per the determinism
// contract: the simulator is seeded, so the same configuration must
// reproduce byte-identical output across runs, platforms and harness
// refactors.
var goldenCases = []struct {
	id       string
	platform string
}{
	{"T2", "Niagara"},
	{"T3", "Opteron"},
	{"F9", "Tilera"},
}

func goldenRun(t *testing.T, id, platform string) []byte {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Run(&buf, platform, goldenCfg); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenOutputs compares each pinned artifact against its checked-in
// golden file, so a harness or simulator refactor cannot silently drift
// the reproduction. Run `go test ./internal/core -run Golden -update` to
// accept an intentional change.
func TestGoldenOutputs(t *testing.T) {
	for _, c := range goldenCases {
		c := c
		t.Run(c.id, func(t *testing.T) {
			got := goldenRun(t, c.id, c.platform)
			path := filepath.Join("testdata", c.id+"_"+c.platform+".golden")
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s on %s drifted from %s (rerun with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
					c.id, c.platform, path, got, want)
			}
		})
	}
}

// TestGoldenReproducible re-runs each golden artifact in-process: two
// runs with the same configuration must be byte-identical independently
// of the checked-in files.
func TestGoldenReproducible(t *testing.T) {
	for _, c := range goldenCases {
		a := goldenRun(t, c.id, c.platform)
		b := goldenRun(t, c.id, c.platform)
		if !bytes.Equal(a, b) {
			t.Errorf("%s on %s: two identical runs produced different bytes", c.id, c.platform)
		}
	}
}
