// Package core is the SSYNC suite facade: it names the pieces of the
// cross-platform synchronization suite this repository reproduces and
// binds every table and figure of the paper's evaluation to the harness
// that regenerates it (the per-experiment index of DESIGN.md).
//
// The suite mirrors the paper's §4:
//
//   - libslock  → internal/locks (native) and internal/simlocks (simulated)
//   - libssmp   → internal/mp (native) and internal/simmp (simulated)
//   - ccbench   → internal/ccbench on the internal/memsim machine models
//   - ssht      → internal/ssht (native) and the Figure 11 model in bench
//   - TM2C      → internal/tm (native) and the §8 model in bench
//   - Memcached → internal/kvs (native) and the Figure 12 model in bench
package core

import (
	"fmt"
	"io"
	"sort"

	"ssync/internal/arch"
	"ssync/internal/bench"
)

// Version identifies the suite.
const Version = "ssync-go 1.0 (SOSP'13 reproduction)"

// Experiment is one regenerable artifact of the paper.
type Experiment struct {
	// ID is the DESIGN.md experiment id (T2, F3, …, X3).
	ID string
	// Title is the paper's caption, abbreviated.
	Title string
	// Platforms lists the machine models the artifact covers.
	Platforms []string
	// Run regenerates the artifact for one platform and writes the rows to
	// w. The configuration scales the simulated duration.
	Run func(w io.Writer, platform string, cfg bench.Config) error
}

var allPlatforms = []string{"Opteron", "Xeon", "Niagara", "Tilera"}

// Experiments returns the full per-experiment index in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{
			ID: "T2", Title: "Table 2: cache-coherence latencies", Platforms: allPlatforms,
			Run: func(w io.Writer, pn string, cfg bench.Config) error {
				p, err := platform(pn)
				if err != nil {
					return err
				}
				_, err = fmt.Fprintln(w, bench.FormatTable2(p, cfg.Reps))
				return err
			},
		},
		{
			ID: "T3", Title: "Table 3: local caches and memory latencies", Platforms: allPlatforms,
			Run: func(w io.Writer, pn string, cfg bench.Config) error {
				p, err := platform(pn)
				if err != nil {
					return err
				}
				_, err = fmt.Fprintln(w, bench.FormatTable3(p))
				return err
			},
		},
		{
			ID: "F3", Title: "Figure 3: ticket lock implementations (Opteron)", Platforms: []string{"Opteron"},
			Run: func(w io.Writer, pn string, cfg bench.Config) error {
				_, err := fmt.Fprintln(w, bench.FormatFigure(bench.Figure3(cfg)))
				return err
			},
		},
		{
			ID: "F4", Title: "Figure 4: atomic operations on one location", Platforms: allPlatforms,
			Run: figureRunner(bench.Figure4),
		},
		{
			ID: "F5", Title: "Figure 5: locks, single lock (extreme contention)", Platforms: allPlatforms,
			Run: figureRunner(bench.Figure5),
		},
		{
			ID: "F6", Title: "Figure 6: uncontested lock acquisition by distance", Platforms: allPlatforms,
			Run: func(w io.Writer, pn string, cfg bench.Config) error {
				p, err := platform(pn)
				if err != nil {
					return err
				}
				_, err = fmt.Fprintln(w, bench.FormatFigure6(p, bench.Figure6(p, cfg)))
				return err
			},
		},
		{
			ID: "F7", Title: "Figure 7: locks, 512 locks (very low contention)", Platforms: allPlatforms,
			Run: figureRunner(bench.Figure7),
		},
		{
			ID: "F8", Title: "Figure 8: best lock and scalability by lock count", Platforms: allPlatforms,
			Run: func(w io.Writer, pn string, cfg bench.Config) error {
				p, err := platform(pn)
				if err != nil {
					return err
				}
				for _, nLocks := range []int{4, 16, 32, 128} {
					if _, err := fmt.Fprintln(w, bench.FormatFigure8(p, nLocks, bench.Figure8(p, nLocks, cfg))); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			ID: "F9", Title: "Figure 9: one-to-one message passing by distance", Platforms: allPlatforms,
			Run: func(w io.Writer, pn string, cfg bench.Config) error {
				p, err := platform(pn)
				if err != nil {
					return err
				}
				_, err = fmt.Fprintln(w, bench.FormatFigure9(p, bench.Figure9(p, cfg)))
				return err
			},
		},
		{
			ID: "F10", Title: "Figure 10: client-server message passing", Platforms: allPlatforms,
			Run: figureRunner(bench.Figure10),
		},
		{
			ID: "F11", Title: "Figure 11: ssht hash table", Platforms: allPlatforms,
			Run: func(w io.Writer, pn string, cfg bench.Config) error {
				p, err := platform(pn)
				if err != nil {
					return err
				}
				for _, c := range []struct{ buckets, entries int }{{12, 12}, {12, 48}, {512, 12}, {512, 48}} {
					rows := bench.Figure11(p, c.buckets, c.entries, cfg)
					if _, err := fmt.Fprintln(w, bench.FormatFigure11(p, c.buckets, c.entries, rows)); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			ID: "F12", Title: "Figure 12: Memcached-style set test", Platforms: allPlatforms,
			Run: func(w io.Writer, pn string, cfg bench.Config) error {
				p, err := platform(pn)
				if err != nil {
					return err
				}
				_, err = fmt.Fprintln(w, bench.FormatFigure12(p, bench.Figure12(p, false, cfg)))
				return err
			},
		},
		{
			ID: "X1", Title: "§6.4 get test: lock-insensitive", Platforms: allPlatforms,
			Run: func(w io.Writer, pn string, cfg bench.Config) error {
				p, err := platform(pn)
				if err != nil {
					return err
				}
				rows := bench.Figure12(p, true, cfg)
				if _, err := fmt.Fprintln(w, bench.FormatFigure12(p, rows)); err != nil {
					return err
				}
				return nil
			},
		},
		{
			ID: "X2", Title: "§8 small multi-sockets: cross/intra ratios", Platforms: []string{"Opteron2", "Xeon2"},
			Run: func(w io.Writer, pn string, cfg bench.Config) error {
				p, err := platform(pn)
				if err != nil {
					return err
				}
				intra := float64(p.Lat(arch.Load, arch.Modified, 0))
				cross := float64(p.Lat(arch.Load, arch.Modified, 1))
				_, err = fmt.Fprintf(w, "%s: intra %0.f cycles, cross %.0f cycles, ratio %.2f\n\n",
					p.Name, intra, cross, cross/intra)
				return err
			},
		},
		{
			ID: "X3", Title: "§8 TM2C: locks vs message passing", Platforms: allPlatforms,
			Run: func(w io.Writer, pn string, cfg bench.Config) error {
				p, err := platform(pn)
				if err != nil {
					return err
				}
				for _, stripes := range []int{8, 1024} {
					fmt.Fprintf(w, "TM on %s, %d stripes:\n", p.Name, stripes)
					for _, r := range bench.TMExperiment(p, stripes, cfg) {
						fmt.Fprintf(w, "  %2d threads: locks %7.3f Mops/s   mp %7.3f Mops/s\n",
							r.Threads, r.LockMops, r.MPMops)
					}
					fmt.Fprintln(w)
				}
				return nil
			},
		},
		{
			ID: "X4", Title: "§7 Remote Core Locking: one hot lock, RCL vs spin locks", Platforms: allPlatforms,
			Run: func(w io.Writer, pn string, cfg bench.Config) error {
				p, err := platform(pn)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "RCL on %s (one hot critical section):\n", p.Name)
				for _, r := range bench.RCLExperiment(p, cfg) {
					fmt.Fprintf(w, "  %2d threads: best lock %7.3f Mops/s   rcl %7.3f Mops/s\n",
						r.Threads, r.LockMops, r.RCLMops)
				}
				fmt.Fprintln(w)
				return nil
			},
		},
		{
			ID: "O1", Title: "§5.3 ablations: prefetchw, back-off, contention model", Platforms: []string{"Opteron"},
			Run: func(w io.Writer, pn string, cfg bench.Config) error {
				for _, a := range []bench.AblationResult{
					bench.AblationNoContention(arch.Opteron(), 24, cfg),
					bench.AblationProbeFilter(24, cfg),
					bench.AblationMPPrefetchw(cfg),
					bench.AblationTicketBackoff(24, cfg),
				} {
					fmt.Fprintf(w, "  %-42s on: %10.2f   off: %10.2f\n", a.Name, a.On, a.Off)
				}
				fmt.Fprintln(w)
				return nil
			},
		},
	}
}

// ByID returns the experiment with the given id, or an error listing the
// valid ids.
func ByID(id string) (Experiment, error) {
	var ids []string
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("core: unknown experiment %q (have %v)", id, ids)
}

func platform(name string) (*arch.Platform, error) {
	p := arch.ByName(name)
	if p == nil {
		return nil, fmt.Errorf("core: unknown platform %q (have %v)", name, arch.Names())
	}
	return p, nil
}

func figureRunner(f func(*arch.Platform, bench.Config) bench.Figure) func(io.Writer, string, bench.Config) error {
	return func(w io.Writer, pn string, cfg bench.Config) error {
		p, err := platform(pn)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(w, bench.FormatFigure(f(p, cfg)))
		return err
	}
}
