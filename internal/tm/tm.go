// Package tm is the native Go implementation of TM2C [16], the paper's
// software transactional memory for many-cores, in its two flavours:
//
//   - NewMessagePassing: the TM2C design proper — distributed two-phase
//     locking where server goroutines own stripes of transactional memory
//     and clients acquire read/write access via one-cache-line messages
//     (built on internal/mp, as TM2C is built on libssmp). Conflicts abort
//     immediately (TM2C's contention manager) and the client retries with
//     randomized back-off.
//
//   - NewLockBased: the shared-memory version built with the spin locks of
//     libslock — here a TL2-style design: per-stripe versioned write
//     locks, invisible readers with commit-time validation, and a global
//     version clock.
//
// Both flavours expose word-granularity transactions over a fixed array
// of stripes, executed through Run, which retries aborted transactions.
package tm

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"ssync/internal/pad"
	"ssync/internal/xrand"
)

// Tx is the transactional context passed to the user function. Reads and
// writes outside Run's function are undefined.
type Tx interface {
	// Read returns the value of stripe i within the transaction.
	Read(i int) uint64
	// Write buffers v into stripe i; it becomes visible on commit.
	Write(i int, v uint64)
}

// Runner executes transactions.
type Runner interface {
	// Run executes fn transactionally, retrying on conflicts, and returns
	// fn's error (after aborting) if it is non-nil.
	Run(fn func(Tx) error) error
	// Stats returns cumulative commit and abort counts.
	Stats() (commits, aborts uint64)
}

// errConflict aborts a transaction internally.
var errConflict = errors.New("tm: conflict")

// conflictSignal unwinds the user function on a mid-transaction conflict.
type conflictSignal struct{}

// lockTM is the TL2-style shared-memory flavour. The global version
// clock and the commit/abort counters — each bumped from every thread —
// lead the struct so each owns its cache line.
//
//ssync:ignore padcheck one TM instance per run, never an array element; total size need not round to a line
type lockTM struct {
	clock   pad.Uint64
	commits pad.Uint64
	aborts  pad.Uint64
	n       int
	vlocks  []pad.Uint64 // version<<1 | locked
	data    []pad.Uint64
}

// NewLockBased creates a shared-memory TM over n stripes.
func NewLockBased(n int) Runner {
	if n <= 0 {
		panic("tm: need at least one stripe")
	}
	return &lockTM{n: n, vlocks: make([]pad.Uint64, n), data: make([]pad.Uint64, n)}
}

// Peek reads a stripe non-transactionally (tests/diagnostics only).
func (t *lockTM) Peek(i int) uint64 { return t.data[i].Load() }

type lockTx struct {
	tm     *lockTM
	reads  []readEntry
	writes map[int]uint64
}

type readEntry struct {
	stripe  int
	version uint64
}

func (tx *lockTx) Read(i int) uint64 {
	tx.check(i)
	if v, ok := tx.writes[i]; ok {
		return v
	}
	v1 := tx.tm.vlocks[i].Load()
	if v1&1 != 0 {
		panic(conflictSignal{})
	}
	val := tx.tm.data[i].Load()
	if tx.tm.vlocks[i].Load() != v1 {
		panic(conflictSignal{})
	}
	tx.reads = append(tx.reads, readEntry{i, v1})
	return val
}

func (tx *lockTx) Write(i int, v uint64) {
	tx.check(i)
	tx.writes[i] = v
}

func (tx *lockTx) check(i int) {
	if i < 0 || i >= tx.tm.n {
		panic(fmt.Sprintf("tm: stripe %d out of range [0,%d)", i, tx.tm.n))
	}
}

// commit locks the write set, validates the read set and publishes.
func (tx *lockTx) commit() error {
	t := tx.tm
	var locked []int
	release := func(newVersion uint64, upTo int) {
		for _, i := range locked[:upTo] {
			if newVersion != 0 {
				t.vlocks[i].Store(newVersion)
			} else {
				t.vlocks[i].Store(t.vlocks[i].Load() &^ 1)
			}
		}
	}
	for i := range tx.writes {
		v := t.vlocks[i].Load()
		if v&1 != 0 || !t.vlocks[i].CompareAndSwap(v, v|1) {
			release(0, len(locked))
			return errConflict
		}
		locked = append(locked, i)
	}
	// Validate reads: version unchanged and not locked by another tx.
	for _, r := range tx.reads {
		v := t.vlocks[r.stripe].Load()
		if v&^1 != r.version {
			release(0, len(locked))
			return errConflict
		}
		if v&1 != 0 {
			if _, mine := tx.writes[r.stripe]; !mine {
				release(0, len(locked))
				return errConflict
			}
		}
	}
	wv := t.clock.Add(1) << 1
	for i, val := range tx.writes {
		t.data[i].Store(val)
	}
	release(wv, len(locked))
	return nil
}

// seedCounter gives each Run invocation its own deterministic back-off
// stream.
var seedCounter atomic.Uint64

func (t *lockTM) Run(fn func(Tx) error) error {
	rng := xrand.New(seedCounter.Add(1) * 0x9e3779b97f4a7c15)
	backoff := 1
	for {
		err := t.attempt(fn)
		if err == nil {
			t.commits.Add(1)
			return nil
		}
		if err != errConflict {
			t.aborts.Add(1)
			return err
		}
		t.aborts.Add(1)
		for i := 0; i < backoff+int(rng.Uint64()%8); i++ {
			runtime.Gosched()
		}
		if backoff < 64 {
			backoff *= 2
		}
	}
}

// attempt runs fn once; conflictSignal panics become errConflict.
func (t *lockTM) attempt(fn func(Tx) error) (err error) {
	tx := &lockTx{tm: t, writes: make(map[int]uint64)}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(conflictSignal); ok {
				err = errConflict
				return
			}
			panic(r)
		}
	}()
	if err := fn(tx); err != nil {
		return err
	}
	return tx.commit()
}

func (t *lockTM) Stats() (uint64, uint64) { return t.commits.Load(), t.aborts.Load() }
