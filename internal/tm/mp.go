package tm

import (
	"fmt"
	"runtime"

	"ssync/internal/mp"
	"ssync/internal/pad"
	"ssync/internal/xrand"
)

// mpTM is the TM2C flavour: distributed two-phase locking over
// message passing. Server goroutines own stripes (stripe i belongs to
// server i % nServers); a client acquires read or write access to a
// stripe with one round-trip and commits or aborts with one message per
// involved server. A server that cannot grant access replies CONFLICT and
// the client aborts the whole transaction — TM2C's immediate-abort
// contention management.
//
// The cross-client commit/abort counters lead the struct so each owns
// its cache line, clear of the read-only topology fields.
//
//ssync:ignore padcheck one TM instance per run, never an array element; total size need not round to a line
type mpTM struct {
	commits  pad.Uint64
	aborts   pad.Uint64
	n        int
	nServers int
	nClients int
	net      *mp.Network
	stopped  []chan struct{}
}

// TM2C wire protocol opcodes.
const (
	mpRead uint64 = iota + 1
	mpWrite
	mpCommit
	mpAbort
	mpPeek
	mpShutdown
)

// Server replies.
const (
	replyOK uint64 = iota + 1
	replyConflict
)

// NewMessagePassing creates the message-passing TM with the given stripe,
// server and client counts. Clients are identified by index; each index
// may run transactions from exactly one goroutine at a time.
func NewMessagePassing(nStripes, nServers, nClients int) *MPTM {
	if nStripes <= 0 || nServers <= 0 || nClients <= 0 {
		panic("tm: need positive stripes, servers and clients")
	}
	t := &mpTM{
		n:        nStripes,
		nServers: nServers,
		nClients: nClients,
		net:      mp.NewNetwork(nServers + nClients),
		stopped:  make([]chan struct{}, nServers),
	}
	for s := 0; s < nServers; s++ {
		t.stopped[s] = make(chan struct{})
		go t.serve(s)
	}
	return &MPTM{tm: t}
}

// stripeLock is a server-side stripe's lock state.
type stripeLock struct {
	writer  int          // client holding the write lock (-1 none)
	readers map[int]bool // clients holding read locks
}

// serve owns stripes i with i % nServers == id. All state is private to
// this goroutine; mutual exclusion comes from partitioning.
func (t *mpTM) serve(id int) {
	defer close(t.stopped[id])
	data := map[int]uint64{}
	locks := map[int]*stripeLock{}
	// Per-client buffered writes, applied at commit.
	pending := map[int]map[int]uint64{}
	lockOf := func(stripe int) *stripeLock {
		l := locks[stripe]
		if l == nil {
			l = &stripeLock{writer: -1, readers: map[int]bool{}}
			locks[stripe] = l
		}
		return l
	}
	releaseAll := func(client int) {
		for stripe, l := range locks {
			if l.writer == client {
				l.writer = -1
			}
			delete(l.readers, client)
			_ = stripe
		}
		delete(pending, client)
	}
	for {
		from, req := t.net.RecvAny(id)
		op, stripe := req.W[0], int(req.W[1])
		switch op {
		case mpRead:
			l := lockOf(stripe)
			if l.writer >= 0 && l.writer != from {
				t.net.Send(id, from, mp.Msg{W: [7]uint64{replyConflict}})
				continue
			}
			l.readers[from] = true
			val := data[stripe]
			if w, ok := pending[from][stripe]; ok {
				val = w // read-your-writes
			}
			t.net.Send(id, from, mp.Msg{W: [7]uint64{replyOK, val}})
		case mpWrite:
			l := lockOf(stripe)
			conflict := (l.writer >= 0 && l.writer != from)
			if !conflict {
				for r := range l.readers {
					if r != from {
						conflict = true
						break
					}
				}
			}
			if conflict {
				t.net.Send(id, from, mp.Msg{W: [7]uint64{replyConflict}})
				continue
			}
			l.writer = from
			if pending[from] == nil {
				pending[from] = map[int]uint64{}
			}
			pending[from][stripe] = req.W[2]
			t.net.Send(id, from, mp.Msg{W: [7]uint64{replyOK}})
		case mpCommit:
			for stripe, v := range pending[from] {
				data[stripe] = v
			}
			releaseAll(from)
			t.net.Send(id, from, mp.Msg{W: [7]uint64{replyOK}})
		case mpAbort:
			releaseAll(from)
			t.net.Send(id, from, mp.Msg{W: [7]uint64{replyOK}})
		case mpPeek:
			t.net.Send(id, from, mp.Msg{W: [7]uint64{replyOK, data[stripe]}})
		case mpShutdown:
			t.net.Send(id, from, mp.Msg{})
			return
		default:
			panic(fmt.Sprintf("tm: server %d: bad opcode %d", id, op))
		}
	}
}

// MPTM is the public handle of the message-passing TM.
type MPTM struct {
	tm *mpTM
}

// Client binds a client index to a goroutine for running transactions.
type Client struct {
	tm  *mpTM
	me  int
	rng *xrand.Rand
}

// NewClient returns the transaction runner for client index id in
// [0, nClients).
func (t *MPTM) NewClient(id int) *Client {
	if id < 0 || id >= t.tm.nClients {
		panic(fmt.Sprintf("tm: client %d out of range [0,%d)", id, t.tm.nClients))
	}
	return &Client{tm: t.tm, me: t.tm.nServers + id, rng: xrand.New(uint64(id)*48271 + 11)}
}

// Stats returns cumulative commits and aborts across all clients.
func (t *MPTM) Stats() (uint64, uint64) { return t.tm.commits.Load(), t.tm.aborts.Load() }

// Peek reads a stripe non-transactionally (tests/diagnostics only).
func (t *MPTM) Peek(i int) uint64 {
	c := t.NewClient(0)
	s := c.serverOf(i)
	resp := t.tm.net.Call(c.me, s, mp.Msg{W: [7]uint64{mpPeek, uint64(i)}})
	return resp.W[1]
}

// Close shuts down the servers. Call only after all clients are quiescent.
func (t *MPTM) Close() {
	c := t.NewClient(0)
	for s := 0; s < t.tm.nServers; s++ {
		t.tm.net.Call(c.me, s, mp.Msg{W: [7]uint64{mpShutdown}})
		<-t.tm.stopped[s]
	}
}

func (c *Client) serverOf(stripe int) int { return stripe % c.tm.nServers }

// mpTx is one in-flight transaction.
type mpTx struct {
	c        *Client
	involved map[int]bool // servers holding locks for us
	reads    map[int]uint64
}

func (tx *mpTx) Read(i int) uint64 {
	if i < 0 || i >= tx.c.tm.n {
		panic(fmt.Sprintf("tm: stripe %d out of range [0,%d)", i, tx.c.tm.n))
	}
	if v, ok := tx.reads[i]; ok {
		return v
	}
	s := tx.c.serverOf(i)
	resp := tx.c.tm.net.Call(tx.c.me, s, mp.Msg{W: [7]uint64{mpRead, uint64(i)}})
	if resp.W[0] != replyOK {
		panic(conflictSignal{})
	}
	tx.involved[s] = true
	tx.reads[i] = resp.W[1]
	return resp.W[1]
}

func (tx *mpTx) Write(i int, v uint64) {
	if i < 0 || i >= tx.c.tm.n {
		panic(fmt.Sprintf("tm: stripe %d out of range [0,%d)", i, tx.c.tm.n))
	}
	s := tx.c.serverOf(i)
	resp := tx.c.tm.net.Call(tx.c.me, s, mp.Msg{W: [7]uint64{mpWrite, uint64(i), v}})
	if resp.W[0] != replyOK {
		panic(conflictSignal{})
	}
	tx.involved[s] = true
	tx.reads[i] = v // read-your-writes locally too
}

// finish sends commit or abort to every involved server.
func (tx *mpTx) finish(op uint64) {
	for s := range tx.involved {
		tx.c.tm.net.Call(tx.c.me, s, mp.Msg{W: [7]uint64{op}})
	}
}

// Run executes fn transactionally from this client, retrying on conflict.
func (c *Client) Run(fn func(Tx) error) error {
	backoff := 1
	for {
		err := c.attempt(fn)
		if err == nil {
			c.tm.commits.Add(1)
			return nil
		}
		c.tm.aborts.Add(1)
		if err != errConflict {
			return err
		}
		for i := 0; i < backoff+int(c.rng.Uint64()%8); i++ {
			runtime.Gosched()
		}
		if backoff < 64 {
			backoff *= 2
		}
	}
}

func (c *Client) attempt(fn func(Tx) error) (err error) {
	tx := &mpTx{c: c, involved: map[int]bool{}, reads: map[int]uint64{}}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(conflictSignal); ok {
				tx.finish(mpAbort)
				err = errConflict
				return
			}
			panic(r)
		}
	}()
	if err := fn(tx); err != nil {
		tx.finish(mpAbort)
		return err
	}
	tx.finish(mpCommit)
	return nil
}
