package tm

import (
	"errors"
	"sync"
	"testing"

	"ssync/internal/xrand"
)

// bankLock runs concurrent random transfers on the lock-based TM and
// checks conservation of money — the canonical serializability smoke test.
func TestBankLockBased(t *testing.T) {
	const accounts, perAccount = 32, 1000
	tmr := NewLockBased(accounts).(*lockTM)
	// Fund the accounts.
	if err := tmr.Run(func(tx Tx) error {
		for i := 0; i < accounts; i++ {
			tx.Write(i, perAccount)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const nG, transfers = 8, 400
	for g := 0; g < nG; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := xrand.New(uint64(g) + 99)
			for i := 0; i < transfers; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				amount := rng.Uint64() % 10
				err := tmr.Run(func(tx Tx) error {
					f := tx.Read(from)
					if f < amount {
						return nil // insufficient funds: no-op commit
					}
					tx.Write(from, f-amount)
					tx.Write(to, tx.Read(to)+amount)
					return nil
				})
				if err != nil {
					t.Errorf("transfer failed: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	var total uint64
	for i := 0; i < accounts; i++ {
		total += tmr.Peek(i)
	}
	if total != accounts*perAccount {
		t.Fatalf("money not conserved: %d, want %d", total, accounts*perAccount)
	}
	commits, aborts := tmr.Stats()
	if commits < nG*transfers {
		t.Errorf("commits = %d, want ≥ %d", commits, nG*transfers)
	}
	t.Logf("lock-based: %d commits, %d aborts", commits, aborts)
}

func TestBankMessagePassing(t *testing.T) {
	const accounts, perAccount = 16, 500
	const nClients = 4
	tmr := NewMessagePassing(accounts, 2, nClients)
	defer tmr.Close()
	init := tmr.NewClient(0)
	if err := init.Run(func(tx Tx) error {
		for i := 0; i < accounts; i++ {
			tx.Write(i, perAccount)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const transfers = 200
	for cid := 0; cid < nClients; cid++ {
		cid := cid
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := tmr.NewClient(cid)
			rng := xrand.New(uint64(cid)*7 + 3)
			for i := 0; i < transfers; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				amount := rng.Uint64() % 5
				err := c.Run(func(tx Tx) error {
					f := tx.Read(from)
					if f < amount {
						return nil
					}
					tx.Write(from, f-amount)
					tx.Write(to, tx.Read(to)+amount)
					return nil
				})
				if err != nil {
					t.Errorf("client %d: %v", cid, err)
				}
			}
		}()
	}
	wg.Wait()
	var total uint64
	for i := 0; i < accounts; i++ {
		total += tmr.Peek(i)
	}
	if total != accounts*perAccount {
		t.Fatalf("money not conserved: %d, want %d", total, accounts*perAccount)
	}
	commits, aborts := tmr.Stats()
	t.Logf("mp: %d commits, %d aborts", commits, aborts)
	if commits == 0 {
		t.Fatal("no commits recorded")
	}
}

func TestReadYourWrites(t *testing.T) {
	tmr := NewLockBased(4)
	err := tmr.Run(func(tx Tx) error {
		tx.Write(1, 42)
		if got := tx.Read(1); got != 42 {
			t.Errorf("read-your-writes: got %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	mptm := NewMessagePassing(4, 1, 1)
	defer mptm.Close()
	c := mptm.NewClient(0)
	err = c.Run(func(tx Tx) error {
		tx.Write(2, 7)
		if got := tx.Read(2); got != 7 {
			t.Errorf("mp read-your-writes: got %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUserErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	tmr := NewLockBased(2).(*lockTM)
	if err := tmr.Run(func(tx Tx) error {
		tx.Write(0, 99)
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if tmr.Peek(0) != 0 {
		t.Fatal("aborted write became visible")
	}

	mptm := NewMessagePassing(2, 1, 1)
	defer mptm.Close()
	c := mptm.NewClient(0)
	if err := c.Run(func(tx Tx) error {
		tx.Write(0, 99)
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("mp error not propagated: %v", err)
	}
	if mptm.Peek(0) != 0 {
		t.Fatal("mp aborted write became visible")
	}
}

func TestIsolationNoDirtyReads(t *testing.T) {
	// A long-running writer must never expose intermediate state: stripes
	// 0 and 1 always change together.
	tmr := NewLockBased(2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = tmr.Run(func(tx Tx) error {
				tx.Write(0, i)
				tx.Write(1, i)
				return nil
			})
		}
	}()
	go func() {
		defer wg.Done()
		for k := 0; k < 3000; k++ {
			var a, b uint64
			_ = tmr.Run(func(tx Tx) error {
				a = tx.Read(0)
				b = tx.Read(1)
				return nil
			})
			if a != b {
				t.Errorf("dirty read: stripes diverged (%d, %d)", a, b)
				break
			}
		}
		close(stop)
	}()
	wg.Wait()
}

func TestStripeRangePanics(t *testing.T) {
	tmr := NewLockBased(2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range stripe must panic")
		}
	}()
	_ = tmr.Run(func(tx Tx) error {
		tx.Read(5)
		return nil
	})
}
