// Package kvs is an in-memory key-value store with Memcached's locking
// anatomy (the paper's §6.4 testbed): a hash table under fine-grained
// bucket locks, per-item CAS tokens, TTL expiry, an LRU maintained per
// shard, and — true to Memcached 1.4 — a global cache lock taken by the
// set path for item allocation accounting and by periodic maintenance.
// Every lock is a pluggable libslock algorithm, which is exactly the
// paper's experiment: swap the pthread mutexes for ticket/TAS/MCS locks
// and observe the set-workload throughput change.
package kvs

import (
	"container/list"
	"fmt"

	"ssync/internal/hashkit"
	"ssync/internal/locks"
	"ssync/internal/pad"
)

// Item is one stored object.
type Item struct {
	Key     string
	Value   []byte
	CasID   uint64
	Expires uint64 // logical clock value; 0 = never
	lruElem *list.Element
	shard   int
}

// Options configures a Store.
type Options struct {
	// Shards is the number of independently locked hash-table shards
	// (Memcached's item_locks). Default 256.
	Shards int
	// MaxItemsPerShard bounds each shard; the LRU evicts beyond it.
	// Default 4096.
	MaxItemsPerShard int
	// Lock selects the algorithm for both the shard locks and the global
	// cache lock. Default MUTEX (stock Memcached).
	Lock locks.Algorithm
	// MaxThreads is forwarded to ARRAY locks.
	MaxThreads int
	// GlobalEvery makes every Nth set take the global lock for simulated
	// maintenance (slab/LRU bookkeeping). 1 = every set (Memcached 1.4's
	// cache_lock); 0 disables. Default 1.
	GlobalEvery int
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 256
	}
	if o.MaxItemsPerShard <= 0 {
		o.MaxItemsPerShard = 4096
	}
	if o.Lock == "" {
		o.Lock = locks.MUTEX
	}
	if o.GlobalEvery == 0 {
		o.GlobalEvery = 1
	}
	return o
}

// shard is one lock domain: a map plus its LRU list.
type shard struct {
	items map[string]*Item
	lru   *list.List // front = most recent
	_     [pad.CacheLineSize]byte
}

// Store is the key-value store. Access goes through per-goroutine Handles.
// The TTL clock leads the struct so it owns the first cache line, clear of
// the counters mutated under the global lock.
//
//ssync:ignore padcheck heap singleton, never an array element; total size need not round to a line
type Store struct {
	clock pad.Uint64 // logical time for TTLs

	opt        Options
	shards     []shard
	shardLocks []locks.Lock
	global     locks.Lock

	// Counters maintained under the global lock (memcached-style stats).
	casCounter uint64
	evictions  uint64
	setOps     uint64
}

// New creates a store.
func New(opt Options) *Store {
	opt = opt.withDefaults()
	s := &Store{
		opt:        opt,
		shards:     make([]shard, opt.Shards),
		shardLocks: make([]locks.Lock, opt.Shards),
		global:     locks.New(opt.Lock, locks.Options{MaxThreads: opt.MaxThreads}),
	}
	for i := range s.shards {
		s.shards[i].items = make(map[string]*Item)
		s.shards[i].lru = list.New()
		s.shardLocks[i] = locks.New(opt.Lock, locks.Options{MaxThreads: opt.MaxThreads})
	}
	return s
}

// Tick advances the logical TTL clock by one.
func (s *Store) Tick() { s.clock.Add(1) }

// Now returns the logical time.
func (s *Store) Now() uint64 { return s.clock.Load() }

// Evictions returns the number of LRU evictions so far.
func (s *Store) Evictions() uint64 {
	h := s.NewHandle(0)
	h.lockGlobal()
	defer h.unlockGlobal()
	return s.evictions
}

// Handle is a per-goroutine accessor carrying lock tokens.
type Handle struct {
	s         *Store
	shardToks []*locks.Token
	globalTok *locks.Token
	node      int
}

// NewHandle creates an accessor; node is the NUMA hint for hierarchical
// locks.
func (s *Store) NewHandle(node int) *Handle {
	return &Handle{
		s:         s,
		shardToks: make([]*locks.Token, s.opt.Shards),
		globalTok: s.global.NewToken(node),
		node:      node,
	}
}

func (h *Handle) shardOf(key string) int {
	return int(hashkit.FNV1a(key) % uint64(h.s.opt.Shards))
}

func (h *Handle) lockShard(i int) {
	if h.shardToks[i] == nil {
		h.shardToks[i] = h.s.shardLocks[i].NewToken(h.node)
	}
	h.s.shardLocks[i].Acquire(h.shardToks[i])
}

func (h *Handle) unlockShard(i int)                 { h.s.shardLocks[i].Release(h.shardToks[i]) }
func (h *Handle) lockGlobal()                       { h.s.global.Acquire(h.globalTok) }
func (h *Handle) unlockGlobal()                     { h.s.global.Release(h.globalTok) }
func (h *Handle) expired(it *Item, now uint64) bool { return it.Expires != 0 && it.Expires <= now }

// Get returns a copy of the value under key.
func (h *Handle) Get(key string) ([]byte, bool) {
	i := h.shardOf(key)
	h.lockShard(i)
	defer h.unlockShard(i)
	sh := &h.s.shards[i]
	it, ok := sh.items[key]
	if !ok {
		return nil, false
	}
	if h.expired(it, h.s.Now()) {
		sh.lru.Remove(it.lruElem)
		delete(sh.items, key)
		return nil, false
	}
	sh.lru.MoveToFront(it.lruElem)
	out := make([]byte, len(it.Value))
	copy(out, it.Value)
	return out, true
}

// GetCas returns the value and its CAS token.
func (h *Handle) GetCas(key string) ([]byte, uint64, bool) {
	i := h.shardOf(key)
	h.lockShard(i)
	defer h.unlockShard(i)
	sh := &h.s.shards[i]
	it, ok := sh.items[key]
	if !ok || h.expired(it, h.s.Now()) {
		return nil, 0, false
	}
	out := make([]byte, len(it.Value))
	copy(out, it.Value)
	return out, it.CasID, true
}

// Set stores value under key with the given TTL in logical ticks (0 =
// forever). This is the write path the paper stresses: it touches the
// global cache lock for allocation/LRU accounting, then the shard lock.
func (h *Handle) Set(key string, value []byte, ttl uint64) {
	var cas uint64
	if h.s.opt.GlobalEvery > 0 {
		h.lockGlobal()
		h.s.setOps++
		h.s.casCounter++
		cas = h.s.casCounter
		h.unlockGlobal()
	} else {
		cas = 1
	}
	i := h.shardOf(key)
	h.lockShard(i)
	defer h.unlockShard(i)
	h.storeLocked(i, key, value, ttl, cas)
}

// storeLocked inserts or replaces under the shard lock, evicting from the
// LRU tail when the shard is full.
func (h *Handle) storeLocked(i int, key string, value []byte, ttl uint64, cas uint64) {
	sh := &h.s.shards[i]
	var exp uint64
	if ttl > 0 {
		exp = h.s.Now() + ttl
	}
	if it, ok := sh.items[key]; ok {
		it.Value = append(it.Value[:0], value...)
		it.CasID = cas
		it.Expires = exp
		sh.lru.MoveToFront(it.lruElem)
		return
	}
	if sh.lru.Len() >= h.s.opt.MaxItemsPerShard {
		tail := sh.lru.Back()
		victim := tail.Value.(*Item)
		sh.lru.Remove(tail)
		delete(sh.items, victim.Key)
		if h.s.opt.GlobalEvery > 0 {
			h.lockGlobal()
			h.s.evictions++
			h.unlockGlobal()
		}
	}
	it := &Item{Key: key, Value: append([]byte(nil), value...), CasID: cas, Expires: exp, shard: i}
	it.lruElem = sh.lru.PushFront(it)
	sh.items[key] = it
}

// Cas stores value only if the item's CAS token still equals casID; it
// reports whether the swap happened.
func (h *Handle) Cas(key string, value []byte, casID uint64) bool {
	var next uint64
	if h.s.opt.GlobalEvery > 0 {
		h.lockGlobal()
		h.s.casCounter++
		next = h.s.casCounter
		h.unlockGlobal()
	} else {
		next = casID + 1
	}
	i := h.shardOf(key)
	h.lockShard(i)
	defer h.unlockShard(i)
	sh := &h.s.shards[i]
	it, ok := sh.items[key]
	if !ok || h.expired(it, h.s.Now()) || it.CasID != casID {
		return false
	}
	it.Value = append(it.Value[:0], value...)
	it.CasID = next
	sh.lru.MoveToFront(it.lruElem)
	return true
}

// Delete removes key; it reports whether it was present.
func (h *Handle) Delete(key string) bool {
	i := h.shardOf(key)
	h.lockShard(i)
	defer h.unlockShard(i)
	sh := &h.s.shards[i]
	it, ok := sh.items[key]
	if !ok {
		return false
	}
	sh.lru.Remove(it.lruElem)
	delete(sh.items, key)
	return true
}

// Len counts live items (diagnostics; takes all shard locks in turn).
func (h *Handle) Len() int {
	n := 0
	for i := range h.s.shards {
		h.lockShard(i)
		n += len(h.s.shards[i].items)
		h.unlockShard(i)
	}
	return n
}

// String describes the store configuration.
func (s *Store) String() string {
	return fmt.Sprintf("kvs(%d shards, %s locks, %d items/shard max)",
		s.opt.Shards, s.opt.Lock, s.opt.MaxItemsPerShard)
}
