package kvs

import (
	"fmt"
	"sync"
	"time"

	"ssync/internal/workload"
	"ssync/internal/xrand"
)

// Workload is a memslap-style load definition (the paper drives Memcached
// with libmemcached's memslap: 500 client threads, get-only and set-only
// runs).
type Workload struct {
	// Clients is the number of concurrent client goroutines.
	Clients int
	// SetPercent is the percentage of sets (0 = get-only, 100 = set-only).
	SetPercent int
	// Keys is the key-space size.
	Keys int
	// Dist draws key indices; nil means uniform over Keys. The
	// distributions come from internal/workload, the suite's one
	// definition of key skew.
	Dist workload.Dist
	// ValueSize is the value payload size in bytes.
	ValueSize int
	// OpsPerClient is the number of operations each client performs.
	OpsPerClient int
}

// DefaultWorkload mirrors the paper's memslap defaults in spirit.
func DefaultWorkload(setOnly bool) Workload {
	w := Workload{Clients: 8, Keys: 10000, ValueSize: 64, OpsPerClient: 5000}
	if setOnly {
		w.SetPercent = 100
	}
	return w
}

// Result summarises a load run.
type Result struct {
	Ops      uint64
	Duration time.Duration
	Hits     uint64
	Misses   uint64
}

// Kops returns throughput in thousands of operations per second.
func (r Result) Kops() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds() / 1e3
}

func (r Result) String() string {
	return fmt.Sprintf("%d ops in %v (%.1f Kops/s, %d hits, %d misses)",
		r.Ops, r.Duration.Round(time.Millisecond), r.Kops(), r.Hits, r.Misses)
}

// Run drives the store with the workload and returns the aggregate result.
func Run(s *Store, w Workload) Result {
	if w.Clients <= 0 || w.OpsPerClient <= 0 || w.Keys <= 0 {
		panic("kvs: workload needs positive clients, ops and keys")
	}
	dist := w.Dist
	if dist == nil {
		dist = workload.NewUniform(uint64(w.Keys))
	}
	value := make([]byte, w.ValueSize)
	for i := range value {
		value[i] = byte(i)
	}
	var wg sync.WaitGroup
	hits := make([]uint64, w.Clients)
	misses := make([]uint64, w.Clients)
	start := time.Now()
	for c := 0; c < w.Clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := s.NewHandle(c % 2)
			rng := xrand.New(uint64(c)*6364136223846793005 + 1442695040888963407)
			for i := 0; i < w.OpsPerClient; i++ {
				key := workload.Key(dist.Next(rng))
				if int(rng.Uint64()%100) < w.SetPercent {
					h.Set(key, value, 0)
				} else if _, ok := h.Get(key); ok {
					hits[c]++
				} else {
					misses[c]++
				}
			}
		}()
	}
	wg.Wait()
	res := Result{Ops: uint64(w.Clients * w.OpsPerClient), Duration: time.Since(start)}
	for c := 0; c < w.Clients; c++ {
		res.Hits += hits[c]
		res.Misses += misses[c]
	}
	return res
}
