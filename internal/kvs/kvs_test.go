package kvs

import (
	"fmt"
	"sync"
	"testing"

	"ssync/internal/locks"
)

func TestBasicOps(t *testing.T) {
	h := New(Options{Shards: 8}).NewHandle(0)
	if _, ok := h.Get("a"); ok {
		t.Fatal("Get on empty store")
	}
	h.Set("a", []byte("one"), 0)
	if v, ok := h.Get("a"); !ok || string(v) != "one" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	h.Set("a", []byte("two"), 0)
	if v, _ := h.Get("a"); string(v) != "two" {
		t.Fatalf("overwrite failed: %q", v)
	}
	if !h.Delete("a") || h.Delete("a") {
		t.Fatal("Delete semantics broken")
	}
}

func TestValueIsolation(t *testing.T) {
	// Mutating a returned value must not corrupt the store.
	h := New(Options{}).NewHandle(0)
	h.Set("k", []byte("hello"), 0)
	v, _ := h.Get("k")
	v[0] = 'X'
	if got, _ := h.Get("k"); string(got) != "hello" {
		t.Fatalf("store corrupted through returned slice: %q", got)
	}
}

func TestCas(t *testing.T) {
	h := New(Options{}).NewHandle(0)
	h.Set("k", []byte("v1"), 0)
	_, cas, ok := h.GetCas("k")
	if !ok {
		t.Fatal("GetCas")
	}
	if !h.Cas("k", []byte("v2"), cas) {
		t.Fatal("first Cas must win")
	}
	if h.Cas("k", []byte("v3"), cas) {
		t.Fatal("stale Cas must lose")
	}
	if v, _ := h.Get("k"); string(v) != "v2" {
		t.Fatalf("value = %q", v)
	}
}

func TestTTLExpiry(t *testing.T) {
	s := New(Options{})
	h := s.NewHandle(0)
	h.Set("k", []byte("v"), 3)
	if _, ok := h.Get("k"); !ok {
		t.Fatal("fresh item must be visible")
	}
	s.Tick()
	s.Tick()
	if _, ok := h.Get("k"); !ok {
		t.Fatal("item expired early")
	}
	s.Tick()
	if _, ok := h.Get("k"); ok {
		t.Fatal("item did not expire")
	}
	if h.Len() != 0 {
		t.Fatal("expired item not reaped")
	}
}

func TestLRUEviction(t *testing.T) {
	s := New(Options{Shards: 1, MaxItemsPerShard: 4})
	h := s.NewHandle(0)
	for i := 0; i < 4; i++ {
		h.Set(fmt.Sprintf("k%d", i), []byte("v"), 0)
	}
	h.Get("k0") // refresh k0: k1 becomes the LRU tail
	h.Set("k4", []byte("v"), 0)
	if _, ok := h.Get("k1"); ok {
		t.Fatal("k1 should have been evicted")
	}
	if _, ok := h.Get("k0"); !ok {
		t.Fatal("recently used k0 must survive")
	}
	if s.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions())
	}
}

func TestConcurrentClients(t *testing.T) {
	for _, alg := range []locks.Algorithm{locks.MUTEX, locks.TAS, locks.TICKET, locks.MCS} {
		s := New(Options{Shards: 16, Lock: alg, MaxThreads: 16})
		var wg sync.WaitGroup
		const nG = 6
		for g := 0; g < nG; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				h := s.NewHandle(g % 2)
				for i := 0; i < 500; i++ {
					key := fmt.Sprintf("g%d-k%d", g, i%37)
					h.Set(key, []byte{byte(i)}, 0)
					if v, ok := h.Get(key); !ok || v[0] != byte(i) {
						t.Errorf("%s: lost own write on %s", alg, key)
					}
				}
			}()
		}
		wg.Wait()
		if n := s.NewHandle(0).Len(); n != nG*37 {
			t.Errorf("%s: Len = %d, want %d", alg, n, nG*37)
		}
	}
}

func TestLoadgen(t *testing.T) {
	s := New(Options{Shards: 32, Lock: locks.TICKET})
	res := Run(s, Workload{Clients: 4, SetPercent: 50, Keys: 100, ValueSize: 16, OpsPerClient: 500})
	if res.Ops != 4*500 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.Hits == 0 {
		t.Fatal("a 50%% set mix over 100 keys must produce hits")
	}
	if res.Kops() <= 0 {
		t.Fatal("throughput must be positive")
	}
}
