package rcl

import (
	"sync"
	"testing"
)

func TestRCLMutualExclusion(t *testing.T) {
	const clients, perClient = 8, 2000
	s := NewServer(clients)
	defer s.Close()
	var counter int64 // server-executed: no synchronization needed
	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := s.NewClient(id)
			for i := 0; i < perClient; i++ {
				c.Execute(func() { counter++ })
			}
		}()
	}
	wg.Wait()
	if counter != clients*perClient {
		t.Fatalf("counter = %d, want %d", counter, clients*perClient)
	}
}

func TestRCLOrderingPerClient(t *testing.T) {
	s := NewServer(1)
	defer s.Close()
	c := s.NewClient(0)
	var log []int
	for i := 0; i < 100; i++ {
		i := i
		c.Execute(func() { log = append(log, i) })
	}
	for i, v := range log {
		if v != i {
			t.Fatalf("client requests reordered: %v", log[:i+1])
		}
	}
}

func TestRCLResultPassing(t *testing.T) {
	// Critical sections are closures: results flow back through captures.
	s := NewServer(2)
	defer s.Close()
	c := s.NewClient(0)
	shared := map[string]int{}
	var got int
	c.Execute(func() { shared["x"] = 41 })
	c.Execute(func() { shared["x"]++; got = shared["x"] })
	if got != 42 {
		t.Fatalf("got %d", got)
	}
}

func TestCombinerMutualExclusion(t *testing.T) {
	const threads, perThread = 8, 2000
	comb := NewCombiner(threads)
	var counter int64
	var inCS int32
	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := comb.NewHandle(id)
			for i := 0; i < perThread; i++ {
				h.Execute(func() {
					inCS++
					if inCS != 1 {
						t.Errorf("%d threads combined concurrently", inCS)
					}
					counter++
					inCS--
				})
			}
		}()
	}
	wg.Wait()
	if counter != threads*perThread {
		t.Fatalf("counter = %d, want %d", counter, threads*perThread)
	}
}

func TestCombinerSingleThread(t *testing.T) {
	comb := NewCombiner(1)
	h := comb.NewHandle(0)
	sum := 0
	for i := 1; i <= 10; i++ {
		i := i
		h.Execute(func() { sum += i })
	}
	if sum != 55 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("zero clients", func() { NewServer(0) })
	mustPanic("zero slots", func() { NewCombiner(0) })
	s := NewServer(1)
	defer s.Close()
	mustPanic("bad client id", func() { s.NewClient(5) })
	mustPanic("bad handle id", func() { NewCombiner(1).NewHandle(2) })
}

func BenchmarkExecuteStyles(b *testing.B) {
	var next int32
	var mu sync.Mutex
	slotID := func(n int) int {
		mu.Lock()
		defer mu.Unlock()
		id := int(next) % n
		next++
		return id
	}
	b.Run("rcl", func(b *testing.B) {
		s := NewServer(64)
		defer s.Close()
		var counter int64
		b.RunParallel(func(pb *testing.PB) {
			c := s.NewClient(slotID(64))
			for pb.Next() {
				c.Execute(func() { counter++ })
			}
		})
	})
	b.Run("flatcombining", func(b *testing.B) {
		comb := NewCombiner(64)
		var counter int64
		b.RunParallel(func(pb *testing.PB) {
			h := comb.NewHandle(slotID(64))
			for pb.Next() {
				h.Execute(func() { counter++ })
			}
		})
	})
}
