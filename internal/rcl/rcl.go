// Package rcl implements the two critical-section-shipping techniques the
// paper discusses in §7 and scopes for follow-up in §8:
//
//   - Remote Core Locking (RCL, Lozi et al. [26]): the "lock, execute,
//     unlock" pattern is replaced by remote procedure calls to a dedicated
//     server core, which executes critical sections on behalf of clients
//     and therefore accesses the protected data locally. The paper's
//     message-passing results delimit its sweet spot: high contention and
//     many cores.
//
//   - Flat combining (Hendler et al. [18]): threads publish their critical
//     sections in per-thread slots; whoever holds the lock executes every
//     published request in one scan, turning k lock hand-overs into one.
//
// Both expose the same Execute(func()) surface, so they drop into the
// same benchmarks as libslock's locks.
package rcl

import (
	"runtime"
	"sync/atomic"

	"ssync/internal/pad"
)

// request is one published critical section. The spun-on done flag
// leads so it owns the first cache line; the one-shot fn pointer,
// written once before publication, rides behind it.
//
//ssync:ignore padcheck one short-lived allocation per Execute, never an array element
type request struct {
	done pad.Uint32
	fn   func()
}

// slot is a client's mailbox, padded so clients never false-share.
type slot struct {
	req atomic.Pointer[request]
	_   [pad.CacheLineSize - 8]byte
}

// Server is an RCL server: a dedicated goroutine executing the critical
// sections of up to nClients clients. The stop flag, polled every server
// scan, owns the leading line.
//
//ssync:ignore padcheck one server object per combiner goroutine, never an array element
type Server struct {
	stopped pad.Uint32
	slots   []slot
	done    chan struct{}
}

// NewServer starts the combiner goroutine for nClients client slots.
func NewServer(nClients int) *Server {
	if nClients <= 0 {
		panic("rcl: need at least one client slot")
	}
	s := &Server{slots: make([]slot, nClients), done: make(chan struct{})}
	go s.loop()
	return s
}

// loop scans the client slots round-robin, executing pending requests —
// the RCL "server loop". Idle scans read cached slot words only.
func (s *Server) loop() {
	defer close(s.done)
	idle := 0
	for {
		any := false
		for i := range s.slots {
			r := s.slots[i].req.Load()
			if r == nil {
				continue
			}
			r.fn()
			s.slots[i].req.Store(nil)
			r.done.Store(1)
			any = true
		}
		if s.stopped.Load() != 0 {
			return
		}
		if !any {
			idle++
			if idle%4 == 0 {
				runtime.Gosched()
			}
		} else {
			idle = 0
		}
	}
}

// Client is a per-goroutine handle bound to one server slot.
type Client struct {
	s  *Server
	id int
}

// NewClient binds slot id (one goroutine per id at a time).
func (s *Server) NewClient(id int) *Client {
	if id < 0 || id >= len(s.slots) {
		panic("rcl: client id out of range")
	}
	return &Client{s: s, id: id}
}

// Execute ships fn to the server and blocks until it ran. Successive
// Execute calls from all clients are totally ordered by the server, which
// is the mutual-exclusion guarantee.
func (c *Client) Execute(fn func()) {
	r := &request{fn: fn}
	c.s.slots[c.id].req.Store(r)
	spins := 0
	for r.done.Load() == 0 {
		spins++
		if spins%32 == 0 {
			runtime.Gosched()
		}
	}
}

// Close stops the server after draining in-flight requests. No Execute
// may be in flight or issued afterwards.
func (s *Server) Close() {
	s.stopped.Store(1)
	<-s.done
}

// Combiner is a flat-combining execution lock: a try-lock guard plus one
// publication slot per thread. Only the thread that wins the guard scans
// and executes; everyone else just spins on its own done flag — under
// contention, one lock acquisition serves many critical sections.
//
//ssync:ignore padcheck one combiner object per lock, never an array element; slots carry their own padding
type Combiner struct {
	flag  pad.Uint32
	slots []slot
}

// NewCombiner creates a flat combiner with nThreads publication slots.
func NewCombiner(nThreads int) *Combiner {
	if nThreads <= 0 {
		panic("rcl: need at least one combiner slot")
	}
	return &Combiner{slots: make([]slot, nThreads)}
}

// Handle is a per-goroutine combiner handle.
type Handle struct {
	c  *Combiner
	id int
}

// NewHandle binds publication slot id (one goroutine per id at a time).
func (c *Combiner) NewHandle(id int) *Handle {
	if id < 0 || id >= len(c.slots) {
		panic("rcl: handle id out of range")
	}
	return &Handle{c: c, id: id}
}

// Execute publishes fn and either combines (if this thread wins the
// try-lock) or waits for a concurrent combiner to run it.
func (h *Handle) Execute(fn func()) {
	r := &request{fn: fn}
	h.c.slots[h.id].req.Store(r)
	spins := 0
	for r.done.Load() == 0 {
		if h.c.flag.Load() == 0 && h.c.flag.CompareAndSwap(0, 1) {
			// We are the combiner: execute everything published.
			for i := range h.c.slots {
				q := h.c.slots[i].req.Load()
				if q == nil {
					continue
				}
				q.fn()
				h.c.slots[i].req.Store(nil)
				q.done.Store(1)
			}
			h.c.flag.Store(0)
			if r.done.Load() != 0 {
				return
			}
			continue
		}
		spins++
		if spins%16 == 0 {
			runtime.Gosched()
		}
	}
}
