package cli

import (
	"strings"
	"testing"
)

// TestStorePlaceSmoke runs `ssync store -place <policy>` for every
// policy on every engine-relevant path — the CLI smoke CI's placement
// leg executes. On a single-domain host the pinning policies no-op but
// must still run the whole scenario and emit rows.
func TestStorePlaceSmoke(t *testing.T) {
	for _, place := range []string{"none", "compact", "scatter", "auto"} {
		out, errOut, code := runMain(t,
			"store", "-alg", "ticket", "-shards", "4", "-engine", "actor",
			"-clients", "2", "-ops", "400", "-keys", "512", "-place", place)
		if code != 0 {
			t.Fatalf("-place %s: exit %d, stderr: %s", place, code, errOut)
		}
		if !strings.Contains(out, "total Kops/s") {
			t.Fatalf("-place %s: missing throughput row:\n%s", place, out)
		}
		if place != "none" && !strings.Contains(errOut, "placement: "+place) {
			t.Fatalf("-place %s: no placement banner on stderr: %s", place, errOut)
		}
	}
}

func TestStorePlaceRejectsUnknown(t *testing.T) {
	_, errOut, code := runMain(t,
		"store", "-place", "everywhere", "-clients", "1", "-ops", "10")
	if code != 2 {
		t.Fatalf("exit %d, want 2; stderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "unknown placement policy") {
		t.Fatalf("missing policy error: %s", errOut)
	}
}

// TestClusterPlaceSmoke: a placed multi-node cluster run end-to-end
// through routed clients.
func TestClusterPlaceSmoke(t *testing.T) {
	out, errOut, code := runMain(t,
		"cluster", "-nodes", "2", "-shards", "2", "-clients", "2",
		"-ops", "400", "-keys", "512", "-place", "compact")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "total Kops/s") {
		t.Fatalf("missing throughput row:\n%s", out)
	}
	if !strings.Contains(errOut, "placement: compact") {
		t.Fatalf("no placement banner on stderr: %s", errOut)
	}
}
