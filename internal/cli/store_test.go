package cli

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestStoreAcceptance is the issue's acceptance command (scaled down):
// `ssync store --alg mcs --shards 16 --dist zipfian --mix 95:5` must run
// the scenario end-to-end through the wire protocol and emit per-shard
// throughput via the standard emitters.
func TestStoreAcceptance(t *testing.T) {
	out, errOut, code := runMain(t,
		"store", "--alg", "mcs", "--shards", "16", "--dist", "zipfian", "--mix", "95:5",
		"-clients", "4", "-ops", "1500", "-keys", "4096", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	var results []result
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	metrics := map[string]bool{}
	for _, r := range results {
		if r.Experiment != "store/mcs" || r.Platform != "native" || r.Threads != 4 {
			t.Fatalf("unexpected result %+v", r)
		}
		metrics[r.Metric] = true
	}
	if !metrics["total Kops/s"] || !metrics["hit %"] {
		t.Fatalf("missing summary metrics in %v", metrics)
	}
	for _, shard := range []string{"shard00 Kops/s", "shard07 Kops/s", "shard15 Kops/s"} {
		if !metrics[shard] {
			t.Fatalf("missing per-shard metric %q in %v", shard, metrics)
		}
	}
	if !strings.Contains(errOut, "steady:") || !strings.Contains(errOut, "ramp:") {
		t.Fatalf("phase summary missing from stderr: %s", errOut)
	}
}

func TestStoreLocalTableAndCSV(t *testing.T) {
	out, errOut, code := runMain(t,
		"store", "-alg", "hclh", "-shards", "4", "-dist", "uniform", "-mix", "80:15:5",
		"-clients", "2", "-ops", "800", "-keys", "512", "-local")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"store/hclh", "total Kops/s", "shard03 Kops/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	csvOut, _, code := runMain(t,
		"store", "-alg", "ticket", "-shards", "2", "-clients", "2", "-ops", "500", "-csv")
	if code != 0 {
		t.Fatal("csv run failed")
	}
	if !strings.HasPrefix(csvOut, "experiment,platform,threads,metric,") ||
		!strings.Contains(csvOut, "store/ticket,native,2,shard01 Kops/s,") {
		t.Fatalf("CSV output malformed:\n%s", csvOut)
	}
}

// TestStoreEngineAll is the issue's acceptance command (scaled down):
// `ssync store -engine all` must emit locked, actor and optimistic rows
// from one run, in one table, so the paradigm comparison needs no
// stitching.
func TestStoreEngineAll(t *testing.T) {
	out, errOut, code := runMain(t,
		"store", "-engine", "all", "-alg", "ticket", "-shards", "8",
		"-clients", "4", "-ops", "1500", "-keys", "2048", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	var results []result
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	kops := map[string]float64{}
	for _, r := range results {
		if r.Metric == "total Kops/s" {
			kops[r.Experiment] = r.Stats.Mean
		}
	}
	for _, exp := range []string{"store-engine/locked/ticket", "store-engine/actor", "store-engine/optimistic/ticket"} {
		if kops[exp] <= 0 {
			t.Errorf("missing or zero throughput row for %s in %v", exp, kops)
		}
	}
	for _, want := range []string{"locked engine", "actor engine", "optimistic engine"} {
		if !strings.Contains(errOut, want) {
			t.Errorf("stderr missing per-engine summary %q:\n%s", want, errOut)
		}
	}
}

// TestStoreEngineSingle: a non-default engine run works end-to-end over
// the wire and is labeled with the engine-qualified experiment id.
func TestStoreEngineSingle(t *testing.T) {
	out, errOut, code := runMain(t,
		"store", "-engine", "actor", "-shards", "4",
		"-clients", "2", "-ops", "800", "-keys", "512")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"store-engine/actor", "total Kops/s", "shard03 Kops/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestStoreErrors(t *testing.T) {
	if _, _, code := runMain(t, "store", "-alg", "bogus"); code != 2 {
		t.Error("unknown algorithm must exit 2")
	}
	if _, _, code := runMain(t, "store", "-engine", "bogus"); code != 2 {
		t.Error("unknown engine must exit 2")
	}
	if _, _, code := runMain(t, "store", "-dist", "pareto"); code != 2 {
		t.Error("unknown distribution must exit 2")
	}
	if _, _, code := runMain(t, "store", "-mix", "60:60"); code != 2 {
		t.Error("mix not summing to 100 must exit 2")
	}
	if _, _, code := runMain(t, "store", "-json", "-csv"); code != 2 {
		t.Error("-json -csv must exit 2")
	}
	if _, _, code := runMain(t, "store", "-batch", "5000"); code != 2 {
		t.Error("-batch above the wire limit must exit 2")
	}
	if _, _, code := runMain(t, "store", "-h"); code != 0 {
		t.Error("store -h must exit 0")
	}
}

// TestStorePipelineBeatsLockstep is the issue's acceptance command
// (scaled down): `ssync store -pipeline 16 -batch 8` must beat the
// lock-step wire client's Kops/s on the same alg/shard config, with
// both numbers in the same emitted results.
func TestStorePipelineBeatsLockstep(t *testing.T) {
	out, errOut, code := runMain(t,
		"store", "-alg", "mcs", "-shards", "16", "-pipeline", "16", "-batch", "8",
		"-clients", "4", "-ops", "4000", "-keys", "4096", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	var results []result
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	var lockstep, pipelined float64
	for _, r := range results {
		switch r.Metric {
		case "lockstep wire Kops/s":
			lockstep = r.Stats.Mean
		case "total Kops/s":
			pipelined = r.Stats.Mean
		}
	}
	if lockstep == 0 || pipelined == 0 {
		t.Fatalf("missing lockstep/pipelined rows in %s", out)
	}
	if pipelined <= lockstep {
		t.Fatalf("pipelined wire (%.1f Kops/s) does not beat lock-step (%.1f Kops/s)", pipelined, lockstep)
	}
	if !strings.Contains(errOut, "pipelined wire (depth 16 × batch 8)") ||
		!strings.Contains(errOut, "lock-step baseline") {
		t.Fatalf("transport summaries missing from stderr: %s", errOut)
	}
}

// TestStorePipelineTable: the default table output carries both rows,
// so the comparison is visible without machine parsing.
func TestStorePipelineTable(t *testing.T) {
	out, _, code := runMain(t,
		"store", "-alg", "ticket", "-shards", "4", "-pipeline", "8", "-batch", "4",
		"-clients", "2", "-ops", "1200", "-keys", "1024")
	if code != 0 {
		t.Fatal("pipelined table run failed")
	}
	for _, want := range []string{"lockstep wire Kops/s", "total Kops/s", "shard03 Kops/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}
