package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"runtime"

	"ssync/internal/bench"
	"ssync/internal/harness"
)

// RunMain implements `ssync run [experiments...] [flags]`: it resolves
// the experiment patterns against the registry, executes the
// experiment × platform × thread-count grid on the sharded runner and
// emits the aggregated results.
func RunMain(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ssync run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	platforms := fs.String("platform", "", "comma-separated platforms (default: each experiment's own list)")
	threads := fs.String("threads", "", "comma-separated thread counts (default: each experiment's grid)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size executing shards")
	reps := fs.Int("reps", 1, "measured repetitions per shard")
	warmup := fs.Int("warmup", 1, "discarded warm-up repetitions per shard")
	deadline := fs.Uint64("deadline", 0, "simulated cycles per configuration (0 = default)")
	latencyOps := fs.Int("latencyops", 0, "operations per latency measurement (0 = default)")
	jsonOut := fs.Bool("json", false, "emit JSON")
	csvOut := fs.Bool("csv", false, "emit CSV")
	patterns, err := parseInterleaved(fs, argv)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	exps, err := harness.Default.Match(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "ssync run:", err)
		return 2
	}
	opt := harness.Options{
		Parallel: *parallel,
		Reps:     *reps,
		Warmup:   *warmup,
		Config:   bench.Config{Deadline: *deadline, LatencyOps: *latencyOps},
	}
	if *platforms != "" {
		opt.Platforms = splitList(*platforms)
	}
	if *threads != "" {
		opt.Threads, err = intList(*threads)
		if err != nil {
			fmt.Fprintln(stderr, "ssync run: bad -threads:", err)
			return 2
		}
	}
	format := "table"
	switch {
	case *jsonOut && *csvOut:
		fmt.Fprintln(stderr, "ssync run: -json and -csv are mutually exclusive")
		return 2
	case *jsonOut:
		format = "json"
	case *csvOut:
		format = "csv"
	}
	emitter, _ := harness.EmitterFor(format)

	results, err := harness.Run(exps, opt)
	if err != nil {
		fmt.Fprintln(stderr, "ssync run:", err)
		if results == nil {
			return 1
		}
		// Partial results still emit; the error sets the exit status.
	}
	if emitErr := emitter.Emit(stdout, results); emitErr != nil {
		fmt.Fprintln(stderr, "ssync run:", emitErr)
		return 1
	}
	if err != nil {
		return 1
	}
	return 0
}

// ListMain implements `ssync list`.
func ListMain(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ssync list", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if code, ok := parseArgs(fs, argv); !ok {
		return code
	}
	for _, e := range harness.Default.Experiments() {
		fmt.Fprintf(stdout, "%-16s %s\n", e.Name(), e.Description())
		fmt.Fprintf(stdout, "%-16s platforms: %v\n", "", e.Platforms())
	}
	return 0
}
