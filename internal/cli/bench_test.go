package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchEmitAndCheck drives the whole `ssync bench` lifecycle the CI
// gate uses: emit a reference, re-check it against a fresh run of the
// same pinned sweep (must pass within noise bounds, writing the fresh
// artifact), then corrupt the reference and watch the gate fail.
func TestBenchEmitAndCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep grid twice")
	}
	dir := t.TempDir()
	ref := filepath.Join(dir, "BENCH_test.json")

	_, errOut, code := runMain(t, "bench", "-emit", ref, "-pr", "8", "-short", "-reps", "1", "-q")
	if code != 0 {
		t.Fatalf("emit: exit %d, stderr: %s", code, errOut)
	}
	raw, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		Schema string `json:"schema"`
		PR     int    `json:"pr"`
		Seed   uint64 `json:"seed"`
		Rows   []struct {
			Engine string  `json:"engine"`
			Kops   float64 `json:"kops"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("reference is not JSON: %v", err)
	}
	if file.Schema == "" || file.PR != 8 || file.Seed == 0 || len(file.Rows) == 0 {
		t.Fatalf("reference header not self-describing: %+v", file)
	}

	fresh := filepath.Join(dir, "fresh.json")
	_, errOut, code = runMain(t, "bench", "-check", ref, "-out", fresh, "-q")
	if code != 0 {
		t.Fatalf("check against own reference: exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "bench gate passed") {
		t.Fatalf("no pass message: %s", errOut)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh artifact not written: %v", err)
	}

	// An impossible reference (every cell 1000× faster, zero allocs)
	// must fail the gate with exit 1 and named cells.
	corrupt := strings.ReplaceAll(string(raw), `"kops": `, `"kops": 9999`)
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	_, errOut, code = runMain(t, "bench", "-check", bad, "-q")
	if code != 1 {
		t.Fatalf("check against impossible reference: exit %d, want 1; stderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "regression") {
		t.Fatalf("no regression report: %s", errOut)
	}
}

func TestBenchFlagErrors(t *testing.T) {
	if _, _, code := runMain(t, "bench", "-emit", "x", "-check", "y"); code != 2 {
		t.Error("-emit with -check must exit 2")
	}
	if _, _, code := runMain(t, "bench", "-check", "/no/such/file.json"); code != 2 {
		t.Error("missing reference must exit 2")
	}
	if _, _, code := runMain(t, "bench", "-h"); code != 0 {
		t.Error("-h must exit 0")
	}
}
