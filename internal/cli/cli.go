// Package cli implements the ssync command-line tool and the legacy
// single-purpose benchmark binaries as library functions, so the cmd/
// directories are one-line wrappers and every invocation is unit-testable.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ssync/internal/arch"
)

// tool is one dispatchable subcommand.
type tool struct {
	name string
	doc  string
	main func(argv []string, stdout, stderr io.Writer) int
}

// tools lists every subcommand of ssync. The seven retired benchmark
// binaries and topology keep working both as `ssync <name>` and as thin
// cmd/ wrappers.
var tools = []tool{
	{"run", "run registered experiments on the sharded harness", RunMain},
	{"list", "list the registered experiments", ListMain},
	{"store", "sharded KVS: scenario workload over the wire protocol", StoreMain},
	{"cluster", "multi-node store cluster: consistent-hash routed workload", ClusterMain},
	{"bench", "pinned perf-trajectory sweep: emit or check BENCH_*.json references", BenchMain},
	{"figures", "regenerate every table and figure of the paper", FiguresMain},
	{"lockbench", "lock experiments: Figures 3-8", LockbenchMain},
	{"ccbench", "cache-coherence latencies: Tables 2-3", CcbenchMain},
	{"mpbench", "message passing: Figures 9-10 and the prefetchw ablation", MpbenchMain},
	{"sshtbench", "ssht hash table: Figure 11", SshtbenchMain},
	{"tmbench", "software transactional memory: the §8 experiment", TmbenchMain},
	{"kvbench", "memcached-style key-value store: Figure 12", KvbenchMain},
	{"topology", "print the simulated platform models", TopologyMain},
	{"lint", "static analysis: check the repo's concurrency and allocation invariants", LintMain},
}

// Main is the ssync entry point.
func Main(argv []string, stdout, stderr io.Writer) int {
	if len(argv) == 0 {
		usage(stderr)
		return 2
	}
	name := argv[0]
	switch name {
	case "help", "-h", "-help", "--help":
		usage(stdout)
		return 0
	}
	for _, t := range tools {
		if t.name == name {
			return t.main(argv[1:], stdout, stderr)
		}
	}
	fmt.Fprintf(stderr, "ssync: unknown command %q\n\n", name)
	usage(stderr)
	return 2
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: ssync <command> [flags]")
	fmt.Fprintln(w, "")
	fmt.Fprintln(w, "The SSYNC suite (SOSP'13 reproduction). Commands:")
	fmt.Fprintln(w, "")
	for _, t := range tools {
		fmt.Fprintf(w, "  %-10s %s\n", t.name, t.doc)
	}
	fmt.Fprintln(w, "")
	fmt.Fprintln(w, "example: ssync run locks/single -platform xeon -threads 1,10,36 -parallel 8 -json")
}

// parseArgs parses argv with fs. ok=false means the caller should stop
// and return code: 0 when -h asked for the usage text, 2 on a bad flag.
func parseArgs(fs *flag.FlagSet, argv []string) (code int, ok bool) {
	switch err := fs.Parse(argv); {
	case err == nil:
		return 0, true
	case errors.Is(err, flag.ErrHelp):
		return 0, false
	default:
		return 2, false
	}
}

// parseInterleaved parses argv with fs, allowing flags and positional
// arguments in any order (`ssync run locks/single -json` and
// `ssync run -json locks/single` both work). It returns the positionals.
func parseInterleaved(fs *flag.FlagSet, argv []string) ([]string, error) {
	var pos []string
	for {
		if err := fs.Parse(argv); err != nil {
			return nil, err
		}
		rest := fs.Args()
		if len(rest) == 0 {
			return pos, nil
		}
		pos = append(pos, rest[0])
		argv = rest[1:]
	}
}

// intList parses a comma-separated list of integers.
func intList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// splitList splits a comma-separated string list.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// platformOrExit resolves a model name or exits the tool with status 2.
func platformOrExit(tool, name string, stderr io.Writer) (*arch.Platform, int) {
	p := arch.ByName(strings.TrimSpace(name))
	if p == nil {
		fmt.Fprintf(stderr, "%s: unknown platform %q (have %v)\n", tool, name, arch.Names())
		return nil, 2
	}
	return p, 0
}

// Run is the process-level entry used by cmd/ main functions.
func Run(main func([]string, io.Writer, io.Writer) int) {
	os.Exit(main(os.Args[1:], os.Stdout, os.Stderr))
}
