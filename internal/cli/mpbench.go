package cli

import (
	"flag"
	"fmt"
	"io"

	"ssync/internal/bench"
)

// MpbenchMain regenerates the paper's message-passing experiments:
// Figure 9 (one-to-one latency by distance), Figure 10 (client-server
// throughput) and the §5.3 prefetchw ablation.
func MpbenchMain(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mpbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.Int("fig", 9, "figure to regenerate: 9 or 10")
	platforms := fs.String("platform", "Opteron,Xeon,Niagara,Tilera", "comma-separated platform models")
	prefetchw := fs.Bool("prefetchw", false, "run the §5.3 Opteron prefetchw ablation instead")
	if code, ok := parseArgs(fs, argv); !ok {
		return code
	}

	cfg := bench.DefaultConfig()
	if *prefetchw {
		a := bench.AblationMPPrefetchw(cfg)
		fmt.Fprintf(stdout, "Opteron message-passing round-trip: %.0f cycles with prefetchw, %.0f without (%.2fx)\n",
			a.On, a.Off, a.Off/a.On)
		return 0
	}
	for _, name := range splitList(*platforms) {
		p, code := platformOrExit("mpbench", name, stderr)
		if p == nil {
			return code
		}
		switch *fig {
		case 9:
			fmt.Fprintln(stdout, bench.FormatFigure9(p, bench.Figure9(p, cfg)))
		case 10:
			fmt.Fprintln(stdout, bench.FormatFigure(bench.Figure10(p, cfg)))
		default:
			fmt.Fprintf(stderr, "mpbench: no figure %d (have 9, 10)\n", *fig)
			return 2
		}
	}
	return 0
}
