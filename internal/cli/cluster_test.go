package cli

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestClusterAcceptance is the issue's acceptance command (scaled
// down): `ssync cluster -nodes 4` must emit a comparison table whose
// routed multi-node rows and single-node baseline come from the same
// run.
func TestClusterAcceptance(t *testing.T) {
	out, errOut, code := runMain(t,
		"cluster", "-nodes", "4", "-clients", "4", "-ops", "1500", "-keys", "4096", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	var results []result
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	metrics := map[string]float64{}
	for _, r := range results {
		if r.Experiment != "cluster/4xlocked" || r.Platform != "native" || r.Threads != 4 {
			t.Fatalf("unexpected result %+v", r)
		}
		metrics[r.Metric] = r.Stats.Mean
	}
	for _, want := range []string{
		"single-node baseline Kops/s", "total Kops/s", "hit %",
		"node00 Kops/s", "node01 Kops/s", "node02 Kops/s", "node03 Kops/s",
	} {
		if metrics[want] <= 0 {
			t.Fatalf("missing or zero metric %q in %v", want, metrics)
		}
	}
	// Both the baseline and the routed run printed phase summaries — one
	// invocation, two measured cluster shapes.
	if strings.Count(errOut, "steady:") != 2 {
		t.Fatalf("want two phase summaries (baseline + routed) on stderr: %s", errOut)
	}
}

// TestClusterEngineAndTable: a non-default engine run works end-to-end
// and the default table output carries the comparison rows.
func TestClusterEngineAndTable(t *testing.T) {
	out, errOut, code := runMain(t,
		"cluster", "-nodes", "2", "-engine", "actor", "-clients", "2",
		"-ops", "800", "-keys", "1024")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"cluster/2xactor", "single-node baseline Kops/s", "total Kops/s", "node01 Kops/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

// TestClusterSingleNode: -nodes 1 runs without a baseline row (it IS
// the baseline).
func TestClusterSingleNode(t *testing.T) {
	out, errOut, code := runMain(t,
		"cluster", "-nodes", "1", "-clients", "2", "-ops", "600", "-keys", "512")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if strings.Contains(out, "single-node baseline") {
		t.Fatalf("-nodes 1 must not emit a separate baseline row:\n%s", out)
	}
	if !strings.Contains(out, "cluster/1xlocked") || !strings.Contains(out, "node00 Kops/s") {
		t.Fatalf("missing cluster/1xlocked rows:\n%s", out)
	}
}

// TestClusterResize: `ssync cluster -resize` measures a live grow+shrink
// under load and emits the migration metrics under the migrate/<n>x<eng>
// experiment id.
func TestClusterResize(t *testing.T) {
	out, errOut, code := runMain(t,
		"cluster", "-resize", "-nodes", "2", "-engine", "actor", "-clients", "2",
		"-keys", "512", "-window", "80ms", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	var results []result
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	metrics := map[string]float64{}
	for _, r := range results {
		if r.Experiment != "migrate/2xactor" || r.Platform != "native" || r.Threads != 2 {
			t.Fatalf("unexpected result %+v", r)
		}
		metrics[r.Metric] = r.Stats.Mean
	}
	for _, want := range []string{"steady Kops/s", "dip Kops/s", "add ms", "remove ms"} {
		if metrics[want] <= 0 {
			t.Fatalf("missing or zero metric %q in %v", want, metrics)
		}
	}
	// dip % and recovery ms may legitimately be zero, but must be present.
	for _, want := range []string{"dip %", "recovery ms"} {
		if _, ok := metrics[want]; !ok {
			t.Fatalf("missing metric %q in %v", want, metrics)
		}
	}
	if !strings.Contains(errOut, "resize 2→3 nodes") {
		t.Fatalf("stderr missing the resize summary: %s", errOut)
	}
}

func TestClusterErrors(t *testing.T) {
	if _, _, code := runMain(t, "cluster", "-engine", "bogus"); code != 2 {
		t.Error("unknown engine must exit 2")
	}
	if _, _, code := runMain(t, "cluster", "-alg", "bogus"); code != 2 {
		t.Error("unknown algorithm must exit 2")
	}
	if _, _, code := runMain(t, "cluster", "-nodes", "0"); code != 2 {
		t.Error("-nodes 0 must exit 2")
	}
	if _, _, code := runMain(t, "cluster", "-dist", "pareto"); code != 2 {
		t.Error("unknown distribution must exit 2")
	}
	if _, _, code := runMain(t, "cluster", "-json", "-csv"); code != 2 {
		t.Error("-json -csv must exit 2")
	}
	if _, _, code := runMain(t, "cluster", "-h"); code != 0 {
		t.Error("cluster -h must exit 0")
	}
}
