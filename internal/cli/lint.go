package cli

import (
	"io"

	"ssync/internal/analysis"
	"ssync/internal/analysis/suite"
)

// LintMain runs the repo's static-analysis suite — the same multichecker
// cmd/ssynclint ships and CI gates on — as an ssync subcommand, so a
// working tree can be checked without building a second binary.
func LintMain(argv []string, stdout, stderr io.Writer) int {
	return analysis.Main(suite.Analyzers(), argv, stdout, stderr)
}
