package cli

import (
	"flag"
	"fmt"
	"io"

	"ssync/internal/bench"
)

// LockbenchMain regenerates the paper's lock experiments: Figure 3
// (ticket lock implementations), Figure 4 (atomic operations), Figure 5
// (single lock), Figure 6 (uncontested acquisition by distance), Figure 7
// (512 locks) and Figure 8 (best lock per contention level).
func LockbenchMain(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lockbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.Int("fig", 5, "figure to regenerate: 3, 4, 5, 6, 7 or 8")
	platforms := fs.String("platform", "Opteron,Xeon,Niagara,Tilera", "comma-separated platform models")
	deadline := fs.Uint64("deadline", 0, "simulated cycles per configuration (0 = default)")
	if code, ok := parseArgs(fs, argv); !ok {
		return code
	}

	cfg := bench.DefaultConfig()
	if *deadline > 0 {
		cfg.Deadline = *deadline
	}

	if *fig == 3 {
		fmt.Fprintln(stdout, bench.FormatFigure(bench.Figure3(cfg)))
		return 0
	}
	for _, name := range splitList(*platforms) {
		p, code := platformOrExit("lockbench", name, stderr)
		if p == nil {
			return code
		}
		switch *fig {
		case 4:
			fmt.Fprintln(stdout, bench.FormatFigure(bench.Figure4(p, cfg)))
		case 5:
			fmt.Fprintln(stdout, bench.FormatFigure(bench.Figure5(p, cfg)))
		case 6:
			fmt.Fprintln(stdout, bench.FormatFigure6(p, bench.Figure6(p, cfg)))
		case 7:
			fmt.Fprintln(stdout, bench.FormatFigure(bench.Figure7(p, cfg)))
		case 8:
			for _, nLocks := range []int{4, 16, 32, 128} {
				fmt.Fprintln(stdout, bench.FormatFigure8(p, nLocks, bench.Figure8(p, nLocks, cfg)))
			}
		default:
			fmt.Fprintf(stderr, "lockbench: no figure %d (have 3-8)\n", *fig)
			return 2
		}
	}
	return 0
}
