package cli

import (
	"flag"
	"fmt"
	"io"

	"ssync/internal/bench"
)

// SshtbenchMain regenerates Figure 11: the ssht concurrent hash table
// under every lock algorithm and the message-passing mode, across the
// buckets × entries configurations.
func SshtbenchMain(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sshtbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	platforms := fs.String("platform", "Opteron,Xeon,Niagara,Tilera", "comma-separated platform models")
	buckets := fs.String("buckets", "12,512", "bucket counts")
	entries := fs.String("entries", "12,48", "entries per bucket")
	if code, ok := parseArgs(fs, argv); !ok {
		return code
	}

	bs, err := intList(*buckets)
	if err != nil {
		fmt.Fprintln(stderr, "sshtbench: bad -buckets:", err)
		return 2
	}
	es, err := intList(*entries)
	if err != nil {
		fmt.Fprintln(stderr, "sshtbench: bad -entries:", err)
		return 2
	}
	cfg := bench.DefaultConfig()
	for _, name := range splitList(*platforms) {
		p, code := platformOrExit("sshtbench", name, stderr)
		if p == nil {
			return code
		}
		for _, b := range bs {
			for _, e := range es {
				fmt.Fprintln(stdout, bench.FormatFigure11(p, b, e, bench.Figure11(p, b, e, cfg)))
			}
		}
	}
	return 0
}
