package cli

import (
	"bytes"
	"strings"
	"testing"
)

func TestLintList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := LintMain([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("lint -list = %d, stderr %q", code, errb.String())
	}
	for _, name := range []string{"atomicmix", "lockorder", "padcheck", "poolaudit"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("lint -list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestLintCleanPackage(t *testing.T) {
	var out, errb bytes.Buffer
	code := LintMain([]string{"-dir", "../..", "./internal/pad", "./internal/locks"}, &out, &errb)
	if code != 0 {
		t.Fatalf("lint = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run printed findings:\n%s", out.String())
	}
}
