package cli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ssync/internal/bench"
	"ssync/internal/core"
)

// FiguresMain regenerates every table and figure of the paper in one run
// — the per-experiment index of DESIGN.md — and writes the report to
// stdout or a file. This is the tool that produces the measured values.
func FiguresMain(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fs.SetOutput(stderr)
	id := fs.String("id", "", "run a single experiment id (default: all)")
	platform := fs.String("platform", "", "restrict to one platform model")
	out := fs.String("o", "", "write the report to a file instead of stdout")
	quick := fs.Bool("quick", false, "shorter simulated runs (noisier, much faster)")
	if code, ok := parseArgs(fs, argv); !ok {
		return code
	}

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.Config{Deadline: 80_000, LatencyOps: 40, Reps: 2}
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "figures:", err)
			return 1
		}
		defer f.Close()
		w = f
	}

	exps := core.Experiments()
	if *id != "" {
		e, err := core.ByID(*id)
		if err != nil {
			fmt.Fprintln(stderr, "figures:", err)
			return 2
		}
		exps = []core.Experiment{e}
	}

	fmt.Fprintf(w, "%s — regenerated evaluation\n\n", core.Version)
	for _, e := range exps {
		fmt.Fprintf(w, "== %s: %s ==\n\n", e.ID, e.Title)
		for _, pn := range e.Platforms {
			if *platform != "" && pn != *platform {
				continue
			}
			if err := e.Run(w, pn, cfg); err != nil {
				fmt.Fprintf(stderr, "figures: %s on %s: %v\n", e.ID, pn, err)
				return 1
			}
		}
	}
	return 0
}
