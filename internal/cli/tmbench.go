package cli

import (
	"flag"
	"fmt"
	"io"
	"sync"

	"ssync/internal/bench"
	"ssync/internal/tm"
	"ssync/internal/xrand"
)

// TmbenchMain regenerates the §8 software-transactional-memory result:
// TM2C's message-passing design versus the lock-based variant, under high
// and low contention — the outcome mirrors the hash table of Figure 11.
func TmbenchMain(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tmbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	platforms := fs.String("platform", "Opteron,Xeon,Niagara,Tilera", "comma-separated platform models")
	stripes := fs.String("stripes", "8,1024", "stripe counts (contention levels)")
	native := fs.Bool("native", false, "also run the native TM bank workload on this host")
	if code, ok := parseArgs(fs, argv); !ok {
		return code
	}

	stripeCounts, err := intList(*stripes)
	if err != nil {
		fmt.Fprintln(stderr, "tmbench: bad -stripes:", err)
		return 2
	}
	cfg := bench.DefaultConfig()
	for _, name := range splitList(*platforms) {
		p, code := platformOrExit("tmbench", name, stderr)
		if p == nil {
			return code
		}
		for _, n := range stripeCounts {
			fmt.Fprintf(stdout, "TM on %s, %d stripes:\n", p.Name, n)
			for _, r := range bench.TMExperiment(p, n, cfg) {
				fmt.Fprintf(stdout, "  %2d threads: locks %7.3f Mops/s   mp %7.3f Mops/s\n", r.Threads, r.LockMops, r.MPMops)
			}
			fmt.Fprintln(stdout)
		}
	}
	if *native {
		fmt.Fprintln(stdout, "native lock-based TM, bank workload (real goroutines):")
		runner := tm.NewLockBased(64)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := xrand.New(uint64(g) + 1)
				for i := 0; i < 20000; i++ {
					from, to := rng.Intn(64), rng.Intn(64)
					_ = runner.Run(func(tx tm.Tx) error {
						f := tx.Read(from)
						if f == 0 {
							tx.Write(from, 100)
							return nil
						}
						tx.Write(from, f-1)
						tx.Write(to, tx.Read(to)+1)
						return nil
					})
				}
			}()
		}
		wg.Wait()
		commits, aborts := runner.Stats()
		fmt.Fprintf(stdout, "  %d commits, %d aborts (%.1f%% abort rate)\n",
			commits, aborts, 100*float64(aborts)/float64(commits+aborts))
	}
	return 0
}
