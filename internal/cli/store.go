package cli

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"ssync/internal/harness"
	"ssync/internal/locks"
	"ssync/internal/stats"
	"ssync/internal/store"
	"ssync/internal/topo"
	"ssync/internal/workload"
)

// StoreMain implements `ssync store`: it builds a sharded KVS on the
// requested shard engine (locked, actor or optimistic — or all three in
// one comparison run) with the requested lock algorithm, serves it over
// the length-prefixed wire protocol on in-process pipe connections (or
// --local in-process handles), drives it with the scenario engine's
// ramp/steady phases, and emits the per-shard and total throughput
// through the harness emitters.
func StoreMain(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ssync store", flag.ContinueOnError)
	fs.SetOutput(stderr)
	alg := fs.String("alg", "ticket", "shard-lock algorithm (tas, ttas, ticket, array, mutex, mcs, clh, hclh, hticket)")
	engineSpec := fs.String("engine", "locked", "shard engine (locked, actor, optimistic), or all to compare every engine in one run")
	shards := fs.Int("shards", 16, "independently synchronized shards")
	buckets := fs.Int("buckets", 64, "buckets per shard")
	distSpec := fs.String("dist", "zipfian", "key distribution: uniform, zipfian, zipfian:<theta>")
	mixSpec := fs.String("mix", "95:5", "op mix get:put or get:put:scan percentages")
	clients := fs.Int("clients", 8, "steady-phase client connections")
	keys := fs.Uint64("keys", 16384, "key-space size")
	ops := fs.Int("ops", 20000, "steady-phase operations per client")
	valueSize := fs.Int("value", 64, "value size in bytes")
	scanLimit := fs.Int("scanlimit", 16, "entries per scan")
	preload := fs.Int("preload", -1, "keys preloaded before the run (-1 = half the key space)")
	seed := fs.Uint64("seed", 0, "workload RNG seed (0 = fixed default)")
	local := fs.Bool("local", false, "drive in-process handles instead of the wire protocol")
	placeSpec := fs.String("place", "none", "shard placement over the host topology (none, compact, scatter, auto)")
	batch := fs.Int("batch", 1, "ops per multi-op request (1 = scalar ops)")
	pipeline := fs.Int("pipeline", 1, "op groups each client keeps in flight (1 = lock-step)")
	jsonOut := fs.Bool("json", false, "emit JSON")
	csvOut := fs.Bool("csv", false, "emit CSV")
	if code, ok := parseArgs(fs, argv); !ok {
		return code
	}

	algorithm, err := lockAlgorithm(*alg)
	if err != nil {
		fmt.Fprintln(stderr, "ssync store:", err)
		return 2
	}
	allEngines := *engineSpec == "all"
	engines := store.Engines
	if !allEngines {
		eng, err := store.ParseEngine(*engineSpec)
		if err != nil {
			fmt.Fprintln(stderr, "ssync store:", err)
			return 2
		}
		engines = []store.Engine{eng}
	}
	dist, err := workload.ParseDist(*distSpec, *keys)
	if err != nil {
		fmt.Fprintln(stderr, "ssync store:", err)
		return 2
	}
	mix, err := workload.ParseMix(*mixSpec)
	if err != nil {
		fmt.Fprintln(stderr, "ssync store:", err)
		return 2
	}
	format := "table"
	switch {
	case *jsonOut && *csvOut:
		fmt.Fprintln(stderr, "ssync store: -json and -csv are mutually exclusive")
		return 2
	case *jsonOut:
		format = "json"
	case *csvOut:
		format = "csv"
	}
	emitter, _ := harness.EmitterFor(format)
	if *preload < 0 {
		*preload = int(*keys / 2)
	}
	if *batch < 1 {
		*batch = 1
	}
	if *batch > store.MaxBatchOps {
		fmt.Fprintf(stderr, "ssync store: -batch %d exceeds the wire limit of %d ops per frame\n",
			*batch, store.MaxBatchOps)
		return 2
	}
	if *pipeline < 1 {
		*pipeline = 1
	}
	pipelined := !*local && (*batch > 1 || *pipeline > 1)

	policy, err := topo.ParsePolicy(*placeSpec)
	if err != nil {
		fmt.Fprintln(stderr, "ssync store:", err)
		return 2
	}
	var placement *topo.Placement
	if policy.Pins() {
		placement = topo.NewPlacement(policy, nil) // nil: discover the host
		fmt.Fprintf(stderr, "placement: %s over %s\n", policy, placement.Topo)
	}

	opt := store.Options{
		Shards:     *shards,
		Buckets:    *buckets,
		Lock:       algorithm,
		MaxThreads: *clients + 2,
		Placement:  placement,
	}
	scenario := workload.Scenario{
		Dist:      dist,
		Keys:      *keys,
		Mix:       mix,
		ValueSize: *valueSize,
		ScanLimit: *scanLimit,
		Phases:    workload.RampSteady(*clients, *ops),
		Seed:      *seed,
		Batch:     *batch,
		Pipeline:  *pipeline,
	}

	// experimentFor names a row set: single locked-engine runs keep the
	// legacy store/<alg> id; engine-qualified runs (and every all-mode
	// row) are store-engine/<engine>/<alg>, with the lock-free actor
	// engine dropping the meaningless lock suffix.
	experimentFor := func(eng store.Engine) string {
		switch {
		case eng == store.EngineActor:
			return "store-engine/actor"
		case eng == store.EngineLocked && !allEngines:
			return "store/" + strings.ToLower(string(algorithm))
		default:
			return fmt.Sprintf("store-engine/%s/%s", eng, strings.ToLower(string(algorithm)))
		}
	}

	// runOne builds a fresh store on eng, preloads it, runs the scenario
	// and shapes the result rows (per-shard rows only when a single
	// engine is shown — an all-engine table keeps to the totals).
	runOne := func(eng store.Engine) ([]harness.Result, bool) {
		o := opt
		o.Engine = eng
		st := store.New(o)
		defer st.Close()
		srv := store.NewServer(st, 2)
		dial := func(c int) (workload.Conn, error) {
			switch {
			case *local:
				return store.Driver{C: st.NewLocalConn(c % 2)}, nil
			case pipelined:
				return store.Driver{C: srv.PipeAsyncClient(*pipeline)}, nil
			default:
				return store.Driver{C: srv.PipeClient()}, nil
			}
		}
		// Preload before the counter snapshot, so per-shard throughput
		// reflects only the measured phases.
		if *preload > 0 {
			c, err := dial(0)
			if err == nil {
				err = workload.Preload(c, *preload, *valueSize)
				c.Close()
			}
			if err != nil {
				fmt.Fprintf(stderr, "ssync store: %s preload: %v\n", eng, err)
				return nil, false
			}
		}
		mon := st.NewHandle(0)
		before := mon.ShardStats()
		phases, err := workload.Run(scenario, dial)
		after := mon.ShardStats()
		if err != nil {
			fmt.Fprintf(stderr, "ssync store: %s: %v\n", eng, err)
			return nil, false
		}

		transport := "wire"
		switch {
		case *local:
			transport = "local"
		case pipelined:
			transport = fmt.Sprintf("pipelined wire (depth %d × batch %d)", *pipeline, *batch)
		}
		fmt.Fprintf(stderr, "%s over %s, %s keys, mix %s:\n", st, transport, dist.Name(), mix)
		var total time.Duration
		for _, ph := range phases {
			fmt.Fprintln(stderr, " ", ph)
			total += ph.Duration
		}
		experiment := experimentFor(eng)
		if allEngines {
			return summaryResults(experiment, *clients, phases), true
		}
		return shardResults(experiment, *clients, phases, before, after, total), true
	}

	var results []harness.Result

	// A single-engine pipelined run carries its own lock-step baseline:
	// the same scenario over one-in-flight wire clients against a fresh
	// store, so the emitted table shows what depth×batch bought on this
	// exact engine/alg/shard config. (All-mode compares engines instead.)
	if pipelined && !allEngines {
		o := opt
		o.Engine = engines[0]
		base := store.New(o)
		baseSrv := store.NewServer(base, 2)
		baseDial := func(c int) (workload.Conn, error) {
			return store.Driver{C: baseSrv.PipeClient()}, nil
		}
		baseScenario := scenario
		baseScenario.Batch, baseScenario.Pipeline = 1, 1
		baseScenario.Preload = *preload
		basePhases, err := workload.Run(baseScenario, baseDial)
		base.Close()
		if err != nil {
			fmt.Fprintln(stderr, "ssync store: lock-step baseline:", err)
			return 1
		}
		baseSteady := basePhases[len(basePhases)-1]
		fmt.Fprintf(stderr, "%s over wire (lock-step baseline):\n", base)
		for _, ph := range basePhases {
			fmt.Fprintln(stderr, " ", ph)
		}
		results = append(results,
			oneResult(experimentFor(engines[0]), *clients, "lockstep wire Kops/s", baseSteady.Kops()))
	}

	for _, eng := range engines {
		rows, ok := runOne(eng)
		if !ok {
			return 1
		}
		results = append(results, rows...)
	}
	if err := emitter.Emit(stdout, results); err != nil {
		fmt.Fprintln(stderr, "ssync store:", err)
		return 1
	}
	return 0
}

// oneResult shapes a single measurement into a harness result row.
func oneResult(experiment string, clients int, metric string, v float64) harness.Result {
	var o stats.Online
	o.Add(v)
	return harness.Result{
		Experiment: experiment,
		Platform:   harness.Native,
		Threads:    clients,
		Metric:     metric,
		Stats:      o.Summary(),
	}
}

// summaryResults shapes the steady-phase totals (no per-shard rows).
func summaryResults(experiment string, clients int, phases []workload.PhaseResult) []harness.Result {
	steady := phases[len(phases)-1]
	results := []harness.Result{oneResult(experiment, clients, "total Kops/s", steady.Kops())}
	if steady.Hits+steady.Misses > 0 {
		results = append(results, oneResult(experiment, clients, "hit %",
			100*float64(steady.Hits)/float64(steady.Hits+steady.Misses)))
	}
	return results
}

// shardResults shapes the run into harness results: steady-phase totals
// plus per-shard throughput over the whole run, one metric per shard.
func shardResults(experiment string, clients int, phases []workload.PhaseResult,
	before, after []store.Counters, total time.Duration) []harness.Result {
	results := summaryResults(experiment, clients, phases)
	secs := total.Seconds()
	for i := range after {
		delta := after[i].Sub(before[i])
		kops := 0.0
		if secs > 0 {
			kops = float64(delta.Total()) / secs / 1e3
		}
		results = append(results, oneResult(experiment, clients, fmt.Sprintf("shard%02d Kops/s", i), kops))
	}
	return results
}

// lockAlgorithm resolves a case-insensitive algorithm name.
func lockAlgorithm(name string) (locks.Algorithm, error) {
	for _, alg := range locks.All {
		if strings.EqualFold(string(alg), name) {
			return alg, nil
		}
	}
	return "", fmt.Errorf("unknown lock algorithm %q (have %v)", name, locks.All)
}
