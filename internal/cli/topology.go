package cli

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"ssync/internal/arch"
)

// TopologyMain prints the platform models the simulator uses: core
// counts, memory nodes, distance-class matrices and the calibrated local
// latencies — a quick way to inspect what "Opteron" or "Tilera" means in
// every figure of this repository.
func TopologyMain(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("topology", flag.ContinueOnError)
	fs.SetOutput(stderr)
	platforms := fs.String("platform", strings.Join(arch.Names(), ","), "comma-separated platform models")
	if code, ok := parseArgs(fs, argv); !ok {
		return code
	}

	for _, name := range splitList(*platforms) {
		p, code := platformOrExit("topology", name, stderr)
		if p == nil {
			return code
		}
		fmt.Fprintf(stdout, "%s — %d cores, %d memory nodes, %.2f GHz\n", p.Name, p.NumCores, p.NumNodes, p.ClockGHz)
		fmt.Fprintf(stdout, "  local latencies: L1 %d, L2 %d, LLC %d, RAM %d cycles\n", p.L1, p.L2, p.LLC, p.RAM)
		fmt.Fprintf(stdout, "  distance classes: %s\n", strings.Join(p.DistNames, ", "))
		var quirks []string
		if p.IncompleteDirectory {
			quirks = append(quirks, "incomplete probe filter (MOESI, broadcast on shared stores)")
		}
		if p.InclusiveLLC {
			quirks = append(quirks, "inclusive LLC (intra-socket locality)")
		}
		if p.Uniform {
			quirks = append(quirks, "uniform crossbar LLC")
		}
		if p.HardwareMP {
			quirks = append(quirks, "hardware message passing (iMesh)")
		}
		if len(quirks) > 0 {
			fmt.Fprintf(stdout, "  quirks: %s\n", strings.Join(quirks, "; "))
		}
		// Node-distance matrix via one representative core per node.
		var reps []int
		seen := map[int]bool{}
		for c := 0; c < p.NumCores && len(reps) < p.NumNodes; c++ {
			if n := p.NodeOf(c); !seen[n] {
				seen[n] = true
				reps = append(reps, c)
			}
		}
		if p.NumNodes > 1 {
			fmt.Fprintf(stdout, "  node distance classes (via representative cores):\n      ")
			for j := range reps {
				fmt.Fprintf(stdout, "%4d", j)
			}
			fmt.Fprintln(stdout)
			for i, a := range reps {
				fmt.Fprintf(stdout, "  %4d", i)
				for _, b := range reps {
					fmt.Fprintf(stdout, "%4d", p.DistClass(a, b))
				}
				fmt.Fprintln(stdout)
			}
		}
		fmt.Fprintln(stdout)
	}
	return 0
}
