package cli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ssync/internal/harness"
)

// BenchMain implements `ssync bench`: the pinned performance-trajectory
// sweep (engine × {1,4} nodes × uniform/zipfian, fixed seed) behind the
// committed BENCH_<pr>.json references and their CI regression gate.
//
//	ssync bench -emit BENCH_8.json -pr 8        # (re)generate a reference
//	ssync bench -check BENCH_8.json -out f.json # rerun + compare, exit 1 on regression
//	ssync bench                                 # run once, JSON to stdout
//
// -check reproduces the reference's own run configuration (seed, reps,
// short scaling) from its self-describing header, so the comparison is
// always like-for-like regardless of the flags the CI leg passes.
func BenchMain(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ssync bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	emit := fs.String("emit", "", "write the sweep as a reference file at this path")
	check := fs.String("check", "", "rerun the sweep pinned to this reference file and fail on regression")
	out := fs.String("out", "", "with -check: also write the fresh results to this path (the CI artifact)")
	pr := fs.Int("pr", 0, "PR number recorded in the emitted file header")
	reps := fs.Int("reps", 0, "measured repetitions per cell (0 = default: 5, or 3 with -short)")
	short := fs.Bool("short", false, "CI-scaled sizes: fewer ops and repetitions per cell")
	quiet := fs.Bool("q", false, "suppress per-cell progress lines")
	if code, ok := parseArgs(fs, argv); !ok {
		return code
	}
	if *emit != "" && *check != "" {
		fmt.Fprintln(stderr, "ssync bench: -emit and -check are mutually exclusive")
		return 2
	}

	cfg := harness.BenchConfig{PR: *pr, Reps: *reps, Short: *short}
	if !*quiet {
		cfg.Log = stderr
	}

	var ref *harness.BenchFile
	if *check != "" {
		rf, err := os.Open(*check)
		if err != nil {
			fmt.Fprintln(stderr, "ssync bench:", err)
			return 2
		}
		ref, err = harness.ReadBench(rf)
		rf.Close()
		if err != nil {
			fmt.Fprintln(stderr, "ssync bench:", err)
			return 2
		}
		// Pin the rerun to the reference's recorded configuration.
		cfg.PR, cfg.Reps, cfg.Short = ref.PR, ref.Reps, ref.Short
	}

	fresh, err := harness.RunBench(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "ssync bench:", err)
		return 1
	}

	writeTo := func(path string) int {
		f, err := os.Create(path)
		if err == nil {
			err = harness.WriteBench(f, fresh)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(stderr, "ssync bench:", err)
			return 1
		}
		return 0
	}

	switch {
	case *emit != "":
		if code := writeTo(*emit); code != 0 {
			return code
		}
		fmt.Fprintf(stderr, "wrote %s (%d rows)\n", *emit, len(fresh.Rows))
		return 0
	case *check != "":
		if *out != "" {
			if code := writeTo(*out); code != 0 {
				return code
			}
		}
		violations, err := harness.CompareBench(ref, fresh)
		if err != nil {
			fmt.Fprintln(stderr, "ssync bench:", err)
			return 2
		}
		if len(violations) > 0 {
			fmt.Fprintf(stderr, "ssync bench: %d regression(s) against %s:\n", len(violations), *check)
			for _, v := range violations {
				fmt.Fprintln(stderr, " ", v)
			}
			return 1
		}
		fmt.Fprintf(stderr, "bench gate passed: %d rows within noise bounds of %s\n", len(fresh.Rows), *check)
		return 0
	default:
		if err := harness.WriteBench(stdout, fresh); err != nil {
			fmt.Fprintln(stderr, "ssync bench:", err)
			return 1
		}
		return 0
	}
}
