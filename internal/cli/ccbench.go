package cli

import (
	"flag"
	"fmt"
	"io"

	"ssync/internal/bench"
	"ssync/internal/ccbench"
)

// CcbenchMain regenerates the paper's Tables 2 and 3: the latencies of
// the cache-coherence protocol for loads, stores and atomic operations as
// a function of MESI state and distance, on each simulated platform.
func CcbenchMain(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	platforms := fs.String("platform", "Opteron,Xeon,Niagara,Tilera", "comma-separated platform models")
	reps := fs.Int("reps", 5, "repetitions per case (fresh line each)")
	local := fs.Bool("local", false, "print only Table 3 (local latencies)")
	cases := fs.Bool("cases", false, "list the supported microbenchmark cases and exit")
	if code, ok := parseArgs(fs, argv); !ok {
		return code
	}

	for _, name := range splitList(*platforms) {
		p, code := platformOrExit("ccbench", name, stderr)
		if p == nil {
			return code
		}
		if *cases {
			fmt.Fprintf(stdout, "%s: %d cases\n", p.Name, len(ccbench.Cases(p)))
			for _, c := range ccbench.Cases(p) {
				fmt.Fprintf(stdout, "  %s\n", c)
			}
			continue
		}
		fmt.Fprintln(stdout, bench.FormatTable3(p))
		if !*local {
			fmt.Fprintln(stdout, bench.FormatTable2(p, *reps))
		}
	}
	return 0
}
