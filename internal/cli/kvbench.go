package cli

import (
	"flag"
	"fmt"
	"io"

	"ssync/internal/bench"
	"ssync/internal/kvs"
	"ssync/internal/locks"
)

// KvbenchMain regenerates Figure 12: the Memcached-style key-value store
// under the set-only memslap workload with different lock algorithms, and
// the §6.4 get-only control where the lock choice is irrelevant.
func KvbenchMain(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kvbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	platforms := fs.String("platform", "Opteron,Xeon,Niagara,Tilera", "comma-separated platform models")
	test := fs.String("test", "set", "workload: set (write-heavy) or get (read-only)")
	native := fs.Bool("native", false, "also drive the native Go store with real goroutines")
	if code, ok := parseArgs(fs, argv); !ok {
		return code
	}

	get := *test == "get"
	cfg := bench.DefaultConfig()
	for _, name := range splitList(*platforms) {
		p, code := platformOrExit("kvbench", name, stderr)
		if p == nil {
			return code
		}
		fmt.Fprintln(stdout, bench.FormatFigure12(p, bench.Figure12(p, get, cfg)))
	}
	if *native {
		fmt.Fprintln(stdout, "native store (real goroutines on this host):")
		for _, alg := range []locks.Algorithm{locks.MUTEX, locks.TAS, locks.TICKET, locks.MCS} {
			s := kvs.New(kvs.Options{Lock: alg, Shards: 64})
			w := kvs.DefaultWorkload(!get)
			w.Clients = 4
			w.OpsPerClient = 20000
			res := kvs.Run(s, w)
			fmt.Fprintf(stdout, "  %-8s %s\n", alg, res)
		}
	}
	return 0
}
