package cli

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// runMain invokes the dispatcher and returns stdout, stderr and the exit
// code.
func runMain(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := Main(args, &out, &errb)
	return out.String(), errb.String(), code
}

// result mirrors the harness JSON schema the CLI emits.
type result struct {
	Experiment string `json:"experiment"`
	Platform   string `json:"platform"`
	Threads    int    `json:"threads"`
	Metric     string `json:"metric"`
	Stats      struct {
		N    uint64  `json:"n"`
		Mean float64 `json:"mean"`
	} `json:"stats"`
}

// TestRunParallelJSON is the acceptance check: one ssync binary runs a
// registered experiment over a platform × thread grid with sharded
// parallel execution and machine-readable JSON output.
func TestRunParallelJSON(t *testing.T) {
	out, errOut, code := runMain(t,
		"run", "locks/single",
		"-platform", "xeon", "-threads", "1,2,10",
		"-parallel", "8", "-reps", "2", "-warmup", "0",
		"-deadline", "20000", "-latencyops", "8", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	var results []result
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	threads := map[int]bool{}
	for _, r := range results {
		if r.Experiment != "locks/single" || r.Platform != "Xeon" {
			t.Fatalf("unexpected result %+v", r)
		}
		if r.Stats.N != 2 {
			t.Fatalf("reps not aggregated: %+v", r)
		}
		threads[r.Threads] = true
	}
	for _, n := range []int{1, 2, 10} {
		if !threads[n] {
			t.Errorf("thread count %d missing from the grid", n)
		}
	}
}

// TestRunParallelMatchesSequential: the simulator is deterministic, so
// the worker-pool size must not change the emitted bytes.
func TestRunParallelMatchesSequential(t *testing.T) {
	args := []string{"run", "ticket/variants", "-threads", "1,6",
		"-deadline", "20000", "-latencyops", "8", "-warmup", "0", "-json"}
	seq, _, code := runMain(t, append(args, "-parallel", "1")...)
	if code != 0 {
		t.Fatal("sequential run failed")
	}
	par, _, code := runMain(t, append(args, "-parallel", "6")...)
	if code != 0 {
		t.Fatal("parallel run failed")
	}
	if seq != par {
		t.Fatal("parallel and sequential runs emitted different bytes")
	}
}

func TestRunCSVAndTable(t *testing.T) {
	csvOut, _, code := runMain(t, "run", "tm/high", "-platform", "Tilera", "-threads", "2",
		"-deadline", "20000", "-warmup", "0", "-csv")
	if code != 0 {
		t.Fatal("csv run failed")
	}
	if !strings.HasPrefix(csvOut, "experiment,platform,threads,metric,") {
		t.Fatalf("missing CSV header: %s", csvOut)
	}
	if !strings.Contains(csvOut, "tm/high,Tilera,2,locks,") {
		t.Fatalf("missing CSV row: %s", csvOut)
	}
	tblOut, _, code := runMain(t, "run", "tm/high", "-platform", "Tilera", "-threads", "2",
		"-deadline", "20000", "-warmup", "0")
	if code != 0 {
		t.Fatal("table run failed")
	}
	for _, want := range []string{"tm/high", "Tilera", "threads", "locks", "mp"} {
		if !strings.Contains(tblOut, want) {
			t.Errorf("table output missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, _, code := runMain(t, "run", "no/such"); code == 0 {
		t.Error("unknown experiment must fail")
	}
	if _, _, code := runMain(t, "run", "locks/single", "-platform", "PDP-11"); code == 0 {
		t.Error("unknown platform must fail")
	}
	if _, _, code := runMain(t, "run", "locks/single", "-json", "-csv"); code == 0 {
		t.Error("-json -csv must fail")
	}
	// A simulated experiment restricted to a platform it does not cover
	// must fail loudly, not emit an empty result set.
	if out, _, code := runMain(t, "run", "locks/single", "-platform", "native"); code == 0 {
		t.Errorf("empty experiment×platform intersection must fail, got output %q", out)
	}
}

func TestHelpExitsZero(t *testing.T) {
	for _, args := range [][]string{
		{"run", "-h"}, {"list", "-h"}, {"lockbench", "-h"}, {"ccbench", "-h"},
		{"mpbench", "-h"}, {"sshtbench", "-h"}, {"tmbench", "-h"},
		{"kvbench", "-h"}, {"figures", "-h"}, {"topology", "-h"},
	} {
		if _, _, code := runMain(t, args...); code != 0 {
			t.Errorf("%v exited %d, want 0", args, code)
		}
	}
}

func TestList(t *testing.T) {
	out, _, code := runMain(t, "list")
	if code != 0 {
		t.Fatal("list failed")
	}
	for _, want := range []string{"locks/single", "native/ssht", "kvs/set", "platforms:"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestDispatcher(t *testing.T) {
	if _, _, code := runMain(t, "help"); code != 0 {
		t.Error("help must succeed")
	}
	if _, errOut, code := runMain(t, "no-such-tool"); code != 2 || !strings.Contains(errOut, "unknown command") {
		t.Error("unknown command must exit 2 with a message")
	}
	if _, _, code := runMain(t); code != 2 {
		t.Error("no arguments must exit 2")
	}
}

// TestLegacyToolsStillWork drives each retired binary's entry point
// through the dispatcher on its cheapest configuration.
func TestLegacyToolsStillWork(t *testing.T) {
	out, errOut, code := runMain(t, "topology", "-platform", "Tilera")
	if code != 0 || !strings.Contains(out, "Tilera — 36 cores") {
		t.Errorf("topology: exit %d, %s%s", code, errOut, out)
	}
	out, _, code = runMain(t, "ccbench", "-platform", "Niagara", "-local")
	if code != 0 || !strings.Contains(out, "Table 3") {
		t.Errorf("ccbench -local failed: %s", out)
	}
	out, _, code = runMain(t, "lockbench", "-fig", "3", "-deadline", "20000")
	if code != 0 || !strings.Contains(out, "Figure 3") {
		t.Errorf("lockbench -fig 3 failed: %s", out)
	}
	out, _, code = runMain(t, "figures", "-id", "T3", "-platform", "Tilera")
	if code != 0 || !strings.Contains(out, "Table 3 — Tilera") {
		t.Errorf("figures -id T3 failed: %s", out)
	}
	if _, _, code = runMain(t, "lockbench", "-fig", "99"); code != 2 {
		t.Error("lockbench with a bad figure must exit 2")
	}
	if _, _, code = runMain(t, "ccbench", "-platform", "PDP-11"); code != 2 {
		t.Error("ccbench with a bad platform must exit 2")
	}
}
