package cli

import (
	"flag"
	"fmt"
	"io"
	"time"

	"ssync/internal/cluster"
	"ssync/internal/harness"
	"ssync/internal/store"
	"ssync/internal/topo"
	"ssync/internal/workload"
)

// ClusterMain implements `ssync cluster`: it spins up an N-node store
// cluster (every node a full wire server on the chosen shard engine and
// lock algorithm), drives it with the scenario engine through
// consistent-hash routed async clients, runs the same scenario against
// a single-node cluster as the baseline, and emits both — routed
// multi-node rows and the single-node baseline — from the one
// invocation through the standard JSON/CSV/table emitters.
func ClusterMain(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ssync cluster", flag.ContinueOnError)
	fs.SetOutput(stderr)
	nodes := fs.Int("nodes", 4, "cluster node count")
	vnodes := fs.Int("vnodes", cluster.DefaultVnodes, "ring virtual points per node")
	engineSpec := fs.String("engine", "locked", "shard engine per node (locked, actor, optimistic)")
	alg := fs.String("alg", "ticket", "shard-lock algorithm (tas, ttas, ticket, array, mutex, mcs, clh, hclh, hticket)")
	shards := fs.Int("shards", 8, "shards per node")
	distSpec := fs.String("dist", "zipfian", "key distribution: uniform, zipfian, zipfian:<theta>")
	mixSpec := fs.String("mix", "95:5", "op mix get:put or get:put:scan percentages")
	clients := fs.Int("clients", 8, "steady-phase client connections")
	keys := fs.Uint64("keys", 16384, "key-space size")
	ops := fs.Int("ops", 20000, "steady-phase operations per client")
	valueSize := fs.Int("value", 64, "value size in bytes")
	scanLimit := fs.Int("scanlimit", 16, "entries per scan")
	preload := fs.Int("preload", -1, "keys preloaded before the run (-1 = half the key space)")
	seed := fs.Uint64("seed", 0, "workload RNG seed (0 = fixed default)")
	batch := fs.Int("batch", 4, "ops per routed op group (1 = scalar ops)")
	pipeline := fs.Int("pipeline", 8, "op groups each client keeps in flight (1 = lock-step)")
	placeSpec := fs.String("place", "none", "shard placement per node over the host topology (none, compact, scatter, auto); nodes stripe across the host's memory nodes")
	resize := fs.Bool("resize", false, "measure a live resize (grow then shrink) under load instead of the throughput scenario")
	window := fs.Duration("window", 300*time.Millisecond, "with -resize: steady and post-resize measurement window")
	jsonOut := fs.Bool("json", false, "emit JSON")
	csvOut := fs.Bool("csv", false, "emit CSV")
	if code, ok := parseArgs(fs, argv); !ok {
		return code
	}

	if *nodes < 1 {
		fmt.Fprintln(stderr, "ssync cluster: -nodes must be at least 1")
		return 2
	}
	algorithm, err := lockAlgorithm(*alg)
	if err != nil {
		fmt.Fprintln(stderr, "ssync cluster:", err)
		return 2
	}
	eng, err := store.ParseEngine(*engineSpec)
	if err != nil {
		fmt.Fprintln(stderr, "ssync cluster:", err)
		return 2
	}
	dist, err := workload.ParseDist(*distSpec, *keys)
	if err != nil {
		fmt.Fprintln(stderr, "ssync cluster:", err)
		return 2
	}
	mix, err := workload.ParseMix(*mixSpec)
	if err != nil {
		fmt.Fprintln(stderr, "ssync cluster:", err)
		return 2
	}
	format := "table"
	switch {
	case *jsonOut && *csvOut:
		fmt.Fprintln(stderr, "ssync cluster: -json and -csv are mutually exclusive")
		return 2
	case *jsonOut:
		format = "json"
	case *csvOut:
		format = "csv"
	}
	emitter, _ := harness.EmitterFor(format)
	policy, err := topo.ParsePolicy(*placeSpec)
	if err != nil {
		fmt.Fprintln(stderr, "ssync cluster:", err)
		return 2
	}
	if policy.Pins() {
		fmt.Fprintf(stderr, "placement: %s, nodes striped over %s\n", policy, topo.Discover())
	}
	if *preload < 0 {
		*preload = int(*keys / 2)
	}
	if *batch < 1 {
		*batch = 1
	}
	if *batch > store.MaxBatchOps {
		fmt.Fprintf(stderr, "ssync cluster: -batch %d exceeds the wire limit of %d ops per frame\n",
			*batch, store.MaxBatchOps)
		return 2
	}
	if *pipeline < 1 {
		*pipeline = 1
	}

	// -resize: instead of the throughput scenario, measure a live
	// membership change — grow by one node, then retire an original
	// member — under continuous client load, and report what the
	// migration cost: steady vs dip throughput, recovery time, and the
	// blocking duration of the membership calls themselves.
	if *resize {
		experiment := fmt.Sprintf("migrate/%dx%s", *nodes, eng)
		res, err := harness.MigrateBench(harness.MigrateBenchConfig{
			Nodes:     *nodes,
			Vnodes:    *vnodes,
			Engine:    eng,
			Lock:      algorithm,
			Shards:    *shards,
			Clients:   *clients,
			Keys:      *keys,
			Preload:   *preload,
			ValueSize: *valueSize,
			Steady:    *window,
			Remove:    *nodes > 1,
		})
		if err != nil {
			fmt.Fprintln(stderr, "ssync cluster:", err)
			return 1
		}
		fmt.Fprintf(stderr, "resize %d→%d nodes (%s engine): moved %d of %d keys, add %.1fms",
			*nodes, *nodes+1, eng, res.Moved, *keys, res.AddMs)
		if *nodes > 1 {
			fmt.Fprintf(stderr, ", remove %.1fms", res.RemoveMs)
		}
		fmt.Fprintln(stderr)
		results := []harness.Result{
			oneResult(experiment, *clients, "steady Kops/s", res.SteadyKops),
			oneResult(experiment, *clients, "dip Kops/s", res.DipKops),
			oneResult(experiment, *clients, "dip %", res.DipPct),
			oneResult(experiment, *clients, "recovery ms", res.RecoveryMs),
			oneResult(experiment, *clients, "add ms", res.AddMs),
		}
		if *nodes > 1 {
			results = append(results, oneResult(experiment, *clients, "remove ms", res.RemoveMs))
		}
		if err := emitter.Emit(stdout, results); err != nil {
			fmt.Fprintln(stderr, "ssync cluster:", err)
			return 1
		}
		return 0
	}

	experiment := fmt.Sprintf("cluster/%dx%s", *nodes, eng)
	storeOpt := store.Options{
		Shards:     *shards,
		Engine:     eng,
		Lock:       algorithm,
		MaxThreads: *clients + 2,
	}
	scenario := workload.Scenario{
		Dist:      dist,
		Keys:      *keys,
		Mix:       mix,
		ValueSize: *valueSize,
		ScanLimit: *scanLimit,
		Phases:    workload.RampSteady(*clients, *ops),
		Seed:      *seed,
		Batch:     *batch,
		Pipeline:  *pipeline,
	}

	// runOne builds a fresh n-node cluster, preloads it through a routed
	// client, runs the scenario and returns the phase results plus the
	// per-node operation-count deltas over the measured window.
	runOne := func(n int) ([]workload.PhaseResult, []uint64, time.Duration, error) {
		c := cluster.New(cluster.Options{Nodes: n, Vnodes: *vnodes, Store: storeOpt, Place: policy})
		defer c.Close()
		dial := func(int) (workload.Conn, error) {
			return store.Driver{C: c.Dial(*pipeline)}, nil
		}
		if *preload > 0 {
			conn, err := dial(0)
			if err == nil {
				err = workload.Preload(conn, *preload, *valueSize)
				conn.Close()
			}
			if err != nil {
				return nil, nil, 0, fmt.Errorf("preload: %w", err)
			}
		}
		before := make([]uint64, n)
		for i := 0; i < n; i++ {
			before[i] = nodeOps(c.Store(i))
		}
		phases, err := workload.Run(scenario, dial)
		if err != nil {
			return nil, nil, 0, err
		}
		deltas := make([]uint64, n)
		for i := 0; i < n; i++ {
			deltas[i] = nodeOps(c.Store(i)) - before[i]
		}
		var total time.Duration
		fmt.Fprintf(stderr, "%s over routed wire (depth %d × batch %d), %s keys, mix %s:\n",
			c, *pipeline, *batch, dist.Name(), mix)
		for _, ph := range phases {
			fmt.Fprintln(stderr, " ", ph)
			total += ph.Duration
		}
		return phases, deltas, total, nil
	}

	var results []harness.Result

	// The single-node baseline: the same scenario, engine, locks and
	// client shape against one node, from this same invocation — the row
	// every multi-node number is read against.
	if *nodes > 1 {
		basePhases, _, _, err := runOne(1)
		if err != nil {
			fmt.Fprintln(stderr, "ssync cluster: single-node baseline:", err)
			return 1
		}
		baseSteady := basePhases[len(basePhases)-1]
		results = append(results,
			oneResult(experiment, *clients, "single-node baseline Kops/s", baseSteady.Kops()))
	}

	phases, deltas, total, err := runOne(*nodes)
	if err != nil {
		fmt.Fprintln(stderr, "ssync cluster:", err)
		return 1
	}
	results = append(results, summaryResults(experiment, *clients, phases)...)
	secs := total.Seconds()
	for i, d := range deltas {
		kops := 0.0
		if secs > 0 {
			kops = float64(d) / secs / 1e3
		}
		results = append(results, oneResult(experiment, *clients, fmt.Sprintf("node%02d Kops/s", i), kops))
	}
	if err := emitter.Emit(stdout, results); err != nil {
		fmt.Fprintln(stderr, "ssync cluster:", err)
		return 1
	}
	return 0
}

// nodeOps sums a node store's operation counters across its shards.
func nodeOps(st *store.Store) uint64 {
	h := st.NewHandle(0)
	total := uint64(0)
	for _, c := range h.ShardStats() {
		total += c.Total()
	}
	return total
}
