// Package stats provides small online statistics helpers used by the
// benchmark harnesses to summarise latency samples the way the paper does
// (mean of repetitions, standard deviation as a sanity bound).
package stats

import (
	"math"
	"sort"
)

// Online accumulates mean and variance using Welford's algorithm.
type Online struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds a sample into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of samples.
func (o *Online) N() uint64 { return o.n }

// Mean returns the sample mean (0 with no samples).
func (o *Online) Mean() float64 { return o.mean }

// Min returns the smallest sample (0 with no samples).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest sample (0 with no samples).
func (o *Online) Max() float64 { return o.max }

// Variance returns the unbiased sample variance (0 with <2 samples).
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Stddev returns the sample standard deviation.
func (o *Online) Stddev() float64 { return math.Sqrt(o.Variance()) }

// RelStddev returns stddev/mean, the paper's "<3% standard deviation"
// quality criterion; it returns 0 when the mean is 0.
func (o *Online) RelStddev() float64 {
	if o.mean == 0 {
		return 0
	}
	return o.Stddev() / math.Abs(o.mean)
}

// Round returns x rounded to the given number of decimal places.
// Emitted statistics are rounded to a stable precision so committed
// reference files (BENCH_*.json) diff cleanly instead of churning in
// the 15th significant digit on every regeneration.
func Round(x float64, places int) float64 {
	p := math.Pow(10, float64(places))
	r := math.Round(x*p) / p
	if r == 0 {
		return 0 // normalise -0
	}
	return r
}

// Median returns the middle value of the samples (mean of the two
// middle values for even n, 0 for none). The input is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// MAD returns the median absolute deviation from the median, the robust
// spread estimate the benchmark regression gate derives its noise
// tolerance from: unlike stddev it is not inflated by the occasional
// scheduler-induced outlier repetition.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - m)
	}
	return Median(devs)
}

// Summary is a frozen snapshot of an accumulator, the shape experiment
// runners report per metric.
type Summary struct {
	N      uint64  `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Summary freezes the accumulator's current state.
func (o *Online) Summary() Summary {
	return Summary{N: o.n, Mean: o.Mean(), Stddev: o.Stddev(), Min: o.Min(), Max: o.Max()}
}
