package stats

import (
	"math"
	"testing"
)

func TestMeanAndStddev(t *testing.T) {
	var o Online
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Fatalf("N = %d", o.N())
	}
	if math.Abs(o.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", o.Mean())
	}
	// Sample (unbiased) stddev of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(o.Stddev()-want) > 1e-12 {
		t.Errorf("Stddev = %v, want %v", o.Stddev(), want)
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", o.Min(), o.Max())
	}
}

func TestEmptyAndSingle(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Stddev() != 0 || o.RelStddev() != 0 {
		t.Error("empty accumulator must report zeros")
	}
	o.Add(42)
	if o.Mean() != 42 || o.Variance() != 0 {
		t.Error("single sample: mean 42, variance 0")
	}
	if o.Min() != 42 || o.Max() != 42 {
		t.Error("single sample min/max")
	}
}

func TestMedianAndMAD(t *testing.T) {
	if Median(nil) != 0 || MAD(nil) != 0 {
		t.Error("empty slices must report 0")
	}
	if got := Median([]float64{5}); got != 5 {
		t.Errorf("Median of one = %v", got)
	}
	// Odd length, unsorted input, input must stay unmodified.
	xs := []float64{9, 1, 5}
	if got := Median(xs); got != 5 {
		t.Errorf("Median = %v, want 5", got)
	}
	if xs[0] != 9 {
		t.Error("Median sorted its input in place")
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even-length Median = %v, want 2.5", got)
	}
	// Deviations of {1,2,3,4,100} from median 3 are {2,1,0,1,97};
	// their median is 1 — the outlier barely registers, which is the
	// point of using MAD for the bench gate's noise bound.
	if got := MAD([]float64{1, 2, 3, 4, 100}); got != 1 {
		t.Errorf("MAD = %v, want 1", got)
	}
	if got := MAD([]float64{7, 7, 7}); got != 0 {
		t.Errorf("MAD of constants = %v, want 0", got)
	}
}

func TestRelStddev(t *testing.T) {
	var o Online
	o.Add(99)
	o.Add(101)
	if r := o.RelStddev(); math.Abs(r-math.Sqrt2/100) > 1e-9 {
		t.Errorf("RelStddev = %v", r)
	}
}
