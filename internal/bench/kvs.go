package bench

import (
	"ssync/internal/arch"
	"ssync/internal/memsim"
	"ssync/internal/simlocks"
	"ssync/internal/xrand"
)

// This file reproduces Figure 12: the Memcached experiment. The paper
// replaces Memcached 1.4.15's pthread mutexes (the fine-grained hash-table
// bucket locks and the global locks taken by the item-allocation and LRU
// maintenance paths on every set) with libslock algorithms, and drives it
// over the network with memslap (500 clients, get-only and set-only).
//
// The substitution here: the network/parsing path of one request is
// modelled as per-operation think time (the paper notes the main
// limitations are networking and main memory), and the critical-section
// structure is preserved — a per-bucket lock around the hash-table access
// plus, for sets, a global cache lock held across item allocation and LRU
// bookkeeping. With think time ≈150k cycles and a global section of a few
// thousand cycles the system stops scaling around 18 cores, as measured.

// kvsParams shapes the modelled memcached.
type kvsParams struct {
	buckets      int
	thinkCycles  uint64 // network + parsing, outside any lock
	globalWork   uint64 // LRU/slab bookkeeping inside the global lock
	setRatio     int    // percent of sets (100 = set-only)
	useGlobalSet bool   // sets take the global cache lock
}

func defaultKVSParams(setOnly bool) kvsParams {
	// Calibration: the paper's set test tops out near 230 Kops/s at 18
	// threads with ≈6× speed-up over one thread. A ≈55k-cycle network path
	// and a ≈9k-cycle global section saturate the global lock around 6-8
	// threads and cap throughput at clock/section ≈ 230 Kops/s.
	p := kvsParams{
		buckets:      512,
		thinkCycles:  55_000,
		globalWork:   8_500,
		useGlobalSet: true,
	}
	if setOnly {
		p.setRatio = 100
	} else {
		p.setRatio = 0
	}
	return p
}

// KVSResult is one Figure 12 bar: throughput in Kops/s for a lock
// algorithm at a thread count.
type KVSResult struct {
	Alg     simlocks.Alg
	Threads int
	Kops    float64
}

// Figure12Algs are the lock algorithms the paper shows in Figure 12.
var Figure12Algs = []simlocks.Alg{simlocks.MUTEX, simlocks.TAS, simlocks.TICKET, simlocks.MCS}

// Figure12Threads returns the paper's client thread counts (none of the
// platforms scales beyond 18).
func Figure12Threads(p *arch.Platform) []int {
	switch p.Name {
	case "Xeon", "Tilera":
		return []int{1, 10, 18}
	case "Niagara":
		return []int{1, 8, 18}
	default:
		return []int{1, 6, 18}
	}
}

// Figure12 reproduces the set-only panel for a platform. With get=true it
// runs the §6.4 get test instead, where the lock algorithm is irrelevant.
func Figure12(p *arch.Platform, get bool, cfg Config) []KVSResult {
	cfg = cfg.orDefault()
	params := defaultKVSParams(!get)
	var out []KVSResult
	for _, alg := range Figure12Algs {
		for _, n := range Figure12Threads(p) {
			out = append(out, KVSResult{
				Alg:     alg,
				Threads: n,
				Kops:    kvsRun(p, alg, n, params, cfg),
			})
		}
	}
	return out
}

// kvsRun measures the modelled memcached throughput in Kops/s.
func kvsRun(p *arch.Platform, alg simlocks.Alg, nThreads int, params kvsParams, cfg Config) float64 {
	cfg = cfg.orDefault()
	// The think time dwarfs the per-figure deadline used elsewhere; scale
	// the run so each thread completes a useful number of operations.
	deadline := cfg.Deadline
	if min := params.thinkCycles * 40; deadline < min {
		deadline = min
	}
	m := memsim.New(p)
	m.Opt.CostJitter = 0.15
	cores := p.PlaceThreads(nThreads)
	node := p.NodeOf(cores[0])
	opt := simlocks.DefaultOptions(p)

	global := simlocks.New(m, alg, node, opt)
	bucketLocks := make([]simlocks.Lock, params.buckets)
	bucketData := make([]memsim.Addr, params.buckets)
	for i := range bucketLocks {
		bucketLocks[i] = simlocks.New(m, alg, node, opt)
		bucketData[i] = m.AllocLine(node)
	}
	lru := m.AllocLine(node)
	slab := m.AllocLine(node)

	m.SetDeadline(deadline)
	ops := make([]uint64, nThreads)
	for ti, c := range cores {
		ti := ti
		rng := xrand.New(uint64(ti)*92821 + 31)
		m.Spawn(c, func(t *memsim.Thread) {
			t.Pause(rng.Uint64() % 4096) // de-lockstep the service order
			for !t.Done() {
				t.Pause(params.thinkCycles) // network receive + parse + respond
				r := rng.Uint64()
				b := int(r % uint64(params.buckets))
				set := int(r>>40%100) < params.setRatio
				if set && params.useGlobalSet {
					// Item allocation and LRU maintenance under the global
					// cache lock, as in memcached 1.4.
					global.Acquire(t)
					t.Store(slab, t.Load(slab)+1)
					t.Store(lru, t.Load(lru)+1)
					t.Pause(params.globalWork)
					global.Release(t)
				}
				bucketLocks[b].Acquire(t)
				v := t.Load(bucketData[b])
				if set {
					t.Store(bucketData[b], v+1)
				}
				bucketLocks[b].Release(t)
				ops[ti]++
			}
		})
	}
	cycles := m.Run()
	var total uint64
	for _, o := range ops {
		total += o
	}
	if cycles == 0 {
		return 0
	}
	// Kops/s = ops / (cycles / (GHz * 1e9)) / 1e3.
	return float64(total) / float64(cycles) * p.ClockGHz * 1e6
}

// KVSSpeedup returns the best non-mutex speed-up over MUTEX at the highest
// thread count — the paper reports 29–50% on three of the four platforms.
func KVSSpeedup(results []KVSResult) float64 {
	maxThreads := 0
	for _, r := range results {
		if r.Threads > maxThreads {
			maxThreads = r.Threads
		}
	}
	var mutex, best float64
	for _, r := range results {
		if r.Threads != maxThreads {
			continue
		}
		if r.Alg == simlocks.MUTEX {
			mutex = r.Kops
		} else if r.Kops > best {
			best = r.Kops
		}
	}
	if mutex == 0 {
		return 0
	}
	return best/mutex - 1
}
