package bench

import (
	"sort"

	"ssync/internal/arch"
	"ssync/internal/memsim"
	"ssync/internal/simlocks"
	"ssync/internal/simmp"
	"ssync/internal/xrand"
)

// This file reproduces the §8 software-transactional-memory result: the
// TM2C experiments behave like the hash table (Figure 11) — under high
// contention the message-passing version wins at scale; under low
// contention the lock-based version is strictly faster.
//
// The transactional workload is an array microbenchmark: each transaction
// reads three random stripes and writes one. The lock-based flavour
// acquires the involved stripe locks in address order (two-phase locking);
// the message-passing flavour ships each access to the stripe's owning
// server and commits with one message per involved server, mirroring
// internal/tm's native implementation.

// TMResult is one TM measurement.
type TMResult struct {
	Threads  int
	LockMops float64
	MPMops   float64
}

// TMExperiment runs the transactional workload on a platform with the
// given stripe count (16 = high contention, 1024 = low).
func TMExperiment(p *arch.Platform, nStripes int, cfg Config) []TMResult {
	cfg = cfg.orDefault()
	var out []TMResult
	for _, n := range Figure8Threads(p) {
		out = append(out, TMResult{
			Threads:  n,
			LockMops: tmLockRun(p, n, nStripes, cfg),
			MPMops:   tmMPRun(p, n, nStripes, cfg),
		})
	}
	return out
}

// tmTxShape draws the read and write sets of one transaction.
func tmTxShape(rng *xrand.Rand, nStripes int) (reads [3]int, write int) {
	for i := range reads {
		reads[i] = rng.Intn(nStripes)
	}
	return reads, rng.Intn(nStripes)
}

// tmLockRun measures the lock-based TM: per-stripe TTAS locks acquired in
// address order, then the reads and the write.
func tmLockRun(p *arch.Platform, nThreads, nStripes int, cfg Config) float64 {
	m := memsim.New(p)
	m.Opt.CostJitter = 0.15
	cores := p.PlaceThreads(nThreads)
	node := p.NodeOf(cores[0])
	opt := simlocks.DefaultOptions(p)
	locksArr := make([]simlocks.Lock, nStripes)
	data := make([]memsim.Addr, nStripes)
	for i := range locksArr {
		locksArr[i] = simlocks.New(m, simlocks.TTAS, node, opt)
		data[i] = m.AllocLine(node)
	}
	m.SetDeadline(cfg.Deadline)
	ops := make([]uint64, nThreads)
	for ti, c := range cores {
		ti := ti
		rng := xrand.New(uint64(ti)*31337 + 13)
		m.Spawn(c, func(t *memsim.Thread) {
			t.Pause(rng.Uint64() % 4096)
			for !t.Done() {
				reads, write := tmTxShape(rng, nStripes)
				// Two-phase locking in address order (deadlock-free).
				involved := append(reads[:], write)
				sort.Ints(involved)
				involved = dedupInts(involved)
				for _, s := range involved {
					locksArr[s].Acquire(t)
				}
				for _, s := range reads {
					t.Load(data[s])
				}
				t.Store(data[write], t.Now())
				for i := len(involved) - 1; i >= 0; i-- {
					locksArr[involved[i]].Release(t)
				}
				ops[ti]++
				t.Pause(120)
			}
		})
	}
	cycles := m.Run()
	var total uint64
	for _, o := range ops {
		total += o
	}
	return p.MopsFrom(total, cycles)
}

func dedupInts(s []int) []int {
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// tmMPRun measures the TM2C flavour: servers own stripes; each read and
// the commit are round-trips to the owning servers.
func tmMPRun(p *arch.Platform, nThreads, nStripes int, cfg Config) float64 {
	nServers := nThreads / 4
	if nServers < 1 {
		nServers = 1
	}
	nClients := nThreads - nServers
	if nClients < 1 {
		nClients = 1
	}
	total := nServers + nClients
	if total > p.NumCores {
		nClients = p.NumCores - nServers
		total = nServers + nClients
	}
	m := memsim.New(p)
	cores := p.PlaceThreads(total)
	serverCores := cores[:nServers]
	node := p.NodeOf(cores[0])
	net := simmp.NewNetwork(m, cores, simmp.DefaultOptions(m))
	data := make([]memsim.Addr, nStripes)
	for i := range data {
		data[i] = m.AllocLine(node)
	}
	stop := cfg.Deadline

	ops := make([]uint64, nClients)
	for _, c := range serverCores {
		m.Spawn(c, func(t *memsim.Thread) {
			done := 0
			for done < nClients {
				from, msg := net.RecvAny(t)
				switch msg.W[0] {
				case poison:
					done++
				case 1: // read stripe
					v := t.Load(data[msg.W[1]])
					net.Send(t, from, simmp.Msg{W: [7]uint64{v}})
				case 2: // write stripe + commit ack
					t.Store(data[msg.W[1]], msg.W[2])
					net.Send(t, from, simmp.Msg{W: [7]uint64{1}})
				}
			}
		})
	}
	for ci, c := range cores[nServers:] {
		ci := ci
		rng := xrand.New(uint64(ci)*50923 + 29)
		m.Spawn(c, func(t *memsim.Thread) {
			t.Pause(rng.Uint64() % 4096)
			for t.Now() < stop {
				reads, write := tmTxShape(rng, nStripes)
				for _, s := range reads {
					srv := serverCores[s%nServers]
					net.Call(t, srv, simmp.Msg{W: [7]uint64{1, uint64(s)}})
				}
				srv := serverCores[write%nServers]
				net.Call(t, srv, simmp.Msg{W: [7]uint64{2, uint64(write), t.Now()}})
				ops[ci]++
				t.Pause(120)
			}
			for _, s := range serverCores {
				net.Send(t, s, simmp.Msg{W: [7]uint64{poison}})
			}
		})
	}
	m.Run()
	var sum uint64
	for _, o := range ops {
		sum += o
	}
	return p.MopsFrom(sum, stop)
}
