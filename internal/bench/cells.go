package bench

import (
	"ssync/internal/arch"
	"ssync/internal/simlocks"
)

// This file exports the per-cell runners behind the figures: one
// (platform, thread-count) measurement each, the granularity the
// internal/harness shard grid executes. The FigureN sweeps above are thin
// loops over these.

// AtomicThroughput measures one Figure 4 cell: the throughput of a single
// atomic operation ("CAS", "TAS", "CAS based FAI", "SWAP" or "FAI")
// hammered by nThreads threads, in Mops/s.
func AtomicThroughput(p *arch.Platform, op string, nThreads int, cfg Config) float64 {
	return atomicStress(p, op, nThreads, cfg.orDefault())
}

// TicketLatency measures one Figure 3 cell: the mean acquire+release
// latency (queue wait included) of a ticket-lock variant, in cycles.
func TicketLatency(p *arch.Platform, opt simlocks.Options, nThreads int, cfg Config) float64 {
	return ticketLatency(p, opt, nThreads, cfg.orDefault())
}

// SSHTLockThroughput measures one Figure 11 cell for a lock algorithm, in
// Mops/s.
func SSHTLockThroughput(p *arch.Platform, alg simlocks.Alg, nThreads, nBuckets, entries int, cfg Config) float64 {
	return sshtLockRun(p, alg, nThreads, nBuckets, entries, cfg)
}

// SSHTMPThroughput measures one Figure 11 cell for the message-passing
// table, in Mops/s.
func SSHTMPThroughput(p *arch.Platform, nThreads, nBuckets, entries int, cfg Config) float64 {
	return sshtMPRun(p, nThreads, nBuckets, entries, cfg)
}

// TMLockThroughput measures one §8 TM cell for the lock-based flavour, in
// Mops/s.
func TMLockThroughput(p *arch.Platform, nThreads, nStripes int, cfg Config) float64 {
	return tmLockRun(p, nThreads, nStripes, cfg.orDefault())
}

// TMMPThroughput measures one §8 TM cell for the message-passing flavour,
// in Mops/s.
func TMMPThroughput(p *arch.Platform, nThreads, nStripes int, cfg Config) float64 {
	return tmMPRun(p, nThreads, nStripes, cfg.orDefault())
}

// KVSThroughput measures one Figure 12 cell: the modelled memcached under
// a lock algorithm, in Kops/s. get selects the §6.4 get-only control.
func KVSThroughput(p *arch.Platform, alg simlocks.Alg, nThreads int, get bool, cfg Config) float64 {
	return kvsRun(p, alg, nThreads, defaultKVSParams(!get), cfg.orDefault())
}

// MPClientServer measures one Figure 10 cell: total message throughput of
// one server and nClients clients, in both modes, in Mops/s.
func MPClientServer(p *arch.Platform, nClients int, cfg Config) (oneWay, roundTrip float64) {
	return clientServer(p, nClients, cfg.orDefault())
}

// RCLThroughput measures one §7 RCL cell: one dedicated server executing
// the hot critical section on behalf of nThreads-1 clients, in Mops/s.
func RCLThroughput(p *arch.Platform, nThreads int, cfg Config) float64 {
	return rclRun(p, nThreads, cfg.orDefault())
}
