package bench

import (
	"ssync/internal/arch"
	"ssync/internal/memsim"
	"ssync/internal/simlocks"
	"ssync/internal/simmp"
	"ssync/internal/xrand"
)

// This file reproduces Figure 11: the ssht concurrent hash table under
// {512, 12} buckets × {12, 48} entries per bucket, 80% get / 10% put /
// 10% remove, 64-bit keys and 64-byte payloads, with every lock algorithm
// and with the message-passing version (one server per three cores, all
// operations round-trip).

// sshtSim is the hash table laid out in simulated memory: per bucket a
// lock, the packed key lines (8 keys per cache line) and one payload line
// per entry.
type sshtSim struct {
	m        *memsim.Machine
	nBuckets int
	entries  int
	locks    []simlocks.Lock
	keyLines [][]memsim.Addr
	payload  [][]memsim.Addr
}

func newSSHTSim(m *memsim.Machine, nBuckets, entries, node int, alg simlocks.Alg) *sshtSim {
	h := &sshtSim{
		m:        m,
		nBuckets: nBuckets,
		entries:  entries,
		locks:    make([]simlocks.Lock, nBuckets),
		keyLines: make([][]memsim.Addr, nBuckets),
		payload:  make([][]memsim.Addr, nBuckets),
	}
	opt := simlocks.DefaultOptions(m.Plat)
	nKeyLines := (entries + 7) / 8
	for b := 0; b < nBuckets; b++ {
		if alg != "" {
			h.locks[b] = simlocks.New(m, alg, node, opt)
		}
		h.keyLines[b] = make([]memsim.Addr, nKeyLines)
		for i := range h.keyLines[b] {
			h.keyLines[b][i] = m.AllocLine(node)
		}
		h.payload[b] = make([]memsim.Addr, entries)
		for i := range h.payload[b] {
			h.payload[b][i] = m.AllocLine(node)
		}
	}
	return h
}

// access performs the body of one operation on a bucket (without
// locking): traverse the keys to a position, then read and — for put and
// remove — write.
//
// op: 0 = get, 1 = put, 2 = remove.
func (h *sshtSim) access(t *memsim.Thread, b int, pos int, op int) {
	// Hashing the key and comparing along the traversal is real compute;
	// without it a single warm-cache thread is unrealistically fast and
	// the scalability ratios lose their meaning.
	t.Pause(60)
	// Traverse key lines up to the entry's line (cache-friendly layout:
	// ssht packs keys for prefetching).
	for i := 0; i <= pos/8; i++ {
		t.Load(h.keyLines[b][i])
		t.Pause(25) // compare the eight keys of the line
	}
	switch op {
	case 0: // get: read the payload
		t.LoadMulti(h.payload[b][pos], 8)
	case 1: // put: write the payload
		t.StoreMulti(h.payload[b][pos], 1, 2, 3, 4, 5, 6, 7, 8)
	case 2: // remove: unlink the key
		t.Store(h.keyLines[b][pos/8], uint64(pos))
	}
}

// opFor maps a random draw to the 80/10/10 get/put/remove mix.
func opFor(r uint64) int {
	switch {
	case r%10 < 8:
		return 0
	case r%10 == 8:
		return 1
	default:
		return 2
	}
}

// sshtLockRun measures the lock-based ssht throughput in Mops/s.
func sshtLockRun(p *arch.Platform, alg simlocks.Alg, nThreads, nBuckets, entries int, cfg Config) float64 {
	cfg = cfg.orDefault()
	m := memsim.New(p)
	m.Opt.CostJitter = 0.15
	cores := p.PlaceThreads(nThreads)
	node := p.NodeOf(cores[0])
	h := newSSHTSim(m, nBuckets, entries, node, alg)
	// Warm-up horizon: see lockRun — the paper's runs are seconds long, so
	// the table is fully cached before measurement.
	warmup := uint64(nBuckets) * uint64(entries) * 300 / uint64(nThreads)
	if warmup > 1_500_000 {
		warmup = 1_500_000
	}
	if warmup < 10_000 {
		warmup = 10_000
	}
	m.SetDeadline(warmup + cfg.Deadline)
	ops := make([]uint64, nThreads)
	for ti, c := range cores {
		ti := ti
		rng := xrand.New(uint64(ti)*40503 + 7)
		m.Spawn(c, func(t *memsim.Thread) {
			t.Pause(rng.Uint64() % 4096) // de-lockstep the service order
			for !t.Done() {
				r := rng.Uint64()
				b := int(r % uint64(nBuckets))
				pos := int(r >> 32 % uint64(entries))
				h.locks[b].Acquire(t)
				h.access(t, b, pos, opFor(r>>16))
				h.locks[b].Release(t)
				if t.Now() > warmup {
					ops[ti]++
				}
				t.Pause(80) // client-local work between operations
			}
		})
	}
	cycles := m.Run()
	var total uint64
	for _, o := range ops {
		total += o
	}
	if cycles <= warmup {
		return 0
	}
	return p.MopsFrom(total, cycles-warmup)
}

// sshtMPRun measures the message-passing ssht: servers own bucket ranges
// and execute operations on behalf of clients; every operation is a
// round-trip. One quarter of the threads act as servers ("one server per
// three cores"); a single thread runs as one client with one server, as
// in the paper's footnote 10.
func sshtMPRun(p *arch.Platform, nThreads, nBuckets, entries int, cfg Config) float64 {
	cfg = cfg.orDefault()
	nServers := nThreads / 4
	if nServers < 1 {
		nServers = 1
	}
	nClients := nThreads - nServers
	if nClients < 1 {
		nClients = 1
	}
	total := nServers + nClients
	if total > p.NumCores {
		nClients = p.NumCores - nServers
		total = nServers + nClients
	}
	m := memsim.New(p)
	cores := p.PlaceThreads(total)
	serverCores := cores[:nServers]
	clientCores := cores[nServers:]
	node := p.NodeOf(cores[0])
	h := newSSHTSim(m, nBuckets, entries, node, "") // no locks: servers own buckets
	net := simmp.NewNetwork(m, cores, simmp.DefaultOptions(m))
	warmup := uint64(nBuckets) * uint64(entries) * 100 / uint64(nClients)
	if warmup > 1_000_000 {
		warmup = 1_000_000
	}
	if warmup < 10_000 {
		warmup = 10_000
	}
	stop := warmup + cfg.Deadline

	ops := make([]uint64, nClients)
	for si, c := range serverCores {
		si := si
		m.Spawn(c, func(t *memsim.Thread) {
			done := 0
			for done < nClients {
				from, msg := net.RecvAny(t)
				if msg.W[0] == poison {
					done++
					continue
				}
				b, pos, op := int(msg.W[1]), int(msg.W[2]), int(msg.W[3])
				_ = si
				h.access(t, b, pos, op)
				net.Send(t, from, simmp.Msg{W: [7]uint64{2}})
			}
		})
	}
	for ci, c := range clientCores {
		ci := ci
		rng := xrand.New(uint64(ci)*48611 + 3)
		m.Spawn(c, func(t *memsim.Thread) {
			t.Pause(rng.Uint64() % 4096) // de-lockstep the service order
			for t.Now() < stop {
				r := rng.Uint64()
				b := int(r % uint64(nBuckets))
				pos := int(r >> 32 % uint64(entries))
				op := opFor(r >> 16)
				server := serverCores[b%nServers]
				net.Call(t, server, simmp.Msg{W: [7]uint64{1, uint64(b), uint64(pos), uint64(op)}})
				if t.Now() > warmup {
					ops[ci]++
				}
				t.Pause(80)
			}
			for _, s := range serverCores {
				net.Send(t, s, simmp.Msg{W: [7]uint64{poison}})
			}
		})
	}
	m.Run()
	var sum uint64
	for _, o := range ops {
		sum += o
	}
	return p.MopsFrom(sum, stop-warmup)
}

// SSHTResult is one Figure 11 bar group: the best lock at a thread count,
// its throughput and scalability, every per-lock value, and the
// message-passing throughput.
type SSHTResult struct {
	Threads     int
	BestAlg     simlocks.Alg
	BestMops    float64
	Scalability float64
	MPMops      float64
	PerLock     map[simlocks.Alg]float64
}

// Figure11 reproduces one panel of Figure 11 (a buckets × entries
// configuration on one platform).
func Figure11(p *arch.Platform, nBuckets, entries int, cfg Config) []SSHTResult {
	var out []SSHTResult
	bestSingle := 0.0
	for _, n := range Figure8Threads(p) {
		res := SSHTResult{Threads: n, BestMops: -1, PerLock: map[simlocks.Alg]float64{}}
		for _, alg := range simlocks.Algorithms(p) {
			mops := sshtLockRun(p, alg, n, nBuckets, entries, cfg)
			res.PerLock[alg] = mops
			if mops > res.BestMops {
				res.BestAlg = alg
				res.BestMops = mops
			}
		}
		res.MPMops = sshtMPRun(p, n, nBuckets, entries, cfg)
		if n == 1 {
			bestSingle = res.BestMops
			res.Scalability = 1
		} else if bestSingle > 0 {
			res.Scalability = res.BestMops / bestSingle
		}
		out = append(out, res)
	}
	return out
}
