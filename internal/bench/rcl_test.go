package bench

import (
	"testing"

	"ssync/internal/arch"
)

func TestRCLCrossover(t *testing.T) {
	// §7: RCL's scope "is limited to high contention and a large number of
	// cores". At one thread a lock is far better than paying a round-trip
	// per critical section; at full machine scale RCL must be competitive
	// with (here: beat) the best lock on a single hot critical section.
	p := arch.Opteron()
	rows := RCLExperiment(p, quickCfg)
	first, last := rows[0], rows[len(rows)-1]
	if first.RCLMops >= first.LockMops {
		t.Errorf("at %d threads a lock (%.2f) must beat RCL (%.2f)",
			first.Threads, first.LockMops, first.RCLMops)
	}
	if last.RCLMops <= last.LockMops {
		t.Errorf("at %d threads RCL (%.2f) should beat the best lock (%.2f)",
			last.Threads, last.RCLMops, last.LockMops)
	}
}
