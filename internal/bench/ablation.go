package bench

import (
	"ssync/internal/arch"
	"ssync/internal/memsim"
	"ssync/internal/simlocks"
	"ssync/internal/simmp"
	"ssync/internal/xrand"
)

// Ablations for the design choices DESIGN.md calls out: each returns the
// measurement with the feature on and off, so the benches and tests can
// quantify how much of the reproduced behaviour each mechanism carries.

// AblationResult pairs a measurement with its ablated twin.
type AblationResult struct {
	Name string
	On   float64
	Off  float64
}

// AblationNoContention measures single-lock TAS throughput (Mops/s) with
// and without per-line transaction serialisation. Without it, contention
// costs vanish and the multi-socket collapse disappears — showing the
// serialisation model carries the paper's headline behaviour.
func AblationNoContention(p *arch.Platform, nThreads int, cfg Config) AblationResult {
	run := func(off bool) float64 {
		cfg := cfg.orDefault()
		m := memsim.New(p)
		m.Opt.NoContention = off
		m.Opt.CostJitter = 0.15
		target := m.AllocLine(p.NodeOf(0))
		m.SetDeadline(cfg.Deadline)
		cores := p.PlaceThreads(nThreads)
		ops := make([]uint64, nThreads)
		for ti, c := range cores {
			ti := ti
			rng := xrand.New(uint64(ti) + 77)
			m.Spawn(c, func(t *memsim.Thread) {
				t.Pause(rng.Uint64() % 4096)
				for !t.Done() {
					t.FAI(target)
					ops[ti]++
					t.Pause(200)
				}
			})
		}
		cycles := m.Run()
		var total uint64
		for _, o := range ops {
			total += o
		}
		return p.MopsFrom(total, cycles)
	}
	return AblationResult{Name: "line serialisation", On: run(false), Off: run(true)}
}

// AblationProbeFilter measures Opteron store-on-shared cost with the
// incomplete probe filter as built versus an idealised complete directory.
// The paper's §5.3 problem (and the reason prefetchw pays off) lives
// entirely in this gap.
func AblationProbeFilter(nThreads int, cfg Config) AblationResult {
	p := arch.Opteron()
	run := func(complete bool) float64 {
		cfg := cfg.orDefault()
		m := memsim.New(p)
		m.Opt.CompleteDirectory = complete
		m.Opt.CostJitter = 0.15
		l := simlocks.New(m, simlocks.TICKET, 0, simlocks.Options{TicketBackoff: true})
		data := m.AllocLine(0)
		m.SetDeadline(cfg.Deadline)
		cores := p.PlaceThreads(nThreads)
		ops := make([]uint64, nThreads)
		for ti, c := range cores {
			ti := ti
			rng := xrand.New(uint64(ti) + 3)
			m.Spawn(c, func(t *memsim.Thread) {
				t.Pause(rng.Uint64() % 4096)
				for !t.Done() {
					l.Acquire(t)
					t.Store(data, t.Load(data)+1)
					l.Release(t)
					ops[ti]++
					t.Pause(100)
				}
			})
		}
		cycles := m.Run()
		var total uint64
		for _, o := range ops {
			total += o
		}
		return p.MopsFrom(total, cycles)
	}
	return AblationResult{Name: "incomplete probe filter", On: run(false), Off: run(true)}
}

// AblationMPPrefetchw measures Opteron message-passing round-trip latency
// with and without the §5.3 prefetchw optimization (the paper: up to 2.5×
// faster with it).
func AblationMPPrefetchw(cfg Config) AblationResult {
	p := arch.Opteron()
	run := func(pf bool) float64 {
		cfg := cfg.orDefault()
		m := memsim.New(p)
		net := simmp.NewNetwork(m, []int{0, 24}, simmp.Options{Prefetchw: pf})
		n := cfg.LatencyOps
		m.Spawn(0, func(t *memsim.Thread) {
			for i := 0; i < n; i++ {
				net.Call(t, 24, simmp.Msg{W: [7]uint64{1}})
			}
		})
		m.Spawn(24, func(t *memsim.Thread) {
			for i := 0; i < n; i++ {
				from, msg := net.RecvAny(t)
				net.Send(t, from, msg)
			}
		})
		return float64(m.Run()) / float64(n)
	}
	return AblationResult{Name: "mp prefetchw (cycles/round-trip)", On: run(true), Off: run(false)}
}

// AblationTicketBackoff is Figure 3 distilled to one number: the naive vs
// proportional-back-off acquire+release latency at high contention.
func AblationTicketBackoff(nThreads int, cfg Config) AblationResult {
	p := arch.Opteron()
	return AblationResult{
		Name: "ticket proportional back-off (cycles/op)",
		On:   ticketLatency(p, simlocks.Options{TicketBackoff: true}, nThreads, cfg.orDefault()),
		Off:  ticketLatency(p, simlocks.Options{}, nThreads, cfg.orDefault()),
	}
}
