// Package bench defines one regeneration harness per table and figure of
// the paper's evaluation (§5–§6): the workload, the parameter sweep, the
// baselines and the output rows. The cmd/ binaries and the root-level
// testing.B benchmarks are thin wrappers over this package.
package bench

import (
	"fmt"
	"sort"

	"ssync/internal/arch"
	"ssync/internal/memsim"
	"ssync/internal/simlocks"
	"ssync/internal/xrand"
)

// Config scales the experiments: the deadline bounds the simulated cycles
// per configuration. Defaults suit the cmd/ binaries; tests use smaller
// values.
type Config struct {
	// Deadline is the simulated duration of each throughput measurement,
	// in cycles.
	Deadline uint64
	// LatencyOps is the number of operations timed in latency experiments.
	LatencyOps int
	// Reps is the repetition count for ccbench-style single-op cases.
	Reps int
}

// DefaultConfig returns the configuration used by the cmd/ tools.
func DefaultConfig() Config {
	return Config{Deadline: 400_000, LatencyOps: 200, Reps: 5}
}

// orDefault fills unset fields from DefaultConfig.
func (c Config) orDefault() Config {
	d := DefaultConfig()
	if c.Deadline == 0 {
		c.Deadline = d.Deadline
	}
	if c.LatencyOps == 0 {
		c.LatencyOps = d.LatencyOps
	}
	if c.Reps == 0 {
		c.Reps = d.Reps
	}
	return c
}

// Point is one measurement in a series.
type Point struct {
	X int     // usually the thread count
	Y float64 // usually Mops/s or cycles
}

// Series is one labelled curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a reproduced figure: a set of series with axis labels.
type Figure struct {
	Name     string
	Platform string
	XLabel   string
	YLabel   string
	Series   []Series
}

// ThreadCounts returns the paper's x-axis thread counts for a platform,
// capped at the core count.
func ThreadCounts(p *arch.Platform) []int {
	var base []int
	switch p.Name {
	case "Opteron":
		base = []int{1, 2, 6, 12, 18, 24, 30, 36, 42, 48}
	case "Xeon":
		base = []int{1, 2, 10, 20, 30, 40, 50, 60, 70, 80}
	case "Niagara":
		base = []int{1, 2, 8, 16, 24, 32, 40, 48, 56, 64}
	case "Tilera":
		base = []int{1, 2, 6, 12, 18, 24, 30, 36}
	default:
		base = []int{1, 2, 4, p.NumCores}
	}
	var out []int
	for _, n := range base {
		if n <= p.NumCores {
			out = append(out, n)
		}
	}
	return out
}

// Figure8Threads returns the cross-platform thread counts of Figure 8/11
// (up to 36 cores for comparability).
func Figure8Threads(p *arch.Platform) []int {
	switch p.Name {
	case "Opteron":
		return []int{1, 6, 18, 36}
	case "Xeon":
		return []int{1, 10, 18, 36}
	default:
		return []int{1, 8, 18, 36}
	}
}

// lockRun measures total lock-acquisition throughput in Mops/s: nThreads
// threads each repeatedly acquire a (random) lock out of nLocks, read and
// write one cache line of data it protects, release, and pause briefly
// (§6.1.2 methodology).
func lockRun(p *arch.Platform, alg simlocks.Alg, nThreads, nLocks int, cfg Config) float64 {
	cfg = cfg.orDefault()
	m := memsim.New(p)
	m.Opt.CostJitter = 0.15
	cores := p.PlaceThreads(nThreads)
	node := p.NodeOf(cores[0]) // shared data on the first participating node
	opt := simlocks.DefaultOptions(p)
	locks := make([]simlocks.Lock, nLocks)
	data := make([]memsim.Addr, nLocks)
	for i := range locks {
		locks[i] = simlocks.New(m, alg, node, opt)
		data[i] = m.AllocLine(node)
	}
	// Warm-up: the paper's runs last seconds, so every lock and data line
	// is long since cached. Ops before the warm-up horizon are discarded;
	// the horizon scales with the lock count so even a single thread has
	// touched the whole working set (cold misses would otherwise depress
	// the 1-thread baseline and inflate the scalability labels).
	warmup := uint64(nLocks) * 1200 / uint64(nThreads)
	if warmup > 1_200_000 {
		warmup = 1_200_000
	}
	if warmup < 10_000 {
		warmup = 10_000
	}
	m.SetDeadline(warmup + cfg.Deadline)
	ops := make([]uint64, nThreads)
	for ti, c := range cores {
		ti := ti
		rng := xrand.New(uint64(ti)*2654435761 + 12345)
		m.Spawn(c, func(t *memsim.Thread) {
			// Random start stagger: threads never begin in lock-step, so
			// the steady-state service order at hot lines is a random,
			// socket-mixed permutation rather than core-id order.
			t.Pause(rng.Uint64() % 4096)
			for !t.Done() {
				i := 0
				if nLocks > 1 {
					i = rng.Intn(nLocks)
				}
				locks[i].Acquire(t)
				v := t.Load(data[i])
				t.Store(data[i], v+1)
				locks[i].Release(t)
				if t.Now() > warmup {
					ops[ti]++
				}
				// Let the release become globally visible before retrying
				// (paper §6.1.2).
				t.Pause(100)
			}
		})
	}
	cycles := m.Run()
	var total uint64
	for _, o := range ops {
		total += o
	}
	if cycles <= warmup {
		return 0
	}
	return p.MopsFrom(total, cycles-warmup)
}

// LockThroughput exposes the lock throughput runner for examples and
// benches.
func LockThroughput(p *arch.Platform, alg simlocks.Alg, nThreads, nLocks int, cfg Config) float64 {
	return lockRun(p, alg, nThreads, nLocks, cfg)
}

// Figure5 reproduces "Throughput of different lock algorithms using a
// single lock" (extreme contention).
func Figure5(p *arch.Platform, cfg Config) Figure {
	return lockFigure(p, cfg, 1, "Figure 5: single lock (extreme contention)")
}

// Figure7 reproduces "Throughput of different lock algorithms using 512
// locks" (very low contention).
func Figure7(p *arch.Platform, cfg Config) Figure {
	return lockFigure(p, cfg, 512, "Figure 7: 512 locks (very low contention)")
}

func lockFigure(p *arch.Platform, cfg Config, nLocks int, name string) Figure {
	fig := Figure{
		Name:     name,
		Platform: p.Name,
		XLabel:   "threads",
		YLabel:   "throughput (Mops/s)",
	}
	for _, alg := range simlocks.Algorithms(p) {
		s := Series{Label: string(alg)}
		for _, n := range ThreadCounts(p) {
			s.Points = append(s.Points, Point{X: n, Y: lockRun(p, alg, n, nLocks, cfg)})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// BestLock is one Figure 8 cell: the best-performing lock at a thread
// count, its throughput and the scalability vs single-threaded execution.
type BestLock struct {
	Threads     int
	Alg         simlocks.Alg
	Mops        float64
	Scalability float64 // the paper's "X:" label
}

// Figure8 reproduces "Throughput and scalability of locks depending on the
// number of locks" for one platform and lock count (4, 16, 32 or 128).
func Figure8(p *arch.Platform, nLocks int, cfg Config) []BestLock {
	single := make(map[simlocks.Alg]float64)
	var out []BestLock
	for _, n := range Figure8Threads(p) {
		best := BestLock{Threads: n, Mops: -1}
		for _, alg := range simlocks.Algorithms(p) {
			mops := lockRun(p, alg, n, nLocks, cfg)
			if n == 1 {
				single[alg] = mops
			}
			if mops > best.Mops {
				best.Alg = alg
				best.Mops = mops
			}
		}
		// Scalability is relative to the single-thread throughput of the
		// *best single-thread* lock, as the paper normalises per platform.
		if n == 1 {
			best.Scalability = 1
		} else {
			bestSingle := 0.0
			for _, v := range single {
				if v > bestSingle {
					bestSingle = v
				}
			}
			if bestSingle > 0 {
				best.Scalability = best.Mops / bestSingle
			}
		}
		out = append(out, best)
	}
	return out
}

// UncontestedResult is one Figure 6 bar: the latency to acquire a lock
// whose previous holder sits at the given distance.
type UncontestedResult struct {
	Alg    simlocks.Alg
	Class  string // "single thread" or a platform distance-class name
	Cycles float64
}

// Figure6 reproduces "Uncontested lock acquisition latency based on the
// location of the previous owner of the lock".
func Figure6(p *arch.Platform, cfg Config) []UncontestedResult {
	cfg = cfg.orDefault()
	var out []UncontestedResult
	for _, alg := range simlocks.Algorithms(p) {
		out = append(out, UncontestedResult{
			Alg: alg, Class: "single thread",
			Cycles: uncontestedSingle(p, alg, cfg),
		})
		for _, class := range uncontestedClasses(p) {
			out = append(out, UncontestedResult{
				Alg: alg, Class: p.DistNames[class],
				Cycles: uncontestedPair(p, alg, class, cfg),
			})
		}
	}
	return out
}

// uncontestedClasses lists the previous-holder placements of Figure 6.
func uncontestedClasses(p *arch.Platform) []int {
	if p.Name == "Tilera" {
		return []int{1, 10}
	}
	classes := make([]int, p.NumClasses())
	for i := range classes {
		classes[i] = i
	}
	return classes
}

// uncontestedSingle measures one thread repeatedly acquiring and releasing.
func uncontestedSingle(p *arch.Platform, alg simlocks.Alg, cfg Config) float64 {
	m := memsim.New(p)
	l := simlocks.New(m, alg, p.NodeOf(0), simlocks.DefaultOptions(p))
	var total uint64
	m.Spawn(0, func(t *memsim.Thread) {
		l.Acquire(t) // warm up the lock state
		l.Release(t)
		start := t.Now()
		for i := 0; i < cfg.LatencyOps; i++ {
			l.Acquire(t)
			l.Release(t)
		}
		total = t.Now() - start
	})
	m.Run()
	return float64(total) / float64(cfg.LatencyOps)
}

// uncontestedPair measures acquisition latency when the previous holder is
// at the given distance class: the two threads strictly alternate.
func uncontestedPair(p *arch.Platform, alg simlocks.Alg, class int, cfg Config) float64 {
	m := memsim.New(p)
	a := 0
	b := pickAtClass(p, a, class)
	if b < 0 {
		return 0
	}
	l := simlocks.New(m, alg, p.NodeOf(a), simlocks.DefaultOptions(p))
	turn := m.AllocLine(p.NodeOf(a))
	var totalB uint64
	rounds := cfg.LatencyOps
	m.Spawn(a, func(t *memsim.Thread) {
		for i := 0; i < rounds; i++ {
			t.WaitUntil(turn, func(v uint64) bool { return v%2 == 0 })
			l.Acquire(t)
			l.Release(t)
			t.Store(turn, t.Load(turn)+1)
		}
	})
	m.Spawn(b, func(t *memsim.Thread) {
		for i := 0; i < rounds; i++ {
			t.WaitUntil(turn, func(v uint64) bool { return v%2 == 1 })
			start := t.Now()
			l.Acquire(t)
			totalB += t.Now() - start
			l.Release(t)
			t.Store(turn, t.Load(turn)+1)
		}
	})
	m.Run()
	return float64(totalB) / float64(rounds)
}

func pickAtClass(p *arch.Platform, from, class int) int {
	for c := 0; c < p.NumCores; c++ {
		if c != from && p.DistClass(from, c) == class {
			return c
		}
	}
	return -1
}

// Figure3Variant names the three ticket-lock implementations of Figure 3.
type Figure3Variant string

// The Figure 3 implementations.
const (
	TicketNaive     Figure3Variant = "non-optimized"
	TicketBackoff   Figure3Variant = "back-off"
	TicketPrefetchw Figure3Variant = "back-off & prefetchw"
)

// Figure3 reproduces "Latency of acquire and release using different
// implementations of a ticket lock on the Opteron": per-operation latency
// (queue wait included) against the thread count.
func Figure3(cfg Config) Figure {
	cfg = cfg.orDefault()
	p := arch.Opteron()
	fig := Figure{
		Name:     "Figure 3: ticket lock implementations (Opteron)",
		Platform: p.Name,
		XLabel:   "threads",
		YLabel:   "acquire+release latency (cycles)",
	}
	variants := []struct {
		name Figure3Variant
		opt  simlocks.Options
	}{
		{TicketNaive, simlocks.Options{}},
		{TicketBackoff, simlocks.Options{TicketBackoff: true}},
		{TicketPrefetchw, simlocks.Options{TicketBackoff: true, TicketPrefetchw: true}},
	}
	for _, v := range variants {
		s := Series{Label: string(v.name)}
		for _, n := range ThreadCounts(p) {
			s.Points = append(s.Points, Point{X: n, Y: ticketLatency(p, v.opt, n, cfg)})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// ticketLatency measures the mean acquire+release latency (including queue
// wait) over all threads hammering one ticket lock.
func ticketLatency(p *arch.Platform, opt simlocks.Options, nThreads int, cfg Config) float64 {
	m := memsim.New(p)
	m.Opt.CostJitter = 0.15
	l := simlocks.New(m, simlocks.TICKET, 0, opt)
	m.SetDeadline(cfg.Deadline)
	cores := p.PlaceThreads(nThreads)
	lat := make([]uint64, nThreads)
	ops := make([]uint64, nThreads)
	for ti, c := range cores {
		ti := ti
		rng := xrand.New(uint64(ti)*52021 + 11)
		m.Spawn(c, func(t *memsim.Thread) {
			t.Pause(rng.Uint64() % 4096) // de-lockstep the service order
			for !t.Done() {
				start := t.Now()
				l.Acquire(t)
				l.Release(t)
				lat[ti] += t.Now() - start
				ops[ti]++
				t.Pause(100)
			}
		})
	}
	m.Run()
	var totalLat, totalOps uint64
	for i := range lat {
		totalLat += lat[i]
		totalOps += ops[i]
	}
	if totalOps == 0 {
		return 0
	}
	return float64(totalLat) / float64(totalOps)
}

// Figure4 reproduces "Throughput of different atomic operations on a
// single memory location". CAS-FAI is a fetch-and-increment emulated with
// a CAS retry loop.
func Figure4(p *arch.Platform, cfg Config) Figure {
	cfg = cfg.orDefault()
	fig := Figure{
		Name:     "Figure 4: atomic operations on one location",
		Platform: p.Name,
		XLabel:   "threads",
		YLabel:   "throughput (Mops/s)",
	}
	for _, op := range []string{"CAS", "TAS", "CAS based FAI", "SWAP", "FAI"} {
		s := Series{Label: op}
		for _, n := range ThreadCounts(p) {
			s.Points = append(s.Points, Point{X: n, Y: atomicStress(p, op, n, cfg)})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// atomicStress implements the §5.4 stress test: each thread repeatedly
// performs the operation on one shared location, pausing between calls
// proportionally to the maximum latency across the involved cores so that
// no thread completes consecutive operations locally ("long runs").
func atomicStress(p *arch.Platform, opName string, nThreads int, cfg Config) float64 {
	m := memsim.New(p)
	m.Opt.CostJitter = 0.15
	cores := p.PlaceThreads(nThreads)
	target := m.AllocLine(p.NodeOf(cores[0]))
	m.SetDeadline(cfg.Deadline)

	// Pause proportional to the maximum latency across the involved cores.
	span := 0
	for _, c := range cores {
		if d := p.DistClass(cores[0], c); d > span {
			span = d
		}
	}
	pause := p.Lat(arch.CAS, arch.Modified, span)
	if nThreads == 1 {
		pause = p.AtomicLocal
	}

	ops := make([]uint64, nThreads)
	for ti, c := range cores {
		ti := ti
		rng := xrand.New(uint64(ti)*76493 + 5)
		m.Spawn(c, func(t *memsim.Thread) {
			t.Pause(rng.Uint64() % 4096) // de-lockstep the service order
			for !t.Done() {
				switch opName {
				case "CAS":
					t.CAS(target, 0, uint64(ti)+1) // mostly unsuccessful
				case "TAS":
					t.TAS(target)
				case "CAS based FAI":
					// cmpxchg retry loop: the failed CAS returns the fresh
					// value, so no reload is needed between attempts.
					v := t.Load(target)
					for {
						prev, ok := t.CASVal(target, v, v+1)
						if ok || t.Done() {
							break
						}
						v = prev
					}
				case "SWAP":
					t.Swap(target, uint64(ti))
				case "FAI":
					t.FAI(target)
				}
				ops[ti]++
				// Jitter the pause: identical pauses would grant the line
				// in core-id order, an artificial socket affinity no real
				// arbiter provides.
				t.Pause(pause + rng.Uint64()%(pause/2+1))
			}
		})
	}
	cycles := m.Run()
	var total uint64
	for _, o := range ops {
		total += o
	}
	return p.MopsFrom(total, cycles)
}

// BestSeries extracts, for each X, the maximum Y across all series of a
// figure (the paper's "highest throughput achieved by any of the locks").
func BestSeries(fig Figure) Series {
	byX := map[int]float64{}
	var xs []int
	for _, s := range fig.Series {
		for _, pt := range s.Points {
			if v, ok := byX[pt.X]; !ok || pt.Y > v {
				if !ok {
					xs = append(xs, pt.X)
				}
				byX[pt.X] = pt.Y
			}
		}
	}
	sort.Ints(xs)
	out := Series{Label: "best of " + fig.Platform}
	for _, x := range xs {
		out.Points = append(out.Points, Point{X: x, Y: byX[x]})
	}
	return out
}

// FindSeries returns the series with the given label, or nil.
func FindSeries(fig Figure, label string) *Series {
	for i := range fig.Series {
		if fig.Series[i].Label == label {
			return &fig.Series[i]
		}
	}
	return nil
}

// At returns the Y value at x in a series (0 if absent).
func (s Series) At(x int) float64 {
	for _, pt := range s.Points {
		if pt.X == x {
			return pt.Y
		}
	}
	return 0
}

func (s Series) String() string {
	out := s.Label + ":"
	for _, pt := range s.Points {
		out += fmt.Sprintf(" (%d, %.2f)", pt.X, pt.Y)
	}
	return out
}
