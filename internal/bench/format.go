package bench

import (
	"fmt"
	"sort"
	"strings"

	"ssync/internal/arch"
	"ssync/internal/ccbench"
	"ssync/internal/simlocks"
)

// This file renders experiment results as fixed-width text, the way the
// cmd/ tools print them.

// FormatFigure renders a figure as a table: one row per X, one column per
// series.
func FormatFigure(fig Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", fig.Name, fig.Platform)
	fmt.Fprintf(&b, "%-10s", fig.XLabel)
	for _, s := range fig.Series {
		fmt.Fprintf(&b, " %14s", s.Label)
	}
	b.WriteString("\n")
	xs := map[int]bool{}
	var order []int
	for _, s := range fig.Series {
		for _, pt := range s.Points {
			if !xs[pt.X] {
				xs[pt.X] = true
				order = append(order, pt.X)
			}
		}
	}
	sort.Ints(order)
	for _, x := range order {
		fmt.Fprintf(&b, "%-10d", x)
		for _, s := range fig.Series {
			fmt.Fprintf(&b, " %14.2f", s.At(x))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatTable2 renders the ccbench results like the paper's Table 2.
func FormatTable2(p *arch.Platform, reps int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — %s: coherence-transaction latencies (cycles)\n", p.Name)
	classes := ccbench.ReportClasses(p)
	fmt.Fprintf(&b, "%-8s %-10s", "op", "state")
	for _, c := range classes {
		fmt.Fprintf(&b, " %12s", p.DistNames[c])
	}
	b.WriteString("\n")

	row := func(op arch.Op, st arch.State) {
		fmt.Fprintf(&b, "%-8v %-10v", op, st)
		for _, class := range classes {
			r := ccbench.Run(p, ccbench.Case{Op: op, State: st, Class: class}, reps)
			fmt.Fprintf(&b, " %12.0f", r.Cycles)
		}
		b.WriteString("\n")
	}
	states := []arch.State{arch.Modified, arch.Owned, arch.Exclusive, arch.Shared, arch.Invalid}
	for _, st := range states {
		if st == arch.Owned && !p.IncompleteDirectory {
			continue
		}
		row(arch.Load, st)
	}
	for _, st := range states {
		if st == arch.Owned && !p.IncompleteDirectory {
			continue
		}
		row(arch.Store, st)
	}
	for _, op := range arch.AtomicOps {
		row(op, arch.Modified)
		row(op, arch.Shared)
	}
	return b.String()
}

// FormatTable3 renders the local-latency table.
func FormatTable3(p *arch.Platform) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 — %s: local caches and memory latencies (cycles)\n", p.Name)
	for _, r := range ccbench.Table3(p) {
		fmt.Fprintf(&b, "  %-4s %6d\n", r.Level, r.Cycles)
	}
	return b.String()
}

// FormatFigure6 renders the uncontested-acquisition bars.
func FormatFigure6(p *arch.Platform, results []UncontestedResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — %s: uncontested lock acquisition latency (cycles)\n", p.Name)
	// Group rows by class, columns by algorithm.
	classes := []string{}
	seen := map[string]bool{}
	for _, r := range results {
		if !seen[r.Class] {
			seen[r.Class] = true
			classes = append(classes, r.Class)
		}
	}
	algs := simlocks.Algorithms(p)
	fmt.Fprintf(&b, "%-14s", "holder at")
	for _, a := range algs {
		fmt.Fprintf(&b, " %9s", a)
	}
	b.WriteString("\n")
	for _, class := range classes {
		fmt.Fprintf(&b, "%-14s", class)
		for _, a := range algs {
			for _, r := range results {
				if r.Class == class && r.Alg == a {
					fmt.Fprintf(&b, " %9.0f", r.Cycles)
				}
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatFigure8 renders the best-lock table with the paper's "X: Y"
// labels.
func FormatFigure8(p *arch.Platform, nLocks int, rows []BestLock) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 — %s, %d locks: best lock and scalability\n", p.Name, nLocks)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %2d threads: %5.2fx %-8s %8.2f Mops/s\n", r.Threads, r.Scalability, r.Alg, r.Mops)
	}
	return b.String()
}

// FormatFigure9 renders the message-passing latency bars.
func FormatFigure9(p *arch.Platform, rows []MPLatency) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9 — %s: one-to-one message passing (cycles)\n", p.Name)
	fmt.Fprintf(&b, "  %-14s %10s %10s\n", "distance", "one-way", "round-trip")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-14s %10.0f %10.0f\n", r.Class, r.OneWay, r.RoundTrip)
	}
	return b.String()
}

// FormatFigure11 renders one hash-table panel.
func FormatFigure11(p *arch.Platform, buckets, entries int, rows []SSHTResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11 — %s: ssht, %d buckets, %d entries/bucket\n", p.Name, buckets, entries)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %2d threads: best %5.2fx %-8s %8.2f Mops/s   mp %8.2f Mops/s\n",
			r.Threads, r.Scalability, r.BestAlg, r.BestMops, r.MPMops)
	}
	return b.String()
}

// FormatFigure12 renders the memcached set-test bars.
func FormatFigure12(p *arch.Platform, rows []KVSResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12 — %s: memcached-style set test (Kops/s)\n", p.Name)
	byAlg := map[simlocks.Alg][]KVSResult{}
	var algs []simlocks.Alg
	for _, r := range rows {
		if _, ok := byAlg[r.Alg]; !ok {
			algs = append(algs, r.Alg)
		}
		byAlg[r.Alg] = append(byAlg[r.Alg], r)
	}
	for _, a := range algs {
		fmt.Fprintf(&b, "  %-8s", a)
		for _, r := range byAlg[a] {
			fmt.Fprintf(&b, "  %2d: %8.1f", r.Threads, r.Kops)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  best non-mutex speed-up over MUTEX at 18 threads: %.0f%%\n", KVSSpeedup(rows)*100)
	return b.String()
}
