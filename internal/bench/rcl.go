package bench

import (
	"ssync/internal/arch"
	"ssync/internal/memsim"
	"ssync/internal/simlocks"
	"ssync/internal/simmp"
	"ssync/internal/xrand"
)

// This file validates the paper's §7 discussion of Remote Core Locking
// (RCL [26]) on the simulator: replacing "lock, execute, unlock" with a
// remote procedure call to a dedicated server hides contention behind
// messages and lets the server access the protected data locally — but
// "the scope of this solution is limited to high contention and a large
// number of cores", which the crossover in this experiment exhibits.

// RCLResult compares one thread count.
type RCLResult struct {
	Threads  int
	LockMops float64 // best spin lock, one hot lock
	RCLMops  float64 // one dedicated server executing the critical sections
}

// RCLExperiment measures a single hot critical section (read-modify-write
// of one line) under the best spin lock versus RCL.
func RCLExperiment(p *arch.Platform, cfg Config) []RCLResult {
	cfg = cfg.orDefault()
	var out []RCLResult
	for _, n := range Figure8Threads(p) {
		best := 0.0
		for _, alg := range []simlocks.Alg{simlocks.TICKET, simlocks.CLH, simlocks.MCS} {
			if v := lockRun(p, alg, n, 1, cfg); v > best {
				best = v
			}
		}
		out = append(out, RCLResult{
			Threads:  n,
			LockMops: best,
			RCLMops:  rclRun(p, n, cfg),
		})
	}
	return out
}

// rclRun dedicates core 0 as the RCL server: clients ship the critical
// section as a one-line message; the server performs the read-modify-write
// locally and replies.
func rclRun(p *arch.Platform, nThreads int, cfg Config) float64 {
	if nThreads < 2 {
		nThreads = 2 // RCL needs a server and at least one client
	}
	m := memsim.New(p)
	m.Opt.CostJitter = 0.15
	cores := p.PlaceThreads(nThreads)
	server := cores[0]
	clients := cores[1:]
	net := simmp.NewNetwork(m, cores, simmp.DefaultOptions(m))
	data := m.AllocLine(p.NodeOf(server))
	stop := cfg.Deadline

	var served uint64
	m.Spawn(server, func(t *memsim.Thread) {
		done := 0
		for done < len(clients) {
			from, msg := net.RecvAny(t)
			if msg.W[0] == poison {
				done++
				continue
			}
			// The critical section, executed locally at the server.
			t.Store(data, t.Load(data)+1)
			net.Send(t, from, simmp.Msg{W: [7]uint64{1}})
			if t.Now() <= stop {
				served++
			}
		}
	})
	for ci, c := range clients {
		rng := xrand.New(uint64(ci)*131 + 17)
		m.Spawn(c, func(t *memsim.Thread) {
			t.Pause(rng.Uint64() % 4096)
			for t.Now() < stop {
				net.Call(t, server, simmp.Msg{W: [7]uint64{1}})
				t.Pause(100)
			}
			net.Send(t, server, simmp.Msg{W: [7]uint64{poison}})
		})
	}
	m.Run()
	return p.MopsFrom(served, stop)
}
