package bench

import (
	"ssync/internal/arch"
	"ssync/internal/memsim"
	"ssync/internal/simmp"
)

// MPLatency is one Figure 9 bar pair: one-way and round-trip latency for a
// core pair at a distance.
type MPLatency struct {
	Class     string
	OneWay    float64
	RoundTrip float64
}

// Figure9 reproduces "One-to-one communication latencies of message
// passing depending on the distance between the two cores".
func Figure9(p *arch.Platform, cfg Config) []MPLatency {
	cfg = cfg.orDefault()
	var out []MPLatency
	for _, class := range uncontestedClasses(p) {
		b := pickAtClass(p, 0, class)
		if b < 0 {
			continue
		}
		out = append(out, MPLatency{
			Class:     p.DistNames[class],
			OneWay:    mpOneWay(p, 0, b, cfg),
			RoundTrip: mpRoundTrip(p, 0, b, cfg),
		})
	}
	return out
}

// mpOneWay measures one-way message latency: each message carries its
// send timestamp and the receiver averages arrival minus send. (On the
// Tilera's pipelined hardware network, per-message *throughput* cost is
// far below the flight latency; the paper's Figure 9 reports latency.)
func mpOneWay(p *arch.Platform, a, b int, cfg Config) float64 {
	m := memsim.New(p)
	net := simmp.NewNetwork(m, []int{a, b}, simmp.DefaultOptions(m))
	n := cfg.LatencyOps
	var total uint64
	m.Spawn(a, func(t *memsim.Thread) {
		for i := 0; i < n; i++ {
			net.Send(t, b, simmp.Msg{W: [7]uint64{t.Now()}})
			// Pace the stream so each latency sample is independent.
			t.Pause(200)
		}
	})
	m.Spawn(b, func(t *memsim.Thread) {
		for i := 0; i < n; i++ {
			msg := net.Recv(t, a)
			total += t.Now() - msg.W[0]
		}
	})
	m.Run()
	return float64(total) / float64(n)
}

// mpRoundTrip measures the per-call cost of request-response ping-pong.
func mpRoundTrip(p *arch.Platform, a, b int, cfg Config) float64 {
	m := memsim.New(p)
	net := simmp.NewNetwork(m, []int{a, b}, simmp.DefaultOptions(m))
	n := cfg.LatencyOps
	m.Spawn(a, func(t *memsim.Thread) {
		for i := 0; i < n; i++ {
			net.Call(t, b, simmp.Msg{W: [7]uint64{uint64(i)}})
		}
	})
	m.Spawn(b, func(t *memsim.Thread) {
		for i := 0; i < n; i++ {
			from, msg := net.RecvAny(t)
			net.Send(t, from, msg)
		}
	})
	cycles := m.Run()
	return float64(cycles) / float64(n)
}

// Figure10 reproduces "Total throughput of client-server communication":
// one server, a growing number of clients, one-way and round-trip modes.
func Figure10(p *arch.Platform, cfg Config) Figure {
	cfg = cfg.orDefault()
	fig := Figure{
		Name:     "Figure 10: client-server throughput",
		Platform: p.Name,
		XLabel:   "clients",
		YLabel:   "throughput (Mops/s)",
	}
	counts := []int{1, 2, 5}
	for n := 10; n < p.NumCores; n += 5 {
		counts = append(counts, n)
	}
	oneWay := Series{Label: "one-way"}
	roundTrip := Series{Label: "round-trip"}
	for _, n := range counts {
		ow, rt := clientServer(p, n, cfg)
		oneWay.Points = append(oneWay.Points, Point{X: n, Y: ow})
		roundTrip.Points = append(roundTrip.Points, Point{X: n, Y: rt})
	}
	fig.Series = append(fig.Series, oneWay, roundTrip)
	return fig
}

// poison is the message word clients use to announce they are finished;
// the server exits once every client has said goodbye, so no thread is
// ever left parked on an unserved buffer.
const poison = ^uint64(0)

// clientServer measures total message throughput with one server and
// nClients clients, in both modes.
func clientServer(p *arch.Platform, nClients int, cfg Config) (oneWay, roundTrip float64) {
	for mode := 0; mode < 2; mode++ {
		m := memsim.New(p)
		cores := p.PlaceThreads(nClients + 1)
		net := simmp.NewNetwork(m, cores, simmp.DefaultOptions(m))
		server := cores[0]
		stop := cfg.Deadline
		var served uint64
		m.Spawn(server, func(t *memsim.Thread) {
			done := 0
			for done < nClients {
				from, msg := net.RecvAny(t)
				if msg.W[0] == poison {
					done++
					continue
				}
				if mode == 1 {
					net.Send(t, from, msg)
				}
				if t.Now() <= stop {
					served++
				}
			}
		})
		for _, c := range cores[1:] {
			c := c
			m.Spawn(c, func(t *memsim.Thread) {
				for t.Now() < stop {
					if mode == 1 {
						net.Call(t, server, simmp.Msg{W: [7]uint64{1}})
					} else {
						net.Send(t, server, simmp.Msg{W: [7]uint64{1}})
					}
				}
				net.Send(t, server, simmp.Msg{W: [7]uint64{poison}})
			})
		}
		m.Run()
		mops := p.MopsFrom(served, stop)
		if mode == 0 {
			oneWay = mops
		} else {
			roundTrip = mops
		}
	}
	return oneWay, roundTrip
}
