package bench

import (
	"testing"

	"ssync/internal/arch"
	"ssync/internal/simlocks"
)

// quick is a small configuration keeping the shape-assertion tests fast.
var quickCfg = Config{Deadline: 80_000, LatencyOps: 40, Reps: 2}

func TestFigure3Shape(t *testing.T) {
	fig := Figure3(quickCfg)
	naive := FindSeries(fig, string(TicketNaive))
	backoff := FindSeries(fig, string(TicketBackoff))
	pf := FindSeries(fig, string(TicketPrefetchw))
	if naive == nil || backoff == nil || pf == nil {
		t.Fatal("missing series")
	}
	// At high thread counts: naive much worse than back-off; prefetchw at
	// least as good as back-off (paper: up to 2× better).
	n := 48
	if naive.At(n) < 2*backoff.At(n) {
		t.Errorf("naive (%.0f) should be ≥2× back-off (%.0f) at %d threads",
			naive.At(n), backoff.At(n), n)
	}
	if pf.At(n) > backoff.At(n) {
		t.Errorf("prefetchw (%.0f) should beat back-off (%.0f) at %d threads",
			pf.At(n), backoff.At(n), n)
	}
	// Latency grows with the thread count for every variant.
	if naive.At(48) <= naive.At(6) || backoff.At(48) <= backoff.At(6) {
		t.Error("latency must grow with contention")
	}
}

func TestFigure4Shape(t *testing.T) {
	// Multi-sockets: fast single thread, collapse at 2+, further drop when
	// crossing sockets. Single-sockets: throughput stabilises, no collapse.
	for _, pn := range []string{"Opteron", "Xeon"} {
		p := arch.ByName(pn)
		fig := Figure4(p, quickCfg)
		fai := FindSeries(fig, "FAI")
		if fai.At(1) < 2*fai.At(2) {
			t.Errorf("%s: single-thread FAI (%.1f) must dwarf 2-thread (%.1f)", pn, fai.At(1), fai.At(2))
		}
		inSocket := 6
		crossed := 18
		if pn == "Xeon" {
			inSocket, crossed = 10, 20
		}
		if fai.At(inSocket) < 1.3*fai.At(crossed) {
			t.Errorf("%s: crossing sockets must drop FAI throughput (%.1f -> %.1f)",
				pn, fai.At(inSocket), fai.At(crossed))
		}
	}
	// Niagara: TAS is the efficient hardware primitive (paper §5.4).
	nia := Figure4(arch.Niagara(), quickCfg)
	tas := FindSeries(nia, "TAS")
	for _, other := range []string{"CAS", "SWAP", "FAI"} {
		if tas.At(32) <= FindSeries(nia, other).At(32) {
			t.Errorf("Niagara TAS (%.1f) must beat %s (%.1f)", tas.At(32), other, FindSeries(nia, other).At(32))
		}
	}
	// Tilera: FAI is the fastest atomic (paper §5.4).
	til := Figure4(arch.Tilera(), quickCfg)
	fai := FindSeries(til, "FAI")
	for _, other := range []string{"CAS", "TAS", "SWAP"} {
		if fai.At(24) <= FindSeries(til, other).At(24) {
			t.Errorf("Tilera FAI (%.1f) must beat %s (%.1f)", fai.At(24), other, FindSeries(til, other).At(24))
		}
	}
	// Single-sockets do not collapse: throughput at full load stays within
	// 2x of the few-core value.
	for _, pn := range []string{"Niagara", "Tilera"} {
		p := arch.ByName(pn)
		fig := Figure4(p, quickCfg)
		f := FindSeries(fig, "FAI")
		few, full := f.Points[2].Y, f.Points[len(f.Points)-1].Y
		if full < few/2 {
			t.Errorf("%s: FAI collapsed from %.1f to %.1f — single-sockets must stay stable", pn, few, full)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	// Extreme contention on the Xeon: hierarchical locks are the best at
	// scale (paper §6.1.2); multi-socket throughput at high counts is far
	// below single-thread.
	p := arch.Xeon()
	fig := Figure5(p, quickCfg)
	ht := FindSeries(fig, "HTICKET")
	tas := FindSeries(fig, "TAS")
	if ht.At(40) <= tas.At(40) {
		t.Errorf("HTICKET (%.2f) must beat TAS (%.2f) under extreme contention across sockets",
			ht.At(40), tas.At(40))
	}
	ticket := FindSeries(fig, "TICKET")
	if ticket.At(1) < 4*ticket.At(40) {
		t.Errorf("Xeon single-lock throughput must collapse by >4x across sockets (1: %.2f, 40: %.2f)",
			ticket.At(1), ticket.At(40))
	}
}

func TestFigure7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("512-lock sweep across the full thread grid")
	}
	// Very low contention: simple locks match or beat the queue locks
	// (paper: "it is generally the ticket lock that performs the best" on
	// the Opteron/Niagara/Tilera), and single-sockets scale.
	p := arch.Niagara()
	fig := Figure7(p, quickCfg)
	ticket := FindSeries(fig, "TICKET")
	mcs := FindSeries(fig, "MCS")
	n := 32
	if ticket.At(n) < mcs.At(n)*0.9 {
		t.Errorf("Niagara low contention: TICKET (%.1f) should be at least on par with MCS (%.1f)",
			ticket.At(n), mcs.At(n))
	}
	if ticket.At(32) < 4*ticket.At(1) {
		t.Errorf("Niagara must scale under low contention: 1 thread %.1f, 32 threads %.1f",
			ticket.At(1), ticket.At(32))
	}
}

func TestFigure6Shape(t *testing.T) {
	p := arch.Opteron()
	res := Figure6(p, quickCfg)
	get := func(alg simlocks.Alg, class string) float64 {
		for _, r := range res {
			if r.Alg == alg && r.Class == class {
				return r.Cycles
			}
		}
		t.Fatalf("missing %s/%s", alg, class)
		return 0
	}
	// Crossing sockets costs much more than staying on the die; remote
	// acquisitions can be an order of magnitude above single-threaded.
	for _, alg := range []simlocks.Alg{simlocks.TAS, simlocks.TICKET, simlocks.MCS} {
		if get(alg, "two hops") <= get(alg, "same die") {
			t.Errorf("%s: two-hop acquisition must cost more than same-die", alg)
		}
		if get(alg, "two hops") < 2*get(alg, "single thread") {
			t.Errorf("%s: remote acquisition must dwarf the single-thread case", alg)
		}
	}
	// MUTEX carries parking overhead even uncontested vs the spin locks.
	if get(simlocks.MUTEX, "single thread") <= get(simlocks.TAS, "single thread") {
		t.Error("MUTEX uncontested latency should exceed TAS's")
	}
}

func TestFigure8BestLockVaries(t *testing.T) {
	if testing.Short() {
		t.Skip("two platforms × two lock counts × full algorithm set")
	}
	// "Every locking scheme has its fifteen minutes of fame": across
	// platforms and contention levels, more than one algorithm must win.
	winners := map[simlocks.Alg]bool{}
	for _, p := range []*arch.Platform{arch.Opteron(), arch.Niagara()} {
		for _, nLocks := range []int{4, 128} {
			for _, r := range Figure8(p, nLocks, quickCfg) {
				winners[r.Alg] = true
			}
		}
	}
	if len(winners) < 2 {
		t.Errorf("a single lock won everywhere (%v) — the paper finds no universal winner", winners)
	}
}

func TestFigure9Shape(t *testing.T) {
	// One-way ≈ half the round-trip; Tilera hardware MP is far cheaper
	// than the Xeon's cache-coherence MP at distance.
	xeon := Figure9(arch.Xeon(), quickCfg)
	for _, r := range xeon {
		if r.RoundTrip < r.OneWay*1.5 {
			t.Errorf("Xeon %s: round-trip (%.0f) should be ≈2× one-way (%.0f)", r.Class, r.RoundTrip, r.OneWay)
		}
	}
	if xeon[len(xeon)-1].OneWay <= xeon[0].OneWay {
		t.Error("Xeon MP latency must grow with distance")
	}
	til := Figure9(arch.Tilera(), quickCfg)
	if til[0].OneWay > 100 {
		t.Errorf("Tilera hardware one-way = %.0f cycles, want <100 (paper: 61)", til[0].OneWay)
	}
}

func TestFigure10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("client sweep up to the full core count on two platforms")
	}
	// A single server saturates: throughput reaches a bound and stays
	// there; the Tilera (hardware MP) reaches the highest bound.
	til := Figure10(arch.Tilera(), quickCfg)
	rt := FindSeries(til, "round-trip")
	last := rt.Points[len(rt.Points)-1]
	first := rt.Points[0]
	if last.Y < first.Y {
		t.Errorf("Tilera round-trip throughput must not degrade with clients (%.1f -> %.1f)", first.Y, last.Y)
	}
	nia := Figure10(arch.Niagara(), quickCfg)
	niaRT := FindSeries(nia, "round-trip")
	if til.Series[1].Points[len(rt.Points)-1].Y < niaRT.Points[len(niaRT.Points)-1].Y {
		t.Error("Tilera hardware MP should outperform Niagara software MP at full load")
	}
}

func TestFigure11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("two buckets×entries panels across the full algorithm set")
	}
	// High contention (12 buckets): message passing beats the best lock at
	// scale on the Opteron; low contention (512): locks win everywhere.
	p := arch.Opteron()
	high := Figure11(p, 12, 12, quickCfg)
	low := Figure11(p, 512, 12, quickCfg)
	lastHigh := high[len(high)-1]
	if lastHigh.MPMops <= lastHigh.BestMops {
		t.Errorf("high contention at %d threads: mp (%.2f) should beat locks (%.2f)",
			lastHigh.Threads, lastHigh.MPMops, lastHigh.BestMops)
	}
	for _, r := range low {
		if r.Threads == 1 {
			continue
		}
		if r.MPMops > r.BestMops {
			t.Errorf("low contention at %d threads: locks (%.2f) should beat mp (%.2f)",
				r.Threads, r.BestMops, r.MPMops)
		}
	}
	// Low contention scales far better than high contention.
	if low[len(low)-1].Scalability < lastHigh.Scalability {
		t.Error("low-contention scalability should exceed high-contention scalability")
	}
}

func TestFigure12Shape(t *testing.T) {
	// Set test: lock choice matters (29-50% speed-ups over MUTEX); get
	// test: it does not.
	p := arch.Xeon()
	set := Figure12(p, false, quickCfg)
	if sp := KVSSpeedup(set); sp < 0.10 {
		t.Errorf("set-test best-lock speed-up over MUTEX = %.0f%%, want ≥10%%", sp*100)
	}
	get := Figure12(p, true, quickCfg)
	if sp := KVSSpeedup(get); sp > 0.10 || sp < -0.10 {
		t.Errorf("get-test speed-up = %.0f%%, want ≈0 (lock-insensitive)", sp*100)
	}
	// Throughput saturates: 18 threads is not ≥16x of 1 thread.
	var one, eighteen float64
	for _, r := range set {
		if r.Alg == simlocks.TICKET {
			if r.Threads == 1 {
				one = r.Kops
			}
			if r.Threads == 18 {
				eighteen = r.Kops
			}
		}
	}
	if eighteen > 16*one {
		t.Errorf("set test must not scale linearly to 18 threads (1: %.1f, 18: %.1f)", one, eighteen)
	}
}

func TestTMShape(t *testing.T) {
	// §8: TM results mirror the hash table: mp wins under high contention
	// at scale, locks win under low contention.
	p := arch.Opteron()
	high := TMExperiment(p, 8, quickCfg)
	low := TMExperiment(p, 1024, quickCfg)
	lastH := high[len(high)-1]
	if lastH.MPMops <= lastH.LockMops {
		t.Errorf("high contention TM at %d threads: mp (%.3f) should beat locks (%.3f)",
			lastH.Threads, lastH.MPMops, lastH.LockMops)
	}
	lastL := low[len(low)-1]
	if lastL.LockMops <= lastL.MPMops {
		t.Errorf("low contention TM: locks (%.3f) should beat mp (%.3f)", lastL.LockMops, lastL.MPMops)
	}
}

func TestAblations(t *testing.T) {
	nc := AblationNoContention(arch.Opteron(), 24, quickCfg)
	if nc.Off <= nc.On {
		t.Errorf("disabling line serialisation must raise throughput (%.1f vs %.1f)", nc.Off, nc.On)
	}
	pf := AblationProbeFilter(24, quickCfg)
	if pf.Off <= pf.On {
		t.Errorf("a complete directory must beat the probe filter (%.2f vs %.2f)", pf.Off, pf.On)
	}
	mp := AblationMPPrefetchw(quickCfg)
	if mp.On >= mp.Off {
		t.Errorf("prefetchw must cut Opteron MP latency (%.0f vs %.0f)", mp.On, mp.Off)
	}
	tb := AblationTicketBackoff(24, quickCfg)
	if tb.On >= tb.Off {
		t.Errorf("back-off must cut naive ticket latency (%.0f vs %.0f)", tb.On, tb.Off)
	}
}

func TestDeterministicExperiments(t *testing.T) {
	a := LockThroughput(arch.Opteron(), simlocks.TICKET, 12, 4, quickCfg)
	b := LockThroughput(arch.Opteron(), simlocks.TICKET, 12, 4, quickCfg)
	if a != b {
		t.Fatalf("experiment not reproducible: %v vs %v", a, b)
	}
}

func TestFormatters(t *testing.T) {
	p := arch.Niagara()
	cfg := Config{Deadline: 30_000, LatencyOps: 10, Reps: 1}
	if s := FormatFigure(Figure4(p, cfg)); len(s) == 0 {
		t.Error("empty Figure4 rendering")
	}
	if s := FormatTable3(p); len(s) == 0 {
		t.Error("empty Table3 rendering")
	}
	if s := FormatFigure9(p, Figure9(p, cfg)); len(s) == 0 {
		t.Error("empty Figure9 rendering")
	}
	if s := FormatFigure6(p, Figure6(p, cfg)); len(s) == 0 {
		t.Error("empty Figure6 rendering")
	}
}
