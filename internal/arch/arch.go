// Package arch models the four many-core platforms of the SOSP'13 paper
// "Everything You Always Wanted to Know about Synchronization but Were
// Afraid to Ask": the 4-socket AMD Opteron (directory-based MOESI with an
// incomplete probe filter), the 8-socket Intel Xeon (broadcast MESIF with an
// inclusive LLC), the uniform Sun Niagara 2 (crossbar, duplicate-tag
// directory) and the non-uniform Tilera TILE-Gx36 (mesh, distributed
// home-tile directory). It also models the two small 2-socket machines the
// paper discusses in §8.
//
// A Platform bundles three things:
//
//   - the topology (cores, dies, memory nodes, distance between cores),
//   - the coherence-transaction latency tables of the paper's Tables 2 and 3,
//     used by the machine simulator (internal/memsim) as the cost of each
//     cache-line transaction, and
//   - protocol "quirks" that change *which* transaction a memory operation
//     generates (Opteron's incomplete directory, Xeon's inclusive LLC,
//     Tilera's per-hop distance and hardware message passing).
//
// The tables are calibrated to the paper's measurements; the simulator
// composes them, so contended behaviour (the paper's Figures 3-12) is
// emergent rather than hard-coded.
package arch

import "fmt"

// Op enumerates the memory operations whose coherence cost the platform
// models distinguish (paper §5).
type Op uint8

// Memory operations.
const (
	Load Op = iota
	Store
	CAS
	FAI
	TAS
	SWAP
	numOps
)

// String returns the paper's name for the operation.
func (o Op) String() string {
	switch o {
	case Load:
		return "load"
	case Store:
		return "store"
	case CAS:
		return "CAS"
	case FAI:
		return "FAI"
	case TAS:
		return "TAS"
	case SWAP:
		return "SWAP"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// AtomicOps lists the atomic read-modify-write operations.
var AtomicOps = []Op{CAS, FAI, TAS, SWAP}

// IsAtomic reports whether the operation is an atomic read-modify-write.
func (o Op) IsAtomic() bool { return o >= CAS }

// State is the logical MESI/MOESI/MESIF state of a cache line as seen by
// the coherence protocol. Forward (Xeon) is folded into Shared, as in the
// paper's measurements ("its effects are included in the load from shared
// case").
type State uint8

// Cache-line states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Owned
	Modified
	numStates
)

// String returns the canonical single-word state name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "Invalid"
	case Shared:
		return "Shared"
	case Exclusive:
		return "Exclusive"
	case Owned:
		return "Owned"
	case Modified:
		return "Modified"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Platform describes one simulated machine. All latencies are in cycles of
// the platform's own clock (the paper reports cycles throughout).
type Platform struct {
	Name string
	// Table 1 characteristics (informational and used for conversions).
	NumCores int
	NumNodes int // memory nodes (= dies with a controller)
	ClockGHz float64

	// Table 3: local load-to-use latencies, cycles.
	L1, L2, LLC, RAM uint64

	// AtomicLocal is the cost of an atomic op on a line already held in
	// Modified/Exclusive state by the issuing core (the paper: "latency of
	// the operations increases from approximately 20 to 120 cycles" once a
	// second core contends, so ~20 is the local cost on the multi-sockets).
	AtomicLocal uint64

	// StoreLocal is the cost of a store to a line the core already owns.
	StoreLocal uint64

	// DistNames names the distance classes used by the latency tables, in
	// table-index order (e.g. Opteron: same die, same MCM, one hop, two
	// hops). For the mesh-based Tilera the classes are hop counts and the
	// tables are generated from linear per-hop formulas.
	DistNames []string

	// lat[op][state][class] is the cycles for a coherence transaction of op
	// on a line in the given state whose current holder is at the given
	// distance class.
	lat [numOps][numStates][]uint64

	// Quirks.

	// IncompleteDirectory marks the Opteron probe filter: the directory does
	// not track sharers, so any store/atomic to a Shared or Owned line pays
	// a broadcast, and lines whose home node is remote to every involved
	// core pay DirHopPenalty per hop from the requester to the home node.
	IncompleteDirectory bool
	DirHopPenalty       uint64

	// InclusiveLLC marks the Xeon: a load whose data is present in the
	// requester's socket completes at same-die cost regardless of where
	// other copies live, and the LLC detects purely-intra-socket sharing.
	InclusiveLLC bool

	// ReadOccupancy is how long, in cycles, a demote-free load (from a
	// Shared/Owned line) occupies the line's serialisation point. Read
	// sharing is nearly concurrent on the Xeon/Niagara/Tilera, but the
	// Opteron's probe filter serialises every probe at the home directory.
	ReadOccupancy uint64

	// PerSharerInval is the extra invalidation cost, in cycles, per sharer
	// beyond the first when a store/atomic hits a Shared line (visible on
	// the Xeon: 48-sharer store 445 vs 428; strong on the Tilera: 200 vs
	// ~90).
	PerSharerInval float64

	// Uniform marks the Niagara: distance to the LLC is identical for all
	// cores, so only same-core vs other-core matters.
	Uniform bool

	// HardwareMP marks the Tilera iMesh hardware message passing; when set,
	// the message-passing library uses MPBase + MPPerHop*hops one-way
	// instead of cache-line transfers.
	HardwareMP bool
	MPBase     uint64
	MPPerHop   float64

	// Mutex (pthread) model: a failed trylock parks the thread
	// (MutexParkCost), the unlocker pays MutexWakeCost to wake the head
	// waiter, and the woken thread resumes MutexResumeCost later.
	MutexParkCost   uint64
	MutexWakeCost   uint64
	MutexResumeCost uint64

	// Topology callbacks.
	nodeOf     func(core int) int
	distClass  func(a, b int) int
	hops       func(a, b int) int
	classToNod func(core, node int) int // distance class from core to node
	hopsToNode func(core, node int) int
	place      func(n int) []int

	// MultiSocket is true for the Opteron and Xeon models; hierarchical
	// locks are only meaningful there (paper §6.1.2).
	MultiSocket bool

	// MaxHops is the largest hop distance on the platform (mesh diameter
	// for the Tilera, 2 for the multi-sockets).
	MaxHops int
}

// NodeOf returns the memory node (die) of a core.
func (p *Platform) NodeOf(core int) int { return p.nodeOf(core) }

// DistClass returns the distance-class index between two cores, suitable
// for indexing the platform latency tables (0 is nearest).
func (p *Platform) DistClass(a, b int) int { return p.distClass(a, b) }

// Hops returns the interconnect hop count between two cores (0 when they
// share a die).
func (p *Platform) Hops(a, b int) int { return p.hops(a, b) }

// DistClassToNode returns the distance class from a core to a memory node.
func (p *Platform) DistClassToNode(core, node int) int { return p.classToNod(core, node) }

// HopsToNode returns the interconnect hop count from a core to a memory
// node (used for the Opteron's remote-directory penalty).
func (p *Platform) HopsToNode(core, node int) int { return p.hopsToNode(core, node) }

// NumClasses returns the number of distance classes in the latency tables.
func (p *Platform) NumClasses() int { return len(p.DistNames) }

// PlaceThreads returns the core ids the paper's methodology would pin n
// threads to: multi-sockets fill a socket before spilling to the next;
// the Niagara spreads threads evenly across its 8 physical cores; the
// Tilera fills the mesh in row order.
func (p *Platform) PlaceThreads(n int) []int {
	if n < 0 || n > p.NumCores {
		panic(fmt.Sprintf("arch: cannot place %d threads on %s (%d cores)", n, p.Name, p.NumCores))
	}
	return p.place(n)
}

// Lat returns the latency, in cycles, of a coherence transaction: operation
// op on a line previously in state st whose holder (or, for Invalid, home
// memory node) is at distance class class from the requester.
func (p *Platform) Lat(op Op, st State, class int) uint64 {
	t := p.lat[op][st]
	if len(t) == 0 {
		panic(fmt.Sprintf("arch: %s has no latency for %v on %v line", p.Name, op, st))
	}
	if class < 0 {
		class = 0
	}
	if class >= len(t) {
		class = len(t) - 1
	}
	return t[class]
}

// CyclesToMops converts a per-operation cost in cycles to a throughput in
// million operations per second on this platform's clock.
func (p *Platform) CyclesToMops(cyclesPerOp float64) float64 {
	if cyclesPerOp <= 0 {
		return 0
	}
	return p.ClockGHz * 1e3 / cyclesPerOp
}

// MopsFrom converts an operation count over a cycle span to Mops/s.
func (p *Platform) MopsFrom(ops uint64, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(ops) / float64(cycles) * p.ClockGHz * 1e3
}

func (p *Platform) setLat(op Op, st State, byClass []uint64) {
	p.lat[op][st] = byClass
}

func (p *Platform) setAtomic(st State, byClass []uint64) {
	for _, op := range AtomicOps {
		p.lat[op][st] = byClass
	}
}

// linear builds a per-class table from a per-hop linear model, one entry
// per hop count 0..maxHops.
func linear(base float64, slope float64, maxHops int) []uint64 {
	t := make([]uint64, maxHops+1)
	for h := 0; h <= maxHops; h++ {
		v := base + slope*float64(h)
		if v < 1 {
			v = 1
		}
		t[h] = uint64(v + 0.5)
	}
	return t
}
