package arch

import "testing"

func TestTable2Calibration(t *testing.T) {
	// Spot-check the latency tables against the paper's Table 2.
	op := Opteron()
	cases := []struct {
		p     *Platform
		op    Op
		st    State
		class int
		want  uint64
	}{
		{op, Load, Modified, OptSameDie, 81},
		{op, Load, Modified, OptTwoHops, 252},
		{op, Load, Owned, OptSameMCM, 163},
		{op, Store, Shared, OptSameDie, 246},
		{op, Store, Owned, OptTwoHops, 291},
		{op, CAS, Modified, OptSameDie, 110},
		{op, FAI, Shared, OptTwoHops, 332},
		{op, Load, Invalid, OptSameDie, 136},
	}
	xe := Xeon()
	cases = append(cases,
		struct {
			p     *Platform
			op    Op
			st    State
			class int
			want  uint64
		}{xe, Load, Shared, XeonSameDie, 44},
		struct {
			p     *Platform
			op    Op
			st    State
			class int
			want  uint64
		}{xe, Load, Shared, XeonTwoHops, 334},
		struct {
			p     *Platform
			op    Op
			st    State
			class int
			want  uint64
		}{xe, Store, Modified, XeonOneHop, 320},
		struct {
			p     *Platform
			op    Op
			st    State
			class int
			want  uint64
		}{xe, SWAP, Shared, XeonTwoHops, 423},
	)
	for _, c := range cases {
		if got := c.p.Lat(c.op, c.st, c.class); got != c.want {
			t.Errorf("%s: Lat(%v,%v,%d) = %d, want %d", c.p.Name, c.op, c.st, c.class, got, c.want)
		}
	}
}

func TestNiagaraPerOpAtomics(t *testing.T) {
	p := Niagara()
	if cas := p.Lat(CAS, Modified, NiaSameCore); cas != 71 {
		t.Errorf("CAS same-core = %d, want 71", cas)
	}
	if tas := p.Lat(TAS, Modified, NiaOtherCore); tas != 55 {
		t.Errorf("TAS other-core = %d, want 55", tas)
	}
	// TAS is the fast hardware primitive on SPARC; FAI is CAS-emulated.
	if p.Lat(TAS, Modified, NiaOtherCore) >= p.Lat(FAI, Modified, NiaOtherCore) {
		t.Error("TAS must be cheaper than FAI on the Niagara")
	}
}

func TestTileraLinearDistance(t *testing.T) {
	p := Tilera()
	if got := p.Lat(Load, Modified, 1); got != 45 {
		t.Errorf("load one hop = %d, want 45", got)
	}
	if got := p.Lat(Load, Modified, 10); got != 63 {
		t.Errorf("load max hops = %d, want 63 (43+2*10)", got)
	}
	// FAI is the fastest atomic on the Tilera.
	for _, opn := range []Op{CAS, TAS, SWAP} {
		if p.Lat(FAI, Modified, 1) >= p.Lat(opn, Modified, 1) {
			t.Errorf("FAI must be the fastest Tilera atomic (vs %v)", opn)
		}
	}
	// Latency grows monotonically with distance.
	for h := 1; h <= 10; h++ {
		if p.Lat(Load, Modified, h) < p.Lat(Load, Modified, h-1) {
			t.Errorf("Tilera load latency not monotone at hop %d", h)
		}
	}
}

func TestOpteronTopology(t *testing.T) {
	p := Opteron()
	if p.DistClass(0, 5) != OptSameDie {
		t.Error("cores 0 and 5 share a die")
	}
	if p.DistClass(0, 6) != OptSameMCM {
		t.Error("cores 0 and 6 are in one MCM")
	}
	if p.NodeOf(47) != 7 {
		t.Errorf("core 47 on node %d, want 7", p.NodeOf(47))
	}
	// Max distance is two hops; some pair must reach it.
	seenTwo := false
	for a := 0; a < 48; a++ {
		for b := 0; b < 48; b++ {
			c := p.DistClass(a, b)
			if c > OptTwoHops {
				t.Fatalf("class %d out of range", c)
			}
			if c == OptTwoHops {
				seenTwo = true
			}
		}
	}
	if !seenTwo {
		t.Error("no core pair at two hops")
	}
}

func TestXeonTopology(t *testing.T) {
	p := Xeon()
	for a := 0; a < 80; a += 7 {
		for b := 0; b < 80; b += 3 {
			c := p.DistClass(a, b)
			if c < 0 || c > XeonTwoHops {
				t.Fatalf("class %d out of range", c)
			}
			if (p.NodeOf(a) == p.NodeOf(b)) != (c == XeonSameDie) {
				t.Fatalf("same-socket cores must be class 0 (a=%d b=%d)", a, b)
			}
		}
	}
}

func TestNiagaraPlacement(t *testing.T) {
	p := Niagara()
	cores := p.PlaceThreads(8)
	phys := map[int]bool{}
	for _, c := range cores {
		phys[c/8] = true
	}
	if len(phys) != 8 {
		t.Errorf("8 threads must land on 8 distinct physical cores, got %d", len(phys))
	}
	all := p.PlaceThreads(64)
	seen := map[int]bool{}
	for _, c := range all {
		if c < 0 || c >= 64 || seen[c] {
			t.Fatalf("placement repeats or out of range: %v", all)
		}
		seen[c] = true
	}
}

func TestTileraMesh(t *testing.T) {
	p := Tilera()
	if p.Hops(0, 35) != 10 {
		t.Errorf("corner-to-corner = %d hops, want 10", p.Hops(0, 35))
	}
	if p.Hops(0, 1) != 1 || p.Hops(0, 6) != 1 {
		t.Error("adjacent tiles must be one hop")
	}
	// Home tiles cover a spread of the mesh.
	seen := map[int]bool{}
	for id := uint64(0); id < 400; id++ {
		h := p.HomeTile(id)
		if h < 0 || h >= 36 {
			t.Fatalf("home tile %d out of range", h)
		}
		seen[h] = true
	}
	if len(seen) < 30 {
		t.Errorf("home-tile hash covers only %d tiles", len(seen))
	}
}

func TestCrossSocketRatios(t *testing.T) {
	// §8: cross-socket coherence is ≈1.6× intra on the 2-socket Opteron and
	// ≈2.7× on the 2-socket Xeon.
	o2 := Opteron2()
	r := float64(o2.Lat(Load, Modified, 1)) / float64(o2.Lat(Load, Modified, 0))
	if r < 1.5 || r > 1.7 {
		t.Errorf("Opteron2 cross/intra = %.2f, want ≈1.6", r)
	}
	x2 := Xeon2()
	r = float64(x2.Lat(Load, Modified, 1)) / float64(x2.Lat(Load, Modified, 0))
	if r < 2.6 || r > 2.8 {
		t.Errorf("Xeon2 cross/intra = %.2f, want ≈2.7", r)
	}
}

func TestByName(t *testing.T) {
	for _, n := range Names() {
		p := ByName(n)
		if p == nil || p.Name != n {
			t.Errorf("ByName(%q) broken", n)
		}
	}
	if ByName("PDP-11") != nil {
		t.Error("unknown platform must return nil")
	}
}

func TestPlaceThreadsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("placing 49 threads on the Opteron must panic")
		}
	}()
	Opteron().PlaceThreads(49)
}

func TestCyclesToMops(t *testing.T) {
	p := Opteron() // 2.1 GHz
	if got := p.CyclesToMops(21); got < 99.9 || got > 100.1 {
		t.Errorf("21 cycles at 2.1GHz = %v Mops, want 100", got)
	}
	if p.CyclesToMops(0) != 0 {
		t.Error("zero cost must give zero throughput")
	}
	if got := p.MopsFrom(1000, 21000); got < 99.9 || got > 100.1 {
		t.Errorf("MopsFrom = %v, want 100", got)
	}
}

func TestCrossingSocketsIsAKiller(t *testing.T) {
	// Headline observation: any cross-socket operation is 2–7.5× the
	// intra-socket one on the multi-sockets.
	for _, p := range []*Platform{Opteron(), Xeon()} {
		last := p.NumClasses() - 1
		for _, op := range []Op{Load, Store, CAS} {
			intra := float64(p.Lat(op, Modified, 0))
			cross := float64(p.Lat(op, Modified, last))
			if ratio := cross / intra; ratio < 2 || ratio > 8 {
				t.Errorf("%s %v cross/intra = %.1f, want within [2, 8]", p.Name, op, ratio)
			}
		}
	}
}
