package arch

import "sort"

// Distance-class indices for the multi-socket platforms. The tables in
// tables.go are laid out in this order (paper Table 2 column order).
const (
	// Opteron classes.
	OptSameDie = 0
	OptSameMCM = 1
	OptOneHop  = 2
	OptTwoHops = 3
	// Xeon classes.
	XeonSameDie = 0
	XeonOneHop  = 1
	XeonTwoHops = 2
	// Niagara classes.
	NiaSameCore  = 0
	NiaOtherCore = 1
)

// Opteron returns the 48-core, 4-socket (8-die) AMD Opteron "Magny-Cours"
// model: directory-based MOESI with an incomplete probe filter and a
// non-inclusive LLC (paper §3.1).
//
// Topology: 4 multi-chip modules (MCMs), each with two 6-core dies; every
// die is a memory node. Dies within an MCM are one (fast) hop apart; dies
// in different MCMs are one or two hops apart, two being the maximum.
func Opteron() *Platform {
	p := &Platform{
		Name:     "Opteron",
		NumCores: 48,
		NumNodes: 8,
		ClockGHz: 2.1,
		L1:       3, L2: 15, LLC: 40, RAM: 136,
		AtomicLocal: 19,
		StoreLocal:  3,
		DistNames:   []string{"same die", "same mcm", "one hop", "two hops"},

		IncompleteDirectory: true,
		DirHopPenalty:       115,
		ReadOccupancy:       120,
		MultiSocket:         true,
		MaxHops:             2,

		MutexParkCost:   2200,
		MutexWakeCost:   600,
		MutexResumeCost: 2600,
	}
	die := func(c int) int { return c / 6 }
	p.nodeOf = die
	p.distClass = func(a, b int) int { return opteronDieClass(die(a), die(b)) }
	p.hops = func(a, b int) int { return opteronDieHops(die(a), die(b)) }
	p.classToNod = func(core, node int) int { return opteronDieClass(die(core), node) }
	p.hopsToNode = func(core, node int) int { return opteronDieHops(die(core), node) }
	p.place = sequentialPlacement(48)
	opteronTables(p)
	return p
}

// opteronDieClass maps a pair of dies to a distance class. Dies 2m and
// 2m+1 form MCM m. Die-to-die links follow the Magny-Cours pattern where
// same-position dies of different MCMs are directly connected and
// cross-position dies of different MCMs are two hops apart.
func opteronDieClass(d1, d2 int) int {
	switch {
	case d1 == d2:
		return OptSameDie
	case d1/2 == d2/2:
		return OptSameMCM
	case d1%2 == d2%2:
		return OptOneHop
	default:
		return OptTwoHops
	}
}

func opteronDieHops(d1, d2 int) int {
	switch opteronDieClass(d1, d2) {
	case OptSameDie:
		return 0
	case OptSameMCM, OptOneHop:
		return 1
	default:
		return 2
	}
}

// Xeon returns the 80-core, 8-socket Intel Xeon Westmere-EX model:
// broadcast (snooping) MESIF with an inclusive LLC (paper §3.2). The eight
// sockets form a twisted hypercube with a maximum distance of two hops.
func Xeon() *Platform {
	p := &Platform{
		Name:     "Xeon",
		NumCores: 80,
		NumNodes: 8,
		ClockGHz: 2.13,
		L1:       5, L2: 11, LLC: 44, RAM: 355,
		AtomicLocal: 21,
		StoreLocal:  5,
		DistNames:   []string{"same die", "one hop", "two hops"},

		InclusiveLLC:   true,
		PerSharerInval: 0.22,
		ReadOccupancy:  25,
		MultiSocket:    true,
		MaxHops:        2,

		MutexParkCost:   2400,
		MutexWakeCost:   650,
		MutexResumeCost: 2800,
	}
	sock := func(c int) int { return c / 10 }
	p.nodeOf = sock
	p.distClass = func(a, b int) int { return xeonSockClass(sock(a), sock(b)) }
	p.hops = func(a, b int) int { return xeonSockClass(sock(a), sock(b)) }
	p.classToNod = func(core, node int) int { return xeonSockClass(sock(core), node) }
	p.hopsToNode = func(core, node int) int { return xeonSockClass(sock(core), node) }
	p.place = sequentialPlacement(80)
	xeonTables(p)
	return p
}

// xeonSockClass: hypercube neighbour (one-bit difference) is one hop; the
// twisted links keep everything else within two hops.
func xeonSockClass(s1, s2 int) int {
	if s1 == s2 {
		return XeonSameDie
	}
	x := s1 ^ s2
	if x&(x-1) == 0 { // power of two: direct link
		return XeonOneHop
	}
	return XeonTwoHops
}

// Niagara returns the Sun UltraSPARC T2 model: a single die with 8
// physical cores × 8 hardware threads, a shared write-through L1 per core
// and a uniform crossbar to the LLC with a duplicate-tag directory
// (paper §3.3).
func Niagara() *Platform {
	p := &Platform{
		Name:     "Niagara",
		NumCores: 64,
		NumNodes: 1,
		ClockGHz: 1.2,
		L1:       3, L2: 11, LLC: 24, RAM: 176,
		AtomicLocal: 55, // best hardware atomic (TAS) on a held line
		StoreLocal:  11, // write-through L1: stores cost the L2
		DistNames:   []string{"same core", "other core"},

		Uniform:       true,
		ReadOccupancy: 8,
		MaxHops:       1,

		MutexParkCost:   3400,
		MutexWakeCost:   900,
		MutexResumeCost: 3800,
	}
	phys := func(c int) int { return c / 8 }
	p.nodeOf = func(int) int { return 0 }
	p.distClass = func(a, b int) int {
		if phys(a) == phys(b) {
			return NiaSameCore
		}
		return NiaOtherCore
	}
	p.hops = func(a, b int) int { return p.distClass(a, b) }
	p.classToNod = func(int, int) int { return NiaOtherCore }
	p.hopsToNode = func(int, int) int { return 1 }
	p.place = niagaraPlacement
	niagaraTables(p)
	return p
}

// niagaraPlacement spreads n threads evenly across the 8 physical cores,
// as the paper does ("we divide the threads evenly among the eight
// physical cores").
func niagaraPlacement(n int) []int {
	out := make([]int, n)
	for t := 0; t < n; t++ {
		out[t] = (t%8)*8 + t/8
	}
	return out
}

// Tilera returns the TILE-Gx36 model: 36 tiles on a 6×6 mesh, L2 caches
// federated into a distributed LLC with a home tile per cache line, and
// hardware message passing over the iMesh (paper §3.4).
func Tilera() *Platform {
	p := &Platform{
		Name:     "Tilera",
		NumCores: 36,
		NumNodes: 2,
		ClockGHz: 1.2,
		L1:       2, L2: 11, LLC: 45, RAM: 118,
		AtomicLocal: 40,
		StoreLocal:  11,
		DistNames:   tileraDistNames(),

		PerSharerInval: 3.2,
		ReadOccupancy:  20,
		MaxHops:        10,

		HardwareMP: true,
		MPBase:     60,
		MPPerHop:   0.4,

		MutexParkCost:   2600,
		MutexWakeCost:   700,
		MutexResumeCost: 3000,
	}
	p.nodeOf = func(c int) int {
		if c%6 < 3 { // west half of the mesh on controller 0
			return 0
		}
		return 1
	}
	p.distClass = tileraHops
	p.hops = tileraHops
	p.classToNod = func(core, node int) int {
		// Controllers attach at the west edge of row 2 and the east edge of
		// row 3.
		x, y := core%6, core/6
		if node == 0 {
			return abs(x-0) + abs(y-2) + 1
		}
		return abs(x-5) + abs(y-3) + 1
	}
	p.hopsToNode = p.classToNod
	p.place = sequentialPlacement(36)
	tileraTables(p)
	return p
}

func tileraDistNames() []string {
	names := make([]string, 11)
	names[0] = "same tile"
	names[1] = "one hop"
	for h := 2; h <= 10; h++ {
		names[h] = "hops"
	}
	names[10] = "max hops"
	return names
}

// tileraHops is the Manhattan distance between two tiles on the 6×6 mesh.
func tileraHops(a, b int) int {
	return abs(a%6-b%6) + abs(a/6-b/6)
}

// HomeTile returns the tile whose L2 slice homes the given cache line on
// the Tilera (Dynamic Distributed Cache hashes lines across all tiles).
func (p *Platform) HomeTile(lineID uint64) int {
	if p.Name != "Tilera" {
		return -1
	}
	// Fibonacci hash of the line id over 36 tiles.
	return int((lineID * 0x9e3779b97f4a7c15 >> 32) % 36)
}

// Opteron2 returns the small 2-socket Opteron of §8 (2× quad-core 2384).
// Cross-socket latencies are ≈1.6× the intra-socket ones.
func Opteron2() *Platform {
	p := &Platform{
		Name:     "Opteron2",
		NumCores: 8,
		NumNodes: 2,
		ClockGHz: 2.7,
		L1:       3, L2: 15, LLC: 38, RAM: 125,
		AtomicLocal: 19,
		StoreLocal:  3,
		DistNames:   []string{"same die", "one hop"},

		IncompleteDirectory: true,
		DirHopPenalty:       60,
		ReadOccupancy:       110,
		MultiSocket:         true,
		MaxHops:             1,

		MutexParkCost:   2200,
		MutexWakeCost:   600,
		MutexResumeCost: 2600,
	}
	die := func(c int) int { return c / 4 }
	p.nodeOf = die
	p.distClass = func(a, b int) int { return boolToInt(die(a) != die(b)) }
	p.hops = p.distClass
	p.classToNod = func(core, node int) int { return boolToInt(die(core) != node) }
	p.hopsToNode = p.classToNod
	p.place = sequentialPlacement(8)
	twoSocketTables(p, 1.6)
	return p
}

// Xeon2 returns the small 2-socket Xeon of §8 (2× six-core X5660).
// Cross-socket latencies are ≈2.7× the intra-socket ones.
func Xeon2() *Platform {
	p := &Platform{
		Name:     "Xeon2",
		NumCores: 12,
		NumNodes: 2,
		ClockGHz: 2.8,
		L1:       4, L2: 10, LLC: 40, RAM: 190,
		AtomicLocal: 21,
		StoreLocal:  4,
		DistNames:   []string{"same die", "one hop"},

		InclusiveLLC:   true,
		PerSharerInval: 0.25,
		ReadOccupancy:  25,
		MultiSocket:    true,
		MaxHops:        1,

		MutexParkCost:   2400,
		MutexWakeCost:   650,
		MutexResumeCost: 2800,
	}
	sock := func(c int) int { return c / 6 }
	p.nodeOf = sock
	p.distClass = func(a, b int) int { return boolToInt(sock(a) != sock(b)) }
	p.hops = p.distClass
	p.classToNod = func(core, node int) int { return boolToInt(sock(core) != node) }
	p.hopsToNode = p.classToNod
	p.place = sequentialPlacement(12)
	twoSocketTables(p, 2.7)
	return p
}

// All returns the four main platforms in the paper's order.
func All() []*Platform {
	return []*Platform{Opteron(), Xeon(), Niagara(), Tilera()}
}

// ByName returns the named platform model (case-sensitive: Opteron, Xeon,
// Niagara, Tilera, Opteron2, Xeon2) or nil.
func ByName(name string) *Platform {
	switch name {
	case "Opteron", "opteron":
		return Opteron()
	case "Xeon", "xeon":
		return Xeon()
	case "Niagara", "niagara":
		return Niagara()
	case "Tilera", "tilera":
		return Tilera()
	case "Opteron2", "opteron2":
		return Opteron2()
	case "Xeon2", "xeon2":
		return Xeon2()
	}
	return nil
}

// Names lists the available platform model names.
func Names() []string {
	n := []string{"Opteron", "Xeon", "Niagara", "Tilera", "Opteron2", "Xeon2"}
	sort.Strings(n)
	return n
}

func sequentialPlacement(max int) func(int) []int {
	return func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
