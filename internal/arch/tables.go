package arch

// This file encodes the paper's Table 2 ("Latencies (cycles) of the cache
// coherence to load/store/CAS/FAI/TAS/SWAP a cache line depending on the
// MESI state and the distance") as the calibrated cost of a single
// coherence transaction on each platform. Entries the table does not
// provide (e.g. store/atomic on an Invalid line) are composed from the
// measured ones and documented inline.

func opteronTables(p *Platform) {
	// Loads: essentially state-independent (the protocol steps are the
	// same); columns: same die / same MCM / one hop / two hops.
	p.setLat(Load, Modified, []uint64{81, 161, 172, 252})
	p.setLat(Load, Owned, []uint64{83, 163, 175, 254})
	p.setLat(Load, Exclusive, []uint64{83, 163, 175, 253})
	p.setLat(Load, Shared, []uint64{83, 164, 176, 254})
	p.setLat(Load, Invalid, []uint64{136, 237, 247, 327})

	// Stores. A store on a Shared or Owned line pays the broadcast
	// invalidation (incomplete probe filter), hence the ~3x jump.
	p.setLat(Store, Modified, []uint64{83, 172, 191, 273})
	p.setLat(Store, Owned, []uint64{244, 255, 286, 291})
	p.setLat(Store, Exclusive, []uint64{83, 171, 191, 271})
	p.setLat(Store, Shared, []uint64{246, 255, 286, 296})
	// Store on Invalid: fetch from memory with intent to modify; compose as
	// the Invalid load plus the M-store ownership delta (~2 cycles).
	p.setLat(Store, Invalid, []uint64{138, 239, 250, 330})

	// Atomic operations: "CAS, TAS, FAI, and SWAP have essentially the same
	// latencies" on the multi-sockets.
	p.setAtomic(Modified, []uint64{110, 197, 216, 296})
	p.setAtomic(Exclusive, []uint64{110, 197, 216, 296})
	p.setAtomic(Shared, []uint64{272, 283, 312, 332})
	p.setAtomic(Owned, []uint64{272, 283, 312, 332})
	// Atomic on Invalid: memory fetch plus the atomic premium over a store.
	p.setAtomic(Invalid, []uint64{165, 264, 275, 353})
}

func xeonTables(p *Platform) {
	// Columns: same die / one hop / two hops.
	p.setLat(Load, Modified, []uint64{109, 289, 400})
	p.setLat(Load, Exclusive, []uint64{92, 273, 383})
	p.setLat(Load, Shared, []uint64{44, 223, 334})
	p.setLat(Load, Invalid, []uint64{355, 492, 601})
	// The Xeon has no Owned state; treat like Modified (never generated).
	p.setLat(Load, Owned, []uint64{109, 289, 400})

	p.setLat(Store, Modified, []uint64{115, 320, 431})
	p.setLat(Store, Exclusive, []uint64{115, 315, 425})
	p.setLat(Store, Shared, []uint64{116, 318, 428})
	p.setLat(Store, Owned, []uint64{115, 320, 431})
	p.setLat(Store, Invalid, []uint64{358, 495, 605})

	p.setAtomic(Modified, []uint64{120, 324, 430})
	p.setAtomic(Exclusive, []uint64{120, 324, 430})
	p.setAtomic(Shared, []uint64{113, 312, 423})
	p.setAtomic(Owned, []uint64{120, 324, 430})
	p.setAtomic(Invalid, []uint64{362, 500, 610})
}

func niagaraTables(p *Platform) {
	// Columns: same core / other core. The L1 is shared by the 8 hardware
	// threads of a core, so a same-core load is an L1 hit; anything else is
	// the uniform L2.
	p.setLat(Load, Modified, []uint64{3, 24})
	p.setLat(Load, Exclusive, []uint64{3, 24})
	p.setLat(Load, Shared, []uint64{3, 24})
	p.setLat(Load, Owned, []uint64{3, 24})
	p.setLat(Load, Invalid, []uint64{176, 176})

	// Write-through L1: stores always cost the L2 path.
	p.setLat(Store, Modified, []uint64{24, 24})
	p.setLat(Store, Exclusive, []uint64{24, 24})
	p.setLat(Store, Shared, []uint64{24, 24})
	p.setLat(Store, Owned, []uint64{24, 24})
	p.setLat(Store, Invalid, []uint64{176, 176})

	// SPARC has no hardware FAI/SWAP; they are CAS-based and slower. TAS is
	// a fast hardware primitive (ldstub). Columns: same core / other core.
	p.setLat(CAS, Modified, []uint64{71, 66})
	p.setLat(FAI, Modified, []uint64{108, 99})
	p.setLat(TAS, Modified, []uint64{64, 55})
	p.setLat(SWAP, Modified, []uint64{95, 90})
	p.setLat(CAS, Shared, []uint64{76, 66})
	p.setLat(FAI, Shared, []uint64{99, 99})
	p.setLat(TAS, Shared, []uint64{67, 55})
	p.setLat(SWAP, Shared, []uint64{93, 90})
	for _, op := range AtomicOps {
		p.setLat(op, Exclusive, p.lat[op][Modified])
		p.setLat(op, Owned, p.lat[op][Shared])
		// Atomic on an uncached line: memory fetch plus the atomic cost.
		p.setLat(op, Invalid, []uint64{176 + p.lat[op][Modified][1]/2, 176 + p.lat[op][Modified][1]/2})
	}
}

func tileraTables(p *Platform) {
	// The Tilera tables are linear in the hop distance to the line's home
	// tile: Table 2 gives one hop and max hops (10 on the 6×6 mesh), which
	// pins the base and the ~2 cycles/hop slope. Index = hop count 0..10.
	const hmax = 10
	loads := linear(43, 2, hmax) // one hop 45, max hops 65
	p.setLat(Load, Modified, loads)
	p.setLat(Load, Exclusive, loads)
	p.setLat(Load, Shared, loads)
	p.setLat(Load, Owned, loads)
	p.setLat(Load, Invalid, linear(113, 4.9, hmax)) // 118 .. 162

	stores := linear(55, 2, hmax) // one hop 57, max hops 77
	p.setLat(Store, Modified, stores)
	p.setLat(Store, Exclusive, stores)
	p.setLat(Store, Owned, stores)
	p.setLat(Store, Shared, linear(84, 2, hmax)) // 86 .. 106 (+ per-sharer)
	p.setLat(Store, Invalid, linear(120, 4.9, hmax))

	// Atomics have distinct hardware implementations; FAI is the fastest.
	p.setLat(CAS, Modified, linear(75, 2.3, hmax))  // 77 .. 98
	p.setLat(FAI, Modified, linear(49, 2.2, hmax))  // 51 .. 71
	p.setLat(TAS, Modified, linear(68, 2.1, hmax))  // 70 .. 89
	p.setLat(SWAP, Modified, linear(61, 2.3, hmax)) // 63 .. 84
	p.setLat(CAS, Shared, linear(122, 2, hmax))     // 124 .. 142
	p.setLat(FAI, Shared, linear(80, 2.2, hmax))    // 82 .. 102
	p.setLat(TAS, Shared, linear(119, 2.2, hmax))   // 121 .. 141
	p.setLat(SWAP, Shared, linear(93, 2.4, hmax))   // 95 .. 115
	for _, op := range AtomicOps {
		p.setLat(op, Exclusive, p.lat[op][Modified])
		p.setLat(op, Owned, p.lat[op][Shared])
		p.setLat(op, Invalid, linear(140, 4.9, hmax))
	}
}

// twoSocketTables builds the §8 small multi-socket tables: intra-socket
// latencies close to the big siblings', cross-socket latencies scaled by
// the measured ratio (1.6 for the 2-socket Opteron, 2.7 for the 2-socket
// Xeon).
func twoSocketTables(p *Platform, ratio float64) {
	intra := map[Op]map[State]uint64{
		Load:  {Modified: 85, Owned: 87, Exclusive: 86, Shared: 86, Invalid: p.RAM},
		Store: {Modified: 86, Owned: 180, Exclusive: 86, Shared: 182, Invalid: p.RAM + 3},
	}
	if !p.IncompleteDirectory {
		// Xeon-like: no owned state, shared loads served by the LLC.
		intra[Load] = map[State]uint64{Modified: 100, Owned: 100, Exclusive: 88, Shared: 40, Invalid: p.RAM}
		intra[Store] = map[State]uint64{Modified: 105, Owned: 105, Exclusive: 105, Shared: 106, Invalid: p.RAM + 3}
	}
	cross := func(v uint64) uint64 { return uint64(float64(v)*ratio + 0.5) }
	for op, states := range intra {
		for st, v := range states {
			p.setLat(op, st, []uint64{v, cross(v)})
		}
	}
	atomicIntraM, atomicIntraS := uint64(112), uint64(240)
	if !p.IncompleteDirectory {
		atomicIntraM, atomicIntraS = 110, 105
	}
	p.setAtomic(Modified, []uint64{atomicIntraM, cross(atomicIntraM)})
	p.setAtomic(Exclusive, []uint64{atomicIntraM, cross(atomicIntraM)})
	p.setAtomic(Shared, []uint64{atomicIntraS, cross(atomicIntraS)})
	p.setAtomic(Owned, []uint64{atomicIntraS, cross(atomicIntraS)})
	p.setAtomic(Invalid, []uint64{p.RAM + 30, cross(p.RAM + 30)})
}
